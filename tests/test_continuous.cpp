// Continuous-batching engine: DynamicTbSource staged commits and
// retirement, TbScheduler mid-run injection, System admission hook, and the
// scenario-level invariants - kContinuous with zero arrivals at batch one
// reproduces kCoScheduled exactly, streaming beats the barrier on skewed
// batches, and everything is deterministic.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "sim/system.hpp"
#include "trace/composite.hpp"
#include "trace/dynamic_source.hpp"
#include "vcore/tb_scheduler.hpp"

namespace llamcat {
namespace {

using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::RequestBatch;
using scenario::RequestSpec;

SimConfig small_config() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

ModelShape tiny_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

// ---------------------------------------------------------------------------
// DynamicTbSource
// ---------------------------------------------------------------------------

TEST(DynamicTbSource, CommitAppendsAndPreservesEarlierIndices) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  DynamicTbSource src;
  EXPECT_EQ(src.num_tbs(), 0u);
  EXPECT_EQ(src.num_requests(), 0u);

  src.add(3, shift_to_slot(a.op, 0), a.mapping);
  EXPECT_EQ(src.num_tbs(), 0u);  // staged, not yet visible
  EXPECT_EQ(src.staged_ops(), 1u);
  const std::uint64_t first_batch = src.commit();
  EXPECT_GT(first_batch, 0u);
  EXPECT_EQ(src.num_tbs(), first_batch);
  EXPECT_EQ(src.tbs_of_request(3), first_batch);

  const TbDesc before = src.tb(0);
  src.add(7, shift_to_slot(a.op, 1), a.mapping);
  const std::uint64_t second_batch = src.commit();
  EXPECT_EQ(src.num_tbs(), first_batch + second_batch);
  // Earlier thread blocks are untouched; new ones are tagged and renumbered.
  EXPECT_EQ(src.tb(0).id, before.id);
  EXPECT_EQ(src.tb(0).request_id, 3u);
  EXPECT_EQ(src.tb(first_batch).request_id, 7u);
  EXPECT_EQ(src.tb(first_batch).id, first_batch);
  EXPECT_EQ(src.num_requests(), 2u);
  EXPECT_EQ(src.request_id_at(0), 3u);
  EXPECT_EQ(src.request_id_at(1), 7u);
}

TEST(DynamicTbSource, CommitInterleavesSimultaneouslyStagedOps) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  DynamicTbSource rr;
  rr.add(0, shift_to_slot(a.op, 0), a.mapping);
  rr.add(1, shift_to_slot(a.op, 1), a.mapping);
  rr.commit(FuseOrder::kRoundRobin);
  // Matches the CompositeTbSource wave fusing: a,b,a,b...
  CompositeTbSource wave(FuseOrder::kRoundRobin);
  wave.add(0, shift_to_slot(a.op, 0), a.mapping);
  wave.add(1, shift_to_slot(a.op, 1), a.mapping);
  ASSERT_EQ(rr.num_tbs(), wave.num_tbs());
  for (std::uint64_t i = 0; i < rr.num_tbs(); ++i) {
    EXPECT_EQ(rr.tb(i).request_id, wave.tb(i).request_id);
    EXPECT_EQ(rr.tb(i).h, wave.tb(i).h);
    EXPECT_EQ(rr.tb(i).l_begin, wave.tb(i).l_begin);
    ASSERT_EQ(rr.instr_count(i), wave.instr_count(i));
    EXPECT_EQ(rr.instr_at(i, 0).line_addr, wave.instr_at(i, 0).line_addr);
  }

  DynamicTbSource cc;
  cc.add(0, shift_to_slot(a.op, 0), a.mapping);
  cc.add(1, shift_to_slot(a.op, 1), a.mapping);
  cc.commit(FuseOrder::kConcat);
  const std::uint64_t half = cc.num_tbs() / 2;
  for (std::uint64_t i = 0; i < cc.num_tbs(); ++i) {
    EXPECT_EQ(cc.tb(i).request_id, i < half ? 0u : 1u);
  }
}

TEST(DynamicTbSource, AttributionAndAliasRejection) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  DynamicTbSource src;
  src.add(5, shift_to_slot(a.op, 0), a.mapping);
  src.commit();
  EXPECT_EQ(src.request_index_of(a.op.kv_base), 0u);
  EXPECT_EQ(src.request_index_of(a.op.kv_base + kSlotStride), kNoRequest);
  // Same request may re-claim its slot (the next stage of the same layer);
  // another request may not.
  EXPECT_NO_THROW(src.add(5, shift_to_slot(a.op, 0), a.mapping));
  EXPECT_THROW(src.add(6, shift_to_slot(a.op, 0), a.mapping),
               std::invalid_argument);
}

TEST(DynamicTbSource, RetireKeepsAttributionAndBlocksReuse) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  DynamicTbSource src;
  src.add(5, shift_to_slot(a.op, 0), a.mapping);
  src.commit();
  EXPECT_FALSE(src.retired(5));
  src.retire_request(5);
  EXPECT_TRUE(src.retired(5));
  // Straggler traffic of the retired request still attributes to it.
  EXPECT_EQ(src.request_index_of(a.op.kv_base), 0u);
  EXPECT_EQ(src.num_requests(), 1u);
  // A retired request cannot be fed more work.
  EXPECT_THROW(src.add(5, shift_to_slot(a.op, 0), a.mapping),
               std::invalid_argument);
  // Unknown ids are a no-op.
  EXPECT_NO_THROW(src.retire_request(12345));
  EXPECT_FALSE(src.retired(12345));
}

// ---------------------------------------------------------------------------
// TbScheduler injection
// ---------------------------------------------------------------------------

/// Drains a scheduler completely via round-robin core polling and returns
/// the dispatch order.
std::vector<std::uint64_t> drain(TbScheduler& sched, std::uint32_t cores) {
  std::vector<std::uint64_t> order;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t c = 0; c < cores; ++c) {
      if (const auto tb = sched.next_tb(static_cast<CoreId>(c))) {
        order.push_back(*tb);
        progress = true;
      }
    }
  }
  return order;
}

TEST(TbSchedulerInject, SingleInjectionMatchesConstructionLayout) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  for (const TbDispatch mode :
       {TbDispatch::kStaticBlocked, TbDispatch::kPartitionedStealing,
        TbDispatch::kGlobalQueue}) {
    DynamicTbSource dyn;
    dyn.add(0, shift_to_slot(a.op, 0), a.mapping);
    dyn.commit();

    // Constructed over the already-populated source...
    TbScheduler built(dyn, 4, mode);
    // ...vs constructed empty, then synced after the same commit landed.
    DynamicTbSource dyn2;
    TbScheduler synced(dyn2, 4, mode);
    EXPECT_EQ(synced.total(), 0u);
    EXPECT_EQ(synced.num_requests(), 0u);
    EXPECT_TRUE(synced.all_complete());  // vacuously: nothing injected yet
    dyn2.add(0, shift_to_slot(a.op, 0), a.mapping);
    dyn2.commit();
    EXPECT_EQ(synced.sync_with_source(), built.total());
    EXPECT_EQ(synced.sync_with_source(), 0u);  // idempotent

    EXPECT_EQ(drain(built, 4), drain(synced, 4));
  }
}

TEST(TbSchedulerInject, GrowsRequestBookkeepingAcrossInjections) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  DynamicTbSource src;
  TbScheduler sched(src, 2, TbDispatch::kPartitionedStealing);

  src.add(7, shift_to_slot(a.op, 0), a.mapping);
  src.commit();
  const std::uint64_t first = sched.sync_with_source();
  ASSERT_GT(first, 0u);
  EXPECT_EQ(sched.num_requests(), 1u);
  EXPECT_EQ(sched.request_id_at(0), 7u);
  EXPECT_EQ(sched.total_of(0), first);
  EXPECT_EQ(sched.dense_index_of(7), 0u);
  EXPECT_EQ(sched.dense_index_of(9), kNoRequest);

  // Work the first request to completion, then admit a second one.
  for (const std::uint64_t tb : drain(sched, 2)) sched.mark_complete(tb);
  EXPECT_TRUE(sched.all_complete());
  EXPECT_EQ(sched.completed_of(0), first);

  src.add(9, shift_to_slot(a.op, 1), a.mapping);
  src.commit();
  const std::uint64_t second = sched.sync_with_source();
  ASSERT_GT(second, 0u);
  EXPECT_FALSE(sched.all_complete());
  EXPECT_EQ(sched.num_requests(), 2u);
  EXPECT_EQ(sched.dense_index_of(9), 1u);
  EXPECT_EQ(sched.total_of(1), second);
  EXPECT_EQ(sched.total(), first + second);
  for (const std::uint64_t tb : drain(sched, 2)) sched.mark_complete(tb);
  EXPECT_TRUE(sched.all_complete());
  EXPECT_EQ(sched.completed_of(1), second);
}

// Regression: injected blocks of a request that got a carved core group at
// construction must land inside that group - dealing them from a
// dense-index home core would let the other group's cores run them,
// breaking the kPartitioned isolation invariant.
TEST(TbSchedulerInject, PartitionedInjectionStaysInCarvedGroup) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  DynamicTbSource src;
  src.add(0, shift_to_slot(a.op, 0), a.mapping);
  src.add(1, shift_to_slot(a.op, 1), a.mapping);
  src.commit();
  // 4 cores, 2 requests: request 0 owns cores {0,1}, request 1 owns {2,3}.
  TbScheduler sched(src, 4, TbDispatch::kPartitionedStealing,
                    RequestDispatch::kPartitioned);
  for (const std::uint64_t tb : drain(sched, 4)) sched.mark_complete(tb);
  ASSERT_TRUE(sched.all_complete());

  // Inject request 1's next stage: cores 0/1 (request 0's group) must see
  // nothing - not from their own queues and not via stealing.
  src.add(1, shift_to_slot(a.op, 1), a.mapping);
  src.commit();
  ASSERT_GT(sched.sync_with_source(), 0u);
  EXPECT_FALSE(sched.next_tb(0).has_value());
  EXPECT_FALSE(sched.next_tb(1).has_value());
  std::uint64_t delivered = 0;
  while (sched.next_tb(2) || sched.next_tb(3)) ++delivered;
  EXPECT_EQ(delivered, sched.total_of(1) / 2);  // the injected second op
}

// Regression: single-core kPartitioned injection must not abort (an
// overzealous assert used to fire: one core legitimately means one queue).
TEST(TbSchedulerInject, PartitionedSingleCoreInjectionWorks) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  DynamicTbSource src;
  TbScheduler sched(src, 1, TbDispatch::kPartitionedStealing,
                    RequestDispatch::kPartitioned);
  src.add(0, shift_to_slot(a.op, 0), a.mapping);
  src.add(1, shift_to_slot(a.op, 1), a.mapping);
  src.commit();
  ASSERT_GT(sched.sync_with_source(), 0u);
  EXPECT_EQ(drain(sched, 1).size(), src.num_tbs());
}

// Regression: a request admitted mid-pass must not be dealt into cores
// carved exclusively for other requests - with every core carved it gets a
// single home core (bounded disruption), never a full-machine spread.
TEST(TbSchedulerInject, MidPassArrivalDoesNotFloodCarvedGroups) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  DynamicTbSource src;
  src.add(0, shift_to_slot(a.op, 0), a.mapping);
  src.add(1, shift_to_slot(a.op, 1), a.mapping);
  src.commit();
  // Carves {0,1} -> request 0 and {2,3} -> request 1.
  TbScheduler sched(src, 4, TbDispatch::kPartitionedStealing,
                    RequestDispatch::kPartitioned);
  std::vector<std::uint64_t> before(4);
  for (std::uint32_t c = 0; c < 4; ++c) before[c] = sched.remaining_for(c);

  src.add(2, shift_to_slot(a.op, 2), a.mapping);
  src.commit();
  ASSERT_GT(sched.sync_with_source(), 0u);
  std::uint32_t grew = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    if (sched.remaining_for(c) > before[c]) ++grew;
  }
  EXPECT_EQ(grew, 1u);  // one home core, not a spread over carved groups
}

// Regression: kPartitioned must keep per-core queues even under
// kGlobalQueue (construction over an empty dynamic source), so a later
// injection still lands in per-request homes instead of one shared queue
// any core drains.
TEST(TbSchedulerInject, PartitionedUnderGlobalQueueKeepsPerCoreQueues) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  DynamicTbSource src;
  TbScheduler sched(src, 4, TbDispatch::kGlobalQueue,
                    RequestDispatch::kPartitioned);
  src.add(0, shift_to_slot(a.op, 0), a.mapping);
  src.add(1, shift_to_slot(a.op, 1), a.mapping);
  src.commit();
  ASSERT_GT(sched.sync_with_source(), 0u);
  // With the old single global queue, remaining_for reported the whole
  // backlog for every core; per-core queues spread it instead.
  std::uint64_t spread = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_LT(sched.remaining_for(c), src.num_tbs()) << c;
    spread += sched.remaining_for(c);
  }
  EXPECT_EQ(spread, src.num_tbs());
  std::uint64_t delivered = drain(sched, 4).size();
  EXPECT_EQ(delivered, src.num_tbs());
}

// Regression: kInterleave must round-robin an injected multi-request batch
// across its requests, exactly as construction orders the whole source -
// dealing a concat-ordered batch as-is would run one request back-to-back.
TEST(TbSchedulerInject, InterleaveReordersInjectedBatch) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  DynamicTbSource src;
  TbScheduler sched(src, 1, TbDispatch::kGlobalQueue,
                    RequestDispatch::kInterleave);
  src.add(0, shift_to_slot(a.op, 0), a.mapping);
  src.add(1, shift_to_slot(a.op, 1), a.mapping);
  src.commit(FuseOrder::kConcat);  // source order: all of 0, then all of 1
  sched.sync_with_source();
  // Dispatch order alternates requests while both have blocks left.
  const std::vector<std::uint64_t> order = drain(sched, 1);
  ASSERT_EQ(order.size(), src.num_tbs());
  for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
    EXPECT_EQ(src.tb(order[i]).request_id, 0u) << i;
    EXPECT_EQ(src.tb(order[i + 1]).request_id, 1u) << i;
  }
}

TEST(TbSchedulerInject, AllDispatchAndRequestModesDeliverEverything) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  for (const TbDispatch mode :
       {TbDispatch::kStaticBlocked, TbDispatch::kPartitionedStealing,
        TbDispatch::kGlobalQueue}) {
    for (const RequestDispatch rd :
         {RequestDispatch::kShared, RequestDispatch::kInterleave,
          RequestDispatch::kPartitioned}) {
      DynamicTbSource src;
      TbScheduler sched(src, 3, mode, rd);
      src.add(0, shift_to_slot(a.op, 0), a.mapping);
      src.add(1, shift_to_slot(a.op, 1), a.mapping);
      src.commit();
      sched.sync_with_source();
      src.add(2, shift_to_slot(a.op, 2), a.mapping);
      src.commit();
      sched.sync_with_source();
      const std::vector<std::uint64_t> order = drain(sched, 3);
      EXPECT_EQ(order.size(), src.num_tbs());
      for (const std::uint64_t tb : order) sched.mark_complete(tb);
      EXPECT_TRUE(sched.all_complete());
    }
  }
}

// ---------------------------------------------------------------------------
// System admission hook
// ---------------------------------------------------------------------------

// A System over an initially empty dynamic source, fed one operator by the
// admission hook at cycle 0, must match a plain run of the same operator.
TEST(SystemAdmission, HookFedRunMatchesStaticRun) {
  const SimConfig cfg = small_config();
  const Workload wl = Workload::logit(tiny_model(), 128, cfg);

  CompositeTbSource fixed;
  fixed.add(0, shift_to_slot(wl.op, 0), wl.mapping);
  System static_sys(cfg, fixed, &fixed);
  const SimStats want = static_sys.run();

  DynamicTbSource dyn;
  System sys(cfg, dyn, &dyn);
  bool admitted = false;
  const SimStats got = sys.run([&](System& s, Cycle now) {
    if (now == 0 && !admitted) {
      admitted = true;
      dyn.add(0, shift_to_slot(wl.op, 0), wl.mapping);
      dyn.commit();
      s.inject_work();
    }
  });

  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.instructions, want.instructions);
  EXPECT_EQ(got.thread_blocks, want.thread_blocks);
  EXPECT_EQ(got.dram_reads, want.dram_reads);
  EXPECT_EQ(got.counters.counters(), want.counters.counters());
  ASSERT_EQ(got.per_request.size(), 1u);
  EXPECT_GT(got.per_request[0].first_dispatch_cycle, 0u);
  EXPECT_GE(got.per_request[0].last_complete_cycle,
            got.per_request[0].first_dispatch_cycle);
}

// An empty run (no admission) terminates immediately.
TEST(SystemAdmission, EmptySourceDrainsAtCycleZero) {
  const SimConfig cfg = small_config();
  DynamicTbSource dyn;
  System sys(cfg, dyn, &dyn);
  const SimStats s = sys.run();
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.thread_blocks, 0u);
  EXPECT_TRUE(s.per_request.empty());
}

// ---------------------------------------------------------------------------
// Scenario: kContinuous
// ---------------------------------------------------------------------------

void expect_equal_totals(const BatchStats& a, const BatchStats& b) {
  EXPECT_EQ(a.total.cycles, b.total.cycles);
  EXPECT_EQ(a.total.instructions, b.total.instructions);
  EXPECT_EQ(a.total.thread_blocks, b.total.thread_blocks);
  EXPECT_EQ(a.total.dram_reads, b.total.dram_reads);
  EXPECT_EQ(a.total.dram_writes, b.total.dram_writes);
  EXPECT_EQ(a.total.counters.counters(), b.total.counters.counters());
  EXPECT_EQ(a.makespan, b.makespan);
}

// The acceptance anchor: with a single request and no arrivals there is
// never a co-resident request, so every stage handoff happens at a drain
// boundary and the streaming engine degenerates to the exact sequence of
// fused waves kCoScheduled runs.
TEST(ContinuousMode, MatchesCoScheduledAtBatchOneZeroArrivals) {
  const SimConfig cfg = small_config();
  const RequestBatch batch = RequestBatch::uniform(tiny_model(), 1, 128);
  DecodePassConfig pc;
  pc.num_layers = 2;
  pc.include_gemv = false;
  pc.mode = scenario::ExecutionMode::kCoScheduled;
  const BatchStats cos = DecodePass(batch, pc, cfg).run();
  pc.mode = scenario::ExecutionMode::kContinuous;
  const BatchStats ct = DecodePass(batch, pc, cfg).run();

  expect_equal_totals(ct, cos);
  ASSERT_EQ(ct.per_request.size(), 1u);
  EXPECT_EQ(ct.per_request[0].stats.cycles, cos.per_request[0].stats.cycles);
  EXPECT_EQ(ct.per_request[0].stats.instructions,
            cos.per_request[0].stats.instructions);
  EXPECT_EQ(ct.per_request[0].stats.thread_blocks,
            cos.per_request[0].stats.thread_blocks);
  EXPECT_EQ(ct.per_request[0].stats.dram_reads,
            cos.per_request[0].stats.dram_reads);
  EXPECT_EQ(ct.per_request[0].slice.cycles_in_flight,
            cos.per_request[0].slice.cycles_in_flight);
  EXPECT_EQ(ct.per_request[0].slice.llc_hits,
            cos.per_request[0].slice.llc_hits);
  // Latency spans the whole pass: arrival 0 to the final drain.
  EXPECT_EQ(ct.per_request[0].latency(), ct.makespan);
  EXPECT_EQ(ct.per_request[0].finish_cycle, ct.makespan);
  // One segment per stage, mirroring the wave structure.
  EXPECT_EQ(ct.per_op.size(), cos.per_op.size());
}

// Same anchor across multiple decode steps (the step machinery must not
// perturb the segment/wave correspondence).
TEST(ContinuousMode, MatchesCoScheduledAtBatchOneWithDecodeSteps) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(), {{0, 128, 0, 3}});
  DecodePassConfig pc;
  pc.num_layers = 1;
  pc.include_gemv = false;
  pc.mode = scenario::ExecutionMode::kCoScheduled;
  const BatchStats cos = DecodePass(batch, pc, cfg).run();
  pc.mode = scenario::ExecutionMode::kContinuous;
  const BatchStats ct = DecodePass(batch, pc, cfg).run();
  expect_equal_totals(ct, cos);
  EXPECT_EQ(ct.per_request[0].stats.cycles, cos.per_request[0].stats.cycles);
  // 3 decode steps x 1 layer x 2 stages.
  EXPECT_EQ(ct.per_op.size(), 6u);
}

// Regression: co-resident requests that complete a stage on the same cycle
// must advance together (still streaming), not fall back to a drain - a
// uniform batch used to degenerate into wave-like segments on every tie.
TEST(ContinuousMode, CoResidentRequestsStreamWithoutSegmentBreaks) {
  const SimConfig cfg = small_config();
  const RequestBatch batch = RequestBatch::uniform(tiny_model(), 2, 128);
  DecodePassConfig pc;
  pc.num_layers = 2;
  pc.include_gemv = false;
  pc.mode = scenario::ExecutionMode::kCoScheduled;
  const BatchStats cos = DecodePass(batch, pc, cfg).run();
  pc.mode = scenario::ExecutionMode::kContinuous;
  const BatchStats ct = DecodePass(batch, pc, cfg).run();
  // The barrier runs 4 waves; the stream should stay in far fewer segments
  // (one while both requests are live, plus at most a lone-tail segment).
  ASSERT_EQ(cos.per_op.size(), 4u);
  EXPECT_LE(ct.per_op.size(), 2u);
}

// The tentpole claim: on a skewed batch the short requests no longer wait
// for the batch's longest member at every stage, so the streaming makespan
// beats the barrier makespan.
TEST(ContinuousMode, StreamsPastTheBarrierOnSkewedBatch) {
  const SimConfig cfg = small_config();
  const RequestBatch batch =
      RequestBatch::with_seq_lens(tiny_model(), {1024, 128, 128, 128});
  DecodePassConfig pc;
  pc.num_layers = 2;
  pc.include_gemv = false;
  pc.mode = scenario::ExecutionMode::kCoScheduled;
  const BatchStats cos = DecodePass(batch, pc, cfg).run();
  pc.mode = scenario::ExecutionMode::kContinuous;
  const BatchStats ct = DecodePass(batch, pc, cfg).run();

  EXPECT_LT(ct.makespan, cos.makespan);
  // The short requests finish well before the long one.
  const auto& long_req = ct.per_request[0];
  for (std::size_t i = 1; i < ct.per_request.size(); ++i) {
    EXPECT_LT(ct.per_request[i].finish_cycle, long_req.finish_cycle);
  }
  // Attribution is complete: per-request traffic adds up to the totals.
  std::uint64_t reads = 0, writes = 0, tbs = 0, instrs = 0;
  for (const scenario::RequestStats& r : ct.per_request) {
    reads += r.slice.dram_reads;
    writes += r.slice.dram_writes;
    tbs += r.slice.thread_blocks;
    instrs += r.slice.instructions;
  }
  EXPECT_EQ(reads, ct.total.dram_reads);
  EXPECT_EQ(writes, ct.total.dram_writes);
  EXPECT_EQ(tbs, ct.total.thread_blocks);
  EXPECT_EQ(instrs, ct.total.instructions);
}

TEST(ContinuousMode, AdmitsArrivalsMidPassAndTracksLatency) {
  const SimConfig cfg = small_config();
  // Request 1 arrives while request 0 is mid-decode; request 2 arrives
  // after everything drained (an idle gap the stream clock must keep).
  const RequestBatch batch(tiny_model(), {{0, 256, 0, 1},
                                          {1, 128, 2000, 1},
                                          {2, 64, 4'000'000, 1}});
  DecodePassConfig pc;
  pc.num_layers = 1;
  pc.include_gemv = false;
  pc.mode = scenario::ExecutionMode::kContinuous;
  const BatchStats ct = DecodePass(batch, pc, cfg).run();

  for (const scenario::RequestStats& r : ct.per_request) {
    EXPECT_GE(r.admit_cycle, r.arrival_cycle);
    EXPECT_GT(r.finish_cycle, r.admit_cycle);
    EXPECT_EQ(r.stats.cycles, r.latency());
  }
  // The late request was admitted at its arrival (machine was idle), and
  // the makespan covers the idle gap.
  EXPECT_EQ(ct.per_request[2].admit_cycle, 4'000'000u);
  EXPECT_GT(ct.makespan, 4'000'000u);
  // Its latency excludes the pre-arrival wait.
  EXPECT_LT(ct.per_request[2].latency(), 4'000'000u);
}

TEST(ContinuousMode, BarrierModesRejectArrivals) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(), {{0, 128, 100, 1}});
  DecodePassConfig pc;
  pc.num_layers = 1;
  pc.mode = scenario::ExecutionMode::kCoScheduled;
  EXPECT_THROW(DecodePass(batch, pc, cfg), std::invalid_argument);
  pc.mode = scenario::ExecutionMode::kIndependent;
  EXPECT_THROW(DecodePass(batch, pc, cfg), std::invalid_argument);
  pc.mode = scenario::ExecutionMode::kContinuous;
  EXPECT_NO_THROW(DecodePass(batch, pc, cfg));
}

TEST(RequestBatch, RejectsZeroDecodeSteps) {
  EXPECT_THROW(RequestBatch(tiny_model(), {{0, 128, 0, 0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace llamcat
