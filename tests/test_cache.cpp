// Unit + property tests: cache array (replacement/insertion policies),
// MSHR semantics, L1 behavior (write-through / no-allocate / merging).
#include <gtest/gtest.h>

#include <set>

#include "cache/cache_array.hpp"
#include "cache/l1_cache.hpp"
#include "cache/mshr.hpp"
#include "common/rng.hpp"

namespace llamcat {
namespace {

Addr line(std::uint64_t i) { return i * kLineBytes; }

TEST(CacheArray, FillProbeTouch) {
  CacheArray a(4, 2, ReplPolicy::kLru, InsertPolicy::kMru);
  EXPECT_FALSE(a.probe(0, line(0)));
  EXPECT_FALSE(a.touch(0, line(0)));
  a.fill(0, line(0), false);
  EXPECT_TRUE(a.probe(0, line(0)));
  EXPECT_TRUE(a.touch(0, line(0)));
  EXPECT_EQ(a.valid_count(), 1u);
}

TEST(CacheArray, LruEvictsOldest) {
  CacheArray a(1, 2, ReplPolicy::kLru, InsertPolicy::kMru);
  a.fill(0, line(1), false);
  a.fill(0, line(2), false);
  a.touch(0, line(1));  // 2 is now LRU
  const auto ev = a.fill(0, line(3), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, line(2));
}

TEST(CacheArray, StreamingInsertIsVictimFirst) {
  CacheArray a(1, 4, ReplPolicy::kLru, InsertPolicy::kStreaming);
  for (int i = 0; i < 4; ++i) a.fill(0, line(i), false);
  a.touch(0, line(0));
  a.touch(0, line(1));
  a.touch(0, line(2));
  // line(3) was streaming-inserted (stamp 0) and never touched -> victim.
  const auto ev = a.fill(0, line(9), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, line(3));
}

TEST(CacheArray, DirtyPropagatesToEviction) {
  CacheArray a(1, 1, ReplPolicy::kLru, InsertPolicy::kMru);
  a.fill(0, line(1), false);
  EXPECT_TRUE(a.mark_dirty(0, line(1)));
  const auto ev = a.fill(0, line(2), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
}

TEST(CacheArray, InvalidateRemoves) {
  CacheArray a(2, 2, ReplPolicy::kLru, InsertPolicy::kMru);
  a.fill(1, line(5), false);
  EXPECT_TRUE(a.invalidate(1, line(5)));
  EXPECT_FALSE(a.probe(1, line(5)));
  EXPECT_FALSE(a.invalidate(1, line(5)));
}

// Property: whatever the policy, contents are a subset of what was filled
// and capacity is never exceeded.
class CacheArrayPolicy : public ::testing::TestWithParam<
                             std::tuple<ReplPolicy, InsertPolicy>> {};

TEST_P(CacheArrayPolicy, InvariantsUnderRandomWorkload) {
  const auto [repl, ins] = GetParam();
  CacheArray a(8, 4, repl, ins, /*seed=*/3);
  Xoshiro256 rng(5);
  std::set<Addr> inserted;
  for (int i = 0; i < 5000; ++i) {
    const Addr l = line(rng.below(256));
    const std::uint32_t set = static_cast<std::uint32_t>(line_index(l) % 8);
    if (!a.touch(set, l)) {
      a.fill(set, l, rng.below(2) == 0);
      inserted.insert(l);
    }
  }
  EXPECT_LE(a.valid_count(), 8u * 4u);
  for (std::uint32_t s = 0; s < 8; ++s) {
    for (Addr l : a.set_contents(s)) {
      EXPECT_TRUE(inserted.count(l)) << "ghost line";
      EXPECT_EQ(line_index(l) % 8, s) << "line in wrong set";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CacheArrayPolicy,
    ::testing::Combine(::testing::Values(ReplPolicy::kLru,
                                         ReplPolicy::kTreePlru,
                                         ReplPolicy::kRandom),
                       ::testing::Values(InsertPolicy::kMru,
                                         InsertPolicy::kStreaming)));

// ---------------------------------------------------------------- MSHR --

TEST(Mshr, AllocateMergeRelease) {
  Mshr m(2, 2);
  EXPECT_EQ(m.add(line(1), {0, 10, false}, 0), Mshr::AddResult::kNewEntry);
  EXPECT_EQ(m.add(line(1), {1, 11, false}, 1), Mshr::AddResult::kMerged);
  EXPECT_EQ(m.occupancy(), 1u);
  const auto targets = m.release(line(1));
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0].req_id, 10u);
  EXPECT_EQ(targets[1].core, 1u);
  EXPECT_EQ(m.occupancy(), 0u);
}

TEST(Mshr, NumEntryExhaustion) {
  Mshr m(2, 8);
  EXPECT_EQ(m.add(line(1), {0, 0, false}, 0), Mshr::AddResult::kNewEntry);
  EXPECT_EQ(m.add(line(2), {0, 0, false}, 0), Mshr::AddResult::kNewEntry);
  EXPECT_FALSE(m.entry_available());
  EXPECT_EQ(m.add(line(3), {0, 0, false}, 0), Mshr::AddResult::kNoEntryFree);
  // Merging into an existing entry still works while entries are full.
  EXPECT_EQ(m.add(line(1), {1, 0, false}, 0), Mshr::AddResult::kMerged);
}

TEST(Mshr, NumTargetExhaustion) {
  Mshr m(4, 2);
  m.add(line(1), {0, 0, false}, 0);
  m.add(line(1), {1, 0, false}, 0);
  EXPECT_EQ(m.add(line(1), {2, 0, false}, 0),
            Mshr::AddResult::kNoTargetFree);
  // A different line can still allocate.
  EXPECT_EQ(m.add(line(2), {2, 0, false}, 0), Mshr::AddResult::kNewEntry);
}

TEST(Mshr, StoreTargetsTracked) {
  Mshr m(2, 4);
  m.add(line(7), {0, kStoreReqId, true}, 0);
  m.add(line(7), {1, 5, false}, 0);
  const auto targets = m.release(line(7));
  EXPECT_TRUE(targets[0].is_store);
  EXPECT_FALSE(targets[1].is_store);
}

TEST(Mshr, OccupancySampling) {
  Mshr m(4, 4);
  m.sample_occupancy();  // 0/4
  m.add(line(1), {0, 0, false}, 0);
  m.add(line(2), {0, 0, false}, 0);
  m.sample_occupancy();  // 2/4
  EXPECT_DOUBLE_EQ(m.avg_entry_utilization(), 0.25);
}

// Property sweep over MSHR dimensions.
class MshrDims
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(MshrDims, NeverExceedsEitherDimension) {
  const auto [entries, targets] = GetParam();
  Mshr m(entries, targets);
  Xoshiro256 rng(9);
  for (int i = 0; i < 2000; ++i) {
    const Addr l = line(rng.below(entries * 2));
    const auto r = m.add(l, {0, 0, false}, i);
    EXPECT_LE(m.occupancy(), entries);
    if (const auto* e = m.find(l)) {
      EXPECT_LE(e->targets.size(), targets);
    }
    if (r == Mshr::AddResult::kNoTargetFree && rng.below(2) == 0) {
      m.release(l);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, MshrDims,
                         ::testing::Combine(::testing::Values(1u, 2u, 6u, 16u),
                                            ::testing::Values(1u, 8u, 32u)));

// ------------------------------------------------------------------ L1 --

L1Config l1_cfg() {
  L1Config cfg;
  cfg.size_bytes = 1024;  // 2 sets x 8 ways for focused eviction tests
  cfg.miss_queue_entries = 2;
  return cfg;
}

TEST(L1Cache, MissThenFillThenHit) {
  L1Cache l1(l1_cfg(), 0, 1);
  EXPECT_EQ(l1.access_load(line(1), 100), L1Cache::LoadResult::kMissNew);
  ASSERT_TRUE(l1.peek_outbox().has_value());
  EXPECT_EQ(*l1.peek_outbox(), line(1));
  l1.pop_outbox();
  const auto woken = l1.on_fill(line(1));
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 100u);
  EXPECT_EQ(l1.access_load(line(1), 101), L1Cache::LoadResult::kHit);
}

TEST(L1Cache, MergesSameLineMisses) {
  L1Cache l1(l1_cfg(), 0, 1);
  EXPECT_EQ(l1.access_load(line(1), 1), L1Cache::LoadResult::kMissNew);
  EXPECT_EQ(l1.access_load(line(1), 2), L1Cache::LoadResult::kMissMerged);
  EXPECT_EQ(l1.outstanding_misses(), 1u);
  const auto woken = l1.on_fill(line(1));
  EXPECT_EQ(woken.size(), 2u);
}

TEST(L1Cache, MissQueueBlocks) {
  L1Cache l1(l1_cfg(), 0, 1);
  EXPECT_EQ(l1.access_load(line(1), 1), L1Cache::LoadResult::kMissNew);
  EXPECT_EQ(l1.access_load(line(2), 2), L1Cache::LoadResult::kMissNew);
  EXPECT_EQ(l1.access_load(line(3), 3), L1Cache::LoadResult::kBlocked);
  l1.on_fill(line(1));
  EXPECT_EQ(l1.access_load(line(3), 3), L1Cache::LoadResult::kMissNew);
}

TEST(L1Cache, StoreIsWriteThroughNoAllocate) {
  L1Cache l1(l1_cfg(), 0, 1);
  EXPECT_FALSE(l1.access_store(line(9)));        // miss: no allocation
  EXPECT_EQ(l1.access_load(line(9), 1), L1Cache::LoadResult::kMissNew);
  l1.on_fill(line(9));
  EXPECT_TRUE(l1.access_store(line(9)));         // hit: line updated
  // Store hits never dirty the L1 (write-through): nothing to verify via
  // eviction since L1 fills are always clean; covered by on_fill path.
}

TEST(L1Cache, CountersAccumulate) {
  L1Cache l1(l1_cfg(), 0, 1);
  l1.access_load(line(1), 1);
  l1.on_fill(line(1));
  l1.access_load(line(1), 2);
  EXPECT_EQ(l1.counters().load_misses, 1u);
  EXPECT_EQ(l1.counters().load_hits, 1u);
  EXPECT_EQ(l1.counters().fills, 1u);
  const StatSet s = l1.stats();
  EXPECT_EQ(s.get("l1.load_hits"), 1u);
}

}  // namespace
}  // namespace llamcat
