// Unit tests: LLC slice pipeline - hit path, miss/MSHR/DRAM path, merge,
// stall-on-exhaustion semantics, request-response arbitration, SliceMap.
#include <gtest/gtest.h>

#include <set>

#include "dram/dram_system.hpp"
#include "llc/llc_slice.hpp"

namespace llamcat {
namespace {

struct Rig {
  SimConfig cfg = SimConfig::table5();
  std::unique_ptr<DramSystem> dram;
  std::unique_ptr<LlcSlice> slice;
  Cycle now = 0;

  explicit Rig(std::uint32_t mshr_entries = 6, std::uint32_t mshr_targets = 8,
               RespArbPolicy resp_arb = RespArbPolicy::kResponseFirst) {
    cfg.llc.num_slices = 1;  // single slice: every address belongs to it
    cfg.llc.mshr_entries = mshr_entries;
    cfg.llc.mshr_targets = mshr_targets;
    cfg.llc.resp_arb = resp_arb;
    dram = std::make_unique<DramSystem>(cfg.dram, cfg.core_hz);
    slice = std::make_unique<LlcSlice>(cfg.llc, cfg.arb, 0, cfg.core.num_cores,
                                       1);
    dram->on_read_complete = [this](const DramCompletion& d) {
      slice->on_dram_fill(d.line_addr);
    };
  }

  void tick(std::uint32_t n = 1) {
    for (std::uint32_t i = 0; i < n; ++i) {
      ++now;
      slice->tick(now, *dram);
      dram->tick_core_cycle();
    }
  }

  MemRequest load(Addr a, CoreId core = 0) {
    MemRequest r;
    r.line_addr = a;
    r.core = core;
    r.type = AccessType::kLoad;
    return r;
  }
  MemRequest store(Addr a, CoreId core = 0) {
    MemRequest r = load(a, core);
    r.type = AccessType::kStore;
    r.req_id = kStoreReqId;
    return r;
  }

  /// Runs until n responses have drained or the guard trips.
  std::vector<MemResponse> run_for_responses(std::size_t n,
                                             std::uint32_t guard = 20000) {
    std::vector<MemResponse> out;
    while (out.size() < n && guard-- > 0) {
      tick();
      slice->drain_responses(now, out);
    }
    return out;
  }
};

TEST(SliceMap, PartitionsAllSetsExactlyOnce) {
  LlcConfig cfg = SimConfig::table5().llc;
  const SliceMap map(cfg);
  // Every line within one "period" of sets maps to exactly one slice and
  // local sets never collide for distinct global sets of the same slice.
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (std::uint64_t s = 0; s < map.total_sets(); ++s) {
    const Addr a = s * kLineBytes;
    const std::uint32_t slice = map.slice_of(a);
    const std::uint32_t local = map.local_set_of(a);
    EXPECT_LT(slice, cfg.num_slices);
    EXPECT_LT(local, map.sets_per_slice());
    EXPECT_TRUE(seen.insert({slice, local}).second)
        << "collision at global set " << s;
  }
  EXPECT_EQ(seen.size(), map.total_sets());
}

TEST(SliceMap, SliceBitsDecoupledFromChannelBits) {
  const SimConfig cfg = SimConfig::table5();
  const SliceMap map(cfg.llc);
  // Consecutive lines hit the same slice for runs of 8 (shift=3) while
  // DRAM channels rotate every line, so a 4-line vector doesn't serialize
  // on one channel-slice pairing.
  EXPECT_EQ(map.slice_of(0 * kLineBytes), map.slice_of(1 * kLineBytes));
  EXPECT_EQ(map.slice_of(0 * kLineBytes), map.slice_of(7 * kLineBytes));
  EXPECT_NE(map.slice_of(0 * kLineBytes), map.slice_of(8 * kLineBytes));
}

TEST(LlcSlice, MissGoesToDramAndBack) {
  Rig rig;
  rig.slice->push_request(rig.load(0x1000, 3), rig.now);
  const auto resp = rig.run_for_responses(1);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].core, 3u);
  EXPECT_EQ(resp[0].line_addr, 0x1000u);
  EXPECT_EQ(rig.slice->counters().misses, 1u);
  EXPECT_EQ(rig.slice->counters().mshr_allocs, 1u);
  // The fill was installed through the response queue.
  std::uint32_t guard = 1000;
  while (!rig.slice->drained() && guard--) rig.tick();
  EXPECT_TRUE(rig.slice->drained());
  EXPECT_EQ(rig.slice->counters().fills, 1u);
  EXPECT_EQ(rig.slice->counters().responses_served, 1u);
}

TEST(LlcSlice, HitAfterFillHasDataLatency) {
  Rig rig;
  rig.slice->push_request(rig.load(0x1000), rig.now);
  rig.run_for_responses(1);
  std::uint32_t guard = 1000;
  while (!rig.slice->drained() && guard--) rig.tick();
  // Second access: hit.
  const Cycle start = rig.now;
  rig.slice->push_request(rig.load(0x1000, 1), rig.now);
  const auto resp = rig.run_for_responses(1);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(rig.slice->counters().hits, 1u);
  // hit_latency (3) + data_latency (25) plus the serve cycle.
  const Cycle latency = rig.now - start;
  EXPECT_GE(latency, 3u + 25u);
  EXPECT_LE(latency, 3u + 25u + 3u);
}

TEST(LlcSlice, MshrMergesConcurrentMisses) {
  Rig rig;
  rig.slice->push_request(rig.load(0x1000, 0), rig.now);
  rig.tick(10);  // let the first reach the MSHR
  rig.slice->push_request(rig.load(0x1000, 1), rig.now);
  rig.slice->push_request(rig.load(0x1000, 2), rig.now);
  const auto resp = rig.run_for_responses(3);
  ASSERT_EQ(resp.size(), 3u);
  EXPECT_EQ(rig.slice->counters().mshr_allocs, 1u);  // one DRAM fetch
  EXPECT_EQ(rig.slice->counters().mshr_hits, 2u);    // two merges
  std::set<CoreId> cores;
  for (const auto& r : resp) cores.insert(r.core);
  EXPECT_EQ(cores.size(), 3u);
}

TEST(LlcSlice, EntryExhaustionStallsPipeline) {
  Rig rig(/*mshr_entries=*/2);
  // Three distinct misses: the third cannot allocate while the first two
  // are outstanding.
  rig.slice->push_request(rig.load(0x10000), rig.now);
  rig.slice->push_request(rig.load(0x20000), rig.now);
  rig.slice->push_request(rig.load(0x30000), rig.now);
  rig.tick(30);  // enough for all lookups, far less than DRAM latency
  EXPECT_EQ(rig.slice->counters().mshr_allocs, 2u);
  EXPECT_GT(rig.slice->counters().stall_entry, 0u);
  EXPECT_GT(rig.slice->stall_cycles(), 0u);
  // Eventually the fills free entries and the third proceeds.
  const auto resp = rig.run_for_responses(3);
  EXPECT_EQ(resp.size(), 3u);
  EXPECT_EQ(rig.slice->counters().mshr_allocs, 3u);
}

TEST(LlcSlice, TargetExhaustionStalls) {
  Rig rig(/*mshr_entries=*/6, /*mshr_targets=*/2);
  for (CoreId c = 0; c < 4; ++c) {
    rig.slice->push_request(rig.load(0x1000, c), rig.now);
  }
  rig.tick(40);
  EXPECT_GT(rig.slice->counters().stall_target, 0u);
  const auto resp = rig.run_for_responses(4);
  EXPECT_EQ(resp.size(), 4u);
  // Two fetches: the first serves 2 targets, the overflow re-fetches.
  EXPECT_GE(rig.slice->counters().mshr_allocs, 2u);
}

TEST(LlcSlice, StallBlocksCacheHitsBehindMiss) {
  Rig rig(/*mshr_entries=*/1);
  // Warm a line.
  rig.slice->push_request(rig.load(0x40), rig.now);
  rig.run_for_responses(1);
  std::uint32_t guard = 2000;
  while (!rig.slice->drained() && guard--) rig.tick();
  // Two distinct misses exhaust the single entry. Wait for the stall to
  // establish, then a request that would hit cannot be processed: the
  // whole pipeline is frozen (paper: "preventing even cache hits").
  rig.slice->push_request(rig.load(0x10000), rig.now);
  rig.slice->push_request(rig.load(0x20000), rig.now);
  std::uint32_t guard2 = 100;
  while (rig.slice->counters().stall_entry == 0 && guard2--) rig.tick();
  ASSERT_GT(rig.slice->counters().stall_entry, 0u);
  rig.slice->push_request(rig.load(0x40, 5), rig.now);  // would be a hit
  rig.tick(40);
  std::vector<MemResponse> out;
  rig.slice->drain_responses(rig.now, out);
  EXPECT_TRUE(out.empty()) << "hit completed during a whole-pipeline stall";
  // After fills return everything completes.
  const auto resp = rig.run_for_responses(3);
  EXPECT_EQ(resp.size(), 3u);
}

TEST(LlcSlice, StoreMissAllocatesAndDirtiesLine) {
  Rig rig;
  rig.slice->push_request(rig.store(0x5000), rig.now);
  std::uint32_t guard = 2000;
  while (!rig.slice->drained() && guard--) rig.tick();
  EXPECT_TRUE(rig.slice->drained());
  EXPECT_EQ(rig.slice->counters().mshr_allocs, 1u);  // write-allocate fetch
  EXPECT_EQ(rig.slice->counters().fills, 1u);
  // No load response was produced for the store.
  std::vector<MemResponse> out;
  rig.slice->drain_responses(rig.now, out);
  EXPECT_TRUE(out.empty());
}

TEST(LlcSlice, DirtyEvictionWritesBack) {
  Rig rig;
  rig.cfg.llc.size_bytes = 1 << 12;  // tiny, but Rig already built; rebuild:
  SimConfig cfg = SimConfig::table5();
  cfg.llc.num_slices = 1;
  cfg.llc.size_bytes = 4096;  // 8 sets x 8 ways
  DramSystem dram(cfg.dram, cfg.core_hz);
  LlcSlice slice(cfg.llc, cfg.arb, 0, cfg.core.num_cores, 1);
  dram.on_read_complete = [&](const DramCompletion& d) {
    slice.on_dram_fill(d.line_addr);
  };
  Cycle now = 0;
  auto tick = [&](std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      ++now;
      slice.tick(now, dram);
      dram.tick_core_cycle();
    }
  };
  // Dirty one set's worth of lines, then overflow the set.
  const SliceMap map(cfg.llc);
  std::vector<Addr> same_set;
  for (Addr a = 0; same_set.size() < 9; a += kLineBytes) {
    if (map.local_set_of(a) == 0) same_set.push_back(a);
  }
  for (std::size_t i = 0; i < same_set.size(); ++i) {
    MemRequest r;
    r.line_addr = same_set[i];
    r.type = AccessType::kStore;
    r.req_id = kStoreReqId;
    while (!slice.can_accept_request()) tick(1);
    slice.push_request(r, now);
    tick(50);
  }
  std::uint32_t guard = 5000;
  while ((!slice.drained() || !dram.idle()) && guard--) tick(1);
  EXPECT_GE(slice.counters().dirty_evictions, 1u);
  EXPECT_GE(slice.counters().writebacks, 1u);
  EXPECT_GE(dram.stats().get("dram.writes"), 1u);
}

TEST(LlcSlice, RequestFirstArbitrationPrefersRequests) {
  // With request-first arbitration and a non-urgent response queue, queued
  // requests win the port; with response-first, responses win. Observe via
  // the order of counters on a mixed workload.
  for (RespArbPolicy pol :
       {RespArbPolicy::kResponseFirst, RespArbPolicy::kRequestFirst}) {
    Rig rig(6, 8, pol);
    for (int i = 0; i < 6; ++i) {
      rig.slice->push_request(
          rig.load(0x100000 + static_cast<Addr>(i) * 0x10000), rig.now);
    }
    const auto resp = rig.run_for_responses(6);
    EXPECT_EQ(resp.size(), 6u) << to_string(pol);
    std::uint32_t guard = 3000;
    while (!rig.slice->drained() && guard--) rig.tick();
    EXPECT_TRUE(rig.slice->drained()) << to_string(pol);
  }
}

TEST(LlcSlice, RequestQueueBackpressure) {
  Rig rig;
  for (std::uint32_t i = 0; i < rig.cfg.llc.req_q_size; ++i) {
    ASSERT_TRUE(rig.slice->can_accept_request());
    rig.slice->push_request(
        rig.load(0x100000 + static_cast<Addr>(i) * 0x10000), rig.now);
  }
  EXPECT_FALSE(rig.slice->can_accept_request());
  rig.tick(2);
  EXPECT_TRUE(rig.slice->can_accept_request());  // arbiter drained some
}

}  // namespace
}  // namespace llamcat
