// Integration tests: full-system conservation laws, determinism, policy
// mechanism checks, hybrid trace-file-driven runs.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/trace_io.hpp"

namespace llamcat {
namespace {

SimConfig small_cfg() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 2ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

ModelShape small_model(std::uint32_t g = 4) {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = g;
  return m;
}

TEST(SystemIntegration, ConservationLaws) {
  const SimConfig cfg = small_cfg();
  const Workload wl = Workload::logit(small_model(), 512, cfg);
  TraceGen gen(wl.op, wl.mapping);
  System sys(cfg, gen);
  const SimStats s = sys.run();

  const TrafficEstimate est = gen.traffic();
  const auto& c = s.counters;
  // Every line request is served exactly once by some slice.
  EXPECT_EQ(c.get("llc.requests_in"), c.get("llc.requests_served"));
  EXPECT_EQ(c.get("llc.lookups"), c.get("llc.requests_served"));
  // Lookups split exactly into hits and misses.
  EXPECT_EQ(c.get("llc.hits") + c.get("llc.misses"), c.get("llc.lookups"));
  // Misses split into merges and allocations.
  EXPECT_EQ(c.get("llc.mshr_hits") + c.get("llc.mshr_allocs"),
            c.get("llc.misses"));
  // Each allocation is one DRAM read; each read produces one fill.
  EXPECT_EQ(c.get("llc.mshr_allocs"), c.get("dram.reads"));
  EXPECT_EQ(c.get("llc.fills"), c.get("dram.reads"));
  EXPECT_EQ(c.get("llc.fills"), c.get("llc.responses_served"));
  // L2 sees exactly the L1 misses plus all stores.
  EXPECT_EQ(c.get("llc.requests_in"),
            c.get("l1.load_misses") + c.get("l1.store_misses") +
                c.get("l1.store_hits"));
  // L1 sees every load the trace contains.
  EXPECT_EQ(c.get("l1.load_hits") + c.get("l1.load_merges") +
                c.get("l1.load_misses"),
            est.load_line_requests);
  // The cache was large enough: DRAM reads sit at the compulsory floor,
  // plus a small slack from the fill-install window (a request that misses
  // while its line's fill is still queued for installation re-fetches; the
  // response-first arbitration keeps this window short, paper §3.3).
  const std::uint64_t compulsory =
      est.unique_load_lines + est.unique_store_lines;
  EXPECT_GE(s.dram_reads, compulsory);
  EXPECT_LE(s.dram_reads, compulsory + compulsory / 8);
  // Writebacks only from dirty evictions.
  EXPECT_EQ(c.get("llc.writebacks"), c.get("llc.dirty_evictions"));
  EXPECT_EQ(s.thread_blocks, wl.mapping.num_thread_blocks(wl.op));
}

TEST(SystemIntegration, DeterministicAcrossRuns) {
  const SimConfig cfg = small_cfg();
  const Workload wl = Workload::logit(small_model(), 256, cfg);
  const SimStats a = run_simulation(cfg, wl);
  const SimStats b = run_simulation(cfg, wl);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.counters.get("llc.hits"), b.counters.get("llc.hits"));
  EXPECT_EQ(a.counters.get("dram.row_hits"), b.counters.get("dram.row_hits"));
}

TEST(SystemIntegration, GqaMergingAppears) {
  // With G sharers dispatched as a wave (round-robin dispatch + HLG), K
  // lines must be reused: DRAM reads far below total requests.
  SimConfig cfg = small_cfg();
  cfg.core.tb_dispatch = TbDispatch::kPartitionedStealing;
  Workload wl = Workload::logit(small_model(8), 512, cfg);
  wl.mapping.order = TbOrder::kHLG;
  const SimStats s = run_simulation(cfg, wl);
  const TrafficEstimate est = estimate_traffic(wl.op, wl.mapping);
  EXPECT_LT(s.dram_reads * 3, est.load_line_requests)
      << "GQA sharing should collapse the G-fold request load into few "
         "DRAM reads (L1 merges + L2 hits + MSHR merges)";
  EXPECT_GT(s.l2_hit_rate + s.mshr_hit_rate, 0.3);
}

TEST(SystemIntegration, MshrAwarePoliciesRaiseMergeRate) {
  // The paper's Fig 8 mechanism: dynmg+BMA converts cache hits into MSHR
  // hits (merge rate strictly up vs unoptimized FCFS). Needs the full
  // 16-core machine: with 4 cores the per-slice queues are too shallow
  // for the arbiter to reorder anything.
  SimConfig base = SimConfig::table5();
  base.core.tb_dispatch = TbDispatch::kPartitionedStealing;
  const Workload wl = Workload::logit(ModelShape::llama3_70b(), 2048, base);
  const SimStats unopt = run_simulation(
      with_policies(base, ThrottlePolicy::kNone, ArbPolicy::kFcfs), wl);
  const SimStats ours = run_simulation(
      with_policies(base, ThrottlePolicy::kDynMg, ArbPolicy::kBma), wl);
  EXPECT_GT(ours.mshr_hit_rate, unopt.mshr_hit_rate);
  EXPECT_LE(ours.t_cs, unopt.t_cs + 0.05);
}

TEST(SystemIntegration, ThrottleControllerEngages) {
  SimConfig cfg = small_cfg();
  cfg.throttle.policy = ThrottlePolicy::kDynMg;
  const Workload wl = Workload::logit(small_model(), 512, cfg);
  TraceGen gen(wl.op, wl.mapping);
  System sys(cfg, gen);
  // Step past a few sampling periods and check the gear moved off zero
  // under this contended configuration.
  for (int i = 0; i < 12000 && !sys.done(); ++i) sys.step();
  const auto& dynmg = dynamic_cast<const DynMg&>(sys.throttle());
  EXPECT_GT(dynmg.gear(), 0u);
  EXPECT_EQ(dynmg.throttled_count(), dynmg.cores_for_gear(dynmg.gear()));
}

TEST(SystemIntegration, TraceFileDrivenRunMatchesGenerated) {
  // The hybrid framework hand-off: exporting the trace and replaying it
  // must give identical cycle counts.
  const SimConfig cfg = small_cfg();
  const Workload wl = Workload::logit(small_model(), 256, cfg);
  TraceGen gen(wl.op, wl.mapping);
  std::stringstream ss;
  write_trace(ss, gen);
  const auto replay = read_trace(ss);

  System a(cfg, gen);
  System b(cfg, *replay);
  const SimStats sa = a.run();
  const SimStats sb = b.run();
  EXPECT_EQ(sa.cycles, sb.cycles);
  EXPECT_EQ(sa.dram_reads, sb.dram_reads);
}

TEST(SystemIntegration, AttendOperatorRuns) {
  const SimConfig cfg = small_cfg();
  const Workload wl = Workload::attend(small_model(), 256, cfg);
  const SimStats s = run_simulation(cfg, wl);
  EXPECT_EQ(s.thread_blocks, wl.mapping.num_thread_blocks(wl.op));
  EXPECT_GT(s.dram_reads, 0u);
}

TEST(SystemIntegration, DispatchModesAllComplete) {
  for (TbDispatch d : {TbDispatch::kStaticBlocked,
                       TbDispatch::kPartitionedStealing,
                       TbDispatch::kGlobalQueue}) {
    SimConfig cfg = small_cfg();
    cfg.core.tb_dispatch = d;
    const Workload wl = Workload::logit(small_model(), 256, cfg);
    const SimStats s = run_simulation(cfg, wl);
    EXPECT_EQ(s.thread_blocks, wl.mapping.num_thread_blocks(wl.op))
        << static_cast<int>(d);
  }
}

TEST(SystemIntegration, CacheSizeMonotonicityForBlockedBaseline) {
  // The Fig 9 mechanism: under the paper's static per-core traces the
  // unoptimized baseline runs faster with a bigger LLC.
  SimConfig cfg = small_cfg();
  cfg.core.tb_dispatch = TbDispatch::kStaticBlocked;
  Workload wl = Workload::logit(small_model(8), 2048, cfg);
  wl.mapping.order = TbOrder::kHGL;

  SimConfig small_cache = cfg;
  small_cache.llc.size_bytes = 256 << 10;
  SimConfig big_cache = cfg;
  big_cache.llc.size_bytes = 8 << 20;
  const SimStats s_small = run_simulation(small_cache, wl);
  const SimStats s_big = run_simulation(big_cache, wl);
  EXPECT_LT(s_big.cycles, s_small.cycles);
  EXPECT_LE(s_big.dram_reads, s_small.dram_reads);
}

TEST(SystemIntegration, MaxCyclesGuardThrows) {
  SimConfig cfg = small_cfg();
  cfg.max_cycles = 10;  // absurdly small
  const Workload wl = Workload::logit(small_model(), 256, cfg);
  TraceGen gen(wl.op, wl.mapping);
  System sys(cfg, gen);
  EXPECT_THROW(sys.run(), std::runtime_error);
}

TEST(ExperimentRunner, ParallelRunsKeepOrderAndDeterminism) {
  SimConfig cfg = small_cfg();
  const Workload wl = Workload::logit(small_model(), 256, cfg);
  std::vector<ExperimentSpec> specs;
  specs.push_back({"a", with_policies(cfg, ThrottlePolicy::kNone,
                                      ArbPolicy::kFcfs), wl});
  specs.push_back({"b", with_policies(cfg, ThrottlePolicy::kDynMg,
                                      ArbPolicy::kBma), wl});
  specs.push_back({"a2", with_policies(cfg, ThrottlePolicy::kNone,
                                       ArbPolicy::kFcfs), wl});
  const auto results = run_experiments(specs, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].name, "a");
  EXPECT_EQ(results[0].stats.cycles, results[2].stats.cycles);
}

}  // namespace
}  // namespace llamcat
