// Golden-stats regression: every (ThrottlePolicy x ArbPolicy) combination
// runs a test_smoke-sized Logit workload, a two-request co-scheduled
// decode wave (one fused System, requests sharing the LLC), and a
// two-request continuous (streaming) pass with skewed sequence lengths,
// and the key counters are pinned against checked-in golden values. The
// simulator is integer-timed with its own portable RNG, so these are exact
// across platforms.
//
// Regenerating after an intentional behavior change:
//   LLAMCAT_GOLDEN_REGEN=../tests/golden_stats.inc ./test_golden_stats
// (path is relative to the working directory; from the repo root use
//  LLAMCAT_GOLDEN_REGEN=tests/golden_stats.inc ./build/test_golden_stats)
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "scenario/traffic.hpp"
#include "sim/experiment.hpp"

namespace llamcat {
namespace {

struct GoldenRow {
  const char* name;
  std::uint64_t cycles;
  std::uint64_t dram_reads;
  std::uint64_t thread_blocks;
};

constexpr GoldenRow kGolden[] = {
#include "golden_stats.inc"
};

SimConfig small_config() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 5'000'000;
  return cfg;
}

ModelShape tiny_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

struct MeasuredRow {
  std::string name;
  std::uint64_t cycles;
  std::uint64_t dram_reads;
  std::uint64_t thread_blocks;
};

std::vector<MeasuredRow> measure_all_policy_pairs() {
  const SimConfig base = small_config();
  const Workload wl = Workload::logit(tiny_model(), 128, base);
  std::vector<MeasuredRow> rows;
  const auto all_throttles = {ThrottlePolicy::kNone, ThrottlePolicy::kDyncta,
                              ThrottlePolicy::kLcs, ThrottlePolicy::kDynMg};
  const auto all_arbs = {ArbPolicy::kFcfs, ArbPolicy::kBalanced,
                         ArbPolicy::kMa, ArbPolicy::kBma, ArbPolicy::kCobrra,
                         ArbPolicy::kMrpb, ArbPolicy::kOracle,
                         ArbPolicy::kRandom};
  for (ThrottlePolicy thr : all_throttles) {
    for (ArbPolicy arb : all_arbs) {
      const SimConfig cfg = with_policies(base, thr, arb);
      const SimStats s = run_simulation(cfg, wl);
      rows.push_back({to_string(thr) + "/" + to_string(arb), s.cycles,
                      s.dram_reads, s.thread_blocks});
    }
  }
  // Co-scheduled rows: two requests fused into one shared System per wave
  // (one Logit + one Attend wave), pinning the cross-request contention
  // path per policy pair.
  const scenario::RequestBatch batch =
      scenario::RequestBatch::uniform(tiny_model(), 2, 128);
  scenario::DecodePassConfig pass_cfg;
  pass_cfg.num_layers = 1;
  pass_cfg.include_gemv = false;
  pass_cfg.mode = scenario::ExecutionMode::kCoScheduled;
  for (ThrottlePolicy thr : all_throttles) {
    for (ArbPolicy arb : all_arbs) {
      const SimConfig cfg = with_policies(base, thr, arb);
      const scenario::BatchStats s =
          scenario::DecodePass(batch, pass_cfg, cfg).run();
      rows.push_back({"co/" + to_string(thr) + "/" + to_string(arb),
                      s.total.cycles, s.total.dram_reads,
                      s.total.thread_blocks});
    }
  }
  // Continuous rows: a skewed two-request batch through the streaming
  // engine, pinning the mid-flight stage-handoff path per policy pair (the
  // `cycles` column is the stream makespan here).
  const scenario::RequestBatch skewed =
      scenario::RequestBatch::with_seq_lens(tiny_model(), {256, 128});
  scenario::DecodePassConfig ct_cfg;
  ct_cfg.num_layers = 1;
  ct_cfg.include_gemv = false;
  ct_cfg.mode = scenario::ExecutionMode::kContinuous;
  for (ThrottlePolicy thr : all_throttles) {
    for (ArbPolicy arb : all_arbs) {
      const SimConfig cfg = with_policies(base, thr, arb);
      const scenario::BatchStats s =
          scenario::DecodePass(skewed, ct_cfg, cfg).run();
      rows.push_back({"ct/" + to_string(thr) + "/" + to_string(arb),
                      s.makespan, s.total.dram_reads,
                      s.total.thread_blocks});
    }
  }
  // Serving-policy rows: a staggered, skewed, multi-step batch under (a) a
  // finite KV budget with FCFS admission and (b) the same budget with
  // shortest-remaining-first admission plus preemption, pinning the
  // queue/preempt state machine (and the step-aware peak-footprint
  // accounting the budget gates on) for the headline policy pairs. The
  // budget fits request 0 plus request 2's multi-step peak, but never
  // requests 0 and 1 together. `cycles` is the stream makespan.
  const scenario::RequestBatch staggered(
      tiny_model(), {{0, 256, 0, 1}, {1, 128, 1000, 1}, {2, 64, 3000, 2}});
  scenario::DecodePassConfig sv_cfg;
  sv_cfg.num_layers = 1;
  sv_cfg.include_gemv = false;
  sv_cfg.mode = scenario::ExecutionMode::kContinuous;
  sv_cfg.serving.kv_budget_bytes =
      (256 + 96) * staggered.kv_bytes_per_token();
  const std::pair<ThrottlePolicy, ArbPolicy> headline_pairs[] = {
      {ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {ThrottlePolicy::kNone, ArbPolicy::kBma},
      {ThrottlePolicy::kDynMg, ArbPolicy::kFcfs},
      {ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };
  const std::pair<AdmitPolicy, bool> serving_variants[] = {
      {AdmitPolicy::kFcfs, false},
      {AdmitPolicy::kShortestRemaining, true},
  };
  for (const auto& [thr, arb] : headline_pairs) {
    for (const auto& [admit, preempt] : serving_variants) {
      sv_cfg.serving.policy = admit;
      sv_cfg.serving.preempt = preempt;
      const SimConfig cfg = with_policies(base, thr, arb);
      const scenario::BatchStats s =
          scenario::DecodePass(staggered, sv_cfg, cfg).run();
      rows.push_back({"sv/" + to_string(admit) + (preempt ? "+pre/" : "/") +
                          to_string(thr) + "/" + to_string(arb),
                      s.makespan, s.total.dram_reads,
                      s.total.thread_blocks});
    }
  }
  // Paged-eviction rows: a long request whose peak is the whole budget plus
  // two budget-blocked short arrivals, under kv_evict=cold-blocks. The
  // blocked shorts trigger a stage-boundary eviction of the long request
  // (swap-based admission), and the long resumes through a refetch - so
  // these rows pin the evict/refetch path (pager bookkeeping, the
  // queued-yield admission gate, the refetch hold) per headline policy
  // pair and queue discipline. `cycles` is the stream makespan, which
  // includes the refetch transfer.
  const scenario::RequestBatch paged(
      tiny_model(), {{0, 512, 0, 1}, {1, 64, 1000, 1}, {2, 64, 3000, 1}});
  scenario::DecodePassConfig pg_cfg;
  pg_cfg.num_layers = 1;
  pg_cfg.include_gemv = false;
  pg_cfg.mode = scenario::ExecutionMode::kContinuous;
  pg_cfg.serving.kv_budget_bytes = 512 * paged.kv_bytes_per_token();
  pg_cfg.serving.preempt = true;
  pg_cfg.serving.kv_evict = KvEvictPolicy::kColdBlocks;
  for (const auto& [thr, arb] : headline_pairs) {
    for (const AdmitPolicy admit :
         {AdmitPolicy::kFcfs, AdmitPolicy::kShortestRemaining}) {
      pg_cfg.serving.policy = admit;
      const SimConfig cfg = with_policies(base, thr, arb);
      const scenario::BatchStats s =
          scenario::DecodePass(paged, pg_cfg, cfg).run();
      rows.push_back({"pg/" + to_string(admit) + "+cold/" + to_string(thr) +
                          "/" + to_string(arb),
                      s.makespan, s.total.dram_reads,
                      s.total.thread_blocks});
    }
  }
  // Open-loop rows: a seeded Poisson workload from the traffic generator
  // (scenario/traffic.hpp) through the streaming engine per headline policy
  // pair, pinning the generator's draws (arrival clock, seq/steps samples)
  // and the engine's handling of generated mid-flight arrivals in one row.
  // Any unintended change to the sampler or the arrival bookkeeping moves
  // these without touching the hand-built rows above.
  scenario::TrafficConfig ol_traffic;
  ol_traffic.num_requests = 4;
  ol_traffic.seed = 3;
  ol_traffic.mean_gap = 10'000;
  ol_traffic.seq_min = 32;
  ol_traffic.seq_max = 160;
  ol_traffic.steps_min = 1;
  ol_traffic.steps_max = 3;
  const scenario::RequestBatch open_loop(
      tiny_model(), scenario::generate_traffic(ol_traffic));
  scenario::DecodePassConfig ol_cfg;
  ol_cfg.num_layers = 1;
  ol_cfg.include_gemv = false;
  ol_cfg.mode = scenario::ExecutionMode::kContinuous;
  for (const auto& [thr, arb] : headline_pairs) {
    const SimConfig cfg = with_policies(base, thr, arb);
    const scenario::BatchStats s =
        scenario::DecodePass(open_loop, ol_cfg, cfg).run();
    rows.push_back({"ol/poisson/" + to_string(thr) + "/" + to_string(arb),
                    s.makespan, s.total.dram_reads, s.total.thread_blocks});
  }
  return rows;
}

TEST(GoldenStats, AllPolicyPairsMatchCheckedInValues) {
  const std::vector<MeasuredRow> rows = measure_all_policy_pairs();

  if (const char* regen = std::getenv("LLAMCAT_GOLDEN_REGEN");
      regen != nullptr && *regen != '\0') {
    std::ofstream out(regen);
    ASSERT_TRUE(out) << "cannot open " << regen;
    out << "// Generated by test_golden_stats with LLAMCAT_GOLDEN_REGEN; do\n"
           "// not edit by hand. {name, cycles, dram_reads, thread_blocks}.\n"
           "// clang-format off\n";
    for (const MeasuredRow& r : rows) {
      out << "{\"" << r.name << "\", " << r.cycles << "ull, " << r.dram_reads
          << "ull, " << r.thread_blocks << "ull},\n";
    }
    out << "// clang-format on\n";
    GTEST_SKIP() << "regenerated golden values into " << regen
                 << "; rebuild and rerun to verify";
  }

  ASSERT_EQ(rows.size(), std::size(kGolden));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].name, kGolden[i].name);
    EXPECT_EQ(rows[i].cycles, kGolden[i].cycles) << rows[i].name;
    EXPECT_EQ(rows[i].dram_reads, kGolden[i].dram_reads) << rows[i].name;
    EXPECT_EQ(rows[i].thread_blocks, kGolden[i].thread_blocks)
        << rows[i].name;
  }
}

}  // namespace
}  // namespace llamcat
