// Tests for the related-work / ablation arbiters (MRPB, oracle, random):
// unit-level decision checks against hand-built queues, a fake oracle, and
// full-system completion/conservation sweeps across every arbitration
// policy (TEST_P).
#include <gtest/gtest.h>

#include <set>

#include "cache/mshr.hpp"
#include "core/arbitration.hpp"
#include "sim/experiment.hpp"

namespace llamcat {
namespace {

Addr line(std::uint64_t i) { return i * kLineBytes; }

QueuedRequest req(Addr a, CoreId core, std::uint64_t seq) {
  MemRequest r;
  r.line_addr = a;
  r.core = core;
  r.req_id = static_cast<std::uint32_t>(seq);
  r.seq = seq;
  return QueuedRequest{r, 0};
}

RequestArbiter make_arbiter(ArbPolicy policy, std::uint32_t cores = 4) {
  ArbConfig cfg;
  cfg.policy = policy;
  return RequestArbiter(cfg, cores, /*sent_reqs_lifetime=*/8, /*seed=*/3);
}

class FakeOracle final : public ILookupOracle {
 public:
  [[nodiscard]] bool is_cache_hit(Addr a) const override {
    return hits.count(a) > 0;
  }
  std::set<Addr> hits;
};

// ----------------------------------------------------------------- MRPB --

TEST(MrpbArbiter, SticksToLastServedCore) {
  RequestArbiter arb = make_arbiter(ArbPolicy::kMrpb);
  Mshr mshr(4, 4);
  std::vector<QueuedRequest> q{req(line(1), 0, 0), req(line(2), 1, 1),
                               req(line(3), 0, 2)};
  // First pick: no sticky core yet -> FCFS head (core 0).
  auto c = arb.select(q, mshr);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->index, 0u);
  arb.on_selected(q[c->index].req, c->spec, 0);
  q.erase(q.begin());
  // Sticky core is now 0: the core-0 request at the back must win over the
  // older core-1 request at the head.
  c = arb.select(q, mshr);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(q[c->index].req.core, 0);
}

TEST(MrpbArbiter, FallsBackToHeadWhenStickyCoreEmpty) {
  RequestArbiter arb = make_arbiter(ArbPolicy::kMrpb);
  Mshr mshr(4, 4);
  std::vector<QueuedRequest> q{req(line(1), 2, 0)};
  auto c = arb.select(q, mshr);
  arb.on_selected(q[0].req, c->spec, 0);  // sticky = core 2
  std::vector<QueuedRequest> q2{req(line(5), 1, 1), req(line(6), 3, 2)};
  c = arb.select(q2, mshr);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->index, 0u) << "no core-2 request -> oldest request wins";
}

// --------------------------------------------------------------- oracle --

TEST(OracleArbiter, PrefersGroundTruthHit) {
  RequestArbiter arb = make_arbiter(ArbPolicy::kOracle);
  Mshr mshr(4, 4);
  FakeOracle oracle;
  oracle.hits.insert(line(9));
  // The hit_buffer knows nothing about line(9): plain MA would rank both
  // requests as misses and take the head; the oracle sees the hit.
  std::vector<QueuedRequest> q{req(line(1), 0, 0), req(line(9), 1, 1)};
  const auto c = arb.select(q, mshr, &oracle);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->index, 1u);
  EXPECT_EQ(c->spec, RequestArbiter::SpecClass::kCacheHit);
}

TEST(OracleArbiter, RanksMshrHitAboveMiss) {
  RequestArbiter arb = make_arbiter(ArbPolicy::kOracle);
  Mshr mshr(4, 4);
  FakeOracle oracle;
  mshr.add(line(7), MshrTarget{0, 0, false}, 0);
  std::vector<QueuedRequest> q{req(line(1), 0, 0), req(line(7), 1, 1)};
  const auto c = arb.select(q, mshr, &oracle);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->index, 1u);
  EXPECT_EQ(c->spec, RequestArbiter::SpecClass::kMshrHit);
}

TEST(OracleArbiter, BalancedTieBreakAmongEqualClasses) {
  RequestArbiter arb = make_arbiter(ArbPolicy::kOracle);
  Mshr mshr(4, 4);
  FakeOracle oracle;
  // Core 0 has been served three times; core 1 never.
  for (int i = 0; i < 3; ++i) {
    arb.on_selected(req(line(100 + static_cast<std::uint64_t>(i)), 0,
                        static_cast<std::uint64_t>(i))
                        .req,
                    RequestArbiter::SpecClass::kMiss, 0);
  }
  std::vector<QueuedRequest> q{req(line(1), 0, 10), req(line(2), 1, 11)};
  const auto c = arb.select(q, mshr, &oracle);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(q[c->index].req.core, 1) << "least-served core wins ties";
}

TEST(OracleArbiter, NullOracleDegradesToMshrOnly) {
  RequestArbiter arb = make_arbiter(ArbPolicy::kOracle);
  Mshr mshr(4, 4);
  std::vector<QueuedRequest> q{req(line(1), 0, 0), req(line(2), 1, 1)};
  const auto c = arb.select(q, mshr, nullptr);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->spec, RequestArbiter::SpecClass::kMiss);
}

// --------------------------------------------------------------- random --

TEST(RandomArbiter, CoversTheQueueAndStaysInBounds) {
  RequestArbiter arb = make_arbiter(ArbPolicy::kRandom);
  Mshr mshr(4, 4);
  std::vector<QueuedRequest> q{req(line(1), 0, 0), req(line(2), 1, 1),
                               req(line(3), 2, 2), req(line(4), 3, 3)};
  std::set<std::size_t> seen;
  for (int i = 0; i < 256; ++i) {
    const auto c = arb.select(q, mshr);
    ASSERT_TRUE(c.has_value());
    ASSERT_LT(c->index, q.size());
    seen.insert(c->index);
  }
  EXPECT_EQ(seen.size(), 4u) << "every queue slot should be reachable";
}

TEST(RandomArbiter, DeterministicPerSeed) {
  ArbConfig cfg;
  cfg.policy = ArbPolicy::kRandom;
  Mshr mshr(4, 4);
  std::vector<QueuedRequest> q{req(line(1), 0, 0), req(line(2), 1, 1),
                               req(line(3), 2, 2)};
  auto sequence = [&](std::uint64_t seed) {
    RequestArbiter arb(cfg, 4, 8, seed);
    std::vector<std::size_t> out;
    for (int i = 0; i < 64; ++i) out.push_back(arb.select(q, mshr)->index);
    return out;
  };
  EXPECT_EQ(sequence(11), sequence(11));
  EXPECT_NE(sequence(11), sequence(12));
}

// ------------------------------------------------- full-system sweep ------

SimConfig small_cfg(ArbPolicy arb) {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 2ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.arb.policy = arb;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

class ArbPolicySweep : public ::testing::TestWithParam<ArbPolicy> {};

TEST_P(ArbPolicySweep, SystemRunsToCompletionAndConserves) {
  const SimConfig cfg = small_cfg(GetParam());
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  const Workload wl = Workload::logit(m, 512, cfg);
  const SimStats s = run_simulation(cfg, wl);
  const auto& c = s.counters;
  EXPECT_GT(s.cycles, 0u);
  EXPECT_EQ(c.get("llc.requests_in"), c.get("llc.requests_served"));
  EXPECT_EQ(c.get("llc.hits") + c.get("llc.misses"), c.get("llc.lookups"));
  EXPECT_EQ(c.get("llc.mshr_hits") + c.get("llc.mshr_allocs"),
            c.get("llc.misses"));
  EXPECT_EQ(c.get("llc.mshr_allocs"), c.get("dram.reads"));
}

TEST_P(ArbPolicySweep, DeterministicAcrossRuns) {
  const SimConfig cfg = small_cfg(GetParam());
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 2;
  const Workload wl = Workload::logit(m, 256, cfg);
  EXPECT_EQ(run_simulation(cfg, wl).cycles, run_simulation(cfg, wl).cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllArbiters, ArbPolicySweep,
    ::testing::Values(ArbPolicy::kFcfs, ArbPolicy::kBalanced, ArbPolicy::kMa,
                      ArbPolicy::kBma, ArbPolicy::kCobrra, ArbPolicy::kMrpb,
                      ArbPolicy::kOracle, ArbPolicy::kRandom),
    [](const ::testing::TestParamInfo<ArbPolicy>& info) {
      std::string name = to_string(info.param);
      for (char& ch : name) {
        if (ch == '-' || ch == '+') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace llamcat
