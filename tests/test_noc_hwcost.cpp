// Unit tests: network (latency, credits, ordering) and the hardware-cost
// area model (paper §6.1 substitution).
#include <gtest/gtest.h>

#include "hwcost/area_model.hpp"
#include "noc/network.hpp"

namespace llamcat {
namespace {

NocConfig noc_cfg() {
  NocConfig cfg;
  cfg.req_latency = 5;
  cfg.resp_latency = 7;
  return cfg;
}

MemRequest mk(Addr a, CoreId core) {
  MemRequest r;
  r.line_addr = a;
  r.core = core;
  return r;
}

TEST(Network, RequestArrivesAfterLatency) {
  Network net(noc_cfg(), 2, 2, 4);
  net.send_request(0, mk(0x40, 1), /*now=*/10);
  EXPECT_EQ(net.peek_request(0, 14), nullptr);
  const MemRequest* r = net.peek_request(0, 15);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->core, 1u);
  net.pop_request(0);
  EXPECT_TRUE(net.idle());
}

TEST(Network, FifoOrderPreserved) {
  Network net(noc_cfg(), 1, 1, 8);
  for (Addr i = 0; i < 4; ++i) net.send_request(0, mk(i * 64, 0), i);
  for (Addr i = 0; i < 4; ++i) {
    const MemRequest* r = net.peek_request(0, 100);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->line_addr, i * 64);
    net.pop_request(0);
  }
}

TEST(Network, CreditsProvideBackpressure) {
  Network net(noc_cfg(), 1, 2, 2);
  EXPECT_TRUE(net.can_send_request(0));
  net.send_request(0, mk(0, 0), 0);
  net.send_request(0, mk(64, 0), 0);
  EXPECT_FALSE(net.can_send_request(0));
  EXPECT_TRUE(net.can_send_request(1));  // per-slice credits
  net.pop_request(0);
  EXPECT_TRUE(net.can_send_request(0));
}

TEST(Network, ResponsesRoutedPerCore) {
  Network net(noc_cfg(), 2, 1, 4);
  net.send_response(MemResponse{0x80, 1, 7}, 0);
  EXPECT_EQ(net.peek_response(0, 100), nullptr);
  const MemResponse* r = net.peek_response(1, 7);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->req_id, 7u);
  net.pop_response(1);
  EXPECT_TRUE(net.idle());
}

// ------------------------------------------------------------- hwcost --

TEST(AreaModel, HitBufferNearPaperValue) {
  // Paper §6.1: hit buffer = 3088.61 um^2 at 15nm. The analytical model
  // should land within ~25% for the Table 5 configuration.
  const SimConfig cfg = SimConfig::table5();
  const AreaBreakdown hb = hit_buffer_area(cfg.arb);
  EXPECT_GT(hb.total_um2, 3088.61 * 0.75);
  EXPECT_LT(hb.total_um2, 3088.61 * 1.25);
}

TEST(AreaModel, ArbiterNearPaperValue) {
  // Paper §6.1: arbiter (incl. request queue) = 7312.93 um^2.
  const SimConfig cfg = SimConfig::table5();
  const AreaBreakdown arb =
      arbiter_area(cfg.llc, cfg.arb, cfg.core.num_cores);
  EXPECT_GT(arb.total_um2, 7312.93 * 0.6);
  EXPECT_LT(arb.total_um2, 7312.93 * 1.4);
}

TEST(AreaModel, ScalesWithStructureSizes) {
  const SimConfig cfg = SimConfig::table5();
  ArbConfig big = cfg.arb;
  big.hit_buffer_depth *= 2;
  EXPECT_GT(hit_buffer_area(big).total_um2,
            hit_buffer_area(cfg.arb).total_um2 * 1.8);
  LlcConfig big_q = cfg.llc;
  big_q.req_q_size *= 2;
  EXPECT_GT(arbiter_area(big_q, cfg.arb, 16).total_um2,
            arbiter_area(cfg.llc, cfg.arb, 16).total_um2);
}

TEST(AreaModel, BreakdownSumsToTotal) {
  const SimConfig cfg = SimConfig::table5();
  const AreaBreakdown arb =
      arbiter_area(cfg.llc, cfg.arb, cfg.core.num_cores);
  double sum = 0;
  for (const auto& item : arb.items) sum += item.um2;
  // total includes the overhead factor applied after summing.
  EXPECT_GT(arb.total_um2, sum);
  EXPECT_FALSE(arb.items.empty());
}

}  // namespace
}  // namespace llamcat
