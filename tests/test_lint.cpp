// llamcat_lint self-tests: the fixture corpus, directive semantics, and the
// docs <-> rule-catalog lockstep.
//
// Every fixture in tests/lint_fixtures/ annotates its intended violations
// in place with expect markers; this suite lints each fixture and compares
// the (line, rule) sets exactly - an analyzer change that fires a rule on a
// new line, stops firing, or fires twice turns up here as a diff against
// the fixture's own annotations. Coverage assertions then pin the PR
// contract: every rule in the catalog has at least one caught violation
// and at least one honored suppression somewhere in the corpus, and every
// rule id is documented in docs/static-analysis.md.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.hpp"

namespace lint = llamcat::lint;

namespace {

using LineRule = std::pair<int, std::string>;

std::vector<LineRule> violation_keys(const lint::FileReport& r) {
  std::vector<LineRule> keys;
  for (const auto& v : r.violations) keys.emplace_back(v.line, v.rule);
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<LineRule> expectation_keys(const lint::FileReport& r) {
  std::vector<LineRule> keys;
  for (const auto& e : r.expectations) keys.emplace_back(e.line, e.rule);
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::string> fixture_files() {
  std::vector<std::string> files;
  for (const auto& e :
       std::filesystem::directory_iterator(LLAMCAT_LINT_FIXTURE_DIR)) {
    if (e.path().extension() == ".cpp") files.push_back(e.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

TEST(LintRules, CatalogIsStable) {
  const auto& rules = lint::rules();
  ASSERT_GE(rules.size(), 8u);
  std::set<std::string> names;
  for (const auto& r : rules) {
    EXPECT_TRUE(names.insert(std::string(r.name)).second)
        << "duplicate rule id " << r.name;
    EXPECT_FALSE(r.summary.empty()) << r.name << " has no summary";
    // Stable kebab-case ids: lowercase letters and single dashes.
    for (const char c : r.name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '-')
          << "rule id " << r.name << " is not kebab-case";
    }
    EXPECT_TRUE(lint::is_rule(r.name));
  }
  EXPECT_FALSE(lint::is_rule("no-such-rule"));
}

// Each fixture's actual findings must equal its own expect annotations,
// line for line, rule for rule.
TEST(LintFixtures, ExpectationsMatchExactly) {
  const auto files = fixture_files();
  ASSERT_FALSE(files.empty());
  for (const std::string& f : files) {
    const lint::FileReport report = lint::lint_file(f);
    EXPECT_FALSE(report.expectations.empty())
        << f << " has no expect annotations";
    EXPECT_EQ(violation_keys(report), expectation_keys(report)) << f;
  }
}

// Every rule has >= 1 caught violation and >= 1 honored suppression
// somewhere in the corpus - the fixtures demonstrate both the bug and the
// sanctioned escape hatch for each rule.
TEST(LintFixtures, EveryRuleCaughtAndSuppressed) {
  std::map<std::string, int> caught;
  std::map<std::string, int> suppressed;
  for (const std::string& f : fixture_files()) {
    const lint::FileReport report = lint::lint_file(f);
    EXPECT_FALSE(report.suppressed.empty())
        << f << " demonstrates no honored suppression";
    for (const auto& v : report.violations) ++caught[v.rule];
    for (const auto& v : report.suppressed) ++suppressed[v.rule];
  }
  for (const auto& r : lint::rules()) {
    const std::string name(r.name);
    EXPECT_GE(caught[name], 1) << "no fixture triggers " << name;
    EXPECT_GE(suppressed[name], 1)
        << "no fixture demonstrates a suppressed " << name;
  }
}

// The rule catalog and docs/static-analysis.md stay in lockstep: every rule
// id appears in the doc as `backticked` text (check_doc_links.sh enforces
// the same invariant build-free in CI).
TEST(LintDocs, EveryRuleDocumented) {
  const std::string doc = slurp(LLAMCAT_STATIC_ANALYSIS_DOC);
  ASSERT_FALSE(doc.empty()) << "cannot read " << LLAMCAT_STATIC_ANALYSIS_DOC;
  for (const auto& r : lint::rules()) {
    const std::string needle = "`" + std::string(r.name) + "`";
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "rule " << r.name << " is not documented in static-analysis.md";
  }
}

// ---------------------------------------------------------------------------
// Directive semantics on synthetic sources (lint_source, no files).
// ---------------------------------------------------------------------------

TEST(LintDirectives, SameLineAndLineAboveSuppress) {
  const char* same_line =
      "#include <ctime>\n"
      "long f() { return time(nullptr); }  // lint:allow(wallclock): report\n";
  auto r = lint::lint_source("t.cpp", same_line);
  EXPECT_TRUE(r.violations.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "wallclock");

  const char* line_above =
      "// lint:allow(wallclock): report row only\n"
      "long f() { return time(nullptr); }\n";
  r = lint::lint_source("t.cpp", line_above);
  EXPECT_TRUE(r.violations.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
}

TEST(LintDirectives, TwoLinesAboveDoesNotSuppress) {
  const char* src =
      "// lint:allow(wallclock): too far away to apply\n"
      "\n"
      "long f() { return time(nullptr); }\n";
  const auto r = lint::lint_source("t.cpp", src);
  // The wallclock finding stays active and the distant allow is unused.
  std::set<std::string> active;
  for (const auto& v : r.violations) active.insert(v.rule);
  EXPECT_TRUE(active.count("wallclock"));
  EXPECT_TRUE(active.count("unused-suppression"));
}

TEST(LintDirectives, ReasonlessAllowSuppressesNothing) {
  const char* src =
      "// lint:allow(wallclock)\n"
      "long f() { return time(nullptr); }\n";
  const auto r = lint::lint_source("t.cpp", src);
  std::set<std::string> active;
  for (const auto& v : r.violations) active.insert(v.rule);
  EXPECT_TRUE(active.count("wallclock"));
  EXPECT_TRUE(active.count("allow-without-reason"));
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(LintDirectives, UnknownRuleNameIsFlagged) {
  const char* src = "// lint:allow(not-a-rule): some reason\nint x = 0;\n";
  const auto r = lint::lint_source("t.cpp", src);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].rule, "unknown-rule");
}

TEST(LintDirectives, MultiRuleAllowCoversBothFindings) {
  const char* src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, double> m;\n"
      "double f() {\n"
      "  double s = 0.0;\n"
      "  // lint:allow(unordered-iteration, float-accumulation): tolerant\n"
      "  for (const auto& kv : m) s += kv.second;\n"
      "  return s;\n"
      "}\n";
  const auto r = lint::lint_source("t.cpp", src);
  EXPECT_TRUE(r.violations.empty()) << r.violations.size();
  EXPECT_EQ(r.suppressed.size(), 2u);
}

// Comments and string literals must not trigger code rules: tokens inside
// them never reach the analyzer.
TEST(LintLexer, CommentsAndStringsAreInert) {
  const char* src =
      "// calling rand() here would be bad\n"
      "const char* s = \"time(nullptr) inside a string\";\n"
      "const char* r = R\"(std::mutex in a raw string)\";\n";
  const auto rep = lint::lint_source("t.cpp", src);
  EXPECT_TRUE(rep.violations.empty());
}

// The companion-header context seeds the symbol table: a member declared
// unordered in the .hpp keeps its container kind in the .cpp.
TEST(LintContext, CompanionHeaderSeedsSymbols) {
  const char* header =
      "#include <unordered_map>\n"
      "struct Pool { std::unordered_map<int, int> table; void dump(); };\n";
  const char* source =
      "void Pool::dump() {\n"
      "  for (const auto& kv : table) { (void)kv; }\n"
      "}\n";
  const auto with_ctx = lint::lint_source("pool.cpp", source, header);
  ASSERT_EQ(with_ctx.violations.size(), 1u);
  EXPECT_EQ(with_ctx.violations[0].rule, "unordered-iteration");

  // Without the header the member's type is unknown - no finding, which is
  // exactly why lint_file resolves companions automatically.
  const auto without_ctx = lint::lint_source("pool.cpp", source);
  EXPECT_TRUE(without_ctx.violations.empty());
}

TEST(LintReport, ViolationsAreSortedByLineThenRule) {
  const char* src =
      "#include <cstdlib>\n"
      "#include <ctime>\n"
      "long f() { return time(nullptr); }\n"
      "int g() { return rand(); }\n";
  const auto r = lint::lint_source("t.cpp", src);
  ASSERT_EQ(r.violations.size(), 2u);
  EXPECT_EQ(r.violations[0].line, 3);
  EXPECT_EQ(r.violations[0].rule, "wallclock");
  EXPECT_EQ(r.violations[1].line, 4);
  EXPECT_EQ(r.violations[1].rule, "ambient-rng");
}
