// CompositeTbSource: slot shifting, interleaving, provenance tags, address
// attribution, and the key equivalence - a single-operator composite run
// through System is bit-identical to the plain TraceGen run.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/composite.hpp"

namespace llamcat {
namespace {

SimConfig small_config() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

ModelShape tiny_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

TEST(ShiftToSlot, MovesEveryTensorBaseBySlotStride) {
  const OperatorSpec base = OperatorSpec::logit(tiny_model(), 128);
  const OperatorSpec moved = shift_to_slot(base, 3);
  EXPECT_EQ(moved.q_base, base.q_base + 3 * kSlotStride);
  EXPECT_EQ(moved.kv_base, base.kv_base + 3 * kSlotStride);
  EXPECT_EQ(moved.s_base, base.s_base + 3 * kSlotStride);
  EXPECT_EQ(moved.out_base, base.out_base + 3 * kSlotStride);
  // Slot 0 is the identity.
  EXPECT_EQ(shift_to_slot(base, 0).kv_base, base.kv_base);
}

TEST(CompositeTbSource, RoundRobinInterleavesAndTagsProvenance) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  const Workload b = Workload::logit(tiny_model(), 256, cfg);

  CompositeTbSource src(FuseOrder::kRoundRobin);
  src.add(10, shift_to_slot(a.op, 0), a.mapping);
  src.add(20, shift_to_slot(b.op, 1), b.mapping);

  const TraceGen ga(shift_to_slot(a.op, 0), a.mapping);
  const TraceGen gb(shift_to_slot(b.op, 1), b.mapping);
  ASSERT_EQ(src.num_tbs(), ga.num_tbs() + gb.num_tbs());

  // While both operators have blocks left, the order alternates a,b,a,b...
  const std::uint64_t common = 2 * std::min(ga.num_tbs(), gb.num_tbs());
  for (std::uint64_t i = 0; i < common; ++i) {
    const TbDesc& d = src.tb(i);
    EXPECT_EQ(d.id, i);  // globally renumbered
    EXPECT_EQ(d.request_id, i % 2 == 0 ? 10u : 20u);
    EXPECT_EQ(d.source_op, i % 2);
    // Geometry and instruction streams delegate to the right sub-source.
    const TraceGen& g = i % 2 == 0 ? ga : gb;
    const std::uint64_t local = i / 2;
    EXPECT_EQ(d.h, g.tb(local).h);
    EXPECT_EQ(d.l_begin, g.tb(local).l_begin);
    ASSERT_EQ(src.instr_count(i), g.instr_count(local));
    const Instr x = src.instr_at(i, 0);
    const Instr y = g.instr_at(local, 0);
    EXPECT_EQ(x.line_addr, y.line_addr);
    EXPECT_EQ(x.kind, y.kind);
  }
  // The longer operator's tail follows once the shorter drains.
  EXPECT_EQ(src.tb(src.num_tbs() - 1).request_id, 20u);
}

TEST(CompositeTbSource, ConcatKeepsOperatorMajorOrder) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  CompositeTbSource src(FuseOrder::kConcat);
  src.add(0, shift_to_slot(a.op, 0), a.mapping);
  src.add(1, shift_to_slot(a.op, 1), a.mapping);
  const std::uint64_t half = src.num_tbs() / 2;
  for (std::uint64_t i = 0; i < src.num_tbs(); ++i) {
    EXPECT_EQ(src.tb(i).request_id, i < half ? 0u : 1u);
  }
}

TEST(CompositeTbSource, AttributesAddressesToOwningRequest) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  CompositeTbSource src(FuseOrder::kRoundRobin);
  src.add(5, shift_to_slot(a.op, 0), a.mapping);
  src.add(9, shift_to_slot(a.op, 2), a.mapping);

  ASSERT_EQ(src.num_requests(), 2u);
  EXPECT_EQ(src.request_id_at(0), 5u);
  EXPECT_EQ(src.request_id_at(1), 9u);
  EXPECT_EQ(src.request_index_of(a.op.kv_base), 0u);
  EXPECT_EQ(src.request_index_of(a.op.kv_base + 2 * kSlotStride), 1u);
  // Slot 1 was never claimed; slot 3 is beyond both.
  EXPECT_EQ(src.request_index_of(a.op.kv_base + kSlotStride), kNoRequest);
  EXPECT_EQ(src.request_index_of(a.op.kv_base + 3 * kSlotStride), kNoRequest);
}

TEST(CompositeTbSource, RejectsSlotAliasingAcrossRequests) {
  const SimConfig cfg = small_config();
  const Workload a = Workload::logit(tiny_model(), 128, cfg);
  CompositeTbSource src;
  src.add(0, shift_to_slot(a.op, 0), a.mapping);
  // Same request may share its slot (logit + attend of one layer)...
  EXPECT_NO_THROW(src.add(0, shift_to_slot(a.op, 0), a.mapping));
  // ...another request may not: attribution would be ambiguous.
  EXPECT_THROW(src.add(1, shift_to_slot(a.op, 0), a.mapping),
               std::invalid_argument);
}

// The load-bearing equivalence: one operator fused "alone" and run through
// System must reproduce the plain single-source simulation exactly - this
// anchors coscheduled == independent at batch size 1.
TEST(CompositeTbSource, SingleOpSystemRunMatchesPlainRun) {
  const SimConfig cfg = small_config();
  const Workload wl = Workload::logit(tiny_model(), 128, cfg);
  const SimStats plain = run_simulation(cfg, wl);

  CompositeTbSource src(FuseOrder::kRoundRobin);
  src.add(0, wl.op, wl.mapping);
  System sys(cfg, src, &src);
  const SimStats fused = sys.run();

  EXPECT_EQ(fused.cycles, plain.cycles);
  EXPECT_EQ(fused.instructions, plain.instructions);
  EXPECT_EQ(fused.thread_blocks, plain.thread_blocks);
  EXPECT_EQ(fused.dram_reads, plain.dram_reads);
  EXPECT_EQ(fused.dram_writes, plain.dram_writes);
  EXPECT_EQ(fused.counters.counters(), plain.counters.counters());

  // And the attribution covers the whole run: one request owns everything.
  ASSERT_EQ(fused.per_request.size(), 1u);
  const RequestSlice& rs = fused.per_request[0];
  EXPECT_EQ(rs.request_id, 0u);
  EXPECT_EQ(rs.instructions, fused.instructions);
  EXPECT_EQ(rs.thread_blocks, fused.thread_blocks);
  EXPECT_EQ(rs.dram_reads, fused.dram_reads);
  EXPECT_EQ(rs.llc_lookups, fused.counters.get("llc.lookups"));
  EXPECT_EQ(rs.llc_hits, fused.counters.get("llc.hits"));
  EXPECT_GT(rs.cycles_in_flight, 0u);
  EXPECT_LE(rs.cycles_in_flight, fused.cycles);
}

}  // namespace
}  // namespace llamcat
