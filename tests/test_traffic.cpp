// Unit tests for the open-loop traffic generator and the versioned trace
// format (scenario/traffic.hpp): determinism, sampler statistics within
// deterministic tolerances, TrafficConfig validation, and strict trace
// parsing. Statistical assertions here are exact-by-seed, not flaky: the
// generator is a pure function of the config, so each bound below is a
// property of one fixed sample, checked once and then frozen by CI.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/kv_block_pool.hpp"
#include "scenario/traffic.hpp"

namespace llamcat {
namespace {

using scenario::generate_traffic;
using scenario::kNoPrefixGroup;
using scenario::RequestSpec;
using scenario::trace_from_string;
using scenario::trace_to_string;
using scenario::TrafficConfig;

TEST(TrafficGenerator, SameSeedIsByteIdentical) {
  for (std::uint64_t seed : {1ull, 7ull, 12345ull}) {
    TrafficConfig cfg;
    cfg.seed = seed;
    cfg.num_requests = 32;
    cfg.prefix_groups = 3;
    const auto a = generate_traffic(cfg);
    const auto b = generate_traffic(cfg);
    // The trace serialization covers every RequestSpec field, so string
    // equality is byte-identity of the request lists.
    EXPECT_EQ(trace_to_string(a), trace_to_string(b)) << "seed " << seed;
  }
}

TEST(TrafficGenerator, DifferentSeedsDiffer) {
  TrafficConfig a, b;
  a.seed = 1;
  b.seed = 2;
  a.num_requests = b.num_requests = 16;
  EXPECT_NE(trace_to_string(generate_traffic(a)),
            trace_to_string(generate_traffic(b)));
}

TEST(TrafficGenerator, ShapeInvariants) {
  TrafficConfig cfg;
  cfg.num_requests = 64;
  cfg.seq_min = 64;
  cfg.seq_max = 416;
  cfg.steps_min = 2;
  cfg.steps_max = 5;
  const auto reqs = generate_traffic(cfg);
  ASSERT_EQ(reqs.size(), 64u);
  Cycle prev_arrival = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].id, i);
    EXPECT_GE(reqs[i].arrival_cycle, prev_arrival);
    prev_arrival = reqs[i].arrival_cycle;
    EXPECT_GE(reqs[i].seq_len, cfg.seq_min);
    EXPECT_LE(reqs[i].seq_len, cfg.seq_max);
    EXPECT_EQ(reqs[i].seq_len % cfg.seq_granule, 0u)
        << "seq " << reqs[i].seq_len << " off the mapper granule";
    EXPECT_GE(reqs[i].decode_steps, cfg.steps_min);
    EXPECT_LE(reqs[i].decode_steps, cfg.steps_max);
    EXPECT_EQ(reqs[i].prefix_group, kNoPrefixGroup);
  }
}

TEST(TrafficGenerator, LognormalSeqStaysOnTheGranule) {
  TrafficConfig cfg;
  cfg.num_requests = 128;
  cfg.seq_dist = TrafficDist::kLognormal;
  cfg.seq_min = 32;
  cfg.seq_max = 1024;
  cfg.seq_sigma = 0.8;
  bool interior = false;  // at least one sample off the clamp rails
  for (const RequestSpec& r : generate_traffic(cfg)) {
    EXPECT_GE(r.seq_len, cfg.seq_min);
    EXPECT_LE(r.seq_len, cfg.seq_max);
    EXPECT_EQ(r.seq_len % cfg.seq_granule, 0u);
    if (r.seq_len != cfg.seq_min && r.seq_len != cfg.seq_max) interior = true;
  }
  EXPECT_TRUE(interior);
}

TEST(TrafficGenerator, PoissonMeanGapNearConfigured) {
  // 512 exponential gaps with mean 20000: the sample mean of this exact
  // seed is a fixed number; assert it within a generous +-25% band so the
  // test documents the sampler's scale without pinning its bits.
  TrafficConfig cfg;
  cfg.num_requests = 512;
  cfg.mean_gap = 20'000;
  const auto reqs = generate_traffic(cfg);
  const double mean =
      static_cast<double>(reqs.back().arrival_cycle) /
      static_cast<double>(reqs.size());
  EXPECT_GT(mean, 15'000.0);
  EXPECT_LT(mean, 25'000.0);
}

TEST(TrafficGenerator, BurstyClusters) {
  // Bursty arrivals must show both regimes: in-burst gaps far below the
  // mean and off-gaps far above it.
  TrafficConfig cfg;
  cfg.num_requests = 256;
  cfg.process = TrafficProcess::kBursty;
  cfg.mean_gap = 20'000;
  const auto reqs = generate_traffic(cfg);
  std::size_t tight = 0, wide = 0;
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    const Cycle gap = reqs[i].arrival_cycle - reqs[i - 1].arrival_cycle;
    if (gap < cfg.mean_gap / 2) ++tight;
    if (gap > cfg.mean_gap * 2) ++wide;
  }
  EXPECT_GT(tight, reqs.size() / 4);
  EXPECT_GT(wide, reqs.size() / 32);
}

TEST(TrafficGenerator, DiurnalStaysFinite) {
  TrafficConfig cfg;
  cfg.num_requests = 128;
  cfg.process = TrafficProcess::kDiurnal;
  cfg.diurnal_amplitude = 0.9;
  const auto reqs = generate_traffic(cfg);
  EXPECT_EQ(reqs.size(), 128u);
  EXPECT_GT(reqs.back().arrival_cycle, 0u);
}

TEST(TrafficGenerator, ZipfGroupZeroIsMostPopular) {
  TrafficConfig cfg;
  cfg.num_requests = 512;
  cfg.prefix_groups = 4;
  cfg.zipf_s = 1.2;
  cfg.share_pct = 100;
  std::map<std::uint32_t, std::size_t> counts;
  for (const RequestSpec& r : generate_traffic(cfg)) {
    ASSERT_NE(r.prefix_group, kNoPrefixGroup);
    ASSERT_LT(r.prefix_group, cfg.prefix_groups);
    ASSERT_GE(r.prefix_tokens, 1u);
    ASSERT_LE(r.prefix_tokens, cfg.seq_min);
    ++counts[r.prefix_group];
  }
  // Group popularity is 1/(g+1)^s: group 0 strictly dominates, and the
  // tail group is rarest among the groups that appeared.
  ASSERT_TRUE(counts.count(0));
  for (const auto& [g, n] : counts) {
    if (g != 0) EXPECT_GT(counts[0], n) << "group " << g;
  }
  EXPECT_GT(counts[0], counts.rbegin()->second);
}

TEST(TrafficGenerator, SharePctLeavesPrivateRequests) {
  TrafficConfig cfg;
  cfg.num_requests = 256;
  cfg.prefix_groups = 2;
  cfg.share_pct = 50;
  std::size_t shared = 0;
  for (const RequestSpec& r : generate_traffic(cfg)) {
    if (r.prefix_group != kNoPrefixGroup) ++shared;
  }
  EXPECT_GT(shared, 64u);
  EXPECT_LT(shared, 192u);
}

TEST(TrafficConfigValidate, RejectsBadShapes) {
  const auto expect_throw = [](auto mutate, const char* what) {
    TrafficConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument) << what;
  };
  expect_throw([](TrafficConfig& c) { c.num_requests = 0; }, "no requests");
  expect_throw([](TrafficConfig& c) { c.mean_gap = 0; }, "zero gap");
  expect_throw(
      [](TrafficConfig& c) {
        c.process = TrafficProcess::kBursty;
        c.burst_size = 0;
      },
      "zero burst");
  expect_throw(
      [](TrafficConfig& c) {
        c.process = TrafficProcess::kDiurnal;
        c.diurnal_amplitude = 1.5;
      },
      "amplitude out of range");
  expect_throw([](TrafficConfig& c) { c.seq_min = 0; }, "zero seq");
  expect_throw(
      [](TrafficConfig& c) {
        c.seq_min = 512;
        c.seq_max = 64;
      },
      "inverted seq range");
  expect_throw([](TrafficConfig& c) { c.seq_granule = 0; }, "zero granule");
  expect_throw([](TrafficConfig& c) { c.seq_min = 65; c.seq_max = 512; },
               "seq_min off the granule");
  expect_throw([](TrafficConfig& c) { c.seq_max = 500; },
               "seq_max off the granule");
  expect_throw(
      [](TrafficConfig& c) {
        c.seq_dist = TrafficDist::kLognormal;
        c.seq_sigma = 0.0;
      },
      "zero sigma");
  expect_throw([](TrafficConfig& c) { c.steps_min = 0; }, "zero steps");
  expect_throw(
      [](TrafficConfig& c) {
        c.steps_min = 5;
        c.steps_max = 2;
      },
      "inverted steps range");
  expect_throw(
      [](TrafficConfig& c) {
        c.prefix_groups = 2;
        c.zipf_s = -1.0;
      },
      "negative zipf");
  expect_throw(
      [](TrafficConfig& c) {
        c.prefix_groups = 2;
        c.share_pct = 101;
      },
      "share_pct > 100");
  expect_throw(
      [](TrafficConfig& c) {
        c.prefix_groups = 2;
        c.share_pct = 0;
      },
      "share_pct 0 with groups");
  TrafficConfig ok;
  EXPECT_NO_THROW(ok.validate());
}

// -- trace format ------------------------------------------------------------

TEST(TraceFormat, RoundTripIsByteStable) {
  TrafficConfig cfg;
  cfg.num_requests = 24;
  cfg.prefix_groups = 2;
  const auto reqs = generate_traffic(cfg);
  const std::string text = trace_to_string(reqs);
  const auto replayed = trace_from_string(text);
  // write(read(write(x))) == write(x): the format loses nothing.
  EXPECT_EQ(trace_to_string(replayed), text);
  ASSERT_EQ(replayed.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(replayed[i].id, reqs[i].id);
    EXPECT_EQ(replayed[i].seq_len, reqs[i].seq_len);
    EXPECT_EQ(replayed[i].arrival_cycle, reqs[i].arrival_cycle);
    EXPECT_EQ(replayed[i].decode_steps, reqs[i].decode_steps);
    EXPECT_EQ(replayed[i].prefix_group, reqs[i].prefix_group);
    EXPECT_EQ(replayed[i].prefix_tokens, reqs[i].prefix_tokens);
  }
}

TEST(TraceFormat, HandBuiltPrivateAndSharedRows) {
  std::vector<RequestSpec> reqs(2);
  reqs[0].id = 0;
  reqs[0].seq_len = 256;
  reqs[0].arrival_cycle = 0;
  reqs[0].decode_steps = 2;
  reqs[1].id = 1;
  reqs[1].seq_len = 128;
  reqs[1].arrival_cycle = 5000;
  reqs[1].decode_steps = 1;
  reqs[1].prefix_group = 3;
  reqs[1].prefix_tokens = 64;
  EXPECT_EQ(trace_to_string(reqs),
            "llamcat-trace v1\n"
            "requests 2\n"
            "0 256 0 2 - 0\n"
            "1 128 5000 1 3 64\n");
}

TEST(TraceFormat, RejectsMalformedTraces) {
  const auto expect_reject = [](const std::string& text, const char* what) {
    try {
      (void)trace_from_string(text);
      FAIL() << "accepted " << what;
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()).rfind("trace: ", 0), 0u) << what;
    }
  };
  expect_reject("", "empty input");
  expect_reject("not-a-trace v1\nrequests 0\n", "bad magic");
  expect_reject("llamcat-trace v999\nrequests 0\n", "future version");
  expect_reject("llamcat-trace v1 extra\nrequests 0\n",
                "trailing magic tokens");
  expect_reject("llamcat-trace v1\nrows 1\n0 64 0 1 - 0\n",
                "bad count keyword");
  expect_reject("llamcat-trace v1\nrequests 2\n0 64 0 1 - 0\n",
                "fewer rows than declared");
  expect_reject("llamcat-trace v1\nrequests 1\n0 64 0 1 -\n",
                "missing field");
  expect_reject("llamcat-trace v1\nrequests 1\n0 64 0 1 - 0 9\n",
                "trailing row tokens");
  expect_reject("llamcat-trace v1\nrequests 1\n0 0 0 1 - 0\n",
                "zero seq_len");
  expect_reject("llamcat-trace v1\nrequests 1\n0 64 0 0 - 0\n",
                "zero decode_steps");
  expect_reject("llamcat-trace v1\nrequests 1\n0 64 0 1 - 5\n",
                "prefix tokens without a group");
  expect_reject("llamcat-trace v1\nrequests 1\n0 64 0 1 2 0\n",
                "group without prefix tokens");
  expect_reject("llamcat-trace v1\nrequests 1\n0 64 0 1 2 65\n",
                "prefix longer than the sequence");
  expect_reject("llamcat-trace v1\nrequests 1\n0 64 0 1 x 0\n",
                "non-numeric group");
  expect_reject("llamcat-trace v1\nrequests 2\n0 64 0 1 - 0\n0 64 0 1 - 0\n",
                "duplicate id");
  expect_reject("llamcat-trace v1\nrequests 1\n0 64 0 1 - 0\ngarbage\n",
                "trailing garbage");
}

}  // namespace
}  // namespace llamcat
