// Scenario layer: DecodePass schedule composition, per-request vs batch
// stats aggregation, and cross-run determinism.
#include <gtest/gtest.h>

#include "scenario/scenario.hpp"

namespace llamcat {
namespace {

using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::RequestBatch;
using scenario::ScheduledOp;
using scenario::StageKind;

SimConfig small_config() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

ModelShape tiny_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

TEST(RequestBatch, ConstructorsAndFootprint) {
  const RequestBatch u = RequestBatch::uniform(tiny_model(), 3, 256);
  EXPECT_EQ(u.size(), 3u);
  // Single-step requests peak at their start-of-pass seq_len.
  EXPECT_EQ(u.total_peak_kv_tokens(), 3u * 256u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(u.requests()[i].id, i);
    EXPECT_EQ(u.requests()[i].seq_len, 256u);
  }

  const RequestBatch v =
      RequestBatch::with_seq_lens(tiny_model(), {128, 512});
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.requests()[0].seq_len, 128u);
  EXPECT_EQ(v.requests()[1].seq_len, 512u);

  EXPECT_THROW(RequestBatch(tiny_model(), {}), std::invalid_argument);
  EXPECT_THROW(RequestBatch(tiny_model(), {{0, 0}}), std::invalid_argument);
  // Duplicate ids would silently mis-aggregate per-request stats.
  EXPECT_THROW(RequestBatch(tiny_model(), {{7, 128}, {7, 256}}),
               std::invalid_argument);
}

// DecodePass composes the right operator sequence for the paper's
// llama3-70b shape: per request, per layer, Logit -> Attend -> GEMV, with
// the GEMV tile defaulting to the model width E = H*G*D = 8192.
TEST(DecodePass, ComposesLayerChainForLlama70b) {
  const SimConfig cfg = small_config();
  const ModelShape model = ModelShape::llama3_70b();
  const RequestBatch batch = RequestBatch::uniform(model, 2, 256);
  DecodePassConfig pass_cfg;
  pass_cfg.num_layers = 3;
  const DecodePass pass(batch, pass_cfg, cfg);

  const auto& sched = pass.schedule();
  ASSERT_EQ(sched.size(), 2u * 3u * 3u);
  std::size_t i = 0;
  for (std::uint32_t req = 0; req < 2; ++req) {
    for (std::uint32_t layer = 0; layer < 3; ++layer) {
      for (StageKind stage :
           {StageKind::kLogit, StageKind::kAttend, StageKind::kGemv}) {
        const ScheduledOp& op = sched[i++];
        EXPECT_EQ(op.request_id, req);
        EXPECT_EQ(op.layer, layer);
        EXPECT_EQ(op.stage, stage);
        if (stage == StageKind::kGemv) {
          // E x E projection tile on the degenerate H=1/G=1 shape.
          EXPECT_EQ(op.workload.op.seq_len, 8192u);
          EXPECT_EQ(op.workload.op.model.head_dim, 8192u);
          EXPECT_EQ(op.workload.op.model.num_kv_heads, 1u);
        } else {
          EXPECT_EQ(op.workload.op.seq_len, 256u);
          EXPECT_EQ(op.workload.op.kind, stage == StageKind::kLogit
                                             ? OpKind::kLogit
                                             : OpKind::kAttend);
        }
      }
    }
  }
}

TEST(DecodePass, SkipsGemvWhenDisabled) {
  DecodePassConfig pass_cfg;
  pass_cfg.num_layers = 2;
  pass_cfg.include_gemv = false;
  const DecodePass pass(RequestBatch::uniform(tiny_model(), 2, 128), pass_cfg,
                        small_config());
  ASSERT_EQ(pass.schedule().size(), 2u * 2u * 2u);
  for (const ScheduledOp& op : pass.schedule()) {
    EXPECT_NE(op.stage, StageKind::kGemv);
  }
}

TEST(DecodePass, DistinctAddressSlotsPerRequestAndLayer) {
  DecodePassConfig pass_cfg;
  pass_cfg.num_layers = 2;
  const DecodePass pass(RequestBatch::uniform(tiny_model(), 2, 128), pass_cfg,
                        small_config());
  // Logit ops of different (request, layer) slots must not share KV bases.
  std::vector<Addr> kv_bases;
  for (const ScheduledOp& op : pass.schedule()) {
    if (op.stage == StageKind::kLogit) {
      kv_bases.push_back(op.workload.op.kv_base);
    }
  }
  ASSERT_EQ(kv_bases.size(), 4u);
  for (std::size_t a = 0; a < kv_bases.size(); ++a) {
    for (std::size_t b = a + 1; b < kv_bases.size(); ++b) {
      EXPECT_NE(kv_bases[a], kv_bases[b]);
    }
  }
}

TEST(DecodePass, BatchStatsEqualSumOfPerRequestStats) {
  DecodePassConfig pass_cfg;
  pass_cfg.num_layers = 2;
  pass_cfg.include_gemv = false;  // keep the run small
  const DecodePass pass(
      RequestBatch::with_seq_lens(tiny_model(), {128, 256}), pass_cfg,
      small_config());
  const BatchStats stats = pass.run();

  ASSERT_EQ(stats.per_request.size(), 2u);
  ASSERT_EQ(stats.per_op.size(), pass.schedule().size());

  Cycle cycles = 0;
  std::uint64_t instructions = 0, tbs = 0, reads = 0, writes = 0;
  for (const scenario::RequestStats& r : stats.per_request) {
    EXPECT_GT(r.stats.cycles, 0u);
    cycles += r.stats.cycles;
    instructions += r.stats.instructions;
    tbs += r.stats.thread_blocks;
    reads += r.stats.dram_reads;
    writes += r.stats.dram_writes;
  }
  EXPECT_EQ(stats.total.cycles, cycles);
  EXPECT_EQ(stats.total.instructions, instructions);
  EXPECT_EQ(stats.total.thread_blocks, tbs);
  EXPECT_EQ(stats.total.dram_reads, reads);
  EXPECT_EQ(stats.total.dram_writes, writes);

  // Merged counters likewise add up across the per-op runs.
  std::uint64_t lookups = 0;
  for (const ExperimentResult& r : stats.per_op) {
    lookups += r.stats.counters.get("llc.lookups");
  }
  EXPECT_EQ(stats.total.counters.get("llc.lookups"), lookups);

  // Throughput identities.
  EXPECT_DOUBLE_EQ(stats.tokens_per_cycle(),
                   2.0 / static_cast<double>(stats.total.cycles));
  EXPECT_DOUBLE_EQ(stats.per_request[0].tokens_per_cycle(),
                   1.0 / static_cast<double>(stats.per_request[0].stats.cycles));
}

// Acceptance anchor: with a single request there is nothing to contend
// with, so the fused shared-System path must reproduce the independent
// per-operator path exactly - totals and per-request stats alike.
TEST(DecodePass, CoScheduledMatchesIndependentAtBatchOne) {
  const SimConfig cfg = small_config();
  const RequestBatch batch = RequestBatch::uniform(tiny_model(), 1, 128);
  DecodePassConfig pass_cfg;
  pass_cfg.num_layers = 2;
  pass_cfg.include_gemv = false;

  const BatchStats ind = DecodePass(batch, pass_cfg, cfg).run();
  pass_cfg.mode = scenario::ExecutionMode::kCoScheduled;
  const BatchStats cos = DecodePass(batch, pass_cfg, cfg).run();

  EXPECT_EQ(cos.total.cycles, ind.total.cycles);
  EXPECT_EQ(cos.total.instructions, ind.total.instructions);
  EXPECT_EQ(cos.total.thread_blocks, ind.total.thread_blocks);
  EXPECT_EQ(cos.total.dram_reads, ind.total.dram_reads);
  EXPECT_EQ(cos.total.dram_writes, ind.total.dram_writes);
  EXPECT_EQ(cos.total.counters.counters(), ind.total.counters.counters());

  ASSERT_EQ(cos.per_request.size(), 1u);
  ASSERT_EQ(ind.per_request.size(), 1u);
  EXPECT_EQ(cos.per_request[0].stats.cycles, ind.per_request[0].stats.cycles);
  EXPECT_EQ(cos.per_request[0].stats.dram_reads,
            ind.per_request[0].stats.dram_reads);
  EXPECT_EQ(cos.per_request[0].stats.instructions,
            ind.per_request[0].stats.instructions);
  EXPECT_EQ(cos.per_request[0].stats.thread_blocks,
            ind.per_request[0].stats.thread_blocks);
}

// Acceptance: at batch >= 4 the co-scheduled run shares one LLC among all
// requests' KV streams, so total cycles strictly exceed the independent
// no-contention sum - the interference the old path could not see.
TEST(DecodePass, CoScheduledShowsContentionAtBatchFour) {
  const SimConfig cfg = small_config();
  const RequestBatch batch = RequestBatch::uniform(tiny_model(), 4, 256);
  DecodePassConfig pass_cfg;
  pass_cfg.num_layers = 1;
  pass_cfg.include_gemv = false;

  const BatchStats ind = DecodePass(batch, pass_cfg, cfg).run();
  pass_cfg.mode = scenario::ExecutionMode::kCoScheduled;
  const BatchStats cos = DecodePass(batch, pass_cfg, cfg).run();

  EXPECT_GT(cos.total.cycles, ind.total.cycles);

  // One fused System per layer-stage wave.
  ASSERT_EQ(cos.per_op.size(), 2u);  // L0/logit, L0/attend
  EXPECT_EQ(cos.per_op[0].name, "L0/logitx4");
  EXPECT_EQ(cos.per_op[1].name, "L0/attendx4");

  // Per-request attribution from the shared run is complete: the slices'
  // DRAM traffic adds up to the machine totals, every request ran all of
  // its thread blocks, and every request was genuinely in flight.
  std::uint64_t reads = 0, writes = 0, tbs = 0, instrs = 0;
  for (const scenario::RequestStats& r : cos.per_request) {
    reads += r.slice.dram_reads;
    writes += r.slice.dram_writes;
    tbs += r.slice.thread_blocks;
    instrs += r.slice.instructions;
    EXPECT_GT(r.slice.cycles_in_flight, 0u);
    // Resident time equals the summed wave durations for every request.
    EXPECT_EQ(r.stats.cycles, cos.total.cycles);
  }
  EXPECT_EQ(reads, cos.total.dram_reads);
  EXPECT_EQ(writes, cos.total.dram_writes);
  EXPECT_EQ(tbs, cos.total.thread_blocks);
  EXPECT_EQ(instrs, cos.total.instructions);
}

TEST(SimStatsAccumulate, RecomputesDerivedMetrics) {
  const SimConfig cfg = small_config();
  const Workload wl = Workload::logit(tiny_model(), 128, cfg);
  const SimStats one = run_simulation(cfg, wl);

  SimStats acc;  // accumulate into a default (empty) stats object
  acc.accumulate(one);
  acc.accumulate(one);
  EXPECT_EQ(acc.cycles, 2 * one.cycles);
  EXPECT_EQ(acc.instructions, 2 * one.instructions);
  EXPECT_EQ(acc.dram_reads, 2 * one.dram_reads);
  // Self-similar runs leave every rate unchanged.
  EXPECT_NEAR(acc.l2_hit_rate, one.l2_hit_rate, 1e-12);
  EXPECT_NEAR(acc.mshr_hit_rate, one.mshr_hit_rate, 1e-12);
  EXPECT_NEAR(acc.t_cs, one.t_cs, 1e-12);
  EXPECT_NEAR(acc.mshr_entry_util, one.mshr_entry_util, 1e-12);
  EXPECT_NEAR(acc.ipc, one.ipc, 1e-12);
}

}  // namespace
}  // namespace llamcat
