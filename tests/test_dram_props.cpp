// DRAM system property tests: completion exactness under random mixed
// traffic, bank-level parallelism, channel isolation, and accounting
// invariants. Complements the timing-legality unit tests in test_dram.cpp.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "dram/dram_system.hpp"

namespace llamcat {
namespace {

DramConfig small_cfg() {
  DramConfig cfg;
  cfg.num_channels = 2;
  cfg.ranks_per_channel = 1;
  cfg.enable_refresh = false;  // determinism of latency comparisons
  return cfg;
}

/// Enqueues when the controller has room, ticking as needed.
void feed(DramSystem& sys, const DramRequest& r) {
  while (!sys.can_accept(r)) sys.tick_core_cycle();
  sys.enqueue(r);
}

TEST(DramProperties, EveryReadCompletesExactlyOnce) {
  DramSystem sys(small_cfg(), 1.96e9);
  Xoshiro256 rng(5);
  std::map<Addr, int> expected;
  std::vector<DramCompletion> done;
  // Completions fire during the backpressure ticks inside feed() too, so
  // the callback must be installed before the first enqueue.
  sys.on_read_complete = [&done](const DramCompletion& c) {
    done.push_back(c);
  };
  for (int i = 0; i < 500; ++i) {
    const Addr line = line_align(rng.below(1ull << 28));
    if (expected.count(line)) continue;  // model merges duplicates upstream
    expected[line] = 0;
    feed(sys, DramRequest{line, /*is_write=*/false, 0});
  }
  std::uint64_t guard = 0;
  while (!sys.idle()) {
    sys.tick_core_cycle();
    ASSERT_LT(++guard, 10'000'000u);
  }
  EXPECT_EQ(done.size(), expected.size());
  for (const auto& c : done) {
    auto it = expected.find(c.line_addr);
    ASSERT_NE(it, expected.end()) << "completion for a line never requested";
    EXPECT_EQ(++it->second, 1) << "double completion";
  }
}

TEST(DramProperties, WritesProduceNoReadCompletions) {
  DramSystem sys(small_cfg(), 1.96e9);
  std::vector<DramCompletion> done;
  sys.on_read_complete = [&done](const DramCompletion& c) {
    done.push_back(c);
  };
  for (int i = 0; i < 64; ++i) {
    feed(sys, DramRequest{static_cast<Addr>(i) * kLineBytes,
                          /*is_write=*/true, 0});
  }
  std::uint64_t guard = 0;
  while (!sys.idle()) {
    sys.tick_core_cycle();
    ASSERT_LT(++guard, 10'000'000u);
  }
  EXPECT_TRUE(done.empty());
  EXPECT_EQ(sys.stats().get("dram.writes"), 64u);
}

TEST(DramProperties, BytesAccountingMatchesOperations) {
  DramSystem sys(small_cfg(), 1.96e9);
  for (int i = 0; i < 32; ++i) {
    feed(sys, DramRequest{static_cast<Addr>(i) * kLineBytes, i % 2 == 0, 0});
  }
  std::uint64_t guard = 0;
  while (!sys.idle()) {
    sys.tick_core_cycle();
    ASSERT_LT(++guard, 10'000'000u);
  }
  EXPECT_EQ(sys.bytes_transferred(), 32ull * kLineBytes);
}

/// Cycles to drain n reads laid out by `addr_of`.
std::uint64_t cycles_to_drain(const DramConfig& cfg, int n,
                              Addr (*addr_of)(int, const DramConfig&)) {
  DramSystem sys(cfg, 1.96e9);
  sys.on_read_complete = [](const DramCompletion&) {};
  for (int i = 0; i < n; ++i) {
    const DramRequest r{addr_of(i, cfg), false, 0};
    while (!sys.can_accept(r)) sys.tick_core_cycle();
    sys.enqueue(r);
  }
  std::uint64_t cycles = 0;
  while (!sys.idle()) {
    sys.tick_core_cycle();
    ++cycles;
    if (cycles > 10'000'000) ADD_FAILURE() << "never drained";
  }
  return cycles;
}

TEST(DramProperties, BankParallelismBeatsBankConflicts) {
  const DramConfig cfg = small_cfg();
  // Same channel, different bank groups, different rows: overlappable.
  auto parallel = [](int i, const DramConfig& c) -> Addr {
    const AddressMap map(c);
    DramCoord coord{};
    coord.channel = 0;
    coord.bankgroup = static_cast<std::uint32_t>(i) % c.bankgroups_per_rank;
    coord.bank = (static_cast<std::uint32_t>(i) / c.bankgroups_per_rank) %
                 c.banks_per_bankgroup;
    coord.row = 100 + static_cast<std::uint32_t>(i);
    return map.encode(coord);
  };
  // Same channel, same bank, different rows: strict row conflicts.
  auto conflicted = [](int i, const DramConfig& c) -> Addr {
    const AddressMap map(c);
    DramCoord coord{};
    coord.channel = 0;
    coord.row = 100 + static_cast<std::uint32_t>(i);
    return map.encode(coord);
  };
  const std::uint64_t par = cycles_to_drain(cfg, 16, parallel);
  const std::uint64_t ser = cycles_to_drain(cfg, 16, conflicted);
  EXPECT_LT(par * 3, ser * 2)
      << "bank-parallel stream should be >=1.5x faster (" << par << " vs "
      << ser << ")";
}

TEST(DramProperties, RowHitStreamBeatsRowThrash) {
  const DramConfig cfg = small_cfg();
  auto sequential = [](int i, const DramConfig& c) -> Addr {
    // One channel's view of a contiguous stream: stride by channel count.
    return static_cast<Addr>(i) * kLineBytes * c.num_channels;
  };
  auto thrash = [](int i, const DramConfig& c) -> Addr {
    const AddressMap map(c);
    DramCoord coord{};
    coord.channel = 0;
    coord.row = 10 + static_cast<std::uint32_t>(i % 2) * 64;  // ping-pong
    coord.col = static_cast<std::uint32_t>(i) % 32;
    return map.encode(coord);
  };
  const std::uint64_t hits = cycles_to_drain(cfg, 32, sequential);
  const std::uint64_t miss = cycles_to_drain(cfg, 32, thrash);
  EXPECT_LT(hits, miss);
}

TEST(DramProperties, ChannelsAreIndependent) {
  const DramConfig cfg = small_cfg();
  // Unloaded single read on channel 1.
  auto solo = [](int, const DramConfig& c) -> Addr {
    const AddressMap map(c);
    DramCoord coord{};
    coord.channel = 1;
    coord.row = 7;
    return map.encode(coord);
  };
  const std::uint64_t unloaded = cycles_to_drain(cfg, 1, solo);

  // The same read while channel 0 is saturated with row conflicts.
  DramSystem sys(cfg, 1.96e9);
  std::uint64_t last_done = 0;
  const AddressMap map(cfg);
  DramCoord coord{};
  coord.channel = 1;
  coord.row = 7;
  const Addr probe = map.encode(coord);
  std::uint64_t cycles = 0;
  sys.on_read_complete = [&](const DramCompletion& c) {
    if (c.line_addr == probe) last_done = cycles;
  };
  for (int i = 0; i < 16; ++i) {
    DramCoord busy{};
    busy.channel = 0;
    busy.row = 100 + static_cast<std::uint32_t>(i);
    const DramRequest r{map.encode(busy), false, 0};
    while (!sys.can_accept(r)) {
      sys.tick_core_cycle();
      ++cycles;
    }
    sys.enqueue(r);
  }
  const DramRequest pr{probe, false, 0};
  while (!sys.can_accept(pr)) {
    sys.tick_core_cycle();
    ++cycles;
  }
  sys.enqueue(pr);
  const std::uint64_t issued_at = cycles;
  while (!sys.idle()) {
    sys.tick_core_cycle();
    ++cycles;
    ASSERT_LT(cycles, 10'000'000u);
  }
  ASSERT_GT(last_done, 0u);
  // The probe's latency on its own channel is unaffected by the other
  // channel's congestion (within a small scheduling slack).
  EXPECT_LE(last_done - issued_at, unloaded + unloaded / 2);
}

TEST(DramProperties, StatsRowOutcomesPartitionAccesses) {
  DramSystem sys(small_cfg(), 1.96e9);
  Xoshiro256 rng(9);
  for (int i = 0; i < 200; ++i) {
    feed(sys, DramRequest{line_align(rng.below(1ull << 26)), false, 0});
  }
  sys.on_read_complete = [](const DramCompletion&) {};
  std::uint64_t guard = 0;
  while (!sys.idle()) {
    sys.tick_core_cycle();
    ASSERT_LT(++guard, 10'000'000u);
  }
  const StatSet s = sys.stats();
  // Every data command is classified exactly once as a row hit or a row
  // miss; conflicts count the precharges forced on top of those misses.
  EXPECT_EQ(s.get("dram.row_hits") + s.get("dram.row_misses"),
            s.get("dram.reads") + s.get("dram.writes"));
  EXPECT_LE(s.get("dram.row_conflicts"), s.get("dram.row_misses"));
  EXPECT_EQ(s.get("dram.reads"), 200u);
}

}  // namespace
}  // namespace llamcat
