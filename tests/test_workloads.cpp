// Workload-level tests: the GEMV (no-GQA) operator, the model zoo, the
// decode pipeline runner, and the §6.3.3 locality property - GQA sharing
// is what produces cache/MSHR hits on KV traffic; a GEMV with the same
// traffic volume has none to give.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "trace/tracegen.hpp"

namespace llamcat {
namespace {

SimConfig small_cfg() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 2ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 50'000'000;
  return cfg;
}

// -------------------------------------------------------------- model zoo --

TEST(ModelZoo, ShapesMatchPublishedConfigs) {
  // (name, H, G, D): H*G = query heads.
  EXPECT_EQ(ModelShape::llama3_8b().num_kv_heads, 8u);
  EXPECT_EQ(ModelShape::llama3_8b().group_size, 4u);    // 32 query heads
  EXPECT_EQ(ModelShape::llama3_70b().group_size, 8u);   // 64 query heads
  EXPECT_EQ(ModelShape::llama3_405b().group_size, 16u); // 128 query heads
  EXPECT_EQ(ModelShape::gemma2_27b().num_kv_heads, 16u);
  EXPECT_EQ(ModelShape::gemma2_27b().group_size, 2u);   // 32 query heads
  EXPECT_EQ(ModelShape::qwen2_72b().group_size, 8u);    // 64 query heads
  for (const ModelShape& m :
       {ModelShape::llama3_8b(), ModelShape::llama3_70b(),
        ModelShape::llama3_405b(), ModelShape::gemma2_27b(),
        ModelShape::qwen2_72b()}) {
    EXPECT_EQ(m.head_dim, 128u) << m.name;
    EXPECT_NO_THROW(OperatorSpec::logit(m, 1024).validate()) << m.name;
  }
}

TEST(ModelZoo, NamesAreDistinct) {
  std::set<std::string> names;
  for (const ModelShape& m :
       {ModelShape::llama3_8b(), ModelShape::llama3_70b(),
        ModelShape::llama3_405b(), ModelShape::gemma2_27b(),
        ModelShape::qwen2_72b()}) {
    EXPECT_TRUE(names.insert(m.name).second) << m.name;
  }
}

// ------------------------------------------------------------------ GEMV --

TEST(Gemv, IsDegenerateLogit) {
  const OperatorSpec spec = OperatorSpec::gemv(2048, 256);
  EXPECT_EQ(spec.kind, OpKind::kLogit);
  EXPECT_EQ(spec.model.num_kv_heads, 1u);
  EXPECT_EQ(spec.model.group_size, 1u);
  EXPECT_EQ(spec.model.head_dim, 256u);
  EXPECT_EQ(spec.seq_len, 2048u);
  EXPECT_NO_THROW(spec.validate());
}

TEST(Gemv, TrafficMatchesClosedForm) {
  // y[2048] = W[2048,256] x[256], fp16: W is 2048*256*2 B = 16384 lines,
  // x is 256*2/64 = 8 lines, y is 2048*2/64 = 64 lines.
  const SimConfig cfg = small_cfg();
  const Workload wl = Workload::gemv(2048, 256, cfg);
  const TrafficEstimate est = estimate_traffic(wl.op, wl.mapping);
  EXPECT_EQ(est.unique_store_lines, 64u);
  // Unique loads = W + x lines.
  EXPECT_EQ(est.unique_load_lines, 16384u + 8u);
}

TEST(Gemv, NoSharingMeansReuseFactorNearOne) {
  const SimConfig cfg = small_cfg();
  const Workload gemv = Workload::gemv(2048, 256, cfg);
  const TrafficEstimate est = estimate_traffic(gemv.op, gemv.mapping);
  // Each weight line is loaded exactly once; only the small x vector is
  // reloaded per thread block.
  EXPECT_LT(est.reuse_factor(), 1.1);

  // Contrast: a GQA logit with G=4 loads each K line ~4 times.
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  const Workload logit = Workload::logit(m, 1024, cfg);
  const TrafficEstimate gqa = estimate_traffic(logit.op, logit.mapping);
  EXPECT_GT(gqa.reuse_factor(), 2.0);
}

TEST(Gemv, RunsToCompletionWithConservation) {
  const SimConfig cfg = small_cfg();
  const Workload wl = Workload::gemv(1024, 256, cfg);
  const SimStats s = run_simulation(cfg, wl);
  const auto& c = s.counters;
  EXPECT_EQ(c.get("llc.requests_in"), c.get("llc.requests_served"));
  EXPECT_EQ(c.get("llc.mshr_hits") + c.get("llc.mshr_allocs"),
            c.get("llc.misses"));
}

/// The paper's §6.3.3 claim at test scale: "Cache hits and MSHR hits ...
/// are mostly a result of GQA, since non-GQA operators do not share
/// activation across heads." A GEMV's KV-side (weight) traffic must show
/// essentially no L2 or MSHR locality, unlike a GQA logit of similar size.
TEST(Gemv, NoGqaMeansNoKvLocality) {
  SimConfig cfg = small_cfg();
  cfg.core.tb_dispatch = TbDispatch::kPartitionedStealing;

  // GEMV: 1024x512 fp16 weights = 8K lines streamed once.
  const SimStats gemv =
      run_simulation(cfg, Workload::gemv(1024, 512, cfg));

  // GQA logit with the same KV volume: H=2, G=4, L=2048 -> K = 2*2048*128
  // fp16 = 8K lines, each wanted by 4 query heads.
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  const SimStats gqa = run_simulation(cfg, Workload::logit(m, 2048, cfg));

  const double gemv_locality = gemv.l2_hit_rate + gemv.mshr_hit_rate;
  const double gqa_locality = gqa.l2_hit_rate + gqa.mshr_hit_rate;
  EXPECT_GT(gqa_locality, gemv_locality + 0.2)
      << "GQA sharing must be the locality source (gemv=" << gemv_locality
      << ", gqa=" << gqa_locality << ")";
}

// -------------------------------------------------------------- pipeline --

TEST(Pipeline, DecodeStepIsLogitThenAttend) {
  const SimConfig cfg = small_cfg();
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  const auto ops = decode_attention_step(m, 512, cfg);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].op.kind, OpKind::kLogit);
  EXPECT_EQ(ops[1].op.kind, OpKind::kAttend);
  EXPECT_EQ(ops[0].op.seq_len, ops[1].op.seq_len);
}

TEST(Pipeline, TotalsAreSumsOfStages) {
  const SimConfig cfg = small_cfg();
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  const auto ops = decode_attention_step(m, 512, cfg);
  const PipelineResult r = run_pipeline(cfg, ops);
  ASSERT_EQ(r.ops.size(), 2u);
  EXPECT_GT(r.ops[0].stats.cycles, 0u);
  EXPECT_GT(r.ops[1].stats.cycles, 0u);
  EXPECT_EQ(r.total_cycles(), r.ops[0].stats.cycles + r.ops[1].stats.cycles);
  EXPECT_DOUBLE_EQ(r.total_seconds(),
                   r.ops[0].stats.seconds() + r.ops[1].stats.seconds());
}

TEST(Pipeline, StageNamesIdentifyOperators) {
  const SimConfig cfg = small_cfg();
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 2;
  const PipelineResult r =
      run_pipeline(cfg, decode_attention_step(m, 256, cfg));
  EXPECT_NE(r.ops[0].name.find("logit"), std::string::npos);
  EXPECT_NE(r.ops[1].name.find("attend"), std::string::npos);
}

TEST(Pipeline, EmptyPipelineIsEmptyResult) {
  const SimConfig cfg = small_cfg();
  const PipelineResult r = run_pipeline(cfg, {});
  EXPECT_TRUE(r.ops.empty());
  EXPECT_EQ(r.total_cycles(), 0u);
}

}  // namespace
}  // namespace llamcat
