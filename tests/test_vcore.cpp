// Unit tests: vector core (windows, issue/retire, throttling, counters)
// and the thread-block scheduler (partitioning + redistribution).
#include <gtest/gtest.h>

#include "vcore/tb_scheduler.hpp"
#include "vcore/vector_core.hpp"

namespace llamcat {
namespace {

// A tiny synthetic TB source: each TB is `loads` loads followed by one
// compute of `compute_cycles`.
class SyntheticSource final : public ITbSource {
 public:
  SyntheticSource(std::uint64_t num_tbs, std::uint32_t loads,
                  std::uint32_t compute_cycles = 1)
      : loads_(loads), compute_(compute_cycles) {
    for (std::uint64_t i = 0; i < num_tbs; ++i) {
      TbDesc d;
      d.id = static_cast<TbId>(i);
      d.h = 0;
      d.g = static_cast<std::uint32_t>(i);
      d.l_begin = 0;
      d.l_end = loads;
      tbs_.push_back(d);
    }
  }
  std::uint64_t num_tbs() const override { return tbs_.size(); }
  const TbDesc& tb(std::uint64_t i) const override { return tbs_[i]; }
  std::uint32_t instr_count(std::uint64_t) const override {
    return loads_ + 1;
  }
  Instr instr_at(std::uint64_t tb, std::uint32_t i) const override {
    if (i < loads_) {
      // Distinct lines per TB so there is no cross-TB reuse.
      return Instr{Instr::Kind::kLoad,
                   (tb * loads_ + i + 1) * 0x10000, 1};
    }
    return Instr{Instr::Kind::kCompute, 0, compute_};
  }

 private:
  std::vector<TbDesc> tbs_;
  std::uint32_t loads_;
  std::uint32_t compute_;
};

// A source whose TBs carry explicit request tags (as CompositeTbSource
// produces); tags are assigned from `request_ids` in TB order.
class TaggedSource final : public ITbSource {
 public:
  explicit TaggedSource(const std::vector<std::uint32_t>& request_ids) {
    for (std::size_t i = 0; i < request_ids.size(); ++i) {
      TbDesc d;
      d.id = static_cast<TbId>(i);
      d.l_begin = 0;
      d.l_end = 1;
      d.request_id = request_ids[i];
      tbs_.push_back(d);
    }
  }
  std::uint64_t num_tbs() const override { return tbs_.size(); }
  const TbDesc& tb(std::uint64_t i) const override { return tbs_[i]; }
  std::uint32_t instr_count(std::uint64_t) const override { return 1; }
  Instr instr_at(std::uint64_t, std::uint32_t) const override {
    return Instr{Instr::Kind::kCompute, 0, 1};
  }

 private:
  std::vector<TbDesc> tbs_;
};

CoreConfig small_core() {
  CoreConfig cfg;
  cfg.num_cores = 2;
  cfg.num_inst_windows = 2;
  cfg.inst_window_depth = 4;
  return cfg;
}

L1Config small_l1() {
  L1Config cfg;
  cfg.size_bytes = 4096;
  cfg.miss_queue_entries = 8;
  return cfg;
}

TEST(TbScheduler, GlobalQueueDispatchesInOrder) {
  SyntheticSource src(6, 1);
  TbScheduler sched(src, 2, TbDispatch::kGlobalQueue);
  EXPECT_EQ(*sched.next_tb(0), 0u);
  EXPECT_EQ(*sched.next_tb(1), 1u);
  EXPECT_EQ(*sched.next_tb(1), 2u);
  sched.mark_complete(0);
  EXPECT_FALSE(sched.all_complete());
}

TEST(TbScheduler, RoundRobinPartition) {
  SyntheticSource src(6, 1);
  TbScheduler sched(src, 2, TbDispatch::kPartitionedStealing);
  EXPECT_EQ(*sched.next_tb(0), 0u);
  EXPECT_EQ(*sched.next_tb(0), 2u);
  EXPECT_EQ(*sched.next_tb(1), 1u);
  EXPECT_EQ(sched.remaining_for(0), 1u);
}

TEST(TbScheduler, BlockedPartition) {
  SyntheticSource src(6, 1);
  TbScheduler sched(src, 2, TbDispatch::kStaticBlocked);
  // Core 0 owns [0,3), core 1 owns [3,6).
  EXPECT_EQ(*sched.next_tb(0), 0u);
  EXPECT_EQ(*sched.next_tb(0), 1u);
  EXPECT_EQ(*sched.next_tb(1), 3u);
}

TEST(TbScheduler, StealsFromMostLoadedWhenEmpty) {
  SyntheticSource src(6, 1);
  TbScheduler sched(src, 2, TbDispatch::kStaticBlocked);
  // Drain core 0's own partition.
  sched.next_tb(0);
  sched.next_tb(0);
  sched.next_tb(0);
  // Redistribution: core 0 now steals core 1's oldest block.
  EXPECT_EQ(*sched.next_tb(0), 3u);
  EXPECT_EQ(sched.stolen(), 1u);
  EXPECT_EQ(*sched.next_tb(1), 4u);
  EXPECT_EQ(*sched.next_tb(1), 5u);
  EXPECT_FALSE(sched.next_tb(1).has_value());
}

// Regression: remaining_for used to index queues_[core] even in kGlobalQueue
// mode, where queues_ has size 1 - an out-of-bounds read for core > 0. It
// now reports the shared queue depth for every core.
TEST(TbScheduler, GlobalQueueRemainingForAnyCore) {
  SyntheticSource src(6, 1);
  TbScheduler sched(src, 4, TbDispatch::kGlobalQueue);
  EXPECT_EQ(sched.remaining_for(0), 6u);
  EXPECT_EQ(sched.remaining_for(3), 6u);
  sched.next_tb(2);
  EXPECT_EQ(sched.remaining_for(0), 5u);
  EXPECT_EQ(sched.remaining_for(3), 5u);
}

TEST(TbScheduler, TracksPerRequestDispatchAndCompletion) {
  TaggedSource src({7, 7, 7, 3, 3, 3});
  TbScheduler sched(src, 2, TbDispatch::kGlobalQueue);
  ASSERT_EQ(sched.num_requests(), 2u);
  EXPECT_EQ(sched.request_id_at(0), 7u);
  EXPECT_EQ(sched.request_id_at(1), 3u);
  EXPECT_EQ(sched.total_of(0), 3u);
  EXPECT_EQ(sched.total_of(1), 3u);
  EXPECT_EQ(sched.request_index_of_tb(0), 0u);
  EXPECT_EQ(sched.request_index_of_tb(4), 1u);

  sched.next_tb(0);  // tb 0 (request 7)
  sched.next_tb(1);  // tb 1 (request 7)
  EXPECT_EQ(sched.dispatched_of(0), 2u);
  EXPECT_EQ(sched.dispatched_of(1), 0u);
  sched.mark_complete(0);
  sched.mark_complete(3);
  EXPECT_EQ(sched.completed_of(0), 1u);
  EXPECT_EQ(sched.completed_of(1), 1u);
  EXPECT_EQ(sched.completed(), 2u);
  // mark_complete no longer ignores tb_idx: completing a second block of
  // request 3 moves only that request's counter.
  sched.mark_complete(4);
  EXPECT_EQ(sched.completed_of(0), 1u);
  EXPECT_EQ(sched.completed_of(1), 2u);
}

TEST(TbScheduler, DoubleCompleteAssertsInDebug) {
  TaggedSource src({0, 0});
  TbScheduler sched(src, 1, TbDispatch::kGlobalQueue);
  sched.next_tb(0);
  sched.mark_complete(0);
  EXPECT_DEBUG_DEATH(sched.mark_complete(0), "completed twice");
}

TEST(TbScheduler, InterleaveRoundRobinsAcrossRequests) {
  // Concatenated per-request TBs: [0,0,0,1,1,1]. Interleave dispatch must
  // alternate requests in the global order: 0,3,1,4,2,5.
  TaggedSource src({0, 0, 0, 1, 1, 1});
  TbScheduler sched(src, 1, TbDispatch::kGlobalQueue,
                    RequestDispatch::kInterleave);
  EXPECT_EQ(*sched.next_tb(0), 0u);
  EXPECT_EQ(*sched.next_tb(0), 3u);
  EXPECT_EQ(*sched.next_tb(0), 1u);
  EXPECT_EQ(*sched.next_tb(0), 4u);
  EXPECT_EQ(*sched.next_tb(0), 2u);
  EXPECT_EQ(*sched.next_tb(0), 5u);
}

TEST(TbScheduler, PartitionedPinsRequestsToCoreGroups) {
  // 2 requests on 4 cores: request 0 owns cores {0,1}, request 1 owns
  // {2,3}. Dispatch and stealing both stay inside the owning group.
  TaggedSource src({0, 0, 0, 0, 1, 1, 1, 1});
  TbScheduler sched(src, 4, TbDispatch::kPartitionedStealing,
                    RequestDispatch::kPartitioned);
  for (CoreId core : {CoreId{0}, CoreId{1}}) {
    const auto tb = sched.next_tb(core);
    ASSERT_TRUE(tb.has_value());
    EXPECT_EQ(src.tb(*tb).request_id, 0u);
  }
  for (CoreId core : {CoreId{2}, CoreId{3}}) {
    const auto tb = sched.next_tb(core);
    ASSERT_TRUE(tb.has_value());
    EXPECT_EQ(src.tb(*tb).request_id, 1u);
  }
  // Drain request 0's group; core 0 must not steal request 1's blocks.
  ASSERT_TRUE(sched.next_tb(0).has_value());
  ASSERT_TRUE(sched.next_tb(1).has_value());
  EXPECT_FALSE(sched.next_tb(0).has_value());
  EXPECT_EQ(sched.stolen(), 0u);
  // Request 1's group still has its remaining blocks.
  EXPECT_TRUE(sched.next_tb(2).has_value());
}

TEST(VectorCore, RunsTbsToCompletionWithImmediateFills) {
  SyntheticSource src(4, 2);
  TbScheduler sched(src, 1, TbDispatch::kGlobalQueue);
  VectorCore core(small_core(), small_l1(), 0, 1);
  core.bind(&sched);
  Cycle now = 0;
  std::uint32_t guard = 10000;
  while (!sched.all_complete() && guard--) {
    ++now;
    core.tick(now);
    // Instantly serve every outgoing load.
    while (auto out = core.peek_outgoing()) {
      core.pop_outgoing();
      if (out->type == AccessType::kLoad) core.on_load_fill(out->line_addr);
    }
  }
  EXPECT_TRUE(sched.all_complete());
  EXPECT_TRUE(core.fully_idle());
  EXPECT_EQ(core.tbs_completed(), 4u);
  EXPECT_EQ(core.instructions_issued(), 4u * 3);
}

TEST(VectorCore, MaxTbLimitsActiveWindows) {
  SyntheticSource src(8, 4);
  TbScheduler sched(src, 1, TbDispatch::kGlobalQueue);
  VectorCore core(small_core(), small_l1(), 0, 1);
  core.bind(&sched);
  core.set_max_tb(1);
  Cycle now = 0;
  for (int i = 0; i < 20; ++i) core.tick(++now);
  EXPECT_EQ(core.active_windows(), 1u);
  core.set_max_tb(2);
  for (int i = 0; i < 20; ++i) core.tick(++now);
  EXPECT_EQ(core.active_windows(), 2u);
}

TEST(VectorCore, SetMaxTbClamps) {
  SyntheticSource src(1, 1);
  TbScheduler sched(src, 1, TbDispatch::kGlobalQueue);
  VectorCore core(small_core(), small_l1(), 0, 1);
  core.bind(&sched);
  core.set_max_tb(0);
  EXPECT_EQ(core.max_tb(), 1u);
  core.set_max_tb(99);
  EXPECT_EQ(core.max_tb(), 2u);  // num_inst_windows
}

TEST(VectorCore, CountsCmemWhenLoadsNeverReturn) {
  SyntheticSource src(1, 8);
  TbScheduler sched(src, 1, TbDispatch::kGlobalQueue);
  VectorCore core(small_core(), small_l1(), 0, 1);
  core.bind(&sched);
  Cycle now = 0;
  for (int i = 0; i < 100; ++i) {
    ++now;
    core.tick(now);
    while (core.peek_outgoing()) core.pop_outgoing();  // never fill
  }
  const CoreSample s = core.take_sample();
  EXPECT_GT(s.c_mem, 0u);
  // take_sample resets.
  EXPECT_EQ(core.take_sample().c_mem, 0u);
}

TEST(VectorCore, CountsIdleWhenNoWork) {
  SyntheticSource src(0, 1);
  TbScheduler sched(src, 1, TbDispatch::kGlobalQueue);
  VectorCore core(small_core(), small_l1(), 0, 1);
  core.bind(&sched);
  Cycle now = 0;
  for (int i = 0; i < 50; ++i) core.tick(++now);
  EXPECT_EQ(core.take_sample().c_idle, 50u);
  EXPECT_TRUE(core.fully_idle());
}

TEST(VectorCore, FirstTbReportProduced) {
  SyntheticSource src(2, 2);
  TbScheduler sched(src, 1, TbDispatch::kGlobalQueue);
  VectorCore core(small_core(), small_l1(), 0, 1);
  core.bind(&sched);
  Cycle now = 0;
  std::uint32_t guard = 1000;
  while (!core.first_tb_report().has_value() && guard--) {
    ++now;
    core.tick(now);
    while (auto out = core.peek_outgoing()) {
      core.pop_outgoing();
      if (out->type == AccessType::kLoad) core.on_load_fill(out->line_addr);
    }
  }
  ASSERT_TRUE(core.first_tb_report().has_value());
  EXPECT_GT(core.first_tb_report()->duration, 0u);
  EXPECT_GE(core.first_tb_report()->mem_stall_frac, 0.0);
  EXPECT_LE(core.first_tb_report()->mem_stall_frac, 1.0);
}

TEST(VectorCore, StoresArePosted) {
  // One TB of a single store: completes without any fill.
  class StoreSource final : public ITbSource {
   public:
    std::uint64_t num_tbs() const override { return 1; }
    const TbDesc& tb(std::uint64_t) const override { return tb_; }
    std::uint32_t instr_count(std::uint64_t) const override { return 1; }
    Instr instr_at(std::uint64_t, std::uint32_t) const override {
      return Instr{Instr::Kind::kStore, 0x40, 1};
    }
   private:
    TbDesc tb_{};
  };
  StoreSource src;
  TbScheduler sched(src, 1, TbDispatch::kGlobalQueue);
  VectorCore core(small_core(), small_l1(), 0, 1);
  core.bind(&sched);
  Cycle now = 0;
  std::uint32_t guard = 100;
  while (!sched.all_complete() && guard--) core.tick(++now);
  EXPECT_TRUE(sched.all_complete());
  ASSERT_TRUE(core.peek_outgoing().has_value());
  EXPECT_EQ(core.peek_outgoing()->type, AccessType::kStore);
}

}  // namespace
}  // namespace llamcat
