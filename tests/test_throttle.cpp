// Unit tests: throttling controllers - Algorithm 1 gear transitions,
// Table 1 fractions, Table 3 contention classes, DYNCTA and LCS baselines.
#include <gtest/gtest.h>

#include "core/throttle.hpp"

namespace llamcat {
namespace {

/// The paper's Table 3 contention bands. The shipped defaults are re-swept
/// for this substrate's t_cs scale (see ThrottleConfig); the controller
/// tests below exercise Algorithm 1 against the paper's published bands.
ThrottleConfig cfg_for(ThrottlePolicy p) {
  ThrottleConfig cfg;
  cfg.policy = p;
  cfg.tcs_low = 0.1;
  cfg.tcs_normal = 0.2;
  cfg.tcs_high = 0.375;
  return cfg;
}

CoreConfig cores16() {
  CoreConfig c;
  c.num_cores = 16;
  c.num_inst_windows = 4;
  return c;
}

GlobalSample sample(double t_cs, std::uint32_t n = 16) {
  GlobalSample s;
  s.t_cs = t_cs;
  s.progress.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) s.progress[i] = i;  // core n-1 fastest
  return s;
}

TEST(Contention, Table3Classification) {
  const ThrottleConfig cfg = cfg_for(ThrottlePolicy::kDynMg);
  EXPECT_EQ(classify_contention(0.0, cfg), Contention::kLow);
  EXPECT_EQ(classify_contention(0.0999, cfg), Contention::kLow);
  EXPECT_EQ(classify_contention(0.1, cfg), Contention::kNormal);
  EXPECT_EQ(classify_contention(0.1999, cfg), Contention::kNormal);
  EXPECT_EQ(classify_contention(0.2, cfg), Contention::kHigh);
  EXPECT_EQ(classify_contention(0.374, cfg), Contention::kHigh);
  EXPECT_EQ(classify_contention(0.375, cfg), Contention::kExtreme);
  EXPECT_EQ(classify_contention(1.0, cfg), Contention::kExtreme);
}

TEST(Contention, ResweptDefaultBandsSeparateTheTwoRegimes) {
  // The shipped defaults must classify the miss-handling-bound regime's
  // baseline t_cs (~0.59) as Low (gear stays 0: throttling cannot raise
  // concurrency-limited bandwidth) and the capacity-pressure regime's
  // (~0.74+) as High or worse (gear engages).
  const ThrottleConfig cfg;
  EXPECT_LT(cfg.tcs_low, cfg.tcs_normal);
  EXPECT_LT(cfg.tcs_normal, cfg.tcs_high);
  EXPECT_EQ(classify_contention(0.59, cfg), Contention::kLow);
  EXPECT_GE(static_cast<int>(classify_contention(0.74, cfg)),
            static_cast<int>(Contention::kHigh));
}

TEST(DynMg, Algorithm1GearMoves) {
  DynMg d(cfg_for(ThrottlePolicy::kDynMg), cores16());
  EXPECT_EQ(d.gear(), 0u);
  d.on_global_period(sample(0.3));  // High: +1
  EXPECT_EQ(d.gear(), 1u);
  d.on_global_period(sample(0.15));  // Normal: hold
  EXPECT_EQ(d.gear(), 1u);
  d.on_global_period(sample(0.5));  // Extreme: +2
  EXPECT_EQ(d.gear(), 3u);
  d.on_global_period(sample(0.5));  // Extreme at gear 3: clamp to max (4)
  EXPECT_EQ(d.gear(), 4u);
  d.on_global_period(sample(0.3));  // High at max: hold
  EXPECT_EQ(d.gear(), 4u);
  d.on_global_period(sample(0.05));  // Low: -1
  EXPECT_EQ(d.gear(), 3u);
  for (int i = 0; i < 10; ++i) d.on_global_period(sample(0.05));
  EXPECT_EQ(d.gear(), 0u);  // floors at 0
}

TEST(DynMg, Table1GearFractions) {
  DynMg d(cfg_for(ThrottlePolicy::kDynMg), cores16());
  EXPECT_EQ(d.cores_for_gear(0), 0u);
  EXPECT_EQ(d.cores_for_gear(1), 2u);   // 1/8 of 16
  EXPECT_EQ(d.cores_for_gear(2), 4u);   // 1/4
  EXPECT_EQ(d.cores_for_gear(3), 8u);   // 1/2
  EXPECT_EQ(d.cores_for_gear(4), 12u);  // 3/4
}

TEST(DynMg, ThrottlesFastestCores) {
  DynMg d(cfg_for(ThrottlePolicy::kDynMg), cores16());
  d.on_global_period(sample(0.3));  // gear 1: throttle 2 fastest
  EXPECT_EQ(d.throttled_count(), 2u);
  EXPECT_TRUE(d.throttled(15));  // highest progress
  EXPECT_TRUE(d.throttled(14));
  EXPECT_FALSE(d.throttled(0));
}

TEST(DynMg, InCoreControllerAdjustsThrottledCoresOnly) {
  ThrottleConfig cfg = cfg_for(ThrottlePolicy::kDynMg);
  cfg.c_mem_upper = 250;
  cfg.c_mem_lower = 180;
  DynMg d(cfg, cores16());
  d.on_global_period(sample(0.3));  // throttle cores 14, 15
  std::vector<CoreSample> samples(16);
  std::vector<std::optional<FirstTbReport>> ftb(16);
  samples[15].c_mem = 300;  // above upper: decrement
  samples[14].c_mem = 100;  // below lower: increment (already at max)
  samples[0].c_mem = 400;   // NOT throttled: ignored
  d.on_sub_period(samples, ftb);
  EXPECT_EQ(d.max_tb(15), 3u);
  EXPECT_EQ(d.max_tb(14), 4u);
  EXPECT_EQ(d.max_tb(0), 4u);  // unthrottled cores run full
  // Idle pressure raises it back.
  samples[15].c_mem = 0;
  samples[15].c_idle = 10;  // above c_idle_upper (4)
  d.on_sub_period(samples, ftb);
  EXPECT_EQ(d.max_tb(15), 4u);
}

TEST(DynMg, UnthrottleRestoresFullParallelism) {
  ThrottleConfig cfg = cfg_for(ThrottlePolicy::kDynMg);
  cfg.c_mem_upper = 250;
  DynMg d(cfg, cores16());
  d.on_global_period(sample(0.3));
  std::vector<CoreSample> samples(16);
  std::vector<std::optional<FirstTbReport>> ftb(16);
  samples[15].c_mem = 400;
  d.on_sub_period(samples, ftb);
  d.on_sub_period(samples, ftb);
  EXPECT_EQ(d.max_tb(15), 2u);
  d.on_global_period(sample(0.05));  // Low: gear 0, nothing throttled
  EXPECT_EQ(d.max_tb(15), 4u);
}

TEST(DynMg, MaxTbNeverBelowOne) {
  ThrottleConfig cfg = cfg_for(ThrottlePolicy::kDynMg);
  cfg.c_mem_upper = 10;
  DynMg d(cfg, cores16());
  for (int i = 0; i < 3; ++i) d.on_global_period(sample(0.5));
  std::vector<CoreSample> samples(16);
  std::vector<std::optional<FirstTbReport>> ftb(16);
  for (auto& s : samples) s.c_mem = 400;
  for (int i = 0; i < 10; ++i) d.on_sub_period(samples, ftb);
  for (CoreId c = 0; c < 16; ++c) EXPECT_GE(d.max_tb(c), 1u);
}

TEST(Dyncta, AdjustsAllCoresOnItsOwnPeriod) {
  ThrottleConfig cfg = cfg_for(ThrottlePolicy::kDyncta);
  cfg.sub_period = 400;
  cfg.dyncta_period = 800;  // two sub-periods
  cfg.dyncta_c_mem_upper = 500;
  cfg.dyncta_c_mem_lower = 100;
  cfg.dyncta_c_idle_upper = 50;
  Dyncta d(cfg, cores16());
  std::vector<CoreSample> samples(16);
  std::vector<std::optional<FirstTbReport>> ftb(16);
  samples[3].c_mem = 300;  // accumulates to 600 > upper after 2 sub-periods
  d.on_sub_period(samples, ftb);
  EXPECT_EQ(d.max_tb(3), 4u);  // period not reached yet
  d.on_sub_period(samples, ftb);
  EXPECT_EQ(d.max_tb(3), 3u);  // decremented
  // Low contention raises it back.
  samples[3].c_mem = 10;
  d.on_sub_period(samples, ftb);
  d.on_sub_period(samples, ftb);
  EXPECT_EQ(d.max_tb(3), 4u);
}

TEST(Lcs, FixesAfterFirstThreadBlock) {
  ThrottleConfig cfg = cfg_for(ThrottlePolicy::kLcs);
  Lcs lcs(cfg, cores16());
  std::vector<CoreSample> samples(16);
  std::vector<std::optional<FirstTbReport>> ftb(16);
  EXPECT_EQ(lcs.max_tb(5), 4u);
  ftb[5] = FirstTbReport{1000, 0.5};  // 50% memory stall
  lcs.on_sub_period(samples, ftb);
  EXPECT_TRUE(lcs.decided(5));
  EXPECT_EQ(lcs.max_tb(5), 2u);  // round(4 * (1 - 0.5))
  // Later reports do not change the decision.
  ftb[5] = FirstTbReport{1000, 0.0};
  lcs.on_sub_period(samples, ftb);
  EXPECT_EQ(lcs.max_tb(5), 2u);
}

TEST(Lcs, ClampsToAtLeastOne) {
  Lcs lcs(cfg_for(ThrottlePolicy::kLcs), cores16());
  std::vector<CoreSample> samples(16);
  std::vector<std::optional<FirstTbReport>> ftb(16);
  ftb[0] = FirstTbReport{1000, 1.0};  // fully memory-stalled
  lcs.on_sub_period(samples, ftb);
  EXPECT_EQ(lcs.max_tb(0), 1u);
}

TEST(Factory, BuildsConfiguredController) {
  const CoreConfig cores = cores16();
  EXPECT_EQ(make_throttle_controller(cfg_for(ThrottlePolicy::kNone), cores)
                ->name(),
            "unopt");
  EXPECT_EQ(make_throttle_controller(cfg_for(ThrottlePolicy::kDyncta), cores)
                ->name(),
            "dyncta");
  EXPECT_EQ(make_throttle_controller(cfg_for(ThrottlePolicy::kLcs), cores)
                ->name(),
            "lcs");
  EXPECT_EQ(make_throttle_controller(cfg_for(ThrottlePolicy::kDynMg), cores)
                ->name(),
            "dynmg");
}

// Property: gear trajectory stays within [0, max_gear] for random t_cs.
class DynMgGearProp : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DynMgGearProp, GearBounded) {
  ThrottleConfig cfg = cfg_for(ThrottlePolicy::kDynMg);
  cfg.max_gear = GetParam();
  DynMg d(cfg, cores16());
  const double seq[] = {0.5, 0.5, 0.05, 0.3, 0.9, 0.0, 0.15, 0.4, 0.21};
  for (double t : seq) {
    d.on_global_period(sample(t));
    EXPECT_LE(d.gear(), cfg.max_gear);
    EXPECT_EQ(d.throttled_count(), d.cores_for_gear(d.gear()));
  }
}

INSTANTIATE_TEST_SUITE_P(Gears, DynMgGearProp, ::testing::Values(1u, 2u, 4u));

}  // namespace
}  // namespace llamcat
