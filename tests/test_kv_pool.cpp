// KvBlockPool unit tests: admission/hit/charge byte math, conservative
// admission estimates, pager byte-equivalence for all-private layouts (the
// property that keeps --kv-share=off golden rows byte-identical), lifecycle
// enforcement and the cumulative pool counters that feed BatchStats.
#include <gtest/gtest.h>

#include <stdexcept>

#include "scenario/kv_block_pool.hpp"
#include "scenario/kv_pager.hpp"

namespace llamcat {
namespace {

using scenario::kNoPrefixGroup;
using scenario::KvBlockPool;
using scenario::KvBlockPoolConfig;
using scenario::KvPager;
using scenario::KvPagerConfig;

TEST(KvBlockPool, ConfigValidation) {
  KvBlockPoolConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.block_bytes = 100;  // not a line multiple
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.block_bytes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = KvBlockPoolConfig{};
  cfg.shard_bits = 20;  // 1M shards is a typo, not a topology
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(KvBlockPool, LayoutValidation) {
  KvBlockPoolConfig cfg;
  // A prefix longer than the footprint is impossible geometry.
  EXPECT_THROW(KvBlockPool(cfg, {{1024, 0, 2048}}), std::invalid_argument);
  // A prefix length without a group would be dead identity.
  EXPECT_THROW(KvBlockPool(cfg, {{1024, kNoPrefixGroup, 64}}),
               std::invalid_argument);
}

TEST(KvBlockPool, RefetchCostDerivesFromTheHostLink) {
  KvBlockPoolConfig cfg;
  cfg.block_bytes = 4096;
  EXPECT_EQ(cfg.cycles_per_block(), 512u);  // block/8
  cfg.refetch_cost = 7;
  EXPECT_EQ(cfg.cycles_per_block(), 7u);
}

TEST(KvBlockPool, PrefixHitChargesOnlyThePrivateRegion) {
  KvBlockPoolConfig cfg;
  cfg.block_bytes = 256;
  // Three requests: two share a 1024-byte prefix (4 blocks), one private.
  KvBlockPool pool(cfg, {{4096, 0, 1024}, {4096, 0, 1024},
                         {4096, kNoPrefixGroup, 0}});
  const KvBlockPool::Admission a0 = pool.admit(0);
  EXPECT_EQ(a0.charged_bytes, 4096u);
  EXPECT_EQ(a0.lookup_blocks, 4u);
  EXPECT_EQ(a0.hit_blocks, 0u);  // first owner allocates
  const KvBlockPool::Admission a1 = pool.admit(1);
  EXPECT_EQ(a1.lookup_blocks, 4u);
  EXPECT_EQ(a1.hit_blocks, 4u);
  EXPECT_EQ(a1.hit_bytes, 1024u);
  EXPECT_EQ(a1.charged_bytes, 4096u - 1024u);
  const KvBlockPool::Admission a2 = pool.admit(2);
  EXPECT_EQ(a2.lookup_blocks, 0u);  // no group, no probe
  EXPECT_EQ(a2.charged_bytes, 4096u);

  EXPECT_EQ(pool.total_lookups(), 8u);
  EXPECT_EQ(pool.total_hits(), 4u);
  EXPECT_EQ(pool.total_shared_bytes(), 1024u);
  EXPECT_EQ(pool.total_logical_bytes(), 3u * 4096);
  EXPECT_EQ(pool.total_charged_bytes(),
            pool.total_logical_bytes() - pool.total_shared_bytes());
}

TEST(KvBlockPool, DistinctGroupsNeverShare) {
  KvBlockPoolConfig cfg;
  cfg.block_bytes = 64;
  KvBlockPool pool(cfg, {{640, 0, 320}, {640, 1, 320}});
  (void)pool.admit(0);
  const KvBlockPool::Admission a1 = pool.admit(1);
  EXPECT_EQ(a1.hit_blocks, 0u);  // same block indices, different key space
  EXPECT_EQ(a1.charged_bytes, 640u);
}

TEST(KvBlockPool, AdmitCostIsAConservativeEstimate) {
  KvBlockPoolConfig cfg;
  cfg.block_bytes = 64;
  KvBlockPool pool(cfg, {{640, 0, 320}, {640, 0, 320}});
  // Before anyone admits, both estimates are the full footprint.
  EXPECT_EQ(pool.admit_cost(0), 640u);
  EXPECT_EQ(pool.admit_cost(1), 640u);
  (void)pool.admit(0);
  // After a peer admits, the estimate drops to the deduped charge and
  // matches the actual admission exactly - the budget gate never sees a
  // cost that later turns out higher.
  const std::uint64_t estimate = pool.admit_cost(1);
  EXPECT_EQ(estimate, 320u);
  EXPECT_EQ(pool.admit(1).charged_bytes, estimate);
}

TEST(KvBlockPool, FirstAdmissionRefetchesAPeerEvictedPrefix) {
  KvBlockPoolConfig cfg;
  cfg.block_bytes = 64;
  cfg.refetch_cost = 3;
  KvBlockPool pool(cfg, {{640, 0, 320}, {640, 0, 320}});
  (void)pool.admit(0);
  const std::uint64_t freed = pool.release(0);  // all 10 blocks to host
  EXPECT_EQ(freed, 640u);
  // Request 1 has never run, but its prefix blocks exist on the host tier:
  // its FIRST admission refetches them (charged and priced), then allocates
  // its private region.
  EXPECT_EQ(pool.admit_cost(1), 640u);
  const KvBlockPool::Admission a1 = pool.admit(1);
  EXPECT_EQ(a1.charged_bytes, 640u);
  EXPECT_EQ(a1.hit_blocks, 0u);  // a host-tier block is not a free hit
  EXPECT_EQ(a1.refetch_blocks, 5u);
  EXPECT_EQ(a1.refetch_bytes, 320u);
  EXPECT_EQ(a1.refetch_cycles, 5u * 3);
  // Request 0's eventual resume finds its prefix warm again.
  EXPECT_EQ(pool.resume_cost(0), 320u);
  EXPECT_EQ(pool.resume(0).charged_bytes, 320u);
}

TEST(KvBlockPool, FinishFreesSharedBlocksOnlyAtTheLastHolder) {
  KvBlockPoolConfig cfg;
  cfg.block_bytes = 64;
  KvBlockPool pool(cfg, {{640, 0, 320}, {640, 0, 320}});
  (void)pool.admit(0);
  (void)pool.admit(1);
  // Request 0 finishes first: only its private region frees; the prefix
  // stays alive (and resident) for the surviving holder.
  EXPECT_EQ(pool.finish(0), 320u);
  EXPECT_EQ(pool.finish(1), 640u);
}

TEST(KvBlockPool, FreedPrefixIsReallocatedNotRefetched) {
  KvBlockPoolConfig cfg;
  cfg.block_bytes = 64;
  KvBlockPool pool(cfg, {{640, 0, 320}, {640, 0, 320}});
  (void)pool.admit(0);
  EXPECT_EQ(pool.finish(0), 640u);  // last holder: the prefix frees entirely
  // A later group member starts from nothing: full charge, no hit, no
  // refetch (the blocks are gone, not swapped).
  const KvBlockPool::Admission a1 = pool.admit(1);
  EXPECT_EQ(a1.charged_bytes, 640u);
  EXPECT_EQ(a1.hit_blocks, 0u);
  EXPECT_EQ(a1.refetch_blocks, 0u);
}

TEST(KvBlockPool, LifecycleMisuseThrows) {
  KvBlockPoolConfig cfg;
  cfg.block_bytes = 64;
  KvBlockPool pool(cfg, {{640, 0, 320}});
  EXPECT_THROW((void)pool.resume(0), std::logic_error);  // never admitted
  (void)pool.admit(0);
  EXPECT_THROW((void)pool.admit(0), std::logic_error);   // double admit
  EXPECT_THROW((void)pool.resume(0), std::logic_error);  // active, not released
  EXPECT_EQ(pool.finish(0), 640u);
  EXPECT_THROW((void)pool.finish(0), std::logic_error);  // double finish
  EXPECT_THROW((void)pool.release(0), std::logic_error);  // release after finish
}

// The property the golden rows lean on: with every layout private, the
// pool's charges, frees and refetch prices equal KvPager's byte for byte
// across a full evict/resume cycle - at the line granule, an odd block size
// and a block larger than the footprint.
TEST(KvBlockPool, AllPrivatePoolMatchesThePagerByteForByte) {
  for (const std::uint64_t block : {64ull, 192ull, 4096ull, 1ull << 20}) {
    KvBlockPoolConfig pool_cfg;
    pool_cfg.block_bytes = block;
    KvPagerConfig pager_cfg;
    pager_cfg.block_bytes = block;
    const std::vector<std::uint64_t> footprints = {1000, 4096, 64};
    std::vector<KvBlockPool::RequestLayout> layouts;
    for (const std::uint64_t f : footprints) layouts.push_back({f, kNoPrefixGroup, 0});
    KvBlockPool pool(pool_cfg, layouts);
    KvPager pager(pager_cfg, footprints);
    for (std::size_t i = 0; i < footprints.size(); ++i) {
      EXPECT_EQ(pool.admit_cost(i), footprints[i]) << "block " << block;
      EXPECT_EQ(pool.admit(i).charged_bytes, footprints[i]);
      EXPECT_EQ(pool.releasable_blocks(i), pager.evictable_blocks(i))
          << "block " << block << " req " << i;
      const std::uint64_t pool_freed = pool.release(i);
      EXPECT_EQ(pool_freed, pager.evict_cold(i)) << "block " << block;
      const KvPager::Refetch pf = pager.refetch(i);
      const KvBlockPool::Admission pr = pool.resume(i);
      EXPECT_EQ(pr.charged_bytes, pf.bytes) << "block " << block;
      EXPECT_EQ(pr.refetch_blocks, pf.blocks) << "block " << block;
      EXPECT_EQ(pr.refetch_cycles, pf.cycles) << "block " << block;
      EXPECT_EQ(pool.finish(i), footprints[i]);
    }
    EXPECT_EQ(pool.total_lookups(), 0u);
    EXPECT_EQ(pool.total_shared_bytes(), 0u);
  }
}

}  // namespace
}  // namespace llamcat
