// Unit tests: common utilities (math, clock divider, RNG, stats, tables,
// thread pool, config validation).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/config.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace llamcat {
namespace {

TEST(MathUtil, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(MathUtil, IsPow2AndLog2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(8), 3u);
  EXPECT_EQ(log2_floor(9), 3u);
}

TEST(ClockDivider, Exact40To49Ratio) {
  // The Table 5 clock pair: 1.6 GHz DRAM vs 1.96 GHz core = 40:49.
  ClockDivider div(40, 49);
  std::uint64_t slow = 0;
  const std::uint64_t fast_ticks = 49'000;
  for (std::uint64_t i = 0; i < fast_ticks; ++i) slow += div.advance();
  EXPECT_EQ(slow, 40'000u);
}

TEST(ClockDivider, NeverProducesMoreThanOne) {
  ClockDivider div(999, 1000);
  for (int i = 0; i < 10000; ++i) EXPECT_LE(div.advance(), 1u);
}

TEST(OccupancyAverage, TimeWeighted) {
  OccupancyAverage avg;
  avg.add(1.0, 3);
  avg.add(0.0, 1);
  EXPECT_DOUBLE_EQ(avg.mean(), 0.75);
  avg.reset();
  EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
}

TEST(Rng, DeterministicAndDistinct) {
  Xoshiro256 a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  Xoshiro256 a2(42);
  bool same = true;
  for (int i = 0; i < 8; ++i) same = same && (a2() == c());
  EXPECT_FALSE(same);
}

TEST(Rng, BelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(StatSet, MergeAddsCounters) {
  StatSet a, b;
  a.inc("x", 3);
  b.inc("x", 4);
  b.inc("y");
  a.merge(b);
  EXPECT_EQ(a.get("x"), 7u);
  EXPECT_EQ(a.get("y"), 1u);
  EXPECT_EQ(a.get("zzz"), 0u);
}

TEST(TextTable, AlignsAndCounts) {
  TextTable t("demo");
  t.set_header({"a", "long-column"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("long-column"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("333,4"), std::string::npos);
}

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futs[i].get(), i * i);
}

TEST(Config, Table5Defaults) {
  const SimConfig cfg = SimConfig::table5();
  EXPECT_EQ(cfg.core.num_cores, 16u);
  EXPECT_EQ(cfg.core.num_inst_windows, 4u);
  EXPECT_EQ(cfg.core.inst_window_depth, 128u);
  EXPECT_EQ(cfg.llc.size_bytes, 16ull << 20);
  EXPECT_EQ(cfg.llc.num_slices, 8u);
  EXPECT_EQ(cfg.llc.assoc, 8u);
  EXPECT_EQ(cfg.llc.hit_latency, 3u);
  EXPECT_EQ(cfg.llc.data_latency, 25u);
  EXPECT_EQ(cfg.llc.mshr_latency, 5u);
  EXPECT_EQ(cfg.llc.mshr_entries, 6u);
  EXPECT_EQ(cfg.llc.mshr_targets, 8u);
  EXPECT_EQ(cfg.llc.req_q_size, 12u);
  EXPECT_EQ(cfg.llc.resp_q_size, 64u);
  EXPECT_EQ(cfg.llc.resp_arb, RespArbPolicy::kResponseFirst);
  EXPECT_EQ(cfg.dram.num_channels, 4u);
  EXPECT_EQ(cfg.dram.ranks_per_channel, 4u);
  EXPECT_DOUBLE_EQ(cfg.core_hz, 1.96e9);
  EXPECT_EQ(cfg.l1.size_bytes, 64u * 1024);
  EXPECT_EQ(cfg.l1.assoc, 8u);
  EXPECT_EQ(cfg.l1.latency, 1u);
}

TEST(Config, Table1To3ThrottleDefaults) {
  const SimConfig cfg = SimConfig::table5();
  EXPECT_EQ(cfg.throttle.sampling_period, 2000u);
  EXPECT_EQ(cfg.throttle.sub_period, 400u);
  EXPECT_EQ(cfg.throttle.max_gear, 4u);
  const std::uint32_t expect_eighths[5] = {0, 1, 2, 4, 6};
  for (int g = 0; g <= 4; ++g)
    EXPECT_EQ(cfg.throttle.gear_eighths[g], expect_eighths[g]) << g;
  // Table 3 bands are re-swept for this substrate (see ThrottleConfig);
  // the shipped defaults must keep the gear parked at the miss-handling-
  // bound regime's baseline t_cs (~0.59) and engage under capacity
  // pressure (~0.74+).
  EXPECT_DOUBLE_EQ(cfg.throttle.tcs_low, 0.62);
  EXPECT_DOUBLE_EQ(cfg.throttle.tcs_normal, 0.68);
  EXPECT_DOUBLE_EQ(cfg.throttle.tcs_high, 0.75);
  // Table 4 in-core bounds are the paper's swept optima.
  EXPECT_EQ(cfg.throttle.c_idle_upper, 4u);
  EXPECT_EQ(cfg.throttle.c_mem_upper, 250u);
  EXPECT_EQ(cfg.throttle.c_mem_lower, 180u);
}

TEST(Config, ValidationCatchesBadGeometry) {
  SimConfig cfg = SimConfig::table5();
  cfg.llc.num_slices = 3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig::table5();
  cfg.core.num_cores = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig::table5();
  cfg.throttle.sampling_period = 1000;
  cfg.throttle.sub_period = 300;  // not a divisor
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = SimConfig::table5();
  cfg.throttle.tcs_low = cfg.throttle.tcs_normal + 0.01;  // not increasing
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, PolicyNames) {
  EXPECT_EQ(to_string(ArbPolicy::kBma), "BMA");
  EXPECT_EQ(to_string(ThrottlePolicy::kDynMg), "dynmg");
  EXPECT_EQ(to_string(RespArbPolicy::kResponseFirst), "response-first");
}

TEST(Types, LineHelpers) {
  EXPECT_EQ(line_align(0x1234), 0x1200u);
  EXPECT_EQ(line_align(0x1240), 0x1240u);
  EXPECT_EQ(line_index(0x1240), 0x49u);
}

}  // namespace
}  // namespace llamcat
