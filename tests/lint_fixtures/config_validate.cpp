// Fixture: the config-validate rule. Every *Config struct must declare
// validate() so bad values fail loudly at construction instead of
// corrupting a run thousands of cycles later.
#include <cstdint>
#include <stdexcept>

struct RetryConfig {  // lint:expect(config-validate)
  std::uint32_t max_attempts = 3;
  std::uint32_t backoff_cycles = 100;
};

// Clean: declaring validate() satisfies the rule.
struct WindowConfig {
  std::uint32_t depth = 8;
  void validate() const {
    if (depth == 0) throw std::invalid_argument("WindowConfig: depth == 0");
  }
};

// Clean: a digit separator in a default is not a char-literal open; the
// validate() after it must still be seen (lexer regression guard).
struct GapConfig {
  std::uint64_t gap_cycles = 20'000;
  void validate() const {
    if (gap_cycles == 0) throw std::invalid_argument("GapConfig: gap == 0");
  }
};

// Clean: forward declarations are not definitions.
struct DeferredConfig;

// Honored suppression: a config mirrored from an external schema that is
// validated by its owner at the ingestion boundary.
// lint:allow(config-validate): mirrored external schema; owner validates at ingestion
struct MirroredConfig {
  std::uint32_t raw_flags = 0;
};
