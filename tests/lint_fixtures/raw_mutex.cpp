// Fixture: the raw-mutex rule. std:: locking primitives carry no clang
// thread-safety annotations, so state they guard is invisible to
// -Wthread-safety. Simulation code uses llamcat::Mutex / MutexLock /
// CondVar (common/sync.hpp), which wrap the same primitives and keep the
// GUARDED_BY contracts machine-checked.
#include <mutex>

struct UncheckedQueue {
  std::mutex mu;  // lint:expect(raw-mutex)
  int pending = 0;
};

void bump(UncheckedQueue& q) {
  std::scoped_lock lock(q.mu);  // lint:expect(raw-mutex)
  ++q.pending;
}

// Honored suppression: code interfacing with a third-party API that hands
// out std primitives has nothing to annotate.
struct ExternalHandle {
  // lint:allow(raw-mutex): third-party callback API hands us its std::mutex
  std::mutex* borrowed = nullptr;
};
