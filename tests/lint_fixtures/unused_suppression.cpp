// Fixture: the unused-suppression meta rule. A reasoned allow that no
// longer matches any finding on its line is dead weight - it hides the
// next real violation someone introduces there, so it must be deleted.

// lint:expect(unused-suppression) lint:allow(wallclock): nothing here reads a clock anymore
int refactored_away = 0;

// Honored suppression: a pre-armed allow kept deliberately (e.g. a line
// that alternates under an #ifdef), silenced with a reason one line up.
// lint:allow(unused-suppression): timing path is compiled out in this configuration
// lint:allow(wallclock): guards the timing read in the profiled build
int sometimes_timed = 1;
