// Fixture: the allow-without-reason meta rule. A suppression with no
// ': <reason>' text is indistinguishable from a silenced bug, so it is
// itself a violation - and it suppresses nothing, so the underlying
// finding stays active too.
#include <unordered_map>

std::unordered_map<int, int> table;

int count_everything() {
  int n = 0;
  // lint:expect(allow-without-reason) lint:allow(unordered-iteration)
  for (const auto& [k, v] : table) {  // lint:expect(unordered-iteration)
    n += v;
  }
  return n;
}

// Honored suppression: the meta rule itself can be silenced with a reason
// (e.g. a fixture or doc snippet that must show the bad form verbatim).
int count_tolerated() {
  int n = 0;
  // lint:allow(allow-without-reason): next line shows the bad form on purpose
  // lint:allow(unordered-iteration)
  for (const auto& [k, v] : table) {  // lint:expect(unordered-iteration)
    n += v;
  }
  return n;
}
