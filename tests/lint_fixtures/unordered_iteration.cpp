// Fixture: the unordered-iteration rule (range-for and iterator forms).
// Not compiled - linted by test_lint against the expect markers.
#include <cstdint>
#include <iostream>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::uint64_t> hits_by_set;

// Caught: a range-for over an unordered table feeding printed output walks
// in hash order, which varies across libstdc++ versions and ASLR.
void dump_rows() {
  for (const auto& [set, hits] : hits_by_set) {  // lint:expect(unordered-iteration)
    std::cout << set << " " << hits << "\n";
  }
}

// Caught: the explicit iterator spelling of the same bug.
void first_row() {
  auto it = hits_by_set.begin();  // lint:expect(unordered-iteration)
  if (it != hits_by_set.end()) std::cout << it->first << "\n";
}

// Honored suppression: a hash-order walk that only computes an
// order-independent summary is legitimate, and says why in place.
std::uint64_t max_hits() {
  std::uint64_t best = 0;
  // lint:allow(unordered-iteration): max() is order-independent; no row order escapes
  for (const auto& [set, hits] : hits_by_set) {
    if (hits > best) best = hits;
  }
  return best;
}
