// Fixture: the unknown-rule meta rule. A directive naming a rule id that
// does not exist is a typo or a leftover from a removed rule; either way
// it silences nothing and must be fixed or deleted.

// lint:expect(unknown-rule) lint:allow(determinizm): misspelled rule id
int misspelled = 0;

// Honored suppression: grandfathering a directive for a rule that is being
// renamed across a multi-repo migration.
// lint:allow(unknown-rule): rule renamed upstream; directive updated in the follow-up sync
// lint:allow(legacy-ordering): kept until the rename lands
int migrating = 1;
