// Fixture: the ambient-rng rule. The simulator's randomness flows from
// seeded Xoshiro256 instances; rand()/random_device pull from process
// state or the environment and are unreproducible by construction.
#include <cstdlib>
#include <random>

int noisy_choice(int n) {
  return rand() % n;  // lint:expect(ambient-rng)
}

unsigned hardware_seed() {
  std::random_device rd;  // lint:expect(ambient-rng)
  return rd();
}

// Honored suppression: a demo tool may want a fresh seed per invocation,
// as long as the seed itself is printed for replay.
unsigned demo_seed() {
  // lint:allow(ambient-rng): demo-only seed; printed so any run can be replayed
  std::random_device rd;
  return rd();
}
