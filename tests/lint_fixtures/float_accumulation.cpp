// Fixture: the float-accumulation rule (float/double compound-assigned
// inside an unordered iteration - rounding then depends on hash order).
#include <unordered_map>

std::unordered_map<int, double> weight_by_id;

// Caught: the sum's rounding error depends on visit order, so the "same"
// stat differs across library versions / ASLR even with identical data.
double total_weight() {
  double total = 0.0;
  for (const auto& [id, w] : weight_by_id) {  // lint:expect(unordered-iteration)
    total += w;  // lint:expect(float-accumulation)
  }
  return total;
}

// Honored suppression: both rules silenced with reasons on their lines.
double total_weight_tolerated() {
  double acc = 0.0;
  // lint:allow(unordered-iteration): diagnostic-only estimate; never printed or digested
  for (const auto& [id, w] : weight_by_id) {
    // lint:allow(float-accumulation): diagnostic-only estimate; tolerance covers reorder error
    acc += w;
  }
  return acc;
}
