// Fixture: the pointer-keyed-container rule. Ordered containers keyed by a
// pointer sort by allocation address; unordered ones hash it. Either way
// the layout follows the allocator, not the data, so any traversal or tie
// break leaks ASLR into results.
#include <map>
#include <set>

struct Node {
  int id;
};

std::map<const Node*, int> rank_by_node;  // lint:expect(pointer-keyed-container)

std::set<Node*> live_nodes;  // lint:expect(pointer-keyed-container)

// Honored suppression: identity sets that are only ever membership-tested
// (never iterated, never compared) are address-keyed on purpose.
// lint:allow(pointer-keyed-container): membership-only identity set; never iterated
std::set<const Node*> seen_nodes;
