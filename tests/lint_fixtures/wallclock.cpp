// Fixture: the wallclock rule. Host time must never influence simulated
// behavior - simulation time is the cycle counter. Wall-clock reads are
// only legitimate for reporting how long the host took.
#include <chrono>
#include <ctime>

long stamp_run() {
  return std::chrono::steady_clock::now()  // lint:expect(wallclock)
      .time_since_epoch()
      .count();
}

long stamp_epoch() {
  return static_cast<long>(time(nullptr));  // lint:expect(wallclock)
}

// Honored suppression: measuring host elapsed time for a report row.
double measure_seconds() {
  // lint:allow(wallclock): measures host runtime for the report; sim state is cycle-driven
  const auto t0 = std::chrono::steady_clock::now();
  // lint:allow(wallclock): measures host runtime for the report; sim state is cycle-driven
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
