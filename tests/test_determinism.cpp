// Two-run determinism cross-check for every execution mode: the same
// DecodePass run twice must produce byte-identical results - every stat,
// landmark, counter and per-segment row, compared via the canonical digest
// the serving fuzzer uses (scenario/fuzz.hpp). One parameterized suite
// replaces the ad-hoc per-suite determinism tests that used to live in
// test_scenario / test_continuous / test_serving / test_paging, so a new
// execution mode or policy knob gets determinism coverage by adding a row
// here instead of hand-picking fields to compare.
#include <gtest/gtest.h>

#include "scenario/fuzz.hpp"
#include "scenario/scenario.hpp"

namespace llamcat {
namespace {

using scenario::AdmitPolicy;
using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::ExecutionMode;
using scenario::RequestBatch;
using scenario::RequestSpec;

SimConfig small_config() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

ModelShape tiny_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

// tiny_model: H=2, D=128, fp16 -> 512 bytes per resident KV token per layer.
constexpr std::uint64_t kTinyBytesPerToken = 2ull * 128 * 2;

struct ModeCase {
  std::string name;
  std::vector<RequestSpec> requests;
  void (*configure)(DecodePassConfig&);
};

class EveryMode : public ::testing::TestWithParam<ModeCase> {};

TEST_P(EveryMode, TwoRunsAreByteIdentical) {
  const ModeCase& mc = GetParam();
  DecodePassConfig pc;
  pc.num_layers = 2;
  pc.include_gemv = false;
  mc.configure(pc);
  const RequestBatch batch(tiny_model(), mc.requests);
  const DecodePass pass(batch, pc, small_config());
  const BatchStats a = pass.run();
  const BatchStats b = pass.run();
  EXPECT_EQ(scenario::batch_stats_digest(a), scenario::batch_stats_digest(b));
}

// The in-engine auditor must be observation-only: an audited run reports
// exactly what the plain run reports, for every mode that supports it.
TEST_P(EveryMode, AuditedRunIsByteIdenticalToPlain) {
  const ModeCase& mc = GetParam();
  DecodePassConfig pc;
  pc.num_layers = 2;
  pc.include_gemv = false;
  mc.configure(pc);
  const RequestBatch batch(tiny_model(), mc.requests);
  const BatchStats plain = DecodePass(batch, pc, small_config()).run();
  pc.audit = true;
  const BatchStats audited = DecodePass(batch, pc, small_config()).run();
  EXPECT_EQ(scenario::batch_stats_digest(plain),
            scenario::batch_stats_digest(audited));
}

const std::vector<RequestSpec> kBarrierBatch = {{0, 128, 0, 1}, {1, 256, 0, 2}};
const std::vector<RequestSpec> kStreamBatch = {
    {0, 256, 0, 1}, {1, 64, 500, 2}, {2, 128, 0, 1}};
const std::vector<RequestSpec> kServingBatch = {
    {0, 512, 0, 2}, {1, 128, 1000, 1}, {2, 64, 3000, 1}, {3, 128, 5000, 1}};

INSTANTIATE_TEST_SUITE_P(
    Matrix, EveryMode,
    ::testing::Values(
        ModeCase{"independent", kBarrierBatch,
                 [](DecodePassConfig& pc) {
                   pc.mode = ExecutionMode::kIndependent;
                 }},
        ModeCase{"coscheduled", kBarrierBatch,
                 [](DecodePassConfig& pc) {
                   pc.mode = ExecutionMode::kCoScheduled;
                 }},
        ModeCase{"continuous_raw", kStreamBatch,
                 [](DecodePassConfig& pc) {
                   pc.mode = ExecutionMode::kContinuous;
                 }},
        ModeCase{"continuous_budgeted_preempt", kServingBatch,
                 [](DecodePassConfig& pc) {
                   pc.mode = ExecutionMode::kContinuous;
                   pc.serving.policy = AdmitPolicy::kShortestRemaining;
                   pc.serving.kv_budget_bytes = 700 * kTinyBytesPerToken * 2;
                   pc.serving.preempt = true;
                 }},
        ModeCase{"continuous_paged", kServingBatch,
                 [](DecodePassConfig& pc) {
                   pc.mode = ExecutionMode::kContinuous;
                   pc.serving.policy = AdmitPolicy::kShortestRemaining;
                   pc.serving.kv_budget_bytes = 544 * kTinyBytesPerToken * 2;
                   pc.serving.preempt = true;
                   pc.serving.kv_evict = KvEvictPolicy::kColdBlocks;
                 }}),
    [](const ::testing::TestParamInfo<ModeCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace llamcat
