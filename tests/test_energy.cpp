// Energy-model tests: exact arithmetic against hand-built counter sets,
// scaling/monotonicity properties, and integration with real runs.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/energy.hpp"
#include "sim/experiment.hpp"

namespace llamcat {
namespace {

SimStats stats_with(std::uint64_t dram_reads, std::uint64_t dram_writes,
                    std::uint64_t activates, std::uint64_t refreshes,
                    Cycle cycles = 1'000'000) {
  SimStats s;
  s.cycles = cycles;
  s.core_hz = 1e9;
  s.dram_reads = dram_reads;
  s.dram_writes = dram_writes;
  s.counters.set("dram.reads", dram_reads);
  s.counters.set("dram.writes", dram_writes);
  s.counters.set("dram.activates", activates);
  s.counters.set("dram.refreshes", refreshes);
  return s;
}

TEST(EnergyModel, DramDynamicArithmetic) {
  EnergyConfig e;
  e.dram_act_pre_pj = 1000.0;
  e.dram_rd_pj = 100.0;
  e.dram_wr_pj = 200.0;
  e.dram_ref_pj = 5000.0;
  const SimConfig cfg = SimConfig::table5();
  const SimStats s = stats_with(10, 5, 3, 2);
  const EnergyReport r = estimate_energy(e, cfg, s);
  // 3*1000 + 10*100 + 5*200 + 2*5000 = 15000 pJ
  EXPECT_DOUBLE_EQ(r.dram_dynamic_j, 15000e-12);
}

TEST(EnergyModel, StaticEnergyScalesWithTimeAndChannels) {
  EnergyConfig e;
  e.dram_static_mw_per_channel = 100.0;  // 0.1 W per channel
  SimConfig cfg = SimConfig::table5();
  cfg.dram.num_channels = 4;
  const SimStats s = stats_with(0, 0, 0, 0, 2'000'000);  // 2 ms at 1 GHz
  const EnergyReport r = estimate_energy(e, cfg, s);
  EXPECT_NEAR(r.dram_static_j, 0.4 * 0.002, 1e-12);  // 0.4 W * 2 ms

  cfg.dram.num_channels = 8;
  const EnergyReport r8 = estimate_energy(e, cfg, s);
  EXPECT_NEAR(r8.dram_static_j, 2.0 * r.dram_static_j, 1e-12);
}

TEST(EnergyModel, ZeroCountersZeroDynamicEnergy) {
  const EnergyReport r = estimate_energy(EnergyConfig{}, SimConfig::table5(),
                                         stats_with(0, 0, 0, 0));
  EXPECT_DOUBLE_EQ(r.dram_dynamic_j, 0.0);
  EXPECT_DOUBLE_EQ(r.llc_j, 0.0);
  EXPECT_DOUBLE_EQ(r.l1_j, 0.0);
  EXPECT_DOUBLE_EQ(r.noc_j, 0.0);
  EXPECT_GT(r.dram_static_j, 0.0);  // background power always accrues
}

TEST(EnergyModel, TotalIsSumOfComponents) {
  SimStats s = stats_with(100, 50, 30, 5);
  s.counters.set("llc.lookups", 1000);
  s.counters.set("llc.hits", 700);
  s.counters.set("llc.responses_served", 100);
  s.counters.set("llc.misses", 300);
  s.counters.set("llc.mshr_allocs", 100);
  s.counters.set("l1.load_hits", 5000);
  s.counters.set("l1.fills", 900);
  s.counters.set("llc.requests_in", 1000);
  const EnergyReport r =
      estimate_energy(EnergyConfig{}, SimConfig::table5(), s);
  EXPECT_DOUBLE_EQ(r.total_j(), r.dram_dynamic_j + r.dram_static_j + r.llc_j +
                                    r.l1_j + r.noc_j);
  EXPECT_GT(r.llc_j, 0.0);
  EXPECT_GT(r.l1_j, 0.0);
  EXPECT_GT(r.noc_j, 0.0);
}

TEST(EnergyModel, BypassedFillsDoNotChargeTheDataArray) {
  SimStats kept = stats_with(0, 0, 0, 0);
  kept.counters.set("llc.responses_served", 100);
  SimStats bypassed = kept;
  bypassed.counters.set("llc.bypassed_fills", 100);
  const SimConfig cfg = SimConfig::table5();
  EXPECT_GT(estimate_energy(EnergyConfig{}, cfg, kept).llc_j,
            estimate_energy(EnergyConfig{}, cfg, bypassed).llc_j);
}

TEST(EnergyModel, MoreTrafficMoreEnergy) {
  const SimConfig cfg = SimConfig::table5();
  const EnergyConfig e;
  const double low =
      estimate_energy(e, cfg, stats_with(100, 10, 20, 1)).total_j();
  const double high =
      estimate_energy(e, cfg, stats_with(1000, 100, 200, 1)).total_j();
  EXPECT_GT(high, low);
}

TEST(EnergyModel, EdpAndPowerDerivations) {
  EnergyConfig e;
  const SimConfig cfg = SimConfig::table5();
  const SimStats s = stats_with(1000, 0, 100, 0);
  const EnergyReport r = estimate_energy(e, cfg, s);
  EXPECT_DOUBLE_EQ(r.edp_js(), r.total_j() * r.seconds);
  EXPECT_DOUBLE_EQ(r.avg_power_w(), r.total_j() / r.seconds);
}

TEST(EnergyModel, DramPjPerByteUsesMovedBytes) {
  EnergyConfig e;
  e.dram_act_pre_pj = 0.0;
  e.dram_rd_pj = 640.0;  // 10 pJ/B at 64B lines
  e.dram_ref_pj = 0.0;
  const SimConfig cfg = SimConfig::table5();
  const SimStats s = stats_with(100, 0, 0, 0);
  const EnergyReport r = estimate_energy(e, cfg, s);
  EXPECT_NEAR(r.dram_pj_per_byte(s), 10.0, 1e-9);
}

TEST(EnergyModel, PrintIsHumanReadable) {
  const EnergyReport r = estimate_energy(EnergyConfig{}, SimConfig::table5(),
                                         stats_with(100, 10, 20, 1));
  std::ostringstream os;
  r.print(os);
  EXPECT_NE(os.str().find("total="), std::string::npos);
  EXPECT_NE(os.str().find("EDP"), std::string::npos);
}

TEST(EnergyIntegration, RealRunProducesConsistentReport) {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 2ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  const SimStats s = run_simulation(cfg, Workload::logit(m, 512, cfg));
  const EnergyReport r = estimate_energy(EnergyConfig{}, cfg, s);
  EXPECT_GT(r.dram_dynamic_j, 0.0);
  EXPECT_GT(r.llc_j, 0.0);
  EXPECT_GT(r.l1_j, 0.0);
  EXPECT_GT(r.noc_j, 0.0);
  EXPECT_GT(r.avg_power_w(), 0.0);
  // Sanity band: a few-mm^2 memory subsystem moving ~MBs should land
  // between milliwatts and tens of watts, not outside it.
  EXPECT_LT(r.avg_power_w(), 100.0);
}

}  // namespace
}  // namespace llamcat
