// CSV/JSON export tests: structure, counter-union expansion, escaping,
// and numeric round-trips.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/report.hpp"

namespace llamcat {
namespace {

ExperimentResult result(const std::string& name, Cycle cycles) {
  ExperimentResult r;
  r.name = name;
  r.stats.cycles = cycles;
  r.stats.core_hz = 1e9;
  r.stats.l2_hit_rate = 0.5;
  r.stats.dram_reads = 42;
  r.stats.counters.set("llc.hits", 7);
  r.wall_seconds = 0.25;
  return r;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

std::size_t count_fields(const std::string& line, char sep) {
  return static_cast<std::size_t>(std::count(line.begin(), line.end(), sep)) +
         1;
}

TEST(CsvReport, HeaderPlusOneRowPerResult) {
  const std::vector<ExperimentResult> rs = {result("a", 100),
                                            result("b", 200)};
  std::ostringstream os;
  write_csv(os, rs);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].substr(0, 12), "name,cycles,");
  EXPECT_EQ(lines[1].substr(0, 6), "a,100,");
  EXPECT_EQ(lines[2].substr(0, 6), "b,200,");
}

TEST(CsvReport, RowsHaveHeaderFieldCount) {
  const std::vector<ExperimentResult> rs = {result("a", 100),
                                            result("b", 200)};
  std::ostringstream os;
  write_csv(os, rs);
  const auto lines = lines_of(os.str());
  const std::size_t n = count_fields(lines[0], ',');
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(count_fields(lines[i], ','), n) << "row " << i;
  }
}

TEST(CsvReport, CounterUnionColumns) {
  auto a = result("a", 100);
  auto b = result("b", 200);
  a.stats.counters.set("dram.reads", 11);   // only in a
  b.stats.counters.set("noc.flits", 22);    // only in b
  const std::vector<ExperimentResult> rs = {a, b};
  std::ostringstream os;
  write_csv(os, rs, ReportOptions{/*include_counters=*/true});
  const auto lines = lines_of(os.str());
  EXPECT_NE(lines[0].find("dram.reads"), std::string::npos);
  EXPECT_NE(lines[0].find("noc.flits"), std::string::npos);
  EXPECT_NE(lines[0].find("llc.hits"), std::string::npos);
  // Same field count everywhere despite the asymmetric counters.
  const std::size_t n = count_fields(lines[0], ',');
  EXPECT_EQ(count_fields(lines[1], ','), n);
  EXPECT_EQ(count_fields(lines[2], ','), n);
}

TEST(CsvReport, CustomSeparator) {
  const std::vector<ExperimentResult> rs = {result("a", 100)};
  std::ostringstream os;
  ReportOptions opts;
  opts.separator = '\t';
  write_csv(os, rs, opts);
  const auto lines = lines_of(os.str());
  EXPECT_EQ(lines[0].find(','), std::string::npos);
  EXPECT_NE(lines[0].find('\t'), std::string::npos);
}

TEST(JsonReport, ContainsKeysAndCounters) {
  const std::vector<ExperimentResult> rs = {result("run-1", 123)};
  std::ostringstream os;
  write_json(os, rs);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"name\": \"run-1\""), std::string::npos);
  EXPECT_NE(j.find("\"cycles\": 123"), std::string::npos);
  EXPECT_NE(j.find("\"llc.hits\": 7"), std::string::npos);
  EXPECT_NE(j.find("\"wall_seconds\": 0.25"), std::string::npos);
}

TEST(JsonReport, BalancedBracesAndBrackets) {
  const std::vector<ExperimentResult> rs = {result("a", 1), result("b", 2)};
  std::ostringstream os;
  write_json(os, rs);
  const std::string j = os.str();
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '['),
            std::count(j.begin(), j.end(), ']'));
}

TEST(JsonReport, EscapesQuotesInNames) {
  auto r = result("run \"quoted\"", 1);
  std::ostringstream os;
  write_json(os, std::vector<ExperimentResult>{r});
  EXPECT_NE(os.str().find("run \\\"quoted\\\""), std::string::npos);
}

TEST(JsonReport, SingleRunOverloadOmitsWallSeconds) {
  std::ostringstream os;
  SimStats s;
  s.cycles = 9;
  s.core_hz = 1e9;
  write_json(os, "solo", s);
  EXPECT_NE(os.str().find("\"name\": \"solo\""), std::string::npos);
  EXPECT_EQ(os.str().find("wall_seconds"), std::string::npos);
}

TEST(JsonReport, EmptyResultListIsValidArray) {
  std::ostringstream os;
  write_json(os, std::vector<ExperimentResult>{});
  EXPECT_EQ(os.str(), "[\n]\n");
}

}  // namespace
}  // namespace llamcat
