// Replacement/insertion policy tests: SRRIP and FIFO semantics, plus
// cross-policy invariants swept over the full (replacement x insertion)
// matrix with TEST_P.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cache/cache_array.hpp"

namespace llamcat {
namespace {

Addr line(std::uint64_t i) { return i * kLineBytes; }

// ---------------------------------------------------------------- SRRIP --

TEST(Srrip, InsertionRrpvFollowsInsertPolicy) {
  CacheArray mru(1, 4, ReplPolicy::kSrrip, InsertPolicy::kMru);
  mru.fill(0, line(1), false);
  EXPECT_EQ(mru.rrpv_of(0, line(1)), 2u);  // "long" re-reference

  CacheArray streaming(1, 4, ReplPolicy::kSrrip, InsertPolicy::kStreaming);
  streaming.fill(0, line(1), false);
  EXPECT_EQ(streaming.rrpv_of(0, line(1)), 3u);  // "distant"
}

TEST(Srrip, HitPromotesToNearImmediate) {
  CacheArray a(1, 4, ReplPolicy::kSrrip, InsertPolicy::kMru);
  a.fill(0, line(1), false);
  EXPECT_TRUE(a.touch(0, line(1)));
  EXPECT_EQ(a.rrpv_of(0, line(1)), 0u);
}

TEST(Srrip, EvictsDistantLineFirst) {
  CacheArray a(1, 2, ReplPolicy::kSrrip, InsertPolicy::kStreaming);
  a.fill(0, line(1), false);  // rrpv 3
  a.fill(0, line(2), false);  // rrpv 3
  a.touch(0, line(1));        // rrpv 0
  const auto ev = a.fill(0, line(3), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, line(2));
}

TEST(Srrip, AgesWhenNoDistantLine) {
  CacheArray a(1, 2, ReplPolicy::kSrrip, InsertPolicy::kMru);
  a.fill(0, line(1), false);
  a.fill(0, line(2), false);
  a.touch(0, line(1));
  a.touch(0, line(2));  // both rrpv 0: eviction must age them to 3 first
  const auto ev = a.fill(0, line(3), false);
  ASSERT_TRUE(ev.has_value());
  // One of the two was evicted; the survivor was aged to rrpv 3 and the
  // newly inserted line carries insertion rrpv 2.
  const Addr survivor = ev->line_addr == line(1) ? line(2) : line(1);
  EXPECT_EQ(a.rrpv_of(0, survivor), 3u);
  EXPECT_EQ(a.rrpv_of(0, line(3)), 2u);
}

/// The motivating SRRIP property: with distant insertion (SRRIP-D), a
/// re-referenced working set survives a one-shot streaming scan that
/// thrashes LRU with MRU insertion.
TEST(Srrip, ScanResistance) {
  constexpr std::uint32_t kAssoc = 8;
  CacheArray srrip(1, kAssoc, ReplPolicy::kSrrip, InsertPolicy::kStreaming);
  CacheArray lru(1, kAssoc, ReplPolicy::kLru, InsertPolicy::kMru);

  // Hot set: 4 lines, touched repeatedly.
  for (std::uint64_t i = 0; i < 4; ++i) {
    srrip.fill(0, line(i), false);
    lru.fill(0, line(i), false);
  }
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      srrip.touch(0, line(i));
      lru.touch(0, line(i));
    }
  }
  // Scan: 16 single-use lines.
  for (std::uint64_t i = 100; i < 116; ++i) {
    if (!srrip.probe(0, line(i))) srrip.fill(0, line(i), false);
    if (!lru.probe(0, line(i))) lru.fill(0, line(i), false);
  }
  int srrip_survivors = 0;
  int lru_survivors = 0;
  for (std::uint64_t i = 0; i < 4; ++i) {
    srrip_survivors += srrip.probe(0, line(i)) ? 1 : 0;
    lru_survivors += lru.probe(0, line(i)) ? 1 : 0;
  }
  EXPECT_EQ(lru_survivors, 0) << "LRU should thrash under the scan";
  EXPECT_GE(srrip_survivors, 2) << "SRRIP should keep most of the hot set";
}

// ----------------------------------------------------------------- FIFO --

TEST(Fifo, EvictsInInsertionOrderDespiteTouches) {
  CacheArray a(1, 3, ReplPolicy::kFifo, InsertPolicy::kMru);
  a.fill(0, line(1), false);
  a.fill(0, line(2), false);
  a.fill(0, line(3), false);
  // Touch the oldest repeatedly; FIFO must still evict it first.
  for (int i = 0; i < 10; ++i) a.touch(0, line(1));
  auto ev = a.fill(0, line(4), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, line(1));
  ev = a.fill(0, line(5), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, line(2));
}

TEST(Fifo, InsertionPolicyIgnored) {
  CacheArray a(1, 2, ReplPolicy::kFifo, InsertPolicy::kStreaming);
  a.fill(0, line(1), false);
  a.fill(0, line(2), false);
  // Under streaming-LRU, line(2) (stamp 0) would be the victim; FIFO must
  // evict line(1), the older insertion.
  const auto ev = a.fill(0, line(3), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, line(1));
}

// ------------------------------------------- cross-policy property sweep --

struct PolicyCase {
  ReplPolicy repl;
  InsertPolicy insert;
};

class ReplacementMatrix : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ReplacementMatrix, CapacityNeverExceeded) {
  const auto [repl, insert] = GetParam();
  CacheArray a(4, 4, repl, insert, /*seed=*/7);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint32_t set = i % 4;
    if (!a.probe(set, line(i))) a.fill(set, line(i), false);
    EXPECT_LE(a.valid_count(), 16u);
  }
  EXPECT_EQ(a.valid_count(), 16u);
}

TEST_P(ReplacementMatrix, NoEvictionWhileSetHasRoom) {
  const auto [repl, insert] = GetParam();
  CacheArray a(1, 8, repl, insert, /*seed=*/7);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(a.fill(0, line(i), false).has_value())
        << "eviction before the set was full (way " << i << ")";
  }
  EXPECT_TRUE(a.fill(0, line(100), false).has_value());
}

TEST_P(ReplacementMatrix, FilledLineIsProbeable) {
  const auto [repl, insert] = GetParam();
  CacheArray a(2, 4, repl, insert, /*seed=*/7);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint32_t set = i % 2;
    if (!a.probe(set, line(i))) {
      a.fill(set, line(i), false);
      EXPECT_TRUE(a.probe(set, line(i)));
    }
  }
}

TEST_P(ReplacementMatrix, VictimWasResident) {
  const auto [repl, insert] = GetParam();
  CacheArray a(1, 4, repl, insert, /*seed=*/7);
  std::set<Addr> resident;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (a.probe(0, line(i))) continue;
    const auto ev = a.fill(0, line(i), false);
    if (ev) {
      EXPECT_TRUE(resident.count(ev->line_addr) == 1)
          << "evicted a line that was never resident";
      resident.erase(ev->line_addr);
    }
    resident.insert(line(i));
  }
}

TEST_P(ReplacementMatrix, SetContentsMatchFills) {
  const auto [repl, insert] = GetParam();
  CacheArray a(1, 4, repl, insert, /*seed=*/7);
  std::set<Addr> expected;
  for (std::uint64_t i = 0; i < 32; ++i) {
    if (a.probe(0, line(i))) continue;
    const auto ev = a.fill(0, line(i), false);
    if (ev) expected.erase(ev->line_addr);
    expected.insert(line(i));
  }
  const auto contents = a.set_contents(0);
  EXPECT_EQ(std::set<Addr>(contents.begin(), contents.end()), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ReplacementMatrix,
    ::testing::Values(
        PolicyCase{ReplPolicy::kLru, InsertPolicy::kMru},
        PolicyCase{ReplPolicy::kLru, InsertPolicy::kStreaming},
        PolicyCase{ReplPolicy::kTreePlru, InsertPolicy::kMru},
        PolicyCase{ReplPolicy::kRandom, InsertPolicy::kMru},
        PolicyCase{ReplPolicy::kSrrip, InsertPolicy::kMru},
        PolicyCase{ReplPolicy::kSrrip, InsertPolicy::kStreaming},
        PolicyCase{ReplPolicy::kFifo, InsertPolicy::kMru}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      std::string name =
          to_string(info.param.repl) + "_" + to_string(info.param.insert);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(RandomRepl, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    CacheArray a(1, 4, ReplPolicy::kRandom, InsertPolicy::kMru, seed);
    std::vector<Addr> evictions;
    for (std::uint64_t i = 0; i < 32; ++i) {
      if (const auto ev = a.fill(0, line(i), false)) {
        evictions.push_back(ev->line_addr);
      }
    }
    return evictions;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace llamcat
