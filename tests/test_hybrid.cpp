// Hybrid-framework tests (paper §5, Fig 6): the analytical-model -> trace
// -> cycle-level-simulator hand-off must be lossless for every operator
// kind - a replayed trace file drives the machine to the identical cycle
// count as the in-memory generator.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/trace_io.hpp"
#include "trace/tracegen.hpp"

namespace llamcat {
namespace {

SimConfig small_cfg() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 2ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 50'000'000;
  return cfg;
}

ModelShape small_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

Cycle run_from(const SimConfig& cfg, const ITbSource& src) {
  System sys(cfg, src);
  return sys.run().cycles;
}

class RoundTripAllOps
    : public ::testing::TestWithParam<const char*> {
 protected:
  Workload make_workload(const SimConfig& cfg) const {
    const std::string op = GetParam();
    if (op == "logit") return Workload::logit(small_model(), 512, cfg);
    if (op == "attend") return Workload::attend(small_model(), 512, cfg);
    return Workload::gemv(512, 256, cfg);
  }
};

TEST_P(RoundTripAllOps, ReplayedTraceMatchesGeneratorExactly) {
  const SimConfig cfg = small_cfg();
  const Workload wl = make_workload(cfg);
  TraceGen gen(wl.op, wl.mapping);

  std::stringstream file;
  write_trace(file, gen);
  const auto replay = read_trace(file);

  ASSERT_EQ(replay->num_tbs(), gen.num_tbs());
  EXPECT_EQ(run_from(cfg, gen), run_from(cfg, *replay))
      << "trace file round trip must be cycle-exact";
}

TEST_P(RoundTripAllOps, WriteIsIdempotent) {
  const SimConfig cfg = small_cfg();
  const Workload wl = make_workload(cfg);
  TraceGen gen(wl.op, wl.mapping);

  std::stringstream first;
  write_trace(first, gen);
  const std::string once = first.str();

  const auto replay = read_trace(first);
  std::stringstream second;
  write_trace(second, *replay);
  EXPECT_EQ(once, second.str());
}

TEST_P(RoundTripAllOps, InstructionStreamsIdenticalPerTb) {
  const SimConfig cfg = small_cfg();
  const Workload wl = make_workload(cfg);
  TraceGen gen(wl.op, wl.mapping);

  std::stringstream file;
  write_trace(file, gen);
  const auto replay = read_trace(file);

  for (std::uint64_t tb = 0; tb < gen.num_tbs(); ++tb) {
    ASSERT_EQ(replay->instr_count(tb), gen.instr_count(tb)) << "tb " << tb;
    for (std::uint32_t i = 0; i < gen.instr_count(tb); ++i) {
      const Instr a = gen.instr_at(tb, i);
      const Instr b = replay->instr_at(tb, i);
      ASSERT_EQ(a.kind, b.kind) << "tb " << tb << " instr " << i;
      ASSERT_EQ(a.line_addr, b.line_addr) << "tb " << tb << " instr " << i;
      ASSERT_EQ(a.cycles, b.cycles) << "tb " << tb << " instr " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, RoundTripAllOps,
                         ::testing::Values("logit", "attend", "gemv"));

TEST(HybridFlow, TraceOrderChangesDispatchNotTraffic) {
  const SimConfig cfg = small_cfg();
  Workload hlg = Workload::logit(small_model(), 512, cfg);
  hlg.mapping.order = TbOrder::kHLG;
  Workload lhg = hlg;
  lhg.mapping.order = TbOrder::kLHG;

  // Same thread blocks as a set, different sequence.
  const auto a = hlg.mapping.thread_blocks(hlg.op);
  const auto b = lhg.mapping.thread_blocks(lhg.op);
  ASSERT_EQ(a.size(), b.size());
  auto key = [](const TbDesc& t) {
    return std::tuple(t.h, t.g, t.l_begin, t.l_end);
  };
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t,
                      std::uint64_t>>
      sa, sb;
  for (const auto& t : a) sa.insert(key(t));
  for (const auto& t : b) sb.insert(key(t));
  EXPECT_EQ(sa, sb);

  // And identical closed-form traffic.
  const TrafficEstimate ta = estimate_traffic(hlg.op, hlg.mapping);
  const TrafficEstimate tb = estimate_traffic(lhg.op, lhg.mapping);
  EXPECT_EQ(ta.load_line_requests, tb.load_line_requests);
  EXPECT_EQ(ta.unique_load_lines, tb.unique_load_lines);
  EXPECT_EQ(ta.total_instructions, tb.total_instructions);
}

TEST(HybridFlow, HandwrittenMappingAcceptedLikeTimeloop) {
  // The paper's flow accepts handwritten dataflows; Workload::with_mapping
  // is that entry point and must validate the §6.2.2 constraints.
  const OperatorSpec spec = OperatorSpec::logit(small_model(), 512);
  Mapping m;
  m.l_tile = 64;
  m.order = TbOrder::kLHG;
  EXPECT_NO_THROW(Workload::with_mapping(spec, m));

  Mapping bad = m;
  bad.l_tile = 8;  // 16 bytes of L innermost: violates the 64B constraint
  EXPECT_THROW(Workload::with_mapping(spec, bad), std::invalid_argument);
}

TEST(HybridFlow, ReplayRunsUnderEveryDispatchMode) {
  for (const TbDispatch d :
       {TbDispatch::kStaticBlocked, TbDispatch::kPartitionedStealing,
        TbDispatch::kGlobalQueue}) {
    SimConfig cfg = small_cfg();
    cfg.core.tb_dispatch = d;
    const Workload wl = Workload::logit(small_model(), 256, cfg);
    TraceGen gen(wl.op, wl.mapping);
    std::stringstream file;
    write_trace(file, gen);
    const auto replay = read_trace(file);
    EXPECT_EQ(run_from(cfg, gen), run_from(cfg, *replay))
        << "dispatch mode " << static_cast<int>(d);
  }
}

}  // namespace
}  // namespace llamcat
