// Serving-policy layer: KV-pressure-aware admission + stage-boundary
// preemption on top of the continuous engine, the step-aware KV footprint
// accounting it budgets with, and the landmark guards that keep barrier-mode
// rows out of policy-comparison tables.
#include <gtest/gtest.h>

#include <stdexcept>

#include "scenario/scenario.hpp"
#include "scenario/serving.hpp"

namespace llamcat {
namespace {

using scenario::AdmissionPolicy;
using scenario::AdmitPolicy;
using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::RequestBatch;
using scenario::RequestSpec;
using scenario::ServingConfig;

SimConfig small_config() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

ModelShape tiny_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

// tiny_model: H=2, D=128, fp16 -> 512 bytes per resident KV token per layer,
// line granule = 64 / 2 = 32 tokens.
constexpr std::uint64_t kTinyBytesPerToken = 2ull * 128 * 2;

// ---------------------------------------------------------------------------
// Step-aware KV footprint accounting (the total_seq_len bugfix)
// ---------------------------------------------------------------------------

TEST(KvFootprint, SingleStepPeaksAtSeqLen) {
  const RequestBatch b(tiny_model(), {{0, 100, 0, 1}});
  EXPECT_EQ(b.kv_bytes_per_token(), kTinyBytesPerToken);
  EXPECT_EQ(b.peak_kv_tokens(b.requests()[0]), 100u);
  EXPECT_EQ(b.peak_kv_bytes(b.requests()[0], 2),
            100u * kTinyBytesPerToken * 2u);
}

TEST(KvFootprint, MultiStepPeaksAtLastStepGranuleRounded) {
  // A request at step s occupies seq_len + s tokens, rounded up to a whole
  // cache line of elements. seq_len=100, 5 steps: the last step runs
  // against 104 tokens -> 128 after granule rounding. Budgeting with the
  // bare seq_len (the old total_seq_len) would undercount by 28 tokens.
  const RequestBatch b(tiny_model(), {{0, 100, 0, 5}});
  const RequestSpec& r = b.requests()[0];
  EXPECT_EQ(b.kv_tokens_at_step(r, 0), 100u);
  EXPECT_EQ(b.kv_tokens_at_step(r, 4), 128u);
  EXPECT_EQ(b.peak_kv_tokens(r), 128u);
  EXPECT_EQ(b.peak_kv_bytes(r, 1), 128u * kTinyBytesPerToken);
  EXPECT_EQ(b.peak_kv_bytes(r, 3), 128u * kTinyBytesPerToken * 3u);
}

TEST(KvFootprint, TotalsSumPerRequestPeaks) {
  const RequestBatch b(tiny_model(), {{0, 100, 0, 5}, {1, 64, 0, 1}});
  EXPECT_EQ(b.total_peak_kv_tokens(), 128u + 64u);
  EXPECT_EQ(b.total_peak_kv_bytes(2), (128u + 64u) * kTinyBytesPerToken * 2u);
}

// ---------------------------------------------------------------------------
// ServingConfig validation
// ---------------------------------------------------------------------------

TEST(ServingConfigValidate, RejectsBudgetOrPreemptWithoutQueueingPolicy) {
  ServingConfig ok;
  EXPECT_NO_THROW(ok.validate());

  ServingConfig budget;
  budget.kv_budget_bytes = 1 << 20;
  EXPECT_THROW(budget.validate(), std::invalid_argument);

  ServingConfig pre;
  pre.preempt = true;
  EXPECT_THROW(pre.validate(), std::invalid_argument);

  ServingConfig fcfs;
  fcfs.policy = AdmitPolicy::kFcfs;
  fcfs.kv_budget_bytes = 1 << 20;
  fcfs.preempt = true;
  EXPECT_NO_THROW(fcfs.validate());
}

TEST(ServingConfigValidate, BarrierModesRejectServingLayer) {
  const RequestBatch b = RequestBatch::uniform(tiny_model(), 2, 128);
  DecodePassConfig pc;
  pc.num_layers = 1;
  pc.serving.policy = AdmitPolicy::kFcfs;
  pc.mode = scenario::ExecutionMode::kCoScheduled;
  EXPECT_THROW(DecodePass(b, pc, small_config()), std::invalid_argument);
  pc.mode = scenario::ExecutionMode::kIndependent;
  EXPECT_THROW(DecodePass(b, pc, small_config()), std::invalid_argument);
  pc.mode = scenario::ExecutionMode::kContinuous;
  EXPECT_NO_THROW(DecodePass(b, pc, small_config()));
}

TEST(ServingConfigValidate, RejectsRequestLargerThanBudget) {
  // 1024 tokens * 512 B * 1 layer = 512 KiB > a 256 KiB budget: no
  // admission order can ever serve the request, so it fails up front.
  const RequestBatch b(tiny_model(), {{0, 1024, 0, 1}});
  DecodePassConfig pc;
  pc.num_layers = 1;
  pc.include_gemv = false;
  pc.mode = scenario::ExecutionMode::kContinuous;
  pc.serving.policy = AdmitPolicy::kFcfs;
  pc.serving.kv_budget_bytes = 256 * 1024;
  EXPECT_THROW(DecodePass(b, pc, small_config()), std::invalid_argument);
  pc.serving.kv_budget_bytes = 512 * 1024;
  EXPECT_NO_THROW(DecodePass(b, pc, small_config()));
}

// ---------------------------------------------------------------------------
// AdmissionPolicy decision logic (pure unit tests)
// ---------------------------------------------------------------------------

AdmissionPolicy::Candidate cand(std::size_t index, Cycle arrival,
                                std::uint64_t work, std::uint64_t bytes) {
  return AdmissionPolicy::Candidate{index, arrival, work, bytes};
}

TEST(AdmissionPolicySelect, NoneAdmitsEverythingInCallerOrder) {
  const AdmissionPolicy p{ServingConfig{}};
  const auto picks = p.select(
      {cand(0, 50, 10, 100), cand(1, 0, 5, 100), cand(2, 20, 1, 100)}, {}, 0);
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(AdmissionPolicySelect, FcfsOrdersByArrivalAndBlocksHeadOfLine) {
  ServingConfig cfg;
  cfg.policy = AdmitPolicy::kFcfs;
  cfg.kv_budget_bytes = 250;
  const AdmissionPolicy p{cfg};
  // Arrival order: 1 (t=0), 2 (t=20), 0 (t=50). The budget fits 1 and 2;
  // 0 blocks, and nothing behind it may jump the line.
  const auto picks = p.select(
      {cand(0, 50, 10, 100), cand(1, 0, 5, 100), cand(2, 20, 1, 100),
       cand(3, 60, 1, 10)},
      {}, 0);
  EXPECT_EQ(picks, (std::vector<std::size_t>{1, 2}));
}

TEST(AdmissionPolicySelect, ShortestRemainingOrdersByWork) {
  ServingConfig cfg;
  cfg.policy = AdmitPolicy::kShortestRemaining;
  cfg.kv_budget_bytes = 250;
  const AdmissionPolicy p{cfg};
  // Work order: 2 (1), 1 (5), 0 (10): the two shortest fit, the longest
  // blocks even though it arrived before both.
  const auto picks = p.select(
      {cand(0, 0, 10, 100), cand(1, 20, 5, 100), cand(2, 50, 1, 100)}, {}, 0);
  EXPECT_EQ(picks, (std::vector<std::size_t>{2, 1}));
}

TEST(AdmissionPolicySelect, ResidentCandidatePinsNothing) {
  ServingConfig cfg;
  cfg.policy = AdmitPolicy::kFcfs;
  cfg.kv_budget_bytes = 100;
  const AdmissionPolicy p{cfg};
  // 90 of 100 bytes already pinned: a preempted (resident, 0-byte)
  // candidate still fits.
  const auto picks = p.select({cand(0, 0, 10, 0)}, {}, 90);
  EXPECT_EQ(picks, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(p.select({cand(0, 0, 10, 20)}, {5}, 90).empty());
}

TEST(AdmissionPolicySelect, PreemptGateSkipsYieldersButIdleMachineProgresses) {
  ServingConfig cfg;
  cfg.policy = AdmitPolicy::kFcfs;
  cfg.preempt = true;
  cfg.preempt_ratio = 2;
  const AdmissionPolicy p{cfg};
  // A long candidate (work 100) yields to a running short (work 10), so the
  // shorter candidate behind it is admitted instead...
  const auto picks =
      p.select({cand(0, 0, 100, 0), cand(1, 10, 15, 0)}, {10}, 0);
  EXPECT_EQ(picks, (std::vector<std::size_t>{1}));
  // ...but with nothing running, the yield gate is waived: an idle machine
  // with a non-empty queue always makes progress.
  const auto idle = p.select({cand(0, 0, 100, 0), cand(1, 10, 15, 0)}, {}, 0);
  ASSERT_FALSE(idle.empty());
  EXPECT_EQ(idle[0], 0u);
}

TEST(AdmissionPolicyPreempt, TriggersOnRatioOnly) {
  ServingConfig cfg;
  cfg.policy = AdmitPolicy::kFcfs;
  cfg.preempt = true;
  cfg.preempt_ratio = 2;
  const AdmissionPolicy p{cfg};
  EXPECT_TRUE(p.should_preempt(100, {10}));
  EXPECT_FALSE(p.should_preempt(100, {50}));   // within 2x: no preemption
  EXPECT_FALSE(p.should_preempt(100, {100}));  // equals never preempt
  EXPECT_FALSE(p.should_preempt(100, {}));     // nobody to yield to
  ServingConfig off = cfg;
  off.preempt = false;
  EXPECT_FALSE(AdmissionPolicy{off}.should_preempt(100, {1}));
}

// ---------------------------------------------------------------------------
// Landmark guards (the "0-cycle latency in barrier modes" bugfix)
// ---------------------------------------------------------------------------

TEST(LandmarkGuards, BarrierModesReportSentinelNotZeroLatency) {
  const RequestBatch b = RequestBatch::uniform(tiny_model(), 2, 128);
  DecodePassConfig pc;
  pc.num_layers = 1;
  pc.include_gemv = false;
  for (const auto mode : {scenario::ExecutionMode::kIndependent,
                          scenario::ExecutionMode::kCoScheduled}) {
    pc.mode = mode;
    const BatchStats s = DecodePass(b, pc, small_config()).run();
    for (const scenario::RequestStats& r : s.per_request) {
      EXPECT_FALSE(r.streamed);
      EXPECT_EQ(r.latency(), kNeverCycle) << to_string(mode);
      EXPECT_EQ(r.admission_wait(), kNeverCycle) << to_string(mode);
    }
    EXPECT_EQ(s.latency_percentile(99.0), kNeverCycle) << to_string(mode);
  }
  pc.mode = scenario::ExecutionMode::kContinuous;
  const BatchStats ct = DecodePass(b, pc, small_config()).run();
  for (const scenario::RequestStats& r : ct.per_request) {
    EXPECT_TRUE(r.streamed);
    EXPECT_NE(r.latency(), kNeverCycle);
    EXPECT_GT(r.latency(), 0u);
  }
  EXPECT_GE(ct.latency_percentile(99.0), ct.latency_percentile(50.0));
  EXPECT_LE(ct.latency_percentile(99.0), ct.makespan);
}

TEST(LatencyPercentile, NearestRankDefinition) {
  EXPECT_EQ(percentile_nearest_rank({}, 99.0), 0u);
  EXPECT_EQ(percentile_nearest_rank({7}, 50.0), 7u);
  EXPECT_EQ(percentile_nearest_rank({30, 10, 20, 40}, 50.0), 20u);
  EXPECT_EQ(percentile_nearest_rank({30, 10, 20, 40}, 99.0), 40u);
  EXPECT_EQ(percentile_nearest_rank({30, 10, 20, 40}, 0.0), 10u);
  EXPECT_EQ(percentile_nearest_rank({30, 10, 20, 40}, 100.0), 40u);
}

// ---------------------------------------------------------------------------
// Duplicate-id validation (the id->index map corruption bugfix)
// ---------------------------------------------------------------------------

TEST(DuplicateIds, RejectedAtConstructionWithClearMessage) {
  try {
    const RequestBatch b(tiny_model(), {{3, 128, 0, 1}, {3, 256, 0, 1}});
    FAIL() << "duplicate ids must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate request id 3"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Engine behavior under the serving policies
// ---------------------------------------------------------------------------

DecodePassConfig continuous_cfg() {
  DecodePassConfig pc;
  pc.num_layers = 1;
  pc.include_gemv = false;
  pc.mode = scenario::ExecutionMode::kContinuous;
  return pc;
}

void expect_identical(const BatchStats& a, const BatchStats& b) {
  EXPECT_EQ(a.total.cycles, b.total.cycles);
  EXPECT_EQ(a.total.instructions, b.total.instructions);
  EXPECT_EQ(a.total.thread_blocks, b.total.thread_blocks);
  EXPECT_EQ(a.total.dram_reads, b.total.dram_reads);
  EXPECT_EQ(a.total.counters.counters(), b.total.counters.counters());
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.per_request.size(), b.per_request.size());
  for (std::size_t i = 0; i < a.per_request.size(); ++i) {
    EXPECT_EQ(a.per_request[i].admit_cycle, b.per_request[i].admit_cycle);
    EXPECT_EQ(a.per_request[i].finish_cycle, b.per_request[i].finish_cycle);
    EXPECT_EQ(a.per_request[i].slice.dram_reads,
              b.per_request[i].slice.dram_reads);
    EXPECT_EQ(a.per_request[i].slice.llc_hits,
              b.per_request[i].slice.llc_hits);
  }
}

// The acceptance anchor: with an unlimited budget and no preemption, every
// queueing discipline admits each arrival the cycle it lands - exactly the
// unconditional engine. If this drifts, the policy layer is perturbing runs
// it must not touch.
TEST(ServingEngine, UnlimitedBudgetMatchesUnconditionalByteForByte) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(),
                           {{0, 256, 0, 2}, {1, 64, 500, 1}, {2, 128, 0, 1}});
  DecodePassConfig pc = continuous_cfg();
  const BatchStats none = DecodePass(batch, pc, cfg).run();
  for (const AdmitPolicy policy :
       {AdmitPolicy::kFcfs, AdmitPolicy::kShortestRemaining}) {
    pc.serving.policy = policy;
    pc.serving.kv_budget_bytes = 0;
    const BatchStats queued = DecodePass(batch, pc, cfg).run();
    expect_identical(queued, none);
    EXPECT_EQ(queued.total_preemptions(), 0u);
    EXPECT_EQ(queued.total_queue_wait(), 0u);
  }
}

// A finite budget changes the admission schedule: with room for only one
// resident KV at a time, requests serialize - each later request is
// admitted no earlier than its predecessor's finish, and its wait is
// accounted.
TEST(ServingEngine, BudgetSerializesAdmissions) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(),
                           {{0, 256, 0, 1}, {1, 160, 0, 1}, {2, 160, 0, 1}});
  DecodePassConfig pc = continuous_cfg();
  pc.serving.policy = AdmitPolicy::kFcfs;
  // Fits the 256-token request alone, or one 160-token request - never two
  // requests at once (2 x 160 > 256).
  pc.serving.kv_budget_bytes = 256 * kTinyBytesPerToken;
  const BatchStats s = DecodePass(batch, pc, cfg).run();

  EXPECT_EQ(s.per_request[0].admit_cycle, 0u);
  EXPECT_GE(s.per_request[1].admit_cycle, s.per_request[0].finish_cycle);
  EXPECT_GE(s.per_request[2].admit_cycle, s.per_request[1].finish_cycle);
  EXPECT_GT(s.per_request[1].queued_cycles, 0u);
  EXPECT_GT(s.per_request[2].queued_cycles, 0u);
  EXPECT_EQ(s.per_request[0].queued_cycles, 0u);
  // Queue wait is part of true latency: finish - arrival covers it.
  EXPECT_EQ(s.per_request[2].latency(),
            s.per_request[2].finish_cycle - s.per_request[2].arrival_cycle);

  // The unconditional engine admits everyone at cycle 0 instead.
  DecodePassConfig raw = continuous_cfg();
  const BatchStats none = DecodePass(batch, raw, cfg).run();
  EXPECT_EQ(none.per_request[1].admit_cycle, 0u);
  EXPECT_EQ(none.per_request[2].admit_cycle, 0u);
}

// Shortest-remaining-first reorders a queue FCFS would drain in arrival
// order: with the machine saturated by request 0, a later-arriving short
// request jumps an earlier-arriving long one.
TEST(ServingEngine, ShortestRemainingJumpsTheQueue) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(), {{0, 256, 0, 1},
                                          {1, 512, 1000, 1},
                                          {2, 64, 2000, 1}});
  DecodePassConfig pc = continuous_cfg();
  pc.serving.kv_budget_bytes = 512 * kTinyBytesPerToken;

  pc.serving.policy = AdmitPolicy::kFcfs;
  const BatchStats fcfs = DecodePass(batch, pc, cfg).run();
  // FCFS: request 1 (arrived first) is admitted before request 2.
  EXPECT_LE(fcfs.per_request[1].admit_cycle, fcfs.per_request[2].admit_cycle);

  pc.serving.policy = AdmitPolicy::kShortestRemaining;
  const BatchStats srf = DecodePass(batch, pc, cfg).run();
  // SRF: the 64-token request jumps the 512-token one.
  EXPECT_LT(srf.per_request[2].admit_cycle, srf.per_request[1].admit_cycle);
  EXPECT_LT(srf.per_request[2].latency(), fcfs.per_request[2].latency());
}

// Preemption evicts the long request at a stage boundary once a much
// shorter request co-runs: the short one's latency shrinks, the long one
// records the eviction and still finishes (KV resident, no lost work:
// total traffic attribution stays exact).
TEST(ServingEngine, PreemptionBoundsShortRequestLatency) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(), {{0, 1024, 0, 1}, {1, 128, 2000, 1}});
  DecodePassConfig pc = continuous_cfg();
  pc.num_layers = 2;
  pc.serving.policy = AdmitPolicy::kFcfs;

  const BatchStats share = DecodePass(batch, pc, cfg).run();
  EXPECT_EQ(share.total_preemptions(), 0u);

  pc.serving.preempt = true;
  const BatchStats pre = DecodePass(batch, pc, cfg).run();
  EXPECT_GE(pre.per_request[0].preemptions, 1u);
  EXPECT_EQ(pre.per_request[1].preemptions, 0u);
  EXPECT_LT(pre.per_request[1].latency(), share.per_request[1].latency());
  EXPECT_GT(pre.per_request[0].queued_cycles, 0u);

  // No work is lost to an eviction: every thread block and every byte of
  // DRAM traffic still attributes to exactly one request.
  std::uint64_t reads = 0, tbs = 0;
  for (const scenario::RequestStats& r : pre.per_request) {
    reads += r.slice.dram_reads;
    tbs += r.slice.thread_blocks;
  }
  EXPECT_EQ(reads, pre.total.dram_reads);
  EXPECT_EQ(tbs, pre.total.thread_blocks);
}

// Everyone finishes under every policy combination, however tight the
// budget (arrivals queue, they never drop).
TEST(ServingEngine, NoRequestIsEverDropped) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(), {{0, 256, 0, 1},
                                          {1, 128, 100, 1},
                                          {2, 64, 50'000, 2},
                                          {3, 128, 200, 1}});
  for (const AdmitPolicy policy :
       {AdmitPolicy::kFcfs, AdmitPolicy::kShortestRemaining}) {
    for (const bool preempt : {false, true}) {
      DecodePassConfig pc = continuous_cfg();
      pc.serving.policy = policy;
      // Tightest feasible budget: exactly the largest single request.
      pc.serving.kv_budget_bytes = 256 * kTinyBytesPerToken;
      pc.serving.preempt = preempt;
      const BatchStats s = DecodePass(batch, pc, cfg).run();
      for (const scenario::RequestStats& r : s.per_request) {
        EXPECT_GT(r.finish_cycle, 0u) << "policy=" << to_string(policy)
                                      << " preempt=" << preempt;
        EXPECT_GE(r.finish_cycle, r.admit_cycle);
        EXPECT_GE(r.admit_cycle, r.arrival_cycle);
      }
      EXPECT_GE(s.makespan, s.per_request[2].finish_cycle);
    }
  }
}

}  // namespace
}  // namespace llamcat
