// Unit + property tests: DDR5 timing model, address mapping, FR-FCFS
// controller, multi-channel system, clock-domain crossing.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "dram/dram_system.hpp"

namespace llamcat {
namespace {

DramConfig test_cfg() {
  DramConfig cfg;  // defaults = Table 5 derived
  return cfg;
}

TEST(DramTiming, DerivedValues) {
  const DramTiming t(test_cfg());
  EXPECT_EQ(t.tBurst, 4u);  // BL8, DDR
  EXPECT_EQ(t.read_latency(), t.tCL + t.tBurst);
  EXPECT_EQ(t.write_latency(), t.tCWL + t.tBurst);
}

TEST(AddressMap, DecodeEncodeRoundTrip) {
  const AddressMap map(test_cfg());
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    // Addresses within the mapped capacity (2+5+2+1+2+16 = 28 line bits
    // for the Table 5 geometry -> 2^34 bytes).
    const Addr line = line_align(rng.below(1ull << 33));
    const DramCoord c = map.decode(line);
    EXPECT_EQ(map.encode(c), line);
  }
}

TEST(AddressMap, ConsecutiveLinesStripeChannels) {
  const DramConfig cfg = test_cfg();
  const AddressMap map(cfg);
  for (Addr i = 0; i < 64; ++i) {
    EXPECT_EQ(map.decode(i * kLineBytes).channel, i % cfg.num_channels);
  }
}

TEST(AddressMap, StreamHasRowLocality) {
  // A contiguous stream should revisit the same row for many lines within
  // one channel before moving on (col bits above channel bits).
  const DramConfig cfg = test_cfg();
  const AddressMap map(cfg);
  const std::uint32_t lines_per_row = cfg.row_bytes / kLineBytes;
  std::map<std::uint32_t, std::set<std::uint32_t>> rows_touched;
  for (Addr i = 0; i < static_cast<Addr>(lines_per_row) * cfg.num_channels;
       ++i) {
    const DramCoord c = map.decode(i * kLineBytes);
    rows_touched[c.channel].insert(c.row);
  }
  for (const auto& [ch, rows] : rows_touched) {
    EXPECT_EQ(rows.size(), 1u) << "channel " << ch;
  }
}

TEST(Bank, ActivateReadPrechargeLegality) {
  const DramTiming t(test_cfg());
  Bank bank;
  EXPECT_TRUE(bank.can_activate(0));
  bank.do_activate(0, 7, t);
  EXPECT_TRUE(bank.row_open());
  EXPECT_FALSE(bank.can_read(0, 7));          // before tRCD
  EXPECT_TRUE(bank.can_read(t.tRCD, 7));      // at tRCD
  EXPECT_FALSE(bank.can_read(t.tRCD, 8));     // wrong row
  EXPECT_FALSE(bank.can_precharge(0));        // before tRAS
  EXPECT_TRUE(bank.can_precharge(t.tRAS));
  bank.do_precharge(t.tRAS, t);
  EXPECT_FALSE(bank.row_open());
  EXPECT_FALSE(bank.can_activate(t.tRAS));            // before tRP
  EXPECT_TRUE(bank.can_activate(t.tRAS + t.tRP));
}

TEST(Bank, WriteRecoveryBlocksPrecharge) {
  const DramTiming t(test_cfg());
  Bank bank;
  bank.do_activate(0, 1, t);
  bank.do_write(t.tRCD, t);
  const DramTick wr_done = t.tRCD + t.tCWL + t.tBurst + t.tWR;
  EXPECT_FALSE(bank.can_precharge(wr_done - 1));
  EXPECT_TRUE(bank.can_precharge(wr_done));
}

TEST(Rank, FawLimitsActivates) {
  // Use a timing where tFAW binds beyond 4 x tRRD_S.
  DramConfig cfg = test_cfg();
  cfg.tRRD_S = 4;
  cfg.tFAW = 32;
  const DramTiming t(cfg);
  RankState rank;
  DramTick now = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rank.can_activate(now, t)) << i;
    rank.on_activate(now, t);
    now += t.tRRD_S;
  }
  // now = 16: tRRD is satisfied but only 4 ACTs fit in any tFAW window.
  EXPECT_FALSE(rank.can_activate(now, t));
  EXPECT_FALSE(rank.can_activate(31, t));
  EXPECT_TRUE(rank.can_activate(t.tFAW, t));  // first ACT rolls out
}

TEST(DramController, SingleReadCompletes) {
  const DramConfig cfg = test_cfg();
  const DramTiming t(cfg);
  const AddressMap map(cfg);
  DramController ctrl(cfg, t, map, 0);
  ctrl.enqueue(DramRequest{0, false, 99}, 0);
  std::vector<DramCompletion> done;
  DramTick now = 0;
  while (done.empty() && now < 10000) {
    ctrl.tick(now, done);
    ++now;
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].payload, 99u);
  // Unloaded latency: ACT + tRCD + CL + burst + ctrl_latency (+1 tick).
  const DramTick expect =
      1 + t.tRCD + t.read_latency() + cfg.ctrl_latency;
  EXPECT_NEAR(static_cast<double>(done[0].finish_tick),
              static_cast<double>(expect), 3.0);
  EXPECT_TRUE(ctrl.idle());
}

TEST(DramController, RowHitStreamIsEfficient) {
  DramConfig cfg = test_cfg();
  cfg.enable_refresh = false;
  const DramTiming t(cfg);
  const AddressMap map(cfg);
  DramController ctrl(cfg, t, map, 0);
  // Feed a contiguous stream on channel 0 (stride = channels * line).
  std::vector<DramCompletion> done;
  DramTick now = 0;
  Addr next = 0;
  std::uint64_t issued = 0;
  while (done.size() < 256 && now < 100000) {
    if (issued < 256 && ctrl.can_accept_read()) {
      ctrl.enqueue(DramRequest{next, false, 0}, now);
      next += static_cast<Addr>(kLineBytes) * cfg.num_channels;
      ++issued;
    }
    ctrl.tick(now, done);
    ++now;
  }
  ASSERT_EQ(done.size(), 256u);
  const auto& c = ctrl.counters();
  EXPECT_GT(c.row_hits, c.row_misses * 4) << "stream should be row-hit bound";
}

TEST(DramController, WriteDrainHysteresis) {
  DramConfig cfg = test_cfg();
  cfg.enable_refresh = false;
  const DramTiming t(cfg);
  const AddressMap map(cfg);
  DramController ctrl(cfg, t, map, 0);
  // Fill the write queue to the high-water mark; writes must eventually
  // drain even with no reads.
  DramTick now = 0;
  std::vector<DramCompletion> done;
  std::uint32_t enqueued = 0;
  while (enqueued < cfg.write_q_size) {
    if (ctrl.can_accept_write()) {
      ctrl.enqueue(
          DramRequest{static_cast<Addr>(enqueued) * kLineBytes *
                          cfg.num_channels,
                      true, 0},
          now);
      ++enqueued;
    }
    ctrl.tick(now, done);
    ++now;
  }
  while (!ctrl.idle() && now < 200000) {
    ctrl.tick(now, done);
    ++now;
  }
  EXPECT_TRUE(ctrl.idle());
  EXPECT_EQ(ctrl.counters().writes, cfg.write_q_size);
}

TEST(DramSystem, CompletesAllReadsAcrossChannels) {
  const SimConfig sim = SimConfig::table5();
  DramSystem dram(sim.dram, sim.core_hz);
  std::uint64_t completed = 0;
  dram.on_read_complete = [&](const DramCompletion&) { ++completed; };
  std::uint64_t issued = 0;
  Addr next = 0;
  std::uint64_t guard = 0;
  while (completed < 1000 && ++guard < 2'000'000) {
    if (issued < 1000) {
      const DramRequest r{next, false, 0};
      if (dram.can_accept(r)) {
        dram.enqueue(r);
        next += kLineBytes;
        ++issued;
      }
    }
    dram.tick_core_cycle();
  }
  EXPECT_EQ(completed, 1000u);
  EXPECT_TRUE(dram.idle());
  EXPECT_EQ(dram.bytes_transferred(), 1000u * kLineBytes);
}

TEST(DramSystem, ClockDomainRatio) {
  const SimConfig sim = SimConfig::table5();
  DramSystem dram(sim.dram, sim.core_hz);
  for (int i = 0; i < 49'000; ++i) dram.tick_core_cycle();
  EXPECT_EQ(dram.now(), 40'000u);  // 40:49 exactly
}

TEST(DramSystem, PeakBandwidthMatchesConfig) {
  const SimConfig sim = SimConfig::table5();
  DramSystem dram(sim.dram, sim.core_hz);
  EXPECT_NEAR(dram.peak_gbps(), 102.4, 0.1);
}

TEST(DramSystem, RefreshHappens) {
  const SimConfig sim = SimConfig::table5();
  DramSystem dram(sim.dram, sim.core_hz);
  // Enough core cycles for several tREFI periods.
  for (int i = 0; i < 20'000; ++i) dram.tick_core_cycle();
  EXPECT_GT(dram.stats().get("dram.refreshes"), 0u);
}

// Property sweep: latency monotonicity wrt controller latency.
class DramCtrlLatency : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DramCtrlLatency, UnloadedLatencyScales) {
  DramConfig cfg = test_cfg();
  cfg.ctrl_latency = GetParam();
  const DramTiming t(cfg);
  const AddressMap map(cfg);
  DramController ctrl(cfg, t, map, 0);
  ctrl.enqueue(DramRequest{0, false, 0}, 0);
  std::vector<DramCompletion> done;
  DramTick now = 0;
  while (done.empty() && now < 10000) ctrl.tick(now++, done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_GE(done[0].finish_tick, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, DramCtrlLatency,
                         ::testing::Values(0u, 20u, 80u, 200u));

}  // namespace
}  // namespace llamcat
