// Seeded-corpus regression suite over the serving-layer fuzzer: each pinned
// seed deterministically replays one full fuzz scenario (machine x batch x
// policy draw - scenario/fuzz.hpp) through the entire invariant contract
// (scenario/invariants.hpp) on every CI run, so the coverage of a long
// `llamcat_stress` sweep survives as a fast regression net.
//
// Pinning workflow (docs/testing.md): when `llamcat_stress` reports
// `FAIL seed S`, reproduce with `llamcat_stress --replay=S`, fix the engine,
// then add S to kPinnedSeeds below so the scenario that found the bug is
// re-checked forever.
#include <gtest/gtest.h>

#include "scenario/fuzz.hpp"

namespace llamcat {
namespace {

using scenario::draw_scenario;
using scenario::FuzzResult;
using scenario::FuzzScenario;
using scenario::run_fuzz_seed;

// The corpus: a contiguous block of sweep seeds (cheap, diverse draws) plus
// hand-picked seeds whose draws exercise the rare corners - paged eviction
// with odd block sizes, starved machines under preemption, bursty arrivals
// with tight budgets. No seed here has ever failed; bug-reproducing seeds
// get appended with a comment naming the fix.
constexpr std::uint64_t kPinnedSeeds[] = {
    1,  2,  3,  4,  5,  6,  7,  8,  9,  10,
    11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
    // sweep seeds with notable draws: 57 pages with a block larger than any
    // footprint (nothing is ever swappable), 93 pages at an odd 192-byte
    // block (partial tails everywhere), 148 is a 5-request bursty SRF sweep
    // with 64-byte blocks, 171 pages a 4-request burst at 4 KiB blocks.
    57, 93, 148, 171,
    // prefix-sharing draws through the shared-byte conservation contract:
    // 41 shares a 5-request FCFS burst across TWO prefix groups over paged
    // 128-byte blocks (peer refetch closes only batch-wide), 185 shares one
    // group across three simultaneous arrivals under a tight paged budget
    // (co-resident pins refuse swaps at eviction time).
    41, 185,
};

class PinnedSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PinnedSeed, FullContractHoldsAndReplayIsStable) {
  const std::uint64_t seed = GetParam();
  const FuzzResult r = run_fuzz_seed(seed);
  EXPECT_TRUE(r.ok()) << "seed " << seed << " ("
                      << draw_scenario(seed).summary() << "):\n  "
                      << ::testing::PrintToString(r.violations);
}

// draw_scenario must be a pure function of the seed - otherwise a pinned
// seed no longer replays the scenario that failed.
TEST_P(PinnedSeed, DrawIsAPureFunctionOfTheSeed) {
  const std::uint64_t seed = GetParam();
  const FuzzScenario a = draw_scenario(seed);
  const FuzzScenario b = draw_scenario(seed);
  EXPECT_EQ(a.summary(), b.summary());
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].seq_len, b.requests[i].seq_len);
    EXPECT_EQ(a.requests[i].arrival_cycle, b.requests[i].arrival_cycle);
    EXPECT_EQ(a.requests[i].decode_steps, b.requests[i].decode_steps);
  }
  EXPECT_EQ(a.cfg.seed, b.cfg.seed);
  EXPECT_EQ(a.cfg.core.num_cores, b.cfg.core.num_cores);
}

INSTANTIATE_TEST_SUITE_P(Corpus, PinnedSeed,
                         ::testing::ValuesIn(kPinnedSeeds));

// Seeds 4, 8 and 12 of the corpus draw the open-loop branch (generated
// traffic replaces the hand-rolled batch), so the pinned sweep above
// already replays the generator -> engine -> open-loop audit -> trace
// replay equivalence path on every CI run. Pin the fact itself: if the
// draw procedure ever shifts these seeds back to closed-loop, the corpus
// silently loses that coverage - fail loudly instead.
TEST(FuzzDraw, PinnedCorpusKeepsOpenLoopDraws) {
  for (const std::uint64_t seed : {4u, 8u, 12u}) {
    const FuzzScenario sc = draw_scenario(seed);
    EXPECT_TRUE(sc.open_loop) << "seed " << seed << " (" << sc.summary()
                              << ") no longer draws open-loop";
  }
}

// Distinct seeds must draw distinct scenarios (the sweep is not fuzzing one
// scenario 200 times). Spot-check a window.
TEST(FuzzDraw, NeighboringSeedsDiffer) {
  int distinct = 0;
  const std::string base = draw_scenario(1).summary();
  for (std::uint64_t s = 2; s <= 10; ++s) {
    if (draw_scenario(s).summary() != base) ++distinct;
  }
  EXPECT_GE(distinct, 8);
}

}  // namespace
}  // namespace llamcat
