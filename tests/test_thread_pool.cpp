// Direct unit tests for ThreadPool and TaskGroup (common/thread_pool.hpp):
// completion, exception propagation order, pool reuse across sweeps, and
// the jobs=1 vs jobs=N bit-identity contract of run_fuzz_sweep.
//
// Everything here also runs under the TSan CI job, so these tests double
// as the race harness for the pool's queue and the TaskGroup latch.
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "scenario/fuzz.hpp"

namespace llamcat {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, SubmitReturnsValues) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 41 + 1; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.post([&count] { ++count; });
    }
    // Destructor joins after the queue drains: no submitted job is lost.
  }
  EXPECT_EQ(count.load(), 16);
}

TEST(TaskGroup, WaitsForAllSlots) {
  ThreadPool pool(4);
  TaskGroup group(32);
  std::vector<int> out(32, 0);
  for (std::size_t i = 0; i < 32; ++i) {
    group.run(pool, i, [&out, i] { out[i] = static_cast<int>(i) + 1; });
  }
  group.wait();
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 32 * 33 / 2);
}

// wait() rethrows the LOWEST-slot failure regardless of completion order -
// the same exception the sequential loop would have thrown first, so error
// behavior stays independent of thread scheduling.
TEST(TaskGroup, RethrowsLowestSlotException) {
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(4);
    TaskGroup group(8);
    for (std::size_t i = 0; i < 8; ++i) {
      group.run(pool, i, [i] {
        if (i == 2 || i == 6) {
          throw std::runtime_error("slot " + std::to_string(i));
        }
      });
    }
    try {
      group.wait();
      FAIL() << "wait() swallowed the failures";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "slot 2");
    }
  }
}

// Destroying a group the instant wait() returns must be safe: finish()
// notifies while still holding the latch mutex, so the last worker never
// touches the condition variable after wait() can observe pending_ == 0.
// TSan caught the notify-after-unlock version of finish() through exactly
// this create/wait/destroy cycle; the tight loop keeps the window hot.
TEST(TaskGroup, SafeToDestroyImmediatelyAfterWait) {
  ThreadPool pool(4);
  for (int round = 0; round < 256; ++round) {
    TaskGroup group(4);
    for (std::size_t i = 0; i < 4; ++i) {
      group.run(pool, i, [] {});
    }
    group.wait();
  }
}

TEST(TaskGroup, PoolIsReusableAcrossGroups) {
  ThreadPool pool(3);
  for (int sweep = 0; sweep < 4; ++sweep) {
    TaskGroup group(16);
    std::atomic<int> count{0};
    for (std::size_t i = 0; i < 16; ++i) {
      group.run(pool, i, [&count] { ++count; });
    }
    group.wait();
    EXPECT_EQ(count.load(), 16);
  }
}

// The parallel-sweep determinism contract: run_fuzz_sweep fills the same
// slots with the same results no matter how many workers execute it.
TEST(FuzzSweep, ParallelMatchesSerial) {
  const std::uint64_t kSeed = 20250808;
  const std::uint64_t kN = 6;
  const auto serial = scenario::run_fuzz_sweep(kSeed, kN, /*jobs=*/1);
  const auto parallel = scenario::run_fuzz_sweep(kSeed, kN, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].digest, parallel[i].digest) << "seed slot " << i;
    EXPECT_EQ(serial[i].violations, parallel[i].violations);
  }
}

}  // namespace
}  // namespace llamcat
