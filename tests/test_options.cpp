// CLI option-parsing tests: the string->enum vocabulary, policy combos,
// full command lines, override plumbing into SimConfig, and diagnostics.
#include <gtest/gtest.h>

#include "sim/options.hpp"

namespace llamcat {
namespace {

ParseResult parse(std::initializer_list<std::string_view> args) {
  return parse_cli_options(std::vector<std::string_view>(args));
}

// ------------------------------------------------------------ vocabulary --

TEST(OptionVocabulary, ArbPolicies) {
  EXPECT_EQ(arb_policy_from_string("fcfs"), ArbPolicy::kFcfs);
  EXPECT_EQ(arb_policy_from_string("B"), ArbPolicy::kBalanced);
  EXPECT_EQ(arb_policy_from_string("balanced"), ArbPolicy::kBalanced);
  EXPECT_EQ(arb_policy_from_string("MA"), ArbPolicy::kMa);
  EXPECT_EQ(arb_policy_from_string("BMA"), ArbPolicy::kBma);
  EXPECT_EQ(arb_policy_from_string("bma"), ArbPolicy::kBma);
  EXPECT_EQ(arb_policy_from_string("cobrra"), ArbPolicy::kCobrra);
  EXPECT_EQ(arb_policy_from_string("mrpb"), ArbPolicy::kMrpb);
  EXPECT_EQ(arb_policy_from_string("oracle"), ArbPolicy::kOracle);
  EXPECT_EQ(arb_policy_from_string("random"), ArbPolicy::kRandom);
  EXPECT_FALSE(arb_policy_from_string("nope").has_value());
}

TEST(OptionVocabulary, ThrottlePolicies) {
  EXPECT_EQ(throttle_policy_from_string("unopt"), ThrottlePolicy::kNone);
  EXPECT_EQ(throttle_policy_from_string("none"), ThrottlePolicy::kNone);
  EXPECT_EQ(throttle_policy_from_string("dyncta"), ThrottlePolicy::kDyncta);
  EXPECT_EQ(throttle_policy_from_string("lcs"), ThrottlePolicy::kLcs);
  EXPECT_EQ(throttle_policy_from_string("dynmg"), ThrottlePolicy::kDynMg);
  EXPECT_FALSE(throttle_policy_from_string("DYNMG").has_value());
}

TEST(OptionVocabulary, EnumsRoundTripWithToString) {
  for (ArbPolicy p : {ArbPolicy::kFcfs, ArbPolicy::kCobrra, ArbPolicy::kMrpb,
                      ArbPolicy::kOracle, ArbPolicy::kRandom}) {
    EXPECT_EQ(arb_policy_from_string(to_string(p)), p) << to_string(p);
  }
  for (ReplPolicy p : {ReplPolicy::kLru, ReplPolicy::kRandom,
                       ReplPolicy::kSrrip, ReplPolicy::kFifo}) {
    EXPECT_EQ(repl_policy_from_string(to_string(p)), p) << to_string(p);
  }
  for (RespArbPolicy p :
       {RespArbPolicy::kResponseFirst, RespArbPolicy::kRequestFirst}) {
    EXPECT_EQ(resp_arb_from_string(to_string(p)), p);
  }
}

TEST(OptionVocabulary, Models) {
  EXPECT_EQ(model_from_string("llama3-70b")->group_size, 8u);
  EXPECT_EQ(model_from_string("405b")->group_size, 16u);
  EXPECT_EQ(model_from_string("llama3-8b")->group_size, 4u);
  EXPECT_EQ(model_from_string("gemma2-27b")->num_kv_heads, 16u);
  EXPECT_FALSE(model_from_string("gpt-7").has_value());
}

TEST(OptionVocabulary, PolicyCombos) {
  auto c = policy_combo_from_string("dynmg+BMA");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->throttle, ThrottlePolicy::kDynMg);
  EXPECT_EQ(c->arb, ArbPolicy::kBma);

  c = policy_combo_from_string("dyncta");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->throttle, ThrottlePolicy::kDyncta);
  EXPECT_EQ(c->arb, ArbPolicy::kFcfs);

  c = policy_combo_from_string("BMA");  // bare arbitration
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->throttle, ThrottlePolicy::kNone);
  EXPECT_EQ(c->arb, ArbPolicy::kBma);

  c = policy_combo_from_string("unopt+MA");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->arb, ArbPolicy::kMa);

  EXPECT_FALSE(policy_combo_from_string("dynmg+xyz").has_value());
  EXPECT_FALSE(policy_combo_from_string("foo+BMA").has_value());
  EXPECT_FALSE(policy_combo_from_string("").has_value());
}

// ---------------------------------------------------------- full parsing --

TEST(ParseCli, DefaultsAreTable5) {
  const ParseResult r = parse({});
  ASSERT_TRUE(r.ok());
  const SimConfig t5 = SimConfig::table5();
  EXPECT_EQ(r.options->cfg.core.num_cores, t5.core.num_cores);
  EXPECT_EQ(r.options->cfg.llc.size_bytes, t5.llc.size_bytes);
  EXPECT_EQ(r.options->op, "logit");
  EXPECT_EQ(r.options->seq_len, 4096u);
}

TEST(ParseCli, WorkloadFlags) {
  const ParseResult r = parse({"--model=llama3-405b", "--op=attend",
                               "--seq=16384"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.options->model.name, "llama3-405b");
  EXPECT_EQ(r.options->op, "attend");
  EXPECT_EQ(r.options->seq_len, 16384u);
}

TEST(ParseCli, PolicyComboSetsBothKnobs) {
  const ParseResult r = parse({"--policy=dynmg+BMA"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.options->cfg.throttle.policy, ThrottlePolicy::kDynMg);
  EXPECT_EQ(r.options->cfg.arb.policy, ArbPolicy::kBma);
}

TEST(ParseCli, CobrraImpliesRequestFirstArbitration) {
  const ParseResult r = parse({"--policy=unopt+cobrra"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.options->cfg.llc.resp_arb, RespArbPolicy::kRequestFirst);
}

TEST(ParseCli, MachineOverrides) {
  const ParseResult r =
      parse({"--cores=8", "--llc-mb=32", "--slices=4", "--mshr-entries=12",
             "--mshr-targets=4", "--repl=srrip", "--dispatch=wave",
             "--seed=99"});
  ASSERT_TRUE(r.ok());
  const SimConfig& cfg = r.options->cfg;
  EXPECT_EQ(cfg.core.num_cores, 8u);
  EXPECT_EQ(cfg.llc.size_bytes, 32ull << 20);
  EXPECT_EQ(cfg.llc.num_slices, 4u);
  EXPECT_EQ(cfg.llc.mshr_entries, 12u);
  EXPECT_EQ(cfg.llc.mshr_targets, 4u);
  EXPECT_EQ(cfg.llc.repl, ReplPolicy::kSrrip);
  EXPECT_EQ(cfg.core.tb_dispatch, TbDispatch::kPartitionedStealing);
  EXPECT_EQ(cfg.seed, 99u);
}

TEST(ParseCli, BypassFlags) {
  const ParseResult r = parse({"--bypass=prob", "--bypass-keep-p=0.75"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.options->cfg.llc.bypass.policy, BypassPolicy::kProbabilistic);
  EXPECT_DOUBLE_EQ(r.options->cfg.llc.bypass.keep_probability, 0.75);
}

TEST(ParseCli, OutputFlags) {
  const ParseResult r = parse({"--csv=out.csv", "--json=out.json",
                               "--counters", "--energy", "--verbose"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.options->csv_path, "out.csv");
  EXPECT_EQ(r.options->json_path, "out.json");
  EXPECT_TRUE(r.options->print_counters);
  EXPECT_TRUE(r.options->print_energy);
  EXPECT_TRUE(r.options->verbose);
}

TEST(ParseCli, HelpShortCircuits) {
  EXPECT_TRUE(parse({"--help"}).help_requested);
  EXPECT_TRUE(parse({"-h"}).help_requested);
  EXPECT_FALSE(parse({"--help"}).ok());
}

// ----------------------------------------------------------- batch flags --

TEST(ParseCli, BatchFlagsParse) {
  const ParseResult r = parse({"--op=batch", "--requests=4", "--layers=3",
                               "--seqs=256,512,1024", "--no-gemv"});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.options->op, "batch");
  EXPECT_EQ(r.options->batch_requests, 4u);
  EXPECT_EQ(r.options->batch_layers, 3u);
  EXPECT_EQ(r.options->batch_seq_lens,
            (std::vector<std::uint64_t>{256, 512, 1024}));
  EXPECT_FALSE(r.options->batch_gemv);
}

TEST(ParseCli, BatchDefaults) {
  const ParseResult r = parse({"--op=batch"});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.options->batch_requests, 2u);
  EXPECT_EQ(r.options->batch_layers, 2u);
  EXPECT_TRUE(r.options->batch_seq_lens.empty());
  EXPECT_TRUE(r.options->batch_gemv);
  EXPECT_EQ(r.options->batch_mode, ExecutionMode::kIndependent);
  EXPECT_EQ(r.options->batch_interleave, FuseOrder::kRoundRobin);
  EXPECT_EQ(r.options->cfg.core.request_dispatch, RequestDispatch::kShared);
}

TEST(ParseCli, ExecutionModeFlagsParse) {
  const ParseResult r =
      parse({"--op=batch", "--mode=coscheduled", "--interleave=concat",
             "--req-dispatch=partitioned"});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.options->batch_mode, ExecutionMode::kCoScheduled);
  EXPECT_EQ(r.options->batch_interleave, FuseOrder::kConcat);
  EXPECT_EQ(r.options->cfg.core.request_dispatch,
            RequestDispatch::kPartitioned);

  EXPECT_FALSE(parse({"--mode=fused"}).ok());
  EXPECT_FALSE(parse({"--interleave=zipper"}).ok());
  EXPECT_FALSE(parse({"--req-dispatch=pinned"}).ok());
}

TEST(ParseCli, MalformedBatchFlagsAreErrors) {
  EXPECT_FALSE(parse({"--requests=0"}).ok());
  EXPECT_FALSE(parse({"--layers=x"}).ok());
  EXPECT_FALSE(parse({"--seqs="}).ok());
  EXPECT_FALSE(parse({"--seqs=256,,512"}).ok());
  EXPECT_FALSE(parse({"--seqs=256,"}).ok());
  EXPECT_FALSE(parse({"--seqs=256,0"}).ok());
  EXPECT_FALSE(parse({"--seqs=256,abc"}).ok());
  // Diagnostics name the flag and echo the offending value.
  const ParseResult r = parse({"--requests=99999999999999999999"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("--requests"), std::string::npos);
  EXPECT_NE(r.error.find("99999999999999999999"), std::string::npos);
}

TEST(ParseCli, ContinuousModeFlagsParse) {
  const ParseResult r =
      parse({"--op=batch", "--mode=continuous", "--seqs=4096,512,512",
             "--arrivals=0,0,200000", "--steps=2"});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.options->batch_mode, ExecutionMode::kContinuous);
  EXPECT_EQ(r.options->batch_arrivals,
            (std::vector<std::uint64_t>{0, 0, 200000}));
  EXPECT_EQ(r.options->batch_steps, (std::vector<std::uint64_t>{2}));
}

TEST(ParseCli, ArrivalsRequireContinuousMode) {
  const ParseResult r =
      parse({"--op=batch", "--mode=coscheduled", "--arrivals=0,100"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("--arrivals"), std::string::npos);
  EXPECT_NE(r.error.find("continuous"), std::string::npos);
  // Zero-arrival entries are fine (unlike --seqs / --steps).
  EXPECT_TRUE(
      parse({"--op=batch", "--mode=continuous", "--arrivals=0,0"}).ok());
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--steps=0"}).ok());
  // Step counts are stored as uint32 downstream: out-of-range values are
  // rejected here, not silently truncated.
  const ParseResult big =
      parse({"--op=batch", "--mode=continuous", "--steps=4294967297"});
  ASSERT_FALSE(big.ok());
  EXPECT_NE(big.error.find("32-bit"), std::string::npos);
}

TEST(ParseCli, ServingPolicyFlagsParse) {
  EXPECT_EQ(admit_policy_from_string("none"), AdmitPolicy::kNone);
  EXPECT_EQ(admit_policy_from_string("fcfs"), AdmitPolicy::kFcfs);
  EXPECT_EQ(admit_policy_from_string("srf"), AdmitPolicy::kShortestRemaining);
  EXPECT_EQ(admit_policy_from_string("shortest-remaining"),
            AdmitPolicy::kShortestRemaining);
  EXPECT_FALSE(admit_policy_from_string("lifo").has_value());

  const ParseResult r =
      parse({"--op=batch", "--mode=continuous", "--seqs=4096,512",
             "--admit-policy=srf", "--kv-budget=37748736", "--preempt"});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.options->batch_admit, AdmitPolicy::kShortestRemaining);
  EXPECT_EQ(r.options->batch_kv_budget, 37748736u);
  EXPECT_TRUE(r.options->batch_preempt);
  // Defaults: unconditional admission, unlimited budget, no preemption.
  const ParseResult d = parse({"--op=batch", "--mode=continuous"});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.options->batch_admit, AdmitPolicy::kNone);
  EXPECT_EQ(d.options->batch_kv_budget, 0u);
  EXPECT_FALSE(d.options->batch_preempt);
}

TEST(ParseCli, ServingPolicyFlagsCrossChecked) {
  // The serving layer only exists in continuous mode.
  const ParseResult barrier =
      parse({"--op=batch", "--mode=coscheduled", "--admit-policy=fcfs"});
  ASSERT_FALSE(barrier.ok());
  EXPECT_NE(barrier.error.find("--admit-policy"), std::string::npos);
  EXPECT_NE(barrier.error.find("continuous"), std::string::npos);
  // A budget or preemption without a queueing discipline is contradictory.
  const ParseResult budget =
      parse({"--op=batch", "--mode=continuous", "--kv-budget=1048576"});
  ASSERT_FALSE(budget.ok());
  EXPECT_NE(budget.error.find("--kv-budget"), std::string::npos);
  EXPECT_NE(budget.error.find("--admit-policy"), std::string::npos);
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--preempt"}).ok());
  EXPECT_FALSE(parse({"--admit-policy=fifo"}).ok());
  EXPECT_FALSE(parse({"--kv-budget=abc"}).ok());
  // Unlimited budget with a discipline is fine (pure queue-order study).
  EXPECT_TRUE(parse({"--op=batch", "--mode=continuous",
                     "--admit-policy=fcfs"})
                  .ok());
}

TEST(ParseCli, PagedEvictionFlagsParse) {
  EXPECT_EQ(kv_evict_policy_from_string("none"), KvEvictPolicy::kNone);
  EXPECT_EQ(kv_evict_policy_from_string("cold-blocks"),
            KvEvictPolicy::kColdBlocks);
  EXPECT_EQ(kv_evict_policy_from_string("cold"), KvEvictPolicy::kColdBlocks);
  EXPECT_FALSE(kv_evict_policy_from_string("hot-blocks").has_value());

  const ParseResult r = parse(
      {"--op=batch", "--mode=continuous", "--seqs=4096,512",
       "--admit-policy=srf", "--kv-budget=37748736", "--preempt",
       "--kv-evict=cold-blocks", "--kv-block-bytes=4096", "--refetch-cost=4"});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.options->batch_kv_evict, KvEvictPolicy::kColdBlocks);
  EXPECT_EQ(r.options->batch_kv_block_bytes, 4096u);
  EXPECT_EQ(r.options->batch_refetch_cost, 4u);
  // Defaults: resident preemption, line-granule blocks, modeled host link.
  const ParseResult d = parse({"--op=batch", "--mode=continuous",
                               "--admit-policy=fcfs", "--kv-budget=1048576",
                               "--preempt"});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.options->batch_kv_evict, KvEvictPolicy::kNone);
  EXPECT_EQ(d.options->batch_kv_block_bytes, 0u);
  EXPECT_EQ(d.options->batch_refetch_cost, 0u);
}

TEST(ParseCli, PagedEvictionFlagsCrossChecked) {
  // Eviction without preemption: nothing would ever be swapped out.
  const ParseResult no_pre =
      parse({"--op=batch", "--mode=continuous", "--admit-policy=fcfs",
             "--kv-budget=1048576", "--kv-evict=cold-blocks"});
  ASSERT_FALSE(no_pre.ok());
  EXPECT_NE(no_pre.error.find("--kv-evict"), std::string::npos);
  EXPECT_NE(no_pre.error.find("--preempt"), std::string::npos);
  // Eviction without a finite budget: no pressure to relieve.
  const ParseResult no_budget =
      parse({"--op=batch", "--mode=continuous", "--admit-policy=fcfs",
             "--preempt", "--kv-evict=cold-blocks"});
  ASSERT_FALSE(no_budget.ok());
  EXPECT_NE(no_budget.error.find("--kv-budget"), std::string::npos);
  // The pager knobs only exist under cold-blocks.
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous",
                      "--admit-policy=fcfs", "--kv-budget=1048576",
                      "--preempt", "--kv-block-bytes=4096"})
                   .ok());
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous",
                      "--admit-policy=fcfs", "--kv-budget=1048576",
                      "--preempt", "--refetch-cost=4"})
                   .ok());
  // Malformed values: non-line-multiple blocks, zero/garbage costs.
  EXPECT_FALSE(parse({"--kv-evict=lru"}).ok());
  EXPECT_FALSE(parse({"--kv-block-bytes=100"}).ok());
  EXPECT_FALSE(parse({"--kv-block-bytes=0"}).ok());
  EXPECT_FALSE(parse({"--refetch-cost=0"}).ok());
  EXPECT_FALSE(parse({"--refetch-cost=abc"}).ok());
}

TEST(ParseCli, KvShareFlagsParse) {
  const ParseResult r = parse(
      {"--op=batch", "--mode=continuous", "--seqs=512,512,256",
       "--kv-share=on", "--prefix-groups=0,0,1", "--prefix-tokens=128,128,64"});
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.options->batch_kv_share);
  EXPECT_EQ(r.options->batch_prefix_groups,
            (std::vector<std::uint64_t>{0, 0, 1}));
  EXPECT_EQ(r.options->batch_prefix_tokens,
            (std::vector<std::uint64_t>{128, 128, 64}));
  // Broadcast + a 0-token private member.
  EXPECT_TRUE(parse({"--op=batch", "--mode=continuous", "--seqs=512,512,256",
                     "--kv-share=on", "--prefix-groups=0",
                     "--prefix-tokens=128,128,0"})
                  .ok());
  // Sharing without groups is valid (everything private, counters zero).
  const ParseResult plain =
      parse({"--op=batch", "--mode=continuous", "--kv-share=on"});
  ASSERT_TRUE(plain.ok()) << plain.error;
  EXPECT_TRUE(plain.options->batch_kv_share);
  // --kv-block-bytes gains a second consumer: the share granule.
  EXPECT_TRUE(parse({"--op=batch", "--mode=continuous", "--kv-share=on",
                     "--kv-block-bytes=4096"})
                  .ok());
  // Default is off.
  const ParseResult off = parse({"--op=batch", "--mode=continuous"});
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.options->batch_kv_share);
}

TEST(ParseCli, KvShareFlagsCrossChecked) {
  // Sharing is a serving-time construct: continuous only.
  const ParseResult barrier =
      parse({"--op=batch", "--mode=coscheduled", "--kv-share=on"});
  ASSERT_FALSE(barrier.ok());
  EXPECT_NE(barrier.error.find("--kv-share"), std::string::npos);
  EXPECT_NE(barrier.error.find("continuous"), std::string::npos);
  // Prefix identity without sharing is dead configuration.
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous",
                      "--prefix-groups=0,0"})
                   .ok());
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous",
                      "--prefix-tokens=64"})
                   .ok());
  // The two prefix flags require each other.
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--kv-share=on",
                      "--prefix-groups=0,0"})
                   .ok());
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--kv-share=on",
                      "--prefix-tokens=64,64"})
                   .ok());
  // Arity follows the batch size; malformed values are rejected.
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--seqs=64,128",
                      "--kv-share=on", "--prefix-groups=0,0,0",
                      "--prefix-tokens=16"})
                   .ok());
  EXPECT_FALSE(parse({"--kv-share=maybe"}).ok());
  EXPECT_FALSE(parse({"--prefix-groups=a,b"}).ok());
  // Group ids must leave room for the no-group sentinel.
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--kv-share=on",
                      "--prefix-groups=4294967295", "--prefix-tokens=16"})
                   .ok());
  // --kv-block-bytes still needs at least one consumer.
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous",
                      "--kv-block-bytes=4096"})
                   .ok());
}

TEST(ParseCli, ArrivalsAndStepsArityChecked) {
  // 3 entries vs 2 requests: rejected with both numbers in the message.
  const ParseResult r = parse({"--op=batch", "--mode=continuous",
                               "--requests=2", "--arrivals=0,1,2"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("3 entries"), std::string::npos);
  EXPECT_NE(r.error.find("2 requests"), std::string::npos);
  EXPECT_FALSE(parse({"--op=batch", "--requests=2", "--steps=1,2,3"}).ok());
  // Arity follows --seqs when it overrides --requests, and one entry
  // broadcasts.
  EXPECT_TRUE(parse({"--op=batch", "--mode=continuous", "--seqs=64,128,256",
                     "--arrivals=0,5,9", "--steps=4"})
                  .ok());
  EXPECT_TRUE(
      parse({"--op=batch", "--mode=continuous", "--requests=8", "--arrivals=5"})
          .ok());
}

// ------------------------------------------------------------ diagnostics --

TEST(ParseCli, UnknownFlagIsAnError) {
  const ParseResult r = parse({"--frobnicate=1"});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("frobnicate"), std::string::npos);
}

TEST(ParseCli, MalformedNumbersAreErrors) {
  EXPECT_FALSE(parse({"--seq=12abc"}).ok());
  EXPECT_FALSE(parse({"--seq=0"}).ok());
  EXPECT_FALSE(parse({"--cores=x"}).ok());
  EXPECT_FALSE(parse({"--bypass-keep-p=1.5"}).ok());
}

TEST(ParseCli, PositionalArgumentsRejected) {
  EXPECT_FALSE(parse({"llama3"}).ok());
}

TEST(ParseCli, InvalidGeometryCaughtByValidate) {
  // Three slices: not a power of two -> SimConfig::validate rejects.
  const ParseResult r = parse({"--slices=3"});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("invalid configuration"), std::string::npos);
}

TEST(ParseCli, UsageMentionsEveryFlag) {
  const std::string usage = cli_usage();
  for (const char* flag :
       {"--model", "--op", "--seq", "--policy", "--resp-arb", "--dispatch",
        "--cores", "--llc-mb", "--slices", "--mshr-entries", "--mshr-targets",
        "--repl", "--bypass", "--seed", "--csv", "--json", "--counters",
        "--energy", "--verbose", "--requests", "--layers", "--seqs",
        "--no-gemv", "--mode", "--interleave", "--req-dispatch",
        "--arrivals", "--steps", "--admit-policy", "--kv-budget", "--preempt",
        "--kv-evict", "--kv-block-bytes", "--refetch-cost", "--traffic",
        "--traffic-seed", "--traffic-gap", "--traffic-seq",
        "--traffic-seq-dist", "--traffic-sigma", "--traffic-steps",
        "--traffic-groups", "--traffic-zipf", "--traffic-share-pct",
        "--trace-out", "--trace-in", "--digest"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

// ------------------------------------------------------- open-loop flags --

TEST(OptionVocabulary, TrafficEnums) {
  EXPECT_EQ(traffic_process_from_string("poisson"), TrafficProcess::kPoisson);
  EXPECT_EQ(traffic_process_from_string("bursty"), TrafficProcess::kBursty);
  EXPECT_EQ(traffic_process_from_string("diurnal"), TrafficProcess::kDiurnal);
  EXPECT_FALSE(traffic_process_from_string("uniform").has_value());
  EXPECT_EQ(traffic_dist_from_string("uniform"), TrafficDist::kUniform);
  EXPECT_EQ(traffic_dist_from_string("lognormal"), TrafficDist::kLognormal);
  EXPECT_EQ(traffic_dist_from_string("LN"), TrafficDist::kLognormal);
  EXPECT_FALSE(traffic_dist_from_string("poisson").has_value());
}

TEST(ParseCli, TrafficFlagsParse) {
  const ParseResult r = parse(
      {"--op=batch", "--mode=continuous", "--traffic=bursty", "--requests=16",
       "--traffic-seed=9", "--traffic-gap=40000", "--traffic-seq=32,320",
       "--traffic-seq-dist=lognormal", "--traffic-sigma=0.7",
       "--traffic-steps=2,5", "--traffic-groups=3", "--traffic-zipf=1.5",
       "--traffic-share-pct=60", "--kv-share=on"});
  ASSERT_TRUE(r.ok()) << r.error;
  const CliOptions& opt = *r.options;
  EXPECT_TRUE(opt.traffic);
  EXPECT_EQ(opt.traffic_process, TrafficProcess::kBursty);
  EXPECT_EQ(opt.batch_requests, 16u);
  EXPECT_EQ(opt.traffic_seed, 9u);
  EXPECT_EQ(opt.traffic_gap, 40'000u);
  EXPECT_EQ(opt.traffic_seq_min, 32u);
  EXPECT_EQ(opt.traffic_seq_max, 320u);
  EXPECT_EQ(opt.traffic_seq_dist, TrafficDist::kLognormal);
  EXPECT_DOUBLE_EQ(opt.traffic_sigma, 0.7);
  EXPECT_EQ(opt.traffic_steps_min, 2u);
  EXPECT_EQ(opt.traffic_steps_max, 5u);
  EXPECT_EQ(opt.traffic_groups, 3u);
  EXPECT_DOUBLE_EQ(opt.traffic_zipf, 1.5);
  EXPECT_EQ(opt.traffic_share_pct, 60u);
}

TEST(ParseCli, TrafficFlagsCrossChecked) {
  // --traffic needs the continuous batch engine.
  EXPECT_FALSE(parse({"--traffic=poisson"}).ok());
  EXPECT_FALSE(parse({"--op=batch", "--traffic=poisson"}).ok());
  // A --traffic-* knob without --traffic names itself in the error.
  const ParseResult knob =
      parse({"--op=batch", "--mode=continuous", "--traffic-gap=100"});
  ASSERT_FALSE(knob.ok());
  EXPECT_NE(knob.error.find("--traffic-gap"), std::string::npos);
  EXPECT_NE(knob.error.find("requires --traffic"), std::string::npos);
  // The generator replaces the hand-built per-request flags.
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--traffic=poisson",
                      "--seqs=64,128"})
                   .ok());
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--traffic=poisson",
                      "--arrivals=0,5"})
                   .ok());
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--traffic=poisson",
                      "--steps=2"})
                   .ok());
  // Malformed values.
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--traffic=waves"})
                   .ok());
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--traffic=poisson",
                      "--traffic-gap=0"})
                   .ok());
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--traffic=poisson",
                      "--traffic-seq=512,64"})
                   .ok());
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--traffic=poisson",
                      "--traffic-seq=64"})
                   .ok());
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--traffic=poisson",
                      "--traffic-share-pct=101"})
                   .ok());
}

TEST(ParseCli, TraceFlagsCrossChecked) {
  EXPECT_TRUE(parse({"--op=batch", "--mode=continuous", "--traffic=poisson",
                     "--trace-out=t.trace"})
                  .ok());
  EXPECT_TRUE(
      parse({"--op=batch", "--mode=continuous", "--trace-in=t.trace"}).ok());
  // Replay and generation are mutually exclusive workload sources.
  const ParseResult both = parse({"--op=batch", "--mode=continuous",
                                  "--traffic=poisson", "--trace-in=t.trace"});
  ASSERT_FALSE(both.ok());
  EXPECT_NE(both.error.find("conflict"), std::string::npos);
  // Replay replaces the per-request flags and needs the continuous engine.
  EXPECT_FALSE(parse({"--trace-in=t.trace"}).ok());
  EXPECT_FALSE(parse({"--op=batch", "--mode=continuous", "--trace-in=t.trace",
                      "--seqs=64,128"})
                   .ok());
  EXPECT_FALSE(parse({"--trace-out=t.trace"}).ok());
  // --digest is defined over batch runs only.
  EXPECT_TRUE(parse({"--op=batch", "--digest"}).ok());
  EXPECT_FALSE(parse({"--digest"}).ok());
}

}  // namespace
}  // namespace llamcat
