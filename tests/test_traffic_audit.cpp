// Open-loop audit layer (scenario/invariants.hpp items 5-7): a real
// generated workload passes the contract end to end, and every class of
// corruption - out-of-order sources, impossible landmarks, dropped rows,
// broken SLO sums - is rejected with a violation naming the request. The
// corruptions are applied to a copy of a genuine run's stats, so each test
// proves the auditor catches exactly one defect on otherwise-valid data.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/invariants.hpp"
#include "scenario/scenario.hpp"
#include "scenario/traffic.hpp"

namespace llamcat {
namespace {

using scenario::audit_open_loop;
using scenario::AuditReport;
using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::ExecutionMode;
using scenario::generate_traffic;
using scenario::RequestBatch;
using scenario::RequestSpec;
using scenario::slo_accounting;
using scenario::SloReport;
using scenario::TrafficConfig;

SimConfig small_config() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

ModelShape tiny_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

TrafficConfig small_traffic() {
  TrafficConfig tc;
  tc.num_requests = 3;
  tc.seed = 11;
  tc.mean_gap = 5'000;
  tc.seq_min = 32;
  tc.seq_max = 96;
  tc.steps_min = 1;
  tc.steps_max = 3;
  return tc;
}

/// One genuine open-loop run, shared by every corruption test.
struct OpenLoopRun {
  std::vector<RequestSpec> requests;
  BatchStats stats;

  OpenLoopRun() : requests(generate_traffic(small_traffic())) {
    const RequestBatch batch(tiny_model(), requests);
    DecodePassConfig pc;
    pc.num_layers = 1;
    pc.include_gemv = false;
    pc.mode = ExecutionMode::kContinuous;
    stats = DecodePass(batch, pc, small_config()).run();
  }
};

const OpenLoopRun& run() {
  static const OpenLoopRun r;
  return r;
}

constexpr Cycle kSlo = 100'000;

void expect_violation(const std::vector<RequestSpec>& requests,
                      const BatchStats& stats, const std::string& needle,
                      const char* what) {
  const AuditReport report = audit_open_loop(requests, stats, kSlo);
  ASSERT_FALSE(report.ok()) << what << ": corruption went unnoticed";
  EXPECT_NE(report.to_string().find(needle), std::string::npos)
      << what << ": got\n"
      << report.to_string();
}

TEST(OpenLoopAudit, GenuineRunPasses) {
  const AuditReport report = audit_open_loop(run().requests, run().stats,
                                             kSlo);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(OpenLoopAudit, RejectsBarrierModeStats) {
  BatchStats stats = run().stats;
  stats.mode = ExecutionMode::kIndependent;
  expect_violation(run().requests, stats, "kContinuous", "barrier mode");
}

TEST(OpenLoopAudit, RejectsRowCountMismatch) {
  std::vector<RequestSpec> requests = run().requests;
  requests.pop_back();
  expect_violation(requests, run().stats, "rows for a workload",
                   "dropped workload row");
}

TEST(OpenLoopAudit, RejectsOutOfOrderArrivals) {
  std::vector<RequestSpec> requests = run().requests;
  ASSERT_GE(requests.size(), 2u);
  // Push the first arrival past the second: the source no longer emits in
  // arrival order. (Also perturbs the per-request landmark checks; the
  // arrival-order violation must be among those reported.)
  requests[0].arrival_cycle = requests[1].arrival_cycle + 1;
  expect_violation(requests, run().stats, "arrival order",
                   "out-of-order source");
}

TEST(OpenLoopAudit, RejectsAdmitBeforeArrival) {
  BatchStats stats = run().stats;
  ASSERT_GT(run().requests[1].arrival_cycle, 0u);
  stats.per_request[1].admit_cycle = run().requests[1].arrival_cycle - 1;
  expect_violation(run().requests, stats, "before arrival",
                   "admit before arrival");
}

TEST(OpenLoopAudit, RejectsDispatchBeforeArrival) {
  BatchStats stats = run().stats;
  ASSERT_GT(run().requests[1].arrival_cycle, 0u);
  stats.per_request[1].slice.first_dispatch_cycle =
      run().requests[1].arrival_cycle - 1;
  expect_violation(run().requests, stats, "first dispatch",
                   "dispatch before arrival");
}

TEST(OpenLoopAudit, RejectsMissingStepLandmark) {
  BatchStats stats = run().stats;
  ASSERT_FALSE(stats.per_request[0].step_finish_cycles.empty());
  stats.per_request[0].step_finish_cycles.pop_back();
  expect_violation(run().requests, stats, "step-finish landmarks",
                   "missing step landmark");
}

TEST(OpenLoopAudit, RejectsBackwardsStepLandmarks) {
  BatchStats stats = run().stats;
  // Find a multi-step request and send its first landmark past its last.
  for (auto& r : stats.per_request) {
    if (r.step_finish_cycles.size() >= 2) {
      r.step_finish_cycles[0] = r.step_finish_cycles.back() + 1;
      expect_violation(run().requests, stats, "moves backwards",
                       "backwards step landmark");
      return;
    }
  }
  GTEST_SKIP() << "seed drew no multi-step request";
}

TEST(OpenLoopAudit, RejectsFinishMismatchedLastLandmark) {
  BatchStats stats = run().stats;
  stats.per_request[0].step_finish_cycles.back() =
      stats.per_request[0].finish_cycle + 1;
  expect_violation(run().requests, stats, "last step landmark",
                   "last landmark != finish");
}

TEST(OpenLoopAudit, RejectsDroppedRequest) {
  BatchStats stats = run().stats;
  // A zero finish_cycle means the request never finished: the SLO partition
  // can no longer balance (attained + violated counts every row, finished
  // does not).
  stats.per_request[2].finish_cycle = 0;
  expect_violation(run().requests, stats, "finished",
                   "unfinished request");
}

// -- SLO accounting ----------------------------------------------------------

TEST(SloAccounting, PartitionsTheBatch) {
  const SloReport slo = slo_accounting(run().stats, kSlo);
  EXPECT_EQ(slo.finished, run().requests.size());
  EXPECT_EQ(slo.attained + slo.violated, slo.finished);
}

TEST(SloAccounting, LooseSloAttainsEverythingAndCountsAllTokens) {
  const SloReport slo =
      slo_accounting(run().stats, run().stats.makespan + 1);
  EXPECT_EQ(slo.attained, run().requests.size());
  EXPECT_EQ(slo.violated, 0u);
  std::uint64_t tokens = 0;
  for (const RequestSpec& r : run().requests) tokens += r.decode_steps;
  EXPECT_EQ(slo.goodput_tokens, tokens);
}

TEST(SloAccounting, ZeroSloViolatesLateDispatches) {
  // With the SLO at 0 cycles only a request dispatched on its arrival
  // cycle attains; this seed's queue-free run still dispatches after
  // arrival, so goodput collapses.
  const SloReport slo = slo_accounting(run().stats, 0);
  EXPECT_EQ(slo.attained + slo.violated, slo.finished);
  EXPECT_GT(slo.violated, 0u);
}

}  // namespace
}  // namespace llamcat
