// Unit + property tests: operators, mappings, the mapper's constraints,
// the trace generator vs the closed-form traffic model, trace file I/O.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "trace/composite.hpp"
#include "trace/mapper.hpp"
#include "trace/trace_io.hpp"
#include "trace/tracegen.hpp"

namespace llamcat {
namespace {

TEST(Operator, ModelShapes) {
  const ModelShape m70 = ModelShape::llama3_70b();
  EXPECT_EQ(m70.num_kv_heads, 8u);
  EXPECT_EQ(m70.group_size, 8u);
  EXPECT_EQ(m70.head_dim, 128u);
  const ModelShape m405 = ModelShape::llama3_405b();
  EXPECT_EQ(m405.group_size, 16u);
}

TEST(Operator, SizesAndAddressing) {
  const OperatorSpec spec = OperatorSpec::logit(ModelShape::llama3_70b(), 4096);
  EXPECT_EQ(spec.kv_bytes(), 8ull * 4096 * 128 * 2);
  EXPECT_EQ(spec.q_bytes(), 8ull * 8 * 128 * 2);
  EXPECT_EQ(spec.s_bytes(), 8ull * 8 * 4096 * 2);
  // Tensor regions are disjoint.
  EXPECT_LE(spec.q_base + spec.q_bytes(), spec.kv_base);
  EXPECT_LE(spec.kv_base + spec.kv_bytes(), spec.s_base);
  // Element addressing is row-major.
  EXPECT_EQ(spec.kv_elem(0, 1, 0) - spec.kv_elem(0, 0, 0), 256u);
  EXPECT_EQ(spec.kv_elem(1, 0, 0) - spec.kv_elem(0, 0, 0), 4096u * 256);
}

TEST(Operator, ValidationRejectsOverlap) {
  OperatorSpec spec = OperatorSpec::logit(ModelShape::llama3_70b(), 4096);
  spec.kv_base = spec.q_base;  // overlap
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Mapping, ConstraintChecks) {
  const OperatorSpec spec = OperatorSpec::logit(ModelShape::llama3_70b(), 4096);
  Mapping m;
  m.l_tile = 32;
  EXPECT_NO_THROW(m.validate(spec));
  m.l_tile = 48;  // not a multiple of one output line (32 elems)
  EXPECT_THROW(m.validate(spec), std::invalid_argument);
  m.l_tile = 4096 * 2;  // does not divide seq_len
  EXPECT_THROW(m.validate(spec), std::invalid_argument);
  m = Mapping{};
  m.vector_lanes = 16;  // 32B vector: violates whole-line constraint
  EXPECT_THROW(m.validate(spec), std::invalid_argument);
}

TEST(Mapping, ThreadBlockEnumeration) {
  const OperatorSpec spec = OperatorSpec::logit(ModelShape::llama3_70b(), 256);
  Mapping m;
  m.l_tile = 32;
  m.order = TbOrder::kHLG;
  const auto tbs = m.thread_blocks(spec);
  EXPECT_EQ(tbs.size(), 8u * 8 * 8);  // H * G * (L / l_tile)
  EXPECT_EQ(tbs.size(), m.num_thread_blocks(spec));
  // Wave order: 8 consecutive TBs share (h, tile) and differ in g.
  for (std::uint32_t g = 0; g < 8; ++g) {
    EXPECT_EQ(tbs[g].h, 0u);
    EXPECT_EQ(tbs[g].l_begin, 0u);
    EXPECT_EQ(tbs[g].g, g);
  }
  // Every (h, g, tile) appears exactly once.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> seen;
  for (const auto& tb : tbs) seen.insert({tb.h, tb.g, tb.l_begin});
  EXPECT_EQ(seen.size(), tbs.size());
}

TEST(Mapping, OrderHGLPutsSharersApart) {
  const OperatorSpec spec = OperatorSpec::logit(ModelShape::llama3_70b(), 256);
  Mapping m;
  m.l_tile = 32;
  m.order = TbOrder::kHGL;
  const auto tbs = m.thread_blocks(spec);
  // Consecutive TBs are same (h,g), consecutive tiles.
  EXPECT_EQ(tbs[0].g, tbs[1].g);
  EXPECT_EQ(tbs[1].l_begin, tbs[0].l_end);
}

// Property: trace generator agrees with the closed-form traffic model.
class TraceVsModel
    : public ::testing::TestWithParam<std::tuple<std::uint32_t /*G*/,
                                                 std::uint64_t /*L*/,
                                                 std::uint32_t /*l_tile*/,
                                                 OpKind>> {};

TEST_P(TraceVsModel, InstrCountsMatchModel) {
  const auto [G, L, l_tile, kind] = GetParam();
  ModelShape model = ModelShape::llama3_70b();
  model.num_kv_heads = 2;
  model.group_size = G;
  OperatorSpec spec = kind == OpKind::kLogit
                          ? OperatorSpec::logit(model, L)
                          : OperatorSpec::attend(model, L);
  Mapping m;
  m.l_tile = l_tile;
  if (L % l_tile != 0) GTEST_SKIP();
  TraceGen gen(spec, m);
  const TrafficEstimate est = estimate_traffic(spec, m);

  std::uint64_t loads = 0, stores = 0, computes = 0, compute_cycles = 0;
  std::set<Addr> unique_loads, unique_stores;
  for (std::uint64_t t = 0; t < gen.num_tbs(); ++t) {
    const std::uint32_t n = gen.instr_count(t);
    for (std::uint32_t i = 0; i < n; ++i) {
      const Instr ins = gen.instr_at(t, i);
      switch (ins.kind) {
        case Instr::Kind::kLoad:
          ++loads;
          unique_loads.insert(ins.line_addr);
          EXPECT_EQ(ins.line_addr, line_align(ins.line_addr));
          break;
        case Instr::Kind::kStore:
          ++stores;
          unique_stores.insert(ins.line_addr);
          break;
        case Instr::Kind::kCompute:
          ++computes;
          compute_cycles += ins.cycles;
          break;
      }
    }
  }
  EXPECT_EQ(loads, est.load_line_requests);
  EXPECT_EQ(stores, est.store_line_requests);
  EXPECT_EQ(unique_loads.size(), est.unique_load_lines);
  EXPECT_EQ(unique_stores.size(), est.unique_store_lines);
  EXPECT_EQ(compute_cycles, est.compute_cycles);
  EXPECT_EQ(loads + stores + computes, est.total_instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TraceVsModel,
    ::testing::Combine(::testing::Values(4u, 8u, 16u),
                       ::testing::Values(128ull, 256ull),
                       ::testing::Values(32u, 64u),
                       ::testing::Values(OpKind::kLogit, OpKind::kAttend)));

TEST(TraceGen, GqaSharersLoadSameKLines) {
  const OperatorSpec spec = OperatorSpec::logit(ModelShape::llama3_70b(), 64);
  Mapping m;
  m.l_tile = 32;
  TraceGen gen(spec, m);
  // TBs 0 and 1 are (h0, g0, tile0) and (h0, g1, tile0) in HLG order: their
  // K loads are identical, Q and S differ.
  std::set<Addr> k0, k1;
  for (std::uint32_t i = 0; i < gen.instr_count(0); ++i) {
    const Instr ins = gen.instr_at(0, i);
    if (ins.kind == Instr::Kind::kLoad && ins.line_addr >= spec.kv_base)
      k0.insert(ins.line_addr);
  }
  for (std::uint32_t i = 0; i < gen.instr_count(1); ++i) {
    const Instr ins = gen.instr_at(1, i);
    if (ins.kind == Instr::Kind::kLoad && ins.line_addr >= spec.kv_base)
      k1.insert(ins.line_addr);
  }
  EXPECT_EQ(k0, k1);
  EXPECT_EQ(k0.size(), 32u * 4);  // l_tile * (head_dim*2/64)
}

TEST(Mapper, RespectsOutputLineConstraint) {
  const OperatorSpec spec = OperatorSpec::logit(ModelShape::llama3_70b(), 4096);
  const SimConfig cfg = SimConfig::table5();
  const MapperResult r = Mapper().search(spec, cfg.core, cfg.llc);
  const std::uint32_t lines = r.mapping.tb_out_lines(spec);
  EXPECT_GE(lines, 1u);
  EXPECT_LE(lines, 2u);
  EXPECT_FALSE(r.rationale.empty());
  EXPECT_GT(r.traffic.min_dram_bytes(), 0u);
}

TEST(Mapper, CostPrefersExploitableSharing) {
  const OperatorSpec spec = OperatorSpec::logit(ModelShape::llama3_70b(), 4096);
  const SimConfig cfg = SimConfig::table5();
  Mapping hlg, hgl;
  hlg.order = TbOrder::kHLG;
  hgl.order = TbOrder::kHGL;
  const Mapper mapper;
  EXPECT_LT(mapper.cost(spec, hlg, cfg.core, cfg.llc),
            mapper.cost(spec, hgl, cfg.core, cfg.llc));
}

TEST(TraceIo, RoundTrip) {
  ModelShape model = ModelShape::llama3_70b();
  model.num_kv_heads = 1;
  model.group_size = 2;
  const OperatorSpec spec = OperatorSpec::logit(model, 64);
  Mapping m;
  m.l_tile = 32;
  TraceGen gen(spec, m);

  std::stringstream ss;
  write_trace(ss, gen);
  const auto replay = read_trace(ss);
  ASSERT_EQ(replay->num_tbs(), gen.num_tbs());
  for (std::uint64_t t = 0; t < gen.num_tbs(); ++t) {
    ASSERT_EQ(replay->instr_count(t), gen.instr_count(t)) << "tb " << t;
    EXPECT_EQ(replay->tb(t).h, gen.tb(t).h);
    EXPECT_EQ(replay->tb(t).g, gen.tb(t).g);
    EXPECT_EQ(replay->tb(t).l_begin, gen.tb(t).l_begin);
    for (std::uint32_t i = 0; i < gen.instr_count(t); ++i) {
      const Instr a = gen.instr_at(t, i);
      const Instr b = replay->instr_at(t, i);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.line_addr, b.line_addr);
      if (a.kind == Instr::Kind::kCompute) EXPECT_EQ(a.cycles, b.cycles);
    }
  }
}

// A fused multi-request trace keeps its request/operator provenance across
// a write/read round trip (v2 headers), so replayed traces stay usable for
// co-scheduled simulation and per-request attribution.
TEST(TraceIo, RoundTripPreservesRequestProvenance) {
  ModelShape model = ModelShape::llama3_70b();
  model.num_kv_heads = 1;
  model.group_size = 2;
  Mapping m;
  m.l_tile = 32;
  CompositeTbSource src(FuseOrder::kRoundRobin);
  src.add(4, shift_to_slot(OperatorSpec::logit(model, 64), 0), m);
  src.add(9, shift_to_slot(OperatorSpec::logit(model, 64), 1), m);

  std::stringstream ss;
  write_trace(ss, src);
  const auto replay = read_trace(ss);
  ASSERT_EQ(replay->num_tbs(), src.num_tbs());
  for (std::uint64_t t = 0; t < src.num_tbs(); ++t) {
    EXPECT_EQ(replay->tb(t).request_id, src.tb(t).request_id);
    EXPECT_EQ(replay->tb(t).source_op, src.tb(t).source_op);
  }
}

// v1 traces (five-field tb headers) still parse; provenance defaults to 0.
TEST(TraceIo, ReadsLegacyV1Headers) {
  std::stringstream v1(
      "# llamcat-trace v1\ntb 0 1 2 0 32\nC 3\nend\n");
  const auto replay = read_trace(v1);
  ASSERT_EQ(replay->num_tbs(), 1u);
  EXPECT_EQ(replay->tb(0).h, 1u);
  EXPECT_EQ(replay->tb(0).request_id, 0u);
  EXPECT_EQ(replay->tb(0).source_op, 0u);
}

TEST(TraceIo, RejectsMalformedInput) {
  std::stringstream bad1("not a trace\n");
  EXPECT_THROW(read_trace(bad1), std::runtime_error);
  std::stringstream bad2("# llamcat-trace v1\nL deadbeef\n");
  EXPECT_THROW(read_trace(bad2), std::runtime_error);  // instr outside tb
  std::stringstream bad3("# llamcat-trace v1\ntb 0 0 0 0 32\nX 123\nend\n");
  EXPECT_THROW(read_trace(bad3), std::runtime_error);
  std::stringstream bad4("# llamcat-trace v1\ntb 0 0 0 0 32\nL 40\n");
  EXPECT_THROW(read_trace(bad4), std::runtime_error);  // unterminated
  // A v2 header truncated to v1's five fields is malformed, not a fallback.
  std::stringstream bad5("# llamcat-trace v2\ntb 0 0 0 0 32\nC 1\nend\n");
  EXPECT_THROW(read_trace(bad5), std::runtime_error);
}

}  // namespace
}  // namespace llamcat
