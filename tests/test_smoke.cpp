// End-to-end smoke test: a tiny Logit operator runs to completion on the
// full system with every policy combination.
#include <gtest/gtest.h>

#include "hwcost/area_model.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/trace_io.hpp"

namespace llamcat {
namespace {

SimConfig small_config() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;  // 1 MB
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 5'000'000;
  return cfg;
}

ModelShape tiny_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

TEST(Smoke, RunsToCompletion) {
  const SimConfig cfg = small_config();
  const Workload wl = Workload::logit(tiny_model(), 256, cfg);
  const SimStats s = run_simulation(cfg, wl);
  EXPECT_GT(s.cycles, 0u);
  EXPECT_EQ(s.thread_blocks, wl.mapping.num_thread_blocks(wl.op));
  EXPECT_GT(s.dram_reads, 0u);
}

TEST(Smoke, AllPolicyCombinations) {
  const SimConfig base = small_config();
  const Workload wl = Workload::logit(tiny_model(), 128, base);
  for (ThrottlePolicy thr : {ThrottlePolicy::kNone, ThrottlePolicy::kDyncta,
                             ThrottlePolicy::kLcs, ThrottlePolicy::kDynMg}) {
    for (ArbPolicy arb : {ArbPolicy::kFcfs, ArbPolicy::kBalanced,
                          ArbPolicy::kMa, ArbPolicy::kBma,
                          ArbPolicy::kCobrra}) {
      const SimConfig cfg = with_policies(base, thr, arb);
      const SimStats s = run_simulation(cfg, wl);
      EXPECT_GT(s.cycles, 0u) << to_string(thr) << "/" << to_string(arb);
      EXPECT_EQ(s.thread_blocks, wl.mapping.num_thread_blocks(wl.op));
    }
  }
}

TEST(Smoke, Deterministic) {
  const SimConfig cfg = small_config();
  const Workload wl = Workload::logit(tiny_model(), 256, cfg);
  const SimStats a = run_simulation(cfg, wl);
  const SimStats b = run_simulation(cfg, wl);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
}

TEST(Smoke, AreaModelProducesPaperScaleNumbers) {
  const SimConfig cfg = SimConfig::table5();
  const auto hb = hit_buffer_area(cfg.arb);
  const auto arb = arbiter_area(cfg.llc, cfg.arb, cfg.core.num_cores);
  EXPECT_GT(hb.total_um2, 500.0);
  EXPECT_LT(hb.total_um2, 20000.0);
  EXPECT_GT(arb.total_um2, hb.total_um2);
}

}  // namespace
}  // namespace llamcat
