// KV byte-conservation ledger: eviction/refetch edge cases at four levels.
// KvPager bookkeeping (evict-then-immediately-resume round trips, partial
// tail pinning at odd block sizes), the shared KvBlockPool's ref-counted
// eviction (double-unref rejection, swap refusal while a peer pins a block,
// last-unref-then-evict, shared partial tails at odd block sizes), the
// ServingAuditor shadow ledger (the contract enforcer itself must reject the
// races it exists to catch, e.g. a finish racing an outstanding swap), and
// the audited engine end-to-end at an odd --kv-block-bytes.
#include <gtest/gtest.h>

#include <stdexcept>

#include "scenario/invariants.hpp"
#include "scenario/kv_block_pool.hpp"
#include "scenario/kv_pager.hpp"
#include "scenario/scenario.hpp"

namespace llamcat {
namespace {

using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::InvariantViolation;
using scenario::KvBlockPool;
using scenario::KvBlockPoolConfig;
using scenario::KvPager;
using scenario::KvPagerConfig;
using scenario::RequestBatch;
using scenario::ServingAuditor;

SimConfig small_config() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

ModelShape tiny_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

// tiny_model: H=2, D=128, fp16 -> 512 bytes per resident KV token per layer.
constexpr std::uint64_t kTinyBytesPerToken = 2ull * 128 * 2;

// ---------------------------------------------------------------------------
// KvPager: swap round trips and tail pinning
// ---------------------------------------------------------------------------

TEST(KvLedger, EvictThenImmediatelyResumeRoundTrips) {
  KvPagerConfig cfg;
  cfg.block_bytes = 64;
  KvPager pager(cfg, {64 * 10});
  const std::uint64_t freed = pager.evict_cold(0);
  EXPECT_EQ(freed, 64u * 10);
  EXPECT_EQ(pager.swapped_blocks(0), 10u);
  // Resume before anything else happens: the refetch must restore exactly
  // what the eviction moved, and the ledger must read fully resident again.
  const KvPager::Refetch r = pager.refetch(0);
  EXPECT_EQ(r.bytes, freed);
  EXPECT_EQ(r.blocks, 10u);
  EXPECT_EQ(pager.swapped_blocks(0), 0u);
  EXPECT_EQ(pager.evictable_blocks(0), 10u);
  // And the round trip is repeatable - no state leaks across cycles.
  EXPECT_EQ(pager.evict_cold(0), freed);
  EXPECT_EQ(pager.refetch(0).bytes, freed);
}

TEST(KvLedger, OddBlockSizePinsThePartialTail) {
  // 1000-byte footprint, 192-byte blocks: 5 whole blocks (960 B) can move,
  // the 40-byte tail can never leave the resident tier.
  KvPagerConfig cfg;
  cfg.block_bytes = 192;
  KvPager pager(cfg, {1000});
  EXPECT_EQ(pager.total_blocks(0), 5u);
  const std::uint64_t freed = pager.evict_cold(0);
  EXPECT_EQ(freed, 5u * 192);
  EXPECT_LT(freed, 1000u);  // the tail stayed pinned
  // Second eviction with everything already out frees nothing (idempotent).
  EXPECT_EQ(pager.evict_cold(0), 0u);
  EXPECT_EQ(pager.refetch(0).bytes, 5u * 192);
}

TEST(KvLedger, BlockLargerThanFootprintIsUnswappable) {
  KvPagerConfig cfg;
  cfg.block_bytes = 1 << 20;
  KvPager pager(cfg, {4096});
  EXPECT_EQ(pager.total_blocks(0), 0u);
  EXPECT_EQ(pager.evict_cold(0), 0u);
  EXPECT_EQ(pager.refetch(0).bytes, 0u);
}

// ---------------------------------------------------------------------------
// KvBlockPool: ref-counted eviction edge cases
// ---------------------------------------------------------------------------

/// Two requests in prefix group 0, equal footprints, equal prefix lengths.
KvBlockPool shared_pair(std::uint64_t block_bytes, std::uint64_t footprint,
                        std::uint64_t prefix) {
  KvBlockPoolConfig cfg;
  cfg.block_bytes = block_bytes;
  return KvBlockPool(cfg, {{footprint, 0, prefix}, {footprint, 0, prefix}});
}

TEST(KvBlockPoolLedger, DoubleReleaseIsRejected) {
  KvBlockPool pool = shared_pair(64, 640, 320);
  // Release before admission is as corrupt as a double release.
  EXPECT_THROW((void)pool.release(0), std::logic_error);
  (void)pool.admit(0);
  (void)pool.release(0);
  EXPECT_THROW((void)pool.release(0), std::logic_error);
}

TEST(KvBlockPoolLedger, SwapIsRefusedWhileAPeerPinsTheBlock) {
  // 640-byte footprints, 320-byte prefix at 64-byte blocks: 5 shared blocks
  // + 5 private whole blocks each.
  KvBlockPool pool = shared_pair(64, 640, 320);
  EXPECT_EQ(pool.admit(0).charged_bytes, 640u);
  const KvBlockPool::Admission a1 = pool.admit(1);
  EXPECT_EQ(a1.charged_bytes, 320u);  // the shared 5 blocks dedup
  EXPECT_EQ(a1.hit_blocks, 5u);
  // Request 1 still pins the shared blocks: releasing request 0 may only
  // swap its private region - the refcounted eviction refuses the rest.
  EXPECT_EQ(pool.releasable_blocks(0), 5u);
  EXPECT_EQ(pool.release(0), 5u * 64);
  // Request 1 is now the sole pinner, so all 10 of its blocks could move.
  EXPECT_EQ(pool.releasable_blocks(1), 10u);
}

TEST(KvBlockPoolLedger, LastUnrefThenEvictFreesTheSharedRun) {
  KvBlockPool pool = shared_pair(64, 640, 320);
  (void)pool.admit(0);
  (void)pool.admit(1);
  EXPECT_EQ(pool.release(0), 5u * 64);   // private only: peer pins the prefix
  EXPECT_EQ(pool.release(1), 10u * 64);  // last pinner left: prefix swaps too
  // Everything of request 0 is on the host tier now; its resume pays for
  // the private run AND the shared run (nobody kept the prefix warm).
  EXPECT_EQ(pool.resume_cost(0), 640u);
  const KvBlockPool::Admission r0 = pool.resume(0);
  EXPECT_EQ(r0.charged_bytes, 640u);
  EXPECT_EQ(r0.refetch_blocks, 10u);
  // Request 1 resumes after: the shared blocks are warm again, only its
  // private region refetches.
  EXPECT_EQ(pool.resume(1).charged_bytes, 5u * 64);
}

TEST(KvBlockPoolLedger, OddBlockSizeSharesOnlyWholePrefixBlocks) {
  // 1000-byte footprints, 500-byte prefix at 192-byte blocks: the prefix
  // shares floor(500/192) = 2 blocks (384 B); the remaining 616 bytes are
  // private - 3 whole blocks (576 B) plus a 40-byte resident tail.
  KvBlockPool pool = shared_pair(192, 1000, 500);
  EXPECT_EQ(pool.admit(0).charged_bytes, 1000u);
  const KvBlockPool::Admission a1 = pool.admit(1);
  EXPECT_EQ(a1.hit_blocks, 2u);
  EXPECT_EQ(a1.hit_bytes, 384u);
  EXPECT_EQ(a1.charged_bytes, 1000u - 384u);
  // Release order pins the tail both times: request 0 frees only its 3
  // private whole blocks, request 1 - the last pinner - the shared run too.
  EXPECT_EQ(pool.release(0), 3u * 192);
  EXPECT_EQ(pool.release(1), 3u * 192 + 2u * 192);
  EXPECT_EQ(pool.resume(0).charged_bytes, 3u * 192 + 2u * 192);
  EXPECT_EQ(pool.resume(1).charged_bytes, 3u * 192);
  // Drain: a finish frees the private region (tail included) always, the
  // shared region only at the last holder.
  EXPECT_EQ(pool.finish(0), 616u);
  EXPECT_EQ(pool.finish(1), 616u + 384u);
}

TEST(KvBlockPoolLedger, FinishWhileReleasedIsRejected) {
  KvBlockPool pool = shared_pair(64, 640, 320);
  (void)pool.admit(0);
  (void)pool.release(0);
  // The engine always resumes (and refetches) before finishing; the pool
  // refuses the shortcut that would free host-tier bytes it never repinned.
  EXPECT_THROW((void)pool.finish(0), std::logic_error);
  (void)pool.resume(0);
  EXPECT_EQ(pool.finish(0), 640u);
}

// ---------------------------------------------------------------------------
// ServingAuditor: the shadow ledger rejects the races it exists to catch
// ---------------------------------------------------------------------------

TEST(KvLedgerAuditor, CleanLifecycleWithSwapRoundTripPasses) {
  // budget 1000, one request of 700 with 100-byte blocks (700 = 7 blocks).
  ServingAuditor audit(/*budget=*/1000, {700}, /*block_bytes=*/100);
  audit.on_admit(0, 10, 700);
  audit.on_evict(0, 700, 20, 0);    // all 7 blocks out
  audit.on_resume(0, 700, 30, 700);  // all 7 back
  audit.on_finish(0, 40, 0);
  EXPECT_NO_THROW(audit.on_pass_end());
}

TEST(KvLedgerAuditor, FinishRacingAnOutstandingSwapThrows) {
  ServingAuditor audit(0, {700}, 100);
  audit.on_admit(0, 1, 700);
  audit.on_evict(0, 300, 2, 400);
  // The engine's contract: a resume refetches everything before the request
  // can run again, so a finish with bytes still swapped out is impossible.
  EXPECT_THROW(audit.on_finish(0, 3, 0), InvariantViolation);
}

TEST(KvLedgerAuditor, PartialRefetchThrows) {
  ServingAuditor audit(0, {700}, 100);
  audit.on_admit(0, 1, 700);
  audit.on_evict(0, 500, 2, 200);
  // Refetching less than the swapped set would leave the pinned+swapped
  // sum short of the peak footprint.
  EXPECT_THROW(audit.on_resume(0, 300, 3, 500), InvariantViolation);
}

TEST(KvLedgerAuditor, NonBlockGranularSwapThrows) {
  ServingAuditor audit(0, {700}, 100);
  audit.on_admit(0, 1, 700);
  EXPECT_THROW(audit.on_evict(0, 150, 2, 550), InvariantViolation);
}

TEST(KvLedgerAuditor, EngineLedgerDivergenceThrows) {
  ServingAuditor audit(0, {700}, 0);
  // The engine claims 650 resident after pinning 700: the shadow ledger
  // catches the drift on the exact event.
  EXPECT_THROW(audit.on_admit(0, 1, 650), InvariantViolation);
}

TEST(KvLedgerAuditor, OverBudgetPinThrows) {
  ServingAuditor audit(/*budget=*/1000, {700, 700}, 0);
  audit.on_admit(0, 1, 700);
  EXPECT_THROW(audit.on_admit(1, 2, 1400), InvariantViolation);
}

TEST(KvLedgerAuditor, BackwardsClockThrows) {
  ServingAuditor audit(0, {700, 700}, 0);
  audit.on_admit(0, 10, 700);
  EXPECT_THROW(audit.on_admit(1, 5, 1400), InvariantViolation);
}

TEST(KvLedgerAuditor, UnfinishedRequestFailsPassEnd) {
  ServingAuditor audit(0, {700}, 0);
  audit.on_admit(0, 1, 700);
  EXPECT_THROW(audit.on_pass_end(), InvariantViolation);
}

// ---------------------------------------------------------------------------
// Audited engine end-to-end at an odd block size
// ---------------------------------------------------------------------------

TEST(KvLedgerEngine, OddBlockBytesCloseTheLedgerUnderAudit) {
  // The PagedEngine preemption scenario, but with 192-byte blocks (3 lines:
  // footprints are line-granular, not 192-granular, so partial tails are
  // the norm) and the in-engine auditor armed. The run must complete with
  // every cumulative refetch closing the swap ledger at 192 B granularity.
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(), {{0, 512, 0, 2},
                                          {1, 64, 1000, 1},
                                          {2, 64, 3000, 1},
                                          {3, 128, 5000, 1}});
  DecodePassConfig pc;
  pc.num_layers = 1;
  pc.include_gemv = false;
  pc.mode = scenario::ExecutionMode::kContinuous;
  pc.serving.policy = AdmitPolicy::kShortestRemaining;
  pc.serving.kv_budget_bytes = 544 * kTinyBytesPerToken;
  pc.serving.preempt = true;
  pc.serving.kv_evict = KvEvictPolicy::kColdBlocks;
  pc.serving.kv_block_bytes = 192;
  pc.audit = true;

  const scenario::BatchStats s = DecodePass(batch, pc, cfg).run();
  ASSERT_GT(s.total_swapped_blocks(), 0u) << "scenario must actually swap";
  for (const scenario::RequestStats& r : s.per_request) {
    EXPECT_EQ(r.refetch_bytes, r.swapped_blocks * 192)
        << "request " << r.id;
    EXPECT_GT(r.finish_cycle, 0u) << "request " << r.id;
  }
  // The post-run contract agrees.
  const scenario::AuditReport rep = scenario::audit_batch(batch, pc, s);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

}  // namespace
}  // namespace llamcat
