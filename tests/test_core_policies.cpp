// Unit tests: CAT speculation structures (hit_buffer, sent_reqs) and the
// arbitration policies (FCFS / B / MA / BMA), paper §4.1/§4.3.
#include <gtest/gtest.h>

#include "cache/mshr.hpp"
#include "core/arbitration.hpp"
#include "core/speculation.hpp"

namespace llamcat {
namespace {

Addr line(std::uint64_t i) { return i * kLineBytes; }

TEST(HitBuffer, FifoEviction) {
  HitBuffer hb(2);
  hb.record_hit(line(1));
  hb.record_hit(line(2));
  EXPECT_TRUE(hb.contains(line(1)));
  hb.record_hit(line(3));  // evicts 1
  EXPECT_FALSE(hb.contains(line(1)));
  EXPECT_TRUE(hb.contains(line(2)));
  EXPECT_TRUE(hb.contains(line(3)));
}

TEST(HitBuffer, DuplicatesCounted) {
  HitBuffer hb(3);
  hb.record_hit(line(1));
  hb.record_hit(line(1));
  hb.record_hit(line(2));
  hb.record_hit(line(9));  // evicts one copy of 1
  EXPECT_TRUE(hb.contains(line(1)));
  hb.record_hit(line(10));  // evicts the second copy
  EXPECT_FALSE(hb.contains(line(1)));
}

TEST(SentReqs, ExpiryAfterLifetime) {
  SentReqs sr(16, 8);  // lifetime = hit(3) + mshr(5)
  sr.push(line(1), /*spec_hit=*/false, 100);
  EXPECT_TRUE(sr.contains_mshr_bound(line(1)));
  sr.expire(107);
  EXPECT_TRUE(sr.contains_mshr_bound(line(1)));
  sr.expire(108);  // 100 + 8
  EXPECT_FALSE(sr.contains_mshr_bound(line(1)));
  EXPECT_EQ(sr.size(), 0u);
}

TEST(SentReqs, SpecHitBitMasks) {
  SentReqs sr(16, 8);
  // Speculated cache hits are masked out of the MSHR estimate (Fig 5).
  sr.push(line(1), /*spec_hit=*/true, 0);
  EXPECT_FALSE(sr.contains_mshr_bound(line(1)));
  sr.push(line(1), /*spec_hit=*/false, 1);
  EXPECT_TRUE(sr.contains_mshr_bound(line(1)));
}

// ----------------------------------------------------------- arbiter ----

ArbConfig arb_cfg(ArbPolicy p) {
  ArbConfig cfg;
  cfg.policy = p;
  return cfg;
}

QueuedRequest req(Addr a, CoreId core, std::uint64_t seq) {
  QueuedRequest q;
  q.req.line_addr = a;
  q.req.core = core;
  q.req.seq = seq;
  return q;
}

TEST(Arbiter, ClassifyUsesAllThreeStructures) {
  RequestArbiter arb(arb_cfg(ArbPolicy::kMa), 4, 8);
  Mshr mshr(6, 8);
  // Nothing known: miss.
  EXPECT_EQ(arb.classify(line(1), mshr), RequestArbiter::SpecClass::kMiss);
  // In hit_buffer: cache hit.
  arb.on_hit_determined(line(1));
  EXPECT_EQ(arb.classify(line(1), mshr),
            RequestArbiter::SpecClass::kCacheHit);
  // In the live MSHR: MSHR hit.
  mshr.add(line(2), {0, 0, false}, 0);
  EXPECT_EQ(arb.classify(line(2), mshr),
            RequestArbiter::SpecClass::kMshrHit);
  // Recently selected (sent_reqs, spec_hit=0): MSHR hit even though the
  // real MSHR has not seen it yet.
  MemRequest r;
  r.line_addr = line(3);
  r.core = 0;
  arb.on_selected(r, RequestArbiter::SpecClass::kMiss, 10);
  EXPECT_EQ(arb.classify(line(3), mshr),
            RequestArbiter::SpecClass::kMshrHit);
  // ...and the prediction expires once the MSHR would be up to date.
  arb.on_cycle(18);
  EXPECT_EQ(arb.classify(line(3), mshr), RequestArbiter::SpecClass::kMiss);
}

TEST(Arbiter, FcfsTakesHead) {
  RequestArbiter arb(arb_cfg(ArbPolicy::kFcfs), 4, 8);
  Mshr mshr(6, 8);
  std::vector<QueuedRequest> q{req(line(5), 2, 0), req(line(6), 1, 1)};
  const auto c = arb.select(q, mshr);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->index, 0u);
}

TEST(Arbiter, BalancedPicksLeastServedCore) {
  RequestArbiter arb(arb_cfg(ArbPolicy::kBalanced), 4, 8);
  Mshr mshr(6, 8);
  // Serve core 0 twice so its progress counter is highest.
  MemRequest r;
  r.core = 0;
  arb.on_selected(r, RequestArbiter::SpecClass::kMiss, 0);
  arb.on_selected(r, RequestArbiter::SpecClass::kMiss, 1);
  std::vector<QueuedRequest> q{req(line(1), 0, 0), req(line(2), 3, 1)};
  const auto c = arb.select(q, mshr);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(q[c->index].req.core, 3u);
  // Ties resolve to the earliest arrival.
  std::vector<QueuedRequest> q2{req(line(1), 1, 0), req(line(2), 2, 1)};
  EXPECT_EQ(arb.select(q2, mshr)->index, 0u);
}

TEST(Arbiter, MaPrioritizesHitThenMshrHitThenMiss) {
  RequestArbiter arb(arb_cfg(ArbPolicy::kMa), 4, 8);
  Mshr mshr(6, 8);
  mshr.add(line(2), {0, 0, false}, 0);
  arb.on_hit_determined(line(3));
  std::vector<QueuedRequest> q{req(line(1), 0, 0),   // miss
                               req(line(2), 1, 1),   // MSHR hit
                               req(line(3), 2, 2)};  // cache hit
  const auto c = arb.select(q, mshr);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->index, 2u);
  EXPECT_EQ(c->spec, RequestArbiter::SpecClass::kCacheHit);
  // Remove the cache hit: the MSHR hit wins next.
  std::vector<QueuedRequest> q2{req(line(1), 0, 0), req(line(2), 1, 1)};
  EXPECT_EQ(arb.select(q2, mshr)->index, 1u);
}

TEST(Arbiter, MaTieBreaksFcfsButBmaUsesProgress) {
  Mshr mshr(6, 8);
  MemRequest served;
  served.core = 0;
  // Two requests of the same class (miss) from cores 0 and 1; core 0 has
  // been served more.
  std::vector<QueuedRequest> q{req(line(1), 0, 0), req(line(2), 1, 1)};

  RequestArbiter ma(arb_cfg(ArbPolicy::kMa), 4, 8);
  ma.on_selected(served, RequestArbiter::SpecClass::kMiss, 0);
  EXPECT_EQ(ma.select(q, mshr)->index, 0u);  // FCFS tie-break

  RequestArbiter bma(arb_cfg(ArbPolicy::kBma), 4, 8);
  bma.on_selected(served, RequestArbiter::SpecClass::kMiss, 0);
  EXPECT_EQ(bma.select(q, mshr)->index, 1u);  // balanced tie-break
}

TEST(Arbiter, ProgressCountersTrackAndReset) {
  RequestArbiter arb(arb_cfg(ArbPolicy::kBma), 4, 8);
  MemRequest r;
  r.core = 2;
  arb.on_selected(r, RequestArbiter::SpecClass::kMiss, 0);
  arb.on_selected(r, RequestArbiter::SpecClass::kMiss, 1);
  EXPECT_EQ(arb.progress()[2], 2u);
  arb.reset_progress();
  EXPECT_EQ(arb.progress()[2], 0u);
}

TEST(Arbiter, EmptyQueueYieldsNothing) {
  RequestArbiter arb(arb_cfg(ArbPolicy::kBma), 4, 8);
  Mshr mshr(6, 8);
  std::vector<QueuedRequest> q;
  EXPECT_FALSE(arb.select(q, mshr).has_value());
}

// Property: for every policy, select() returns a valid index and never
// throws over randomized queues.
class ArbiterPolicyProp : public ::testing::TestWithParam<ArbPolicy> {};

TEST_P(ArbiterPolicyProp, AlwaysValidIndex) {
  RequestArbiter arb(arb_cfg(GetParam()), 8, 8);
  Mshr mshr(6, 8);
  mshr.add(line(100), {0, 0, false}, 0);
  arb.on_hit_determined(line(200));
  for (int n = 1; n <= 12; ++n) {
    std::vector<QueuedRequest> q;
    for (int i = 0; i < n; ++i) {
      q.push_back(req(line(100 + 50 * (i % 3)), static_cast<CoreId>(i % 8),
                      static_cast<std::uint64_t>(i)));
    }
    const auto c = arb.select(q, mshr);
    ASSERT_TRUE(c.has_value());
    EXPECT_LT(c->index, q.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ArbiterPolicyProp,
                         ::testing::Values(ArbPolicy::kFcfs,
                                           ArbPolicy::kBalanced,
                                           ArbPolicy::kMa, ArbPolicy::kBma,
                                           ArbPolicy::kCobrra));

}  // namespace
}  // namespace llamcat
