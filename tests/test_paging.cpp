// Paged KV eviction: KvPager block bookkeeping, the ServingConfig /
// AdmissionPolicy extensions (cold-block eviction, queued-yield gate,
// blocked-work preemption pressure), and the continuous engine's
// evict-at-preemption / refetch-at-resume path - including the headline
// property that eviction actually frees budget bytes (a budget-blocked
// arrival admits after an eviction where resident preemption would make it
// wait for the long request's finish).
#include <gtest/gtest.h>

#include <stdexcept>

#include "scenario/kv_pager.hpp"
#include "scenario/scenario.hpp"
#include "scenario/serving.hpp"

namespace llamcat {
namespace {

using scenario::AdmissionPolicy;
using scenario::AdmitPolicy;
using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::KvPager;
using scenario::KvPagerConfig;
using scenario::RequestBatch;
using scenario::RequestStats;
using scenario::ServingConfig;

SimConfig small_config() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 50'000'000;
  return cfg;
}

ModelShape tiny_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

// tiny_model: H=2, D=128, fp16 -> 512 bytes per resident KV token per layer.
constexpr std::uint64_t kTinyBytesPerToken = 2ull * 128 * 2;

// ---------------------------------------------------------------------------
// KvPager block bookkeeping
// ---------------------------------------------------------------------------

TEST(KvPagerConfigValidate, BlockBytesMustBeLineMultiple) {
  KvPagerConfig ok;
  EXPECT_NO_THROW(ok.validate());
  ok.block_bytes = 4096;
  EXPECT_NO_THROW(ok.validate());

  KvPagerConfig zero;
  zero.block_bytes = 0;
  EXPECT_THROW(zero.validate(), std::invalid_argument);
  KvPagerConfig odd;
  odd.block_bytes = 100;
  EXPECT_THROW(odd.validate(), std::invalid_argument);
}

TEST(KvPagerConfig, RefetchCostDefaultsToModeledHostLink) {
  KvPagerConfig cfg;  // 64-byte blocks, 8 B/cycle link
  EXPECT_EQ(cfg.cycles_per_block(), 8u);
  cfg.block_bytes = 4096;
  EXPECT_EQ(cfg.cycles_per_block(), 512u);
  cfg.refetch_cost = 3;  // explicit price wins
  EXPECT_EQ(cfg.cycles_per_block(), 3u);
}

TEST(KvPager, EvictsWholeBlocksAndKeepsThePartialTail) {
  KvPagerConfig cfg;
  cfg.block_bytes = 4096;
  // 10000 bytes = 2 whole blocks + a 1808-byte tail that can never move.
  KvPager pager(cfg, {10000});
  EXPECT_EQ(pager.total_blocks(0), 2u);
  EXPECT_EQ(pager.swapped_blocks(0), 0u);

  EXPECT_EQ(pager.evict_cold(0), 2u * 4096);
  EXPECT_EQ(pager.swapped_blocks(0), 2u);
  EXPECT_EQ(pager.swapped_bytes(0), 2u * 4096);
  // Idempotent: everything swappable is already out.
  EXPECT_EQ(pager.evict_cold(0), 0u);
  EXPECT_EQ(pager.total_swap_out_blocks(), 2u);
}

TEST(KvPager, RefetchRestoresBlocksAndPricesTheTransfer) {
  KvPagerConfig cfg;
  cfg.block_bytes = 128;
  cfg.refetch_cost = 5;
  KvPager pager(cfg, {1024, 256});
  EXPECT_EQ(pager.evict_cold(1), 256u);

  const KvPager::Refetch r = pager.refetch(1);
  EXPECT_EQ(r.blocks, 2u);
  EXPECT_EQ(r.bytes, 256u);
  EXPECT_EQ(r.cycles, 10u);  // 2 blocks x 5 cycles
  EXPECT_EQ(pager.swapped_blocks(1), 0u);
  EXPECT_EQ(pager.total_refetch_bytes(), 256u);

  // Nothing swapped -> a no-op refetch.
  const KvPager::Refetch none = pager.refetch(0);
  EXPECT_EQ(none.blocks, 0u);
  EXPECT_EQ(none.cycles, 0u);
}

// ---------------------------------------------------------------------------
// ServingConfig validation of the paging knobs
// ---------------------------------------------------------------------------

TEST(PagedServingConfigValidate, EvictRequiresPreemptAndFiniteBudget) {
  ServingConfig cfg;
  cfg.policy = AdmitPolicy::kFcfs;
  cfg.kv_evict = KvEvictPolicy::kColdBlocks;
  cfg.kv_budget_bytes = 1 << 20;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // no preempt

  cfg.preempt = true;
  cfg.kv_budget_bytes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // unlimited budget

  cfg.kv_budget_bytes = 1 << 20;
  EXPECT_NO_THROW(cfg.validate());

  cfg.kv_block_bytes = 96;  // not a line multiple
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.kv_block_bytes = 256;
  EXPECT_NO_THROW(cfg.validate());
}

// ---------------------------------------------------------------------------
// AdmissionPolicy: queued-yield gate + blocked-work preemption pressure
// ---------------------------------------------------------------------------

ServingConfig paged_cfg() {
  ServingConfig cfg;
  cfg.policy = AdmitPolicy::kFcfs;
  cfg.kv_budget_bytes = 1000;
  cfg.preempt = true;
  cfg.kv_evict = KvEvictPolicy::kColdBlocks;
  return cfg;
}

AdmissionPolicy::Candidate cand(std::size_t index, Cycle arrival,
                                std::uint64_t work, std::uint64_t bytes) {
  return AdmissionPolicy::Candidate{index, arrival, work, bytes};
}

TEST(PagedAdmissionSelect, LongCandidateYieldsToShorterQueuedPeer) {
  // Paged: the just-evicted long request (earlier arrival, FCFS seniority)
  // must NOT be re-admitted ahead of the short whose blocked admission
  // triggered the eviction - that would pay the refetch for nothing.
  const AdmissionPolicy paged{paged_cfg()};
  const auto picks =
      paged.select({cand(0, 0, 100, 500), cand(1, 50, 10, 200)}, {}, 0);
  EXPECT_EQ(picks, (std::vector<std::size_t>{1}));

  // Resident preemption keeps PR 4 behavior: FCFS seniority wins.
  ServingConfig resident = paged_cfg();
  resident.kv_evict = KvEvictPolicy::kNone;
  const auto pr4 = AdmissionPolicy{resident}.select(
      {cand(0, 0, 100, 500), cand(1, 50, 10, 200)}, {}, 0);
  EXPECT_EQ(pr4, (std::vector<std::size_t>{0, 1}));
}

TEST(PagedAdmissionSelect, MinimumWorkCandidateNeverYields) {
  // The queued-yield gate cannot block everyone: the shortest candidate
  // survives, so a non-empty queue on an idle machine still progresses.
  const AdmissionPolicy paged{paged_cfg()};
  const auto picks = paged.select(
      {cand(0, 0, 100, 300), cand(1, 10, 40, 300), cand(2, 20, 9, 300)}, {},
      0);
  ASSERT_FALSE(picks.empty());
  EXPECT_EQ(picks[0], 2u);
}

TEST(PagedShouldPreempt, BlockedWorkCountsOnlyUnderColdBlocks) {
  const AdmissionPolicy paged{paged_cfg()};
  // Nothing co-running, but a blocked candidate 10x shorter: paged
  // preemption fires (eviction frees the blocker's bytes)...
  EXPECT_TRUE(paged.should_preempt(100, {}, {10}));
  EXPECT_FALSE(paged.should_preempt(100, {}, {60}));  // within 2x

  // ...resident preemption ignores blocked candidates (yielding could
  // never unblock them).
  ServingConfig resident = paged_cfg();
  resident.kv_evict = KvEvictPolicy::kNone;
  EXPECT_FALSE(AdmissionPolicy{resident}.should_preempt(100, {}, {10}));
  // Both variants still honor co-running pressure.
  EXPECT_TRUE(AdmissionPolicy{resident}.should_preempt(100, {10}, {}));
}

// ---------------------------------------------------------------------------
// Continuous engine: eviction frees budget bytes
// ---------------------------------------------------------------------------

DecodePassConfig continuous_cfg() {
  DecodePassConfig pc;
  pc.num_layers = 1;
  pc.include_gemv = false;
  pc.mode = scenario::ExecutionMode::kContinuous;
  return pc;
}

// The headline property. Budget = exactly the long request's peak, so the
// short arrival is budget-blocked while the long is resident. Resident
// preemption (PR 4) can never free those bytes - the lone long request is
// never even preempted (nobody co-runs), so the short admits no earlier
// than the long's finish. Cold-block eviction swaps the long's KV out at
// its next stage boundary: the short admits mid-stream, long before the
// long finishes, and the freed/refetched bytes are visible in the new
// counters.
TEST(PagedEngine, EvictionAdmitsBudgetBlockedArrivalEarly) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(), {{0, 1024, 0, 1}, {1, 64, 2000, 1}});
  DecodePassConfig pc = continuous_cfg();
  pc.serving.policy = AdmitPolicy::kFcfs;
  pc.serving.kv_budget_bytes = 1024 * kTinyBytesPerToken;
  pc.serving.preempt = true;

  const BatchStats resident = DecodePass(batch, pc, cfg).run();
  // PR 4: the lone long request runs to completion; the short waits for
  // its budget share to free at finish.
  EXPECT_EQ(resident.total_preemptions(), 0u);
  EXPECT_GE(resident.per_request[1].admit_cycle,
            resident.per_request[0].finish_cycle);

  pc.serving.kv_evict = KvEvictPolicy::kColdBlocks;
  const BatchStats paged = DecodePass(batch, pc, cfg).run();
  EXPECT_TRUE(paged.paged);
  // The long request was preempted and its blocks swapped out...
  EXPECT_GE(paged.per_request[0].preemptions, 1u);
  EXPECT_GT(paged.per_request[0].swapped_blocks, 0u);
  // ...which freed budget bytes: the short admits before the long's finish.
  EXPECT_LT(paged.per_request[1].admit_cycle,
            paged.per_request[0].finish_cycle);
  EXPECT_LT(paged.per_request[1].latency(), resident.per_request[1].latency());
  // The resume paid for the swapped blocks: bytes match blocks, cycles are
  // part of the long request's latency.
  EXPECT_EQ(paged.per_request[0].refetch_bytes,
            paged.per_request[0].swapped_blocks * kLineBytes);
  EXPECT_GT(paged.per_request[0].refetch_cycles, 0u);
  EXPECT_EQ(paged.total_refetch_bytes(), paged.per_request[0].refetch_bytes);
  // The short never swaps (it is never preempted).
  EXPECT_EQ(paged.per_request[1].swapped_blocks, 0u);

  // Work attribution stays exact through swap/refetch: every thread block
  // and every byte of DRAM traffic belongs to exactly one request.
  std::uint64_t reads = 0, tbs = 0;
  for (const RequestStats& r : paged.per_request) {
    reads += r.slice.dram_reads;
    tbs += r.slice.thread_blocks;
  }
  EXPECT_EQ(reads, paged.total.dram_reads);
  EXPECT_EQ(tbs, paged.total.thread_blocks);
}

TEST(PagedEngine, ExplicitRefetchCostAndBlockSizeAreHonored) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(), {{0, 1024, 0, 1}, {1, 64, 2000, 1}});
  DecodePassConfig pc = continuous_cfg();
  pc.serving.policy = AdmitPolicy::kFcfs;
  pc.serving.kv_budget_bytes = 1024 * kTinyBytesPerToken;
  pc.serving.preempt = true;
  pc.serving.kv_evict = KvEvictPolicy::kColdBlocks;
  pc.serving.kv_block_bytes = 4096;
  pc.serving.refetch_cost = 7;

  const BatchStats s = DecodePass(batch, pc, cfg).run();
  const RequestStats& lng = s.per_request[0];
  ASSERT_GT(lng.swapped_blocks, 0u);
  EXPECT_EQ(lng.refetch_bytes, lng.swapped_blocks * 4096u);
  EXPECT_EQ(lng.refetch_cycles, lng.swapped_blocks * 7u);
  // 1024 tokens x 512 B = 512 KiB per layer: exactly 128 4-KiB blocks.
  EXPECT_EQ(lng.swapped_blocks, 128u);
}

// A block size larger than the victim's footprint leaves it no evictable
// whole block, so eviction could free nothing: blocked arrivals must NOT
// trigger the preemption (it would be pure churn - the short stays blocked
// and the long just loses its stage boundary). The run degenerates to
// resident-preemption behavior: no preemptions, no swaps, short admits at
// the long request's finish.
TEST(PagedEngine, OversizedBlocksNeverEvictOrChurn) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(), {{0, 1024, 0, 1}, {1, 64, 2000, 1}});
  DecodePassConfig pc = continuous_cfg();
  pc.serving.policy = AdmitPolicy::kFcfs;
  pc.serving.kv_budget_bytes = 1024 * kTinyBytesPerToken;
  pc.serving.preempt = true;
  pc.serving.kv_evict = KvEvictPolicy::kColdBlocks;
  // 1 MiB blocks > the long request's 512 KiB footprint: zero whole blocks.
  pc.serving.kv_block_bytes = 1ull << 20;

  const BatchStats s = DecodePass(batch, pc, cfg).run();
  EXPECT_EQ(s.total_preemptions(), 0u);
  EXPECT_EQ(s.total_swapped_blocks(), 0u);
  EXPECT_EQ(s.total_refetch_bytes(), 0u);
  EXPECT_GE(s.per_request[1].admit_cycle, s.per_request[0].finish_cycle);
}

// Everyone still finishes under paging, however tight the budget: swap
// round-trips never drop a request.
TEST(PagedEngine, NoRequestIsEverDropped) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(), {{0, 512, 0, 1},
                                          {1, 64, 100, 1},
                                          {2, 64, 50'000, 2},
                                          {3, 128, 200, 1}});
  for (const AdmitPolicy policy :
       {AdmitPolicy::kFcfs, AdmitPolicy::kShortestRemaining}) {
    DecodePassConfig pc = continuous_cfg();
    pc.serving.policy = policy;
    pc.serving.kv_budget_bytes = 512 * kTinyBytesPerToken;
    pc.serving.preempt = true;
    pc.serving.kv_evict = KvEvictPolicy::kColdBlocks;
    const BatchStats s = DecodePass(batch, pc, cfg).run();
    for (const RequestStats& r : s.per_request) {
      EXPECT_GT(r.finish_cycle, 0u) << "policy=" << to_string(policy);
      EXPECT_GE(r.finish_cycle, r.admit_cycle);
      EXPECT_GE(r.admit_cycle, r.arrival_cycle);
    }
    EXPECT_GE(s.makespan, s.per_request[2].finish_cycle);
  }
}

// The paged flag gates the new print columns and counters: a non-paged run
// reports neither, so kv_evict=none output stays byte-identical to PR 4.
TEST(PagedEngine, NonPagedRunsCarryNoPagingCounters) {
  const SimConfig cfg = small_config();
  const RequestBatch batch(tiny_model(), {{0, 256, 0, 1}, {1, 64, 500, 1}});
  DecodePassConfig pc = continuous_cfg();
  pc.serving.policy = AdmitPolicy::kFcfs;
  pc.serving.kv_budget_bytes = 512 * kTinyBytesPerToken;
  pc.serving.preempt = true;
  const BatchStats s = DecodePass(batch, pc, cfg).run();
  EXPECT_FALSE(s.paged);
  EXPECT_EQ(s.total_swapped_blocks(), 0u);
  EXPECT_EQ(s.total_refetch_bytes(), 0u);
  EXPECT_EQ(s.total_refetch_cycles(), 0u);
  for (const RequestStats& r : s.per_request) {
    EXPECT_EQ(r.stats.counters.get("req.swapped_blocks"), 0u);
    EXPECT_EQ(r.stats.counters.get("req.refetch_bytes"), 0u);
  }
}

}  // namespace
}  // namespace llamcat
