// Bypass-manager tests: unit semantics of every policy, the reuse
// predictor's learning behavior, config validation, and full-system
// integration (a bypassed LLC acts as a merge buffer; kNone is
// behavior-identical to a machine without the unit).
#include <gtest/gtest.h>

#include "cache/bypass.hpp"
#include "sim/experiment.hpp"

namespace llamcat {
namespace {

Addr line(std::uint64_t i) { return i * kLineBytes; }

BypassConfig cfg_for(BypassPolicy p) {
  BypassConfig cfg;
  cfg.policy = p;
  return cfg;
}

TEST(BypassManager, NonePolicyKeepsEverything) {
  BypassManager b(cfg_for(BypassPolicy::kNone), 1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(b.should_bypass(line(i)));
  }
  EXPECT_EQ(b.kept(), 100u);
  EXPECT_EQ(b.bypassed(), 0u);
}

TEST(BypassManager, AllPolicyBypassesEverything) {
  BypassManager b(cfg_for(BypassPolicy::kAll), 1);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(b.should_bypass(line(i)));
  }
  EXPECT_EQ(b.bypassed(), 100u);
}

TEST(BypassManager, ProbabilisticMatchesKeepProbability) {
  BypassConfig cfg = cfg_for(BypassPolicy::kProbabilistic);
  cfg.keep_probability = 0.25;
  BypassManager b(cfg, 42);
  constexpr int kTrials = 10000;
  int kept = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (!b.should_bypass(line(static_cast<std::uint64_t>(i)))) ++kept;
  }
  const double rate = static_cast<double>(kept) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
  EXPECT_EQ(b.kept() + b.bypassed(), static_cast<std::uint64_t>(kTrials));
}

TEST(BypassManager, ProbabilisticDeterministicPerSeed) {
  BypassConfig cfg = cfg_for(BypassPolicy::kProbabilistic);
  auto decisions = [&cfg](std::uint64_t seed) {
    BypassManager b(cfg, seed);
    std::vector<bool> out;
    for (std::uint64_t i = 0; i < 64; ++i) out.push_back(b.should_bypass(line(i)));
    return out;
  };
  EXPECT_EQ(decisions(7), decisions(7));
  EXPECT_NE(decisions(7), decisions(8));
}

TEST(BypassManager, ReuseHistoryStartsNeutral) {
  BypassConfig cfg = cfg_for(BypassPolicy::kReuseHistory);
  cfg.keep_threshold = 1;
  BypassManager b(cfg, 1);
  // Cold predictor keeps fills (counters start at the threshold).
  EXPECT_FALSE(b.should_bypass(line(0)));
  EXPECT_EQ(b.region_counter(line(0)), 1u);
}

TEST(BypassManager, ReuseHistoryLearnsStreamingRegions) {
  BypassConfig cfg = cfg_for(BypassPolicy::kReuseHistory);
  cfg.keep_threshold = 1;
  BypassManager b(cfg, 1);
  // A region that only misses drains its counter to 0 -> bypass.
  b.on_cache_miss(line(0));
  EXPECT_EQ(b.region_counter(line(0)), 0u);
  EXPECT_TRUE(b.should_bypass(line(0)));
  // A hit restores confidence.
  b.on_cache_hit(line(0));
  EXPECT_FALSE(b.should_bypass(line(0)));
}

TEST(BypassManager, ReuseCountersSaturateAtThreeAndZero) {
  BypassConfig cfg = cfg_for(BypassPolicy::kReuseHistory);
  BypassManager b(cfg, 1);
  for (int i = 0; i < 10; ++i) b.on_cache_hit(line(0));
  EXPECT_EQ(b.region_counter(line(0)), 3u);
  for (int i = 0; i < 10; ++i) b.on_cache_miss(line(0));
  EXPECT_EQ(b.region_counter(line(0)), 0u);
}

TEST(BypassManager, RegionsShareCounters) {
  BypassConfig cfg = cfg_for(BypassPolicy::kReuseHistory);
  cfg.region_log2 = 12;  // 4 KiB = 64 lines per region
  BypassManager b(cfg, 1);
  b.on_cache_miss(line(0));
  // line(1) is in the same 4 KiB region -> same counter.
  EXPECT_EQ(b.region_counter(line(1)), 0u);
  // line(64) is the next region -> untouched.
  EXPECT_EQ(b.region_counter(line(64)), 1u);
}

TEST(BypassManager, FeedbackIgnoredByStatelessPolicies) {
  BypassManager b(cfg_for(BypassPolicy::kNone), 1);
  b.on_cache_hit(line(0));
  b.on_cache_miss(line(0));  // must not crash or allocate a table
  EXPECT_FALSE(b.should_bypass(line(0)));
}

// --------------------------------------------------------- config checks --

TEST(BypassConfigValidate, RejectsBadProbability) {
  SimConfig cfg = SimConfig::table5();
  cfg.llc.bypass.keep_probability = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(BypassConfigValidate, RejectsZeroTableForReuseHistory) {
  SimConfig cfg = SimConfig::table5();
  cfg.llc.bypass.policy = BypassPolicy::kReuseHistory;
  cfg.llc.bypass.table_entries = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(BypassConfigValidate, RejectsSubLineRegion) {
  SimConfig cfg = SimConfig::table5();
  cfg.llc.bypass.region_log2 = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(BypassConfigValidate, RejectsThresholdBeyondCounterRange) {
  SimConfig cfg = SimConfig::table5();
  cfg.llc.bypass.keep_threshold = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ----------------------------------------------------- system integration --

SimConfig small_cfg() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 2ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

ModelShape small_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

TEST(BypassSystem, AllBypassKeepsCacheEmptyAndConserves) {
  SimConfig cfg = small_cfg();
  cfg.llc.bypass.policy = BypassPolicy::kAll;
  const Workload wl = Workload::logit(small_model(), 512, cfg);
  const SimStats s = run_simulation(cfg, wl);
  const auto& c = s.counters;
  // Every fill was rejected; consequently the LLC never hits on a load
  // whose line came back from DRAM (hits can still occur on dirty lines
  // marked by store write-allocate... which also never install, so zero).
  EXPECT_EQ(c.get("llc.bypassed_fills"), c.get("llc.fills"));
  EXPECT_EQ(c.get("llc.hits"), 0u);
  // The conservation laws still hold with the unit active.
  EXPECT_EQ(c.get("llc.mshr_hits") + c.get("llc.mshr_allocs"),
            c.get("llc.misses"));
  EXPECT_EQ(c.get("llc.mshr_allocs"), c.get("dram.reads"));
}

TEST(BypassSystem, AllBypassStillWritesDirtyDataBack) {
  SimConfig cfg = small_cfg();
  cfg.llc.bypass.policy = BypassPolicy::kAll;
  const Workload wl = Workload::logit(small_model(), 512, cfg);
  const SimStats s = run_simulation(cfg, wl);
  // The Logit operator stores the S tensor; its dirty fills bypass storage
  // but the data must still reach DRAM.
  EXPECT_GT(s.dram_writes, 0u);
}

TEST(BypassSystem, NonePolicyMatchesDefaultMachineExactly) {
  const SimConfig base = small_cfg();
  SimConfig with_unit = base;
  with_unit.llc.bypass.policy = BypassPolicy::kNone;
  const Workload wl = Workload::logit(small_model(), 512, base);
  const SimStats a = run_simulation(base, wl);
  const SimStats b = run_simulation(with_unit, wl);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.counters.get("llc.hits"), b.counters.get("llc.hits"));
}

TEST(BypassSystem, BypassRaisesDramTraffic) {
  SimConfig keep = small_cfg();
  SimConfig drop = small_cfg();
  drop.llc.bypass.policy = BypassPolicy::kAll;
  const Workload wl = Workload::logit(small_model(), 512, keep);
  const SimStats a = run_simulation(keep, wl);
  const SimStats b = run_simulation(drop, wl);
  EXPECT_GT(b.dram_reads, a.dram_reads)
      << "discarding every fill must cost refetches";
}

TEST(BypassSystem, ReuseHistoryTracksBetweenNoneAndAll) {
  SimConfig none = small_cfg();
  SimConfig all = small_cfg();
  all.llc.bypass.policy = BypassPolicy::kAll;
  SimConfig reuse = small_cfg();
  reuse.llc.bypass.policy = BypassPolicy::kReuseHistory;
  const Workload wl = Workload::logit(small_model(), 512, none);
  const std::uint64_t r_none = run_simulation(none, wl).dram_reads;
  const std::uint64_t r_all = run_simulation(all, wl).dram_reads;
  const std::uint64_t r_reuse = run_simulation(reuse, wl).dram_reads;
  EXPECT_GE(r_reuse, r_none);
  EXPECT_LE(r_reuse, r_all);
}

}  // namespace
}  // namespace llamcat
