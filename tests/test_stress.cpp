// Stress and failure-injection tests: starved resources (1-entry MSHRs,
// 1-deep queues, single slice/core), randomized configuration fuzzing, and
// per-cycle structural invariants. Every configuration must run to
// completion with the conservation laws intact - the stall machinery is
// allowed to be slow, never wrong.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/tracegen.hpp"

namespace llamcat {
namespace {

ModelShape tiny_model(std::uint32_t h = 2, std::uint32_t g = 2) {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = h;
  m.group_size = g;
  return m;
}

SimConfig tiny_cfg() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 2;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 50'000'000;
  return cfg;
}

void expect_conservation(const SimStats& s) {
  const auto& c = s.counters;
  EXPECT_EQ(c.get("llc.requests_in"), c.get("llc.requests_served"));
  EXPECT_EQ(c.get("llc.hits") + c.get("llc.misses"), c.get("llc.lookups"));
  EXPECT_EQ(c.get("llc.mshr_hits") + c.get("llc.mshr_allocs"),
            c.get("llc.misses"));
  EXPECT_EQ(c.get("llc.mshr_allocs"), c.get("dram.reads"));
  EXPECT_EQ(c.get("llc.fills"), c.get("dram.reads"));
}

// ------------------------------------------------- starved resources ------

struct StarveCase {
  std::string name;
  void (*apply)(SimConfig&);
};

class StarvedResources : public ::testing::TestWithParam<StarveCase> {};

TEST_P(StarvedResources, CompletesAndConserves) {
  SimConfig cfg = tiny_cfg();
  GetParam().apply(cfg);
  cfg.validate();
  const Workload wl = Workload::logit(tiny_model(), 256, cfg);
  const SimStats s = run_simulation(cfg, wl);
  EXPECT_GT(s.cycles, 0u);
  expect_conservation(s);
}

TEST_P(StarvedResources, DeterministicUnderStarvation) {
  SimConfig cfg = tiny_cfg();
  GetParam().apply(cfg);
  const Workload wl = Workload::logit(tiny_model(), 128, cfg);
  EXPECT_EQ(run_simulation(cfg, wl).cycles, run_simulation(cfg, wl).cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StarvedResources,
    ::testing::Values(
        StarveCase{"one_mshr_entry",
                   [](SimConfig& c) { c.llc.mshr_entries = 1; }},
        StarveCase{"one_mshr_target",
                   [](SimConfig& c) { c.llc.mshr_targets = 1; }},
        StarveCase{"one_entry_one_target",
                   [](SimConfig& c) {
                     c.llc.mshr_entries = 1;
                     c.llc.mshr_targets = 1;
                   }},
        StarveCase{"one_deep_request_queue",
                   [](SimConfig& c) { c.llc.req_q_size = 1; }},
        StarveCase{"one_deep_response_queue",
                   [](SimConfig& c) { c.llc.resp_q_size = 1; }},
        StarveCase{"single_slice",
                   [](SimConfig& c) { c.llc.num_slices = 1; }},
        StarveCase{"single_core",
                   [](SimConfig& c) { c.core.num_cores = 1; }},
        StarveCase{"single_window",
                   [](SimConfig& c) { c.core.num_inst_windows = 1; }},
        StarveCase{"shallow_windows",
                   [](SimConfig& c) { c.core.inst_window_depth = 2; }},
        StarveCase{"tiny_dram_queues",
                   [](SimConfig& c) {
                     c.dram.read_q_size = 1;
                     c.dram.write_q_size = 1;
                   }},
        StarveCase{"one_channel_one_rank",
                   [](SimConfig& c) {
                     c.dram.num_channels = 1;
                     c.dram.ranks_per_channel = 1;
                   }},
        StarveCase{"everything_starved",
                   [](SimConfig& c) {
                     c.llc.mshr_entries = 1;
                     c.llc.mshr_targets = 1;
                     c.llc.req_q_size = 1;
                     c.llc.resp_q_size = 1;
                     c.llc.num_slices = 1;
                     c.core.num_cores = 1;
                     c.core.num_inst_windows = 1;
                   }}),
    [](const ::testing::TestParamInfo<StarveCase>& info) {
      return info.param.name;
    });

TEST(StarvedResources, OneEntryMshrActuallyStalls) {
  SimConfig cfg = tiny_cfg();
  cfg.llc.mshr_entries = 1;
  const Workload wl = Workload::logit(tiny_model(), 512, cfg);
  const SimStats s = run_simulation(cfg, wl);
  EXPECT_GT(s.counters.get("llc.stall_entry"), 0u)
      << "a 1-entry MSHR must hit numEntry exhaustion on this workload";
  EXPECT_GT(s.t_cs, 0.0);
}

TEST(StarvedResources, StarvationOnlyCostsTime) {
  SimConfig rich = tiny_cfg();
  SimConfig poor = tiny_cfg();
  poor.llc.mshr_entries = 1;
  poor.llc.req_q_size = 1;
  const Workload wl = Workload::logit(tiny_model(), 256, rich);
  const SimStats a = run_simulation(rich, wl);
  const SimStats b = run_simulation(poor, wl);
  EXPECT_GT(b.cycles, a.cycles);
  // Identical work retired either way.
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.thread_blocks, b.thread_blocks);
}

// ------------------------------------------------------ config fuzzing ----

class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigFuzz, RandomMachinesCompleteAndConserve) {
  Xoshiro256 rng(GetParam());
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 1u << rng.below(4);            // 1..8
  cfg.core.num_inst_windows = 1 + static_cast<std::uint32_t>(rng.below(4));
  cfg.core.inst_window_depth = 4u << rng.below(4);    // 4..32
  cfg.llc.size_bytes = (1ull << 20) << rng.below(2);  // 1..2 MB
  cfg.llc.num_slices = 1u << rng.below(3);            // 1..4
  cfg.llc.mshr_entries = 1 + static_cast<std::uint32_t>(rng.below(8));
  cfg.llc.mshr_targets = 1 + static_cast<std::uint32_t>(rng.below(8));
  cfg.llc.req_q_size = 1 + static_cast<std::uint32_t>(rng.below(12));
  cfg.llc.resp_q_size = 2 + static_cast<std::uint32_t>(rng.below(32));
  cfg.llc.repl = static_cast<ReplPolicy>(rng.below(5));
  cfg.llc.insert = static_cast<InsertPolicy>(rng.below(2));
  cfg.arb.policy = static_cast<ArbPolicy>(rng.below(8));
  cfg.arb.hit_buffer_depth = static_cast<std::uint32_t>(rng.below(64));
  cfg.arb.sent_reqs_depth = static_cast<std::uint32_t>(rng.below(32));
  cfg.throttle.policy = static_cast<ThrottlePolicy>(rng.below(4));
  cfg.core.tb_dispatch = static_cast<TbDispatch>(rng.below(3));
  cfg.llc.bypass.policy = static_cast<BypassPolicy>(rng.below(4));
  cfg.dram.num_channels = 1u << rng.below(2);
  cfg.seed = rng();
  cfg.max_cycles = 100'000'000;
  ASSERT_NO_THROW(cfg.validate());

  const std::uint64_t L = 64u << rng.below(3);  // 64..256
  const Workload wl = Workload::logit(
      tiny_model(1 + static_cast<std::uint32_t>(rng.below(2)),
                 1u << rng.below(3)),
      L, cfg);
  const SimStats s = run_simulation(cfg, wl);
  EXPECT_GT(s.cycles, 0u);
  expect_conservation(s);
  EXPECT_EQ(s.thread_blocks, wl.mapping.num_thread_blocks(wl.op));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

// -------------------------------------------------- per-cycle invariants --

TEST(StructuralInvariants, QueuesAndMshrStayBounded) {
  SimConfig cfg = tiny_cfg();
  cfg.llc.mshr_entries = 2;
  cfg.llc.req_q_size = 4;
  cfg.llc.resp_q_size = 4;
  const Workload wl = Workload::logit(tiny_model(), 256, cfg);
  TraceGen gen(wl.op, wl.mapping);
  System sys(cfg, gen);
  while (!sys.done()) {
    sys.step();
    for (const auto& slice : sys.slices()) {
      ASSERT_LE(slice->req_q_size(), cfg.llc.req_q_size);
      ASSERT_LE(slice->resp_q_size(), cfg.llc.resp_q_size);
      ASSERT_LE(slice->mshr().occupancy(), cfg.llc.mshr_entries);
      for (const auto& e : slice->mshr().entries()) {
        ASSERT_LE(e.targets.size(), cfg.llc.mshr_targets);
      }
    }
  }
}

TEST(StructuralInvariants, ProgressCountersMonotone) {
  SimConfig cfg = tiny_cfg();
  cfg.arb.policy = ArbPolicy::kBma;
  const Workload wl = Workload::logit(tiny_model(), 128, cfg);
  TraceGen gen(wl.op, wl.mapping);
  System sys(cfg, gen);
  std::vector<std::uint64_t> prev(cfg.core.num_cores, 0);
  while (!sys.done()) {
    sys.step();
    std::vector<std::uint64_t> cur(cfg.core.num_cores, 0);
    for (const auto& slice : sys.slices()) {
      const auto& p = slice->arbiter().progress();
      for (std::size_t i = 0; i < p.size(); ++i) cur[i] += p[i];
    }
    for (std::size_t i = 0; i < cur.size(); ++i) {
      ASSERT_GE(cur[i], prev[i]) << "progress counter moved backwards";
    }
    prev = std::move(cur);
  }
}

TEST(StructuralInvariants, AllSlicesDrainedAtCompletion) {
  SimConfig cfg = tiny_cfg();
  const Workload wl = Workload::logit(tiny_model(), 128, cfg);
  TraceGen gen(wl.op, wl.mapping);
  System sys(cfg, gen);
  while (!sys.done()) sys.step();
  for (const auto& slice : sys.slices()) {
    EXPECT_TRUE(slice->drained());
    EXPECT_EQ(slice->mshr().occupancy(), 0u);
  }
  for (const auto& core : sys.cores()) {
    EXPECT_TRUE(core->fully_idle());
  }
}

// ----------------------------------------------------- odd workloads ------

TEST(OddWorkloads, MinimumSequenceLength) {
  // 32 fp16 elements = exactly the 64B the mapping constraint requires in
  // the innermost L1 temporal level.
  const SimConfig cfg = tiny_cfg();
  const Workload wl = Workload::logit(tiny_model(), 32, cfg);
  const SimStats s = run_simulation(cfg, wl);
  expect_conservation(s);
  EXPECT_GT(s.thread_blocks, 0u);
}

TEST(OddWorkloads, Fp32ModelRuns) {
  ModelShape m = tiny_model();
  m.dtype_bytes = 4;
  const SimConfig cfg = tiny_cfg();
  const Workload wl = Workload::logit(m, 128, cfg);
  const SimStats s = run_simulation(cfg, wl);
  expect_conservation(s);
}

TEST(OddWorkloads, WideGroupNarrowHeads) {
  const SimConfig cfg = tiny_cfg();
  const Workload wl = Workload::logit(tiny_model(1, 32), 128, cfg);
  const SimStats s = run_simulation(cfg, wl);
  expect_conservation(s);
}

TEST(OddWorkloads, MoreCoresThanThreadBlocks) {
  SimConfig cfg = tiny_cfg();
  cfg.core.num_cores = 16;
  // C_idle/C_mem totals are throttling-support counters, only sampled when
  // a controller is active.
  cfg.throttle.policy = ThrottlePolicy::kDyncta;
  // 2 (h,g) pairs x 128/l_tile thread blocks: fewer than 16 cores, and the
  // run is long enough to cross a sampling sub-period so the surplus
  // cores' idleness reaches the merged counters.
  const Workload wl = Workload::logit(tiny_model(1, 2), 128, cfg);
  const SimStats s = run_simulation(cfg, wl);
  expect_conservation(s);
  ASSERT_LT(s.thread_blocks, 16u);
  EXPECT_GE(s.counters.get("core.c_idle_total"), 1u)
      << "surplus cores must report idle cycles";
}

}  // namespace
}  // namespace llamcat
