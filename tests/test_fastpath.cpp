// Fast-path equivalence suite: the event-driven skip-ahead and self-freeze
// machinery (System fast path, on by default) must be an invisible
// optimization. Every execution mode and a slice of the pinned fuzz corpus
// run once with the fast path enabled and once with LLAMCAT_NO_FASTPATH=1,
// and the two runs are compared through the same canonical digest the
// serving fuzzer uses - byte-identity, not approximate equality. A third
// suite pins the parallel sweep contract: llamcat_stress-style sweeps give
// bit-identical results for any --jobs count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/fuzz.hpp"
#include "scenario/scenario.hpp"

namespace llamcat {
namespace {

using scenario::AdmitPolicy;
using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::ExecutionMode;
using scenario::FuzzResult;
using scenario::RequestBatch;
using scenario::RequestSpec;

/// Scoped LLAMCAT_NO_FASTPATH=1: System reads the env var at construction,
/// so setting it around a DecodePass run disables the fast path in every
/// System that run creates.
class ScopedNoFastpath {
 public:
  ScopedNoFastpath() { ::setenv("LLAMCAT_NO_FASTPATH", "1", 1); }
  ~ScopedNoFastpath() { ::unsetenv("LLAMCAT_NO_FASTPATH"); }
  ScopedNoFastpath(const ScopedNoFastpath&) = delete;
  ScopedNoFastpath& operator=(const ScopedNoFastpath&) = delete;
};

SimConfig small_config() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

ModelShape tiny_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

// tiny_model: H=2, D=128, fp16 -> 512 bytes per resident KV token per layer.
constexpr std::uint64_t kTinyBytesPerToken = 2ull * 128 * 2;

struct ModeCase {
  std::string name;
  std::vector<RequestSpec> requests;
  void (*configure)(DecodePassConfig&);
};

std::string run_digest(const ModeCase& mc) {
  DecodePassConfig pc;
  pc.num_layers = 2;
  pc.include_gemv = false;
  mc.configure(pc);
  const RequestBatch batch(tiny_model(), mc.requests);
  return scenario::batch_stats_digest(
      DecodePass(batch, pc, small_config()).run());
}

class EveryModeFastpath : public ::testing::TestWithParam<ModeCase> {};

TEST_P(EveryModeFastpath, FastPathOffIsByteIdenticalToOn) {
  const std::string fast = run_digest(GetParam());
  std::string slow;
  {
    ScopedNoFastpath off;
    slow = run_digest(GetParam());
  }
  EXPECT_EQ(fast, slow);
}

const std::vector<RequestSpec> kBarrierBatch = {{0, 128, 0, 1}, {1, 256, 0, 2}};
const std::vector<RequestSpec> kStreamBatch = {
    {0, 256, 0, 1}, {1, 64, 500, 2}, {2, 128, 0, 1}};
const std::vector<RequestSpec> kServingBatch = {
    {0, 512, 0, 2}, {1, 128, 1000, 1}, {2, 64, 3000, 1}, {3, 128, 5000, 1}};

INSTANTIATE_TEST_SUITE_P(
    Matrix, EveryModeFastpath,
    ::testing::Values(
        ModeCase{"independent", kBarrierBatch,
                 [](DecodePassConfig& pc) {
                   pc.mode = ExecutionMode::kIndependent;
                 }},
        ModeCase{"coscheduled", kBarrierBatch,
                 [](DecodePassConfig& pc) {
                   pc.mode = ExecutionMode::kCoScheduled;
                 }},
        ModeCase{"continuous_raw", kStreamBatch,
                 [](DecodePassConfig& pc) {
                   pc.mode = ExecutionMode::kContinuous;
                 }},
        ModeCase{"continuous_budgeted_preempt", kServingBatch,
                 [](DecodePassConfig& pc) {
                   pc.mode = ExecutionMode::kContinuous;
                   pc.serving.policy = AdmitPolicy::kShortestRemaining;
                   pc.serving.kv_budget_bytes = 700 * kTinyBytesPerToken * 2;
                   pc.serving.preempt = true;
                 }},
        ModeCase{"continuous_paged", kServingBatch,
                 [](DecodePassConfig& pc) {
                   pc.mode = ExecutionMode::kContinuous;
                   pc.serving.policy = AdmitPolicy::kShortestRemaining;
                   pc.serving.kv_budget_bytes = 544 * kTinyBytesPerToken * 2;
                   pc.serving.preempt = true;
                   pc.serving.kv_evict = KvEvictPolicy::kColdBlocks;
                 }}),
    [](const ::testing::TestParamInfo<ModeCase>& info) {
      return info.param.name;
    });

// A slice of the pinned fuzz corpus (randomized machine/batch/policy
// draws): the fast path must reproduce the disabled path byte for byte on
// scenarios nobody hand-picked. The seeds match the corpus pinned in
// tests/test_serving_fuzz.cpp.
class FuzzCorpusFastpath : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCorpusFastpath, FastPathOffIsByteIdenticalToOn) {
  const std::uint64_t seed = GetParam();
  const FuzzResult fast = scenario::run_fuzz_seed(seed);
  EXPECT_TRUE(fast.ok()) << fast.violations.front();
  FuzzResult slow;
  {
    ScopedNoFastpath off;
    slow = scenario::run_fuzz_seed(seed);
  }
  EXPECT_TRUE(slow.ok()) << slow.violations.front();
  EXPECT_FALSE(fast.digest.empty());
  EXPECT_EQ(fast.digest, slow.digest);
}

INSTANTIATE_TEST_SUITE_P(PinnedSeeds, FuzzCorpusFastpath,
                         ::testing::Values(57u, 93u, 148u, 171u));

// The parallel sweep contract behind `llamcat_stress --jobs=N`: a sweep
// fanned across 4 worker threads lands every result in its seed-order slot
// and is bit-identical to the serial sweep.
TEST(ParallelSweep, FourJobsMatchesSerial) {
  constexpr std::uint64_t kBase = 57;
  constexpr std::uint64_t kRuns = 8;
  const std::vector<FuzzResult> serial =
      scenario::run_fuzz_sweep(kBase, kRuns, /*jobs=*/1);
  const std::vector<FuzzResult> parallel =
      scenario::run_fuzz_sweep(kBase, kRuns, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].violations, parallel[i].violations);
    EXPECT_FALSE(serial[i].digest.empty()) << "seed " << serial[i].seed;
    EXPECT_EQ(serial[i].digest, parallel[i].digest)
        << "seed " << serial[i].seed;
  }
}

}  // namespace
}  // namespace llamcat
