// batch_decode: a multi-request, multi-layer decode pass on a scaled-down
// Table 5 machine. Three concurrent requests with different KV lengths each
// run a 2-layer Logit -> Attend -> GEMV chain; the report shows how
// per-request decode throughput falls with sequence length and what the
// batch sustains in aggregate.
#include <iostream>

#include "scenario/scenario.hpp"

using namespace llamcat;

int main() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;  // 1 MiB
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.throttle.policy = ThrottlePolicy::kDynMg;
  cfg.arb.policy = ArbPolicy::kBma;

  ModelShape model = ModelShape::llama3_70b();
  model.num_kv_heads = 2;  // scaled down to keep the example < 1s
  model.group_size = 4;

  const scenario::RequestBatch batch =
      scenario::RequestBatch::with_seq_lens(model, {256, 512, 1024});
  scenario::DecodePassConfig pass_cfg;
  pass_cfg.num_layers = 2;

  const scenario::DecodePass pass(batch, pass_cfg, cfg);
  std::cout << "machine:  " << cfg.summary() << "\n"
            << "batch:    " << batch.size() << " requests, "
            << pass_cfg.num_layers << " layers, "
            << pass.schedule().size() << " operator runs\n\n";

  const scenario::BatchStats stats = pass.run();
  stats.print(std::cout);
  return 0;
}
