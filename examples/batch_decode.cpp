// batch_decode: a multi-request, multi-layer decode pass on a scaled-down
// Table 5 machine, run three ways: every operator simulated in its own
// private System (independent: the optimistic no-contention sum),
// co-scheduled (each layer-stage wave fuses the requests' operators into
// one shared System so they contend for cores, the shared LLC and DRAM -
// but every wave is a barrier), and continuous (one long-lived streaming
// System: each request advances the moment its own stage completes, so the
// short requests stop paying for the long one). The closing comparison
// shows the contention slowdown the independent sum hides and the makespan
// the barrier leaves on the table - the regime LLaMCAT's arbitration and
// throttling policies exist to manage.
#include <cstdint>
#include <iomanip>
#include <iostream>

#include "scenario/scenario.hpp"

using namespace llamcat;

int main() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;  // 1 MiB
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.throttle.policy = ThrottlePolicy::kDynMg;
  cfg.arb.policy = ArbPolicy::kBma;

  ModelShape model = ModelShape::llama3_70b();
  model.num_kv_heads = 2;  // scaled down to keep the example < a few seconds
  model.group_size = 4;

  const scenario::RequestBatch batch =
      scenario::RequestBatch::with_seq_lens(model, {256, 512, 1024});
  scenario::DecodePassConfig pass_cfg;
  pass_cfg.num_layers = 2;

  const scenario::DecodePass independent(batch, pass_cfg, cfg);
  pass_cfg.mode = scenario::ExecutionMode::kCoScheduled;
  const scenario::DecodePass coscheduled(batch, pass_cfg, cfg);
  pass_cfg.mode = scenario::ExecutionMode::kContinuous;
  const scenario::DecodePass continuous(batch, pass_cfg, cfg);

  std::cout << "machine:  " << cfg.summary() << "\n"
            << "batch:    " << batch.size() << " requests, "
            << pass_cfg.num_layers << " layers, "
            << independent.schedule().size() << " operator runs\n";

  std::cout << "\n--- independent (per-operator Systems, stats summed) ---\n";
  const scenario::BatchStats ind = independent.run();
  ind.print(std::cout);

  std::cout << "\n--- coscheduled (one shared System per barrier wave) ---\n";
  const scenario::BatchStats cos = coscheduled.run();
  cos.print(std::cout);

  std::cout << "\n--- continuous (one streaming System, no barriers) ---\n";
  const scenario::BatchStats ct = continuous.run();
  ct.print(std::cout);

  // Co-scheduling both overlaps requests (a wave lasts as long as its
  // slowest member, not the sum) and makes them interfere in the shared
  // LLC/DRAM. Which effect wins depends on how much of the machine one
  // request can use alone - neither is visible to the independent sum.
  const double ratio = static_cast<double>(cos.total.cycles) /
                       static_cast<double>(ind.total.cycles);
  std::cout << "\ncoscheduled/independent total cycles = " << std::fixed
            << std::setprecision(3) << ratio << "x: "
            << (ratio > 1.0
                    ? "contention dominates (sharing the LLC costs more "
                      "than overlap saves)"
                    : "overlap dominates (lone operators underuse the "
                      "machine, so co-residency wins despite interference)")
            << "\n";
  // Streaming removes the per-wave drain: short requests stop waiting for
  // the 1024-token member at every stage.
  const double speedup = static_cast<double>(cos.makespan) /
                         static_cast<double>(ct.makespan);
  const std::int64_t gap = static_cast<std::int64_t>(cos.makespan) -
                           static_cast<std::int64_t>(ct.makespan);
  std::cout << "barrier/continuous makespan = " << std::setprecision(3)
            << speedup << "x ("
            << (gap >= 0 ? "streaming saves " : "streaming costs ")
            << (gap >= 0 ? gap : -gap)
            << " cycles vs draining between waves)\n";

  // Serving-policy layer on top of the stream: cap the resident KV
  // footprint so the machine is never oversubscribed. A 1.25 MiB budget
  // admits the 256- and 512-token requests (768 KiB over 2 layers), but
  // the 1024-token request's 1 MiB no longer fits beside them - it waits
  // in the serving queue until both shorts finish and free its share.
  pass_cfg.serving.policy = scenario::AdmitPolicy::kFcfs;
  pass_cfg.serving.kv_budget_bytes =
      batch.total_peak_kv_bytes(pass_cfg.num_layers) -
      batch.peak_kv_bytes(batch.requests()[1], pass_cfg.num_layers);
  const scenario::DecodePass budgeted(batch, pass_cfg, cfg);
  std::cout << "\n--- continuous + fcfs admission under a KV budget ("
            << pass_cfg.serving.kv_budget_bytes << " B) ---\n";
  const scenario::BatchStats sv = budgeted.run();
  sv.print(std::cout);
  std::cout << "\nthe 1024-token request waited "
            << sv.per_request[2].queued_cycles
            << " cycles in the serving queue (admitted at cycle "
            << sv.per_request[2].admit_cycle
            << "); the short requests ran without its KV stream beside "
               "them.\nbench/ablation_admission sweeps the policies "
               "(fcfs/srf, preemption) on staggered arrivals.\n";

  // Paged KV eviction on top: the budget now fits ONLY the long request,
  // and the short ones arrive while it runs. With resident preemption
  // (PR 4 semantics) the lone long request is never preempted - nothing
  // co-runs with it - so its KV pins the whole budget and the shorts wait
  // for its finish. With --kv-evict=cold-blocks the budget-blocked shorts
  // count as preemption pressure: the long request yields its next stage
  // boundary, its cold KV blocks swap out to the modeled host tier (freeing
  // their budget bytes, so the shorts admit mid-stream), and its resume
  // pays a refetch before re-entering the machine.
  const scenario::RequestBatch staggered(
      model, {{0, 1024, 0, 1}, {1, 256, 20'000, 1}, {2, 256, 40'000, 1}});
  scenario::DecodePassConfig paged_cfg;
  paged_cfg.num_layers = 2;
  paged_cfg.mode = scenario::ExecutionMode::kContinuous;
  paged_cfg.serving.policy = scenario::AdmitPolicy::kFcfs;
  paged_cfg.serving.kv_budget_bytes =
      staggered.peak_kv_bytes(staggered.requests()[0], paged_cfg.num_layers);
  paged_cfg.serving.preempt = true;

  const scenario::BatchStats res =
      scenario::DecodePass(staggered, paged_cfg, cfg).run();
  paged_cfg.serving.kv_evict = KvEvictPolicy::kColdBlocks;
  std::cout << "\n--- paged KV eviction (budget = the long request alone) "
               "---\n";
  const scenario::BatchStats pg =
      scenario::DecodePass(staggered, paged_cfg, cfg).run();
  pg.print(std::cout);
  std::cout << "\nresident preemption admitted the first short request at "
               "cycle "
            << res.per_request[1].admit_cycle
            << " (the long request's finish);\ncold-block eviction swapped "
            << pg.per_request[0].swapped_blocks
            << " KV blocks to the host tier and admitted it at cycle "
            << pg.per_request[1].admit_cycle << ",\nand the long request "
            << "paid " << pg.per_request[0].refetch_cycles
            << " refetch cycles at resume ("
            << pg.per_request[0].refetch_bytes
            << " bytes reloaded).\nbench/ablation_paging prices this "
               "recompute-vs-reload tradeoff across host-link speeds.\n";
  return 0;
}
