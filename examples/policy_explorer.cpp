// Policy explorer: run one workload under a chosen policy combination and
// dump every counter. Usage:
//   policy_explorer [model] [seq_len] [throttle] [arb] [cache_mb] [--full]
//     model    : 70b | 405b            (default 70b)
//     seq_len  : tokens                (default 4096)
//     throttle : unopt|dyncta|lcs|dynmg (default unopt)
//     arb      : fcfs|B|MA|BMA|cobrra  (default fcfs)
//     cache_mb : LLC size in MB        (default 16)
#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/experiment.hpp"

using namespace llamcat;

namespace {

ThrottlePolicy parse_throttle(const std::string& s) {
  if (s == "dyncta") return ThrottlePolicy::kDyncta;
  if (s == "lcs") return ThrottlePolicy::kLcs;
  if (s == "dynmg") return ThrottlePolicy::kDynMg;
  return ThrottlePolicy::kNone;
}

ArbPolicy parse_arb(const std::string& s) {
  if (s == "B") return ArbPolicy::kBalanced;
  if (s == "MA") return ArbPolicy::kMa;
  if (s == "BMA") return ArbPolicy::kBma;
  if (s == "cobrra") return ArbPolicy::kCobrra;
  return ArbPolicy::kFcfs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_s = argc > 1 ? argv[1] : "70b";
  const std::uint64_t seq = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4096;
  const std::string thr_s = argc > 3 ? argv[3] : "unopt";
  const std::string arb_s = argc > 4 ? argv[4] : "fcfs";
  const std::uint64_t cache_mb = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 16;
  const bool full = argc > 6 && std::string(argv[6]) == "--full";

  SimConfig cfg = SimConfig::table5();
  cfg.llc.size_bytes = cache_mb << 20;
  cfg = with_policies(cfg, parse_throttle(thr_s), parse_arb(arb_s));

  const ModelShape model =
      model_s == "405b" ? ModelShape::llama3_405b() : ModelShape::llama3_70b();
  const Workload wl = Workload::logit(model, seq, cfg);

  std::cout << "config: " << cfg.summary() << "  workload: " << model.name
            << " L=" << seq << " l_tile=" << wl.mapping.l_tile << "\n";
  const SimStats s = run_simulation(cfg, wl);
  s.print(std::cout);
  if (full) {
    std::cout << "\n-- counters --\n";
    s.counters.print(std::cout, "  ");
  }
  return 0;
}
