// Domain example: estimate the decode-stage attention cost for Llama3-70b
// and Llama3-405b at several context lengths on the Table 5 machine, with
// and without the LLaMCAT policy stack. Prints per-token time for the
// attention score (Logit) stage and the achieved memory-system efficiency.
//
// Decode generates one token per step; the Logit operator touches the whole
// KV cache, so its time grows linearly with context - this example shows
// where the LLC policies buy that time back.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

using namespace llamcat;

int main() {
  const SimConfig base = SimConfig::table5();
  TextTable t("Llama3 decode: Logit (QK^T) stage per token, Table 5 machine");
  t.set_header({"model", "context", "unopt (us)", "LLaMCAT (us)", "speedup",
                "KV read (MB)", "eff. BW unopt", "eff. BW ours"});

  for (const ModelShape& model :
       {ModelShape::llama3_70b(), ModelShape::llama3_405b()}) {
    for (std::uint64_t context : {2048ull, 4096ull, 8192ull}) {
      const Workload wl = Workload::logit(model, context, base);
      const SimStats unopt = run_simulation(
          with_policies(base, ThrottlePolicy::kNone, ArbPolicy::kFcfs), wl);
      const SimStats ours = run_simulation(
          with_policies(base, ThrottlePolicy::kDynMg, ArbPolicy::kBma), wl);
      const double kv_mb =
          static_cast<double>(wl.op.kv_bytes()) / (1024.0 * 1024.0);
      t.add_row({model.name, std::to_string(context),
                 TextTable::num(unopt.seconds() * 1e6, 1),
                 TextTable::num(ours.seconds() * 1e6, 1),
                 TextTable::num(ours.speedup_vs(unopt)),
                 TextTable::num(kv_mb, 1),
                 TextTable::num(unopt.dram_bw_gbps, 1) + " GB/s",
                 TextTable::num(ours.dram_bw_gbps, 1) + " GB/s"});
    }
  }
  t.print(std::cout);

  std::cout << "\nNote: decode is memory-bound; per-token Logit time scales "
               "with the KV cache\nsize. A full decoder layer adds the "
               "Attend (S*V) stage - see the library's\nOperatorSpec::attend "
               "to simulate it.\n";
  return 0;
}
