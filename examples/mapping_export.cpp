// Hybrid-framework example (paper Fig 6): run the analytical mapper on an
// operator, lower the chosen dataflow to a memory trace file, read it back,
// and drive the cycle-level simulator from the file - the Timeloop ->
// trace -> Ramulator2 hand-off of the paper, end to end.
//
// Usage: mapping_export [trace_path]   (default: /tmp/llamcat_logit.trace)
#include <iostream>

#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "trace/mapper.hpp"
#include "trace/trace_io.hpp"

using namespace llamcat;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/llamcat_logit.trace";

  // Keep the exported file small: a scaled-down GQA shape.
  ModelShape model = ModelShape::llama3_70b();
  model.num_kv_heads = 2;
  model.group_size = 4;
  const OperatorSpec spec = OperatorSpec::logit(model, 512);

  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;

  // 1. Analytical half: search for a mapping under the §6.2.2 constraints.
  const MapperResult mapped = Mapper().search(spec, cfg.core, cfg.llc);
  std::cout << "mapper: " << mapped.rationale << "\n";
  std::cout << "thread blocks: " << mapped.mapping.num_thread_blocks(spec)
            << ", est. loads " << mapped.traffic.load_line_requests
            << ", unique " << mapped.traffic.unique_load_lines << "\n";

  // 2. Lower the dataflow to a memory trace file.
  TraceGen gen(spec, mapped.mapping);
  write_trace_file(path, gen);
  std::cout << "trace written to " << path << "\n";

  // 3. Cycle-level half: replay the file through the full system.
  const auto replay = read_trace_file(path);
  System sys(cfg, *replay);
  const SimStats stats = sys.run();
  std::cout << "\nsimulated from trace file:\n";
  stats.print(std::cout);

  // 4. Cross-check against the in-memory generator.
  System sys2(cfg, gen);
  const SimStats direct = sys2.run();
  std::cout << "\ncycles (trace file) = " << stats.cycles
            << ", cycles (generator) = " << direct.cycles
            << (stats.cycles == direct.cycles ? "  [identical]" : "  [DIFFER]")
            << "\n";
  return stats.cycles == direct.cycles ? 0 : 1;
}
