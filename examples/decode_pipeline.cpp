// Decode pipeline: one token's attention step (Logit -> Attend) across the
// model zoo, with energy. This is the workload the paper's introduction
// motivates - KV-cache-bound decode - extended past the paper's Logit-only
// evaluation to the full attention pipeline and to several GQA geometries.
#include <iostream>

#include "sim/energy.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace llamcat;

  const SimConfig base = SimConfig::table5();
  const SimConfig tuned =
      with_policies(base, ThrottlePolicy::kDynMg, ArbPolicy::kBma);
  const std::uint64_t L = 4096;

  std::cout << "decode attention step (Logit + Attend), L=" << L
            << ", Table 5 machine\n"
            << "model        policy     cycles     ms/token  mJ/token  "
               "tok/s(attn-only)\n"
            << "----------------------------------------------------------"
               "------------\n";

  for (const ModelShape& model :
       {ModelShape::llama3_8b(), ModelShape::llama3_70b(),
        ModelShape::llama3_405b(), ModelShape::gemma2_27b()}) {
    for (const SimConfig& cfg : {base, tuned}) {
      const auto step = decode_attention_step(model, L, cfg);
      const PipelineResult r = run_pipeline(cfg, step);

      double energy_j = 0.0;
      for (const auto& op : r.ops) {
        energy_j += estimate_energy(EnergyConfig{}, cfg, op.stats).total_j();
      }
      const double ms = r.total_seconds() * 1e3;
      std::cout.setf(std::ios::left);
      std::cout.width(13);
      std::cout << model.name;
      std::cout.width(11);
      std::cout << (cfg.throttle.policy == ThrottlePolicy::kNone ? "unopt"
                                                                 : "dynmg+BMA");
      std::cout.width(11);
      std::cout << r.total_cycles();
      std::cout.width(10);
      std::cout << ms;
      std::cout.width(10);
      std::cout << energy_j * 1e3;
      std::cout << (ms > 0 ? 1e3 / ms : 0.0) << "\n";
    }
  }

  std::cout << "\nNote: per-token time counts only the attention operators\n"
               "(the paper's focus); GEMM/GEMV layers would add on top.\n";
  return 0;
}
