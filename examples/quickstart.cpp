// Quickstart: simulate one decode-step Logit operator (Llama3-70b, 8K
// context - the K tensor then contends for the 16MB LLC) on the Table 5
// machine, first unoptimized and then with the full LLaMCAT policy stack
// (dynmg + BMA), and print the headline metrics. Expect a ~1.1x speedup;
// longer contexts push it further (see bench/fig9_cache_size).
#include <iostream>

#include "sim/experiment.hpp"

int main() {
  using namespace llamcat;

  SimConfig cfg = SimConfig::table5();
  const Workload wl = Workload::logit(ModelShape::llama3_70b(), 8192, cfg);

  std::cout << "workload: " << wl.op.model.name << " logit, L=" << wl.op.seq_len
            << ", l_tile=" << wl.mapping.l_tile << "\n\n";

  std::cout << "--- unoptimized ---\n";
  const SimStats base = run_simulation(
      with_policies(cfg, ThrottlePolicy::kNone, ArbPolicy::kFcfs), wl);
  base.print(std::cout);

  std::cout << "\n--- LLaMCAT (dynmg + BMA) ---\n";
  const SimStats ours = run_simulation(
      with_policies(cfg, ThrottlePolicy::kDynMg, ArbPolicy::kBma), wl);
  ours.print(std::cout);

  std::cout << "\nspeedup: " << ours.speedup_vs(base) << "x\n";
  return 0;
}
