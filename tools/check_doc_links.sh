#!/usr/bin/env bash
# Docs link check: fail when a relative markdown link in the repo's
# documentation points at a file that does not exist. External links
# (http/https/mailto) and pure in-page anchors are skipped; a fragment on
# a relative link ("docs/metrics.md#foo") is checked against the file
# part. Run from the repo root; CI runs it on every push.
set -u

fail=0
docs="README.md ROADMAP.md bench/README.md"
for f in docs/*.md; do docs="$docs $f"; done

for doc in $docs; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Inline markdown links: [text](target). Reference-style links are not
  # used in this repo.
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://* | https://* | mailto:* | "#"*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "dead link: $doc -> $target"
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/^.*](\([^)]*\))$/\1/')
done

if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check OK"
