#!/usr/bin/env bash
# Docs link check: fail when a relative markdown link in the repo's
# documentation points at a file that does not exist. External links
# (http/https/mailto) and pure in-page anchors are skipped; a fragment on
# a relative link ("docs/metrics.md#foo") is checked against the file
# part. Also keeps the llamcat_lint rule catalog and
# docs/static-analysis.md in lockstep, build-free (the compiled
# counterpart of the same check lives in tests/test_lint.cpp). Run from
# the repo root; CI runs it on every push, before the build.
set -u

fail=0
docs="README.md ROADMAP.md bench/README.md"
for f in docs/*.md; do docs="$docs $f"; done

for doc in $docs; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Inline markdown links: [text](target). Reference-style links are not
  # used in this repo.
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://* | https://* | mailto:* | "#"*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "dead link: $doc -> $target"
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/^.*](\([^)]*\))$/\1/')
done

# --- lint rule catalog <-> docs lockstep ------------------------------------
# Rule ids are declared one per line in src/lint/lint.cpp as {"rule-id",
# and documented as | `rule-id` | rows in the static-analysis catalog
# table. Both directions are checked: an undocumented rule and a
# documented-but-removed rule each fail.
lint_src="src/lint/lint.cpp"
lint_doc="docs/static-analysis.md"
if [ -f "$lint_src" ] && [ -f "$lint_doc" ]; then
  src_rules=$(sed -n 's/^ *{"\([a-z-]*\)",.*$/\1/p' "$lint_src" | sort)
  doc_rules=$(sed -n 's/^| `\([a-z-]*\)` |.*$/\1/p' "$lint_doc" | sort)
  for r in $src_rules; do
    if ! printf '%s\n' "$doc_rules" | grep -qx "$r"; then
      echo "lint rule '$r' is in $lint_src but not in $lint_doc's catalog"
      fail=1
    fi
  done
  for r in $doc_rules; do
    if ! printf '%s\n' "$src_rules" | grep -qx "$r"; then
      echo "lint rule '$r' is documented in $lint_doc but absent from $lint_src"
      fail=1
    fi
  done
  [ -n "$src_rules" ] || { echo "no lint rules found in $lint_src"; fail=1; }
else
  echo "missing $lint_src or $lint_doc"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check OK (links + lint rule catalog)"
