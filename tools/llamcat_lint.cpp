// llamcat_lint: the repo's determinism & concurrency checker (src/lint).
//
//   llamcat_lint src tools              # lint the simulation tree (CI mode)
//   llamcat_lint src/sim/system.cpp     # lint one file
//   llamcat_lint --list-rules           # rule catalog (id + summary)
//   llamcat_lint --json=lint.json src   # machine-readable findings
//
// Exit code 0 = clean (suppressions are fine), 1 = active violations,
// 2 = bad usage or unreadable input. docs/static-analysis.md documents
// every rule, the suppression policy, and how to add a rule + fixture.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.hpp"

namespace {

constexpr const char* kUsage = R"(usage: llamcat_lint [options] <path>...
  <path>       file, or directory scanned recursively for .cpp/.hpp/.cc/.h
  --list-rules print the rule catalog and exit
  --json=PATH  also write findings as JSON ("-" = stdout)
  --help       this text
)";

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void write_json(std::ostream& os, std::size_t files,
                const std::vector<llamcat::lint::Violation>& violations,
                const std::vector<llamcat::lint::Violation>& suppressed) {
  os << "{\n  \"files\": " << files
     << ",\n  \"suppressed\": " << suppressed.size()
     << ",\n  \"violations\": [\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const auto& v = violations[i];
    os << "    {\"file\": \"" << json_escape(v.file)
       << "\", \"line\": " << v.line << ", \"rule\": \"" << v.rule
       << "\", \"message\": \"" << json_escape(v.message) << "\"}"
       << (i + 1 < violations.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& r : llamcat::lint::rules()) {
      std::cout << r.name << "\n    " << r.summary << "\n";
    }
    return 0;
  }
  if (paths.empty()) {
    std::cerr << "error: no inputs\n" << kUsage;
    return 2;
  }

  std::vector<llamcat::lint::Violation> violations;
  std::vector<llamcat::lint::Violation> suppressed;
  std::vector<std::string> files;
  try {
    files = llamcat::lint::collect_inputs(paths);
    for (const std::string& f : files) {
      auto report = llamcat::lint::lint_file(f);
      for (auto& v : report.violations) violations.push_back(std::move(v));
      for (auto& v : report.suppressed) suppressed.push_back(std::move(v));
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  for (const auto& v : violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  std::cout << files.size() << " files, " << violations.size()
            << " violations, " << suppressed.size()
            << " suppressed\n";

  if (!json_path.empty()) {
    if (json_path == "-") {
      write_json(std::cout, files.size(), violations, suppressed);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "error: cannot open " << json_path << "\n";
        return 2;
      }
      write_json(out, files.size(), violations, suppressed);
      std::cout << "wrote " << json_path << "\n";
    }
  }
  return violations.empty() ? 0 : 1;
}
