// llamcat_cli: run one simulation (or a decode pipeline) on the Table 5
// machine with any combination of workload / policy / machine overrides,
// and export the results. See --help (sim/options.hpp) for the vocabulary.
//
//   llamcat_cli --model=llama3-70b --seq=8192 --policy=dynmg+BMA --energy
//   llamcat_cli --op=gemv --gemv-rows=16384 --json=run.json
//   llamcat_cli --op=decode --seq=4096 --dispatch=wave
//   llamcat_cli --op=batch --seqs=256,512 --layers=2 --policy=dynmg+BMA
//   llamcat_cli --op=batch --mode=coscheduled --requests=4 --seq=512
//   llamcat_cli --op=batch --mode=continuous --seqs=4096,512,512 \
//       --arrivals=0,0,200000 --steps=2
//   llamcat_cli --op=batch --mode=continuous --seqs=4096,512,512 \
//       --arrivals=0,10000,20000 --admit-policy=srf --kv-budget=18874368 \
//       --preempt --no-gemv
//   llamcat_cli --op=batch --mode=continuous --seqs=4096,512,512 \
//       --arrivals=0,10000,20000 --admit-policy=srf --kv-budget=18874368 \
//       --preempt --kv-evict=cold-blocks --refetch-cost=2 --no-gemv
//   llamcat_cli --op=batch --mode=continuous --traffic=poisson \
//       --requests=8 --traffic-gap=50000 --trace-out=run.trace
//   llamcat_cli --op=batch --mode=continuous --trace-in=run.trace --digest
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <vector>

#include "scenario/fuzz.hpp"
#include "scenario/scenario.hpp"
#include "scenario/traffic.hpp"
#include "sim/energy.hpp"
#include "sim/experiment.hpp"
#include "sim/options.hpp"
#include "sim/report.hpp"

using namespace llamcat;

namespace {

std::vector<Workload> build_workloads(const CliOptions& opt) {
  if (opt.op == "logit") {
    return {Workload::logit(opt.model, opt.seq_len, opt.cfg)};
  }
  if (opt.op == "attend") {
    return {Workload::attend(opt.model, opt.seq_len, opt.cfg)};
  }
  if (opt.op == "gemv") {
    return {Workload::gemv(opt.gemv_rows, opt.gemv_cols, opt.cfg)};
  }
  // "decode": the attention pipeline for one token.
  return decode_attention_step(opt.model, opt.seq_len, opt.cfg);
}

int export_results(const CliOptions& opt,
                   const std::vector<ExperimentResult>& results) {
  if (!opt.csv_path.empty()) {
    std::ofstream csv(opt.csv_path);
    if (!csv) {
      std::cerr << "cannot open " << opt.csv_path << "\n";
      return 1;
    }
    write_csv(csv, results, ReportOptions{/*include_counters=*/true});
    std::cout << "wrote " << opt.csv_path << "\n";
  }
  if (!opt.json_path.empty()) {
    std::ofstream json(opt.json_path);
    if (!json) {
      std::cerr << "cannot open " << opt.json_path << "\n";
      return 1;
    }
    write_json(json, results);
    std::cout << "wrote " << opt.json_path << "\n";
  }
  return 0;
}

/// Builds the request list from whichever workload source the flags chose:
/// a recorded trace (--trace-in), the open-loop generator (--traffic), or
/// the hand-built per-request flags. Throws std::invalid_argument (with a
/// flag-nameable message) on a malformed trace or traffic shape.
std::vector<scenario::RequestSpec> build_batch_specs(const CliOptions& opt) {
  if (!opt.trace_in_path.empty()) {
    std::ifstream in(opt.trace_in_path);
    if (!in) {
      throw std::invalid_argument("cannot open --trace-in file " +
                                  opt.trace_in_path);
    }
    return scenario::read_trace(in);
  }
  if (opt.traffic) {
    scenario::TrafficConfig tc;
    tc.num_requests = opt.batch_requests;
    tc.seed = opt.traffic_seed;
    tc.process = opt.traffic_process;
    tc.mean_gap = opt.traffic_gap;
    tc.seq_dist = opt.traffic_seq_dist;
    tc.seq_min = opt.traffic_seq_min;
    tc.seq_max = opt.traffic_seq_max;
    tc.seq_sigma = opt.traffic_sigma;
    tc.steps_min = opt.traffic_steps_min;
    tc.steps_max = opt.traffic_steps_max;
    tc.prefix_groups = opt.traffic_groups;
    tc.zipf_s = opt.traffic_zipf;
    tc.share_pct = opt.traffic_share_pct;
    return scenario::generate_traffic(tc);
  }
  std::vector<std::uint64_t> seq_lens = opt.batch_seq_lens;
  if (seq_lens.empty()) {
    seq_lens.assign(opt.batch_requests, opt.seq_len);
  }
  // --arrivals / --steps broadcast a single entry across the batch (the
  // option parser has already checked the arities).
  const auto pick = [](const std::vector<std::uint64_t>& v, std::size_t i,
                       std::uint64_t fallback) {
    if (v.empty()) return fallback;
    return v.size() == 1 ? v[0] : v[i];
  };
  std::vector<scenario::RequestSpec> specs;
  specs.reserve(seq_lens.size());
  for (std::size_t i = 0; i < seq_lens.size(); ++i) {
    scenario::RequestSpec spec;
    spec.id = static_cast<std::uint32_t>(i);
    spec.seq_len = seq_lens[i];
    spec.arrival_cycle = pick(opt.batch_arrivals, i, 0);
    spec.decode_steps =
        static_cast<std::uint32_t>(pick(opt.batch_steps, i, 1));
    // Prefix identity (only meaningful under --kv-share=on; a 0-token
    // entry keeps the request fully private).
    const std::uint64_t prefix = pick(opt.batch_prefix_tokens, i, 0);
    if (opt.batch_kv_share && prefix != 0) {
      spec.prefix_group =
          static_cast<std::uint32_t>(pick(opt.batch_prefix_groups, i, 0));
      spec.prefix_tokens = prefix;
    }
    specs.push_back(spec);
  }
  return specs;
}

int run_batch(const CliOptions& opt) {
  scenario::DecodePassConfig pass_cfg;
  pass_cfg.num_layers = opt.batch_layers;
  pass_cfg.include_gemv = opt.batch_gemv;
  pass_cfg.mode = opt.batch_mode;
  pass_cfg.interleave = opt.batch_interleave;
  pass_cfg.serving.policy = opt.batch_admit;
  pass_cfg.serving.kv_budget_bytes = opt.batch_kv_budget;
  pass_cfg.serving.preempt = opt.batch_preempt;
  pass_cfg.serving.kv_evict = opt.batch_kv_evict;
  pass_cfg.serving.kv_block_bytes = opt.batch_kv_block_bytes;
  pass_cfg.serving.refetch_cost = opt.batch_refetch_cost;
  pass_cfg.serving.kv_share = opt.batch_kv_share;

  // Workload-source expansion and batch/pass construction both validate
  // the scenario (malformed traces, off-granule traffic shapes, duplicate
  // request ids, a request whose peak KV alone exceeds --kv-budget, ...):
  // report those as configuration errors, not simulation failures.
  std::optional<scenario::RequestBatch> batch;
  std::optional<scenario::DecodePass> pass;
  try {
    std::vector<scenario::RequestSpec> specs = build_batch_specs(opt);
    if (!opt.trace_out_path.empty()) {
      std::ofstream out(opt.trace_out_path);
      if (!out) {
        std::cerr << "cannot open " << opt.trace_out_path << "\n";
        return 1;
      }
      scenario::write_trace(out, specs);
      if (!opt.digest_only)
        std::cout << "wrote " << opt.trace_out_path << "\n";
    }
    batch.emplace(opt.model, std::move(specs));
    pass.emplace(*batch, pass_cfg, opt.cfg);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: invalid batch scenario: " << e.what() << "\n";
    return 2;
  }
  if (opt.digest_only) {
    // Nothing but the canonical digest: the scripted equivalence check
    // compares this output byte for byte across runs.
    const scenario::BatchStats stats = pass->run(0, opt.verbose);
    std::cout << scenario::batch_stats_digest(stats);
    return export_results(opt, stats.per_op);
  }
  std::cout << "machine: " << opt.cfg.summary() << "\n"
            << "batch:   " << batch->size() << " requests, "
            << pass_cfg.num_layers << " layers, " << pass->schedule().size()
            << " operator runs, mode=" << to_string(pass_cfg.mode) << "\n";
  if (!pass_cfg.serving.unconditional() || pass_cfg.serving.kv_share) {
    std::cout << "serving: admit=" << to_string(pass_cfg.serving.policy)
              << " kv-budget=";
    if (pass_cfg.serving.kv_budget_bytes == 0) {
      std::cout << "unlimited";
    } else {
      std::cout << pass_cfg.serving.kv_budget_bytes << "B";
    }
    std::cout << " (batch peak "
              << batch->total_peak_kv_bytes(pass_cfg.num_layers) << "B)"
              << " preempt=" << (pass_cfg.serving.preempt ? "on" : "off")
              << " kv-evict=" << to_string(pass_cfg.serving.kv_evict)
              << " kv-share=" << (pass_cfg.serving.kv_share ? "on" : "off")
              << "\n";
  }
  std::cout << "\n";

  const scenario::BatchStats stats = pass->run(0, opt.verbose);
  stats.print(std::cout);
  if (opt.print_energy) {
    estimate_energy(EnergyConfig{}, opt.cfg, stats.total).print(std::cout);
  }
  if (opt.print_counters) {
    stats.total.counters.print(std::cout, "  ");
  }
  return export_results(opt, stats.per_op);
}

int run(const CliOptions& opt) {
  if (opt.op == "batch") {
    return run_batch(opt);
  }
  const std::vector<Workload> workloads = build_workloads(opt);
  const PipelineResult pipeline =
      run_pipeline(opt.cfg, workloads, opt.verbose);

  std::cout << "machine: " << opt.cfg.summary() << "\n";
  for (const auto& r : pipeline.ops) {
    std::cout << "\n== " << r.name << " ==\n";
    r.stats.print(std::cout);
    if (opt.print_energy) {
      estimate_energy(EnergyConfig{}, opt.cfg, r.stats).print(std::cout);
    }
    if (opt.print_counters) {
      r.stats.counters.print(std::cout, "  ");
    }
  }
  if (pipeline.ops.size() > 1) {
    std::cout << "\npipeline total: " << pipeline.total_cycles()
              << " cycles (" << pipeline.total_seconds() * 1e3 << " ms simulated)\n";
  }

  return export_results(opt, pipeline.ops);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string_view> args(argv + 1, argv + argc);
  const ParseResult parsed = parse_cli_options(args);
  if (parsed.help_requested) {
    std::cout << cli_usage();
    return 0;
  }
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.error << "\n\n" << cli_usage();
    return 2;
  }
  try {
    return run(*parsed.options);
  } catch (const std::exception& e) {
    std::cerr << "simulation failed: " << e.what() << "\n";
    return 1;
  }
}
