#!/usr/bin/env bash
# Perf-regression gate over the self-benchmark (bench_selfperf). Compares a
# freshly produced BENCH JSON against the committed baseline.
#
#   tools/check_selfperf.sh <fresh.json> [baseline.json] [--strict]
#
# Checks, per scenario row:
#  - sim_cycles must match the baseline exactly. They are deterministic, so
#    a diff means engine *behavior* changed - fine for a correctness PR,
#    but the baseline must be regenerated in the same PR
#    (build/bench_selfperf --json=BENCH_selfperf.json). Under --strict a
#    cycle diff (or a scenario-set mismatch) fails the build: determinism
#    drift must never land silently.
#  - mcycles_per_sec more than TOLERANCE (default 30) percent below the
#    baseline is flagged as a possible slowdown. Speed stays a soft warning
#    even under --strict: wall-clock numbers on shared CI runners are too
#    noisy for a hard gate (docs/performance.md).
set -u

fresh="${1:?usage: check_selfperf.sh <fresh.json> [baseline.json] [--strict]}"
baseline="${2:-BENCH_selfperf.json}"
strict=0
for arg in "$@"; do
  [ "$arg" = "--strict" ] && strict=1
done
tolerance="${TOLERANCE:-30}"

if [ ! -f "$fresh" ]; then
  echo "check_selfperf: fresh results '$fresh' not found" >&2
  exit 1
fi
if [ ! -f "$baseline" ]; then
  echo "check_selfperf: baseline '$baseline' not found" >&2
  exit 1
fi

# The python pass prefixes determinism problems (cycle drift, scenario-set
# mismatch) with "HARD " and speed regressions with "soft "; --strict fails
# only on the former.
warnings=$(python3 - "$fresh" "$baseline" "$tolerance" <<'EOF'
import json, sys

fresh_path, base_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
fresh = {r["scenario"]: r for r in json.load(open(fresh_path))}
base = {r["scenario"]: r for r in json.load(open(base_path))}

for name, b in base.items():
    f = fresh.get(name)
    if f is None:
        print(f"HARD scenario '{name}' is in the baseline but missing from "
              f"the fresh run")
        continue
    if f["sim_cycles"] != b["sim_cycles"]:
        print(f"HARD {name}: sim_cycles {f['sim_cycles']} != baseline "
              f"{b['sim_cycles']} - engine behavior changed; regenerate "
              f"BENCH_selfperf.json in this PR")
    if b["mcycles_per_sec"] > 0:
        drop = 100.0 * (1.0 - f["mcycles_per_sec"] / b["mcycles_per_sec"])
        if drop > tol:
            print(f"soft {name}: {f['mcycles_per_sec']:.2f} Mcyc/s is "
                  f"{drop:.0f}% below the baseline "
                  f"{b['mcycles_per_sec']:.2f} (tolerance {tol:.0f}%)")
for name in fresh:
    if name not in base:
        print(f"HARD new scenario '{name}' has no baseline row - regenerate "
              f"BENCH_selfperf.json")
EOF
)

if [ -n "$warnings" ]; then
  echo "check_selfperf: WARNINGS vs $baseline"
  echo "$warnings" | sed 's/^/  /'
  if [ "$strict" = 1 ] && echo "$warnings" | grep -q '^HARD '; then
    echo "  (--strict: failing on determinism drift)"
    exit 1
  fi
  echo "  (soft gate: not failing the build)"
else
  echo "check_selfperf: $fresh matches $baseline (tolerance ${tolerance}%)"
fi
exit 0
