// llamcat_stress: db_stress-style randomized fuzzer over the
// continuous-serving engine. Each seed deterministically draws a full
// scenario (machine x batch x serving policy - scenario/fuzz.hpp), runs it
// twice through the invariant contract (scenario/invariants.hpp), and any
// violation prints the scenario plus a one-line replay command.
//
//   llamcat_stress                      # 200 runs from the default base seed
//   llamcat_stress --runs=1000          # longer sweep
//   llamcat_stress --jobs=4             # sweep across 4 worker threads
//   llamcat_stress --seed=42            # sweep base: seeds 42, 43, ...
//   llamcat_stress --replay=1337        # re-run exactly one failing seed
//   llamcat_stress --verbose            # print every scenario as it runs
//
// Every seed is an independent single-threaded simulation, so --jobs only
// changes wall-clock time: results land in seed-order slots and the output
// (and exit code) is identical for any job count.
//
// Exit code 0 = every run clean, 1 = at least one violation (the failing
// seeds are listed at the end), 2 = bad usage. docs/testing.md has the
// seed-pinning workflow (a failing seed becomes a regression test in
// tests/test_serving_fuzz.cpp).
#include <algorithm>
#include <charconv>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string_view>
#include <vector>

#include "scenario/fuzz.hpp"

namespace {

constexpr const char* kUsage = R"(usage: llamcat_stress [options]
  --runs=N     number of seeds to fuzz (default 200)
  --jobs=N     worker threads for the sweep; 0 = all cores (default 1);
               output is identical for any job count
  --seed=S     base seed; run i uses seed S+i (default 1)
  --replay=S   run exactly the one seed S (what a failure report suggests)
  --verbose    print every scenario, not just failures
  --help       this text
)";

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

struct Options {
  std::uint64_t runs = 200;
  std::uint64_t base_seed = 1;
  std::uint64_t jobs = 1;
  std::optional<std::uint64_t> replay;
  bool verbose = false;
};

void report(const llamcat::scenario::FuzzResult& r) {
  std::cerr << "FAIL seed " << r.seed << ": "
            << llamcat::scenario::draw_scenario(r.seed).summary() << "\n";
  for (const std::string& v : r.violations) {
    std::cerr << "  " << v << "\n";
  }
  std::cerr << "  replay: llamcat_stress --replay=" << r.seed << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](std::string_view prefix) {
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg.rfind("--runs=", 0) == 0) {
      const auto v = parse_u64(value("--runs="));
      if (!v || *v == 0) {
        std::cerr << "error: bad --runs\n" << kUsage;
        return 2;
      }
      opt.runs = *v;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const auto v = parse_u64(value("--jobs="));
      if (!v) {
        std::cerr << "error: bad --jobs\n" << kUsage;
        return 2;
      }
      opt.jobs = *v;
    } else if (arg.rfind("--seed=", 0) == 0) {
      const auto v = parse_u64(value("--seed="));
      if (!v) {
        std::cerr << "error: bad --seed\n" << kUsage;
        return 2;
      }
      opt.base_seed = *v;
    } else if (arg.rfind("--replay=", 0) == 0) {
      const auto v = parse_u64(value("--replay="));
      if (!v) {
        std::cerr << "error: bad --replay\n" << kUsage;
        return 2;
      }
      opt.replay = *v;
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    }
  }

  if (opt.replay) {
    const auto sc = llamcat::scenario::draw_scenario(*opt.replay);
    std::cout << "replaying seed " << *opt.replay << ": " << sc.summary()
              << "\n";
    const auto r = llamcat::scenario::run_fuzz_seed(*opt.replay);
    if (!r.ok()) {
      report(r);
      return 1;
    }
    std::cout << "seed " << *opt.replay << " clean\n";
    return 0;
  }

  // The sweep runs in chunks of 50 seeds (the heartbeat cadence): each
  // chunk fans out across --jobs worker threads into seed-order slots, then
  // reports serially, so the output stream is identical for any job count.
  constexpr std::uint64_t kChunk = 50;
  std::vector<std::uint64_t> failing;
  for (std::uint64_t done = 0; done < opt.runs; done += kChunk) {
    const std::uint64_t n = std::min(kChunk, opt.runs - done);
    const auto results = llamcat::scenario::run_fuzz_sweep(
        opt.base_seed + done, n, opt.jobs);
    for (const auto& r : results) {
      if (opt.verbose) {
        std::cout << "seed " << r.seed << ": "
                  << llamcat::scenario::draw_scenario(r.seed).summary()
                  << "\n";
      }
      if (!r.ok()) {
        report(r);
        failing.push_back(r.seed);
      }
    }
    if (!opt.verbose && (done + n) % kChunk == 0) {
      std::cout << (done + n) << "/" << opt.runs << " seeds fuzzed, "
                << failing.size() << " failing\n";
    }
  }
  if (!failing.empty()) {
    std::cerr << failing.size() << "/" << opt.runs << " seeds FAILED:";
    for (const std::uint64_t s : failing) std::cerr << " " << s;
    std::cerr << "\nreplay one with: llamcat_stress --replay=<seed>\n";
    return 1;
  }
  std::cout << "all " << opt.runs << " seeds clean (base seed "
            << opt.base_seed << ")\n";
  return 0;
}
