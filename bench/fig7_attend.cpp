// Extension figure: the Fig 7 policy comparison repeated on the Attend
// operator (S.V) - the other half of the decode attention step. The paper
// evaluates Logit only and argues broad applicability from operator-shape
// variety (§6.2.2); Attend reads the same V volume as Logit reads K but
// streams S instead of broadcasting Q, so GQA sharing is still present on
// the V side.
#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("Extension: policy speedups on the Attend operator (S.V)");

  const std::vector<std::uint64_t> seqs =
      quick_scale() ? std::vector<std::uint64_t>{1024, 2048}
                    : std::vector<std::uint64_t>{4096, 8192, 16384};

  const std::vector<NamedPolicy> policies = {
      {"unopt", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"dyncta", ThrottlePolicy::kDyncta, ArbPolicy::kFcfs},
      {"lcs", ThrottlePolicy::kLcs, ArbPolicy::kFcfs},
      {"dynmg", ThrottlePolicy::kDynMg, ArbPolicy::kFcfs},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };

  for (const std::string model_name : {"70b", "405b"}) {
    const ModelShape model = model_by_name(model_name);
    std::vector<ExperimentSpec> specs;
    for (const auto& p : policies) {
      for (const std::uint64_t L : seqs) {
        SimConfig cfg = with_policies(
            mha_bound_config(), p.thr, p.arb);
        specs.push_back({p.name + "/" + std::to_string(L), cfg,
                         Workload::attend(model, L, cfg)});
      }
    }
    const auto results = run_experiments(specs, 0, /*verbose=*/true);

    TextTable t("Attend, llama3-" + model_name +
                ": speedup vs unoptimized (MHA-bound regime)");
    std::vector<std::string> head{"policy"};
    for (const std::uint64_t L : seqs) head.push_back(seq_label(L));
    head.push_back("geomean");
    t.set_header(head);
    for (std::size_t p = 1; p < policies.size(); ++p) {
      std::vector<std::string> row{policies[p].name};
      std::vector<double> acc;
      for (std::size_t s = 0; s < seqs.size(); ++s) {
        const double sp = results[p * seqs.size() + s].stats.speedup_vs(
            results[s].stats);
        acc.push_back(sp);
        row.push_back(TextTable::num(sp));
      }
      row.push_back(TextTable::num(geomean(acc)));
      t.add_row(row);
    }
    t.print(std::cout);
  }

  std::cout << "\nexpected: the same qualitative picture as Fig 7 - "
               "baseline throttling\npolicies sit at or below 1.0, BMA adds "
               "a mid-single-digit gain on top of\ndynmg - validating the "
               "paper's broad-applicability argument beyond the\nLogit "
               "operator it reports.\n";
  return 0;
}
