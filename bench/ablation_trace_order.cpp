// Ablation: thread-block trace order (the dataflow dimension of the hybrid
// framework, paper Fig 6). The same Logit operator lowered in different
// loop orders stresses completely different parts of the memory system:
//   kHGL - per-head streaming: each core sweeps L for one (h,g); K-line
//          reuse distance is a full L sweep (capacity pressure).
//   kHLG - wave order: the G thread blocks sharing one KV tile are
//          adjacent (GQA merge locality).
//   kLHG - tile-major: all (h,g) of one l-tile are adjacent; K reuse is
//          intra-core across g (short reuse distance).
// Run under the Fig 9 capacity-pressure machine (static dispatch, 16 MB).
#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("Ablation: trace order x policy under capacity pressure");

  const std::uint64_t L = quick_scale() ? 4096 : 16384;
  const ModelShape model = ModelShape::llama3_70b();

  const std::vector<NamedPolicy> policies = {
      {"unopt", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"dyncta", ThrottlePolicy::kDyncta, ArbPolicy::kFcfs},
      {"dynmg", ThrottlePolicy::kDynMg, ArbPolicy::kFcfs},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };
  const TbOrder orders[] = {TbOrder::kHGL, TbOrder::kHLG, TbOrder::kLHG};

  std::vector<ExperimentSpec> specs;
  for (const TbOrder order : orders) {
    for (const auto& p : policies) {
      SimConfig cfg = with_policies(base_config(/*llc_mb=*/16), p.thr, p.arb);
      Workload wl = Workload::logit(model, L, cfg);
      wl.mapping.order = order;
      specs.push_back(ExperimentSpec{
          to_string(order) + "/" + p.name, cfg, std::move(wl)});
    }
  }
  const auto results = run_experiments(specs, 0, /*verbose=*/true);

  std::size_t k = 0;
  for (const TbOrder order : orders) {
    TextTable t("order " + to_string(order) + " (llama3-70b " +
                seq_label(L) + ", 16MB, static dispatch)");
    t.set_header({"policy", "speedup vs unopt", "mshr_hit_rate",
                  "l2_hit_rate", "dram_reads", "t_cs"});
    const SimStats& base = results[k].stats;
    for (const auto& p : policies) {
      const SimStats& s = results[k++].stats;
      t.add_row({p.name, TextTable::num(s.speedup_vs(base)),
                 TextTable::num(s.mshr_hit_rate),
                 TextTable::num(s.l2_hit_rate),
                 std::to_string(s.dram_reads), TextTable::num(s.t_cs)});
    }
    t.print(std::cout);
  }
  return 0;
}
