// Ablation (beyond the paper's figures, motivated by §2.4): how MSHR
// numEntry / numTarget sizing moves the miss-handling-throughput bottleneck,
// and the §3.3 claim that the gains hold under both request-response
// arbitration policies.
#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("Ablation: MSHR dimensions + request-response arbitration");

  const std::uint64_t L = quick_scale() ? 1024 : 4096;
  const ModelShape model = ModelShape::llama3_70b();

  {
    std::vector<ExperimentSpec> specs;
    const std::vector<std::uint32_t> entries = {2, 4, 6, 12, 24};
    for (std::uint32_t e : entries) {
      SimConfig cfg = base_config();
      cfg.llc.mshr_entries = e;
      specs.push_back(ExperimentSpec{"entries=" + std::to_string(e), cfg,
                                     Workload::logit(model, L, cfg)});
    }
    const auto res = run_experiments(specs, 0, true);
    TextTable t("numEntry sweep (numTarget=8, unoptimized, llama3-70b " +
                seq_label(L) + ") - entries gate DRAM bandwidth (§2.4)");
    t.set_header({"entries/slice", "cycles", "dram_bw(GB/s)", "t_cs",
                  "mshr_entry_util"});
    for (std::size_t i = 0; i < res.size(); ++i) {
      const SimStats& s = res[i].stats;
      t.add_row({std::to_string(entries[i]), std::to_string(s.cycles),
                 TextTable::num(s.dram_bw_gbps, 1), TextTable::num(s.t_cs),
                 TextTable::num(s.mshr_entry_util)});
    }
    t.print(std::cout);
  }

  {
    std::vector<ExperimentSpec> specs;
    const std::vector<std::uint32_t> targets = {2, 4, 8, 16};
    for (std::uint32_t tg : targets) {
      SimConfig cfg = base_config();
      cfg.llc.mshr_targets = tg;
      specs.push_back(ExperimentSpec{"targets=" + std::to_string(tg), cfg,
                                     Workload::logit(model, L, cfg)});
    }
    const auto res = run_experiments(specs, 0, true);
    TextTable t("numTarget sweep (numEntry=6) - target exhaustion stalls");
    t.set_header({"targets/entry", "cycles", "stall_target", "mshr_hit_rate"});
    for (std::size_t i = 0; i < res.size(); ++i) {
      const SimStats& s = res[i].stats;
      t.add_row({std::to_string(targets[i]), std::to_string(s.cycles),
                 std::to_string(s.counters.get("llc.stall_target")),
                 TextTable::num(s.mshr_hit_rate)});
    }
    t.print(std::cout);
  }

  {
    // §3.3: "our proposed architectural enhancements yield similar
    // performance gains under both request-response arbitration policies."
    std::vector<ExperimentSpec> specs;
    for (RespArbPolicy resp :
         {RespArbPolicy::kResponseFirst, RespArbPolicy::kRequestFirst}) {
      for (const auto& [name, thr, arb] : std::vector<NamedPolicy>{
               {"unopt", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
               {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma}}) {
        SimConfig cfg = with_policies(base_config(), thr, arb, resp);
        specs.push_back(ExperimentSpec{to_string(resp) + "/" + name, cfg,
                                       Workload::logit(model, L, cfg)});
      }
    }
    const auto res = run_experiments(specs, 0, true);
    TextTable t("request-response arbitration (§3.3): gain similarity");
    t.set_header({"resp-arb", "unopt cycles", "dynmg+BMA cycles", "speedup"});
    for (int i = 0; i < 2; ++i) {
      const SimStats& u = res[static_cast<std::size_t>(2 * i)].stats;
      const SimStats& o = res[static_cast<std::size_t>(2 * i + 1)].stats;
      t.add_row({i == 0 ? "response-first" : "request-first",
                 std::to_string(u.cycles), std::to_string(o.cycles),
                 TextTable::num(o.speedup_vs(u))});
    }
    t.print(std::cout);
  }
  return 0;
}
