// Reproduces paper Figure 9: cache-size sensitivity with long sequences.
// All policies at LLC = 16/32/64 MB, normalized against unoptimized@32MB.
// Paper: 32K sequences for both models; default scale runs llama3-70b at
// 16K (the working-set-overflow regime starts there), LLAMCAT_PAPER_SCALE=1
// runs the full 32K on both models.
#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("Figure 9: throttling/arbitration under cache-size pressure");

  const std::uint64_t L =
      quick_scale() ? 4096 : (paper_scale() ? 32768 : 16384);
  const std::vector<std::string> models =
      paper_scale() ? std::vector<std::string>{"70b", "405b"}
                    : std::vector<std::string>{"70b"};
  const std::vector<std::uint64_t> cache_mb = {16, 32, 64};

  const std::vector<NamedPolicy> policies = {
      {"unopt", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"dyncta", ThrottlePolicy::kDyncta, ArbPolicy::kFcfs},
      {"lcs", ThrottlePolicy::kLcs, ArbPolicy::kFcfs},
      {"cobrra", ThrottlePolicy::kNone, ArbPolicy::kCobrra},
      {"dynmg", ThrottlePolicy::kDynMg, ArbPolicy::kFcfs},
      {"dynmg+cobrra", ThrottlePolicy::kDynMg, ArbPolicy::kCobrra},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };

  for (const auto& model_name : models) {
    const ModelShape model = model_by_name(model_name);
    // One grid per cache size (policies x 1 seq).
    std::vector<std::vector<std::vector<SimStats>>> per_cache;
    per_cache.reserve(cache_mb.size());
    for (std::uint64_t mb : cache_mb) {
      per_cache.push_back(run_grid(model, {L}, policies, mb));
    }
    // The paper's "unoptimized demands larger caches" curve appears when
    // the dataflow streams K per (h,g) over the full sequence (HGL order:
    // K-line reuse distance = one L sweep), which overflows 16MB long
    // before 64MB. Our default static dataflow (LHG) keeps per-core
    // working sets compact, so we reproduce that curve separately here.
    std::vector<ExperimentSpec> hgl_specs;
    for (std::uint64_t mb : cache_mb) {
      SimConfig cfg = base_config(mb);
      Workload wl = Workload::logit(model, L, cfg);
      wl.mapping.order = TbOrder::kHGL;
      hgl_specs.push_back({"hgl-unopt/" + std::to_string(mb) + "MB", cfg,
                           std::move(wl)});
    }
    const auto hgl = run_experiments(hgl_specs, 0, /*verbose=*/true);
    const SimStats& norm = per_cache[1][0][0];  // unoptimized @ 32MB

    TextTable t("Fig 9(" + std::string(model_name == "70b" ? "a" : "b") +
                ") llama3-" + model_name + ", L=" + seq_label(L) +
                ": speedup normalized against unoptimized@32MB");
    t.set_header({"policy", "16MB", "32MB", "64MB"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
      std::vector<std::string> row{policies[p].name};
      for (std::size_t c = 0; c < cache_mb.size(); ++c) {
        row.push_back(TextTable::num(per_cache[c][p][0].speedup_vs(norm)));
      }
      t.add_row(row);
    }
    // The unoptimized row itself (cache sensitivity of the baseline).
    std::vector<std::string> urow{"(unopt, for reference)"};
    for (std::size_t c = 0; c < cache_mb.size(); ++c) {
      urow.push_back(TextTable::num(per_cache[c][0][0].speedup_vs(norm)));
    }
    t.add_row(urow);
    t.print(std::cout);

    TextTable reads("DRAM reads (locality view; compulsory floor is "
                    "policy-independent)");
    reads.set_header({"policy", "16MB", "32MB", "64MB"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
      std::vector<std::string> row{policies[p].name};
      for (std::size_t c = 0; c < cache_mb.size(); ++c) {
        row.push_back(std::to_string(per_cache[c][p][0].dram_reads));
      }
      reads.add_row(row);
    }
    reads.print(std::cout);

    TextTable sens("unoptimized cache-size sensitivity, K-streaming (HGL) "
                   "dataflow (normalized against 32MB)");
    sens.set_header({"metric", "16MB", "32MB", "64MB"});
    std::vector<std::string> srow{"speedup"};
    std::vector<std::string> rrow{"dram_reads"};
    for (std::size_t c = 0; c < cache_mb.size(); ++c) {
      srow.push_back(TextTable::num(hgl[c].stats.speedup_vs(hgl[1].stats)));
      rrow.push_back(std::to_string(hgl[c].stats.dram_reads));
    }
    sens.add_row(srow);
    sens.add_row(rrow);
    sens.print(std::cout);
  }

  std::cout << "\npaper reference (Fig 9 @32K): unoptimized degrades "
               "dramatically as the cache\nshrinks while dynmg-based "
               "policies nearly saturate at 16MB; at 32MB dynmg+BMA\n"
               "reaches 1.50-1.66x over unoptimized and ~1.26x over the "
               "best baseline (dyncta).\n";
  return 0;
}
