// Ablation: open-loop saturation sweep - how much load can the chip
// sustain before the serving knobs stop saving the tail?
//
// Every other ablation replays a fixed, hand-picked batch. This one drives
// the seeded traffic generator (scenario/traffic.hpp) through the sweep
// driver (scenario/sweep.hpp): the same Poisson workload is replayed at a
// ladder of offered loads (descending mean inter-arrival gap), per serving
// stack, producing the classic saturation curves -
//
//  - throughput vs offered load: rises with load, then plateaus at the
//    machine's service capacity (the knee);
//  - P99 TTFT / end-to-end latency vs offered load: flat while the machine
//    keeps up, then explodes past the knee as the queue builds;
//  - SLO goodput (tokens/s of requests whose TTFT met the SLO): tracks
//    throughput below the knee, collapses above it;
//  - max-sustainable load per stack: the densest arrival rate whose P99
//    TTFT still meets the SLO.
//
// The point of charting whole curves instead of one load: the policy
// ordering FLIPS across the knee. Below it, unconditional admission (none)
// matches or beats the budgeted stacks - there is nothing to queue, and a
// budget can only delay. Past it, the budgeted + preempting stack keeps
// admitting short requests through the backlog, so its SLO goodput holds
// while `none` lets every co-resident stream contend at once and drags the
// tail down with the makespan.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "scenario/sweep.hpp"

using namespace llamcat;
using namespace llamcat::bench;
using scenario::AdmitPolicy;
using scenario::DecodePassConfig;
using scenario::ExecutionMode;
using scenario::RequestBatch;
using scenario::SweepConfig;
using scenario::SweepPoint;
using scenario::TrafficConfig;
using scenario::TrafficDist;
using scenario::TrafficProcess;

namespace {

SimConfig contention_config(ThrottlePolicy thr, ArbPolicy arb) {
  // Same scaled-down machine as the admission ablation: a small LLC and few
  // channels so co-resident KV streams genuinely contend.
  SimConfig cfg = with_policies(SimConfig::table5(), thr, arb);
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 500'000'000;
  return cfg;
}

ModelShape bench_model() { return ModelShape::llama3_70b(); }

struct ServingVariant {
  std::string name;
  AdmitPolicy policy;
  bool budgeted;
  bool preempt;
};

const std::vector<ServingVariant>& variants() {
  static const std::vector<ServingVariant> v = {
      {"none", AdmitPolicy::kNone, false, false},
      {"fcfs", AdmitPolicy::kFcfs, true, false},
      {"srf+pre", AdmitPolicy::kShortestRemaining, true, true},
  };
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Ablation: open-loop saturation sweep (traffic -> knee)");
  JsonRows json;

  const std::uint32_t layers = quick_scale() ? 1 : 2;
  const std::uint32_t n_requests = quick_scale() ? 6 : 12;

  // The workload shape is fixed across the whole bench: only the arrival
  // clock (the gap ladder) and the serving stack vary, so any two rows
  // differ by exactly one knob.
  TrafficConfig traffic;
  traffic.num_requests = n_requests;
  traffic.seed = 7;
  traffic.process = TrafficProcess::kPoisson;
  traffic.seq_dist = TrafficDist::kLognormal;
  traffic.seq_min = quick_scale() ? 128 : 256;
  traffic.seq_max = quick_scale() ? 512 : 1024;
  traffic.seq_sigma = 0.6;
  traffic.steps_min = 1;
  traffic.steps_max = 2;

  // Offered-load axis, descending gap = rising load. A request's service
  // time on this scaled-down machine is a few million cycles, so the top of
  // the ladder (8M) leaves the machine idle between arrivals; the bottom
  // lands the whole batch near-simultaneously - well past the knee.
  std::vector<Cycle> gaps = {8'000'000, 2'000'000, 500'000, 125'000, 30'000};
  if (quick_scale()) gaps = {8'000'000, 500'000, 30'000};

  std::vector<NamedPolicy> policies = {
      {"unopt+fcfs", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };
  if (quick_scale()) {
    policies = {{"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma}};
  }

  // Budget and SLO derive from the workload so --quick stays proportioned:
  // the budget fits roughly a third of the batch's peak KV at once, and the
  // SLO is a mid-ladder gap (loose when the machine idles, hopeless when
  // the whole batch lands at once).
  const RequestBatch probe(bench_model(),
                           scenario::generate_traffic([&] {
                             TrafficConfig t = traffic;
                             t.mean_gap = gaps.front();
                             return t;
                           }()));
  const std::uint64_t budget = probe.total_peak_kv_bytes(layers) / 3;
  const Cycle slo_ttft = 100'000;

  SweepConfig sweep;
  sweep.traffic = traffic;
  sweep.gaps = gaps;
  sweep.slo_ttft_cycles = slo_ttft;

  struct Curve {
    const NamedPolicy* p;
    const ServingVariant* v;
    std::vector<SweepPoint> points;
  };
  std::vector<Curve> curves;
  for (const NamedPolicy& p : policies) {
    for (const ServingVariant& v : variants()) curves.push_back({&p, &v, {}});
  }
  // Each curve runs its ladder serially (the points of one curve share
  // nothing); the curves fan out across the pool. Flattening to per-point
  // tasks would also work - curves are few and similar-sized, so this
  // keeps the code flat without losing wall-clock.
  const auto all_points =
      run_points_parallel(curves.size(), [&](std::size_t i) {
        DecodePassConfig pc;
        pc.num_layers = layers;
        pc.include_gemv = false;
        pc.mode = ExecutionMode::kContinuous;
        pc.serving.policy = curves[i].v->policy;
        pc.serving.kv_budget_bytes = curves[i].v->budgeted ? budget : 0;
        pc.serving.preempt = curves[i].v->preempt;
        return run_load_sweep(
            bench_model(),
            contention_config(curves[i].p->thr, curves[i].p->arb), pc, sweep,
            /*jobs=*/1);
      });
  for (std::size_t i = 0; i < curves.size(); ++i) {
    curves[i].points = all_points[i];
  }

  TextTable t("saturation curves: " + std::to_string(n_requests) +
              " Poisson requests, seq LN[" + std::to_string(traffic.seq_min) +
              "," + std::to_string(traffic.seq_max) + "], KV budget = peak/3, "
              "TTFT SLO = " + std::to_string(slo_ttft));
  t.set_header({"policy", "admit", "gap", "offered q/s", "tput t/s",
                "goodput t/s", "p99 ttft", "p99 tbt", "p99 lat", "slo ok",
                "pre"});
  for (const Curve& c : curves) {
    for (const SweepPoint& pt : c.points) {
      t.add_row({c.p->name, c.v->name, std::to_string(pt.mean_gap),
                 TextTable::num(pt.offered_qps),
                 TextTable::num(pt.throughput_tps),
                 TextTable::num(pt.goodput_tps), std::to_string(pt.p99_ttft),
                 std::to_string(pt.p99_tbt), std::to_string(pt.p99_latency),
                 std::to_string(pt.slo.attained) + "/" +
                     std::to_string(pt.slo.finished),
                 std::to_string(pt.preemptions)});
      json.begin_row()
          .field("bench", "ablation_saturation")
          .field("policy", c.p->name)
          .field("admit", c.v->name)
          .field("kv_budget", c.v->budgeted ? budget : 0)
          .field("mean_gap", pt.mean_gap)
          .field("offered_qps", pt.offered_qps)
          .field("throughput_tps", pt.throughput_tps)
          .field("goodput_tps", pt.goodput_tps)
          .field("makespan", pt.makespan)
          .field("p50_latency", pt.p50_latency)
          .field("p99_latency", pt.p99_latency)
          .field("p50_ttft", pt.p50_ttft)
          .field("p99_ttft", pt.p99_ttft)
          .field("p50_tbt", pt.p50_tbt)
          .field("p99_tbt", pt.p99_tbt)
          .field("slo_attained", pt.slo.attained)
          .field("slo_violated", pt.slo.violated)
          .field("preemptions", pt.preemptions)
          .field("queue_wait", pt.queue_wait);
    }
    const std::size_t best =
        scenario::max_sustainable_index(c.points, slo_ttft);
    json.begin_row()
        .field("bench", "ablation_saturation_sustainable")
        .field("policy", c.p->name)
        .field("admit", c.v->name)
        .field("max_sustainable_qps",
               best < c.points.size() ? c.points[best].offered_qps : 0.0)
        .field("max_sustainable_gap",
               best < c.points.size() ? c.points[best].mean_gap : 0);
  }
  t.print(std::cout);

  std::cout << "\nReading the curves: throughput climbs with offered load "
               "and flattens at the service\ncapacity (the knee); past it "
               "P99 TTFT and latency explode as the queue builds.\nBelow "
               "the knee `none` matches the budgeted stacks (nothing to "
               "queue); past it the\nbudgeted+preempting stack holds its "
               "SLO goodput while unconditional admission\nlets every "
               "stream contend at once - the ordering flip is the reason "
               "to chart\nwhole curves instead of benchmarking one load.\n";
  return json.write_if_requested(argc, argv) ? 0 : 1;
}
