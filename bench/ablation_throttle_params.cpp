// Ablation: dynmg controller parameters (paper Tables 2-4 are swept
// optima; this bench is the sweep, run in the regime where the gear
// engages - capacity pressure, Fig 9's machine).
//
//   part 1: in-core C_mem thresholds (Table 4 degree dimension)
//   part 2: gear ceiling (Table 1/2 spatial dimension)
//   part 3: Table 3 contention bands - shows why the shipped bands are
//           re-swept upward from the paper's 0.1/0.2/0.375: with the
//           paper's bands the gear would also engage in the miss-handling-
//           bound regime (wave dispatch), where throttling costs
//           performance because bandwidth is MSHR-concurrency-limited.
#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

namespace {

struct ParamPoint {
  std::string name;
  std::uint32_t c_mem_upper;
  std::uint32_t c_mem_lower;
};

}  // namespace

int main() {
  print_header("Ablation: dynmg throttle parameters");

  const std::uint64_t L = quick_scale() ? 4096 : 16384;
  const ModelShape model = ModelShape::llama3_70b();

  // --- part 1: in-core C_mem window (capacity regime) ---------------------
  const std::vector<ParamPoint> points = {
      {"paper(250/180)", 250, 180},
      {"300/220", 300, 220},
      {"350/300", 350, 300},
      {"inert(398/390)", 398, 390},
  };

  std::vector<ExperimentSpec> specs;
  {
    SimConfig cfg = base_config();
    specs.push_back({"unopt", cfg, Workload::logit(model, L, cfg)});
  }
  for (const auto& p : points) {
    SimConfig cfg = with_policies(base_config(), ThrottlePolicy::kDynMg,
                                  ArbPolicy::kFcfs);
    cfg.throttle.c_mem_upper = p.c_mem_upper;
    cfg.throttle.c_mem_lower = p.c_mem_lower;
    specs.push_back({p.name, cfg, Workload::logit(model, L, cfg)});
  }
  const auto results = run_experiments(specs, 0, /*verbose=*/true);

  TextTable t("dynmg in-core C_mem thresholds (llama3-70b " + seq_label(L) +
              ", 16MB, capacity regime)");
  t.set_header({"c_mem hi/lo", "speedup", "mshr_hit_rate", "l2_hit_rate",
                "t_cs"});
  for (std::size_t i = 1; i < results.size(); ++i) {
    const SimStats& s = results[i].stats;
    t.add_row({results[i].name, TextTable::num(s.speedup_vs(results[0].stats)),
               TextTable::num(s.mshr_hit_rate), TextTable::num(s.l2_hit_rate),
               TextTable::num(s.t_cs)});
  }
  t.print(std::cout);

  // --- part 2: gear ceiling ------------------------------------------------
  std::vector<ExperimentSpec> gear_specs;
  for (std::uint32_t max_gear : {0u, 1u, 2u, 3u, 4u}) {
    SimConfig cfg = with_policies(base_config(), ThrottlePolicy::kDynMg,
                                  ArbPolicy::kFcfs);
    cfg.throttle.max_gear = max_gear;
    gear_specs.push_back({"max_gear=" + std::to_string(max_gear), cfg,
                          Workload::logit(model, L, cfg)});
  }
  const auto gear_results = run_experiments(gear_specs, 0, /*verbose=*/true);

  TextTable tg("dynmg gear ceiling (Table 2 spatial optimum: gear 4)");
  tg.set_header({"config", "speedup", "mshr_hit_rate", "t_cs"});
  for (const auto& r : gear_results) {
    tg.add_row({r.name, TextTable::num(r.stats.speedup_vs(results[0].stats)),
                TextTable::num(r.stats.mshr_hit_rate),
                TextTable::num(r.stats.t_cs)});
  }
  tg.print(std::cout);

  // --- part 3: Table 3 bands in the miss-handling-bound regime -------------
  const std::uint64_t L_wave = quick_scale() ? 2048 : 8192;
  std::vector<ExperimentSpec> band_specs;
  {
    SimConfig cfg = mha_bound_config();
    band_specs.push_back(
        {"wave/unopt", cfg, Workload::logit(model, L_wave, cfg)});
  }
  {
    SimConfig cfg = with_policies(mha_bound_config(), ThrottlePolicy::kDynMg,
                                  ArbPolicy::kFcfs);
    band_specs.push_back(
        {"wave/dynmg(re-swept)", cfg, Workload::logit(model, L_wave, cfg)});
  }
  {
    SimConfig cfg = with_policies(mha_bound_config(), ThrottlePolicy::kDynMg,
                                  ArbPolicy::kFcfs);
    cfg.throttle.tcs_low = 0.1;
    cfg.throttle.tcs_normal = 0.2;
    cfg.throttle.tcs_high = 0.375;
    band_specs.push_back(
        {"wave/dynmg(paper bands)", cfg, Workload::logit(model, L_wave, cfg)});
  }
  const auto band_results = run_experiments(band_specs, 0, /*verbose=*/true);

  TextTable tb("Table 3 bands, miss-handling-bound regime (llama3-70b " +
               seq_label(L_wave) + ", wave dispatch)");
  tb.set_header({"config", "speedup vs unopt", "mshr_hit_rate", "t_cs"});
  for (const auto& r : band_results) {
    tb.add_row({r.name,
                TextTable::num(r.stats.speedup_vs(band_results[0].stats)),
                TextTable::num(r.stats.mshr_hit_rate),
                TextTable::num(r.stats.t_cs)});
  }
  tb.print(std::cout);

  std::cout << "\nexpected: part 1 - the paper's 250/180 window is the "
               "optimum; part 2 -\nhigher gear ceilings monotonically help "
               "under capacity pressure; part 3 -\nthe paper's bands would "
               "engage the gear where throttling only hurts, the\nre-swept "
               "bands keep it parked.\n";
  return 0;
}
