// Ablation: LLC replacement / insertion policy under both of the paper's
// regimes. The paper fixes LRU + MRU-insert for the LLC (Table 5); this
// bench checks how much that choice matters relative to the arbitration
// and throttling policies the paper studies (expected: little in the
// MHA-bound regime - locality there lives in the MSHRs - and visibly more
// under capacity pressure).
#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("Ablation: LLC replacement policies");

  const ModelShape model = ModelShape::llama3_70b();

  struct Case {
    std::string name;
    ReplPolicy repl;
    InsertPolicy insert;
  };
  const std::vector<Case> cases = {
      {"lru/mru (paper)", ReplPolicy::kLru, InsertPolicy::kMru},
      {"lru/streaming", ReplPolicy::kLru, InsertPolicy::kStreaming},
      {"tree-plru/mru", ReplPolicy::kTreePlru, InsertPolicy::kMru},
      {"srrip/mru", ReplPolicy::kSrrip, InsertPolicy::kMru},
      {"srrip/streaming", ReplPolicy::kSrrip, InsertPolicy::kStreaming},
      {"fifo", ReplPolicy::kFifo, InsertPolicy::kMru},
      {"random", ReplPolicy::kRandom, InsertPolicy::kMru},
  };

  struct Regime {
    std::string name;
    SimConfig cfg;
    std::uint64_t L;
  };
  const std::uint64_t L_mha = quick_scale() ? 2048 : 8192;
  const std::uint64_t L_cap = quick_scale() ? 4096 : 16384;
  const std::vector<Regime> regimes = {
      {"MHA-bound (wave, " + seq_label(L_mha) + ")", mha_bound_config(),
       L_mha},
      {"capacity (static, " + seq_label(L_cap) + ")", base_config(), L_cap},
  };

  for (const auto& regime : regimes) {
    std::vector<ExperimentSpec> specs;
    for (const auto& c : cases) {
      SimConfig cfg = regime.cfg;
      cfg.llc.repl = c.repl;
      cfg.llc.insert = c.insert;
      specs.push_back({c.name, cfg, Workload::logit(model, regime.L, cfg)});
    }
    const auto results = run_experiments(specs, 0, /*verbose=*/true);

    TextTable t("replacement policies, " + regime.name);
    t.set_header({"policy", "speedup vs paper", "l2_hit_rate",
                  "mshr_hit_rate", "dram_reads"});
    for (const auto& r : results) {
      t.add_row({r.name, TextTable::num(r.stats.speedup_vs(results[0].stats)),
                 TextTable::num(r.stats.l2_hit_rate),
                 TextTable::num(r.stats.mshr_hit_rate),
                 std::to_string(r.stats.dram_reads)});
    }
    t.print(std::cout);
  }
  return 0;
}
