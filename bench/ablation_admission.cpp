// Ablation: serving-policy layer - KV-pressure-aware admission + preemption.
//
// The raw continuous engine (--admit-policy=none) admits every arrival
// unconditionally, so a staggered batch's aggregate KV working set can
// exceed any machine budget and every co-resident stream contends at once.
// This bench compares the serving policies on one staggered, skewed-arrival
// batch (one long-context request decoding from cycle 0, short requests
// landing while it runs):
//
//  - none:        unconditional admission (the PR 3 baseline),
//  - fcfs:        KV-budgeted queue drained in arrival order,
//  - srf:         KV-budgeted queue drained shortest-remaining-first,
//  - fcfs+pre / srf+pre: the same with stage-boundary preemption (a running
//    request yields to a much-shorter co-runner; its KV stays resident).
//
// Reported per variant: makespan, mean/P50/P99 latency, total queue wait,
// preemption count and the admission order - the JSON rows carry all of it
// so CI archives (a) how a finite budget changes the admission schedule vs
// `none` and (b) the P99/makespan effect of SRF and preemption vs FCFS.
//
// A second table isolates the queue discipline in the serialization regime
// (budget = one request at a time): SRF jumps short requests past a long
// head-of-line request, trading the single long job's tail for the batch's
// median - the classic SJF tradeoff, now measurable per cache policy.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "scenario/scenario.hpp"

using namespace llamcat;
using namespace llamcat::bench;
using scenario::AdmitPolicy;
using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::ExecutionMode;
using scenario::RequestBatch;
using scenario::RequestSpec;

namespace {

SimConfig contention_config(ThrottlePolicy thr, ArbPolicy arb) {
  // Same scaled-down machine as ablation_continuous: a small LLC and few
  // channels so co-resident KV streams genuinely contend.
  SimConfig cfg = with_policies(SimConfig::table5(), thr, arb);
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 200'000'000;
  return cfg;
}

// Unlike the co-schedule/continuous ablations, this bench keeps the full
// llama3-70b head count: the serving policies matter exactly when one
// long-context KV stream can saturate the scaled-down memory system (the
// contention-dominated regime), and the scaled-down model shape is too
// light to reach it.
ModelShape bench_model() { return ModelShape::llama3_70b(); }

struct ServingVariant {
  std::string name;
  AdmitPolicy policy;
  bool budgeted;
  bool preempt;
};

const std::vector<ServingVariant>& variants() {
  static const std::vector<ServingVariant> v = {
      {"none", AdmitPolicy::kNone, false, false},
      {"fcfs", AdmitPolicy::kFcfs, true, false},
      {"srf", AdmitPolicy::kShortestRemaining, true, false},
      {"fcfs+pre", AdmitPolicy::kFcfs, true, true},
      {"srf+pre", AdmitPolicy::kShortestRemaining, true, true},
  };
  return v;
}

BatchStats run_variant(const RequestBatch& batch, const SimConfig& cfg,
                       std::uint32_t layers, const ServingVariant& v,
                       std::uint64_t budget_bytes) {
  DecodePassConfig pc;
  pc.num_layers = layers;
  pc.include_gemv = false;
  pc.mode = ExecutionMode::kContinuous;
  pc.serving.policy = v.policy;
  pc.serving.kv_budget_bytes = v.budgeted ? budget_bytes : 0;
  pc.serving.preempt = v.preempt;
  return DecodePass(batch, pc, cfg).run();
}

/// Request ids sorted by admission time: "0>2>1" means request 1 was held
/// back past request 2 - the budget visibly reordered the schedule.
std::string admit_order(const BatchStats& s) {
  std::vector<const scenario::RequestStats*> rs;
  for (const scenario::RequestStats& r : s.per_request) rs.push_back(&r);
  std::stable_sort(rs.begin(), rs.end(),
                   [](const scenario::RequestStats* a,
                      const scenario::RequestStats* b) {
                     return a->admit_cycle < b->admit_cycle;
                   });
  std::string out;
  for (const scenario::RequestStats* r : rs) {
    if (!out.empty()) out += '>';
    out += std::to_string(r->id);
  }
  return out;
}

double mean_latency(const BatchStats& s) {
  double sum = 0.0;
  for (const scenario::RequestStats& r : s.per_request) {
    sum += static_cast<double>(r.latency());
  }
  return sum / static_cast<double>(s.per_request.size());
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Ablation: KV-pressure-aware admission + preemption");
  JsonRows json;

  const std::uint64_t long_seq = paper_scale() ? 8192 : 1024;
  const std::uint64_t short_seq = paper_scale() ? 512 : 128;
  const std::uint32_t layers = quick_scale() ? 1 : 2;
  const std::uint32_t n_short = quick_scale() ? 4 : 6;

  std::vector<NamedPolicy> policies = {
      {"unopt+fcfs", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };
  if (quick_scale()) policies = {{"dynmg+BMA", ThrottlePolicy::kDynMg,
                                  ArbPolicy::kBma}};

  // Scenario A: one long request decoding from cycle 0, shorts arriving
  // every 10k cycles. The budget fits the long request's KV plus two
  // shorts, so unconditional admission oversubscribes it by design.
  std::vector<RequestSpec> specs;
  specs.push_back({0, long_seq, 0, 1});
  for (std::uint32_t i = 0; i < n_short; ++i) {
    specs.push_back({i + 1, short_seq, 10'000ull * (i + 1), 1});
  }
  const RequestBatch batch(bench_model(), specs);
  const std::uint64_t budget =
      (batch.peak_kv_tokens(specs[0]) + 2 * batch.peak_kv_tokens(specs[1])) *
      batch.kv_bytes_per_token() * layers;

  TextTable t("staggered skewed arrivals: 1 long (" +
              std::to_string(long_seq) + ") + " + std::to_string(n_short) +
              " short (" + std::to_string(short_seq) +
              "), KV budget = long + 2 shorts");
  t.set_header({"policy", "admit", "makespan", "mean lat", "p50 lat",
                "p99 lat", "wait", "pre", "admit order"});

  // All (policy x variant) points are independent runs: fan them out
  // across the ThreadPool, then emit tables/JSON serially in sweep order.
  struct Point {
    const NamedPolicy* p;
    const ServingVariant* v;
  };
  std::vector<Point> points;
  for (const NamedPolicy& p : policies) {
    for (const ServingVariant& v : variants()) points.push_back({&p, &v});
  }
  const auto stats = run_points_parallel(points.size(), [&](std::size_t i) {
    return run_variant(batch, contention_config(points[i].p->thr,
                                                points[i].p->arb),
                       layers, *points[i].v, budget);
  });

  for (std::size_t i = 0; i < points.size(); ++i) {
    const NamedPolicy& p = *points[i].p;
    const ServingVariant& v = *points[i].v;
    {
      const BatchStats& s = stats[i];
      t.add_row({p.name, v.name, std::to_string(s.makespan),
                 TextTable::num(mean_latency(s)),
                 std::to_string(s.latency_percentile(50.0)),
                 std::to_string(s.latency_percentile(99.0)),
                 std::to_string(s.total_queue_wait()),
                 std::to_string(s.total_preemptions()), admit_order(s)});
      json.begin_row()
          .field("bench", "ablation_admission")
          .field("policy", p.name)
          .field("admit", v.name)
          .field("kv_budget", v.budgeted ? budget : 0)
          .field("makespan", s.makespan)
          .field("mean_latency", mean_latency(s))
          .field("p50_latency", s.latency_percentile(50.0))
          .field("p99_latency", s.latency_percentile(99.0))
          .field("queue_wait", s.total_queue_wait())
          .field("preemptions", s.total_preemptions())
          .field("admit_order", admit_order(s));
      for (const scenario::RequestStats& r : s.per_request) {
        json.begin_row()
            .field("bench", "ablation_admission_requests")
            .field("policy", p.name)
            .field("admit", v.name)
            .field("request", static_cast<std::uint64_t>(r.id))
            .field("arrival", r.arrival_cycle)
            .field("admit_cycle", r.admit_cycle)
            .field("finish", r.finish_cycle)
            .field("latency", r.latency())
            .field("queue_wait", r.queued_cycles)
            .field("preemptions",
                   static_cast<std::uint64_t>(r.preemptions));
      }
    }
  }
  t.print(std::cout);

  // Scenario B: the serialization regime - the budget admits exactly one
  // request at a time, so the admission order IS the schedule. Every pair
  // of requests sums past the 512-token budget (the smallest two are
  // 320 + 384 > 512), so co-residency is impossible: FCFS drains by
  // arrival, SRF drains shortest-first, and the latency spread between the
  // two is pure queue discipline with zero contention mixed in.
  const std::uint64_t unit = paper_scale() ? 8 : 1;
  const RequestBatch serial(bench_model(), {{0, 512 * unit, 0, 1},
                                            {1, 448 * unit, 5'000, 1},
                                            {2, 384 * unit, 10'000, 1},
                                            {3, 320 * unit, 15'000, 1}});
  const std::uint64_t serial_budget =
      serial.peak_kv_tokens(serial.requests()[0]) *
      serial.kv_bytes_per_token() * layers;

  TextTable q("serialization regime (budget = 1 request at a time): the "
              "discipline is the schedule");
  q.set_header({"policy", "admit", "makespan", "mean lat", "p50 lat",
                "p99 lat", "admit order"});
  std::vector<Point> serial_points;
  for (const NamedPolicy& p : policies) {
    for (const ServingVariant& v : variants()) {
      // One-at-a-time residency means nothing ever co-runs, so the preempt
      // variants would duplicate the fcfs/srf rows exactly.
      if (v.preempt) continue;
      serial_points.push_back({&p, &v});
    }
  }
  const auto serial_stats =
      run_points_parallel(serial_points.size(), [&](std::size_t i) {
        return run_variant(serial,
                           contention_config(serial_points[i].p->thr,
                                             serial_points[i].p->arb),
                           layers, *serial_points[i].v, serial_budget);
      });
  for (std::size_t i = 0; i < serial_points.size(); ++i) {
    const NamedPolicy& p = *serial_points[i].p;
    const ServingVariant& v = *serial_points[i].v;
    {
      const BatchStats& s = serial_stats[i];
      q.add_row({p.name, v.name, std::to_string(s.makespan),
                 TextTable::num(mean_latency(s)),
                 std::to_string(s.latency_percentile(50.0)),
                 std::to_string(s.latency_percentile(99.0)),
                 admit_order(s)});
      json.begin_row()
          .field("bench", "ablation_admission_serial")
          .field("policy", p.name)
          .field("admit", v.name)
          .field("kv_budget", v.budgeted ? serial_budget : 0)
          .field("makespan", s.makespan)
          .field("mean_latency", mean_latency(s))
          .field("p50_latency", s.latency_percentile(50.0))
          .field("p99_latency", s.latency_percentile(99.0))
          .field("admit_order", admit_order(s));
    }
  }
  q.print(std::cout);

  std::cout << "\nA finite KV budget reorders admissions (queue wait > 0, "
               "admit order != arrival order\nunder srf) and preemption "
               "bounds the short requests' latency: the long request\n"
               "yields its stage boundaries while shorts stream through, "
               "cutting P50 and - because\nserialized streams beat "
               "contended ones on this machine - P99 and makespan too.\n";
  return json.write_if_requested(argc, argv) ? 0 : 1;
}
