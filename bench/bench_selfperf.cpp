// Self-benchmark of the simulator itself: wall-clock speed (not simulated
// performance) over a fixed matrix of representative scenarios - the first
// point of the BENCH perf trajectory. Future perf PRs are judged against
// the committed BENCH_selfperf.json baseline (tools/check_selfperf.sh is
// the soft CI gate); correctness PRs that change simulated cycle counts
// regenerate the baseline alongside.
//
//   bench_selfperf --json=BENCH_selfperf.json
//
// Per scenario: simulated cycles (deterministic - a change means engine
// behavior changed, not just speed), best-of-N wall ms, simulated
// Mcycles/s of wall time, and the process peak RSS after the run.
// LLAMCAT_QUICK=1 drops to one reproduction per scenario for CI.
//
// Methodology (docs/testing.md "Self-benchmark"): every run is
// single-threaded (run(1)) so the metric is raw engine speed, not host
// parallelism; best-of-N absorbs scheduler noise; RSS is process-wide and
// monotone, so rows report the high-water mark up to and including that
// scenario.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "scenario/scenario.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace llamcat;
using namespace llamcat::bench;
using scenario::AdmitPolicy;
using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::ExecutionMode;
using scenario::RequestBatch;
using scenario::RequestSpec;

namespace {

SimConfig bench_machine() {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 200'000'000;
  return cfg;
}

ModelShape bench_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

// bench_model: H=2, D=128, fp16 -> 512 bytes per resident KV token/layer.
constexpr std::uint64_t kBytesPerToken = 2ull * 128 * 2;

struct Scenario {
  std::string name;
  std::vector<RequestSpec> requests;
  void (*configure)(DecodePassConfig&);
};

const Scenario kMatrix[] = {
    // The per-wave barrier engine: fused Systems, address attribution.
    {"barrier_coscheduled",
     {{0, 512, 0, 1}, {1, 256, 0, 1}, {2, 128, 0, 1}, {3, 128, 0, 1}},
     [](DecodePassConfig& pc) { pc.mode = ExecutionMode::kCoScheduled; }},
    // Isolated per-operator runs (the thread-pool harness, pinned to one
    // worker so the row measures engine speed, not host cores).
    {"independent",
     {{0, 512, 0, 1}, {1, 256, 0, 1}, {2, 128, 0, 1}, {3, 128, 0, 1}},
     [](DecodePassConfig& pc) { pc.mode = ExecutionMode::kIndependent; }},
    // The raw streaming engine: one long-lived System, mid-pass admission.
    {"continuous_stream",
     {{0, 512, 0, 1}, {1, 64, 500, 2}, {2, 128, 0, 1}},
     [](DecodePassConfig& pc) { pc.mode = ExecutionMode::kContinuous; }},
    // Serving-policy layer: SRF admission against a tight budget plus
    // stage-boundary preemption (queue churn, resident KV intact).
    {"continuous_budget_preempt",
     {{0, 512, 0, 2}, {1, 128, 1000, 1}, {2, 64, 3000, 1}, {3, 128, 5000, 1}},
     [](DecodePassConfig& pc) {
       pc.mode = ExecutionMode::kContinuous;
       pc.serving.policy = AdmitPolicy::kShortestRemaining;
       pc.serving.kv_budget_bytes = 700 * kBytesPerToken * 2;
       pc.serving.preempt = true;
     }},
    // Paged KV: cold-block eviction + refetch pricing on top of the above.
    {"continuous_paged",
     {{0, 512, 0, 2}, {1, 64, 1000, 1}, {2, 64, 3000, 1}, {3, 128, 5000, 1}},
     [](DecodePassConfig& pc) {
       pc.mode = ExecutionMode::kContinuous;
       pc.serving.policy = AdmitPolicy::kShortestRemaining;
       pc.serving.kv_budget_bytes = 544 * kBytesPerToken * 2;
       pc.serving.preempt = true;
       pc.serving.kv_evict = KvEvictPolicy::kColdBlocks;
       pc.serving.kv_block_bytes = 256;
     }},
    // Prefix-heavy sharing: three requests decode from one 256-token system
    // prompt under a tight paged budget, so admission, eviction and refetch
    // all route through the ref-counted shared block pool (the hot path the
    // kv_block_pool shard table serves).
    {"continuous_prefix_shared",
     {{0, 512, 0, 2, 0, 256},
      {1, 512, 1000, 1, 0, 256},
      {2, 512, 3000, 1, 0, 256},
      {3, 128, 5000, 1}},
     [](DecodePassConfig& pc) {
       pc.mode = ExecutionMode::kContinuous;
       pc.serving.policy = AdmitPolicy::kShortestRemaining;
       pc.serving.kv_budget_bytes = 700 * kBytesPerToken * 2;
       pc.serving.preempt = true;
       pc.serving.kv_evict = KvEvictPolicy::kColdBlocks;
       pc.serving.kv_block_bytes = 256;
       pc.serving.kv_share = true;
     }},
};

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;  // bytes there
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = quick_scale() ? 1 : 3;
  print_header("bench_selfperf: simulator wall-clock speed (BENCH trajectory)");
  std::cout << "reps per scenario: " << reps
            << (quick_scale() ? " (LLAMCAT_QUICK=1)" : "") << "\n\n";

  TextTable table("simulator speed per scenario");
  table.set_header(
      {"scenario", "sim cycles", "best wall ms", "Mcyc/s", "peak RSS MB"});
  JsonRows json;
  for (const Scenario& sc : kMatrix) {
    DecodePassConfig pc;
    pc.num_layers = 2;
    pc.include_gemv = false;
    sc.configure(pc);
    const RequestBatch batch(bench_model(), sc.requests);
    const DecodePass pass(batch, pc, bench_machine());

    std::uint64_t sim_cycles = 0;
    double best_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
      // lint:allow(wallclock): measuring host simulation throughput is this bench's purpose
      const auto t0 = std::chrono::steady_clock::now();
      const BatchStats stats = pass.run(/*threads=*/1);
      const std::chrono::duration<double, std::milli> dt =
          // lint:allow(wallclock): measuring host simulation throughput is this bench's purpose
          std::chrono::steady_clock::now() - t0;
      sim_cycles = stats.total.cycles;  // identical every rep (deterministic)
      if (r == 0 || dt.count() < best_ms) best_ms = dt.count();
    }
    const double mcyc_per_sec =
        best_ms > 0.0 ? static_cast<double>(sim_cycles) / (best_ms * 1e3)
                      : 0.0;
    const std::uint64_t rss_kb = peak_rss_kb();

    table.add_row({sc.name, std::to_string(sim_cycles),
                   TextTable::num(best_ms, 1), TextTable::num(mcyc_per_sec, 2),
                   TextTable::num(static_cast<double>(rss_kb) / 1024.0, 1)});
    json.begin_row()
        .field("scenario", sc.name)
        .field("sim_cycles", sim_cycles)
        .field("wall_ms", best_ms)
        .field("mcycles_per_sec", mcyc_per_sec)
        .field("peak_rss_kb", rss_kb)
        .field("reps", static_cast<std::uint64_t>(reps));
  }
  table.print(std::cout);
  std::cout << "\nsim cycles are deterministic: a diff there means engine\n"
               "behavior changed (regenerate the baseline); wall ms and\n"
               "Mcyc/s are what perf PRs move.\n";
  return json.write_if_requested(argc, argv) ? 0 : 1;
}
