// Ablation: continuous batching (streaming System) vs the per-wave barrier.
//
// kCoScheduled drains the whole machine between layer-stage waves, so every
// request - however short - waits for the batch's longest member at every
// stage. kContinuous feeds one long-lived System from a dynamic trace
// source: a request's next operator starts the moment its own previous one
// completes. On skewed batches (one long-context request among short ones)
// that difference is the makespan gap this bench measures, per policy pair,
// along with the short requests' latency win and the tail (long-request)
// latency cost of sharing the machine with streaming neighbors.
//
// Arrival staggering is also exercised: a mid-pass admission has no barrier
// analogue at all, so only the continuous rows report it.
#include <algorithm>

#include "bench_util.hpp"
#include "scenario/scenario.hpp"

using namespace llamcat;
using namespace llamcat::bench;
using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::ExecutionMode;
using scenario::RequestBatch;
using scenario::RequestSpec;

namespace {

SimConfig contention_config(ThrottlePolicy thr, ArbPolicy arb) {
  // Same scaled-down machine as ablation_coschedule: a small LLC and few
  // channels so co-resident KV streams genuinely contend.
  SimConfig cfg = with_policies(SimConfig::table5(), thr, arb);
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 200'000'000;
  return cfg;
}

ModelShape bench_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

/// Mean finish-minus-arrival latency of the short requests (ids > 0).
double short_latency(const BatchStats& s) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const scenario::RequestStats& r : s.per_request) {
    if (r.id == 0) continue;
    sum += static_cast<double>(r.stats.cycles);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Ablation: continuous batching vs per-wave barrier");
  JsonRows json;

  // Skewed batch: one long-context request plus short ones. Under the
  // barrier the short requests pay the long request's wave time at every
  // stage; under streaming they run ahead and retire early.
  const std::uint64_t long_seq = paper_scale() ? 8192 : 1024;
  const std::uint64_t short_seq = paper_scale() ? 512 : 128;
  const std::uint32_t layers = quick_scale() ? 1 : 2;
  std::vector<std::uint32_t> batch_sizes = {2, 4, 8};
  if (quick_scale()) batch_sizes = {4};

  const std::vector<NamedPolicy> policies = {
      {"unopt+fcfs", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"unopt+BMA", ThrottlePolicy::kNone, ArbPolicy::kBma},
      {"dynmg+fcfs", ThrottlePolicy::kDynMg, ArbPolicy::kFcfs},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };

  TextTable t("makespan: barrier (coscheduled waves) vs streaming "
              "(continuous), 1 long (" +
              std::to_string(long_seq) + ") + N-1 short (" +
              std::to_string(short_seq) + ") requests");
  t.set_header({"policy", "batch", "barrier", "stream", "speedup",
                "short lat x", "tail lat x"});

  for (const NamedPolicy& p : policies) {
    for (const std::uint32_t n : batch_sizes) {
      const SimConfig cfg = contention_config(p.thr, p.arb);
      std::vector<std::uint64_t> seqs(n, short_seq);
      seqs[0] = long_seq;
      const RequestBatch batch = RequestBatch::with_seq_lens(bench_model(),
                                                             seqs);
      DecodePassConfig pc;
      pc.num_layers = layers;
      pc.include_gemv = false;
      pc.mode = ExecutionMode::kCoScheduled;
      const BatchStats barrier = DecodePass(batch, pc, cfg).run();
      pc.mode = ExecutionMode::kContinuous;
      const BatchStats stream = DecodePass(batch, pc, cfg).run();

      const double speedup = static_cast<double>(barrier.makespan) /
                             static_cast<double>(stream.makespan);
      // Latency ratios stream/barrier: short requests should shrink
      // (no longer waiting out the long member's waves); the long tail
      // request pays for the company it now keeps all pass long.
      const double short_ratio = short_latency(stream) /
                                 short_latency(barrier);
      const double tail_ratio =
          static_cast<double>(stream.per_request[0].stats.cycles) /
          static_cast<double>(barrier.per_request[0].stats.cycles);
      t.add_row({p.name, std::to_string(n),
                 std::to_string(barrier.makespan),
                 std::to_string(stream.makespan), TextTable::num(speedup),
                 TextTable::num(short_ratio), TextTable::num(tail_ratio)});
      json.begin_row()
          .field("bench", "ablation_continuous")
          .field("policy", p.name)
          .field("batch", static_cast<std::uint64_t>(n))
          .field("long_seq", long_seq)
          .field("short_seq", short_seq)
          .field("barrier_makespan", barrier.makespan)
          .field("stream_makespan", stream.makespan)
          .field("speedup", speedup)
          .field("short_latency_ratio", short_ratio)
          .field("tail_latency_ratio", tail_ratio);
    }
  }
  t.print(std::cout);

  // Mid-pass admission: the barrier cannot express it at all. Report the
  // streaming numbers for a staggered-arrival version of the batch.
  TextTable a("staggered arrivals (continuous only): short requests arrive "
              "mid-decode of the long one");
  a.set_header({"policy", "request", "arrival", "admit", "finish",
                "latency"});
  for (const NamedPolicy& p : policies) {
    const SimConfig cfg = contention_config(p.thr, p.arb);
    std::vector<RequestSpec> specs;
    specs.push_back({0, long_seq, 0, 1});
    specs.push_back({1, short_seq, 20'000, 1});
    specs.push_back({2, short_seq, 60'000, 1});
    const RequestBatch batch(bench_model(), specs);
    DecodePassConfig pc;
    pc.num_layers = layers;
    pc.include_gemv = false;
    pc.mode = ExecutionMode::kContinuous;
    const BatchStats s = DecodePass(batch, pc, cfg).run();
    for (const scenario::RequestStats& r : s.per_request) {
      a.add_row({p.name, std::to_string(r.id),
                 std::to_string(r.arrival_cycle),
                 std::to_string(r.admit_cycle),
                 std::to_string(r.finish_cycle),
                 std::to_string(r.latency())});
      json.begin_row()
          .field("bench", "ablation_continuous_arrivals")
          .field("policy", p.name)
          .field("request", static_cast<std::uint64_t>(r.id))
          .field("arrival", r.arrival_cycle)
          .field("admit", r.admit_cycle)
          .field("finish", r.finish_cycle)
          .field("latency", r.latency());
    }
  }
  a.print(std::cout);

  std::cout << "\nspeedup > 1: cycles the barrier spends draining the "
               "machine while short requests\nwait on the batch's longest "
               "member - the paper's contention policies now get\nexercised "
               "under the admission regime real schedulers run.\n";
  return json.write_if_requested(argc, argv) ? 0 : 1;
}
