// Ablation: co-scheduled multi-request contention vs the independent sum.
//
// The scenario layer can run a decode batch two ways: every operator in its
// own private System (independent - the optimistic sum PR 1 shipped) or
// fused per layer-stage wave into one shared System (coscheduled), where
// concurrent requests genuinely fight over cores, the shared LLC and DRAM.
// This bench measures the gap: the contention slowdown
// coscheduled/independent across batch sizes, and how much of it each
// throttle x arbitration pair claws back. Per-request attribution comes
// from the shared run itself (address-slot tagging), so the fairness
// spread across requests is visible too.
#include <algorithm>

#include "bench_util.hpp"
#include "scenario/scenario.hpp"

using namespace llamcat;
using namespace llamcat::bench;
using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::ExecutionMode;
using scenario::RequestBatch;

namespace {

SimConfig contention_config(ThrottlePolicy thr, ArbPolicy arb) {
  // Scaled-down machine with real cache-capacity pressure: a small LLC and
  // few channels so N co-resident KV streams genuinely evict each other.
  SimConfig cfg = with_policies(SimConfig::table5(), thr, arb);
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 200'000'000;
  return cfg;
}

ModelShape bench_model() {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Ablation: co-scheduled contention vs independent sum");
  JsonRows json;

  const std::uint64_t seq = paper_scale() ? 2048 : 256;
  std::vector<std::uint32_t> batch_sizes = {1, 2, 4, 8};
  if (quick_scale()) batch_sizes = {1, 4};

  const std::vector<NamedPolicy> policies = {
      {"unopt+fcfs", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"unopt+BMA", ThrottlePolicy::kNone, ArbPolicy::kBma},
      {"dynmg+fcfs", ThrottlePolicy::kDynMg, ArbPolicy::kFcfs},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };

  TextTable t("contention slowdown (coscheduled / independent-sum cycles), " +
              std::to_string(seq) + "-token KV per request");
  t.set_header({"policy", "batch", "ind cycles", "cos cycles", "slowdown",
                "cos l2_hit", "req spread"});

  // Every (policy x batch) point is a pair of independent runs: fan the
  // points out across the ThreadPool and emit serially in sweep order.
  struct Point {
    const NamedPolicy* p;
    std::uint32_t n;
  };
  std::vector<Point> points;
  for (const NamedPolicy& p : policies) {
    for (const std::uint32_t n : batch_sizes) points.push_back({&p, n});
  }
  struct PointStats {
    BatchStats ind;
    BatchStats cos;
  };
  const auto stats = run_points_parallel(points.size(), [&](std::size_t i) {
    const SimConfig cfg =
        contention_config(points[i].p->thr, points[i].p->arb);
    const RequestBatch batch =
        RequestBatch::uniform(bench_model(), points[i].n, seq);
    DecodePassConfig pc;
    pc.num_layers = 1;
    pc.include_gemv = false;
    PointStats ps;
    ps.ind = DecodePass(batch, pc, cfg).run();
    pc.mode = ExecutionMode::kCoScheduled;
    ps.cos = DecodePass(batch, pc, cfg).run();
    return ps;
  });

  for (std::size_t i = 0; i < points.size(); ++i) {
    const NamedPolicy& p = *points[i].p;
    const std::uint32_t n = points[i].n;
    {
      const BatchStats& ind = stats[i].ind;
      const BatchStats& cos = stats[i].cos;

      // Fairness spread: max/min per-request cycles-in-flight of the
      // shared run (1.0 = perfectly even progress).
      Cycle lo = 0, hi = 0;
      for (const auto& r : cos.per_request) {
        const Cycle f = r.slice.cycles_in_flight;
        lo = lo == 0 ? f : std::min(lo, f);
        hi = std::max(hi, f);
      }
      const double spread =
          lo > 0 ? static_cast<double>(hi) / static_cast<double>(lo) : 0.0;
      const double slowdown = static_cast<double>(cos.total.cycles) /
                              static_cast<double>(ind.total.cycles);
      t.add_row({p.name, std::to_string(n),
                 std::to_string(ind.total.cycles),
                 std::to_string(cos.total.cycles), TextTable::num(slowdown),
                 TextTable::num(cos.total.l2_hit_rate),
                 TextTable::num(spread)});
      json.begin_row()
          .field("bench", "ablation_coschedule")
          .field("policy", p.name)
          .field("batch", static_cast<std::uint64_t>(n))
          .field("seq", seq)
          .field("independent_cycles", ind.total.cycles)
          .field("coscheduled_cycles", cos.total.cycles)
          .field("slowdown", slowdown)
          .field("cos_l2_hit_rate", cos.total.l2_hit_rate)
          .field("request_spread", spread);
    }
  }
  t.print(std::cout);

  std::cout << "\nslowdown > 1: cross-request LLC/DRAM interference the "
               "independent sum hides.\nbatch 1 is the sanity anchor: both "
               "modes simulate the identical machine, so slowdown = 1.\n";
  return json.write_if_requested(argc, argv) ? 0 : 1;
}
