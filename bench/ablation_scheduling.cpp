// Ablation: thread-block dispatch structure (the baseline-pathology study
// behind §6.4) and the dynmg temporal parameters (Table 2 sweep).
//
// The paper's baseline reads per-core trace files whose live thread blocks
// "span a wide range"; an idealized dynamic scheduler hides the working-set
// pathology entirely. This ablation quantifies that: the same workload under
// the three dispatch modes, unoptimized vs dynmg+BMA.
#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

namespace {
const char* dispatch_name(TbDispatch d) {
  switch (d) {
    case TbDispatch::kStaticBlocked: return "static-blocked (paper traces)";
    case TbDispatch::kPartitionedStealing: return "wave-round-robin";
    case TbDispatch::kGlobalQueue: return "global-queue (idealized)";
  }
  return "?";
}
}  // namespace

int main() {
  print_header("Ablation: TB dispatch structure + throttling periods");

  const std::uint64_t L = quick_scale() ? 2048 : 8192;
  const ModelShape model = ModelShape::llama3_70b();

  {
    std::vector<ExperimentSpec> specs;
    const TbDispatch modes[] = {TbDispatch::kStaticBlocked,
                                TbDispatch::kPartitionedStealing,
                                TbDispatch::kGlobalQueue};
    for (TbDispatch d : modes) {
      for (const auto& [name, thr, arb] : std::vector<NamedPolicy>{
               {"unopt", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
               {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma}}) {
        SimConfig cfg = with_policies(base_config(), thr, arb);
        cfg.core.tb_dispatch = d;
        specs.push_back(ExperimentSpec{name, cfg,
                                       Workload::logit(model, L, cfg)});
      }
    }
    const auto res = run_experiments(specs, 0, true);
    TextTable t("dispatch structure vs policy effect (llama3-70b " +
                seq_label(L) + ", 16MB)");
    t.set_header({"dispatch", "unopt cycles", "dynmg+BMA cycles", "speedup",
                  "unopt dram_reads", "BMA dram_reads"});
    for (int i = 0; i < 3; ++i) {
      const SimStats& u = res[static_cast<std::size_t>(2 * i)].stats;
      const SimStats& o = res[static_cast<std::size_t>(2 * i + 1)].stats;
      t.add_row({dispatch_name(modes[i]), std::to_string(u.cycles),
                 std::to_string(o.cycles), TextTable::num(o.speedup_vs(u)),
                 std::to_string(u.dram_reads), std::to_string(o.dram_reads)});
    }
    t.print(std::cout);
  }

  {
    // Table 2 temporal-dimension sweep: sampling period x sub-period.
    std::vector<ExperimentSpec> specs;
    struct P {
      std::uint32_t period, sub;
    };
    const std::vector<P> params = {{1000, 200}, {2000, 400}, {4000, 400},
                                   {2000, 1000}, {8000, 800}};
    for (const P& p : params) {
      SimConfig cfg =
          with_policies(base_config(), ThrottlePolicy::kDynMg, ArbPolicy::kBma);
      cfg.throttle.sampling_period = p.period;
      cfg.throttle.sub_period = p.sub;
      specs.push_back(
          ExperimentSpec{std::to_string(p.period) + "/" + std::to_string(p.sub),
                         cfg, Workload::logit(model, L, cfg)});
    }
    const auto res = run_experiments(specs, 0, true);
    TextTable t("dynmg temporal parameters (paper Table 2 swept optimum: "
                "2000/400)");
    t.set_header({"period/sub", "cycles", "t_cs", "mshr_hit_rate"});
    for (std::size_t i = 0; i < res.size(); ++i) {
      const SimStats& s = res[i].stats;
      t.add_row({res[i].name, std::to_string(s.cycles),
                 TextTable::num(s.t_cs), TextTable::num(s.mshr_hit_rate)});
    }
    t.print(std::cout);
  }
  return 0;
}
