// Reproduces paper Figure 7 (all six panels) in one pass:
//   (a)/(d) throttling policies dyncta / lcs / dynmg vs unoptimized
//   (b)/(e) arbitration policies cobrra / B / MA / BMA, each + dynmg,
//           normalized against dynmg-only
//   (c)/(f) cumulative speedups dynmg, +B, +MA, +BMA vs unoptimized
// Workload: Logit operator, llama3-70b (H8/G8/D128) and llama3-405b
// (H8/G16/D128), 16MB LLC, Table 5 machine.
#include <map>

#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("Figure 7: throttling & arbitration policy speedups (Logit)");

  const std::vector<std::uint64_t> seqs =
      quick_scale() ? std::vector<std::uint64_t>{1024, 2048}
                    : std::vector<std::uint64_t>{4096, 8192, 16384};

  const std::vector<NamedPolicy> policies = {
      {"unopt", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"dyncta", ThrottlePolicy::kDyncta, ArbPolicy::kFcfs},
      {"lcs", ThrottlePolicy::kLcs, ArbPolicy::kFcfs},
      {"dynmg", ThrottlePolicy::kDynMg, ArbPolicy::kFcfs},
      {"dynmg+cobrra", ThrottlePolicy::kDynMg, ArbPolicy::kCobrra},
      {"dynmg+B", ThrottlePolicy::kDynMg, ArbPolicy::kBalanced},
      {"dynmg+MA", ThrottlePolicy::kDynMg, ArbPolicy::kMa},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };
  enum { kUnopt, kDyncta, kLcs, kDynmg, kCobrra, kB, kMa, kBma };

  for (const std::string model_name : {"70b", "405b"}) {
    const ModelShape model = model_by_name(model_name);
    // Fig 7 is the miss-handling-throughput-bound regime (§6.3): wave-
    // preserving dispatch (see base_config's comment in bench_util.hpp).
    const auto grid = run_grid(model, seqs, policies, /*llc_mb=*/16,
                               TbDispatch::kPartitionedStealing);

    auto speedup_row = [&](int pol, int base,
                           std::vector<double>* acc = nullptr) {
      std::vector<std::string> row{policies[pol].name};
      for (std::size_t s = 0; s < seqs.size(); ++s) {
        const double sp = grid[pol][s].speedup_vs(grid[base][s]);
        if (acc) acc->push_back(sp);
        row.push_back(TextTable::num(sp));
      }
      return row;
    };

    // (a)/(d): throttling policies vs unoptimized.
    TextTable t7a("Fig 7(" + std::string(model_name == "70b" ? "a" : "d") +
                  ") llama3-" + model_name +
                  ": throttling speedup vs unoptimized");
    std::vector<std::string> head{"policy"};
    for (auto L : seqs) head.push_back(seq_label(L));
    head.push_back("geomean");
    t7a.set_header(head);
    for (int p : {kDyncta, kLcs, kDynmg}) {
      std::vector<double> acc;
      auto row = speedup_row(p, kUnopt, &acc);
      row.push_back(TextTable::num(geomean(acc)));
      t7a.add_row(row);
    }
    t7a.print(std::cout);

    // (b)/(e): arbitration policies (each + dynmg) vs dynmg-only.
    TextTable t7b("Fig 7(" + std::string(model_name == "70b" ? "b" : "e") +
                  ") llama3-" + model_name +
                  ": arbitration (each + dynmg) speedup vs dynmg-only");
    t7b.set_header(head);
    for (int p : {kCobrra, kB, kMa, kBma}) {
      std::vector<double> acc;
      auto row = speedup_row(p, kDynmg, &acc);
      row.push_back(TextTable::num(geomean(acc)));
      t7b.add_row(row);
    }
    t7b.print(std::cout);

    // (c)/(f): cumulative speedups vs unoptimized.
    TextTable t7c("Fig 7(" + std::string(model_name == "70b" ? "c" : "f") +
                  ") llama3-" + model_name +
                  ": cumulative speedup vs unoptimized");
    t7c.set_header(head);
    for (int p : {kDynmg, kB, kMa, kBma}) {
      std::vector<double> acc;
      auto row = speedup_row(p, kUnopt, &acc);
      row[0] = p == kDynmg ? "dynmg" : "dynmg+" + to_string(policies[p].arb);
      row.push_back(TextTable::num(geomean(acc)));
      t7c.add_row(row);
    }
    t7c.print(std::cout);
  }

  std::cout << "\npaper reference: dynmg 1.08-1.44x (geo 1.19x); BMA over "
               "dynmg 1.04-1.07x (geo 1.05x);\n"
               "dynmg+BMA 1.15-1.54x (geo 1.26x); baselines mostly "
               "negative in this regime.\n";
  return 0;
}
