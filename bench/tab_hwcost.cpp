// Reproduces the paper's §6.1 hardware-cost evaluation (substitution: the
// paper synthesizes Chisel with Synopsys DC on the 15nm NanGate library;
// this uses the structural area model in src/hwcost, calibrated to that
// library's cell sizes - see DESIGN.md §4).
#include <iostream>

#include "bench_util.hpp"
#include "hwcost/area_model.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("§6.1 hardware cost: arbiter + hit buffer area @15nm");

  const SimConfig cfg = SimConfig::table5();
  const AreaBreakdown hb = hit_buffer_area(cfg.arb);
  const AreaBreakdown arb = arbiter_area(cfg.llc, cfg.arb,
                                         cfg.core.num_cores);

  TextTable t("Synthesized area (paper) vs structural model (ours)");
  t.set_header({"unit", "paper um^2", "model um^2", "ratio"});
  t.add_row({"arbiter (incl. request queue)", "7312.93",
             TextTable::num(arb.total_um2, 2),
             TextTable::num(arb.total_um2 / 7312.93)});
  t.add_row({"hit buffer", "3088.61", TextTable::num(hb.total_um2, 2),
             TextTable::num(hb.total_um2 / 3088.61)});
  t.print(std::cout);

  TextTable b1("arbiter breakdown");
  b1.set_header({"component", "um^2"});
  for (const auto& item : arb.items)
    b1.add_row({item.name, TextTable::num(item.um2, 1)});
  b1.print(std::cout);

  TextTable b2("hit buffer breakdown");
  b2.set_header({"component", "um^2"});
  for (const auto& item : hb.items)
    b2.add_row({item.name, TextTable::num(item.um2, 1)});
  b2.print(std::cout);

  // Scaling study beyond the paper: how the structures grow with depth.
  TextTable sc("scaling: hit buffer depth sweep");
  sc.set_header({"depth", "um^2"});
  for (std::uint32_t depth : {8u, 16u, 32u, 64u, 128u}) {
    ArbConfig a = cfg.arb;
    a.hit_buffer_depth = depth;
    sc.add_row({std::to_string(depth),
                TextTable::num(hit_buffer_area(a).total_um2, 1)});
  }
  sc.print(std::cout);
  return 0;
}
