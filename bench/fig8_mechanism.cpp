// Reproduces paper Figure 8: the mechanism behind the speedups on the
// llama3-70b / 8K benchmark - performance, MSHR entry utilization, L2 hit
// rate, MSHR hit rate and DRAM bandwidth for each policy step
// (unoptimized -> dyncta -> lcs -> dynmg -> +B -> +MA -> +BMA).
#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("Figure 8: policy mechanism on llama3-70b, L=8K, 16MB LLC");

  const std::uint64_t L = quick_scale() ? 2048 : 8192;
  const std::vector<NamedPolicy> policies = {
      {"unopt", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"dyncta", ThrottlePolicy::kDyncta, ArbPolicy::kFcfs},
      {"lcs", ThrottlePolicy::kLcs, ArbPolicy::kFcfs},
      {"dynmg", ThrottlePolicy::kDynMg, ArbPolicy::kFcfs},
      {"dynmg+B", ThrottlePolicy::kDynMg, ArbPolicy::kBalanced},
      {"dynmg+MA", ThrottlePolicy::kDynMg, ArbPolicy::kMa},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };

  // Fig 8 analyses the same MHA-bound regime as Fig 7 (§6.3.3): wave-
  // preserving dispatch (see base_config's comment in bench_util.hpp).
  const auto grid = run_grid(ModelShape::llama3_70b(), {L}, policies,
                             /*llc_mb=*/16, TbDispatch::kPartitionedStealing);

  TextTable t("Fig 8: detailed comparison among policies (llama3-70b, " +
              seq_label(L) + ")");
  t.set_header({"policy", "perf(norm)", "mshr_entry_util", "l2_hit_rate",
                "mshr_hit_rate", "dram_bw(GB/s)", "t_cs", "dram_reads"});
  const SimStats& base = grid[0][0];
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const SimStats& s = grid[p][0];
    t.add_row({policies[p].name, TextTable::num(s.speedup_vs(base)),
               TextTable::num(s.mshr_entry_util),
               TextTable::num(s.l2_hit_rate),
               TextTable::num(s.mshr_hit_rate),
               TextTable::num(s.dram_bw_gbps, 1), TextTable::num(s.t_cs),
               std::to_string(s.dram_reads)});
  }
  t.print(std::cout);

  std::cout
      << "\npaper reference (Fig 8): DRAM accesses roughly constant across\n"
         "policies; MSHR hit rate increases monotonically toward dynmg+BMA\n"
         "while the L2 hit rate decreases (locality captured by the MSHR\n"
         "instead of cache storage); DRAM bandwidth in the 31-38 GB/s band;\n"
         "performance correlates with MSHR entry utilization and bandwidth.\n";
  return 0;
}
