// Ablation: the fill-bypass manager (paper Fig 4 step 5). The paper
// disables bypassing "for fairness and clarity" (§3.2) on the grounds that
// its arbitration gains are orthogonal; this bench tests that decision:
//   - does any bypass policy help the Table 5 machine on the Logit op?
//   - does BMA keep its gain with bypassing enabled (orthogonality)?
#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("Ablation: LLC fill bypass policies (Fig 4 step 5)");

  const std::uint64_t L = quick_scale() ? 2048 : 8192;
  const ModelShape model = ModelShape::llama3_70b();

  struct Case {
    std::string name;
    BypassPolicy policy;
    double keep_p;
    ArbPolicy arb;
  };
  const std::vector<Case> cases = {
      {"none (paper)", BypassPolicy::kNone, 1.0, ArbPolicy::kFcfs},
      {"all", BypassPolicy::kAll, 0.0, ArbPolicy::kFcfs},
      {"prob(keep 0.5)", BypassPolicy::kProbabilistic, 0.5, ArbPolicy::kFcfs},
      {"reuse-history", BypassPolicy::kReuseHistory, 1.0, ArbPolicy::kFcfs},
      {"none + BMA", BypassPolicy::kNone, 1.0, ArbPolicy::kBma},
      {"reuse-history + BMA", BypassPolicy::kReuseHistory, 1.0,
       ArbPolicy::kBma},
  };

  std::vector<ExperimentSpec> specs;
  for (const auto& c : cases) {
    SimConfig cfg =
        with_policies(mha_bound_config(), ThrottlePolicy::kDynMg, c.arb);
    cfg.llc.bypass.policy = c.policy;
    cfg.llc.bypass.keep_probability = c.keep_p;
    specs.push_back({c.name, cfg, Workload::logit(model, L, cfg)});
  }
  const auto results = run_experiments(specs, 0, /*verbose=*/true);

  TextTable t("bypass policies (llama3-70b " + seq_label(L) +
              ", dynmg, MHA-bound regime)");
  t.set_header({"policy", "speedup vs none", "bypassed_fills", "l2_hit_rate",
                "mshr_hit_rate", "dram_reads"});
  for (const auto& r : results) {
    t.add_row({r.name, TextTable::num(r.stats.speedup_vs(results[0].stats)),
               std::to_string(r.stats.counters.get("llc.bypassed_fills")),
               TextTable::num(r.stats.l2_hit_rate),
               TextTable::num(r.stats.mshr_hit_rate),
               std::to_string(r.stats.dram_reads)});
  }
  t.print(std::cout);

  const double bma_gain =
      results[4].stats.speedup_vs(results[0].stats);
  const double bma_gain_with_bypass =
      results[5].stats.speedup_vs(results[3].stats);
  std::cout << "\nBMA gain without bypass: " << bma_gain
            << "x, with reuse-history bypass: " << bma_gain_with_bypass
            << "x\n(the paper's orthogonality assumption holds if these are "
               "close)\n";
  return 0;
}
