// Ablation: GQA group size vs memory-system locality (paper §6.3.3:
// "Cache hits and MSHR hits ... are mostly a result of GQA, since non-GQA
// operators do not share activation across heads"). Sweeps G at constant
// KV volume - H*L fixed - from GEMV-like (G=1, no sharing) to 405b-like
// (G=16), plus a true GEMV of the same weight volume as the no-sharing
// anchor.
#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("Ablation: GQA group size -> cache/MSHR locality");

  const std::uint64_t L = quick_scale() ? 2048 : 8192;

  std::vector<ExperimentSpec> specs;
  // G sweep at fixed H=8 and fixed L: the K tensor (and so the compulsory
  // DRAM floor) is identical across rows; only the sharing degree changes.
  for (const std::uint32_t g : {1u, 2u, 4u, 8u, 16u}) {
    ModelShape m = ModelShape::llama3_70b();
    m.name = "H8/G" + std::to_string(g);
    m.group_size = g;
    SimConfig cfg = mha_bound_config();
    specs.push_back(
        {"G=" + std::to_string(g), cfg, Workload::logit(m, L, cfg)});
  }
  {
    // GEMV anchor: the same KV byte volume as one H=8 head sweep.
    SimConfig cfg = mha_bound_config();
    specs.push_back(
        {"gemv (no heads)", cfg, Workload::gemv(8 * L, 128, cfg)});
  }
  const auto results = run_experiments(specs, 0, /*verbose=*/true);

  TextTable t("GQA locality sweep (H=8, L=" + seq_label(L) +
              ", MHA-bound regime)");
  t.set_header({"shape", "l2_hit_rate", "mshr_hit_rate",
                "locality(l2+mshr)", "dram_reads", "cycles"});
  for (const auto& r : results) {
    const SimStats& s = r.stats;
    const double locality = s.l2_hit_rate + s.mshr_hit_rate;
    t.add_row({r.name, TextTable::num(s.l2_hit_rate),
               TextTable::num(s.mshr_hit_rate), TextTable::num(locality),
               std::to_string(s.dram_reads), std::to_string(s.cycles)});
  }
  t.print(std::cout);

  std::cout << "\nexpected: locality rises monotonically with G while the "
               "DRAM-read floor\nstays flat; G=1 and the GEMV anchor sit "
               "at (near) zero locality - the\npaper's claim that GQA "
               "sharing is what the CAT policies harvest.\n";
  return 0;
}
