// Ablation: cross-request KV prefix reuse (--kv-share) under a tight budget.
//
// The paged-KV serving stack treats every request's KV as private, so N
// requests decoding from the same system prompt pin N copies of the prefix
// against --kv-budget. The shared block pool (scenario/kv_block_pool.hpp)
// charges each unique prefix block once: a request's effective admission
// footprint shrinks by its overlap with already-resident group members, and
// the same budget suddenly holds more co-residents.
//
// Workload: a burst of same-length requests, all decoding from one shared
// prefix (one --prefix-groups group), arriving staggered under a budget of
// 1.5x a single footprint. With sharing off the budget fits exactly ONE
// request at a time - the batch serializes and the machine runs far below
// capacity. With sharing on, the deduped footprints let 2 (at 50 % overlap)
// or 3+ (at 75 %) requests co-run in the same bytes. The sweep crosses
// prefix-overlap fraction {0, 25, 50, 75} % with sharing {off, on}:
//
//  - 0 %:  sharing on but nothing overlaps - pool bookkeeping only; the
//          timing must match sharing off exactly (the fuzzer pins this
//          neutrality property batch-wide);
//  - 25 %: dedup too small to fit a second request (1 + 0.75 > 1.5
//          footprints), so the batch still serializes - and because a
//          shared block dies with its last holder, serialized requests
//          never probe a live block: timing AND hit counters match sharing
//          off exactly. Reuse needs co-residency, not just overlap;
//  - 50 %: the first real win - pairs co-run, makespan AND P99 drop;
//  - 75 %: three-plus co-residents - more overlap frees more budget, but
//          the co-running working sets now contend for the LLC, so the
//          marginal win shrinks (or backslides): overlap is a knob with a
//          machine-dependent sweet spot, not a free lunch.
//
// Every row prices the reuse with the new pool counters: block hit rate,
// deduped (shared) bytes and the dedup ratio. See bench/README.md and
// docs/metrics.md.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "scenario/scenario.hpp"

using namespace llamcat;
using namespace llamcat::bench;
using scenario::AdmitPolicy;
using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::ExecutionMode;
using scenario::RequestBatch;
using scenario::RequestSpec;

namespace {

SimConfig contention_config(ThrottlePolicy thr, ArbPolicy arb) {
  // The ablation_paging machine: 4 cores, a 2 MiB LLC and 2 channels, so a
  // single request leaves throughput on the table and a few co-running
  // requests (mostly) fit the cache - the regime where admission policy
  // decides wall-clock, not just queueing fairness.
  SimConfig cfg = with_policies(SimConfig::table5(), thr, arb);
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 2ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 400'000'000;
  return cfg;
}

ModelShape bench_model() { return ModelShape::llama3_70b(); }

double mean_latency(const BatchStats& s) {
  double sum = 0.0;
  for (const scenario::RequestStats& r : s.per_request) {
    sum += static_cast<double>(r.latency());
  }
  return sum / static_cast<double>(s.per_request.size());
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Ablation: cross-request KV prefix reuse (--kv-share)");
  JsonRows json;

  const std::uint64_t seq = paper_scale() ? 256 : 128;
  const std::uint32_t n_requests =
      paper_scale() ? 12 : (quick_scale() ? 6 : 8);
  const std::uint32_t layers = 1;
  const std::vector<std::uint64_t> overlaps =
      quick_scale() ? std::vector<std::uint64_t>{0, 50, 75}
                    : std::vector<std::uint64_t>{0, 25, 50, 75};

  std::vector<NamedPolicy> policies = {
      {"unopt+fcfs", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };
  if (quick_scale()) policies = {{"dynmg+BMA", ThrottlePolicy::kDynMg,
                                  ArbPolicy::kBma}};

  TextTable t(std::to_string(n_requests) + " requests (seq " +
              std::to_string(seq) +
              ", one prefix group), budget = 1.5x one footprint");
  t.set_header({"policy", "overlap", "share", "makespan", "mean lat",
                "p99 lat", "queue_wait", "hit_rate", "shared_B", "dedup"});

  for (const NamedPolicy& p : policies) {
    const SimConfig cfg = contention_config(p.thr, p.arb);
    for (const std::uint64_t overlap : overlaps) {
      for (const bool share : {false, true}) {
        const std::uint64_t prefix_tokens = seq * overlap / 100;
        std::vector<RequestSpec> specs;
        for (std::uint32_t i = 0; i < n_requests; ++i) {
          RequestSpec spec;
          spec.id = i;
          spec.seq_len = seq;
          spec.arrival_cycle = 4'000ull * i;
          spec.decode_steps = 1;
          // Prefix identity is declared regardless of the share switch -
          // the off rows prove the engine ignores it bit-for-bit.
          if (prefix_tokens != 0) {
            spec.prefix_group = 0;
            spec.prefix_tokens = prefix_tokens;
          }
          specs.push_back(spec);
        }
        const RequestBatch batch(bench_model(), specs);
        const std::uint64_t footprint =
            batch.peak_kv_bytes(specs[0], layers);
        const std::uint64_t budget = footprint * 3 / 2;

        DecodePassConfig pc;
        pc.num_layers = layers;
        pc.include_gemv = false;
        pc.mode = ExecutionMode::kContinuous;
        pc.serving.policy = AdmitPolicy::kFcfs;
        pc.serving.kv_budget_bytes = budget;
        pc.serving.kv_share = share;
        const BatchStats s = DecodePass(batch, pc, cfg).run();

        t.add_row({p.name, std::to_string(overlap) + "%",
                   share ? "on" : "off", std::to_string(s.makespan),
                   TextTable::num(mean_latency(s)),
                   std::to_string(s.latency_percentile(99.0)),
                   std::to_string(s.total_queue_wait()),
                   share ? TextTable::num(s.kv_hit_rate()) : "-",
                   share ? std::to_string(s.kv_shared_bytes) : "-",
                   share ? TextTable::num(s.kv_dedup_ratio()) : "-"});
        json.begin_row()
            .field("bench", "ablation_prefix_reuse")
            .field("policy", p.name)
            .field("overlap_pct", overlap)
            .field("kv_share", share ? "on" : "off")
            .field("kv_budget", budget)
            .field("footprint", footprint)
            .field("makespan", s.makespan)
            .field("mean_latency", mean_latency(s))
            .field("p50_latency", s.latency_percentile(50.0))
            .field("p99_latency", s.latency_percentile(99.0))
            .field("queue_wait", s.total_queue_wait())
            .field("kv_block_lookups", s.kv_block_lookups)
            .field("kv_block_hits", s.kv_block_hits)
            .field("kv_hit_rate", s.kv_hit_rate())
            .field("kv_shared_bytes", s.kv_shared_bytes)
            .field("kv_charged_bytes", s.kv_charged_bytes)
            .field("kv_dedup_ratio", s.kv_dedup_ratio());
      }
    }
  }
  t.print(std::cout);

  std::cout << "\nAt a 1.5-footprint budget the share-off rows serialize "
               "(one request resident at a\ntime, the machine far below "
               "capacity); prefix reuse turns overlap into\nco-residency - "
               "at 50 % the deduped footprints fit pairs and makespan AND "
               "P99 drop\nsharply, at 75 % three-plus co-run and the LLC "
               "starts pushing back. 0 % and 25 %\nmatch the off rows to "
               "the byte - 25 % even shows a zero hit rate, because a "
               "shared\nblock dies with its last holder and serialized "
               "requests never probe a live one:\nreuse needs co-residency, "
               "not just overlap, and costs nothing when it never\n"
               "materializes.\n";
  return json.write_if_requested(argc, argv) ? 0 : 1;
}
