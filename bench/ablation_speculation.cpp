// Ablation: the MA arbiter's speculation hardware (paper §4.3.1). Sweeps
// the hit_buffer and sent_reqs depths and compares against the oracle
// arbiter (ground-truth tag probe) and related-work pickers:
//   - how much prediction accuracy does the 32-entry hit_buffer buy?
//   - is sent_reqs (masking in-flight lookups) load-bearing?
//   - how far is BMA from its own upper bound (oracle)?
#include "bench_util.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("Ablation: MA speculation structures vs oracle");

  const std::uint64_t L = quick_scale() ? 2048 : 8192;
  const ModelShape model = ModelShape::llama3_70b();

  // All cases run dynmg (the paper pairs arbitration with its throttling).
  struct Case {
    std::string name;
    ArbPolicy arb;
    std::uint32_t hit_buffer;
    std::uint32_t sent_reqs;
  };
  const std::vector<Case> cases = {
      {"fcfs (no speculation)", ArbPolicy::kFcfs, 32, 16},
      {"BMA hb=0 (MSHR-only)", ArbPolicy::kBma, 0, 16},
      {"BMA hb=8", ArbPolicy::kBma, 8, 16},
      {"BMA hb=32 (paper)", ArbPolicy::kBma, 32, 16},
      {"BMA hb=128", ArbPolicy::kBma, 128, 16},
      {"BMA sent_reqs=0", ArbPolicy::kBma, 32, 0},
      {"oracle (upper bound)", ArbPolicy::kOracle, 32, 16},
      {"mrpb [9]", ArbPolicy::kMrpb, 32, 16},
      {"random (control)", ArbPolicy::kRandom, 32, 16},
  };

  std::vector<ExperimentSpec> specs;
  for (const auto& c : cases) {
    SimConfig cfg =
        with_policies(mha_bound_config(), ThrottlePolicy::kDynMg, c.arb);
    cfg.arb.hit_buffer_depth = c.hit_buffer;
    cfg.arb.sent_reqs_depth = c.sent_reqs;
    specs.push_back({c.name, cfg, Workload::logit(model, L, cfg)});
  }
  const auto results = run_experiments(specs, 0, /*verbose=*/true);

  TextTable t("speculation ablation (llama3-70b " + seq_label(L) +
              ", dynmg, MHA-bound regime)");
  t.set_header({"arbiter", "speedup vs fcfs", "mshr_hit_rate", "l2_hit_rate",
                "mshr_entry_util"});
  for (const auto& r : results) {
    t.add_row({r.name, TextTable::num(r.stats.speedup_vs(results[0].stats)),
               TextTable::num(r.stats.mshr_hit_rate),
               TextTable::num(r.stats.l2_hit_rate),
               TextTable::num(r.stats.mshr_entry_util)});
  }
  t.print(std::cout);

  std::cout << "\nreading guide: 'oracle' bounds what better prediction "
               "could buy over the\npaper's hit_buffer+sent_reqs; hb=0 "
               "isolates the MSHR_snapshot path; the\nsent_reqs=0 row shows "
               "the cost of arbitrating on a stale snapshot (paper\n"
               "\xc2\xa7" "4.3.1's motivation for the structure).\n";
  return 0;
}
