// Extension table: energy and energy-delay product per policy (the paper
// reports speedup and area only; energy is the natural third axis for an
// LLC study - throttling trades parallelism for locality, and locality is
// energy). Uses the post-hoc energy model in sim/energy.hpp.
#include "bench_util.hpp"
#include "sim/energy.hpp"

using namespace llamcat;
using namespace llamcat::bench;

int main() {
  print_header("Extension: energy per policy (post-hoc model)");

  const std::uint64_t L = quick_scale() ? 2048 : 8192;
  const ModelShape model = ModelShape::llama3_70b();
  const EnergyConfig energy;

  const std::vector<NamedPolicy> policies = {
      {"unopt", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"dyncta", ThrottlePolicy::kDyncta, ArbPolicy::kFcfs},
      {"lcs", ThrottlePolicy::kLcs, ArbPolicy::kFcfs},
      {"dynmg", ThrottlePolicy::kDynMg, ArbPolicy::kFcfs},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };

  std::vector<ExperimentSpec> specs;
  for (const auto& p : policies) {
    SimConfig cfg = with_policies(mha_bound_config(), p.thr, p.arb);
    specs.push_back({p.name, cfg, Workload::logit(model, L, cfg)});
  }
  const auto results = run_experiments(specs, 0, /*verbose=*/true);
  const SimConfig report_cfg = mha_bound_config();

  TextTable t("energy per policy (llama3-70b " + seq_label(L) +
              ", MHA-bound regime)");
  t.set_header({"policy", "speedup", "total_mJ", "dram_mJ", "llc_mJ",
                "avg_W", "EDP(norm)", "pJ/B(dram)"});
  const EnergyReport base_e =
      estimate_energy(energy, report_cfg, results[0].stats);
  for (const auto& r : results) {
    const EnergyReport e = estimate_energy(energy, report_cfg, r.stats);
    t.add_row({r.name, TextTable::num(r.stats.speedup_vs(results[0].stats)),
               TextTable::num(e.total_j() * 1e3),
               TextTable::num((e.dram_dynamic_j + e.dram_static_j) * 1e3),
               TextTable::num(e.llc_j * 1e3),
               TextTable::num(e.avg_power_w()),
               TextTable::num(e.edp_js() / base_e.edp_js()),
               TextTable::num(e.dram_pj_per_byte(r.stats), 1)});
  }
  t.print(std::cout);

  std::cout << "\nreading guide: a policy that wins wall-clock without "
               "raising DRAM traffic\nlowers EDP super-linearly (static "
               "energy scales with time); constants are\ncalibration-grade, "
               "so compare rows, not absolute joules.\n";
  return 0;
}
