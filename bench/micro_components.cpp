// Component microbenchmarks (google-benchmark): throughput of the MSHR,
// cache array, DRAM controller, trace generator and the full simulator.
#include <benchmark/benchmark.h>

#include "cache/cache_array.hpp"
#include "cache/mshr.hpp"
#include "common/rng.hpp"
#include "dram/dram_system.hpp"
#include "sim/experiment.hpp"
#include "trace/tracegen.hpp"

namespace llamcat {
namespace {

void BM_MshrAddRelease(benchmark::State& state) {
  Mshr mshr(6, 8);
  std::uint64_t n = 0;
  for (auto _ : state) {
    const Addr line = (n++ % 6) * kLineBytes;
    if (mshr.find(line) == nullptr && mshr.entry_available()) {
      mshr.add(line, MshrTarget{0, 0, false}, 0);
    } else if (mshr.find(line) != nullptr) {
      benchmark::DoNotOptimize(mshr.release(line));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MshrAddRelease);

void BM_CacheArrayTouchFill(benchmark::State& state) {
  CacheArray array(4096, 8, ReplPolicy::kLru, InsertPolicy::kMru);
  Xoshiro256 rng(7);
  std::uint64_t n = 0;
  for (auto _ : state) {
    const Addr line = rng.below(1 << 20) * kLineBytes;
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_index(line) & 4095);
    if (!array.touch(set, line)) array.fill(set, line, false);
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CacheArrayTouchFill);

void BM_DramStreamRead(benchmark::State& state) {
  const SimConfig cfg = SimConfig::table5();
  DramSystem dram(cfg.dram, cfg.core_hz);
  std::uint64_t completed = 0;
  dram.on_read_complete = [&](const DramCompletion&) { ++completed; };
  Addr next = 0;
  for (auto _ : state) {
    const DramRequest r{next, false, 0};
    if (dram.can_accept(r)) {
      dram.enqueue(r);
      next += kLineBytes;
    }
    dram.tick_core_cycle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}
BENCHMARK(BM_DramStreamRead);

void BM_TraceGenInstrAt(benchmark::State& state) {
  const OperatorSpec spec =
      OperatorSpec::logit(ModelShape::llama3_70b(), 4096);
  Mapping m;
  TraceGen gen(spec, m);
  std::uint64_t tb = 0, i = 0, n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.instr_at(tb, static_cast<std::uint32_t>(i)));
    if (++i >= gen.instr_count(tb)) {
      i = 0;
      tb = (tb + 1) % gen.num_tbs();
    }
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TraceGenInstrAt);

void BM_FullSimSmall(benchmark::State& state) {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 2;
  m.group_size = 4;
  const Workload wl = Workload::logit(m, 128, cfg);
  for (auto _ : state) {
    const SimStats s = run_simulation(cfg, wl);
    benchmark::DoNotOptimize(s.cycles);
  }
}
BENCHMARK(BM_FullSimSmall)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace llamcat
