// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/math_util.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"

namespace llamcat::bench {

/// True when LLAMCAT_PAPER_SCALE=1: run the paper's full problem sizes
/// (32K sequences, both models everywhere). The default is a reduced scale
/// that preserves every regime/shape but keeps the whole bench suite to
/// minutes; each binary prints which scale it used.
inline bool paper_scale() {
  const char* v = std::getenv("LLAMCAT_PAPER_SCALE");
  return v != nullptr && std::string(v) == "1";
}

inline bool quick_scale() {
  const char* v = std::getenv("LLAMCAT_QUICK");
  return v != nullptr && std::string(v) == "1";
}

struct NamedPolicy {
  std::string name;
  ThrottlePolicy thr;
  ArbPolicy arb;
};

/// The paper's baseline machine (Table 5).
///
/// The paper splits its evaluation into two regimes (§6.2.1): Fig 7/8 study
/// a system "mainly bottlenecked by miss handling throughput" while Fig 9
/// adds cache-capacity pressure. Thread-block dispatch selects the regime:
/// wave-preserving round-robin keeps the concurrently-running thread blocks
/// inside one GQA wave, so the MSHR pool (not cache capacity) is the
/// limiter; the static per-core-chunk dispatch spreads in-flight blocks
/// over a wide address span and recreates the capacity-pressure regime.
inline SimConfig base_config(
    std::uint64_t llc_mb = 16,
    TbDispatch dispatch = TbDispatch::kStaticBlocked) {
  SimConfig cfg = SimConfig::table5();
  cfg.llc.size_bytes = llc_mb << 20;
  cfg.core.tb_dispatch = dispatch;
  return cfg;
}

/// Machine configured for the miss-handling-throughput-bound regime of
/// Fig 7 / Fig 8 (§6.3).
inline SimConfig mha_bound_config(std::uint64_t llc_mb = 16) {
  return base_config(llc_mb, TbDispatch::kPartitionedStealing);
}

inline ModelShape model_by_name(const std::string& name) {
  return name == "405b" ? ModelShape::llama3_405b()
                        : ModelShape::llama3_70b();
}

/// Runs all (policy x seq) experiments for one model and returns the
/// results, indexed [policy][seq].
inline std::vector<std::vector<SimStats>> run_grid(
    const ModelShape& model, const std::vector<std::uint64_t>& seqs,
    const std::vector<NamedPolicy>& policies, std::uint64_t llc_mb = 16,
    TbDispatch dispatch = TbDispatch::kStaticBlocked) {
  std::vector<ExperimentSpec> specs;
  for (const auto& p : policies) {
    for (std::uint64_t L : seqs) {
      SimConfig cfg =
          with_policies(base_config(llc_mb, dispatch), p.thr, p.arb);
      specs.push_back(ExperimentSpec{
          p.name + "/" + std::to_string(L), cfg,
          Workload::logit(model, L, cfg)});
    }
  }
  const auto results = run_experiments(specs, 0, /*verbose=*/true);
  std::vector<std::vector<SimStats>> grid(policies.size());
  std::size_t k = 0;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    for (std::size_t s = 0; s < seqs.size(); ++s) grid[p].push_back(
        results[k++].stats);
  }
  return grid;
}

inline std::string seq_label(std::uint64_t L) {
  if (L % 1024 == 0) return std::to_string(L / 1024) + "K";
  return std::to_string(L);
}

inline void print_header(const std::string& what) {
  std::cout << "\n==========================================================\n"
            << what << "\n"
            << "scale: "
            << (paper_scale() ? "paper (LLAMCAT_PAPER_SCALE=1)"
                              : "default (set LLAMCAT_PAPER_SCALE=1 for the "
                                "paper's full sizes)")
            << "\n"
            << "==========================================================\n";
}

}  // namespace llamcat::bench
