// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/math_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"

namespace llamcat::bench {

/// Machine-readable bench output: a flat JSON array of measurement rows,
/// written next to the human tables so CI can archive the perf trajectory
/// across PRs. Usage:
///   JsonRows json;
///   json.begin_row().field("policy", name).field("cycles", cycles);
///   ...
///   json.write_if_requested(argc, argv);  // honors --json=PATH
class JsonRows {
 public:
  JsonRows& begin_row() {
    rows_.emplace_back();
    return *this;
  }
  JsonRows& field(std::string_view key, std::string_view value) {
    std::ostringstream os;
    os << '"' << value << '"';  // bench keys/values never need escaping
    return raw(key, os.str());
  }
  JsonRows& field(std::string_view key, double value) {
    std::ostringstream os;
    os << value;
    return raw(key, os.str());
  }
  JsonRows& field(std::string_view key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }

  void write(std::ostream& os) const {
    os << "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      os << "  {" << rows_[i] << (i + 1 < rows_.size() ? "},\n" : "}\n");
    }
    os << "]\n";
  }

  /// Scans argv for --json=PATH and writes the rows there when present.
  /// Returns false (after a diagnostic) only if the file cannot be opened.
  bool write_if_requested(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg(argv[i]);
      if (arg.rfind("--json=", 0) != 0) continue;
      const std::string path(arg.substr(7));
      std::ofstream out(path);
      if (!out) {
        std::cerr << "cannot open " << path << "\n";
        return false;
      }
      write(out);
      std::cout << "wrote " << path << "\n";
    }
    return true;
  }

 private:
  JsonRows& raw(std::string_view key, const std::string& value) {
    std::string& row = rows_.back();
    if (!row.empty()) row += ", ";
    row += '"';
    row += key;
    row += "\": ";
    row += value;
    return *this;
  }

  std::vector<std::string> rows_;
};

/// True when LLAMCAT_PAPER_SCALE=1: run the paper's full problem sizes
/// (32K sequences, both models everywhere). The default is a reduced scale
/// that preserves every regime/shape but keeps the whole bench suite to
/// minutes; each binary prints which scale it used.
inline bool paper_scale() {
  const char* v = std::getenv("LLAMCAT_PAPER_SCALE");
  return v != nullptr && std::string(v) == "1";
}

inline bool quick_scale() {
  const char* v = std::getenv("LLAMCAT_QUICK");
  return v != nullptr && std::string(v) == "1";
}

struct NamedPolicy {
  std::string name;
  ThrottlePolicy thr;
  ArbPolicy arb;
};

/// The paper's baseline machine (Table 5).
///
/// The paper splits its evaluation into two regimes (§6.2.1): Fig 7/8 study
/// a system "mainly bottlenecked by miss handling throughput" while Fig 9
/// adds cache-capacity pressure. Thread-block dispatch selects the regime:
/// wave-preserving round-robin keeps the concurrently-running thread blocks
/// inside one GQA wave, so the MSHR pool (not cache capacity) is the
/// limiter; the static per-core-chunk dispatch spreads in-flight blocks
/// over a wide address span and recreates the capacity-pressure regime.
inline SimConfig base_config(
    std::uint64_t llc_mb = 16,
    TbDispatch dispatch = TbDispatch::kStaticBlocked) {
  SimConfig cfg = SimConfig::table5();
  cfg.llc.size_bytes = llc_mb << 20;
  cfg.core.tb_dispatch = dispatch;
  return cfg;
}

/// Machine configured for the miss-handling-throughput-bound regime of
/// Fig 7 / Fig 8 (§6.3).
inline SimConfig mha_bound_config(std::uint64_t llc_mb = 16) {
  return base_config(llc_mb, TbDispatch::kPartitionedStealing);
}

inline ModelShape model_by_name(const std::string& name) {
  return name == "405b" ? ModelShape::llama3_405b()
                        : ModelShape::llama3_70b();
}

/// Runs all (policy x seq) experiments for one model and returns the
/// results, indexed [policy][seq].
inline std::vector<std::vector<SimStats>> run_grid(
    const ModelShape& model, const std::vector<std::uint64_t>& seqs,
    const std::vector<NamedPolicy>& policies, std::uint64_t llc_mb = 16,
    TbDispatch dispatch = TbDispatch::kStaticBlocked) {
  std::vector<ExperimentSpec> specs;
  for (const auto& p : policies) {
    for (std::uint64_t L : seqs) {
      SimConfig cfg =
          with_policies(base_config(llc_mb, dispatch), p.thr, p.arb);
      specs.push_back(ExperimentSpec{
          p.name + "/" + std::to_string(L), cfg,
          Workload::logit(model, L, cfg)});
    }
  }
  const auto results = run_experiments(specs, 0, /*verbose=*/true);
  std::vector<std::vector<SimStats>> grid(policies.size());
  std::size_t k = 0;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    for (std::size_t s = 0; s < seqs.size(); ++s) grid[p].push_back(
        results[k++].stats);
  }
  return grid;
}

/// Runs `n` independent sweep points across the ThreadPool (0 = hardware
/// concurrency) and returns the results indexed by point. fn(i) writes its
/// pre-sized slot i, so the output is bit-identical to the serial loop
/// regardless of which worker finishes first - the same contract as
/// run_experiments and run_fuzz_sweep. Each point must itself be a
/// single-threaded deterministic run (every System is). On failure the
/// TaskGroup rethrows the lowest-indexed point's exception, matching what
/// the serial loop would have thrown first.
template <typename Fn>
auto run_points_parallel(std::size_t n, Fn&& fn, std::size_t threads = 0) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> out(n);
  ThreadPool pool(threads);
  TaskGroup group(n);
  for (std::size_t i = 0; i < n; ++i) {
    group.run(pool, i, [&out, &fn, i] { out[i] = fn(i); });
  }
  group.wait();
  return out;
}

inline std::string seq_label(std::uint64_t L) {
  if (L % 1024 == 0) return std::to_string(L / 1024) + "K";
  return std::to_string(L);
}

inline void print_header(const std::string& what) {
  std::cout << "\n==========================================================\n"
            << what << "\n"
            << "scale: "
            << (paper_scale() ? "paper (LLAMCAT_PAPER_SCALE=1)"
                              : "default (set LLAMCAT_PAPER_SCALE=1 for the "
                                "paper's full sizes)")
            << "\n"
            << "==========================================================\n";
}

}  // namespace llamcat::bench
