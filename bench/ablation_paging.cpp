// Ablation: paged KV eviction vs resident preemption (PR 4) under a tight
// KV budget.
//
// PR 4's serving layer preempts a running request but leaves its KV fully
// resident, so preemption relieves LLC/compute contention yet never
// *budget* pressure: a budget-blocked arrival waits for the long request's
// finish no matter how short it is. The paged KV model (--kv-evict=
// cold-blocks) swaps the preempted request's cold blocks out to a modeled
// DRAM/host tier - freeing budget bytes immediately, so blocked shorts
// admit mid-stream and co-run - and charges a refetch at resume.
//
// Workload: one long-context request decoding from cycle 0 plus staggered
// short arrivals, under a budget that fits the long request and ONE short.
// Resident preemption serializes the shorts (the preempted long request's
// KV pins the budget: at most one short is ever co-resident); cold-block
// eviction swaps the long request out and lets the shorts genuinely
// co-run. Variants:
//
//  - none:         unconditional admission (the PR 3 baseline),
//  - fcfs+pre:     budgeted FCFS + stage-boundary preemption, KV resident,
//  - srf+pre:      budgeted shortest-remaining-first + preemption, resident,
//  - srf+cold@2:   srf+pre with cold-block eviction over a fast host link
//                  (--refetch-cost=2: 32 B/cycle, ~63 GB/s - CXL/NVLink-ish),
//  - srf+cold@8:   the same over the default modeled link (8 B/cycle,
//                  ~16 GB/s - PCIe-gen4-ish).
//
// Expected qualitative result: against resident srf+pre, eviction over the
// fast link wins makespan AND P99 (co-running the shorts beats serializing
// them by more than the refetch costs), while the slow link gives the win
// back - the recompute-vs-reload tradeoff as a measurable policy axis,
// priced by the new swapped-blocks / refetch-bytes / refetch-cycles
// counters in every row. See bench/README.md and docs/metrics.md.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "scenario/scenario.hpp"

using namespace llamcat;
using namespace llamcat::bench;
using scenario::AdmitPolicy;
using scenario::BatchStats;
using scenario::DecodePass;
using scenario::DecodePassConfig;
using scenario::ExecutionMode;
using scenario::RequestBatch;
using scenario::RequestSpec;

namespace {

SimConfig contention_config(ThrottlePolicy thr, ArbPolicy arb) {
  // Same scaled-down core/DRAM setup as ablation_admission, but with a
  // 2 MiB LLC: the co-run-vs-serialize comparison needs the shorts'
  // combined working set to (mostly) fit the cache - on the 1 MiB machine
  // co-running thrashes so badly that nothing can beat serialization.
  SimConfig cfg = with_policies(SimConfig::table5(), thr, arb);
  cfg.core.num_cores = 4;
  cfg.llc.size_bytes = 2ull << 20;
  cfg.llc.num_slices = 2;
  cfg.dram.num_channels = 2;
  cfg.max_cycles = 400'000'000;
  return cfg;
}

// Full llama3-70b head count, like ablation_admission: the paging policies
// matter exactly when one long-context KV stream saturates the scaled-down
// memory system.
ModelShape bench_model() { return ModelShape::llama3_70b(); }

struct PagingVariant {
  std::string name;
  AdmitPolicy policy;
  bool budgeted;
  bool preempt;
  KvEvictPolicy evict;
  std::uint64_t refetch_cost;  // 0 = modeled host-link default (8 B/cycle)
};

const std::vector<PagingVariant>& variants() {
  static const std::vector<PagingVariant> v = {
      {"none", AdmitPolicy::kNone, false, false, KvEvictPolicy::kNone, 0},
      {"fcfs+pre", AdmitPolicy::kFcfs, true, true, KvEvictPolicy::kNone, 0},
      {"srf+pre", AdmitPolicy::kShortestRemaining, true, true,
       KvEvictPolicy::kNone, 0},
      {"srf+cold@2", AdmitPolicy::kShortestRemaining, true, true,
       KvEvictPolicy::kColdBlocks, 2},
      {"srf+cold@8", AdmitPolicy::kShortestRemaining, true, true,
       KvEvictPolicy::kColdBlocks, 0},
  };
  return v;
}

BatchStats run_variant(const RequestBatch& batch, const SimConfig& cfg,
                       std::uint32_t layers, const PagingVariant& v,
                       std::uint64_t budget_bytes) {
  DecodePassConfig pc;
  pc.num_layers = layers;
  pc.include_gemv = false;
  pc.mode = ExecutionMode::kContinuous;
  pc.serving.policy = v.policy;
  pc.serving.kv_budget_bytes = v.budgeted ? budget_bytes : 0;
  pc.serving.preempt = v.preempt;
  pc.serving.kv_evict = v.evict;
  pc.serving.refetch_cost = v.refetch_cost;
  return DecodePass(batch, pc, cfg).run();
}

std::string admit_order(const BatchStats& s) {
  std::vector<const scenario::RequestStats*> rs;
  for (const scenario::RequestStats& r : s.per_request) rs.push_back(&r);
  std::stable_sort(rs.begin(), rs.end(),
                   [](const scenario::RequestStats* a,
                      const scenario::RequestStats* b) {
                     return a->admit_cycle < b->admit_cycle;
                   });
  std::string out;
  for (const scenario::RequestStats* r : rs) {
    if (!out.empty()) out += '>';
    out += std::to_string(r->id);
  }
  return out;
}

double mean_latency(const BatchStats& s) {
  double sum = 0.0;
  for (const scenario::RequestStats& r : s.per_request) {
    sum += static_cast<double>(r.latency());
  }
  return sum / static_cast<double>(s.per_request.size());
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Ablation: paged KV eviction vs resident preemption");
  JsonRows json;

  const std::uint64_t long_seq = paper_scale() ? 8192 : 1024;
  const std::uint64_t short_seq = 128;
  const std::uint32_t layers = 1;
  const std::uint32_t n_short = quick_scale() ? 4 : 6;

  std::vector<NamedPolicy> policies = {
      {"unopt+fcfs", ThrottlePolicy::kNone, ArbPolicy::kFcfs},
      {"dynmg+BMA", ThrottlePolicy::kDynMg, ArbPolicy::kBma},
  };
  if (quick_scale()) policies = {{"dynmg+BMA", ThrottlePolicy::kDynMg,
                                  ArbPolicy::kBma}};

  // One long request from cycle 0, shorts every 10k cycles. The budget
  // fits the long request plus exactly one short: resident preemption can
  // never hold more than one short co-resident while the (preempted) long
  // request lives, so the shorts serialize; eviction frees the long
  // request's share and the shorts co-run.
  std::vector<RequestSpec> specs;
  specs.push_back({0, long_seq, 0, 1});
  for (std::uint32_t i = 0; i < n_short; ++i) {
    specs.push_back({i + 1, short_seq, 10'000ull * (i + 1), 1});
  }
  const RequestBatch batch(bench_model(), specs);
  const std::uint64_t budget =
      (batch.peak_kv_tokens(specs[0]) + batch.peak_kv_tokens(specs[1])) *
      batch.kv_bytes_per_token() * layers;

  TextTable t("tight budget (long + 1 short): 1 long (" +
              std::to_string(long_seq) + ") + " + std::to_string(n_short) +
              " short (" + std::to_string(short_seq) + ")");
  t.set_header({"policy", "variant", "makespan", "mean lat", "p50 lat",
                "p99 lat", "pre", "swap_blk", "refetch_b", "refetch_c",
                "admit order"});

  for (const NamedPolicy& p : policies) {
    const SimConfig cfg = contention_config(p.thr, p.arb);
    for (const PagingVariant& v : variants()) {
      const BatchStats s = run_variant(batch, cfg, layers, v, budget);
      t.add_row({p.name, v.name, std::to_string(s.makespan),
                 TextTable::num(mean_latency(s)),
                 std::to_string(s.latency_percentile(50.0)),
                 std::to_string(s.latency_percentile(99.0)),
                 std::to_string(s.total_preemptions()),
                 std::to_string(s.total_swapped_blocks()),
                 std::to_string(s.total_refetch_bytes()),
                 std::to_string(s.total_refetch_cycles()), admit_order(s)});
      json.begin_row()
          .field("bench", "ablation_paging")
          .field("policy", p.name)
          .field("variant", v.name)
          .field("kv_budget", v.budgeted ? budget : 0)
          .field("kv_evict", to_string(v.evict))
          .field("refetch_cost", v.refetch_cost)
          .field("makespan", s.makespan)
          .field("mean_latency", mean_latency(s))
          .field("p50_latency", s.latency_percentile(50.0))
          .field("p99_latency", s.latency_percentile(99.0))
          .field("queue_wait", s.total_queue_wait())
          .field("preemptions", s.total_preemptions())
          .field("swapped_blocks", s.total_swapped_blocks())
          .field("refetch_bytes", s.total_refetch_bytes())
          .field("refetch_cycles", s.total_refetch_cycles())
          .field("admit_order", admit_order(s));
      for (const scenario::RequestStats& r : s.per_request) {
        json.begin_row()
            .field("bench", "ablation_paging_requests")
            .field("policy", p.name)
            .field("variant", v.name)
            .field("request", static_cast<std::uint64_t>(r.id))
            .field("arrival", r.arrival_cycle)
            .field("admit_cycle", r.admit_cycle)
            .field("finish", r.finish_cycle)
            .field("latency", r.latency())
            .field("queue_wait", r.queued_cycles)
            .field("preemptions", static_cast<std::uint64_t>(r.preemptions))
            .field("swapped_blocks", r.swapped_blocks)
            .field("refetch_bytes", r.refetch_bytes)
            .field("refetch_cycles", r.refetch_cycles);
      }
    }
  }
  t.print(std::cout);

  std::cout << "\nResident preemption (fcfs+pre / srf+pre) frees no budget: "
               "the preempted long\nrequest's KV pins its share, the shorts "
               "serialize one at a time, and P99 is the\nlast short's "
               "arrival-to-finish. Cold-block eviction swaps the long "
               "request out, the\nshorts co-run, and over a fast host link "
               "(srf+cold@2) that beats srf+pre on\nmakespan AND P99 - the "
               "refetch columns price exactly what the win costs. Over "
               "the\nslow default link (srf+cold@8) the refetch eats the "
               "co-run gain back on makespan\nwhile the short-request "
               "latencies keep their improvement: recompute-vs-reload "
               "is\na knob, not a universal win.\n";
  return json.write_if_requested(argc, argv) ? 0 : 1;
}
