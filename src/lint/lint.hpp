// llamcat_lint: in-repo determinism & concurrency static analysis.
//
// The repo's verification story (golden byte-identity rows, digest-based
// determinism suites, bit-identical parallel sweeps) rests on rules that no
// general-purpose tool checks: iteration order must never feed stats, no
// pointer-derived ordering, no ambient wall-clock or RNG in simulation
// paths, every *Config validates itself. This module turns those rules into
// a lightweight, LLVM-free checker: a real lexer (comments, strings, raw
// strings, preprocessor lines handled) followed by per-file token analysis
// with a small declared-symbol table. It is deliberately heuristic - docs/
// static-analysis.md spells out exactly what each rule does and does not
// see - and every rule is suppressible in place with a trailing allow
// directive naming the rule and a mandatory reason (exact syntax in
// docs/static-analysis.md; this comment avoids spelling a live directive
// because the tool lints its own source).
//
// A suppression without a reason is itself a violation
// (`allow-without-reason`), as is one naming an unknown rule
// (`unknown-rule`) or one that no longer suppresses anything
// (`unused-suppression`), so the suppression inventory cannot rot.
//
// The rule catalog in docs/static-analysis.md and the fixture corpus in
// tests/lint_fixtures/ are kept in lockstep with `rules()` by
// tests/test_lint.cpp and tools/check_doc_links.sh.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace llamcat::lint {

/// One checkable rule. `name` is the stable kebab-case id used by allow
/// and expect directives, --list-rules and the docs.
struct Rule {
  std::string_view name;
  std::string_view summary;
};

/// The full rule catalog, in stable documentation order.
[[nodiscard]] const std::vector<Rule>& rules();

/// True when `name` is a known rule id.
[[nodiscard]] bool is_rule(std::string_view name);

/// One finding: `rule` fired at `file`:`line`.
struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// A fixture expectation: expect-directive markers are parsed out of
/// comments so the fixture corpus can annotate its intended violations
/// in place. The CLI ignores them; tests/test_lint.cpp compares them
/// against the actual findings exactly.
struct Expectation {
  int line = 0;
  std::string rule;
};

/// Result of linting one translation unit.
struct FileReport {
  /// Active violations (not suppressed). Non-empty => lint fails.
  std::vector<Violation> violations;
  /// Violations matched by a reasoned `lint:allow` - reported so tooling
  /// can count honored suppressions and tests can pin them.
  std::vector<Violation> suppressed;
  /// Fixture `lint:expect` markers found in the file.
  std::vector<Expectation> expectations;
};

/// Lints `content` (reported as `file`). `context` is an optional companion
/// source whose declarations seed the symbol table but which is not itself
/// analyzed - the CLI passes foo.hpp as context when linting foo.cpp so
/// members declared in the header (the normal C++ split) keep their
/// container kinds across the file boundary.
[[nodiscard]] FileReport lint_source(std::string_view file,
                                     std::string_view content,
                                     std::string_view context = {});

/// Reads and lints one file from disk (companion header resolved
/// automatically for .cpp inputs). Throws std::runtime_error on I/O error.
[[nodiscard]] FileReport lint_file(const std::string& path);

/// Expands files/directories (recursively, .cpp/.hpp/.cc/.h, sorted so the
/// report order is deterministic) into a flat file list.
[[nodiscard]] std::vector<std::string> collect_inputs(
    const std::vector<std::string>& paths);

}  // namespace llamcat::lint
