#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace llamcat::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule catalog. Stable ids: docs/static-analysis.md and the fixture corpus
// name these verbatim, and tools/check_doc_links.sh greps this table (keep
// one `{"rule-id",` per line).
// ---------------------------------------------------------------------------
const std::vector<Rule>& rule_table() {
  static const std::vector<Rule> kRules = {
      {"unordered-iteration",
       "iterating an unordered_{map,set} feeds hash-table order into "
       "downstream state; sort the keys first or suppress with the reason "
       "the loop is order-insensitive"},
      {"pointer-keyed-container",
       "a map/set keyed by a pointer orders (or hashes) by address, which "
       "changes run to run under ASLR; key by a stable id instead"},
      {"ambient-rng",
       "rand()/srand()/std::random_device draw from ambient process state; "
       "use the seeded deterministic generators in common/rng.hpp"},
      {"wallclock",
       "wall-clock reads (std::chrono ...::now(), time(), clock()) are "
       "nondeterministic; simulation time must come from the simulated "
       "clock (bench wall-clock measurement suppresses with a reason)"},
      {"float-accumulation",
       "float/double accumulation inside an unordered-container loop makes "
       "the rounding depend on hash order even when the element set is "
       "fixed; accumulate into integers or sort first"},
      {"config-validate",
       "every *Config struct must declare validate() so misconfiguration "
       "fails loudly at construction instead of corrupting a run"},
      {"raw-mutex",
       "std:: locking primitives are invisible to clang -Wthread-safety; "
       "use llamcat::Mutex / MutexLock / CondVar from common/sync.hpp so "
       "GUARDED_BY contracts stay machine-checked"},
      {"allow-without-reason",
       "a lint:allow(...) suppression must carry ': <reason>' text; an "
       "unexplained suppression is indistinguishable from a silenced bug"},
      {"unknown-rule",
       "a lint directive names a rule id that does not exist (typo or a "
       "rule that was removed); fix or delete the directive"},
      {"unused-suppression",
       "a lint:allow(...) that suppresses nothing on its line; delete it "
       "so the suppression inventory stays honest"},
  };
  return kRules;
}

// Meta rules police the directives themselves: their allows are exempt from
// the unused-suppression check (a meta allow's target is another directive,
// not code).
bool is_meta_rule(std::string_view r) {
  return r == "allow-without-reason" || r == "unknown-rule" ||
         r == "unused-suppression";
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------
enum class TokKind { kIdent, kNumber, kPunct };

struct Tok {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct Directive {
  enum class Kind { kAllow, kExpect };
  Kind kind;
  int line = 0;
  std::vector<std::string> rule_names;
  bool has_reason = false;
};

struct Lexed {
  std::vector<Tok> toks;
  std::vector<Directive> directives;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses every allow/expect directive occurrence inside one comment's text.
void parse_directives(std::string_view comment, int line,
                      std::vector<Directive>& out) {
  std::size_t pos = 0;
  while ((pos = comment.find("lint:", pos)) != std::string_view::npos) {
    std::size_t p = pos + 5;
    Directive d;
    d.line = line;
    if (comment.compare(p, 6, "allow(") == 0) {
      d.kind = Directive::Kind::kAllow;
      p += 6;
    } else if (comment.compare(p, 7, "expect(") == 0) {
      d.kind = Directive::Kind::kExpect;
      p += 7;
    } else {
      pos = p;
      continue;
    }
    const std::size_t close = comment.find(')', p);
    if (close == std::string_view::npos) {
      pos = p;
      continue;
    }
    // Split the rule list on commas, trimming whitespace.
    std::string name;
    for (std::size_t i = p; i <= close; ++i) {
      const char c = i < close ? comment[i] : ',';
      if (c == ',') {
        while (!name.empty() && name.back() == ' ') name.pop_back();
        if (!name.empty()) d.rule_names.push_back(name);
        name.clear();
      } else if (c != ' ' || !name.empty()) {
        name += c;
      }
    }
    // A reason is ": <non-empty text>" after the closing paren.
    std::size_t r = close + 1;
    while (r < comment.size() && comment[r] == ' ') ++r;
    if (r < comment.size() && comment[r] == ':') {
      ++r;
      while (r < comment.size() && comment[r] == ' ') ++r;
      d.has_reason = r < comment.size();
    }
    out.push_back(std::move(d));
    pos = close;
  }
}

// Tokenizes C++ source: comments become directives, string/char literals
// and preprocessor lines vanish, everything else becomes Ident/Number/Punct
// tokens with line numbers. Multi-char operators that the analyses care
// about (::, ->, compound assigns, ++/--) are fused; << and >> stay as two
// tokens so template-argument depth counting stays trivial.
Lexed lex(std::string_view src) {
  Lexed out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;

  auto newline = [&] {
    ++line;
    at_line_start = true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring continuations.
    if (at_line_start && c == '#') {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          newline();
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i + 2;
      std::size_t end = src.find('\n', start);
      if (end == std::string_view::npos) end = n;
      parse_directives(src.substr(start, end - start), line, out.directives);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      std::string text;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        text += src[j];
        ++j;
      }
      parse_directives(text, start_line, out.directives);
      i = j + 2 <= n ? j + 2 : n;
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, j);
      if (end == std::string_view::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      i = std::min(n, end + closer.size());
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != c) {
        if (src[j] == '\\') ++j;
        if (src[j] == '\n') ++line;  // unterminated; keep line count sane
        ++j;
      }
      i = j + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      out.toks.push_back({TokKind::kIdent, std::string(src.substr(i, j - i)),
                          line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      // A '\'' between digit characters is a C++14 digit separator
      // (20'000), not a char-literal open - swallowing one as a literal
      // would blind every rule until the next stray apostrophe.
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       (src[j] == '\'' && j + 1 < n &&
                        ident_char(src[j + 1])) ||
                       ((src[j] == '+' || src[j] == '-') &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      out.toks.push_back({TokKind::kNumber, std::string(src.substr(i, j - i)),
                          line});
      i = j;
      continue;
    }
    // Punctuation: fuse the operators the analyses match on.
    static constexpr std::string_view kTwoChar[] = {
        "::", "->", "+=", "-=", "*=", "/=", "%=", "&=",
        "|=", "^=", "==", "!=", "<=", ">=", "&&", "||", "++", "--"};
    std::string p(1, c);
    if (i + 1 < n) {
      const std::string_view two = src.substr(i, 2);
      for (const std::string_view cand : kTwoChar) {
        if (two == cand) {
          p = std::string(two);
          break;
        }
      }
    }
    out.toks.push_back({TokKind::kPunct, p, line});
    i += p.size();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Symbol table: names declared with unordered-container types and names
// declared float/double, collected from the context (companion header) and
// the file itself.
// ---------------------------------------------------------------------------
struct Symbols {
  std::unordered_set<std::string> unordered_vars;
  std::unordered_set<std::string> unordered_aliases;  // using X = unordered_*
  std::unordered_set<std::string> float_vars;
};

bool is_unordered_container(const std::string& t) {
  return t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset";
}

bool is_assoc_container(const std::string& t) {
  return t == "map" || t == "set" || t == "multimap" || t == "multiset" ||
         is_unordered_container(t);
}

// Returns the index just past a balanced <...> starting at `toks[i]` == "<",
// or `i` if the template args never close.
std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].kind != TokKind::kPunct) continue;
    if (toks[j].text == "<") ++depth;
    if (toks[j].text == ">") {
      if (--depth == 0) return j + 1;
    }
    // A ; at depth > 0 means we mis-parsed (comparison, not template args).
    if (toks[j].text == ";") return i;
  }
  return i;
}

void collect_symbols(const std::vector<Tok>& toks, Symbols& sym) {
  const std::size_t n = toks.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Tok& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;

    // using Alias = ... unordered_map< ... ;
    if (t.text == "using" && i + 2 < n && toks[i + 1].kind == TokKind::kIdent &&
        toks[i + 2].kind == TokKind::kPunct && toks[i + 2].text == "=") {
      for (std::size_t j = i + 3; j < n; ++j) {
        if (toks[j].kind == TokKind::kPunct && toks[j].text == ";") break;
        if (toks[j].kind == TokKind::kIdent &&
            (is_unordered_container(toks[j].text) ||
             sym.unordered_aliases.count(toks[j].text) != 0)) {
          sym.unordered_aliases.insert(toks[i + 1].text);
          break;
        }
      }
      continue;
    }

    // unordered_map<...> [*&const]* name   (members, locals, params)
    const bool unordered_type = is_unordered_container(t.text) ||
                                sym.unordered_aliases.count(t.text) != 0;
    if (unordered_type) {
      std::size_t j = i + 1;
      if (j < n && toks[j].kind == TokKind::kPunct && toks[j].text == "<") {
        j = skip_template_args(toks, j);
        if (j == i + 1) continue;  // unbalanced; bail on this site
      }
      while (j < n && ((toks[j].kind == TokKind::kPunct &&
                        (toks[j].text == "*" || toks[j].text == "&")) ||
                       (toks[j].kind == TokKind::kIdent &&
                        toks[j].text == "const"))) {
        ++j;
      }
      if (j < n && toks[j].kind == TokKind::kIdent &&
          toks[j].text != "const") {
        sym.unordered_vars.insert(toks[j].text);
      }
      continue;
    }

    // float/double name  (skip template args `<double>` and declarations of
    // functions returning float: the next-next token would be `(`).
    if (t.text == "float" || t.text == "double") {
      const bool in_template_args =
          i > 0 && toks[i - 1].kind == TokKind::kPunct &&
          (toks[i - 1].text == "<" || toks[i - 1].text == ",");
      if (in_template_args) continue;
      if (i + 1 < n && toks[i + 1].kind == TokKind::kIdent) {
        const bool is_function = i + 2 < n &&
                                 toks[i + 2].kind == TokKind::kPunct &&
                                 toks[i + 2].text == "(";
        if (!is_function) sym.float_vars.insert(toks[i + 1].text);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------
struct Finding {
  int line;
  std::string rule;
  std::string message;
};

class Analyzer {
 public:
  Analyzer(const std::vector<Tok>& toks, const Symbols& sym)
      : toks_(toks), sym_(sym) {}

  std::vector<Finding> run() {
    scan_range_for_loops();
    scan_iterator_calls();
    scan_pointer_keys();
    scan_ambient_rng();
    scan_wallclock();
    scan_config_structs();
    scan_raw_mutex();
    return std::move(findings_);
  }

 private:
  const std::vector<Tok>& toks_;
  const Symbols& sym_;
  std::vector<Finding> findings_;

  bool punct(std::size_t i, std::string_view p) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kPunct &&
           toks_[i].text == p;
  }
  bool ident(std::size_t i) const {
    return i < toks_.size() && toks_[i].kind == TokKind::kIdent;
  }

  void add(int line, std::string_view rule, std::string message) {
    findings_.push_back({line, std::string(rule), std::move(message)});
  }

  // Index just past a balanced (...) starting at toks_[i] == "(".
  std::size_t skip_parens(std::size_t i) const {
    int depth = 0;
    for (std::size_t j = i; j < toks_.size(); ++j) {
      if (punct(j, "(")) ++depth;
      if (punct(j, ")") && --depth == 0) return j + 1;
    }
    return toks_.size();
  }

  // [begin, end) token span of the statement or block following index i
  // (used for loop bodies).
  std::pair<std::size_t, std::size_t> body_span(std::size_t i) const {
    if (punct(i, "{")) {
      int depth = 0;
      for (std::size_t j = i; j < toks_.size(); ++j) {
        if (punct(j, "{")) ++depth;
        if (punct(j, "}") && --depth == 0) return {i + 1, j};
      }
      return {i + 1, toks_.size()};
    }
    for (std::size_t j = i; j < toks_.size(); ++j) {
      if (punct(j, ";")) return {i, j};
    }
    return {i, toks_.size()};
  }

  // unordered-iteration (range-for form) + float-accumulation inside the
  // loop body.
  void scan_range_for_loops() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!(ident(i) && toks_[i].text == "for" && punct(i + 1, "("))) continue;
      const std::size_t close = skip_parens(i + 1) - 1;
      // Find the range-for ':' at paren depth 1 (:: is a distinct token).
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (punct(j, "(")) ++depth;
        if (punct(j, ")")) --depth;
        if (depth == 1 && punct(j, ":")) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      // Identifiers at nesting depth 0 of the range expression; names inside
      // nested parens are call arguments (e.g. sorted_keys(m)) - the copy
      // the call returns is the fix, so they are exempt.
      bool unordered = false;
      int expr_depth = 0;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (punct(j, "(")) ++expr_depth;
        if (punct(j, ")")) --expr_depth;
        if (expr_depth == 0 && ident(j) && !punct(j + 1, "(") &&
            sym_.unordered_vars.count(toks_[j].text) != 0) {
          unordered = true;
          break;
        }
      }
      if (!unordered) continue;
      add(toks_[i].line, "unordered-iteration",
          "range-for over unordered container; iteration order is "
          "hash/ASLR-dependent");
      // float-accumulation: compound add/sub on a float/double-declared
      // name anywhere in this loop's body.
      const auto [b, e] = body_span(close + 1);
      for (std::size_t j = b; j < e; ++j) {
        if (toks_[j].kind == TokKind::kPunct &&
            (toks_[j].text == "+=" || toks_[j].text == "-=") && j > 0 &&
            ident(j - 1) && sym_.float_vars.count(toks_[j - 1].text) != 0) {
          add(toks_[j].line, "float-accumulation",
              "float/double accumulated across unordered iteration; "
              "rounding depends on hash order");
        }
      }
    }
  }

  // unordered-iteration (explicit iterator form): m.begin() / m.cbegin().
  void scan_iterator_calls() {
    for (std::size_t i = 0; i + 3 < toks_.size(); ++i) {
      if (!(ident(i) && sym_.unordered_vars.count(toks_[i].text) != 0)) {
        continue;
      }
      if (!(punct(i + 1, ".") || punct(i + 1, "->"))) continue;
      if (!ident(i + 2)) continue;
      const std::string& m = toks_[i + 2].text;
      if ((m == "begin" || m == "cbegin" || m == "rbegin") &&
          punct(i + 3, "(")) {
        add(toks_[i].line, "unordered-iteration",
            "iterator over unordered container; iteration order is "
            "hash/ASLR-dependent");
      }
    }
  }

  // pointer-keyed-container: map/set<...> whose first template argument is
  // a pointer type.
  void scan_pointer_keys() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!(ident(i) && is_assoc_container(toks_[i].text) &&
            punct(i + 1, "<"))) {
        continue;
      }
      // First template argument: tokens until a ',' or the closing '>' at
      // depth 1.
      int depth = 0;
      std::size_t last_meaningful = 0;
      bool done = false;
      for (std::size_t j = i + 1; j < toks_.size() && !done; ++j) {
        if (toks_[j].kind == TokKind::kPunct) {
          if (toks_[j].text == "<") {
            ++depth;
            continue;
          }
          if (toks_[j].text == ">" && --depth == 0) done = true;
          if (toks_[j].text == "," && depth == 1) done = true;
          if (toks_[j].text == ";") break;  // mis-parse (comparison)
        }
        if (!done) last_meaningful = j;
      }
      if (last_meaningful != 0 && punct(last_meaningful, "*")) {
        add(toks_[i].line, "pointer-keyed-container",
            "associative container keyed by a pointer; ordering/hash "
            "follows the allocator, not the data");
      }
    }
  }

  void scan_ambient_rng() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!ident(i)) continue;
      const std::string& t = toks_[i].text;
      const bool member = i > 0 && (punct(i - 1, ".") || punct(i - 1, "->"));
      if (member) continue;
      if (t == "random_device") {
        add(toks_[i].line, "ambient-rng",
            "std::random_device draws entropy from the environment");
        continue;
      }
      if ((t == "rand" || t == "srand" || t == "rand_r" || t == "drand48" ||
           t == "random_shuffle") &&
          punct(i + 1, "(")) {
        add(toks_[i].line, "ambient-rng",
            t + "() draws from ambient process-global state");
      }
    }
  }

  void scan_wallclock() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!ident(i)) continue;
      const std::string& t = toks_[i].text;
      // <clock>::now() - the argless overloads read the host clock.
      if (t == "now" && i > 0 && punct(i - 1, "::") && punct(i + 1, "(") &&
          punct(i + 2, ")")) {
        add(toks_[i].line, "wallclock", "clock ::now() reads the host clock");
        continue;
      }
      const bool member = i > 0 && (punct(i - 1, ".") || punct(i - 1, "->"));
      if (member) continue;
      if ((t == "time" || t == "clock" || t == "gettimeofday" ||
           t == "clock_gettime" || t == "localtime" || t == "gmtime" ||
           t == "mktime") &&
          punct(i + 1, "(")) {
        add(toks_[i].line, "wallclock", t + "() reads the host clock");
      }
    }
  }

  // config-validate: struct/class *Config must declare validate(.
  void scan_config_structs() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!(ident(i) &&
            (toks_[i].text == "struct" || toks_[i].text == "class"))) {
        continue;
      }
      if (!ident(i + 1)) continue;
      const std::string& name = toks_[i + 1].text;
      if (name.size() < 7 || name.compare(name.size() - 6, 6, "Config") != 0) {
        continue;
      }
      // Skip to the body; a ';' first means forward declaration.
      std::size_t j = i + 2;
      while (j < toks_.size() && !punct(j, "{") && !punct(j, ";")) ++j;
      if (j >= toks_.size() || punct(j, ";")) continue;
      int depth = 0;
      bool has_validate = false;
      for (std::size_t k = j; k < toks_.size(); ++k) {
        if (punct(k, "{")) ++depth;
        if (punct(k, "}") && --depth == 0) break;
        if (ident(k) && toks_[k].text == "validate" && punct(k + 1, "(")) {
          has_validate = true;
        }
      }
      if (!has_validate) {
        add(toks_[i].line, "config-validate",
            name + " declares no validate(); configs must fail loudly on "
                   "bad values");
      }
    }
  }

  void scan_raw_mutex() {
    for (std::size_t i = 0; i + 2 < toks_.size(); ++i) {
      if (!(ident(i) && toks_[i].text == "std" && punct(i + 1, "::") &&
            ident(i + 2))) {
        continue;
      }
      const std::string& t = toks_[i + 2].text;
      if (t == "mutex" || t == "timed_mutex" || t == "recursive_mutex" ||
          t == "shared_mutex" || t == "condition_variable" ||
          t == "condition_variable_any" || t == "lock_guard" ||
          t == "unique_lock" || t == "scoped_lock" || t == "shared_lock") {
        add(toks_[i].line, "raw-mutex",
            "std::" + t + " bypasses the annotated sync wrappers "
                          "(common/sync.hpp)");
      }
    }
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

const std::vector<Rule>& rules() { return rule_table(); }

bool is_rule(std::string_view name) {
  const auto& rs = rule_table();
  return std::any_of(rs.begin(), rs.end(),
                     [&](const Rule& r) { return r.name == name; });
}

FileReport lint_source(std::string_view file, std::string_view content,
                       std::string_view context) {
  FileReport report;
  Symbols sym;
  if (!context.empty()) {
    const Lexed ctx = lex(context);
    collect_symbols(ctx.toks, sym);
  }
  const Lexed lx = lex(content);
  collect_symbols(lx.toks, sym);

  std::vector<Finding> findings = Analyzer(lx.toks, sym).run();

  // Directive-level findings and the suppression index.
  // allows[line] -> (rule -> directive index); only reasoned allows count.
  std::unordered_map<int, std::unordered_map<std::string, std::size_t>>
      allows;
  std::vector<bool> allow_used(lx.directives.size(), false);
  for (std::size_t di = 0; di < lx.directives.size(); ++di) {
    const Directive& d = lx.directives[di];
    for (const std::string& r : d.rule_names) {
      if (!is_rule(r)) {
        findings.push_back(
            {d.line, "unknown-rule",
             "directive names unknown rule '" + r + "'; see --list-rules"});
      }
    }
    if (d.kind == Directive::Kind::kExpect) {
      for (const std::string& r : d.rule_names) {
        if (is_rule(r)) report.expectations.push_back({d.line, r});
      }
      continue;
    }
    if (!d.has_reason) {
      findings.push_back({d.line, "allow-without-reason",
                          "lint:allow without ': <reason>' text"});
      continue;  // a reasonless allow suppresses nothing
    }
    for (const std::string& r : d.rule_names) {
      if (is_rule(r)) allows[d.line].emplace(r, di);
    }
  }

  // Apply suppressions: an allow on the violation's line or the line above.
  auto find_allow = [&](const Finding& f) -> std::size_t {
    for (const int l : {f.line, f.line - 1}) {
      auto it = allows.find(l);
      if (it == allows.end()) continue;
      auto jt = it->second.find(f.rule);
      if (jt != it->second.end()) return jt->second;
    }
    return lx.directives.size();
  };
  std::vector<Finding> active;
  for (Finding& f : findings) {
    const std::size_t di = find_allow(f);
    if (di < lx.directives.size()) {
      allow_used[di] = true;
      report.suppressed.push_back(
          {std::string(file), f.line, f.rule, std::move(f.message)});
    } else {
      active.push_back(std::move(f));
    }
  }

  // unused-suppression: reasoned allows of non-meta rules that fired on
  // nothing. (Checked after suppression so order within a line cannot
  // matter.) These are themselves suppressible one line above.
  std::vector<Finding> unused;
  for (std::size_t di = 0; di < lx.directives.size(); ++di) {
    const Directive& d = lx.directives[di];
    if (d.kind != Directive::Kind::kAllow || !d.has_reason) continue;
    if (allow_used[di]) continue;
    const bool all_known_non_meta =
        !d.rule_names.empty() &&
        std::all_of(d.rule_names.begin(), d.rule_names.end(),
                    [](const std::string& r) {
                      return is_rule(r) && !is_meta_rule(r);
                    });
    if (!all_known_non_meta) continue;
    unused.push_back({d.line, "unused-suppression",
                      "lint:allow(" + d.rule_names.front() +
                          (d.rule_names.size() > 1 ? ", ..." : "") +
                          ") suppresses nothing on this line"});
  }
  for (Finding& f : unused) {
    const std::size_t di = find_allow(f);
    if (di < lx.directives.size()) {
      report.suppressed.push_back(
          {std::string(file), f.line, f.rule, std::move(f.message)});
    } else {
      active.push_back(std::move(f));
    }
  }

  std::sort(active.begin(), active.end(), [](const Finding& a,
                                             const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  for (Finding& f : active) {
    report.violations.push_back(
        {std::string(file), f.line, f.rule, std::move(f.message)});
  }
  return report;
}

FileReport lint_file(const std::string& path) {
  std::string context;
  if (path.size() > 4 && path.compare(path.size() - 4, 4, ".cpp") == 0) {
    const std::string header = path.substr(0, path.size() - 4) + ".hpp";
    if (std::filesystem::exists(header)) context = read_file(header);
  }
  return lint_source(path, read_file(path), context);
}

std::vector<std::string> collect_inputs(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    if (fs::is_directory(p)) {
      for (const auto& e : fs::recursive_directory_iterator(p)) {
        if (!e.is_regular_file()) continue;
        const std::string ext = e.path().extension().string();
        if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h") {
          files.push_back(e.path().string());
        }
      }
    } else if (fs::exists(p)) {
      files.push_back(p);
    } else {
      throw std::runtime_error("no such input: " + p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace llamcat::lint
