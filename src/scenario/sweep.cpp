#include "scenario/sweep.hpp"

#include <stdexcept>

#include "common/thread_pool.hpp"

namespace llamcat::scenario {

void SweepConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("SweepConfig: " + msg);
  };
  if (gaps.empty()) fail("empty gap axis");
  for (const Cycle g : gaps) {
    if (g == 0) fail("zero mean gap on the axis");
  }
  if (slo_ttft_cycles == 0) fail("slo_ttft_cycles == 0");
  TrafficConfig shape = traffic;
  shape.mean_gap = gaps.front();  // mean_gap is per-point; validate the rest
  shape.validate();
}

namespace {

SweepPoint run_one_point(const ModelShape& model, const SimConfig& cfg,
                         const DecodePassConfig& pass_cfg,
                         const SweepConfig& sweep, Cycle gap) {
  TrafficConfig tc = sweep.traffic;
  tc.mean_gap = gap;
  const std::vector<RequestSpec> requests = generate_traffic(tc);
  const RequestBatch batch(model, requests);
  const BatchStats stats = DecodePass(batch, pass_cfg, cfg).run();

  // A charted point must honor the open-loop contract; a breach here is an
  // engine bug, not a data point.
  const AuditReport audit =
      audit_open_loop(requests, stats, sweep.slo_ttft_cycles);
  if (!audit.ok()) {
    throw InvariantViolation("load sweep @gap=" + std::to_string(gap) + ": " +
                             audit.to_string());
  }

  SweepPoint pt;
  pt.mean_gap = gap;
  pt.offered_qps = stats.total.core_hz / static_cast<double>(gap);
  pt.throughput_tps = stats.tokens_per_cycle() * stats.total.core_hz;
  pt.makespan = stats.makespan;
  pt.p50_latency = stats.latency_percentile(50.0);
  pt.p99_latency = stats.latency_percentile(99.0);
  pt.p50_ttft = stats.ttft_percentile(50.0);
  pt.p99_ttft = stats.ttft_percentile(99.0);
  pt.p50_tbt = stats.tbt_percentile(50.0);
  pt.p99_tbt = stats.tbt_percentile(99.0);
  pt.slo = slo_accounting(stats, sweep.slo_ttft_cycles);
  pt.goodput_tps =
      stats.makespan > 0
          ? static_cast<double>(pt.slo.goodput_tokens) /
                static_cast<double>(stats.makespan) * stats.total.core_hz
          : 0.0;
  pt.preemptions = stats.total_preemptions();
  pt.queue_wait = stats.total_queue_wait();
  return pt;
}

}  // namespace

std::vector<SweepPoint> run_load_sweep(const ModelShape& model,
                                       const SimConfig& cfg,
                                       const DecodePassConfig& pass_cfg,
                                       const SweepConfig& sweep,
                                       std::size_t jobs) {
  sweep.validate();
  std::vector<SweepPoint> points(sweep.gaps.size());
  if (jobs == 1) {
    for (std::size_t i = 0; i < sweep.gaps.size(); ++i) {
      points[i] = run_one_point(model, cfg, pass_cfg, sweep, sweep.gaps[i]);
    }
    return points;
  }
  // Pre-sized slots + axis-order indices: the parallel curve is
  // bit-identical to the serial one (the run_fuzz_sweep pattern).
  ThreadPool pool(jobs);
  TaskGroup group(sweep.gaps.size());
  for (std::size_t i = 0; i < sweep.gaps.size(); ++i) {
    group.run(pool, i, [&, i] {
      points[i] = run_one_point(model, cfg, pass_cfg, sweep, sweep.gaps[i]);
    });
  }
  group.wait();
  return points;
}

std::size_t max_sustainable_index(const std::vector<SweepPoint>& points,
                                  Cycle slo_ttft_cycles) {
  std::size_t best = points.size();
  double best_qps = -1.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].p99_ttft <= slo_ttft_cycles &&
        points[i].offered_qps > best_qps) {
      best = i;
      best_qps = points[i].offered_qps;
    }
  }
  return best;
}

}  // namespace llamcat::scenario
