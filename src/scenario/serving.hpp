// Serving-policy layer for the continuous-batching engine: KV-pressure-aware
// admission plus stage-boundary preemption.
//
// The raw streaming engine (PR 3) admits every arrival unconditionally, so a
// batch's aggregate KV working set can grow far past anything the modeled
// LLC+DRAM budget could hold. The policy layer caps co-residency by
// *aggregate peak KV footprint in bytes*: while the resident requests' KV
// exceeds `kv_budget_bytes`, new arrivals wait in a serving queue (they are
// queued, never dropped) and are admitted in the order the configured
// discipline dictates - FCFS (arrival order, head-of-line blocking when the
// head does not fit) or shortest-remaining-first (least remaining service
// demand first, the SJF regime of *Online Scheduling for LLM Inference with
// KV Cache Constraints*).
//
// Preemption (`preempt`) bounds short-request tail latency: a running
// request is evicted at a stage boundary when a co-running request holds
// `preempt_ratio`x less remaining work. Under `kv_evict = none` (the PR 4
// default) the evicted request's KV stays resident (it keeps its budget
// share and its address slot - nothing is recomputed), it re-enters the
// serving queue, and it resumes from its next operator once no much-shorter
// request is running. Because the KV is not freed, resident preemption
// relieves *compute/cache contention*, not budget pressure - a
// budget-blocked candidate is never unblocked by preempting someone, which
// is exactly why the admission sweep skips yield-blocked candidates but
// stops at budget-blocked ones.
//
// `kv_evict = cold-blocks` changes that: a preemption additionally swaps
// the preempted request's cold KV blocks out to a modeled DRAM/host tier
// (scenario/kv_pager.hpp), freeing their budget bytes immediately, and a
// budget-blocked *much shorter* queued candidate now counts as preemption
// pressure (`should_preempt`'s `blocked_work`) - so a long lone request
// yields its stage boundary, and its budget share, to a short arrival that
// would otherwise wait for its finish (swap-based admission). The price is
// paid at resume: the swapped blocks re-pin their bytes and the request's
// next operator is held back for the refetch transfer.
//
// docs/architecture.md walks the full admission/preemption/paging state
// machine; docs/metrics.md defines every counter this layer reports.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace llamcat::scenario {

/// Re-exported as the scenario vocabulary (defined in common/config.hpp so
/// the CLI option layer can parse it without depending on this layer).
using llamcat::AdmitPolicy;

/// Knobs of the serving-policy layer. The default configuration
/// (kNone / unlimited / no preemption) reproduces the raw PR 3 streaming
/// engine byte-identically.
struct ServingConfig {
  AdmitPolicy policy = AdmitPolicy::kNone;
  /// Aggregate peak KV footprint the machine may hold, in bytes
  /// (0 = unlimited). Gated at admission: a request pins its peak footprint
  /// (see RequestBatch::peak_kv_bytes) from first admission until finish.
  std::uint64_t kv_budget_bytes = 0;
  /// Evict a running request at a stage boundary when a co-running request
  /// holds `preempt_ratio`x less remaining work (KV stays resident, the
  /// evicted request re-enters the queue).
  bool preempt = false;
  /// Preemption threshold: request i yields to co-running j iff
  /// remaining_work(i) > remaining_work(j) * preempt_ratio. >= 1 keeps
  /// uniform batches from preempting each other.
  std::uint32_t preempt_ratio = 2;
  /// Paged KV eviction on preemption (requires preempt and a finite
  /// kv_budget_bytes). kNone keeps preempted KV resident (PR 4 exact);
  /// kColdBlocks swaps cold blocks to the modeled host tier and charges a
  /// refetch at resume.
  KvEvictPolicy kv_evict = KvEvictPolicy::kNone;
  /// Fixed KV block size for the pager, in bytes (0 = the default
  /// line-granule block, kLineBytes). Must be a multiple of kLineBytes.
  std::uint64_t kv_block_bytes = 0;
  /// Core cycles charged per refetched block at resume (0 = derive from
  /// the modeled ~8 B/cycle host link; see KvPagerConfig::cycles_per_block).
  Cycle refetch_cost = 0;
  /// Cross-request KV prefix reuse (scenario/kv_block_pool.hpp): requests
  /// in the same prefix group share the KV blocks of their common prefix,
  /// each unique block charges the budget once, and eviction respects the
  /// block refcounts. Off (the default) keeps every request's KV private
  /// and ignores any RequestSpec prefix identity - byte-identical to the
  /// pre-pool engine. Composes with any admission policy and with paged
  /// eviction; `kv_block_bytes` sets the sharing granule either way.
  bool kv_share = false;

  /// True when the configuration is the raw unconditional-admission engine.
  [[nodiscard]] bool unconditional() const {
    return policy == AdmitPolicy::kNone;
  }

  /// True when preemption swaps KV out instead of keeping it resident.
  [[nodiscard]] bool paged() const {
    return kv_evict == KvEvictPolicy::kColdBlocks;
  }

  /// Throws std::invalid_argument on contradictory settings (a budget or
  /// preemption without a queueing discipline, a zero preempt ratio,
  /// eviction without preemption + a finite budget, a block size that is
  /// not a positive line multiple).
  void validate() const;
};

/// The admission/preemption decision logic, separated from the segment
/// engine's state machine so it is unit-testable and reusable. All inputs
/// are plain snapshots; the engine owns the actual queue membership,
/// resident-bytes accounting and request state.
class AdmissionPolicy {
 public:
  /// One queued request, as the engine sees it at decision time.
  struct Candidate {
    /// Engine-side request index (returned from select()).
    std::size_t index = 0;
    /// Original arrival cycle (FCFS seniority survives preemption).
    Cycle arrival = 0;
    /// Remaining service-demand estimate (remaining chain operators times
    /// peak KV tokens - any deterministic monotone estimate works).
    std::uint64_t remaining_work = 0;
    /// Bytes this admission would newly pin against the budget: the
    /// request's peak KV footprint, or 0 when it is already resident
    /// (a preempted request re-entering keeps its KV).
    std::uint64_t kv_bytes = 0;
  };

  explicit AdmissionPolicy(const ServingConfig& cfg);

  [[nodiscard]] const ServingConfig& config() const { return cfg_; }

  /// Picks which queued candidates to admit right now, in admission order.
  /// `queued` must be passed in request-index order (kNone admits in that
  /// order, preserving the raw engine's behavior); the queueing disciplines
  /// re-sort it. `running_work` is the remaining work of every currently
  /// running request; `resident_bytes` the KV bytes already pinned by
  /// resident (running or preempted) requests.
  ///
  /// Sweep rules: a candidate that would immediately yield to a running
  /// request (preemption enabled) is skipped - and, in paged mode, one
  /// that yields to a much-shorter queued peer (otherwise FCFS seniority
  /// would re-admit a just-evicted long request ahead of the short whose
  /// blocked admission triggered the eviction, paying the refetch for
  /// nothing); a candidate that does not fit the budget stops the sweep
  /// (budget frees in finish order - skipping would let arbitrarily late
  /// small requests starve the head). When nothing is running and the
  /// sweep admitted nobody, the first candidate that fits the budget is
  /// force-admitted (ignoring yield) so an idle machine with a non-empty
  /// queue always makes progress.
  [[nodiscard]] std::vector<std::size_t> select(
      std::vector<Candidate> queued,
      const std::vector<std::uint64_t>& running_work,
      std::uint64_t resident_bytes) const;

  /// Stage-boundary preemption decision for a running request with
  /// `remaining_work`, given the other running requests' remaining work.
  [[nodiscard]] bool should_preempt(
      std::uint64_t remaining_work,
      const std::vector<std::uint64_t>& co_running_work) const;

  /// Eviction-aware variant: `blocked_work` is the remaining work of queued
  /// candidates that do not fit the free budget. Under kv_evict=cold-blocks
  /// they count as preemption pressure too - yielding to one frees its
  /// blocker's budget bytes (swap-based admission), so a long lone request
  /// hands the machine to a much-shorter blocked arrival instead of making
  /// it wait for the finish. Under kv_evict=none blocked candidates are
  /// ignored (preempting for them could never unblock them).
  [[nodiscard]] bool should_preempt(
      std::uint64_t remaining_work,
      const std::vector<std::uint64_t>& co_running_work,
      const std::vector<std::uint64_t>& blocked_work) const;

 private:
  [[nodiscard]] bool yields_to_any(
      std::uint64_t remaining_work,
      const std::vector<std::uint64_t>& running_work) const;

  ServingConfig cfg_;
};

}  // namespace llamcat::scenario
