// Randomized serving-layer scenario generator + one-seed fuzz harness,
// shared by the stress fuzzer binary (tools/llamcat_stress.cpp) and the
// pinned-seed regression suite (tests/test_serving_fuzz.cpp) so a seed the
// fuzzer finds replays bit-for-bit in CI.
//
// One seed deterministically draws a full serving scenario - machine
// (including starved MSHR/queue/slice shapes), batch (arrival pattern,
// seq-len/step mix, prefix-group overlap) and serving policy (admission
// discipline x KV budget x preemption x paged eviction x block size x
// refetch price x prefix sharing) - and
// run_fuzz_seed() puts it through the whole invariant contract
// (scenario/invariants.hpp):
//
//  - run 1 executes with the in-engine ledger auditor on;
//  - run 2 executes audit-off and must be byte-identical (same-seed
//    determinism AND audit-neutrality in one diff);
//  - the post-run contract (audit_batch) checks landmarks, attribution and
//    policy accounting;
//  - draws whose knobs are provably no-ops (a queueing discipline with an
//    unlimited budget and no preemption) are re-run under policy=none and
//    must be byte-identical to the raw PR 3 engine;
//  - prefix-sharing draws (kv_share with an unlimited budget and no paged
//    eviction) are re-run with sharing off and must match on the timing
//    projection - sharing may only change what the ledger charges, never
//    when anything runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace llamcat::scenario {

/// A fully-drawn fuzz scenario: everything DecodePass needs, plus a
/// one-line human summary for failure reports.
struct FuzzScenario {
  SimConfig cfg;
  ModelShape model;
  std::vector<RequestSpec> requests;
  DecodePassConfig pass_cfg;  // mode is always kContinuous

  /// "3 reqs (seq 64/96/320, arrivals 0/0/41000), admit=srf budget=...".
  [[nodiscard]] std::string summary() const;
};

/// Deterministically expands `seed` into a scenario. Same seed, same
/// scenario, on every platform (the draw uses only common/rng.hpp).
[[nodiscard]] FuzzScenario draw_scenario(std::uint64_t seed);

/// Outcome of fuzzing one seed: `violations` is empty on a clean pass,
/// otherwise each entry is one self-contained line (an invariant breach, a
/// determinism diff, or an unexpected engine exception). `digest` is the
/// canonical batch_stats_digest of the audited run (empty when the engine
/// threw before producing stats) - two sweeps over the same seeds are
/// equivalent iff their per-seed digests compare equal, which is how the
/// --jobs=N parallel sweep is proven bit-identical to serial order.
struct FuzzResult {
  std::uint64_t seed = 0;
  std::vector<std::string> violations;
  std::string digest;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Runs the full double-run + contract harness for one seed (see the
/// header comment). Never throws: engine exceptions become violations.
[[nodiscard]] FuzzResult run_fuzz_seed(std::uint64_t seed);

/// Runs seeds base_seed .. base_seed+n-1 across `jobs` worker threads
/// (0 = hardware concurrency, 1 = in-caller serial execution). Every run
/// is an independent single-threaded simulation and results land in
/// pre-assigned seed-order slots, so the returned vector is bit-identical
/// to a serial sweep regardless of thread interleaving.
[[nodiscard]] std::vector<FuzzResult> run_fuzz_sweep(std::uint64_t base_seed,
                                                     std::uint64_t n,
                                                     std::size_t jobs = 1);

/// Canonical text form of everything a run reports (every stat, landmark,
/// counter and per-segment row). Two runs are byte-identical iff their
/// digests compare equal - the determinism definition used by the fuzzer
/// and by tests/test_determinism.cpp.
[[nodiscard]] std::string batch_stats_digest(const BatchStats& stats);

}  // namespace llamcat::scenario
