// Scenario layer: composes the single-operator simulator into end-to-end
// decode workloads. A RequestBatch holds concurrent decode requests (each
// with its own sequence length); a DecodePass expands the batch into the
// per-layer Logit -> Attend -> GEMV operator chain of one decode step and
// aggregates SimStats into per-request and per-batch totals with
// tokens-per-cycle throughput.
//
// Three execution modes:
//  - kIndependent: every operator runs in its own private System (the
//    thread-pool harness); per-request stats are sums of isolated runs.
//    Requests never contend - an optimistic upper bound.
//  - kCoScheduled: per layer-stage wave, the batch's operators are fused
//    into one CompositeTbSource and run through a single shared System, so
//    co-resident requests genuinely contend for cores, the shared LLC and
//    DRAM. Per-request stats come from address-slot attribution of that
//    shared run (RequestSlice). Every wave is a barrier: a short request
//    waits for the batch's longest member before its next stage starts.
//  - kContinuous: one long-lived streaming System per decode pass, fed by a
//    DynamicTbSource. Each request's next operator is enqueued the moment
//    its own previous operator's thread blocks complete (while other
//    requests are still mid-flight), and new requests are admitted mid-pass
//    at their arrival_cycle - vLLM-style iteration-level batching. A
//    request alone in the machine hands off stage-to-stage at a full-drain
//    boundary instead (the engine recycles the System there, identical to
//    a one-request wave), which makes a zero-arrival batch of one
//    reproduce kCoScheduled exactly while batches with skewed lengths
//    stream past the barrier. Stats report true per-request latency
//    (finish - arrival) plus the batch makespan.
//
// On top of kContinuous sits the serving-policy layer (serving.hpp:
// KV-budgeted admission, stage-boundary preemption) and the paged KV model
// (kv_pager.hpp: cold-block eviction to a modeled host tier, refetch at
// resume). docs/architecture.md maps the whole stack, walks one request's
// life-cycle through it, and has the "add a new policy / stat / CLI flag"
// contributor recipes; docs/metrics.md defines every stat reported here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "scenario/kv_block_pool.hpp"
#include "scenario/serving.hpp"
#include "sim/experiment.hpp"
#include "sim/sim_stats.hpp"
#include "trace/composite.hpp"
#include "trace/operator.hpp"

namespace llamcat::scenario {

/// One in-flight decode request: a KV cache of `seq_len` tokens being
/// extended by `decode_steps` tokens this pass. `arrival_cycle` is when the
/// request enters the serving queue (kContinuous admits it mid-pass at that
/// cycle; the barrier modes require 0 - they have no notion of time before
/// the batch starts).
struct RequestSpec {
  std::uint32_t id = 0;
  std::uint64_t seq_len = 4096;
  Cycle arrival_cycle = 0;
  /// Tokens decoded this pass; step s runs the layer chain against a KV
  /// cache grown to seq_len + s.
  std::uint32_t decode_steps = 1;
  /// Prefix identity for cross-request KV reuse (kv_block_pool.hpp):
  /// requests in the same group share the KV blocks of their common prefix.
  /// kNoPrefixGroup (the default) keeps the KV fully private. Honored only
  /// when ServingConfig::kv_share is on - with sharing off these fields are
  /// ignored and the run is byte-identical to a batch without them (the
  /// ablation control).
  std::uint32_t prefix_group = kNoPrefixGroup;
  /// Length of the shared prefix in tokens (1 <= prefix_tokens <= seq_len
  /// when a group is set; must be 0 otherwise). Members of one group may
  /// declare different lengths - they share the whole blocks of the common
  /// leading range.
  std::uint64_t prefix_tokens = 0;
};

/// A set of concurrent decode requests sharing one model shape.
class RequestBatch {
 public:
  RequestBatch(ModelShape model, std::vector<RequestSpec> requests);

  /// `n` requests, ids 0..n-1, all at the same sequence length.
  static RequestBatch uniform(const ModelShape& model, std::uint32_t n,
                              std::uint64_t seq_len);
  /// One request per entry of `seq_lens`, ids in order.
  static RequestBatch with_seq_lens(const ModelShape& model,
                                    const std::vector<std::uint64_t>& seq_lens);

  [[nodiscard]] const ModelShape& model() const { return model_; }
  [[nodiscard]] const std::vector<RequestSpec>& requests() const {
    return requests_;
  }
  [[nodiscard]] std::size_t size() const { return requests_.size(); }

  // -- step-aware KV footprint ----------------------------------------------
  // A request at decode step s occupies seq_len + s tokens, rounded up to a
  // cache-line granule of elements (block-granular KV allocation, matching
  // the operator mapper's line-level tiling). Footprint-based budgets must
  // use the PEAK (last step's) occupancy, not the start-of-pass seq_len -
  // summing bare seq_lens undercounts every multi-step batch.

  /// KV tokens the request's step-`s` operators run against (s = 0 is the
  /// start-of-pass seq_len; later steps are granule-rounded).
  [[nodiscard]] std::uint64_t kv_tokens_at_step(const RequestSpec& r,
                                                std::uint32_t step) const;
  /// Peak KV occupancy of one request across its decode steps, in tokens.
  [[nodiscard]] std::uint64_t peak_kv_tokens(const RequestSpec& r) const;
  /// Sum of per-request peak KV occupancies (the batch's peak KV footprint
  /// in tokens, per layer).
  [[nodiscard]] std::uint64_t total_peak_kv_tokens() const;
  /// KV bytes one resident token pins per decode layer: H * D * dtype (the
  /// simulated K and V share one address range, so one token is one
  /// line-set per layer).
  [[nodiscard]] std::uint64_t kv_bytes_per_token() const;
  /// Peak KV bytes one request pins across `num_layers` decode layers.
  [[nodiscard]] std::uint64_t peak_kv_bytes(const RequestSpec& r,
                                            std::uint32_t num_layers) const;
  /// Bytes of one request's shared-prefix region across `num_layers` layers
  /// (0 for a request with no prefix group). Always <= peak_kv_bytes.
  [[nodiscard]] std::uint64_t prefix_kv_bytes(const RequestSpec& r,
                                              std::uint32_t num_layers) const;
  /// Peak KV bytes the whole batch pins across `num_layers` layers.
  [[nodiscard]] std::uint64_t total_peak_kv_bytes(
      std::uint32_t num_layers) const;

 private:
  ModelShape model_;
  std::vector<RequestSpec> requests_;
};

/// The operator stages of one decode layer. kGemv models the memory-bound
/// projection/FFN tile that follows attention (no GQA sharing, paper
/// §6.3.3); kLogit/kAttend are the paper's attention operators.
enum class StageKind : std::uint8_t { kLogit, kAttend, kGemv };

std::string to_string(StageKind k);

/// How the pass executes the batch (see the header comment); defined in
/// common/config.hpp, re-exported here as the scenario vocabulary.
using llamcat::ExecutionMode;

struct DecodePassConfig {
  std::uint32_t num_layers = 2;
  /// Include the per-layer GEMV stage after attention.
  bool include_gemv = true;
  /// GEMV weight-tile shape; 0 = derive both from the model width
  /// E = H * G * D (a square E x E projection tile).
  std::uint64_t gemv_rows = 0;
  std::uint32_t gemv_cols = 0;
  ExecutionMode mode = ExecutionMode::kIndependent;
  /// kCoScheduled: how each wave's CompositeTbSource interleaves the
  /// requests' thread blocks.
  FuseOrder interleave = FuseOrder::kRoundRobin;
  /// kContinuous: the serving-policy layer (admission queue by KV budget,
  /// stage-boundary preemption). The default reproduces the raw streaming
  /// engine byte-identically; any non-default setting requires kContinuous.
  ServingConfig serving;
  /// kContinuous: feed every serving event (admit/resume/evict/finish)
  /// through the in-engine ledger auditor (scenario/invariants.hpp), which
  /// throws InvariantViolation on the cycle an invariant breaks. Stats are
  /// unaffected either way. LLAMCAT_AUDIT=1 in the environment forces it on.
  bool audit = false;

  /// Throws std::invalid_argument on an inconsistent pass shape; delegates
  /// the serving-policy checks to `serving.validate()`.
  void validate() const;
};

/// One operator instance in the pass's schedule.
struct ScheduledOp {
  std::uint32_t request_id = 0;
  std::uint32_t step = 0;  // decode step within the request
  std::uint32_t layer = 0;
  StageKind stage = StageKind::kLogit;
  std::string name;  // "req0/L1/attend" ("req0/s1/L1/attend" for step > 0)
  Workload workload;
};

/// Aggregated stats for one request across all of its layers/operators.
///
/// kIndependent: `stats` is the sum of the request's isolated operator runs
/// and `slice` stays zero. kCoScheduled: `stats.cycles` is the request's
/// resident time (the sum of the shared waves it ran in - co-scheduled
/// requests occupy the machine together, so their latency is the wave's),
/// the traffic fields are the request's attributed share of each shared
/// run, and `slice` keeps the raw attribution including cycles_in_flight.
struct RequestStats {
  std::uint32_t id = 0;
  std::uint64_t seq_len = 0;
  std::uint32_t decode_steps = 1;
  SimStats stats;
  RequestSlice slice;

  // Stream-time landmarks, valid only when `streamed` is true (kContinuous
  // fills them; the barrier modes have no stream clock, so their landmark
  // fields stay zero and the accessors below return kNeverCycle instead of
  // silently reading as a 0-cycle latency). admit_cycle is when the engine
  // actually enqueued the request's first operator (> arrival_cycle when
  // the serving queue held it back); finish_cycle is when its last operator
  // completed (its drain boundary when it finished alone in the machine).
  bool streamed = false;
  Cycle arrival_cycle = 0;
  Cycle admit_cycle = 0;
  Cycle finish_cycle = 0;
  /// Total stream cycles spent waiting in the serving queue: arrival to
  /// first admission plus every post-preemption re-queue wait.
  Cycle queued_cycles = 0;
  /// Times the serving policy evicted this request at a stage boundary.
  std::uint32_t preemptions = 0;
  /// Paged-KV counters (0 unless kv_evict=cold-blocks; see kv_pager.hpp).
  /// Cumulative KV blocks swapped out to the host tier across this
  /// request's preemptions...
  std::uint64_t swapped_blocks = 0;
  /// ...the bytes refetched from the host tier across its resumes...
  std::uint64_t refetch_bytes = 0;
  /// ...and the stream cycles its resumes were held back paying for those
  /// transfers (part of latency(): refetch delays the finish).
  Cycle refetch_cycles = 0;
  /// Prefix-sharing counters (0 unless kv_share; see kv_block_pool.hpp):
  /// shared blocks this request's first admission found resident, and the
  /// budget bytes that dedup saved it.
  std::uint64_t prefix_hit_blocks = 0;
  std::uint64_t prefix_hit_bytes = 0;
  /// Stream cycle each decode step's last operator completed (kContinuous
  /// only; size == decode_steps once the request finished, and the final
  /// entry equals finish_cycle). Consecutive gaps are the request's
  /// inter-token times - the TBT percentiles pool them batch-wide.
  std::vector<Cycle> step_finish_cycles;

  /// End-to-end latency in stream time (equals stats.cycles when streamed);
  /// kNeverCycle for barrier-mode results, which have no stream landmarks.
  [[nodiscard]] Cycle latency() const {
    return streamed ? finish_cycle - arrival_cycle : kNeverCycle;
  }
  /// Queue wait before first admission (kNeverCycle when not streamed).
  [[nodiscard]] Cycle admission_wait() const {
    return streamed ? admit_cycle - arrival_cycle : kNeverCycle;
  }
  /// Time-to-first-token: arrival to the first operator's dispatch into the
  /// live machine - queue wait plus admission/refetch holds plus dispatch
  /// lag, but none of the decode service time that latency() folds in.
  [[nodiscard]] Cycle ttft() const {
    return streamed ? slice.first_dispatch_cycle - arrival_cycle
                    : kNeverCycle;
  }

  /// `decode_steps` tokens are produced per request per pass.
  [[nodiscard]] double tokens_per_cycle() const {
    return stats.cycles > 0 ? static_cast<double>(decode_steps) /
                                  static_cast<double>(stats.cycles)
                            : 0.0;
  }
};

/// Aggregated stats for the whole batch. `total` folds every simulation run
/// (sequential-equivalent cycles); `per_op` keeps the raw results for
/// reporting/export - one entry per operator under kIndependent, one per
/// fused layer-stage wave under kCoScheduled.
struct BatchStats {
  ExecutionMode mode = ExecutionMode::kIndependent;
  SimStats total;
  std::vector<RequestStats> per_request;
  std::vector<ExperimentResult> per_op;
  /// Stream cycles from pass start to the last request's finish.
  /// kContinuous: the true end-to-end makespan including arrival gaps the
  /// engine skipped over. Barrier modes: equals total.cycles (waves run
  /// back-to-back; kIndependent's "makespan" is its sequential-equivalent
  /// sum).
  Cycle makespan = 0;

  /// Tokens produced this pass (sum of per-request decode steps).
  [[nodiscard]] std::uint64_t tokens() const {
    std::uint64_t n = 0;
    for (const RequestStats& r : per_request) n += r.decode_steps;
    return n;
  }

  /// Nearest-rank percentile (p in [0,100]) over per-request end-to-end
  /// latencies. kContinuous only: barrier modes have no stream landmarks,
  /// so this returns kNeverCycle there instead of aggregating garbage
  /// 0-cycle rows into a policy-comparison table.
  [[nodiscard]] Cycle latency_percentile(double p) const;
  /// Nearest-rank percentile over per-request TTFT (arrival -> first
  /// dispatch): the queue-bound component that latency_percentile used to
  /// conflate with service time. kNeverCycle outside kContinuous.
  [[nodiscard]] Cycle ttft_percentile(double p) const;
  /// Nearest-rank percentile over the batch-wide pool of per-step
  /// inter-token gaps (TBT): the service-bound component. kNeverCycle
  /// outside kContinuous or when no request decoded more than one step
  /// (a single step yields no inter-token gap).
  [[nodiscard]] Cycle tbt_percentile(double p) const;
  /// Serving-policy totals across the batch (0 under policy none).
  [[nodiscard]] std::uint64_t total_preemptions() const;
  [[nodiscard]] Cycle total_queue_wait() const;
  /// Paged-KV totals (0 unless the pass ran with kv_evict=cold-blocks).
  [[nodiscard]] std::uint64_t total_swapped_blocks() const;
  [[nodiscard]] std::uint64_t total_refetch_bytes() const;
  [[nodiscard]] Cycle total_refetch_cycles() const;
  /// True when the pass ran with the paged KV model (gates the swap/refetch
  /// columns in print() so non-paged tables stay unchanged).
  bool paged = false;

  /// True when the pass ran with the prefix-sharing block pool (kv_share);
  /// gates the sharing columns in print() exactly like `paged` gates the
  /// swap columns. The counters below stay 0 when sharing is off.
  bool shared = false;
  /// Shared blocks probed at first admissions...
  std::uint64_t kv_block_lookups = 0;
  /// ...and how many of those probes found the block resident (charged 0).
  std::uint64_t kv_block_hits = 0;
  /// Budget bytes dedup saved across first admissions (hits x block size).
  std::uint64_t kv_shared_bytes = 0;
  /// Bytes first admissions actually charged against the budget.
  std::uint64_t kv_charged_bytes = 0;
  /// Sum of admitted requests' peak footprints (what an all-private run
  /// would have charged). kv_charged_bytes == kv_logical_bytes -
  /// kv_shared_bytes always holds (audited).
  std::uint64_t kv_logical_bytes = 0;
  /// Fraction of shared-block probes that hit (0 when nothing was probed).
  [[nodiscard]] double kv_hit_rate() const {
    return kv_block_lookups > 0 ? static_cast<double>(kv_block_hits) /
                                      static_cast<double>(kv_block_lookups)
                                : 0.0;
  }
  /// Fraction of the logical footprint dedup never charged (0 = no reuse).
  [[nodiscard]] double kv_dedup_ratio() const {
    return kv_logical_bytes > 0 ? static_cast<double>(kv_shared_bytes) /
                                      static_cast<double>(kv_logical_bytes)
                                : 0.0;
  }

  /// Batch throughput: tokens produced this pass over sequential-equivalent
  /// cycles (barrier modes) or the stream makespan (kContinuous).
  [[nodiscard]] double tokens_per_cycle() const {
    const Cycle denom =
        mode == ExecutionMode::kContinuous ? makespan : total.cycles;
    return denom > 0 ? static_cast<double>(tokens()) /
                           static_cast<double>(denom)
                     : 0.0;
  }

  /// Per-request table (id, seq_len, cycles, tokens/cycle) followed by the
  /// batch totals and throughput.
  void print(std::ostream& os) const;
};

/// One decode step for a batch: per layer and per request, the
/// Logit -> Attend [-> GEMV] chain, lowered to auto-mapped Workloads with
/// per-(request, layer) tensor address slots so no two operator instances
/// alias the same simulated memory.
class DecodePass {
 public:
  DecodePass(RequestBatch batch, DecodePassConfig pass_cfg,
             const SimConfig& cfg);

  [[nodiscard]] const RequestBatch& batch() const { return batch_; }
  [[nodiscard]] const DecodePassConfig& pass_config() const {
    return pass_cfg_;
  }
  /// The full operator schedule, request-major then layer-major, each layer
  /// in Logit -> Attend [-> GEMV] order.
  [[nodiscard]] const std::vector<ScheduledOp>& schedule() const {
    return schedule_;
  }

  /// Runs the pass and aggregates. kIndependent routes every scheduled
  /// operator through run_experiments (`threads`-wide, 0 = hardware
  /// concurrency); kCoScheduled runs one fused System per layer-stage wave;
  /// kContinuous runs the streaming engine (both sequential; `threads` is
  /// ignored). All modes are deterministic for a fixed config: every
  /// simulation is single-threaded and seeded, and aggregation follows
  /// schedule/wave/stream order regardless of worker timing.
  [[nodiscard]] BatchStats run(std::size_t threads = 0,
                               bool verbose = false) const;

 private:
  [[nodiscard]] BatchStats run_independent(std::size_t threads,
                                           bool verbose) const;
  [[nodiscard]] BatchStats run_coscheduled(bool verbose) const;
  [[nodiscard]] BatchStats run_continuous(bool verbose) const;

  RequestBatch batch_;
  DecodePassConfig pass_cfg_;
  SimConfig cfg_;
  std::vector<ScheduledOp> schedule_;
};

}  // namespace llamcat::scenario
