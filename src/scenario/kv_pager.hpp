// Paged KV model for the serving-policy layer: each request's peak KV
// footprint is split into fixed-size blocks, and the pager tracks which of
// those blocks are resident in the simulated LLC+DRAM tier versus swapped
// out to a modeled DRAM/host tier (the swap/reload regime of vLLM-style
// paged attention and LMCache-style KV offload).
//
// The pager is pure bookkeeping: it owns no simulated memory and injects no
// traffic itself. The continuous engine (scenario.cpp) consults it at the
// two points where paging changes the serving state machine:
//
//  - preemption: `evict_cold` swaps the preempted request's cold blocks out
//    and reports how many budget bytes that frees (the engine subtracts
//    them from its resident-bytes ledger, which is what lets a blocked
//    arrival admit without waiting for the preempted request to finish);
//  - resume: `refetch` moves the swapped blocks back, reports the bytes
//    moved, and prices the transfer in core cycles (`refetch_cycles`); the
//    engine holds the request's next operator back for that long, modeling
//    the host-link transfer the first-cut flat-cost model stands in for.
//
// Cold-block definition (first cut): at a stage-boundary preemption the
// request has no operator in flight, and by the time it resumes its
// co-runners will long since have flushed its lines from the shared LLC -
// so every *whole* block of the detached KV is cold and swappable. Only a
// partial tail block (footprint not block-aligned) stays pinned: blocks
// are the transfer and accounting granule, so a fraction of one cannot
// move. Smarter temperature models (keep the resume layer hot, keep the
// tail of the sequence hot) drop into `evict_cold` without touching the
// engine.
//
// See docs/architecture.md ("Paged KV eviction") for how the pager slots
// into the admission/preemption state machine and docs/metrics.md for the
// refetch counters it feeds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace llamcat::scenario {

/// Knobs of the paged KV model. Defaults follow the existing line-granule
/// KV rounding: one block = one 64-byte cache line, priced at the modeled
/// host-link bandwidth.
struct KvPagerConfig {
  /// Fixed KV block size in bytes. Must be a positive multiple of
  /// kLineBytes (KV is line-granular everywhere else in the simulator).
  std::uint64_t block_bytes = kLineBytes;
  /// Core cycles charged per refetched block at resume. 0 derives
  /// block_bytes / 8 (an ~8 B/cycle host link: 16 GB/s at the 1.96 GHz
  /// Table 5 core clock - PCIe-gen4-x16-ish, the LMCache regime).
  Cycle refetch_cost = 0;

  /// The effective per-block refetch price after the 0-default resolves.
  [[nodiscard]] Cycle cycles_per_block() const {
    if (refetch_cost != 0) return refetch_cost;
    const Cycle derived = block_bytes / 8;
    return derived == 0 ? 1 : derived;
  }

  /// Throws std::invalid_argument on a bad block size.
  void validate() const;
};

/// Per-request resident/swapped block bookkeeping. Request indices are the
/// engine's dense indices (0 .. num_requests-1), matching the ReqState /
/// peak_bytes arrays in run_continuous.
class KvPager {
 public:
  /// What one resume moved back from the host tier.
  struct Refetch {
    std::uint64_t blocks = 0;
    std::uint64_t bytes = 0;
    Cycle cycles = 0;
  };

  /// `footprints[i]` is request i's peak KV footprint in bytes (the same
  /// peak the admission budget pins). All blocks start resident.
  KvPager(const KvPagerConfig& cfg, std::vector<std::uint64_t> footprints);

  [[nodiscard]] const KvPagerConfig& config() const { return cfg_; }

  /// Total whole blocks of request i's footprint (a partial tail block
  /// does not count: it can never be swapped).
  [[nodiscard]] std::uint64_t total_blocks(std::size_t i) const;
  /// Blocks of request i currently swapped out to the host tier.
  [[nodiscard]] std::uint64_t swapped_blocks(std::size_t i) const {
    return swapped_blocks_[i];
  }
  /// Bytes of request i currently swapped out (what a resume would have to
  /// re-pin against the budget and refetch).
  [[nodiscard]] std::uint64_t swapped_bytes(std::size_t i) const {
    return swapped_blocks_[i] * cfg_.block_bytes;
  }
  /// Whole blocks of request i still resident, i.e. what evict_cold could
  /// swap out right now. 0 when the block size exceeds the footprint (no
  /// whole block exists) or everything is already out - eviction-driven
  /// preemption must not fire for such a victim, since it would free
  /// nothing.
  [[nodiscard]] std::uint64_t evictable_blocks(std::size_t i) const {
    return total_blocks(i) - swapped_blocks_[i];
  }

  /// Swap request i's cold blocks (every whole block - see the header
  /// comment) out to the host tier. Returns the budget bytes freed; 0 when
  /// everything swappable is already out (idempotent).
  std::uint64_t evict_cold(std::size_t i);

  /// Move request i's swapped blocks back to the simulated tier and price
  /// the transfer. Returns {0, 0, 0} when nothing was swapped.
  Refetch refetch(std::size_t i);

  // -- cumulative traffic the pager has moved (for bench/report rows) -------
  [[nodiscard]] std::uint64_t total_swap_out_blocks() const {
    return total_swap_out_blocks_;
  }
  [[nodiscard]] std::uint64_t total_refetch_bytes() const {
    return total_refetch_bytes_;
  }

 private:
  KvPagerConfig cfg_;
  std::vector<std::uint64_t> footprints_;
  std::vector<std::uint64_t> swapped_blocks_;
  std::uint64_t total_swap_out_blocks_ = 0;
  std::uint64_t total_refetch_bytes_ = 0;
};

}  // namespace llamcat::scenario
