#include "scenario/traffic.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/det_math.hpp"
#include "common/rng.hpp"
#include "scenario/kv_block_pool.hpp"

namespace llamcat::scenario {

namespace {

/// Exponential inter-arrival gap with the given mean, from one uniform
/// draw. 1 - u keeps the argument in (0, 1]: det_log never sees 0, and the
/// sample is exactly 0 only when u == 0.
Cycle exp_gap(Xoshiro256& rng, double mean) {
  const double u = rng.uniform();
  const double gap = -det_log(1.0 - u) * mean;
  return static_cast<Cycle>(gap);
}

/// Standard-normal-ish draw via the Irwin-Hall sum of 12 uniforms minus 6
/// (mean 0, variance 1). No libm at all, and accurate far beyond what a
/// clamped lognormal seq-len needs; fixed 12-draw cost keeps the stream
/// layout independent of the sample value.
double normal01(Xoshiro256& rng) {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += rng.uniform();
  return sum - 6.0;
}

/// One value from [lo, hi] under the configured distribution, quantized to
/// a multiple of `granule` (lo and hi must already be multiples - validate()
/// enforces that for seq draws; steps draws pass granule 1). Uniform draws
/// a multiple directly; lognormal centers log-space on the geometric
/// midpoint of the range, clamps, then rounds down to the granule. Either
/// way the sample costs the same number of RNG draws as an unquantized one,
/// so the granule does not perturb the draw-order contract.
std::uint64_t draw_size(Xoshiro256& rng, TrafficDist dist, std::uint64_t lo,
                        std::uint64_t hi, double sigma,
                        std::uint64_t granule) {
  if (dist == TrafficDist::kUniform || lo == hi) {
    return lo + granule * rng.below((hi - lo) / granule + 1);
  }
  const double mu =
      0.5 * (det_log(static_cast<double>(lo)) + det_log(static_cast<double>(hi)));
  const double sample = det_exp(mu + sigma * normal01(rng));
  const auto v = std::clamp(static_cast<std::uint64_t>(sample), lo, hi);
  return v / granule * granule;  // >= lo: lo is itself a multiple
}

}  // namespace

void TrafficConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("TrafficConfig: " + msg);
  };
  if (num_requests == 0) fail("num_requests == 0");
  if (mean_gap == 0) fail("mean_gap == 0 (use arrival 0 batches instead)");
  if (process == TrafficProcess::kBursty) {
    if (burst_size == 0) fail("burst_size == 0");
    if (burst_gap_div == 0) fail("burst_gap_div == 0");
  }
  if (process == TrafficProcess::kDiurnal) {
    if (diurnal_amplitude < 0.0 || diurnal_amplitude >= 1.0)
      fail("diurnal_amplitude outside [0, 1)");
  }
  if (seq_min == 0) fail("seq_min == 0");
  if (seq_min > seq_max) fail("seq_min > seq_max");
  if (seq_granule == 0) fail("seq_granule == 0");
  if (seq_min % seq_granule != 0 || seq_max % seq_granule != 0)
    fail("seq_min/seq_max not multiples of seq_granule");
  if (seq_dist == TrafficDist::kLognormal && seq_sigma <= 0.0)
    fail("seq_sigma <= 0 with lognormal seq_dist");
  if (steps_min == 0) fail("steps_min == 0");
  if (steps_min > steps_max) fail("steps_min > steps_max");
  if (prefix_groups > 0) {
    if (zipf_s < 0.0) fail("zipf_s < 0");
    if (share_pct > 100) fail("share_pct > 100");
    if (share_pct == 0) fail("share_pct == 0 with prefix_groups set");
  }
}

std::string TrafficConfig::summary() const {
  std::ostringstream os;
  const auto dist_tag = [](TrafficDist d) {
    return d == TrafficDist::kUniform ? "U" : "LN";
  };
  os << to_string(process) << " n=" << num_requests << " gap=" << mean_gap
     << " seq=" << dist_tag(seq_dist) << "[" << seq_min << "," << seq_max
     << "]"
     << " steps=" << dist_tag(steps_dist) << "[" << steps_min << ","
     << steps_max << "]";
  if (prefix_groups > 0)
    os << " groups=" << prefix_groups << " zipf=" << zipf_s << " share%="
       << share_pct;
  os << " seed=" << seed;
  return os.str();
}

std::vector<RequestSpec> generate_traffic(const TrafficConfig& cfg) {
  cfg.validate();
  Xoshiro256 rng(cfg.seed);

  // Zipf group weights and per-group prefix lengths are fixed up front so
  // the per-request draw order below stays append-only as knobs grow.
  // Prefix lengths land in [1, seq_min]: never longer than any member's
  // sequence, which RequestSpec requires.
  std::vector<double> zipf_cum;
  std::vector<std::uint64_t> group_prefix;
  if (cfg.prefix_groups > 0) {
    zipf_cum.reserve(cfg.prefix_groups);
    double total = 0.0;
    for (std::uint32_t g = 0; g < cfg.prefix_groups; ++g) {
      total += 1.0 / det_pow(static_cast<double>(g + 1), cfg.zipf_s);
      zipf_cum.push_back(total);
    }
    group_prefix.reserve(cfg.prefix_groups);
    for (std::uint32_t g = 0; g < cfg.prefix_groups; ++g)
      group_prefix.push_back(1 + rng.below(cfg.seq_min));
  }

  const double period =
      cfg.process == TrafficProcess::kDiurnal
          ? static_cast<double>(cfg.diurnal_period != 0
                                    ? cfg.diurnal_period
                                    : static_cast<Cycle>(cfg.num_requests) *
                                          cfg.mean_gap)
          : 0.0;

  std::vector<RequestSpec> out;
  out.reserve(cfg.num_requests);
  Cycle now = 0;
  std::uint32_t burst_left = 0;  // bursty: requests remaining in this burst
  for (std::uint32_t i = 0; i < cfg.num_requests; ++i) {
    // Draw order per request is part of the determinism contract (mirrors
    // the fuzz corpus rule): arrival gap, seq_len, decode_steps, share
    // coin, group. New knobs must draw after all of these.
    switch (cfg.process) {
      case TrafficProcess::kPoisson:
        now += exp_gap(rng, static_cast<double>(cfg.mean_gap));
        break;
      case TrafficProcess::kBursty: {
        if (burst_left == 0) {
          burst_left = 1 + static_cast<std::uint32_t>(
                               rng.below(2 * cfg.burst_size - 1));
          now += exp_gap(rng, static_cast<double>(cfg.mean_gap) *
                                  static_cast<double>(cfg.burst_size));
        } else {
          now += exp_gap(rng, static_cast<double>(cfg.mean_gap) /
                                  static_cast<double>(cfg.burst_gap_div));
        }
        --burst_left;
        break;
      }
      case TrafficProcess::kDiurnal: {
        // Rate multiplier m(phase) traces a triangle wave over
        // [1 - A, 1 + A]; a larger multiplier means a shorter mean gap.
        const double phase =
            static_cast<double>(now % static_cast<Cycle>(period)) / period;
        const double tri = phase < 0.5 ? 2.0 * phase : 2.0 * (1.0 - phase);
        const double mult =
            1.0 - cfg.diurnal_amplitude + 2.0 * cfg.diurnal_amplitude * tri;
        now += exp_gap(rng, static_cast<double>(cfg.mean_gap) / mult);
        break;
      }
    }

    RequestSpec spec;
    spec.id = i;
    spec.arrival_cycle = now;
    spec.seq_len = draw_size(rng, cfg.seq_dist, cfg.seq_min, cfg.seq_max,
                             cfg.seq_sigma, cfg.seq_granule);
    spec.decode_steps = static_cast<std::uint32_t>(
        draw_size(rng, cfg.steps_dist, cfg.steps_min, cfg.steps_max,
                  cfg.seq_sigma, /*granule=*/1));
    if (cfg.prefix_groups > 0 && rng.below(100) < cfg.share_pct) {
      const double u = rng.uniform() * zipf_cum.back();
      const auto it =
          std::upper_bound(zipf_cum.begin(), zipf_cum.end(), u);
      const auto g = static_cast<std::uint32_t>(
          std::min<std::ptrdiff_t>(it - zipf_cum.begin(),
                                   cfg.prefix_groups - 1));
      spec.prefix_group = g;
      spec.prefix_tokens = group_prefix[g];
    }
    out.push_back(spec);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Trace record/replay.
// ---------------------------------------------------------------------------

void write_trace(std::ostream& os, const std::vector<RequestSpec>& requests) {
  os << "llamcat-trace v" << kTraceFormatVersion << "\n";
  os << "requests " << requests.size() << "\n";
  for (const RequestSpec& r : requests) {
    os << r.id << ' ' << r.seq_len << ' ' << r.arrival_cycle << ' '
       << r.decode_steps << ' ';
    if (r.prefix_group == kNoPrefixGroup)
      os << '-';
    else
      os << r.prefix_group;
    os << ' ' << r.prefix_tokens << "\n";
  }
}

std::vector<RequestSpec> read_trace(std::istream& is) {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("trace: " + msg);
  };
  std::string line;
  if (!std::getline(is, line)) fail("empty input");
  {
    std::istringstream hdr(line);
    std::string magic, version;
    if (!(hdr >> magic >> version) || magic != "llamcat-trace")
      fail("bad magic line '" + line + "'");
    std::string expected = "v";
    expected += std::to_string(kTraceFormatVersion);
    if (version != expected) {
      std::string msg = "unsupported version '";
      msg += version;
      msg += "' (this build reads v";
      msg += std::to_string(kTraceFormatVersion);
      msg += ")";
      fail(msg);
    }
    std::string extra;
    if (hdr >> extra) fail("trailing tokens on the magic line");
  }
  if (!std::getline(is, line)) fail("missing request-count line");
  std::size_t count = 0;
  {
    std::istringstream cnt(line);
    std::string key;
    if (!(cnt >> key >> count) || key != "requests")
      fail("bad request-count line '" + line + "'");
    std::string extra;
    if (cnt >> extra) fail("trailing tokens on the request-count line");
  }

  std::vector<RequestSpec> out;
  out.reserve(count);
  std::vector<bool> seen;
  for (std::size_t row = 0; row < count; ++row) {
    if (!std::getline(is, line))
      fail("declared " + std::to_string(count) + " requests, found " +
           std::to_string(row));
    std::istringstream rs(line);
    RequestSpec spec;
    std::string group_field;
    if (!(rs >> spec.id >> spec.seq_len >> spec.arrival_cycle >>
          spec.decode_steps >> group_field >> spec.prefix_tokens))
      fail("malformed request row '" + line + "'");
    std::string extra;
    if (rs >> extra) fail("trailing tokens on request row '" + line + "'");
    if (spec.seq_len == 0) fail("seq_len == 0 on request row '" + line + "'");
    if (spec.decode_steps == 0)
      fail("decode_steps == 0 on request row '" + line + "'");
    if (group_field == "-") {
      spec.prefix_group = kNoPrefixGroup;
      if (spec.prefix_tokens != 0)
        fail("prefix_tokens without a group on row '" + line + "'");
    } else {
      std::istringstream gs(group_field);
      if (!(gs >> spec.prefix_group) || !gs.eof() ||
          spec.prefix_group == kNoPrefixGroup)
        fail("bad prefix group '" + group_field + "'");
      if (spec.prefix_tokens == 0 || spec.prefix_tokens > spec.seq_len)
        fail("prefix_tokens outside [1, seq_len] on row '" + line + "'");
    }
    if (spec.id >= seen.size()) seen.resize(spec.id + 1, false);
    if (seen[spec.id])
      fail("duplicate request id " + std::to_string(spec.id));
    seen[spec.id] = true;
    out.push_back(spec);
  }
  std::string tail;
  while (std::getline(is, tail)) {
    if (!tail.empty()) fail("trailing garbage after the last request row");
  }
  return out;
}

std::string trace_to_string(const std::vector<RequestSpec>& requests) {
  std::ostringstream os;
  write_trace(os, requests);
  return os.str();
}

std::vector<RequestSpec> trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace llamcat::scenario
