#include "scenario/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "scenario/kv_pager.hpp"

namespace llamcat::scenario {

// ---------------------------------------------------------------------------
// ServingAuditor: in-engine KV byte ledger
// ---------------------------------------------------------------------------

namespace {

std::string fmt_event(const char* event, std::size_t i) {
  std::ostringstream os;
  os << event << "(request " << i << ")";
  return os.str();
}

}  // namespace

ServingAuditor::ServingAuditor(std::uint64_t budget_bytes,
                               std::vector<std::uint64_t> peak_bytes,
                               std::uint64_t block_bytes)
    : budget_(budget_bytes),
      block_bytes_(block_bytes),
      peak_(std::move(peak_bytes)),
      pinned_(peak_.size(), 0),
      swapped_(peak_.size(), 0),
      admitted_(peak_.size(), false),
      finished_(peak_.size(), false) {}

void ServingAuditor::check_clock(const char* event, std::size_t i, Cycle now) {
  if (now < last_event_) {
    throw InvariantViolation(fmt_event(event, i) + " at cycle " +
                             std::to_string(now) +
                             " moves the serving clock backwards (last event "
                             "was at " +
                             std::to_string(last_event_) + ")");
  }
  last_event_ = now;
}

void ServingAuditor::check_resident(const char* event, std::size_t i,
                                    std::uint64_t engine_resident) const {
  if (engine_resident != resident_) {
    throw InvariantViolation(
        fmt_event(event, i) + ": engine resident-bytes ledger (" +
        std::to_string(engine_resident) + ") diverged from the audited sum " +
        "of per-request pins (" + std::to_string(resident_) + ")");
  }
  if (budget_ != 0 && resident_ > budget_) {
    throw InvariantViolation(fmt_event(event, i) + ": resident bytes " +
                             std::to_string(resident_) + " exceed the " +
                             std::to_string(budget_) + "-byte KV budget");
  }
}

void ServingAuditor::on_admit(std::size_t i, Cycle now,
                              std::uint64_t engine_resident) {
  check_clock("admit", i, now);
  if (admitted_[i]) {
    throw InvariantViolation(fmt_event("admit", i) +
                             ": request was already first-admitted (resumes "
                             "must report on_resume)");
  }
  admitted_[i] = true;
  pinned_[i] = peak_[i];
  resident_ += peak_[i];
  check_resident("admit", i, engine_resident);
}

void ServingAuditor::on_resume(std::size_t i, std::uint64_t refetched_bytes,
                               Cycle now, std::uint64_t engine_resident) {
  check_clock("resume", i, now);
  if (!admitted_[i] || finished_[i]) {
    throw InvariantViolation(fmt_event("resume", i) +
                             ": only a previously admitted, unfinished "
                             "request can resume");
  }
  if (refetched_bytes != swapped_[i]) {
    throw InvariantViolation(
        fmt_event("resume", i) + ": refetched " +
        std::to_string(refetched_bytes) + " bytes but " +
        std::to_string(swapped_[i]) +
        " were swapped out - a resume must restore the full swapped set");
  }
  pinned_[i] += refetched_bytes;
  swapped_[i] = 0;
  resident_ += refetched_bytes;
  if (pinned_[i] != peak_[i]) {
    throw InvariantViolation(
        fmt_event("resume", i) + ": pinned bytes " +
        std::to_string(pinned_[i]) + " != peak footprint " +
        std::to_string(peak_[i]) + " after the refetch re-pin");
  }
  check_resident("resume", i, engine_resident);
}

void ServingAuditor::on_evict(std::size_t i, std::uint64_t freed_bytes,
                              Cycle now, std::uint64_t engine_resident) {
  check_clock("evict", i, now);
  if (!admitted_[i] || finished_[i]) {
    throw InvariantViolation(fmt_event("evict", i) +
                             ": only a running (admitted, unfinished) "
                             "request can be preempted");
  }
  if (freed_bytes > pinned_[i]) {
    throw InvariantViolation(fmt_event("evict", i) + ": freed " +
                             std::to_string(freed_bytes) +
                             " bytes but only " + std::to_string(pinned_[i]) +
                             " were pinned");
  }
  if (freed_bytes != 0 && block_bytes_ == 0) {
    throw InvariantViolation(fmt_event("evict", i) +
                             ": swap in a non-paged run");
  }
  if (block_bytes_ != 0 && freed_bytes % block_bytes_ != 0) {
    throw InvariantViolation(
        fmt_event("evict", i) + ": freed " + std::to_string(freed_bytes) +
        " bytes is not a multiple of the " + std::to_string(block_bytes_) +
        "-byte block (a partial tail block can never move)");
  }
  pinned_[i] -= freed_bytes;
  swapped_[i] += freed_bytes;
  resident_ -= freed_bytes;
  // Conservation: resident + swapped always reconstructs the peak.
  if (pinned_[i] + swapped_[i] != peak_[i]) {
    throw InvariantViolation(fmt_event("evict", i) + ": pinned (" +
                             std::to_string(pinned_[i]) + ") + swapped (" +
                             std::to_string(swapped_[i]) +
                             ") no longer equals the peak footprint (" +
                             std::to_string(peak_[i]) + ")");
  }
  check_resident("evict", i, engine_resident);
}

void ServingAuditor::on_finish(std::size_t i, Cycle now,
                               std::uint64_t engine_resident) {
  check_clock("finish", i, now);
  if (!admitted_[i] || finished_[i]) {
    throw InvariantViolation(fmt_event("finish", i) +
                             ": request finished twice or without admission");
  }
  if (swapped_[i] != 0) {
    throw InvariantViolation(
        fmt_event("finish", i) + ": " + std::to_string(swapped_[i]) +
        " bytes still swapped out at finish - the final resume must have "
        "refetched everything, so a finish can never race a swap");
  }
  if (pinned_[i] != peak_[i]) {
    throw InvariantViolation(fmt_event("finish", i) + ": pinned bytes " +
                             std::to_string(pinned_[i]) +
                             " != peak footprint " + std::to_string(peak_[i]) +
                             " at finish");
  }
  finished_[i] = true;
  pinned_[i] = 0;
  resident_ -= peak_[i];
  check_resident("finish", i, engine_resident);
}

void ServingAuditor::on_pass_end() const {
  for (std::size_t i = 0; i < peak_.size(); ++i) {
    if (!finished_[i]) {
      throw InvariantViolation("pass ended with request " + std::to_string(i) +
                               " unfinished (dropped request)");
    }
  }
  if (resident_ != 0) {
    throw InvariantViolation("pass ended with " + std::to_string(resident_) +
                             " resident bytes still pinned");
  }
}

// ---------------------------------------------------------------------------
// audit_batch: post-run contract
// ---------------------------------------------------------------------------

std::string AuditReport::to_string() const {
  std::string out;
  for (const std::string& v : violations) {
    if (!out.empty()) out += "\n";
    out += v;
  }
  return out;
}

namespace {

class Checker {
 public:
  explicit Checker(AuditReport& report) : report_(report) {}

  /// check(cond, parts...): cond false appends one violation line.
  template <typename... Parts>
  void operator()(bool ok, const Parts&... parts) {
    if (ok) return;
    std::ostringstream os;
    (os << ... << parts);
    report_.violations.push_back(os.str());
  }

 private:
  AuditReport& report_;
};

}  // namespace

AuditReport audit_batch(const RequestBatch& batch,
                        const DecodePassConfig& pass_cfg,
                        const BatchStats& stats) {
  AuditReport report;
  Checker check(report);
  const std::vector<RequestSpec>& reqs = batch.requests();

  check(stats.per_request.size() == reqs.size(), "per_request has ",
        stats.per_request.size(), " rows for a batch of ", reqs.size());
  if (stats.per_request.size() != reqs.size()) return report;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    check(stats.per_request[i].id == reqs[i].id, "per_request[", i,
          "] id is ", stats.per_request[i].id, ", expected ", reqs[i].id,
          " (rows must keep batch order)");
  }

  // -- attribution conservation (shared-System modes attribute exactly) -----
  if (stats.mode != ExecutionMode::kIndependent) {
    std::uint64_t tbs = 0, instrs = 0, reads = 0, writes = 0;
    for (const RequestStats& r : stats.per_request) {
      tbs += r.slice.thread_blocks;
      instrs += r.slice.instructions;
      reads += r.slice.dram_reads;
      writes += r.slice.dram_writes;
      check(r.slice.llc_hits + r.slice.llc_misses == r.slice.llc_lookups,
            "request ", r.id, ": slice hits (", r.slice.llc_hits,
            ") + misses (", r.slice.llc_misses, ") != lookups (",
            r.slice.llc_lookups, ")");
    }
    check(tbs == stats.total.thread_blocks, "per-request thread blocks sum to ",
          tbs, " but the batch total is ", stats.total.thread_blocks);
    check(instrs == stats.total.instructions,
          "per-request instructions sum to ", instrs,
          " but the batch total is ", stats.total.instructions);
    check(reads == stats.total.dram_reads, "per-request DRAM reads sum to ",
          reads, " but the batch total is ", stats.total.dram_reads);
    check(writes == stats.total.dram_writes, "per-request DRAM writes sum to ",
          writes, " but the batch total is ", stats.total.dram_writes);
  }

  // -- barrier modes: landmark sentinels, no stream state -------------------
  if (stats.mode != ExecutionMode::kContinuous) {
    for (const RequestStats& r : stats.per_request) {
      check(!r.streamed, "request ", r.id,
            ": barrier-mode row claims stream landmarks");
      check(r.latency() == kNeverCycle && r.admission_wait() == kNeverCycle,
            "request ", r.id,
            ": barrier-mode latency/wait must be the kNeverCycle sentinel");
      check(r.preemptions == 0 && r.queued_cycles == 0, "request ", r.id,
            ": barrier modes have no serving queue");
      check(r.stats.cycles > 0, "request ", r.id, ": zero-cycle request");
    }
    check(stats.latency_percentile(99.0) == kNeverCycle,
          "barrier-mode latency percentile must be the kNeverCycle sentinel");
    check(stats.makespan == stats.total.cycles,
          "barrier-mode makespan (", stats.makespan,
          ") != sequential-equivalent cycles (", stats.total.cycles, ")");
    check(!stats.paged && stats.total_swapped_blocks() == 0,
          "barrier modes can never page");
    return report;
  }

  // -- continuous: no drop + monotone landmark chain ------------------------
  const ServingConfig& serving = pass_cfg.serving;
  Cycle max_finish = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const RequestStats& r = stats.per_request[i];
    check(r.streamed, "request ", r.id, ": continuous row not streamed");
    check(r.finish_cycle > 0, "request ", r.id,
          ": never finished (dropped request)");
    check(r.arrival_cycle == reqs[i].arrival_cycle, "request ", r.id,
          ": arrival landmark ", r.arrival_cycle, " != spec arrival ",
          reqs[i].arrival_cycle);
    check(r.admit_cycle >= r.arrival_cycle, "request ", r.id, ": admitted (",
          r.admit_cycle, ") before arrival (", r.arrival_cycle, ")");
    check(r.slice.first_dispatch_cycle > 0, "request ", r.id,
          ": no operator was ever dispatched");
    check(r.slice.first_dispatch_cycle >= r.admit_cycle, "request ", r.id,
          ": first dispatch (", r.slice.first_dispatch_cycle,
          ") before admission (", r.admit_cycle, ")");
    check(r.slice.last_complete_cycle >= r.slice.first_dispatch_cycle,
          "request ", r.id, ": last completion (", r.slice.last_complete_cycle,
          ") before first dispatch (", r.slice.first_dispatch_cycle, ")");
    check(r.finish_cycle >= r.slice.last_complete_cycle, "request ", r.id,
          ": finish (", r.finish_cycle, ") before last completion (",
          r.slice.last_complete_cycle, ")");
    max_finish = std::max(max_finish, r.finish_cycle);

    // -- queue accounting --------------------------------------------------
    const Cycle wait = r.admit_cycle - r.arrival_cycle;
    check(r.queued_cycles >= wait, "request ", r.id, ": queued cycles (",
          r.queued_cycles, ") below the admission wait (", wait, ")");
    if (r.preemptions == 0) {
      check(r.queued_cycles == wait, "request ", r.id,
            ": never preempted, so queued cycles (", r.queued_cycles,
            ") must equal the admission wait (", wait, ")");
    }
    if (serving.unconditional()) {
      check(r.admit_cycle == r.arrival_cycle && r.queued_cycles == 0,
            "request ", r.id,
            ": policy none must admit at arrival with zero queue wait");
    }
    if (!serving.preempt) {
      check(r.preemptions == 0, "request ", r.id,
            ": preempted with preemption disabled");
    }

    // -- paged-KV ledger closure -------------------------------------------
    if (serving.paged()) {
      KvPagerConfig pager_cfg;
      pager_cfg.block_bytes =
          serving.kv_block_bytes != 0 ? serving.kv_block_bytes : kLineBytes;
      pager_cfg.refetch_cost = serving.refetch_cost;
      check(r.refetch_bytes == r.swapped_blocks * pager_cfg.block_bytes,
            "request ", r.id, ": cumulative refetch bytes (", r.refetch_bytes,
            ") do not close the swap ledger (", r.swapped_blocks, " blocks x ",
            pager_cfg.block_bytes, " B) - a request must end fully resident");
      check(r.refetch_cycles ==
                r.swapped_blocks * pager_cfg.cycles_per_block(),
            "request ", r.id, ": refetch cycles (", r.refetch_cycles,
            ") != swapped blocks (", r.swapped_blocks, ") x link price (",
            pager_cfg.cycles_per_block(), ")");
    } else {
      check(r.swapped_blocks == 0 && r.refetch_bytes == 0 &&
                r.refetch_cycles == 0,
            "request ", r.id, ": paging counters set in a non-paged run");
    }
  }
  check(stats.paged == serving.paged(), "paged flag (", stats.paged,
        ") disagrees with the serving config (", serving.paged(), ")");
  check(stats.makespan >= max_finish, "makespan (", stats.makespan,
        ") before the last finish (", max_finish, ")");
  check(stats.makespan >= stats.total.cycles, "makespan (", stats.makespan,
        ") below the machine-active cycle count (", stats.total.cycles, ")");
  return report;
}

}  // namespace llamcat::scenario
