#include "scenario/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "scenario/kv_pager.hpp"

namespace llamcat::scenario {

// ---------------------------------------------------------------------------
// ServingAuditor: in-engine KV byte ledger
// ---------------------------------------------------------------------------

namespace {

std::string fmt_event(const char* event, std::size_t i) {
  std::ostringstream os;
  os << event << "(request " << i << ")";
  return os.str();
}

}  // namespace

ServingAuditor::ServingAuditor(std::uint64_t budget_bytes,
                               std::vector<std::uint64_t> peak_bytes,
                               std::uint64_t block_bytes)
    : budget_(budget_bytes),
      block_bytes_(block_bytes),
      peak_(std::move(peak_bytes)),
      pinned_(peak_.size(), 0),
      swapped_(peak_.size(), 0),
      admitted_(peak_.size(), false),
      finished_(peak_.size(), false) {}

ServingAuditor::ServingAuditor(std::uint64_t budget_bytes,
                               std::vector<std::uint64_t> peak_bytes,
                               SharedLayout layout)
    : ServingAuditor(budget_bytes, std::move(peak_bytes),
                     layout.block_bytes) {
  if (layout.block_bytes == 0 || layout.groups.size() != peak_.size() ||
      layout.prefix_bytes.size() != peak_.size()) {
    throw std::invalid_argument(
        "ServingAuditor: shared layout needs a positive block size and one "
        "group/prefix entry per request");
  }
  shared_ = true;
  paged_ = layout.paged;
  groups_ = std::move(layout.groups);
  prefix_ = std::move(layout.prefix_bytes);
  released_.assign(peak_.size(), false);
  private_swapped_blk_.assign(peak_.size(), 0);
}

std::uint64_t ServingAuditor::shared_blocks(std::size_t i) const {
  if (groups_[i] == kNoPrefixGroup) return 0;
  return prefix_[i] / block_bytes_;
}

std::uint64_t ServingAuditor::private_whole_blocks(std::size_t i) const {
  return peak_[i] / block_bytes_ - shared_blocks(i);
}

std::uint64_t ServingAuditor::private_bytes(std::size_t i) const {
  return peak_[i] - shared_blocks(i) * block_bytes_;
}

std::uint64_t ServingAuditor::shadow_key(std::size_t i,
                                         std::uint64_t block) const {
  return (static_cast<std::uint64_t>(groups_[i]) << 32) | block;
}

void ServingAuditor::check_clock(const char* event, std::size_t i, Cycle now) {
  if (now < last_event_) {
    throw InvariantViolation(fmt_event(event, i) + " at cycle " +
                             std::to_string(now) +
                             " moves the serving clock backwards (last event "
                             "was at " +
                             std::to_string(last_event_) + ")");
  }
  last_event_ = now;
}

void ServingAuditor::check_resident(const char* event, std::size_t i,
                                    std::uint64_t engine_resident) const {
  if (engine_resident != resident_) {
    throw InvariantViolation(
        fmt_event(event, i) + ": engine resident-bytes ledger (" +
        std::to_string(engine_resident) + ") diverged from the audited sum " +
        "of per-request pins (" + std::to_string(resident_) + ")");
  }
  if (budget_ != 0 && resident_ > budget_) {
    throw InvariantViolation(fmt_event(event, i) + ": resident bytes " +
                             std::to_string(resident_) + " exceed the " +
                             std::to_string(budget_) + "-byte KV budget");
  }
}

void ServingAuditor::on_admit(std::size_t i, Cycle now,
                              std::uint64_t engine_resident) {
  check_clock("admit", i, now);
  if (admitted_[i]) {
    throw InvariantViolation(fmt_event("admit", i) +
                             ": request was already first-admitted (resumes "
                             "must report on_resume)");
  }
  admitted_[i] = true;
  if (shared_) {
    // Replay the block-level admission: every unique block charges once.
    // The expected charge comes from the shadow map alone, so an engine /
    // pool disagreement about what was already resident surfaces as a
    // ledger divergence on this exact event.
    std::uint64_t charge = private_bytes(i);
    for (std::uint64_t b = 0; b < shared_blocks(i); ++b) {
      auto [it, inserted] = blocks_.try_emplace(shadow_key(i, b));
      ShadowBlock& e = it->second;
      if (inserted) {
        charge += block_bytes_;
      } else if (!e.resident) {
        e.resident = true;  // host-tier reuse: refetched and re-charged
        charge += block_bytes_;
      }
      ++e.pins;
      ++e.holders;
    }
    pinned_[i] = charge;
    resident_ += charge;
    check_resident("admit", i, engine_resident);
    return;
  }
  pinned_[i] = peak_[i];
  resident_ += peak_[i];
  check_resident("admit", i, engine_resident);
}

void ServingAuditor::on_resume(std::size_t i, std::uint64_t refetched_bytes,
                               Cycle now, std::uint64_t engine_resident) {
  check_clock("resume", i, now);
  if (!admitted_[i] || finished_[i]) {
    throw InvariantViolation(fmt_event("resume", i) +
                             ": only a previously admitted, unfinished "
                             "request can resume");
  }
  if (shared_) {
    // Expected refetch = the request's private host-tier blocks plus its
    // shared blocks nobody re-pinned since the eviction (a peer's admission
    // may have brought some back - those re-pin for free).
    std::uint64_t expect = 0;
    if (paged_ && released_[i]) {
      expect = private_swapped_blk_[i] * block_bytes_;
      private_swapped_blk_[i] = 0;
      for (std::uint64_t b = 0; b < shared_blocks(i); ++b) {
        ShadowBlock& e = blocks_.at(shadow_key(i, b));
        if (!e.resident) {
          e.resident = true;
          expect += block_bytes_;
        }
        ++e.pins;
      }
      released_[i] = false;
    }
    if (refetched_bytes != expect) {
      throw InvariantViolation(
          fmt_event("resume", i) + ": refetched " +
          std::to_string(refetched_bytes) + " bytes but the shadow block " +
          "map expected " + std::to_string(expect) +
          " (private host blocks + shared blocks no peer re-pinned)");
    }
    resident_ += expect;
    check_resident("resume", i, engine_resident);
    return;
  }
  if (refetched_bytes != swapped_[i]) {
    throw InvariantViolation(
        fmt_event("resume", i) + ": refetched " +
        std::to_string(refetched_bytes) + " bytes but " +
        std::to_string(swapped_[i]) +
        " were swapped out - a resume must restore the full swapped set");
  }
  pinned_[i] += refetched_bytes;
  swapped_[i] = 0;
  resident_ += refetched_bytes;
  if (pinned_[i] != peak_[i]) {
    throw InvariantViolation(
        fmt_event("resume", i) + ": pinned bytes " +
        std::to_string(pinned_[i]) + " != peak footprint " +
        std::to_string(peak_[i]) + " after the refetch re-pin");
  }
  check_resident("resume", i, engine_resident);
}

void ServingAuditor::on_evict(std::size_t i, std::uint64_t freed_bytes,
                              Cycle now, std::uint64_t engine_resident) {
  check_clock("evict", i, now);
  if (!admitted_[i] || finished_[i]) {
    throw InvariantViolation(fmt_event("evict", i) +
                             ": only a running (admitted, unfinished) "
                             "request can be preempted");
  }
  if (shared_) {
    if (released_[i]) {
      throw InvariantViolation(fmt_event("evict", i) +
                               ": request was already evicted and has not "
                               "resumed");
    }
    std::uint64_t expect = 0;
    if (paged_) {
      // Replay the ref-counted release: a shared block only moves to the
      // host tier when its *last* pinner leaves; a block another admitted
      // request still pins stays resident and frees nothing.
      for (std::uint64_t b = 0; b < shared_blocks(i); ++b) {
        ShadowBlock& e = blocks_.at(shadow_key(i, b));
        if (e.pins == 0 || !e.resident) {
          throw InvariantViolation(
              fmt_event("evict", i) + ": shadow block " + std::to_string(b) +
              " has corrupt refcounts (an active request must pin a "
              "resident block)");
        }
        --e.pins;
        if (e.pins == 0) {
          e.resident = false;
          expect += block_bytes_;
        }
      }
      expect += private_whole_blocks(i) * block_bytes_;
      private_swapped_blk_[i] = private_whole_blocks(i);
      released_[i] = true;
    }
    // !paged_: resident preemption - pins survive, nothing frees.
    if (freed_bytes != expect) {
      throw InvariantViolation(
          fmt_event("evict", i) + ": freed " + std::to_string(freed_bytes) +
          " bytes but the shadow block map expected " +
          std::to_string(expect) +
          " (private whole blocks + shared blocks whose last pinner left)");
    }
    resident_ -= expect;
    check_resident("evict", i, engine_resident);
    return;
  }
  if (freed_bytes > pinned_[i]) {
    throw InvariantViolation(fmt_event("evict", i) + ": freed " +
                             std::to_string(freed_bytes) +
                             " bytes but only " + std::to_string(pinned_[i]) +
                             " were pinned");
  }
  if (freed_bytes != 0 && block_bytes_ == 0) {
    throw InvariantViolation(fmt_event("evict", i) +
                             ": swap in a non-paged run");
  }
  if (block_bytes_ != 0 && freed_bytes % block_bytes_ != 0) {
    throw InvariantViolation(
        fmt_event("evict", i) + ": freed " + std::to_string(freed_bytes) +
        " bytes is not a multiple of the " + std::to_string(block_bytes_) +
        "-byte block (a partial tail block can never move)");
  }
  pinned_[i] -= freed_bytes;
  swapped_[i] += freed_bytes;
  resident_ -= freed_bytes;
  // Conservation: resident + swapped always reconstructs the peak.
  if (pinned_[i] + swapped_[i] != peak_[i]) {
    throw InvariantViolation(fmt_event("evict", i) + ": pinned (" +
                             std::to_string(pinned_[i]) + ") + swapped (" +
                             std::to_string(swapped_[i]) +
                             ") no longer equals the peak footprint (" +
                             std::to_string(peak_[i]) + ")");
  }
  check_resident("evict", i, engine_resident);
}

void ServingAuditor::on_finish(std::size_t i, Cycle now,
                               std::uint64_t engine_resident) {
  check_clock("finish", i, now);
  if (!admitted_[i] || finished_[i]) {
    throw InvariantViolation(fmt_event("finish", i) +
                             ": request finished twice or without admission");
  }
  if (shared_) {
    if (released_[i]) {
      throw InvariantViolation(fmt_event("finish", i) +
                               ": request finished while evicted - it must "
                               "resume (and refetch) before finishing");
    }
    // Drop the holder refs: a shared block frees only when its *last*
    // holder finishes. pins <= holders always, and an unreleased finisher
    // still pins, so a block reaching holders == 0 is resident by
    // construction - its bytes leave the ledger here.
    std::uint64_t freed = private_bytes(i);
    for (std::uint64_t b = 0; b < shared_blocks(i); ++b) {
      auto it = blocks_.find(shadow_key(i, b));
      if (it == blocks_.end() || it->second.pins == 0 ||
          it->second.holders == 0 || !it->second.resident) {
        throw InvariantViolation(
            fmt_event("finish", i) + ": shadow block " + std::to_string(b) +
            " has corrupt refcounts (a finishing request must pin a "
            "resident block)");
      }
      --it->second.pins;
      --it->second.holders;
      if (it->second.holders == 0) {
        blocks_.erase(it);
        freed += block_bytes_;
      }
    }
    finished_[i] = true;
    pinned_[i] = 0;
    resident_ -= freed;
    check_resident("finish", i, engine_resident);
    return;
  }
  if (swapped_[i] != 0) {
    throw InvariantViolation(
        fmt_event("finish", i) + ": " + std::to_string(swapped_[i]) +
        " bytes still swapped out at finish - the final resume must have "
        "refetched everything, so a finish can never race a swap");
  }
  if (pinned_[i] != peak_[i]) {
    throw InvariantViolation(fmt_event("finish", i) + ": pinned bytes " +
                             std::to_string(pinned_[i]) +
                             " != peak footprint " + std::to_string(peak_[i]) +
                             " at finish");
  }
  finished_[i] = true;
  pinned_[i] = 0;
  resident_ -= peak_[i];
  check_resident("finish", i, engine_resident);
}

void ServingAuditor::on_pass_end() const {
  for (std::size_t i = 0; i < peak_.size(); ++i) {
    if (!finished_[i]) {
      throw InvariantViolation("pass ended with request " + std::to_string(i) +
                               " unfinished (dropped request)");
    }
  }
  if (resident_ != 0) {
    throw InvariantViolation("pass ended with " + std::to_string(resident_) +
                             " resident bytes still pinned");
  }
  if (shared_ && !blocks_.empty()) {
    throw InvariantViolation(
        "pass ended with " + std::to_string(blocks_.size()) +
        " shared blocks still alive - every refcount must drain to zero");
  }
}

// ---------------------------------------------------------------------------
// audit_batch: post-run contract
// ---------------------------------------------------------------------------

std::string AuditReport::to_string() const {
  std::string out;
  for (const std::string& v : violations) {
    if (!out.empty()) out += "\n";
    out += v;
  }
  return out;
}

namespace {

class Checker {
 public:
  explicit Checker(AuditReport& report) : report_(report) {}

  /// check(cond, parts...): cond false appends one violation line.
  template <typename... Parts>
  void operator()(bool ok, const Parts&... parts) {
    if (ok) return;
    std::ostringstream os;
    (os << ... << parts);
    report_.violations.push_back(os.str());
  }

 private:
  AuditReport& report_;
};

}  // namespace

AuditReport audit_batch(const RequestBatch& batch,
                        const DecodePassConfig& pass_cfg,
                        const BatchStats& stats) {
  AuditReport report;
  Checker check(report);
  const std::vector<RequestSpec>& reqs = batch.requests();

  check(stats.per_request.size() == reqs.size(), "per_request has ",
        stats.per_request.size(), " rows for a batch of ", reqs.size());
  if (stats.per_request.size() != reqs.size()) return report;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    check(stats.per_request[i].id == reqs[i].id, "per_request[", i,
          "] id is ", stats.per_request[i].id, ", expected ", reqs[i].id,
          " (rows must keep batch order)");
  }

  // -- attribution conservation (shared-System modes attribute exactly) -----
  if (stats.mode != ExecutionMode::kIndependent) {
    std::uint64_t tbs = 0, instrs = 0, reads = 0, writes = 0;
    for (const RequestStats& r : stats.per_request) {
      tbs += r.slice.thread_blocks;
      instrs += r.slice.instructions;
      reads += r.slice.dram_reads;
      writes += r.slice.dram_writes;
      check(r.slice.llc_hits + r.slice.llc_misses == r.slice.llc_lookups,
            "request ", r.id, ": slice hits (", r.slice.llc_hits,
            ") + misses (", r.slice.llc_misses, ") != lookups (",
            r.slice.llc_lookups, ")");
    }
    check(tbs == stats.total.thread_blocks, "per-request thread blocks sum to ",
          tbs, " but the batch total is ", stats.total.thread_blocks);
    check(instrs == stats.total.instructions,
          "per-request instructions sum to ", instrs,
          " but the batch total is ", stats.total.instructions);
    check(reads == stats.total.dram_reads, "per-request DRAM reads sum to ",
          reads, " but the batch total is ", stats.total.dram_reads);
    check(writes == stats.total.dram_writes, "per-request DRAM writes sum to ",
          writes, " but the batch total is ", stats.total.dram_writes);
  }

  // -- barrier modes: landmark sentinels, no stream state -------------------
  if (stats.mode != ExecutionMode::kContinuous) {
    for (const RequestStats& r : stats.per_request) {
      check(!r.streamed, "request ", r.id,
            ": barrier-mode row claims stream landmarks");
      check(r.latency() == kNeverCycle && r.admission_wait() == kNeverCycle,
            "request ", r.id,
            ": barrier-mode latency/wait must be the kNeverCycle sentinel");
      check(r.preemptions == 0 && r.queued_cycles == 0, "request ", r.id,
            ": barrier modes have no serving queue");
      check(r.stats.cycles > 0, "request ", r.id, ": zero-cycle request");
    }
    check(stats.latency_percentile(99.0) == kNeverCycle,
          "barrier-mode latency percentile must be the kNeverCycle sentinel");
    check(stats.makespan == stats.total.cycles,
          "barrier-mode makespan (", stats.makespan,
          ") != sequential-equivalent cycles (", stats.total.cycles, ")");
    check(!stats.paged && stats.total_swapped_blocks() == 0,
          "barrier modes can never page");
    check(!stats.shared, "barrier modes can never share KV");
    return report;
  }

  // -- continuous: no drop + monotone landmark chain ------------------------
  const ServingConfig& serving = pass_cfg.serving;
  bool any_group = false;
  if (serving.kv_share) {
    for (const RequestSpec& r : reqs) {
      if (r.prefix_group != kNoPrefixGroup) any_group = true;
    }
  }
  const std::uint64_t share_block =
      serving.kv_block_bytes != 0 ? serving.kv_block_bytes : kLineBytes;
  std::uint64_t sum_refetch_bytes = 0, sum_refetch_cycles = 0;
  std::uint64_t sum_hit_blocks = 0, sum_hit_bytes = 0;
  Cycle max_finish = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const RequestStats& r = stats.per_request[i];
    check(r.streamed, "request ", r.id, ": continuous row not streamed");
    check(r.finish_cycle > 0, "request ", r.id,
          ": never finished (dropped request)");
    check(r.arrival_cycle == reqs[i].arrival_cycle, "request ", r.id,
          ": arrival landmark ", r.arrival_cycle, " != spec arrival ",
          reqs[i].arrival_cycle);
    check(r.admit_cycle >= r.arrival_cycle, "request ", r.id, ": admitted (",
          r.admit_cycle, ") before arrival (", r.arrival_cycle, ")");
    check(r.slice.first_dispatch_cycle > 0, "request ", r.id,
          ": no operator was ever dispatched");
    check(r.slice.first_dispatch_cycle >= r.admit_cycle, "request ", r.id,
          ": first dispatch (", r.slice.first_dispatch_cycle,
          ") before admission (", r.admit_cycle, ")");
    check(r.slice.last_complete_cycle >= r.slice.first_dispatch_cycle,
          "request ", r.id, ": last completion (", r.slice.last_complete_cycle,
          ") before first dispatch (", r.slice.first_dispatch_cycle, ")");
    check(r.finish_cycle >= r.slice.last_complete_cycle, "request ", r.id,
          ": finish (", r.finish_cycle, ") before last completion (",
          r.slice.last_complete_cycle, ")");
    max_finish = std::max(max_finish, r.finish_cycle);

    // -- step-finish landmarks (the TTFT/TBT clock) --------------------------
    check(r.step_finish_cycles.size() == r.decode_steps, "request ", r.id,
          ": recorded ", r.step_finish_cycles.size(),
          " step-finish landmarks for ", r.decode_steps, " decode steps");
    Cycle prev_step = r.slice.first_dispatch_cycle;
    for (std::size_t k = 0; k < r.step_finish_cycles.size(); ++k) {
      check(r.step_finish_cycles[k] >= prev_step, "request ", r.id,
            ": step ", k, " finished at ", r.step_finish_cycles[k],
            ", before the previous landmark (", prev_step, ")");
      prev_step = r.step_finish_cycles[k];
    }
    if (!r.step_finish_cycles.empty()) {
      check(r.step_finish_cycles.back() == r.finish_cycle, "request ", r.id,
            ": last step finished at ", r.step_finish_cycles.back(),
            " but the request finished at ", r.finish_cycle);
    }

    // -- queue accounting --------------------------------------------------
    const Cycle wait = r.admit_cycle - r.arrival_cycle;
    check(r.queued_cycles >= wait, "request ", r.id, ": queued cycles (",
          r.queued_cycles, ") below the admission wait (", wait, ")");
    if (r.preemptions == 0) {
      check(r.queued_cycles == wait, "request ", r.id,
            ": never preempted, so queued cycles (", r.queued_cycles,
            ") must equal the admission wait (", wait, ")");
    }
    if (serving.unconditional()) {
      check(r.admit_cycle == r.arrival_cycle && r.queued_cycles == 0,
            "request ", r.id,
            ": policy none must admit at arrival with zero queue wait");
    }
    if (!serving.preempt) {
      check(r.preemptions == 0, "request ", r.id,
            ": preempted with preemption disabled");
    }

    // -- prefix-share counters ---------------------------------------------
    sum_hit_blocks += r.prefix_hit_blocks;
    sum_hit_bytes += r.prefix_hit_bytes;
    if (!serving.kv_share) {
      check(r.prefix_hit_blocks == 0 && r.prefix_hit_bytes == 0, "request ",
            r.id, ": prefix-hit counters set with kv_share off");
    }

    // -- paged-KV ledger closure -------------------------------------------
    sum_refetch_bytes += r.refetch_bytes;
    sum_refetch_cycles += r.refetch_cycles;
    if (serving.paged()) {
      KvPagerConfig pager_cfg;
      pager_cfg.block_bytes = share_block;
      pager_cfg.refetch_cost = serving.refetch_cost;
      if (serving.kv_share && any_group) {
        // A peer's admission can refetch a shared host block, so per-request
        // closure does not hold under sharing - only block granularity does
        // (the batch-level closure is checked after the loop).
        check(r.refetch_bytes % pager_cfg.block_bytes == 0, "request ", r.id,
              ": refetch bytes (", r.refetch_bytes,
              ") are not a multiple of the ", pager_cfg.block_bytes,
              "-byte block");
      } else {
        check(r.refetch_bytes == r.swapped_blocks * pager_cfg.block_bytes,
              "request ", r.id, ": cumulative refetch bytes (",
              r.refetch_bytes, ") do not close the swap ledger (",
              r.swapped_blocks, " blocks x ", pager_cfg.block_bytes,
              " B) - a request must end fully resident");
        check(r.refetch_cycles ==
                  r.swapped_blocks * pager_cfg.cycles_per_block(),
              "request ", r.id, ": refetch cycles (", r.refetch_cycles,
              ") != swapped blocks (", r.swapped_blocks, ") x link price (",
              pager_cfg.cycles_per_block(), ")");
      }
    } else {
      check(r.swapped_blocks == 0 && r.refetch_bytes == 0 &&
                r.refetch_cycles == 0,
            "request ", r.id, ": paging counters set in a non-paged run");
    }
  }
  check(stats.paged == serving.paged(), "paged flag (", stats.paged,
        ") disagrees with the serving config (", serving.paged(), ")");
  check(stats.shared == serving.kv_share, "shared flag (", stats.shared,
        ") disagrees with the serving config (", serving.kv_share, ")");

  // -- shared-KV accounting (batch-level) -----------------------------------
  if (serving.paged() && serving.kv_share && any_group) {
    KvPagerConfig pager_cfg;
    pager_cfg.block_bytes = share_block;
    pager_cfg.refetch_cost = serving.refetch_cost;
    // Every host-tier block is eventually refetched exactly once (a finish
    // requires full residency and no request is dropped), so the swap
    // ledger closes at batch scope even though peers refetch for each other.
    check(sum_refetch_bytes == stats.total_swapped_blocks() * share_block,
          "batch refetch bytes (", sum_refetch_bytes,
          ") do not close the batch swap ledger (",
          stats.total_swapped_blocks(), " blocks x ", share_block, " B)");
    check(sum_refetch_cycles ==
              stats.total_swapped_blocks() * pager_cfg.cycles_per_block(),
          "batch refetch cycles (", sum_refetch_cycles,
          ") != swapped blocks (", stats.total_swapped_blocks(),
          ") x link price (", pager_cfg.cycles_per_block(), ")");
  }
  if (!stats.shared) {
    check(stats.kv_block_lookups == 0 && stats.kv_block_hits == 0 &&
              stats.kv_shared_bytes == 0 && stats.kv_charged_bytes == 0 &&
              stats.kv_logical_bytes == 0,
          "share counters set with kv_share off");
  } else {
    check(stats.kv_block_hits <= stats.kv_block_lookups, "block hits (",
          stats.kv_block_hits, ") exceed lookups (", stats.kv_block_lookups,
          ")");
    check(stats.kv_shared_bytes == stats.kv_block_hits * share_block,
          "shared bytes (", stats.kv_shared_bytes, ") != block hits (",
          stats.kv_block_hits, ") x block size (", share_block, ")");
    check(stats.kv_charged_bytes ==
              stats.kv_logical_bytes - stats.kv_shared_bytes,
          "charged bytes (", stats.kv_charged_bytes,
          ") != logical footprint (", stats.kv_logical_bytes,
          ") minus deduped bytes (", stats.kv_shared_bytes, ")");
    check(stats.kv_logical_bytes ==
              batch.total_peak_kv_bytes(pass_cfg.num_layers),
          "logical KV bytes (", stats.kv_logical_bytes,
          ") != the batch's total peak footprint (",
          batch.total_peak_kv_bytes(pass_cfg.num_layers), ")");
    check(sum_hit_bytes == stats.kv_shared_bytes,
          "per-request prefix-hit bytes sum to ", sum_hit_bytes,
          " but the batch deduped ", stats.kv_shared_bytes);
    check(sum_hit_blocks == stats.kv_block_hits,
          "per-request prefix-hit blocks sum to ", sum_hit_blocks,
          " but the batch counted ", stats.kv_block_hits, " hits");
    if (!any_group) {
      check(stats.kv_block_lookups == 0,
            "block lookups (", stats.kv_block_lookups,
            ") in a batch with no prefix groups");
    }
  }
  check(stats.makespan >= max_finish, "makespan (", stats.makespan,
        ") before the last finish (", max_finish, ")");
  check(stats.makespan >= stats.total.cycles, "makespan (", stats.makespan,
        ") below the machine-active cycle count (", stats.total.cycles, ")");
  return report;
}

SloReport slo_accounting(const BatchStats& stats, Cycle slo_ttft_cycles) {
  SloReport out;
  for (const RequestStats& r : stats.per_request) {
    if (r.finish_cycle > 0) ++out.finished;
    // kNeverCycle (a non-streamed or landmark-corrupt row) is > any SLO, so
    // a garbage row lands in `violated` and the audit's partition check
    // still balances against `finished` - it cannot vanish.
    if (r.ttft() <= slo_ttft_cycles) {
      ++out.attained;
      out.goodput_tokens += r.decode_steps;
    } else {
      ++out.violated;
    }
  }
  return out;
}

AuditReport audit_open_loop(const std::vector<RequestSpec>& requests,
                            const BatchStats& stats, Cycle slo_ttft_cycles) {
  AuditReport report;
  Checker check(report);

  check(stats.mode == ExecutionMode::kContinuous,
        "open-loop contract applies to kContinuous runs only (mode is ",
        static_cast<int>(stats.mode), ")");
  check(stats.per_request.size() == requests.size(), "per_request has ",
        stats.per_request.size(), " rows for a workload of ",
        requests.size());
  if (stats.mode != ExecutionMode::kContinuous ||
      stats.per_request.size() != requests.size()) {
    return report;
  }

  // 5. The source emits in arrival order.
  for (std::size_t i = 1; i < requests.size(); ++i) {
    check(requests[i].arrival_cycle >= requests[i - 1].arrival_cycle,
          "request ", requests[i].id, " arrives at ",
          requests[i].arrival_cycle, ", before its predecessor (",
          requests[i - 1].arrival_cycle,
          ") - an open-loop source emits in arrival order");
  }

  // 6. TTFT landmarks well-formed and monotone per request.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const RequestStats& r = stats.per_request[i];
    check(r.admit_cycle >= requests[i].arrival_cycle, "request ", r.id,
          ": admitted (", r.admit_cycle, ") before arrival (",
          requests[i].arrival_cycle, ")");
    check(r.ttft() != kNeverCycle, "request ", r.id,
          ": TTFT is the kNeverCycle sentinel in a continuous run");
    check(r.slice.first_dispatch_cycle >= requests[i].arrival_cycle,
          "request ", r.id, ": first dispatch (",
          r.slice.first_dispatch_cycle, ") before arrival (",
          requests[i].arrival_cycle, ")");
    check(r.step_finish_cycles.size() == r.decode_steps, "request ", r.id,
          ": ", r.step_finish_cycles.size(), " step-finish landmarks for ",
          r.decode_steps, " decode steps");
    Cycle prev = r.slice.first_dispatch_cycle;
    for (std::size_t k = 0; k < r.step_finish_cycles.size(); ++k) {
      check(r.step_finish_cycles[k] >= prev, "request ", r.id, ": step ", k,
            " landmark ", r.step_finish_cycles[k],
            " moves backwards (previous ", prev, ")");
      prev = r.step_finish_cycles[k];
    }
    if (!r.step_finish_cycles.empty()) {
      check(r.step_finish_cycles.back() == r.finish_cycle, "request ", r.id,
            ": last step landmark ", r.step_finish_cycles.back(),
            " != finish (", r.finish_cycle, ")");
    }
  }

  // 7. SLO-goodput accounting sums.
  const SloReport slo = slo_accounting(stats, slo_ttft_cycles);
  check(slo.attained + slo.violated == slo.finished,
        "SLO buckets do not partition the finished set: attained (",
        slo.attained, ") + violated (", slo.violated, ") != finished (",
        slo.finished, ")");
  check(slo.finished == requests.size(), "only ", slo.finished, " of ",
        requests.size(), " requests finished (dropped request)");
  return report;
}

}  // namespace llamcat::scenario
