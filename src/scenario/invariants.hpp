// Serving-layer invariant contract: the properties every continuous-engine
// run must satisfy regardless of policy knobs, formalized as an audit layer
// callable from three places:
//
//  - the randomized stress fuzzer (tools/llamcat_stress + scenario/fuzz.hpp)
//    runs the full contract over thousands of drawn scenarios;
//  - the seeded-corpus regression suite (tests/test_serving_fuzz.cpp)
//    replays pinned seeds through the same checks on every CI run;
//  - run_continuous itself feeds the in-engine ledger auditor when
//    DecodePassConfig::audit is set (or LLAMCAT_AUDIT=1), catching a
//    violation on the exact cycle it happens instead of post-mortem.
//
// The contract (docs/testing.md is the prose version):
//
//  1. No request is ever dropped: every request finishes, and every landmark
//     chain is monotone - arrival <= admit <= first_dispatch <=
//     last_complete <= finish <= makespan.
//  2. KV byte conservation: a request's pinned + swapped bytes always equal
//     its peak footprint (or zero before first admission); eviction frees
//     exactly what the swap moved out, resume re-pins exactly what it
//     refetches, and a request never finishes with bytes still swapped out.
//     The engine's resident-bytes ledger matches the auditor's shadow ledger
//     after every event, never exceeds the budget, and drains to zero.
//  3. Attribution conservation: per-request slices of thread blocks,
//     instructions and DRAM traffic sum to the batch totals, and each
//     slice's LLC hit/miss split adds up.
//  4. Policy accounting: no preemption => queue wait equals the admission
//     wait; policy none => no queueing at all; paging off => every paging
//     counter is zero; paging on => cumulative refetch bytes/cycles close
//     the swap ledger at the configured block size and link price.
//
// Same-seed determinism and policy-none byte-identity with the raw engine
// are two-run properties and live in scenario/fuzz.hpp (the fuzzer runs
// every scenario twice and diffs).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "scenario/scenario.hpp"

namespace llamcat::scenario {

/// Thrown by the in-engine ServingAuditor the moment a ledger invariant
/// breaks (the post-run audit_batch collects strings instead, so the fuzzer
/// can report every violation of a run at once).
class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::runtime_error("serving invariant violated: " + what) {}
};

/// In-engine KV byte-ledger auditor. run_continuous reports every serving
/// event (first admission, resume, eviction, finish) together with its own
/// resident-bytes ledger; the auditor keeps an independent shadow ledger
/// and throws InvariantViolation on the first divergence, over-budget pin,
/// non-block-granular swap, or finish with bytes still swapped out.
class ServingAuditor {
 public:
  /// `peak_bytes[i]` is request i's peak KV footprint (what a first
  /// admission pins). `budget_bytes` 0 = unlimited. `block_bytes` is the
  /// pager's block size, 0 when the run is not paged (swaps then must
  /// never happen).
  ServingAuditor(std::uint64_t budget_bytes,
                 std::vector<std::uint64_t> peak_bytes,
                 std::uint64_t block_bytes);

  /// Prefix-sharing layout for the shared-byte conservation mode: when any
  /// request shares a prefix, the auditor replays the block-level lifecycle
  /// (pin/unref/swap/free per (group, block) key) through its own shadow
  /// map - independent of KvBlockPool's implementation - and checks after
  /// every event that the engine's ledger equals the sum of unique charged
  /// blocks, that eviction freed exactly the blocks whose last pinner left,
  /// and at pass end that every refcount drained to zero.
  struct SharedLayout {
    std::uint64_t block_bytes = kLineBytes;
    /// Whether preemption swaps blocks to the host tier (kv_evict =
    /// cold-blocks). Off: evictions must free 0 bytes and pins survive
    /// preemption, exactly like the legacy resident-preemption contract.
    bool paged = false;
    /// Per-request prefix group (kNoPrefixGroup = fully private KV).
    std::vector<std::uint32_t> groups;
    /// Per-request prefix bytes (<= the request's peak footprint).
    std::vector<std::uint64_t> prefix_bytes;
  };

  /// Shared-byte conservation mode (see SharedLayout).
  ServingAuditor(std::uint64_t budget_bytes,
                 std::vector<std::uint64_t> peak_bytes, SharedLayout layout);

  /// First admission of request i: pins its full peak footprint.
  void on_admit(std::size_t i, Cycle now, std::uint64_t engine_resident);
  /// Re-admission of a preempted request: re-pins `refetched_bytes` (the
  /// swapped-out share; 0 for a resident, non-evicted resume).
  void on_resume(std::size_t i, std::uint64_t refetched_bytes, Cycle now,
                 std::uint64_t engine_resident);
  /// Preemption of running request i: `freed_bytes` left the resident
  /// ledger for the host tier (0 under kv_evict=none).
  void on_evict(std::size_t i, std::uint64_t freed_bytes, Cycle now,
                std::uint64_t engine_resident);
  /// Request i finished: its full peak unpins. Fails if any of its bytes
  /// are still swapped out (a finish can never race an outstanding swap).
  void on_finish(std::size_t i, Cycle now, std::uint64_t engine_resident);
  /// End of pass: every request finished, both ledgers drained to zero.
  void on_pass_end() const;

  [[nodiscard]] std::uint64_t resident_bytes() const { return resident_; }

 private:
  /// One shared block in the shadow map: alive while holders > 0,
  /// swappable only at pins == 0 (mirrors the pool's contract, but
  /// replayed independently).
  struct ShadowBlock {
    std::uint32_t pins = 0;
    std::uint32_t holders = 0;
    bool resident = true;
  };

  void check_resident(const char* event, std::size_t i,
                      std::uint64_t engine_resident) const;
  void check_clock(const char* event, std::size_t i, Cycle now);
  [[nodiscard]] std::uint64_t shared_blocks(std::size_t i) const;
  [[nodiscard]] std::uint64_t private_whole_blocks(std::size_t i) const;
  [[nodiscard]] std::uint64_t private_bytes(std::size_t i) const;
  [[nodiscard]] std::uint64_t shadow_key(std::size_t i,
                                         std::uint64_t block) const;

  std::uint64_t budget_;
  std::uint64_t block_bytes_;
  std::vector<std::uint64_t> peak_;
  std::vector<std::uint64_t> pinned_;   // resident bytes per request
  std::vector<std::uint64_t> swapped_;  // host-tier bytes per request
  std::vector<bool> admitted_;
  std::vector<bool> finished_;
  std::uint64_t resident_ = 0;  // shadow of the engine's ledger
  Cycle last_event_ = 0;        // serving events never move backwards

  // -- shared-byte conservation mode (SharedLayout ctor) --------------------
  bool shared_ = false;
  bool paged_ = false;
  std::vector<std::uint32_t> groups_;
  std::vector<std::uint64_t> prefix_;
  std::vector<bool> released_;  // evicted, not yet resumed (paged only)
  std::vector<std::uint64_t> private_swapped_blk_;
  std::map<std::uint64_t, ShadowBlock> blocks_;  // (group, index) -> state
};

/// Result of the post-run contract check: empty = clean. Each violation is
/// one self-contained human-readable line.
struct AuditReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// All violations joined with newlines ("" when clean).
  [[nodiscard]] std::string to_string() const;
};

/// Audits a finished pass against the invariant contract (items 1, 3 and 4
/// of the header comment; item 2 needs the in-engine auditor). Supports all
/// execution modes: barrier modes check the landmark sentinels and
/// (kCoScheduled) attribution instead of the stream landmarks.
[[nodiscard]] AuditReport audit_batch(const RequestBatch& batch,
                                      const DecodePassConfig& pass_cfg,
                                      const BatchStats& stats);

/// SLO/goodput accounting over a finished continuous run: a request attains
/// the SLO iff its TTFT (arrival -> first dispatch) is within
/// `slo_ttft_cycles`; goodput is the tokens those requests produced. The
/// counts partition the batch - attained + violated == finished is an
/// audited invariant (audit_open_loop), not an assumption.
struct SloReport {
  std::uint64_t finished = 0;
  std::uint64_t attained = 0;        // finished with TTFT <= the SLO
  std::uint64_t violated = 0;        // finished with TTFT  > the SLO
  std::uint64_t goodput_tokens = 0;  // decode tokens of attained requests
};

[[nodiscard]] SloReport slo_accounting(const BatchStats& stats,
                                       Cycle slo_ttft_cycles);

/// Open-loop additions to the contract, for workloads that came from an
/// arrival-process source (scenario/traffic.hpp) or a recorded trace:
///
///  5. The source emits in arrival order: arrival cycles are nondecreasing
///     in request-id order, and no request is admitted before its arrival.
///  6. TTFT landmarks are well-formed and monotone: every request
///     dispatched at or after its arrival, and its per-step finish cycles
///     are nondecreasing, one per decode step, ending exactly at the
///     finish landmark.
///  7. SLO-goodput accounting sums: attained + violated == finished ==
///     the whole batch (an unfinished or landmark-corrupt row cannot hide
///     inside either bucket).
///
/// Complements audit_batch (which keeps holding for these runs); callers
/// run both.
[[nodiscard]] AuditReport audit_open_loop(
    const std::vector<RequestSpec>& requests, const BatchStats& stats,
    Cycle slo_ttft_cycles);

}  // namespace llamcat::scenario
