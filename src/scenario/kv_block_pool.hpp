// Shared KV block pool for the serving layer: cross-request prefix reuse
// with ref-counted, hash-addressed blocks.
//
// The paged KV model (kv_pager.hpp) treats every request's KV footprint as
// private, so two requests decoding from the same system prompt each pin a
// full copy of the prefix KV against `--kv-budget`. Real traffic has massive
// prefix overlap (system prompts, few-shot templates, multi-turn chats - the
// LMCache/Kcache regime), and the pool makes that overlap visible to every
// policy knob: at a request's first admission its prefix is probed
// block-by-block against a sharded hash table keyed (prefix group, block
// index); hits pin the existing block (refcount++) and charge the budget
// ZERO new bytes, misses allocate and charge once, and from then on the
// block is shared - eviction respects refcounts (only a block whose last
// pinner released it can swap to the host tier), and finish/preempt unref
// instead of free.
//
// Structure follows RocksDB's sharded_cache/clock_cache split: a power-of-two
// shard array, the hash's high bits select the shard, and each shard owns an
// independent table plus its own lookup/hit/insert counters behind a
// shard-local annotated Mutex (common/sync.hpp). The serving engine is
// single-threaded today, so the locks are uncontended; they exist so clang
// -Wthread-safety machine-checks the shard contract from day one.
//
// Block-level state machine. Every tracked unit is in exactly one state:
//
//   resident+charged  - counted in the engine's resident-bytes ledger;
//   host              - swapped out, uncharged, but still owned (holders>0):
//                       a host block is never freed while any admitted
//                       unfinished request holds it, so every swap-out is
//                       refetched exactly once;
//   free              - not in the pool (never admitted, or last holder
//                       finished).
//
// Two refcounts per shared block: `pins` counts holders currently admitted
// to the machine (release decrements it; a block is swappable only at
// pins == 0), `holders` counts admitted-unfinished associated requests
// (finish decrements it; the block is freed only at holders == 0). A
// request's non-prefix region stays private and moves as one compact run -
// whole blocks swap like the legacy pager's, and a partial tail block stays
// resident and charged for the request's whole life (blocks are the transfer
// granule; a fraction of one cannot move). Sharing itself is whole-block
// granular: a prefix of P bytes shares floor(P / block_bytes) blocks and its
// remainder is private per request.
//
// With no request in a prefix group (or `--kv-share=off`, when the engine
// does not instantiate the pool at all) every region is private and the
// pool's admission charges, eviction frees and refetch prices are
// byte-identical to KvPager's - the legacy golden rows pin this.
//
// See docs/architecture.md ("Prefix-sharing KV block pool") for how the pool
// slots into the admission/preemption state machine and docs/metrics.md for
// the hit/shared-byte counters it feeds.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace llamcat::scenario {

/// Sentinel: the request belongs to no prefix group (fully private KV).
inline constexpr std::uint32_t kNoPrefixGroup = 0xFFFFFFFFu;

/// Knobs of the shared block pool. Block geometry and refetch pricing match
/// KvPagerConfig so a share-off pool reproduces the pager byte for byte.
struct KvBlockPoolConfig {
  /// Fixed KV block size in bytes: the sharing, swap and accounting granule.
  /// Must be a positive multiple of kLineBytes.
  std::uint64_t block_bytes = kLineBytes;
  /// Core cycles charged per refetched block (0 = derive block_bytes / 8,
  /// the ~8 B/cycle modeled host link of KvPagerConfig).
  Cycle refetch_cost = 0;
  /// log2 of the shard count (RocksDB sharded_cache idiom: the hash's high
  /// bits select the shard).
  std::uint32_t shard_bits = 4;

  [[nodiscard]] Cycle cycles_per_block() const {
    if (refetch_cost != 0) return refetch_cost;
    const Cycle derived = block_bytes / 8;
    return derived == 0 ? 1 : derived;
  }

  /// Throws std::invalid_argument on a bad block size or shard count.
  void validate() const;
};

/// Shared, ref-counted KV block pool. Request indices are the engine's dense
/// indices (0 .. num_requests-1), matching the ReqState / peak_bytes arrays
/// in run_continuous. All mutating calls enforce the request lifecycle
/// (admit -> [release -> resume]* -> finish) and throw std::logic_error on a
/// misuse such as a double release or a finish while released - the engine
/// never does these, and the ledger tests pin that the pool refuses them.
class KvBlockPool {
 public:
  /// Per-request block-layout input: the peak footprint the budget pins and
  /// the prefix identity that decides which leading blocks are shared.
  struct RequestLayout {
    std::uint64_t footprint_bytes = 0;
    std::uint32_t prefix_group = kNoPrefixGroup;
    /// Prefix length in bytes (<= footprint_bytes). Only the whole blocks
    /// of it are shared; the remainder is private to the request.
    std::uint64_t prefix_bytes = 0;
  };

  /// What one admission (first or resume) did to the ledger.
  struct Admission {
    /// Bytes newly charged against the budget (allocations + refetches).
    std::uint64_t charged_bytes = 0;
    /// Shared blocks probed (first admissions only; resumes re-pin blocks
    /// the request already owns, which is not a prefix lookup).
    std::uint64_t lookup_blocks = 0;
    /// Probes that found the block resident: charged 0, pure dedup win.
    std::uint64_t hit_blocks = 0;
    std::uint64_t hit_bytes = 0;
    /// Host-tier blocks brought back (charged AND priced: a peer released
    /// the shared block to the host tier, so reusing it pays the link).
    std::uint64_t refetch_blocks = 0;
    std::uint64_t refetch_bytes = 0;
    Cycle refetch_cycles = 0;
  };

  KvBlockPool(const KvBlockPoolConfig& cfg,
              std::vector<RequestLayout> layouts);

  [[nodiscard]] const KvBlockPoolConfig& config() const { return cfg_; }

  /// First admission of request i: probes its shared prefix block-by-block,
  /// allocates its private region, pins and charges per the header comment.
  Admission admit(std::size_t i);
  /// Re-admission of a released (preempted + evicted) request: re-pins its
  /// blocks; host-tier ones refetch and re-charge, still-resident shared
  /// ones (a peer kept them warm) re-pin for free.
  Admission resume(std::size_t i);
  /// Preemption swap-out of running request i: unpins all its blocks and
  /// swaps the cold ones - private whole blocks plus shared blocks whose
  /// refcount dropped to zero - to the host tier. A shared block a peer
  /// still pins stays resident and charged (refcounted eviction: the swap
  /// is refused for that block). Returns the budget bytes freed.
  std::uint64_t release(std::size_t i);
  /// Request i finished: unrefs everything; blocks whose last holder this
  /// was are freed. Returns the budget bytes freed (less than the footprint
  /// when a peer still holds shared blocks). The request must be admitted
  /// and not released (a released request resumes before finishing).
  std::uint64_t finish(std::size_t i);

  // -- const cost queries for the admission sweep ---------------------------
  /// Bytes admit(i) would charge right now (the effective, deduped
  /// footprint the budget gate sees). Upper bound on the eventual charge:
  /// blocks can only become cheaper (a peer admits them first), never
  /// dearer, between the sweep's estimate and the actual admission.
  [[nodiscard]] std::uint64_t admit_cost(std::size_t i) const;
  /// Bytes resume(i) would charge right now (the host-tier share).
  [[nodiscard]] std::uint64_t resume_cost(std::size_t i) const;
  /// Blocks release(i) would actually move to the host tier right now:
  /// private whole blocks plus shared blocks this request is the sole
  /// pinner of. 0 means eviction-driven preemption would free nothing.
  [[nodiscard]] std::uint64_t releasable_blocks(std::size_t i) const;

  // -- cumulative pool stats (bench/report rows; see docs/metrics.md) -------
  [[nodiscard]] std::uint64_t total_lookups() const;
  [[nodiscard]] std::uint64_t total_hits() const;
  /// Bytes first admissions did NOT charge thanks to resident shared blocks.
  [[nodiscard]] std::uint64_t total_shared_bytes() const { return shared_bytes_; }
  /// Bytes first admissions actually charged.
  [[nodiscard]] std::uint64_t total_charged_bytes() const { return charged_bytes_; }
  /// Sum of admitted requests' footprints (the all-private charge).
  [[nodiscard]] std::uint64_t total_logical_bytes() const { return logical_bytes_; }

 private:
  /// One shared block: alive while holders > 0, resident or on the host
  /// tier, swappable only at pins == 0.
  struct Entry {
    std::uint32_t pins = 0;
    std::uint32_t holders = 0;
    bool resident = true;
  };
  /// One hash shard (sharded_cache idiom): its slice of the table plus its
  /// own counters, behind a shard-local lock. The serving engine is
  /// single-threaded today, so the lock is uncontended - it completes the
  /// sharded_cache structure and puts the shard's state under the
  /// clang -Wthread-safety contract, so a future concurrent admission
  /// sweep cannot touch a table without holding its shard's mutex.
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::uint64_t, Entry> table GUARDED_BY(mu);
    std::uint64_t lookups GUARDED_BY(mu) = 0;
    std::uint64_t hits GUARDED_BY(mu) = 0;
    std::uint64_t inserts GUARDED_BY(mu) = 0;
  };
  enum class ReqState : std::uint8_t { kNew, kActive, kReleased, kFinished };

  [[nodiscard]] std::uint64_t shared_blocks(std::size_t i) const;
  [[nodiscard]] std::uint64_t private_whole_blocks(std::size_t i) const;
  [[nodiscard]] std::uint64_t private_bytes(std::size_t i) const;
  [[nodiscard]] Shard& shard_of(std::uint64_t key);
  [[nodiscard]] const Shard& shard_of(std::uint64_t key) const;
  [[nodiscard]] static std::uint64_t block_key(std::uint32_t group,
                                               std::uint64_t index);
  void require_state(std::size_t i, ReqState expect, const char* call) const;

  KvBlockPoolConfig cfg_;
  std::vector<RequestLayout> layouts_;
  std::vector<ReqState> state_;
  /// Private whole blocks of request i currently on the host tier.
  std::vector<std::uint64_t> private_swapped_;
  std::vector<Shard> shards_;
  std::uint64_t shared_bytes_ = 0;
  std::uint64_t charged_bytes_ = 0;
  std::uint64_t logical_bytes_ = 0;
};

}  // namespace llamcat::scenario
