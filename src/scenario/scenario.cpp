#include "scenario/scenario.hpp"

#include <iomanip>
#include <ostream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace llamcat::scenario {

namespace {

/// Address-space stride between (request, layer) slots. Every operator of a
/// slot has all four tensor bases shifted by slot * kSlotStride, so distinct
/// requests/layers occupy distinct DRAM rows (and hash to different LLC
/// slices) without perturbing the intra-operator layout the defaults encode.
constexpr Addr kSlotStride = 0x4'0000'0000;  // 16 GiB

OperatorSpec shift_bases(OperatorSpec spec, std::uint64_t slot) {
  const Addr delta = static_cast<Addr>(slot) * kSlotStride;
  spec.q_base += delta;
  spec.kv_base += delta;
  spec.s_base += delta;
  spec.out_base += delta;
  return spec;
}

}  // namespace

std::string to_string(StageKind k) {
  switch (k) {
    case StageKind::kLogit: return "logit";
    case StageKind::kAttend: return "attend";
    case StageKind::kGemv: return "gemv";
  }
  return "?";
}

RequestBatch::RequestBatch(ModelShape model, std::vector<RequestSpec> requests)
    : model_(std::move(model)), requests_(std::move(requests)) {
  if (requests_.empty()) {
    throw std::invalid_argument("RequestBatch: empty batch");
  }
  std::unordered_set<std::uint32_t> ids;
  for (const RequestSpec& r : requests_) {
    if (r.seq_len == 0) {
      throw std::invalid_argument("RequestBatch: zero seq_len");
    }
    if (!ids.insert(r.id).second) {
      throw std::invalid_argument("RequestBatch: duplicate request id " +
                                  std::to_string(r.id));
    }
  }
}

RequestBatch RequestBatch::uniform(const ModelShape& model, std::uint32_t n,
                                   std::uint64_t seq_len) {
  std::vector<RequestSpec> reqs;
  reqs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) reqs.push_back({i, seq_len});
  return RequestBatch(model, std::move(reqs));
}

RequestBatch RequestBatch::with_seq_lens(
    const ModelShape& model, const std::vector<std::uint64_t>& seq_lens) {
  std::vector<RequestSpec> reqs;
  reqs.reserve(seq_lens.size());
  for (std::size_t i = 0; i < seq_lens.size(); ++i) {
    reqs.push_back({static_cast<std::uint32_t>(i), seq_lens[i]});
  }
  return RequestBatch(model, std::move(reqs));
}

std::uint64_t RequestBatch::total_seq_len() const {
  std::uint64_t total = 0;
  for (const RequestSpec& r : requests_) total += r.seq_len;
  return total;
}

void BatchStats::print(std::ostream& os) const {
  os << std::left << std::setw(10) << "request" << std::setw(10) << "seq_len"
     << std::setw(14) << "cycles" << std::setw(16) << "tokens/cycle" << "\n";
  for (const RequestStats& r : per_request) {
    os << std::left << std::setw(10) << r.id << std::setw(10) << r.seq_len
       << std::setw(14) << r.stats.cycles << std::scientific
       << std::setprecision(3) << r.tokens_per_cycle() << std::defaultfloat
       << "\n";
  }
  os << "\nbatch totals\n";
  total.print(os);
  os << std::scientific << std::setprecision(3) << "tokens/cycle      "
     << tokens_per_cycle() << "\n"
     << std::fixed << std::setprecision(1) << "tokens/s          "
     << tokens_per_cycle() * total.core_hz << "\n"
     << std::defaultfloat;
}

DecodePass::DecodePass(RequestBatch batch, DecodePassConfig pass_cfg,
                       const SimConfig& cfg)
    : batch_(std::move(batch)), pass_cfg_(pass_cfg), cfg_(cfg) {
  if (pass_cfg_.num_layers == 0) {
    throw std::invalid_argument("DecodePass: zero layers");
  }
  const ModelShape& m = batch_.model();
  const std::uint64_t model_width =
      static_cast<std::uint64_t>(m.num_kv_heads) * m.group_size * m.head_dim;
  const std::uint64_t gemv_rows =
      pass_cfg_.gemv_rows ? pass_cfg_.gemv_rows : model_width;
  const std::uint32_t gemv_cols =
      pass_cfg_.gemv_cols ? pass_cfg_.gemv_cols
                          : static_cast<std::uint32_t>(model_width);

  const std::uint32_t stages_per_layer = pass_cfg_.include_gemv ? 3u : 2u;
  schedule_.reserve(batch_.size() * pass_cfg_.num_layers * stages_per_layer);
  std::uint64_t slot = 0;
  for (const RequestSpec& req : batch_.requests()) {
    for (std::uint32_t layer = 0; layer < pass_cfg_.num_layers; ++layer) {
      auto push = [&](StageKind stage, OperatorSpec spec) {
        ScheduledOp op;
        op.request_id = req.id;
        op.layer = layer;
        op.stage = stage;
        op.name = "req" + std::to_string(req.id) + "/L" +
                  std::to_string(layer) + "/" + to_string(stage);
        op.workload = Workload::from_spec(shift_bases(std::move(spec), slot),
                                          cfg_);
        schedule_.push_back(std::move(op));
      };
      push(StageKind::kLogit, OperatorSpec::logit(m, req.seq_len));
      push(StageKind::kAttend, OperatorSpec::attend(m, req.seq_len));
      if (pass_cfg_.include_gemv) {
        push(StageKind::kGemv, OperatorSpec::gemv(gemv_rows, gemv_cols));
      }
      ++slot;
    }
  }
}

BatchStats DecodePass::run(std::size_t threads, bool verbose) const {
  std::vector<ExperimentSpec> specs;
  specs.reserve(schedule_.size());
  for (const ScheduledOp& op : schedule_) {
    specs.push_back({op.name, cfg_, op.workload});
  }

  BatchStats out;
  out.per_op = run_experiments(specs, threads, verbose);

  out.per_request.reserve(batch_.size());
  for (const RequestSpec& req : batch_.requests()) {
    RequestStats rs;
    rs.id = req.id;
    rs.seq_len = req.seq_len;
    out.per_request.push_back(rs);
  }
  // Aggregation walks schedule order, so the result is independent of which
  // worker thread finished each simulation first.
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const std::uint32_t rid = schedule_[i].request_id;
    for (RequestStats& rs : out.per_request) {
      if (rs.id == rid) {
        rs.stats.accumulate(out.per_op[i].stats);
        break;
      }
    }
    out.total.accumulate(out.per_op[i].stats);
  }
  return out;
}

}  // namespace llamcat::scenario
