#include "scenario/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include <optional>

#include "scenario/invariants.hpp"
#include "scenario/kv_block_pool.hpp"
#include "sim/system.hpp"
#include "trace/dynamic_source.hpp"

namespace llamcat::scenario {

std::string to_string(StageKind k) {
  switch (k) {
    case StageKind::kLogit: return "logit";
    case StageKind::kAttend: return "attend";
    case StageKind::kGemv: return "gemv";
  }
  return "?";
}


RequestBatch::RequestBatch(ModelShape model, std::vector<RequestSpec> requests)
    : model_(std::move(model)), requests_(std::move(requests)) {
  if (requests_.empty()) {
    throw std::invalid_argument("RequestBatch: empty batch");
  }
  std::unordered_set<std::uint32_t> ids;
  for (const RequestSpec& r : requests_) {
    if (r.seq_len == 0) {
      throw std::invalid_argument("RequestBatch: zero seq_len");
    }
    if (r.decode_steps == 0) {
      throw std::invalid_argument("RequestBatch: zero decode_steps");
    }
    if (!ids.insert(r.id).second) {
      throw std::invalid_argument("RequestBatch: duplicate request id " +
                                  std::to_string(r.id));
    }
    if (r.prefix_group == kNoPrefixGroup) {
      if (r.prefix_tokens != 0) {
        throw std::invalid_argument(
            "RequestBatch: request " + std::to_string(r.id) +
            " declares prefix tokens without a prefix group");
      }
    } else if (r.prefix_tokens == 0 || r.prefix_tokens > r.seq_len) {
      throw std::invalid_argument(
          "RequestBatch: request " + std::to_string(r.id) +
          " prefix length must be in [1, seq_len]; got " +
          std::to_string(r.prefix_tokens) + " of " +
          std::to_string(r.seq_len) + " tokens");
    }
  }
}

RequestBatch RequestBatch::uniform(const ModelShape& model, std::uint32_t n,
                                   std::uint64_t seq_len) {
  std::vector<RequestSpec> reqs;
  reqs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) reqs.push_back({i, seq_len});
  return RequestBatch(model, std::move(reqs));
}

RequestBatch RequestBatch::with_seq_lens(
    const ModelShape& model, const std::vector<std::uint64_t>& seq_lens) {
  std::vector<RequestSpec> reqs;
  reqs.reserve(seq_lens.size());
  for (std::size_t i = 0; i < seq_lens.size(); ++i) {
    reqs.push_back({static_cast<std::uint32_t>(i), seq_lens[i]});
  }
  return RequestBatch(model, std::move(reqs));
}

std::uint64_t RequestBatch::kv_tokens_at_step(const RequestSpec& r,
                                              std::uint32_t step) const {
  // Mirrors the schedule construction: decode step s extends a KV cache the
  // previous steps grew to seq_len + s tokens, rounded up to a whole cache
  // line of elements (block-granular KV allocation).
  if (step == 0) return r.seq_len;
  const std::uint64_t granule = kLineBytes / model_.dtype_bytes;
  return (r.seq_len + step + granule - 1) / granule * granule;
}

std::uint64_t RequestBatch::peak_kv_tokens(const RequestSpec& r) const {
  return kv_tokens_at_step(r, r.decode_steps - 1);
}

std::uint64_t RequestBatch::total_peak_kv_tokens() const {
  std::uint64_t total = 0;
  for (const RequestSpec& r : requests_) total += peak_kv_tokens(r);
  return total;
}

std::uint64_t RequestBatch::kv_bytes_per_token() const {
  return static_cast<std::uint64_t>(model_.num_kv_heads) * model_.head_dim *
         model_.dtype_bytes;
}

std::uint64_t RequestBatch::peak_kv_bytes(const RequestSpec& r,
                                          std::uint32_t num_layers) const {
  return peak_kv_tokens(r) * kv_bytes_per_token() * num_layers;
}

std::uint64_t RequestBatch::prefix_kv_bytes(const RequestSpec& r,
                                            std::uint32_t num_layers) const {
  if (r.prefix_group == kNoPrefixGroup) return 0;
  // The prefix occupies the leading prefix_tokens of every layer's KV;
  // aggregated across layers like peak_kv_bytes (prefix_tokens <= seq_len
  // <= peak tokens, so this never exceeds the footprint).
  return r.prefix_tokens * kv_bytes_per_token() * num_layers;
}

std::uint64_t RequestBatch::total_peak_kv_bytes(
    std::uint32_t num_layers) const {
  std::uint64_t total = 0;
  for (const RequestSpec& r : requests_) total += peak_kv_bytes(r, num_layers);
  return total;
}

Cycle BatchStats::latency_percentile(double p) const {
  // Barrier modes never fill the stream landmarks; aggregating their
  // zero-initialized rows would silently report 0-cycle latencies, so the
  // sentinel makes a mixed-mode policy table impossible to mis-read.
  if (mode != ExecutionMode::kContinuous || per_request.empty()) {
    return kNeverCycle;
  }
  std::vector<Cycle> latencies;
  latencies.reserve(per_request.size());
  for (const RequestStats& r : per_request) latencies.push_back(r.latency());
  return percentile_nearest_rank(std::move(latencies), p);
}

Cycle BatchStats::ttft_percentile(double p) const {
  if (mode != ExecutionMode::kContinuous || per_request.empty()) {
    return kNeverCycle;
  }
  std::vector<Cycle> ttfts;
  ttfts.reserve(per_request.size());
  for (const RequestStats& r : per_request) ttfts.push_back(r.ttft());
  return percentile_nearest_rank(std::move(ttfts), p);
}

Cycle BatchStats::tbt_percentile(double p) const {
  if (mode != ExecutionMode::kContinuous) return kNeverCycle;
  std::vector<Cycle> gaps;
  for (const RequestStats& r : per_request) {
    for (std::size_t k = 1; k < r.step_finish_cycles.size(); ++k) {
      gaps.push_back(r.step_finish_cycles[k] - r.step_finish_cycles[k - 1]);
    }
  }
  if (gaps.empty()) return kNeverCycle;
  return percentile_nearest_rank(std::move(gaps), p);
}

std::uint64_t BatchStats::total_preemptions() const {
  std::uint64_t n = 0;
  for (const RequestStats& r : per_request) n += r.preemptions;
  return n;
}

Cycle BatchStats::total_queue_wait() const {
  Cycle n = 0;
  for (const RequestStats& r : per_request) n += r.queued_cycles;
  return n;
}

std::uint64_t BatchStats::total_swapped_blocks() const {
  std::uint64_t n = 0;
  for (const RequestStats& r : per_request) n += r.swapped_blocks;
  return n;
}

std::uint64_t BatchStats::total_refetch_bytes() const {
  std::uint64_t n = 0;
  for (const RequestStats& r : per_request) n += r.refetch_bytes;
  return n;
}

Cycle BatchStats::total_refetch_cycles() const {
  Cycle n = 0;
  for (const RequestStats& r : per_request) n += r.refetch_cycles;
  return n;
}

void BatchStats::print(std::ostream& os) const {
  os << "mode: " << to_string(mode) << "\n";
  os << std::left << std::setw(10) << "request" << std::setw(10) << "seq_len"
     << std::setw(14) << "cycles" << std::setw(16) << "tokens/cycle";
  if (mode == ExecutionMode::kContinuous) {
    os << std::setw(10) << "arrival" << std::setw(10) << "admit"
       << std::setw(12) << "finish" << std::setw(12) << "latency"
       << std::setw(10) << "wait" << std::setw(9) << "preempt";
    if (paged) {
      os << std::setw(9) << "swap" << std::setw(12) << "refetch_b"
         << std::setw(12) << "refetch_c";
    }
    if (shared) {
      os << std::setw(9) << "pfx_hit" << std::setw(12) << "pfx_bytes";
    }
    os << std::setw(10) << "dram_rd" << std::setw(10) << "l2_hit";
  } else if (mode == ExecutionMode::kCoScheduled) {
    os << std::setw(12) << "in_flight" << std::setw(10) << "dram_rd"
       << std::setw(10) << "dram_wr" << std::setw(10) << "l2_hit";
  }
  os << "\n";
  for (const RequestStats& r : per_request) {
    os << std::left << std::setw(10) << r.id << std::setw(10) << r.seq_len
       << std::setw(14) << r.stats.cycles << std::scientific
       << std::setprecision(3) << std::setw(16) << r.tokens_per_cycle()
       << std::defaultfloat;
    if (mode == ExecutionMode::kContinuous) {
      os << std::setw(10) << r.arrival_cycle << std::setw(10) << r.admit_cycle
         << std::setw(12) << r.finish_cycle << std::setw(12) << r.latency()
         << std::setw(10) << r.queued_cycles << std::setw(9) << r.preemptions;
      if (paged) {
        os << std::setw(9) << r.swapped_blocks << std::setw(12)
           << r.refetch_bytes << std::setw(12) << r.refetch_cycles;
      }
      if (shared) {
        os << std::setw(9) << r.prefix_hit_blocks << std::setw(12)
           << r.prefix_hit_bytes;
      }
      os << std::setw(10) << r.slice.dram_reads << std::fixed
         << std::setprecision(4) << std::setw(10) << r.slice.l2_hit_rate()
         << std::defaultfloat;
    } else if (mode == ExecutionMode::kCoScheduled) {
      os << std::setw(12) << r.slice.cycles_in_flight << std::setw(10)
         << r.slice.dram_reads << std::setw(10) << r.slice.dram_writes
         << std::fixed << std::setprecision(4) << std::setw(10)
         << r.slice.l2_hit_rate() << std::defaultfloat;
    }
    os << "\n";
  }
  os << "\nbatch totals\n";
  total.print(os, /*include_per_request=*/false);
  if (mode == ExecutionMode::kContinuous) {
    os << "makespan          " << makespan << "\n"
       << "latency_p50       " << latency_percentile(50.0) << "\n"
       << "latency_p99       " << latency_percentile(99.0) << "\n"
       << "ttft_p50          " << ttft_percentile(50.0) << "\n"
       << "ttft_p99          " << ttft_percentile(99.0) << "\n"
       << "tbt_p50           " << tbt_percentile(50.0) << "\n"
       << "tbt_p99           " << tbt_percentile(99.0) << "\n"
       << "queue_wait        " << total_queue_wait() << "\n"
       << "preemptions       " << total_preemptions() << "\n";
    if (paged) {
      os << "swapped_blocks    " << total_swapped_blocks() << "\n"
         << "refetch_bytes     " << total_refetch_bytes() << "\n"
         << "refetch_cycles    " << total_refetch_cycles() << "\n";
    }
    if (shared) {
      os << "kv_lookups        " << kv_block_lookups << "\n"
         << "kv_hits           " << kv_block_hits << "\n"
         << std::fixed << std::setprecision(4) << "kv_hit_rate       "
         << kv_hit_rate() << std::defaultfloat << "\n"
         << "kv_shared_bytes   " << kv_shared_bytes << "\n"
         << "kv_charged_bytes  " << kv_charged_bytes << "\n"
         << std::fixed << std::setprecision(4) << "kv_dedup_ratio    "
         << kv_dedup_ratio() << std::defaultfloat << "\n";
    }
  }
  os << std::scientific << std::setprecision(3) << "tokens/cycle      "
     << tokens_per_cycle() << "\n"
     << std::fixed << std::setprecision(1) << "tokens/s          "
     << tokens_per_cycle() * total.core_hz << "\n"
     << std::defaultfloat;
}

void DecodePassConfig::validate() const {
  if (num_layers == 0) {
    throw std::invalid_argument("DecodePassConfig: num_layers == 0");
  }
  serving.validate();
}

DecodePass::DecodePass(RequestBatch batch, DecodePassConfig pass_cfg,
                       const SimConfig& cfg)
    : batch_(std::move(batch)), pass_cfg_(pass_cfg), cfg_(cfg) {
  pass_cfg_.validate();
  if (pass_cfg_.mode != ExecutionMode::kContinuous) {
    for (const RequestSpec& req : batch_.requests()) {
      if (req.arrival_cycle != 0) {
        throw std::invalid_argument(
            "DecodePass: arrival cycles require ExecutionMode::kContinuous "
            "(the barrier modes have no notion of mid-pass admission)");
      }
    }
  }
  if ((!pass_cfg_.serving.unconditional() || pass_cfg_.serving.kv_share) &&
      pass_cfg_.mode != ExecutionMode::kContinuous) {
    throw std::invalid_argument(
        "DecodePass: the serving-policy layer (admission policy, KV budget, "
        "preemption, prefix sharing) requires ExecutionMode::kContinuous - "
        "the barrier modes have no serving queue or block pool");
  }
  if (const std::uint64_t budget = pass_cfg_.serving.kv_budget_bytes;
      budget != 0) {
    for (const RequestSpec& req : batch_.requests()) {
      const std::uint64_t peak =
          batch_.peak_kv_bytes(req, pass_cfg_.num_layers);
      if (peak > budget) {
        throw std::invalid_argument(
            "DecodePass: request " + std::to_string(req.id) +
            " alone peaks at " + std::to_string(peak) +
            " KV bytes across " + std::to_string(pass_cfg_.num_layers) +
            " layers, exceeding the " + std::to_string(budget) +
            "-byte KV budget - no admission order can ever serve it");
      }
    }
  }
  const ModelShape& m = batch_.model();
  const std::uint64_t model_width =
      static_cast<std::uint64_t>(m.num_kv_heads) * m.group_size * m.head_dim;
  const std::uint64_t gemv_rows =
      pass_cfg_.gemv_rows ? pass_cfg_.gemv_rows : model_width;
  const std::uint32_t gemv_cols =
      pass_cfg_.gemv_cols ? pass_cfg_.gemv_cols
                          : static_cast<std::uint32_t>(model_width);

  const std::uint32_t stages_per_layer = pass_cfg_.include_gemv ? 3u : 2u;
  std::size_t total_ops = 0;
  for (const RequestSpec& req : batch_.requests()) {
    total_ops += static_cast<std::size_t>(req.decode_steps) *
                 pass_cfg_.num_layers * stages_per_layer;
  }
  schedule_.reserve(total_ops);
  std::uint64_t req_pos = 0;
  for (const RequestSpec& req : batch_.requests()) {
    for (std::uint32_t step = 0; step < req.decode_steps; ++step) {
      // Decode step s extends a KV cache the previous steps grew to
      // seq_len + s tokens (line-granule rounded - block-granular KV
      // allocation), reusing the request's per-layer address slot so the
      // resident KV lines stay hot across steps. kv_tokens_at_step is the
      // single source of truth, shared with the budget's peak accounting.
      const std::uint64_t step_seq = batch_.kv_tokens_at_step(req, step);
      for (std::uint32_t layer = 0; layer < pass_cfg_.num_layers; ++layer) {
        const std::uint64_t slot = req_pos * pass_cfg_.num_layers + layer;
        auto push = [&](StageKind stage, OperatorSpec spec) {
          ScheduledOp op;
          op.request_id = req.id;
          op.step = step;
          op.layer = layer;
          op.stage = stage;
          op.name = "req" + std::to_string(req.id);
          if (step > 0) {
            op.name += "/s";
            op.name += std::to_string(step);
          }
          op.name += "/L";
          op.name += std::to_string(layer);
          op.name += "/";
          op.name += to_string(stage);
          op.workload = Workload::from_spec(
              shift_to_slot(std::move(spec), slot), cfg_);
          schedule_.push_back(std::move(op));
        };
        push(StageKind::kLogit, OperatorSpec::logit(m, step_seq));
        push(StageKind::kAttend, OperatorSpec::attend(m, step_seq));
        if (pass_cfg_.include_gemv) {
          push(StageKind::kGemv, OperatorSpec::gemv(gemv_rows, gemv_cols));
        }
      }
    }
    ++req_pos;
  }
}

BatchStats DecodePass::run(std::size_t threads, bool verbose) const {
  switch (pass_cfg_.mode) {
    case ExecutionMode::kCoScheduled: return run_coscheduled(verbose);
    case ExecutionMode::kContinuous: return run_continuous(verbose);
    case ExecutionMode::kIndependent: break;
  }
  return run_independent(threads, verbose);
}

namespace {

/// id -> per_request index for O(1) per-request aggregation (the batches
/// here are small, but passes with many decode steps fold thousands of
/// per-op results).
std::unordered_map<std::uint32_t, std::size_t> request_index_map(
    const std::vector<RequestStats>& per_request) {
  std::unordered_map<std::uint32_t, std::size_t> map;
  map.reserve(per_request.size());
  for (std::size_t i = 0; i < per_request.size(); ++i) {
    if (!map.emplace(per_request[i].id, i).second) {
      // RequestBatch's constructor rejects duplicate ids, so this only
      // fires if a caller bypassed it - last-writer-wins would silently
      // misattribute every per-request stat, so fail loudly instead.
      throw std::logic_error("request_index_map: duplicate request id " +
                             std::to_string(per_request[i].id));
    }
  }
  return map;
}

/// Recomputes a fused-run request's derived stats from its accumulated
/// slice. `rs.stats.cycles` (resident time / latency, mode-defined) must
/// already be set. Shared by the co-scheduled and continuous folds.
void finalize_request_stats(RequestStats& rs, double core_hz) {
  rs.stats.core_hz = core_hz;
  rs.stats.instructions = rs.slice.instructions;
  rs.stats.thread_blocks = rs.slice.thread_blocks;
  rs.stats.dram_reads = rs.slice.dram_reads;
  rs.stats.dram_writes = rs.slice.dram_writes;
  rs.stats.counters.set("llc.lookups", rs.slice.llc_lookups);
  rs.stats.counters.set("llc.hits", rs.slice.llc_hits);
  rs.stats.counters.set("llc.misses", rs.slice.llc_misses);
  rs.stats.counters.set("llc.mshr_hits", rs.slice.llc_mshr_hits);
  rs.stats.counters.set("req.cycles_in_flight", rs.slice.cycles_in_flight);
  rs.stats.l2_hit_rate = rs.slice.l2_hit_rate();
  rs.stats.mshr_hit_rate =
      rs.slice.llc_misses
          ? static_cast<double>(rs.slice.llc_mshr_hits) /
                static_cast<double>(rs.slice.llc_misses)
          : 0.0;
  rs.stats.ipc = rs.stats.cycles
                     ? static_cast<double>(rs.stats.instructions) /
                           static_cast<double>(rs.stats.cycles)
                     : 0.0;
}

/// Shifts a shared run's per-request flight landmarks onto the stream
/// timeline at `base`, in place, so both the per-request folds and the
/// batch-total accumulation see stream-time values.
void shift_slices(SimStats& run, Cycle base) {
  for (RequestSlice& sl : run.per_request) {
    if (sl.first_dispatch_cycle != 0) sl.first_dispatch_cycle += base;
    if (sl.last_complete_cycle != 0) sl.last_complete_cycle += base;
  }
}

}  // namespace

BatchStats DecodePass::run_independent(std::size_t threads,
                                       bool verbose) const {
  std::vector<ExperimentSpec> specs;
  specs.reserve(schedule_.size());
  for (const ScheduledOp& op : schedule_) {
    specs.push_back({op.name, cfg_, op.workload});
  }

  BatchStats out;
  out.mode = ExecutionMode::kIndependent;
  out.per_op = run_experiments(specs, threads, verbose);

  out.per_request.reserve(batch_.size());
  for (const RequestSpec& req : batch_.requests()) {
    RequestStats rs;
    rs.id = req.id;
    rs.seq_len = req.seq_len;
    rs.decode_steps = req.decode_steps;
    out.per_request.push_back(rs);
  }
  const auto by_id = request_index_map(out.per_request);
  // Aggregation walks schedule order, so the result is independent of which
  // worker thread finished each simulation first.
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    out.per_request[by_id.at(schedule_[i].request_id)].stats.accumulate(
        out.per_op[i].stats);
    out.total.accumulate(out.per_op[i].stats);
  }
  out.makespan = out.total.cycles;
  return out;
}

BatchStats DecodePass::run_coscheduled(bool verbose) const {
  BatchStats out;
  out.mode = ExecutionMode::kCoScheduled;
  out.per_request.reserve(batch_.size());
  std::uint32_t max_steps = 0;
  for (const RequestSpec& req : batch_.requests()) {
    RequestStats rs;
    rs.id = req.id;
    rs.seq_len = req.seq_len;
    rs.decode_steps = req.decode_steps;
    rs.slice.request_id = req.id;
    out.per_request.push_back(rs);
    max_steps = std::max(max_steps, req.decode_steps);
  }
  const auto by_id = request_index_map(out.per_request);

  // One fused System per step-layer-stage wave: each wave holds the same
  // stage of every request still decoding at that step (stages of one
  // request are dependent, same-stage operators of different requests are
  // not), so co-resident requests contend for the shared LLC while each
  // request's Logit -> Attend -> GEMV chain stays sequential. Every wave is
  // a barrier: the machine drains before the next wave starts.
  std::vector<StageKind> stages{StageKind::kLogit, StageKind::kAttend};
  if (pass_cfg_.include_gemv) stages.push_back(StageKind::kGemv);

  // Bucket the schedule by (step, layer, stage) once - StageKind values
  // match the `stages` order - so wave assembly is linear in the schedule
  // instead of rescanning it per wave.
  const std::size_t nstages = stages.size();
  std::vector<std::vector<std::size_t>> wave_ops(
      static_cast<std::size_t>(max_steps) * pass_cfg_.num_layers * nstages);
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const ScheduledOp& op = schedule_[i];
    wave_ops[(static_cast<std::size_t>(op.step) * pass_cfg_.num_layers +
              op.layer) *
                 nstages +
             static_cast<std::size_t>(op.stage)]
        .push_back(i);
  }

  Cycle base = 0;  // stream cycle where the current wave starts
  std::size_t wave_idx = 0;
  for (std::uint32_t step = 0; step < max_steps; ++step) {
    for (std::uint32_t layer = 0; layer < pass_cfg_.num_layers; ++layer) {
      for (const StageKind stage : stages) {
        CompositeTbSource src(pass_cfg_.interleave);
        for (const std::size_t i : wave_ops[wave_idx++]) {
          const ScheduledOp& op = schedule_[i];
          src.add(op.request_id, op.workload.op, op.workload.mapping);
        }
        std::string name;
        if (max_steps > 1) {
          name += "s";
          name += std::to_string(step);
          name += "/";
        }
        name += "L";
        name += std::to_string(layer);
        name += "/";
        name += to_string(stage);
        name += "x";
        name += std::to_string(src.num_ops());
        if (verbose) std::cerr << "[coscheduled] " << name << "\n";

        System sys(cfg_, src, &src);
        // lint:allow(wallclock): verbose-mode wave wall timing; never feeds sim state
        const auto t0 = std::chrono::steady_clock::now();
        SimStats wave = sys.run();
        const std::chrono::duration<double> dt =
            // lint:allow(wallclock): verbose-mode wave wall timing; never feeds sim state
            std::chrono::steady_clock::now() - t0;

        shift_slices(wave, base);
        for (const RequestSlice& sl : wave.per_request) {
          RequestStats& rs = out.per_request[by_id.at(sl.request_id)];
          rs.slice.accumulate(sl);
          // Resident time: a co-scheduled request occupies the machine for
          // the whole wave, so its latency grows by the wave's duration.
          rs.stats.cycles += wave.cycles;
        }
        base += wave.cycles;
        out.total.accumulate(wave);
        out.per_op.push_back(
            ExperimentResult{name, std::move(wave), dt.count()});
      }
    }
  }
  for (RequestStats& rs : out.per_request) {
    finalize_request_stats(rs, out.total.core_hz);
  }
  out.makespan = out.total.cycles;
  return out;
}

BatchStats DecodePass::run_continuous(bool verbose) const {
  BatchStats out;
  out.mode = ExecutionMode::kContinuous;
  const std::vector<RequestSpec>& reqs = batch_.requests();
  const AdmissionPolicy policy(pass_cfg_.serving);
  out.per_request.reserve(reqs.size());
  for (const RequestSpec& req : reqs) {
    RequestStats rs;
    rs.id = req.id;
    rs.seq_len = req.seq_len;
    rs.decode_steps = req.decode_steps;
    rs.streamed = true;
    rs.arrival_cycle = req.arrival_cycle;
    rs.slice.request_id = req.id;
    out.per_request.push_back(rs);
  }
  const auto by_id = request_index_map(out.per_request);

  // Per-request operator chains in schedule order (step-major, then layer,
  // then Logit -> Attend [-> GEMV]).
  std::vector<std::vector<std::size_t>> chains(reqs.size());
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    chains[by_id.at(schedule_[i].request_id)].push_back(i);
  }

  // Serving state machine. A request is pending (not yet arrived), queued
  // (arrived, waiting in the serving queue - either for its first admission
  // or re-queued after a preemption), running (operators in the live
  // machine), or finished. Under AdmitPolicy::kNone every arrival moves
  // queued -> running the same cycle it enters the queue, which reproduces
  // the raw streaming engine byte for byte.
  struct ReqState {
    std::size_t cursor = 0;    // next chain op to enqueue
    bool queued = false;       // in the serving queue
    bool running = false;      // has work in the live machine
    bool admitted_ever = false;  // first admission happened (KV resident)
    bool finished = false;
    Cycle queue_enter = 0;     // stream cycle it entered the queue
    // Paged mode only: the request was re-admitted with swapped-out blocks
    // and its next operator is held back until the refetch transfer
    // completes at stream cycle `refetch_ready`.
    bool awaiting_refetch = false;
    Cycle refetch_ready = 0;
  };
  std::vector<ReqState> st(reqs.size());
  // KV bytes pinned by resident requests (admitted, not yet finished).
  // Under kv_evict=none a preempted request keeps its full peak pinned;
  // under cold-blocks eviction its swapped blocks leave this ledger until
  // the resume refetch re-pins them.
  std::uint64_t resident_bytes = 0;
  std::vector<std::uint64_t> peak_bytes(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    peak_bytes[i] = batch_.peak_kv_bytes(reqs[i], pass_cfg_.num_layers);
  }
  // Shared KV block pool (kv_block_pool.hpp): instantiated whenever paged
  // eviction or prefix sharing is on. With sharing off every layout is
  // private and the pool's charges/frees/refetch prices reproduce the
  // legacy per-request pager byte for byte; with sharing on, requests in a
  // prefix group pin their common leading blocks once.
  const bool share = pass_cfg_.serving.kv_share;
  const bool paged = pass_cfg_.serving.paged();
  std::optional<KvBlockPool> pool;
  bool any_group = false;
  if (share || paged) {
    KvBlockPoolConfig pool_cfg;
    pool_cfg.block_bytes = pass_cfg_.serving.kv_block_bytes != 0
                               ? pass_cfg_.serving.kv_block_bytes
                               : kLineBytes;
    pool_cfg.refetch_cost = pass_cfg_.serving.refetch_cost;
    std::vector<KvBlockPool::RequestLayout> layouts(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      layouts[i].footprint_bytes = peak_bytes[i];
      if (share && reqs[i].prefix_group != kNoPrefixGroup) {
        layouts[i].prefix_group = reqs[i].prefix_group;
        layouts[i].prefix_bytes =
            batch_.prefix_kv_bytes(reqs[i], pass_cfg_.num_layers);
        any_group = true;
      }
    }
    pool.emplace(pool_cfg, std::move(layouts));
  }
  out.paged = paged;
  out.shared = share;
  // In-engine ledger auditor (invariants.hpp): every serving event below
  // reports itself so a KV-conservation break throws on the cycle it
  // happens. Off by default - it adds no stats and changes no behavior.
  // When any request actually shares a prefix the auditor replays the
  // block-level lifecycle through its own shadow map (shared-byte
  // conservation); otherwise the legacy per-request shadow ledger applies.
  std::optional<ServingAuditor> auditor;
  const char* audit_env = std::getenv("LLAMCAT_AUDIT");
  if (pass_cfg_.audit || (audit_env != nullptr && *audit_env != '\0' &&
                          *audit_env != '0')) {
    if (any_group) {
      ServingAuditor::SharedLayout layout;
      layout.block_bytes = pool->config().block_bytes;
      layout.paged = paged;
      layout.groups.resize(reqs.size(), kNoPrefixGroup);
      layout.prefix_bytes.resize(reqs.size(), 0);
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (reqs[i].prefix_group != kNoPrefixGroup) {
          layout.groups[i] = reqs[i].prefix_group;
          layout.prefix_bytes[i] =
              batch_.prefix_kv_bytes(reqs[i], pass_cfg_.num_layers);
        }
      }
      auditor.emplace(pass_cfg_.serving.kv_budget_bytes, peak_bytes,
                      std::move(layout));
    } else {
      auditor.emplace(pass_cfg_.serving.kv_budget_bytes, peak_bytes,
                      pool ? pool->config().block_bytes : 0);
    }
  }

  // Remaining service-demand estimate: remaining chain operators weighted
  // by the request's peak KV tokens (longer contexts mean longer operators).
  const auto remaining_work = [&](std::size_t i) -> std::uint64_t {
    return (chains[i].size() - st[i].cursor) * batch_.peak_kv_tokens(reqs[i]);
  };
  // Bytes an admission of request i would newly pin: its effective
  // (dedup-aware) footprint on first admission - the full peak unless a
  // prefix peer already charged shared blocks - the swapped-out share on a
  // paged resume, 0 for a resident (non-evicted) preempted request. Pool
  // estimates are conservative upper bounds: between this sweep's estimate
  // and the actual admission, shared blocks can only get cheaper (a peer
  // admitted first), so the budget gate never over-admits.
  const auto admit_bytes = [&](std::size_t i) -> std::uint64_t {
    if (!st[i].admitted_ever) {
      return pool ? pool->admit_cost(i) : peak_bytes[i];
    }
    return (pool && paged) ? pool->resume_cost(i) : 0;
  };
  const auto queued_candidates = [&] {
    std::vector<AdmissionPolicy::Candidate> q;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!st[i].queued) continue;
      q.push_back({i, reqs[i].arrival_cycle, remaining_work(i),
                   admit_bytes(i)});
    }
    return q;
  };
  // Paged mode: remaining work of queued candidates the free budget cannot
  // hold. They exert preemption pressure (should_preempt's blocked_work) -
  // evicting a much-longer runner's cold blocks is what unblocks them.
  const auto blocked_work = [&]() -> std::vector<std::uint64_t> {
    std::vector<std::uint64_t> w;
    if (!paged) return w;
    const std::uint64_t budget = pass_cfg_.serving.kv_budget_bytes;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (st[i].queued && resident_bytes + admit_bytes(i) > budget) {
        w.push_back(remaining_work(i));
      }
    }
    return w;
  };
  // Blocked candidates only pressure victim i when evicting it would
  // actually free bytes: with no evictable whole block (block size larger
  // than the footprint, or everything already out) the preemption would be
  // pure churn - the blocked candidate stays blocked and the victim just
  // lost its stage boundary.
  const auto eviction_pressure_on =
      [&](std::size_t i) -> std::vector<std::uint64_t> {
    if (!paged || pool->releasable_blocks(i) == 0) return {};
    return blocked_work();
  };
  // A running request's demand adds one operator's worth for the one in
  // flight (the cursor already advanced past it): a request mid-way through
  // its last operator still holds the machine for that operator's length,
  // so yield checks must not read it as "zero remaining" and preempt a
  // genuinely shorter neighbor in its favor.
  const auto running_work = [&](std::size_t except) {
    std::vector<std::uint64_t> w;
    for (std::size_t j = 0; j < reqs.size(); ++j) {
      if (j != except && st[j].running) {
        w.push_back(remaining_work(j) + batch_.peak_kv_tokens(reqs[j]));
      }
    }
    return w;
  };
  const std::size_t kNobody = reqs.size();
  const auto enter_queue = [&](std::size_t i, Cycle now) {
    st[i].queued = true;
    st[i].queue_enter = now;
  };
  // Bookkeeping of one admission (the caller enqueues the operator):
  // first admissions pin the request's peak KV against the budget and stamp
  // the admit landmark; every admission closes out a queue-wait interval.
  // A paged resume re-pins its swapped blocks and is marked
  // awaiting_refetch: it is running (it holds its budget share again) but
  // its next operator stays out of the machine until `refetch_ready`.
  const auto admit_mark = [&](std::size_t i, Cycle now) {
    st[i].queued = false;
    st[i].running = true;
    out.per_request[i].queued_cycles += now - st[i].queue_enter;
    // Charges and refetch prices route through the pool when it exists
    // (refetches can now happen at FIRST admissions too: a prefix peer may
    // have released a shared block to the host tier, and reusing it pays
    // the link transfer like any paged resume).
    if (!st[i].admitted_ever) {
      st[i].admitted_ever = true;
      out.per_request[i].admit_cycle = now;
      if (pool) {
        const KvBlockPool::Admission a = pool->admit(i);
        resident_bytes += a.charged_bytes;
        out.per_request[i].prefix_hit_blocks += a.hit_blocks;
        out.per_request[i].prefix_hit_bytes += a.hit_bytes;
        if (a.refetch_blocks != 0) {
          out.per_request[i].refetch_bytes += a.refetch_bytes;
          out.per_request[i].refetch_cycles += a.refetch_cycles;
          st[i].awaiting_refetch = true;
          st[i].refetch_ready = now + a.refetch_cycles;
        }
      } else {
        resident_bytes += peak_bytes[i];
      }
      if (auditor) auditor->on_admit(i, now, resident_bytes);
    } else {
      std::uint64_t refetched = 0;
      if (pool && paged) {
        const KvBlockPool::Admission a = pool->resume(i);
        refetched = a.charged_bytes;
        resident_bytes += a.charged_bytes;
        if (a.refetch_blocks != 0) {
          out.per_request[i].refetch_bytes += a.refetch_bytes;
          out.per_request[i].refetch_cycles += a.refetch_cycles;
          st[i].awaiting_refetch = true;
          st[i].refetch_ready = now + a.refetch_cycles;
        }
      }
      if (auditor) auditor->on_resume(i, refetched, now, resident_bytes);
    }
  };
  // Whether request i's next operator may enter the machine at `now`
  // (clears the refetch hold the moment it expires). Trivially true
  // outside paged mode.
  const auto ready_to_enqueue = [&](std::size_t i, Cycle now) {
    if (st[i].awaiting_refetch) {
      if (st[i].refetch_ready > now) return false;
      st[i].awaiting_refetch = false;
    }
    return true;
  };
  // Preemption bookkeeping shared by the drain-boundary and mid-flight
  // paths: the request leaves the machine, re-enters the serving queue,
  // and - in paged mode - its cold blocks swap out, freeing budget bytes.
  const auto preempt_mark = [&](std::size_t i, Cycle now) {
    st[i].running = false;
    enter_queue(i, now);
    ++out.per_request[i].preemptions;
    std::uint64_t freed = 0;
    if (pool && paged) {
      // Refcounted eviction: only blocks whose last pinner this was swap
      // out - a shared block a peer still runs against stays resident and
      // charged, so `freed` can be less than the whole-block footprint.
      freed = pool->release(i);
      resident_bytes -= freed;
      out.per_request[i].swapped_blocks += freed / pool->config().block_bytes;
    }
    if (auditor) auditor->on_evict(i, freed, now, resident_bytes);
  };

  // The stream is simulated as a chain of System segments sharing one
  // timeline (`base` = stream cycle where the current segment starts).
  // While two or more requests overlap, one segment hosts them all: the
  // admission hook enqueues a request's next operator the moment its
  // previous one completes and admits arrivals mid-flight, so the machine
  // never drains and the whole overlap runs in one long-lived System. A
  // request *alone* in the machine instead hands off at the drain boundary:
  // the segment ends and its next operator starts in a fresh System -
  // exactly a one-request co-scheduled wave, which is what makes the
  // zero-arrival batch-of-one reproduce kCoScheduled bit for bit.
  Cycle base = 0;
  std::size_t seg_id = 0;

  const auto unfinished = [&] {
    for (const ReqState& s : st) {
      if (!s.finished) return true;
    }
    return false;
  };

  while (unfinished()) {
    // Move arrivals whose clock has struck into the serving queue, then let
    // the policy pick admissions. If nothing is running and nothing was
    // admitted, the queue must be empty (the policy guarantees progress on
    // an idle machine) - the machine idles until the next arrival, so skip
    // the dead cycles but keep them on the stream clock.
    const auto notice_arrivals = [&] {
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (!st[i].queued && !st[i].running && !st[i].admitted_ever &&
            !st[i].finished && reqs[i].arrival_cycle <= base) {
          enter_queue(i, base);
        }
      }
    };
    const auto any_running = [&] {
      for (const ReqState& s : st) {
        if (s.running) return true;
      }
      return false;
    };

    DynamicTbSource src;
    const auto enqueue_next = [&](std::size_t i) {
      const ScheduledOp& op = schedule_[chains[i][st[i].cursor]];
      src.add(op.request_id, op.workload.op, op.workload.mapping);
      ++st[i].cursor;
    };
    // Segment-local caches, refreshed only when work is committed: each
    // request's committed TB count and its dense scheduler index (the hook
    // runs every cycle, so the steady-state check must be plain array
    // reads, not hash lookups).
    std::vector<std::uint64_t> seg_enq(reqs.size(), 0);
    std::vector<std::uint32_t> dense(reqs.size(), kNoRequest);

    // Assemble the segment start. Outside paged mode one pass always
    // enqueues something; with paging the pass can come up empty (every
    // resident request mid-refetch), in which case the stream clock hops to
    // the next event - a refetch completion or an arrival - and retries.
    std::size_t started = 0;
    for (;;) {
      notice_arrivals();
      // Drain-boundary eviction sweep (paged mode): a carried-over running
      // request yields its stage boundary - and its cold blocks' budget
      // bytes - to much-shorter pressure before re-enqueueing. This is
      // where a LONE long request is evicted in favor of a budget-blocked
      // short arrival (mid-flight stage boundaries take the hook's
      // preemption path instead; a lone request's boundary IS the drain).
      if (paged && policy.config().preempt) {
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          if (!st[i].running || st[i].finished || st[i].awaiting_refetch) {
            continue;
          }
          if (policy.should_preempt(remaining_work(i), running_work(i),
                                    eviction_pressure_on(i))) {
            preempt_mark(i, base);
          }
        }
      }
      std::vector<std::size_t> selected =
          policy.select(queued_candidates(), running_work(kNobody),
                        resident_bytes);
      if (selected.empty() && !any_running()) {
        Cycle next_arrival = kNeverCycle;
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          if (!st[i].finished && !st[i].admitted_ever && !st[i].queued) {
            next_arrival = std::min(next_arrival, reqs[i].arrival_cycle);
          }
        }
        base = next_arrival;  // unfinished implies a pending arrival exists
        notice_arrivals();
        selected = policy.select(queued_candidates(), running_work(kNobody),
                                 resident_bytes);
      }

      // Requests continuing from the previous segment plus this sweep's
      // admissions start the segment, enqueued in request-index order (the
      // policy decides WHO starts; index order keeps the TB fuse order
      // identical to the raw engine's under kNone).
      std::sort(selected.begin(), selected.end());
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (std::binary_search(selected.begin(), selected.end(), i)) {
          admit_mark(i, base);
        }
        if (st[i].running && !st[i].finished && ready_to_enqueue(i, base)) {
          enqueue_next(i);
          ++started;
        }
      }
      if (started > 0) break;
      // Nothing entered the machine: everyone resident is paying a refetch
      // (the machine idles on the host link). Hop to the earliest refetch
      // completion or not-yet-noticed arrival; both are strictly > base,
      // and one must exist while started == 0, so this terminates.
      Cycle hop = kNeverCycle;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (st[i].running && st[i].awaiting_refetch) {
          hop = std::min(hop, st[i].refetch_ready);
        }
        if (!st[i].finished && !st[i].admitted_ever && !st[i].queued) {
          hop = std::min(hop, reqs[i].arrival_cycle);
        }
      }
      base = hop;
    }
    src.commit(pass_cfg_.interleave);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (st[i].running) seg_enq[i] = src.tbs_of_request(reqs[i].id);
    }
    System sys(cfg_, src, &src);
    if (verbose) {
      std::cerr << "[continuous] segment " << seg_id << " @" << base << ": "
                << started << " request(s)\n";
    }

    const auto hook = [&](System& s, Cycle now) {
      const Cycle global = base + now;
      // Skip-ahead contract: every exit path publishes the earliest future
      // landmark this hook can act on its own - an unarrived request's
      // arrival clock or a pending refetch completion. Until then every
      // elided invocation is a no-op (completions always surface through
      // busy machine cycles, which forbid skipping by themselves), so the
      // System may jump straight to the landmark.
      const auto publish_hint = [&] {
        Cycle next = kNeverCycle;
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          if (!st[i].queued && !st[i].running && !st[i].admitted_ever &&
              !st[i].finished && reqs[i].arrival_cycle > global) {
            next = std::min(next, reqs[i].arrival_cycle);
          }
          if (st[i].running && !st[i].finished && st[i].awaiting_refetch &&
              st[i].refetch_ready > global) {
            next = std::min(next, st[i].refetch_ready);
          }
        }
        s.set_wake_hint(next == kNeverCycle ? kNeverCycle : next - base);
      };
      const auto commit_and_refresh = [&](const std::vector<std::size_t>& is) {
        src.commit(pass_cfg_.interleave);
        s.inject_work();
        for (const std::size_t i : is) {
          seg_enq[i] = src.tbs_of_request(reqs[i].id);
        }
      };
      std::vector<std::size_t> touched;
      const auto admit_sweep = [&] {
        const std::vector<AdmissionPolicy::Candidate> q = queued_candidates();
        if (q.empty()) return;
        std::vector<std::size_t> picks =
            policy.select(q, running_work(kNobody), resident_bytes);
        std::sort(picks.begin(), picks.end());
        for (const std::size_t i : picks) {
          admit_mark(i, global);
          // A paged resume is admitted (budget re-pinned) but its operator
          // waits out the refetch; step 1.5 below enqueues it when due.
          if (ready_to_enqueue(i, global)) {
            enqueue_next(i);
            touched.push_back(i);
          }
        }
      };
      // 1) Arrivals enter the serving queue mid-flight; the policy admits
      // whoever fits into the live machine (all of them under kNone).
      bool swept = false;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (!st[i].queued && !st[i].running && !st[i].admitted_ever &&
            !st[i].finished && reqs[i].arrival_cycle <= global) {
          enter_queue(i, global);
          swept = true;
        }
      }
      if (swept) admit_sweep();
      if (!touched.empty()) commit_and_refresh(touched);
      // 1.5) Requests whose refetch transfer just completed (paged resumes,
      // or first admissions that refetched a peer-released shared block)
      // enter the machine.
      if (pool) {
        touched.clear();
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          if (st[i].running && !st[i].finished && st[i].awaiting_refetch &&
              ready_to_enqueue(i, global)) {
            enqueue_next(i);
            touched.push_back(i);
          }
        }
        if (!touched.empty()) commit_and_refresh(touched);
      }
      // 2) Stage handoff. A request whose current operator just completed
      // advances (or finishes) eagerly as long as it has company - any
      // other running request keeps the machine live, so the stream never
      // drains (simultaneous completions included: the tied requests
      // advance together rather than forcing a barrier). A request *alone*
      // in the machine instead hands off at the drain boundary: the
      // segment ends and its next operator starts in a fresh System,
      // exactly like a one-request wave. With preemption enabled, a
      // request due to advance instead yields its stage boundary to a
      // much-shorter co-running request: it re-enters the serving queue
      // with its KV (and budget share) intact.
      std::size_t live = 0;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (st[i].running && !st[i].finished) ++live;
      }
      if (live < 2) {
        publish_hint();
        return;
      }
      const auto seg_completed = [&](std::size_t i) -> std::uint64_t {
        if (dense[i] == kNoRequest) {
          dense[i] = s.scheduler().dense_index_of(reqs[i].id);
          if (dense[i] == kNoRequest) return 0;
        }
        return s.scheduler().completed_of(dense[i]);
      };
      touched.clear();
      bool freed = false;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (!st[i].running || st[i].finished) continue;
        if (seg_enq[i] == 0 || seg_completed(i) != seg_enq[i]) continue;
        // The op at cursor-1 just completed. If it closes a decode step,
        // stamp the step-finish landmark (the TBT clock) now, BEFORE the
        // advance/preempt/finish decision: a preempted request's completed
        // operator still ended its step at this cycle.
        {
          const ScheduledOp& done = schedule_[chains[i][st[i].cursor - 1]];
          if (st[i].cursor == chains[i].size() ||
              schedule_[chains[i][st[i].cursor]].step != done.step) {
            out.per_request[i].step_finish_cycles.push_back(global);
          }
        }
        if (st[i].cursor < chains[i].size()) {
          if (policy.config().preempt &&
              policy.should_preempt(remaining_work(i), running_work(i),
                                    eviction_pressure_on(i))) {
            preempt_mark(i, global);
            freed = true;
          } else {
            enqueue_next(i);
            touched.push_back(i);
          }
        } else {
          st[i].finished = true;
          st[i].running = false;
          out.per_request[i].finish_cycle = global;
          // A finish unrefs instead of freeing: shared blocks a peer still
          // holds stay resident and charged, so the pool's freed bytes can
          // be less than the peak footprint.
          resident_bytes -= pool ? pool->finish(i) : peak_bytes[i];
          if (auditor) auditor->on_finish(i, global, resident_bytes);
          src.retire_request(reqs[i].id);
          freed = true;
        }
      }
      if (!touched.empty()) commit_and_refresh(touched);
      // 3) A finish freed budget (or a preemption freed the machine):
      // someone in the queue may be admittable now.
      if (freed) {
        touched.clear();
        admit_sweep();
        if (!touched.empty()) commit_and_refresh(touched);
      }
      publish_hint();
    };

    // lint:allow(wallclock): verbose-mode segment wall timing; never feeds sim state
    const auto t0 = std::chrono::steady_clock::now();
    SimStats seg = sys.run(hook);
    const std::chrono::duration<double> dt =
        // lint:allow(wallclock): verbose-mode segment wall timing; never feeds sim state
        std::chrono::steady_clock::now() - t0;

    // Drain boundary: every op enqueued this segment has completed by now.
    // A still-running request with segment work (seg_enq != 0) therefore
    // just completed its op at cursor-1 without the hook seeing it (it was
    // alone, or the completion coincided with the drain) - if that op
    // closes a decode step, the step ends at the segment boundary, exactly
    // where the finish landmark below lands. Requests the hook already
    // advanced moved their cursor past the recorded op, so nothing is
    // stamped twice; a request that only waited out a refetch here has
    // seg_enq == 0 and is skipped.
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!st[i].running || st[i].finished || seg_enq[i] == 0) continue;
      const ScheduledOp& done = schedule_[chains[i][st[i].cursor - 1]];
      if (st[i].cursor == chains[i].size() ||
          schedule_[chains[i][st[i].cursor]].step != done.step) {
        out.per_request[i].step_finish_cycles.push_back(base + seg.cycles);
      }
    }
    // Requests that ran out of chain with no co-resident work finish here,
    // with the drain included in their latency (their final stage ends
    // exactly like a one-request wave).
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (st[i].running && !st[i].finished &&
          st[i].cursor == chains[i].size()) {
        st[i].finished = true;
        st[i].running = false;
        out.per_request[i].finish_cycle = base + seg.cycles;
        resident_bytes -= pool ? pool->finish(i) : peak_bytes[i];
        if (auditor) {
          auditor->on_finish(i, base + seg.cycles, resident_bytes);
        }
      }
    }
    shift_slices(seg, base);
    for (const RequestSlice& sl : seg.per_request) {
      out.per_request[by_id.at(sl.request_id)].slice.accumulate(sl);
    }
    base += seg.cycles;
    out.total.accumulate(seg);
    out.per_op.push_back(ExperimentResult{
        "seg" + std::to_string(seg_id) + "@" +
            std::to_string(base - seg.cycles),
        std::move(seg), dt.count()});
    ++seg_id;
  }

  if (auditor) auditor->on_pass_end();
  out.makespan = base;
  if (out.shared) {
    out.kv_block_lookups = pool->total_lookups();
    out.kv_block_hits = pool->total_hits();
    out.kv_shared_bytes = pool->total_shared_bytes();
    out.kv_charged_bytes = pool->total_charged_bytes();
    out.kv_logical_bytes = pool->total_logical_bytes();
  }
  for (RequestStats& rs : out.per_request) {
    // True per-request latency: finish minus arrival, queueing included.
    rs.stats.cycles = rs.latency();
    finalize_request_stats(rs, out.total.core_hz);
    rs.stats.counters.set("req.queue_wait", rs.queued_cycles);
    rs.stats.counters.set("req.preemptions", rs.preemptions);
    if (out.paged) {
      rs.stats.counters.set("req.swapped_blocks", rs.swapped_blocks);
      rs.stats.counters.set("req.refetch_bytes", rs.refetch_bytes);
      rs.stats.counters.set("req.refetch_cycles", rs.refetch_cycles);
    }
    if (out.shared) {
      rs.stats.counters.set("req.prefix_hit_blocks", rs.prefix_hit_blocks);
      rs.stats.counters.set("req.prefix_hit_bytes", rs.prefix_hit_bytes);
    }
  }
  return out;
}

}  // namespace llamcat::scenario
