#include "scenario/scenario.hpp"

#include <chrono>
#include <iomanip>
#include <iostream>
#include <ostream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "sim/system.hpp"

namespace llamcat::scenario {

std::string to_string(StageKind k) {
  switch (k) {
    case StageKind::kLogit: return "logit";
    case StageKind::kAttend: return "attend";
    case StageKind::kGemv: return "gemv";
  }
  return "?";
}


RequestBatch::RequestBatch(ModelShape model, std::vector<RequestSpec> requests)
    : model_(std::move(model)), requests_(std::move(requests)) {
  if (requests_.empty()) {
    throw std::invalid_argument("RequestBatch: empty batch");
  }
  std::unordered_set<std::uint32_t> ids;
  for (const RequestSpec& r : requests_) {
    if (r.seq_len == 0) {
      throw std::invalid_argument("RequestBatch: zero seq_len");
    }
    if (!ids.insert(r.id).second) {
      throw std::invalid_argument("RequestBatch: duplicate request id " +
                                  std::to_string(r.id));
    }
  }
}

RequestBatch RequestBatch::uniform(const ModelShape& model, std::uint32_t n,
                                   std::uint64_t seq_len) {
  std::vector<RequestSpec> reqs;
  reqs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) reqs.push_back({i, seq_len});
  return RequestBatch(model, std::move(reqs));
}

RequestBatch RequestBatch::with_seq_lens(
    const ModelShape& model, const std::vector<std::uint64_t>& seq_lens) {
  std::vector<RequestSpec> reqs;
  reqs.reserve(seq_lens.size());
  for (std::size_t i = 0; i < seq_lens.size(); ++i) {
    reqs.push_back({static_cast<std::uint32_t>(i), seq_lens[i]});
  }
  return RequestBatch(model, std::move(reqs));
}

std::uint64_t RequestBatch::total_seq_len() const {
  std::uint64_t total = 0;
  for (const RequestSpec& r : requests_) total += r.seq_len;
  return total;
}

void BatchStats::print(std::ostream& os) const {
  os << "mode: " << to_string(mode) << "\n";
  os << std::left << std::setw(10) << "request" << std::setw(10) << "seq_len"
     << std::setw(14) << "cycles" << std::setw(16) << "tokens/cycle";
  if (mode == ExecutionMode::kCoScheduled) {
    os << std::setw(12) << "in_flight" << std::setw(10) << "dram_rd"
       << std::setw(10) << "dram_wr" << std::setw(10) << "l2_hit";
  }
  os << "\n";
  for (const RequestStats& r : per_request) {
    os << std::left << std::setw(10) << r.id << std::setw(10) << r.seq_len
       << std::setw(14) << r.stats.cycles << std::scientific
       << std::setprecision(3) << std::setw(16) << r.tokens_per_cycle()
       << std::defaultfloat;
    if (mode == ExecutionMode::kCoScheduled) {
      os << std::setw(12) << r.slice.cycles_in_flight << std::setw(10)
         << r.slice.dram_reads << std::setw(10) << r.slice.dram_writes
         << std::fixed << std::setprecision(4) << std::setw(10)
         << r.slice.l2_hit_rate() << std::defaultfloat;
    }
    os << "\n";
  }
  os << "\nbatch totals\n";
  total.print(os, /*include_per_request=*/false);
  os << std::scientific << std::setprecision(3) << "tokens/cycle      "
     << tokens_per_cycle() << "\n"
     << std::fixed << std::setprecision(1) << "tokens/s          "
     << tokens_per_cycle() * total.core_hz << "\n"
     << std::defaultfloat;
}

DecodePass::DecodePass(RequestBatch batch, DecodePassConfig pass_cfg,
                       const SimConfig& cfg)
    : batch_(std::move(batch)), pass_cfg_(pass_cfg), cfg_(cfg) {
  if (pass_cfg_.num_layers == 0) {
    throw std::invalid_argument("DecodePass: zero layers");
  }
  const ModelShape& m = batch_.model();
  const std::uint64_t model_width =
      static_cast<std::uint64_t>(m.num_kv_heads) * m.group_size * m.head_dim;
  const std::uint64_t gemv_rows =
      pass_cfg_.gemv_rows ? pass_cfg_.gemv_rows : model_width;
  const std::uint32_t gemv_cols =
      pass_cfg_.gemv_cols ? pass_cfg_.gemv_cols
                          : static_cast<std::uint32_t>(model_width);

  const std::uint32_t stages_per_layer = pass_cfg_.include_gemv ? 3u : 2u;
  schedule_.reserve(batch_.size() * pass_cfg_.num_layers * stages_per_layer);
  std::uint64_t slot = 0;
  for (const RequestSpec& req : batch_.requests()) {
    for (std::uint32_t layer = 0; layer < pass_cfg_.num_layers; ++layer) {
      auto push = [&](StageKind stage, OperatorSpec spec) {
        ScheduledOp op;
        op.request_id = req.id;
        op.layer = layer;
        op.stage = stage;
        op.name = "req" + std::to_string(req.id) + "/L" +
                  std::to_string(layer) + "/" + to_string(stage);
        op.workload = Workload::from_spec(shift_to_slot(std::move(spec), slot),
                                          cfg_);
        schedule_.push_back(std::move(op));
      };
      push(StageKind::kLogit, OperatorSpec::logit(m, req.seq_len));
      push(StageKind::kAttend, OperatorSpec::attend(m, req.seq_len));
      if (pass_cfg_.include_gemv) {
        push(StageKind::kGemv, OperatorSpec::gemv(gemv_rows, gemv_cols));
      }
      ++slot;
    }
  }
}

BatchStats DecodePass::run(std::size_t threads, bool verbose) const {
  return pass_cfg_.mode == ExecutionMode::kCoScheduled
             ? run_coscheduled(verbose)
             : run_independent(threads, verbose);
}

BatchStats DecodePass::run_independent(std::size_t threads,
                                       bool verbose) const {
  std::vector<ExperimentSpec> specs;
  specs.reserve(schedule_.size());
  for (const ScheduledOp& op : schedule_) {
    specs.push_back({op.name, cfg_, op.workload});
  }

  BatchStats out;
  out.mode = ExecutionMode::kIndependent;
  out.per_op = run_experiments(specs, threads, verbose);

  out.per_request.reserve(batch_.size());
  for (const RequestSpec& req : batch_.requests()) {
    RequestStats rs;
    rs.id = req.id;
    rs.seq_len = req.seq_len;
    out.per_request.push_back(rs);
  }
  // Aggregation walks schedule order, so the result is independent of which
  // worker thread finished each simulation first.
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const std::uint32_t rid = schedule_[i].request_id;
    for (RequestStats& rs : out.per_request) {
      if (rs.id == rid) {
        rs.stats.accumulate(out.per_op[i].stats);
        break;
      }
    }
    out.total.accumulate(out.per_op[i].stats);
  }
  return out;
}

BatchStats DecodePass::run_coscheduled(bool verbose) const {
  BatchStats out;
  out.mode = ExecutionMode::kCoScheduled;
  out.per_request.reserve(batch_.size());
  for (const RequestSpec& req : batch_.requests()) {
    RequestStats rs;
    rs.id = req.id;
    rs.seq_len = req.seq_len;
    rs.slice.request_id = req.id;
    out.per_request.push_back(rs);
  }

  // One fused System per layer-stage wave: each wave holds the same stage of
  // every request (stages of one request are dependent, same-stage operators
  // of different requests are not), so co-resident requests contend for the
  // shared LLC while the Logit -> Attend -> GEMV chain stays sequential.
  std::vector<StageKind> stages{StageKind::kLogit, StageKind::kAttend};
  if (pass_cfg_.include_gemv) stages.push_back(StageKind::kGemv);

  for (std::uint32_t layer = 0; layer < pass_cfg_.num_layers; ++layer) {
    for (const StageKind stage : stages) {
      CompositeTbSource src(pass_cfg_.interleave);
      for (const ScheduledOp& op : schedule_) {
        if (op.layer == layer && op.stage == stage) {
          src.add(op.request_id, op.workload.op, op.workload.mapping);
        }
      }
      std::string name = "L";
      name += std::to_string(layer);
      name += "/";
      name += to_string(stage);
      name += "x";
      name += std::to_string(src.num_ops());
      if (verbose) std::cerr << "[coscheduled] " << name << "\n";

      System sys(cfg_, src, &src);
      const auto t0 = std::chrono::steady_clock::now();
      SimStats wave = sys.run();
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;

      for (const RequestSlice& sl : wave.per_request) {
        for (RequestStats& rs : out.per_request) {
          if (rs.id != sl.request_id) continue;
          rs.slice.accumulate(sl);
          // Resident time: a co-scheduled request occupies the machine for
          // the whole wave, so its latency grows by the wave's duration.
          rs.stats.cycles += wave.cycles;
          rs.stats.core_hz = wave.core_hz;
          rs.stats.instructions += sl.instructions;
          rs.stats.thread_blocks += sl.thread_blocks;
          rs.stats.dram_reads += sl.dram_reads;
          rs.stats.dram_writes += sl.dram_writes;
          rs.stats.counters.set("llc.lookups", rs.slice.llc_lookups);
          rs.stats.counters.set("llc.hits", rs.slice.llc_hits);
          rs.stats.counters.set("llc.misses", rs.slice.llc_misses);
          rs.stats.counters.set("llc.mshr_hits", rs.slice.llc_mshr_hits);
          rs.stats.counters.set("req.cycles_in_flight",
                                rs.slice.cycles_in_flight);
          rs.stats.l2_hit_rate = rs.slice.l2_hit_rate();
          rs.stats.mshr_hit_rate =
              rs.slice.llc_misses
                  ? static_cast<double>(rs.slice.llc_mshr_hits) /
                        static_cast<double>(rs.slice.llc_misses)
                  : 0.0;
          rs.stats.ipc = rs.stats.cycles
                             ? static_cast<double>(rs.stats.instructions) /
                                   static_cast<double>(rs.stats.cycles)
                             : 0.0;
          break;
        }
      }
      out.total.accumulate(wave);
      out.per_op.push_back(ExperimentResult{name, std::move(wave), dt.count()});
    }
  }
  return out;
}

}  // namespace llamcat::scenario
