#include "scenario/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "sim/system.hpp"
#include "trace/dynamic_source.hpp"

namespace llamcat::scenario {

std::string to_string(StageKind k) {
  switch (k) {
    case StageKind::kLogit: return "logit";
    case StageKind::kAttend: return "attend";
    case StageKind::kGemv: return "gemv";
  }
  return "?";
}


RequestBatch::RequestBatch(ModelShape model, std::vector<RequestSpec> requests)
    : model_(std::move(model)), requests_(std::move(requests)) {
  if (requests_.empty()) {
    throw std::invalid_argument("RequestBatch: empty batch");
  }
  std::unordered_set<std::uint32_t> ids;
  for (const RequestSpec& r : requests_) {
    if (r.seq_len == 0) {
      throw std::invalid_argument("RequestBatch: zero seq_len");
    }
    if (r.decode_steps == 0) {
      throw std::invalid_argument("RequestBatch: zero decode_steps");
    }
    if (!ids.insert(r.id).second) {
      throw std::invalid_argument("RequestBatch: duplicate request id " +
                                  std::to_string(r.id));
    }
  }
}

RequestBatch RequestBatch::uniform(const ModelShape& model, std::uint32_t n,
                                   std::uint64_t seq_len) {
  std::vector<RequestSpec> reqs;
  reqs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) reqs.push_back({i, seq_len});
  return RequestBatch(model, std::move(reqs));
}

RequestBatch RequestBatch::with_seq_lens(
    const ModelShape& model, const std::vector<std::uint64_t>& seq_lens) {
  std::vector<RequestSpec> reqs;
  reqs.reserve(seq_lens.size());
  for (std::size_t i = 0; i < seq_lens.size(); ++i) {
    reqs.push_back({static_cast<std::uint32_t>(i), seq_lens[i]});
  }
  return RequestBatch(model, std::move(reqs));
}

std::uint64_t RequestBatch::total_seq_len() const {
  std::uint64_t total = 0;
  for (const RequestSpec& r : requests_) total += r.seq_len;
  return total;
}

void BatchStats::print(std::ostream& os) const {
  os << "mode: " << to_string(mode) << "\n";
  os << std::left << std::setw(10) << "request" << std::setw(10) << "seq_len"
     << std::setw(14) << "cycles" << std::setw(16) << "tokens/cycle";
  if (mode == ExecutionMode::kContinuous) {
    os << std::setw(10) << "arrival" << std::setw(10) << "admit"
       << std::setw(12) << "finish" << std::setw(12) << "latency"
       << std::setw(10) << "dram_rd" << std::setw(10) << "l2_hit";
  } else if (mode == ExecutionMode::kCoScheduled) {
    os << std::setw(12) << "in_flight" << std::setw(10) << "dram_rd"
       << std::setw(10) << "dram_wr" << std::setw(10) << "l2_hit";
  }
  os << "\n";
  for (const RequestStats& r : per_request) {
    os << std::left << std::setw(10) << r.id << std::setw(10) << r.seq_len
       << std::setw(14) << r.stats.cycles << std::scientific
       << std::setprecision(3) << std::setw(16) << r.tokens_per_cycle()
       << std::defaultfloat;
    if (mode == ExecutionMode::kContinuous) {
      os << std::setw(10) << r.arrival_cycle << std::setw(10) << r.admit_cycle
         << std::setw(12) << r.finish_cycle << std::setw(12) << r.latency()
         << std::setw(10) << r.slice.dram_reads << std::fixed
         << std::setprecision(4) << std::setw(10) << r.slice.l2_hit_rate()
         << std::defaultfloat;
    } else if (mode == ExecutionMode::kCoScheduled) {
      os << std::setw(12) << r.slice.cycles_in_flight << std::setw(10)
         << r.slice.dram_reads << std::setw(10) << r.slice.dram_writes
         << std::fixed << std::setprecision(4) << std::setw(10)
         << r.slice.l2_hit_rate() << std::defaultfloat;
    }
    os << "\n";
  }
  os << "\nbatch totals\n";
  total.print(os, /*include_per_request=*/false);
  if (mode == ExecutionMode::kContinuous) {
    os << "makespan          " << makespan << "\n";
  }
  os << std::scientific << std::setprecision(3) << "tokens/cycle      "
     << tokens_per_cycle() << "\n"
     << std::fixed << std::setprecision(1) << "tokens/s          "
     << tokens_per_cycle() * total.core_hz << "\n"
     << std::defaultfloat;
}

DecodePass::DecodePass(RequestBatch batch, DecodePassConfig pass_cfg,
                       const SimConfig& cfg)
    : batch_(std::move(batch)), pass_cfg_(pass_cfg), cfg_(cfg) {
  if (pass_cfg_.num_layers == 0) {
    throw std::invalid_argument("DecodePass: zero layers");
  }
  if (pass_cfg_.mode != ExecutionMode::kContinuous) {
    for (const RequestSpec& req : batch_.requests()) {
      if (req.arrival_cycle != 0) {
        throw std::invalid_argument(
            "DecodePass: arrival cycles require ExecutionMode::kContinuous "
            "(the barrier modes have no notion of mid-pass admission)");
      }
    }
  }
  const ModelShape& m = batch_.model();
  const std::uint64_t model_width =
      static_cast<std::uint64_t>(m.num_kv_heads) * m.group_size * m.head_dim;
  const std::uint64_t gemv_rows =
      pass_cfg_.gemv_rows ? pass_cfg_.gemv_rows : model_width;
  const std::uint32_t gemv_cols =
      pass_cfg_.gemv_cols ? pass_cfg_.gemv_cols
                          : static_cast<std::uint32_t>(model_width);

  const std::uint32_t stages_per_layer = pass_cfg_.include_gemv ? 3u : 2u;
  std::size_t total_ops = 0;
  for (const RequestSpec& req : batch_.requests()) {
    total_ops += static_cast<std::size_t>(req.decode_steps) *
                 pass_cfg_.num_layers * stages_per_layer;
  }
  schedule_.reserve(total_ops);
  std::uint64_t req_pos = 0;
  for (const RequestSpec& req : batch_.requests()) {
    for (std::uint32_t step = 0; step < req.decode_steps; ++step) {
      // Decode step s extends a KV cache the previous steps grew to
      // seq_len + s tokens, reusing the request's per-layer address slot so
      // the resident KV lines stay hot across steps. The operator mapper
      // tiles L at cache-line granularity, so the grown length is rounded
      // up to a whole line of elements - block-granular KV allocation.
      const std::uint64_t granule = kLineBytes / m.dtype_bytes;
      const std::uint64_t step_seq =
          step == 0 ? req.seq_len
                    : (req.seq_len + step + granule - 1) / granule * granule;
      for (std::uint32_t layer = 0; layer < pass_cfg_.num_layers; ++layer) {
        const std::uint64_t slot = req_pos * pass_cfg_.num_layers + layer;
        auto push = [&](StageKind stage, OperatorSpec spec) {
          ScheduledOp op;
          op.request_id = req.id;
          op.step = step;
          op.layer = layer;
          op.stage = stage;
          op.name = "req" + std::to_string(req.id);
          if (step > 0) {
            op.name += "/s";
            op.name += std::to_string(step);
          }
          op.name += "/L";
          op.name += std::to_string(layer);
          op.name += "/";
          op.name += to_string(stage);
          op.workload = Workload::from_spec(
              shift_to_slot(std::move(spec), slot), cfg_);
          schedule_.push_back(std::move(op));
        };
        push(StageKind::kLogit, OperatorSpec::logit(m, step_seq));
        push(StageKind::kAttend, OperatorSpec::attend(m, step_seq));
        if (pass_cfg_.include_gemv) {
          push(StageKind::kGemv, OperatorSpec::gemv(gemv_rows, gemv_cols));
        }
      }
    }
    ++req_pos;
  }
}

BatchStats DecodePass::run(std::size_t threads, bool verbose) const {
  switch (pass_cfg_.mode) {
    case ExecutionMode::kCoScheduled: return run_coscheduled(verbose);
    case ExecutionMode::kContinuous: return run_continuous(verbose);
    case ExecutionMode::kIndependent: break;
  }
  return run_independent(threads, verbose);
}

namespace {

/// id -> per_request index for O(1) per-request aggregation (the batches
/// here are small, but passes with many decode steps fold thousands of
/// per-op results).
std::unordered_map<std::uint32_t, std::size_t> request_index_map(
    const std::vector<RequestStats>& per_request) {
  std::unordered_map<std::uint32_t, std::size_t> map;
  map.reserve(per_request.size());
  for (std::size_t i = 0; i < per_request.size(); ++i) {
    map.emplace(per_request[i].id, i);
  }
  return map;
}

/// Recomputes a fused-run request's derived stats from its accumulated
/// slice. `rs.stats.cycles` (resident time / latency, mode-defined) must
/// already be set. Shared by the co-scheduled and continuous folds.
void finalize_request_stats(RequestStats& rs, double core_hz) {
  rs.stats.core_hz = core_hz;
  rs.stats.instructions = rs.slice.instructions;
  rs.stats.thread_blocks = rs.slice.thread_blocks;
  rs.stats.dram_reads = rs.slice.dram_reads;
  rs.stats.dram_writes = rs.slice.dram_writes;
  rs.stats.counters.set("llc.lookups", rs.slice.llc_lookups);
  rs.stats.counters.set("llc.hits", rs.slice.llc_hits);
  rs.stats.counters.set("llc.misses", rs.slice.llc_misses);
  rs.stats.counters.set("llc.mshr_hits", rs.slice.llc_mshr_hits);
  rs.stats.counters.set("req.cycles_in_flight", rs.slice.cycles_in_flight);
  rs.stats.l2_hit_rate = rs.slice.l2_hit_rate();
  rs.stats.mshr_hit_rate =
      rs.slice.llc_misses
          ? static_cast<double>(rs.slice.llc_mshr_hits) /
                static_cast<double>(rs.slice.llc_misses)
          : 0.0;
  rs.stats.ipc = rs.stats.cycles
                     ? static_cast<double>(rs.stats.instructions) /
                           static_cast<double>(rs.stats.cycles)
                     : 0.0;
}

/// Shifts a shared run's per-request flight landmarks onto the stream
/// timeline at `base`, in place, so both the per-request folds and the
/// batch-total accumulation see stream-time values.
void shift_slices(SimStats& run, Cycle base) {
  for (RequestSlice& sl : run.per_request) {
    if (sl.first_dispatch_cycle != 0) sl.first_dispatch_cycle += base;
    if (sl.last_complete_cycle != 0) sl.last_complete_cycle += base;
  }
}

}  // namespace

BatchStats DecodePass::run_independent(std::size_t threads,
                                       bool verbose) const {
  std::vector<ExperimentSpec> specs;
  specs.reserve(schedule_.size());
  for (const ScheduledOp& op : schedule_) {
    specs.push_back({op.name, cfg_, op.workload});
  }

  BatchStats out;
  out.mode = ExecutionMode::kIndependent;
  out.per_op = run_experiments(specs, threads, verbose);

  out.per_request.reserve(batch_.size());
  for (const RequestSpec& req : batch_.requests()) {
    RequestStats rs;
    rs.id = req.id;
    rs.seq_len = req.seq_len;
    rs.decode_steps = req.decode_steps;
    out.per_request.push_back(rs);
  }
  const auto by_id = request_index_map(out.per_request);
  // Aggregation walks schedule order, so the result is independent of which
  // worker thread finished each simulation first.
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    out.per_request[by_id.at(schedule_[i].request_id)].stats.accumulate(
        out.per_op[i].stats);
    out.total.accumulate(out.per_op[i].stats);
  }
  out.makespan = out.total.cycles;
  return out;
}

BatchStats DecodePass::run_coscheduled(bool verbose) const {
  BatchStats out;
  out.mode = ExecutionMode::kCoScheduled;
  out.per_request.reserve(batch_.size());
  std::uint32_t max_steps = 0;
  for (const RequestSpec& req : batch_.requests()) {
    RequestStats rs;
    rs.id = req.id;
    rs.seq_len = req.seq_len;
    rs.decode_steps = req.decode_steps;
    rs.slice.request_id = req.id;
    out.per_request.push_back(rs);
    max_steps = std::max(max_steps, req.decode_steps);
  }
  const auto by_id = request_index_map(out.per_request);

  // One fused System per step-layer-stage wave: each wave holds the same
  // stage of every request still decoding at that step (stages of one
  // request are dependent, same-stage operators of different requests are
  // not), so co-resident requests contend for the shared LLC while each
  // request's Logit -> Attend -> GEMV chain stays sequential. Every wave is
  // a barrier: the machine drains before the next wave starts.
  std::vector<StageKind> stages{StageKind::kLogit, StageKind::kAttend};
  if (pass_cfg_.include_gemv) stages.push_back(StageKind::kGemv);

  // Bucket the schedule by (step, layer, stage) once - StageKind values
  // match the `stages` order - so wave assembly is linear in the schedule
  // instead of rescanning it per wave.
  const std::size_t nstages = stages.size();
  std::vector<std::vector<std::size_t>> wave_ops(
      static_cast<std::size_t>(max_steps) * pass_cfg_.num_layers * nstages);
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const ScheduledOp& op = schedule_[i];
    wave_ops[(static_cast<std::size_t>(op.step) * pass_cfg_.num_layers +
              op.layer) *
                 nstages +
             static_cast<std::size_t>(op.stage)]
        .push_back(i);
  }

  Cycle base = 0;  // stream cycle where the current wave starts
  std::size_t wave_idx = 0;
  for (std::uint32_t step = 0; step < max_steps; ++step) {
    for (std::uint32_t layer = 0; layer < pass_cfg_.num_layers; ++layer) {
      for (const StageKind stage : stages) {
        CompositeTbSource src(pass_cfg_.interleave);
        for (const std::size_t i : wave_ops[wave_idx++]) {
          const ScheduledOp& op = schedule_[i];
          src.add(op.request_id, op.workload.op, op.workload.mapping);
        }
        std::string name;
        if (max_steps > 1) {
          name += "s";
          name += std::to_string(step);
          name += "/";
        }
        name += "L";
        name += std::to_string(layer);
        name += "/";
        name += to_string(stage);
        name += "x";
        name += std::to_string(src.num_ops());
        if (verbose) std::cerr << "[coscheduled] " << name << "\n";

        System sys(cfg_, src, &src);
        const auto t0 = std::chrono::steady_clock::now();
        SimStats wave = sys.run();
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;

        shift_slices(wave, base);
        for (const RequestSlice& sl : wave.per_request) {
          RequestStats& rs = out.per_request[by_id.at(sl.request_id)];
          rs.slice.accumulate(sl);
          // Resident time: a co-scheduled request occupies the machine for
          // the whole wave, so its latency grows by the wave's duration.
          rs.stats.cycles += wave.cycles;
        }
        base += wave.cycles;
        out.total.accumulate(wave);
        out.per_op.push_back(
            ExperimentResult{name, std::move(wave), dt.count()});
      }
    }
  }
  for (RequestStats& rs : out.per_request) {
    finalize_request_stats(rs, out.total.core_hz);
  }
  out.makespan = out.total.cycles;
  return out;
}

BatchStats DecodePass::run_continuous(bool verbose) const {
  BatchStats out;
  out.mode = ExecutionMode::kContinuous;
  const std::vector<RequestSpec>& reqs = batch_.requests();
  out.per_request.reserve(reqs.size());
  for (const RequestSpec& req : reqs) {
    RequestStats rs;
    rs.id = req.id;
    rs.seq_len = req.seq_len;
    rs.decode_steps = req.decode_steps;
    rs.arrival_cycle = req.arrival_cycle;
    rs.slice.request_id = req.id;
    out.per_request.push_back(rs);
  }
  const auto by_id = request_index_map(out.per_request);

  // Per-request operator chains in schedule order (step-major, then layer,
  // then Logit -> Attend [-> GEMV]).
  std::vector<std::vector<std::size_t>> chains(reqs.size());
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    chains[by_id.at(schedule_[i].request_id)].push_back(i);
  }

  struct ReqState {
    std::size_t cursor = 0;  // next chain op to enqueue
    bool admitted = false;
    bool finished = false;
  };
  std::vector<ReqState> st(reqs.size());

  // The stream is simulated as a chain of System segments sharing one
  // timeline (`base` = stream cycle where the current segment starts).
  // While two or more requests overlap, one segment hosts them all: the
  // admission hook enqueues a request's next operator the moment its
  // previous one completes and admits arrivals mid-flight, so the machine
  // never drains and the whole overlap runs in one long-lived System. A
  // request *alone* in the machine instead hands off at the drain boundary:
  // the segment ends and its next operator starts in a fresh System -
  // exactly a one-request co-scheduled wave, which is what makes the
  // zero-arrival batch-of-one reproduce kCoScheduled bit for bit.
  Cycle base = 0;
  std::size_t seg_id = 0;

  const auto unfinished = [&] {
    for (const ReqState& s : st) {
      if (!s.finished) return true;
    }
    return false;
  };

  while (unfinished()) {
    // Requests startable right now: admitted requests between stages plus
    // arrivals whose clock has struck. If there are none, the machine is
    // idle until the next arrival - skip the dead cycles but keep them on
    // the stream clock.
    const auto ready_now = [&] {
      std::vector<std::size_t> ready;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (st[i].finished) continue;
        if (st[i].admitted || reqs[i].arrival_cycle <= base) {
          ready.push_back(i);
        }
      }
      return ready;
    };
    std::vector<std::size_t> ready = ready_now();
    if (ready.empty()) {
      Cycle next_arrival = kNeverCycle;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (!st[i].finished && !st[i].admitted) {
          next_arrival = std::min(next_arrival, reqs[i].arrival_cycle);
        }
      }
      base = next_arrival;  // unfinished implies a pending arrival exists
      ready = ready_now();
    }

    DynamicTbSource src;
    const auto enqueue_next = [&](std::size_t i) {
      const ScheduledOp& op = schedule_[chains[i][st[i].cursor]];
      src.add(op.request_id, op.workload.op, op.workload.mapping);
      ++st[i].cursor;
    };
    // Segment-local caches, refreshed only when work is committed: each
    // request's committed TB count and its dense scheduler index (the hook
    // runs every cycle, so the steady-state check must be plain array
    // reads, not hash lookups).
    std::vector<std::uint64_t> seg_enq(reqs.size(), 0);
    std::vector<std::uint32_t> dense(reqs.size(), kNoRequest);

    for (const std::size_t i : ready) {
      enqueue_next(i);
      if (!st[i].admitted) {
        st[i].admitted = true;
        out.per_request[i].admit_cycle = base;
      }
    }
    src.commit(pass_cfg_.interleave);
    for (const std::size_t i : ready) {
      seg_enq[i] = src.tbs_of_request(reqs[i].id);
    }
    System sys(cfg_, src, &src);
    if (verbose) {
      std::cerr << "[continuous] segment " << seg_id << " @" << base << ": "
                << ready.size() << " request(s)\n";
    }

    const auto hook = [&](System& s, Cycle now) {
      const Cycle global = base + now;
      const auto commit_and_refresh = [&](const std::vector<std::size_t>& is) {
        src.commit(pass_cfg_.interleave);
        s.inject_work();
        for (const std::size_t i : is) {
          seg_enq[i] = src.tbs_of_request(reqs[i].id);
        }
      };
      // 1) Admissions: arrivals land in the live machine mid-flight.
      std::vector<std::size_t> touched;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (!st[i].admitted && !st[i].finished &&
            reqs[i].arrival_cycle <= global) {
          enqueue_next(i);
          st[i].admitted = true;
          out.per_request[i].admit_cycle = global;
          touched.push_back(i);
        }
      }
      if (!touched.empty()) commit_and_refresh(touched);
      // 2) Stage handoff. A request whose current operator just completed
      // advances (or finishes) eagerly as long as it has company - any
      // other admitted, unfinished request keeps the machine live, so the
      // stream never drains (simultaneous completions included: the tied
      // requests advance together rather than forcing a barrier). A
      // request *alone* in the machine instead hands off at the drain
      // boundary: the segment ends and its next operator starts in a
      // fresh System, exactly like a one-request wave.
      std::size_t live = 0;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (st[i].admitted && !st[i].finished) ++live;
      }
      if (live < 2) return;
      const auto seg_completed = [&](std::size_t i) -> std::uint64_t {
        if (dense[i] == kNoRequest) {
          dense[i] = s.scheduler().dense_index_of(reqs[i].id);
          if (dense[i] == kNoRequest) return 0;
        }
        return s.scheduler().completed_of(dense[i]);
      };
      touched.clear();
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (!st[i].admitted || st[i].finished) continue;
        if (seg_enq[i] == 0 || seg_completed(i) != seg_enq[i]) continue;
        if (st[i].cursor < chains[i].size()) {
          enqueue_next(i);
          touched.push_back(i);
        } else {
          st[i].finished = true;
          out.per_request[i].finish_cycle = global;
          src.retire_request(reqs[i].id);
        }
      }
      if (!touched.empty()) commit_and_refresh(touched);
    };

    const auto t0 = std::chrono::steady_clock::now();
    SimStats seg = sys.run(hook);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;

    // Drain boundary: requests that ran out of chain with no co-resident
    // work finish here, with the drain included in their latency (their
    // final stage ends exactly like a one-request wave).
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (st[i].admitted && !st[i].finished &&
          st[i].cursor == chains[i].size()) {
        st[i].finished = true;
        out.per_request[i].finish_cycle = base + seg.cycles;
      }
    }
    shift_slices(seg, base);
    for (const RequestSlice& sl : seg.per_request) {
      out.per_request[by_id.at(sl.request_id)].slice.accumulate(sl);
    }
    base += seg.cycles;
    out.total.accumulate(seg);
    out.per_op.push_back(ExperimentResult{
        "seg" + std::to_string(seg_id) + "@" +
            std::to_string(base - seg.cycles),
        std::move(seg), dt.count()});
    ++seg_id;
  }

  out.makespan = base;
  for (RequestStats& rs : out.per_request) {
    // True per-request latency: finish minus arrival, queueing included.
    rs.stats.cycles = rs.latency();
    finalize_request_stats(rs, out.total.core_hz);
  }
  return out;
}

}  // namespace llamcat::scenario
