#include "scenario/kv_pager.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace llamcat::scenario {

void KvPagerConfig::validate() const {
  if (block_bytes == 0 || block_bytes % kLineBytes != 0) {
    throw std::invalid_argument(
        "KvPagerConfig: kv_block_bytes must be a positive multiple of the " +
        std::to_string(kLineBytes) + "-byte cache line (KV is line-granular "
        "everywhere else in the simulator); got " +
        std::to_string(block_bytes));
  }
}

KvPager::KvPager(const KvPagerConfig& cfg,
                 std::vector<std::uint64_t> footprints)
    : cfg_(cfg),
      footprints_(std::move(footprints)),
      swapped_blocks_(footprints_.size(), 0) {
  cfg_.validate();
}

std::uint64_t KvPager::total_blocks(std::size_t i) const {
  return footprints_[i] / cfg_.block_bytes;
}

std::uint64_t KvPager::evict_cold(std::size_t i) {
  const std::uint64_t cold = total_blocks(i) - swapped_blocks_[i];
  if (cold == 0) return 0;
  swapped_blocks_[i] += cold;
  total_swap_out_blocks_ += cold;
  return cold * cfg_.block_bytes;
}

KvPager::Refetch KvPager::refetch(std::size_t i) {
  Refetch r;
  r.blocks = swapped_blocks_[i];
  if (r.blocks == 0) return r;
  r.bytes = r.blocks * cfg_.block_bytes;
  r.cycles = r.blocks * cfg_.cycles_per_block();
  swapped_blocks_[i] = 0;
  total_refetch_bytes_ += r.bytes;
  return r;
}

}  // namespace llamcat::scenario
