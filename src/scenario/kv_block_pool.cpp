#include "scenario/kv_block_pool.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace llamcat::scenario {

namespace {

/// splitmix64 finalizer: the shard selector needs well-mixed high bits even
/// though (group, index) keys are tiny sequential integers.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

void KvBlockPoolConfig::validate() const {
  if (block_bytes == 0 || block_bytes % kLineBytes != 0) {
    throw std::invalid_argument(
        "KvBlockPoolConfig: block_bytes must be a positive multiple of the " +
        std::to_string(kLineBytes) +
        "-byte cache line (KV is line-granular everywhere else in the "
        "simulator); got " +
        std::to_string(block_bytes));
  }
  if (shard_bits > 16) {
    throw std::invalid_argument(
        "KvBlockPoolConfig: shard_bits must be <= 16 (2^" +
        std::to_string(shard_bits) + " shards is past any useful fan-out)");
  }
}

KvBlockPool::KvBlockPool(const KvBlockPoolConfig& cfg,
                         std::vector<RequestLayout> layouts)
    : cfg_(cfg),
      layouts_(std::move(layouts)),
      state_(layouts_.size(), ReqState::kNew),
      private_swapped_(layouts_.size(), 0),
      shards_(std::size_t{1} << cfg.shard_bits) {
  cfg_.validate();
  for (std::size_t i = 0; i < layouts_.size(); ++i) {
    const RequestLayout& l = layouts_[i];
    if (l.prefix_group == kNoPrefixGroup && l.prefix_bytes != 0) {
      throw std::invalid_argument(
          "KvBlockPool: request " + std::to_string(i) +
          " has prefix bytes but no prefix group");
    }
    if (l.prefix_bytes > l.footprint_bytes) {
      throw std::invalid_argument(
          "KvBlockPool: request " + std::to_string(i) + " prefix (" +
          std::to_string(l.prefix_bytes) + " B) exceeds its footprint (" +
          std::to_string(l.footprint_bytes) + " B)");
    }
  }
}

std::uint64_t KvBlockPool::shared_blocks(std::size_t i) const {
  return layouts_[i].prefix_bytes / cfg_.block_bytes;
}

std::uint64_t KvBlockPool::private_whole_blocks(std::size_t i) const {
  return layouts_[i].footprint_bytes / cfg_.block_bytes - shared_blocks(i);
}

std::uint64_t KvBlockPool::private_bytes(std::size_t i) const {
  return layouts_[i].footprint_bytes - shared_blocks(i) * cfg_.block_bytes;
}

std::uint64_t KvBlockPool::block_key(std::uint32_t group,
                                     std::uint64_t index) {
  // (group, index) packed into one key. Block indices are footprints over
  // block sizes - far below 2^32 for any representable scenario.
  return (static_cast<std::uint64_t>(group) << 32) | index;
}

KvBlockPool::Shard& KvBlockPool::shard_of(std::uint64_t key) {
  if (cfg_.shard_bits == 0) return shards_[0];
  return shards_[mix64(key) >> (64 - cfg_.shard_bits)];
}

const KvBlockPool::Shard& KvBlockPool::shard_of(std::uint64_t key) const {
  if (cfg_.shard_bits == 0) return shards_[0];
  return shards_[mix64(key) >> (64 - cfg_.shard_bits)];
}

void KvBlockPool::require_state(std::size_t i, ReqState expect,
                                const char* call) const {
  if (state_[i] == expect) return;
  const char* actual = state_[i] == ReqState::kNew        ? "never admitted"
                       : state_[i] == ReqState::kActive   ? "active (pinned)"
                       : state_[i] == ReqState::kReleased ? "released"
                                                          : "finished";
  throw std::logic_error("KvBlockPool::" + std::string(call) + ": request " +
                         std::to_string(i) + " is " + actual);
}

KvBlockPool::Admission KvBlockPool::admit(std::size_t i) {
  require_state(i, ReqState::kNew, "admit");
  Admission a;
  const std::uint32_t group = layouts_[i].prefix_group;
  const std::uint64_t nshared = shared_blocks(i);
  for (std::uint64_t b = 0; b < nshared; ++b) {
    Shard& shard = shard_of(block_key(group, b));
    MutexLock lock(shard.mu);
    ++shard.lookups;
    ++a.lookup_blocks;
    auto [it, inserted] = shard.table.try_emplace(block_key(group, b));
    Entry& e = it->second;
    if (inserted) {
      ++shard.inserts;
      a.charged_bytes += cfg_.block_bytes;
    } else if (e.resident) {
      ++shard.hits;
      ++a.hit_blocks;
      a.hit_bytes += cfg_.block_bytes;
    } else {
      // A peer released the block to the host tier and nobody re-pinned it
      // yet: reuse it, paying the refetch transfer instead of the (free)
      // allocation - the content is the shared prefix, not recomputable
      // state this request owns.
      e.resident = true;
      ++a.refetch_blocks;
      a.charged_bytes += cfg_.block_bytes;
    }
    ++e.pins;
    ++e.holders;
  }
  a.charged_bytes += private_bytes(i);
  a.refetch_bytes = a.refetch_blocks * cfg_.block_bytes;
  a.refetch_cycles = a.refetch_blocks * cfg_.cycles_per_block();
  shared_bytes_ += a.hit_bytes;
  charged_bytes_ += a.charged_bytes;
  logical_bytes_ += layouts_[i].footprint_bytes;
  state_[i] = ReqState::kActive;
  return a;
}

KvBlockPool::Admission KvBlockPool::resume(std::size_t i) {
  require_state(i, ReqState::kReleased, "resume");
  Admission a;
  const std::uint32_t group = layouts_[i].prefix_group;
  const std::uint64_t nshared = shared_blocks(i);
  for (std::uint64_t b = 0; b < nshared; ++b) {
    Shard& shard = shard_of(block_key(group, b));
    MutexLock lock(shard.mu);
    Entry& e = shard.table.at(block_key(group, b));
    if (!e.resident) {
      e.resident = true;
      ++a.refetch_blocks;
      a.charged_bytes += cfg_.block_bytes;
    }
    ++e.pins;
  }
  a.refetch_blocks += private_swapped_[i];
  a.charged_bytes += private_swapped_[i] * cfg_.block_bytes;
  private_swapped_[i] = 0;
  a.refetch_bytes = a.refetch_blocks * cfg_.block_bytes;
  a.refetch_cycles = a.refetch_blocks * cfg_.cycles_per_block();
  state_[i] = ReqState::kActive;
  return a;
}

std::uint64_t KvBlockPool::release(std::size_t i) {
  require_state(i, ReqState::kActive, "release");
  std::uint64_t freed = 0;
  const std::uint32_t group = layouts_[i].prefix_group;
  const std::uint64_t nshared = shared_blocks(i);
  for (std::uint64_t b = 0; b < nshared; ++b) {
    Shard& shard = shard_of(block_key(group, b));
    MutexLock lock(shard.mu);
    Entry& e = shard.table.at(block_key(group, b));
    // Active implies every owned block is pinned, and a pinned block is
    // resident (a refetch precedes every re-pin).
    if (e.pins == 0 || !e.resident) {
      throw std::logic_error(
          "KvBlockPool::release: shared block of an active request is "
          "unpinned or on the host tier (corrupt refcounts)");
    }
    --e.pins;
    if (e.pins == 0) {
      // Last pinner gone: the block is cold and swappable.
      e.resident = false;
      freed += cfg_.block_bytes;
    }
    // pins > 0: a peer still runs against this block - the swap is refused
    // and the block stays resident and charged (refcounted eviction).
  }
  const std::uint64_t priv = private_whole_blocks(i) - private_swapped_[i];
  private_swapped_[i] += priv;
  freed += priv * cfg_.block_bytes;
  // The partial tail (if any) stays resident and charged, as in KvPager.
  state_[i] = ReqState::kReleased;
  return freed;
}

std::uint64_t KvBlockPool::finish(std::size_t i) {
  if (state_[i] == ReqState::kReleased) {
    throw std::logic_error("KvBlockPool::finish: request " +
                           std::to_string(i) +
                           " is released - it must resume (refetching its "
                           "host-tier blocks) before it can finish");
  }
  require_state(i, ReqState::kActive, "finish");
  std::uint64_t freed = 0;
  const std::uint32_t group = layouts_[i].prefix_group;
  const std::uint64_t nshared = shared_blocks(i);
  for (std::uint64_t b = 0; b < nshared; ++b) {
    Shard& shard = shard_of(block_key(group, b));
    MutexLock lock(shard.mu);
    auto it = shard.table.find(block_key(group, b));
    Entry& e = it->second;
    if (e.pins == 0 || !e.resident) {
      throw std::logic_error(
          "KvBlockPool::finish: shared block of an active request is "
          "unpinned or on the host tier (corrupt refcounts)");
    }
    --e.pins;
    --e.holders;
    if (e.holders == 0) {
      // Last holder gone: the block leaves the pool and its charge drops.
      shard.table.erase(it);
      freed += cfg_.block_bytes;
    }
    // holders > 0: a peer (running or preempted) still owns the block, so
    // it stays resident and charged - a later admission of the same prefix
    // hits it for free.
  }
  freed += private_bytes(i);
  state_[i] = ReqState::kFinished;
  return freed;
}

std::uint64_t KvBlockPool::admit_cost(std::size_t i) const {
  std::uint64_t cost = private_bytes(i);
  const std::uint32_t group = layouts_[i].prefix_group;
  const std::uint64_t nshared = shared_blocks(i);
  for (std::uint64_t b = 0; b < nshared; ++b) {
    const Shard& shard = shard_of(block_key(group, b));
    MutexLock lock(shard.mu);
    const auto it = shard.table.find(block_key(group, b));
    // Absent (allocate) and host-tier (refetch) blocks charge; resident
    // ones are free hits.
    if (it == shard.table.end() || !it->second.resident) {
      cost += cfg_.block_bytes;
    }
  }
  return cost;
}

std::uint64_t KvBlockPool::resume_cost(std::size_t i) const {
  std::uint64_t cost = private_swapped_[i] * cfg_.block_bytes;
  const std::uint32_t group = layouts_[i].prefix_group;
  const std::uint64_t nshared = shared_blocks(i);
  for (std::uint64_t b = 0; b < nshared; ++b) {
    const Shard& shard = shard_of(block_key(group, b));
    MutexLock lock(shard.mu);
    const auto it = shard.table.find(block_key(group, b));
    if (it != shard.table.end() && !it->second.resident) {
      cost += cfg_.block_bytes;
    }
  }
  return cost;
}

std::uint64_t KvBlockPool::releasable_blocks(std::size_t i) const {
  if (state_[i] != ReqState::kActive) return 0;
  std::uint64_t n = private_whole_blocks(i) - private_swapped_[i];
  const std::uint32_t group = layouts_[i].prefix_group;
  const std::uint64_t nshared = shared_blocks(i);
  for (std::uint64_t b = 0; b < nshared; ++b) {
    const Shard& shard = shard_of(block_key(group, b));
    MutexLock lock(shard.mu);
    const auto it = shard.table.find(block_key(group, b));
    // Sole pinner: releasing would swap the block. A peer's pin refuses it.
    if (it != shard.table.end() && it->second.resident &&
        it->second.pins == 1) {
      ++n;
    }
  }
  return n;
}

std::uint64_t KvBlockPool::total_lookups() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    MutexLock lock(s.mu);
    n += s.lookups;
  }
  return n;
}

std::uint64_t KvBlockPool::total_hits() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    MutexLock lock(s.mu);
    n += s.hits;
  }
  return n;
}

}  // namespace llamcat::scenario
