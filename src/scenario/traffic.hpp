// Open-loop traffic generation + versioned trace record/replay.
//
// Everything upstream of this header is closed-loop: every request is known
// at construction and its arrival cycle is hand-picked. This layer turns
// the continuous engine into an open-loop serving target: a seeded arrival
// process (Poisson, bursty on-off, or diurnal-rate) emits RequestSpecs
// whose sizes come from configurable distributions (uniform or clamped
// lognormal sequence lengths and decode steps, Zipf-popular prefix groups
// that compose with the PR 8 block pool), so load can be swept to
// saturation instead of replayed from a fixed list.
//
// Determinism contract: generate_traffic(cfg) is a pure function of the
// config (same seed -> byte-identical request list on every platform). The
// samplers use only common/rng.hpp plus the deterministic transcendentals
// in common/det_math.hpp - never libm's log/exp, whose bits differ across
// implementations - so a trace generated on one machine replays exactly on
// another.
//
// Trace record/replay (in the spirit of RocksDB's trace_replay): any
// generated (or hand-built) workload serializes to a versioned,
// line-oriented text format via write_trace and re-loads via read_trace.
// The format is byte-stable - write(read(write(x))) == write(x) - so a
// recorded trace is a reproducible artifact: replaying it as a fixed batch
// reproduces the generating run's batch_stats_digest byte for byte.
// docs/workloads.md specifies the format and the process definitions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "scenario/scenario.hpp"

namespace llamcat::scenario {

/// Re-exported as the scenario vocabulary (defined in common/config.hpp so
/// the CLI option layer can parse them without depending on this layer).
using llamcat::TrafficDist;
using llamcat::TrafficProcess;

/// Knobs of the open-loop workload generator. The defaults describe a
/// moderate Poisson stream of small requests; every field is swept by the
/// saturation bench (scenario/sweep.hpp) or fuzzed (scenario/fuzz.cpp).
struct TrafficConfig {
  /// Requests to emit (ids 0..n-1, arrivals nondecreasing).
  std::uint32_t num_requests = 8;
  /// Generator seed. Independent of SimConfig::seed: the workload and the
  /// machine are separately reproducible.
  std::uint64_t seed = 1;

  // -- arrival process ------------------------------------------------------
  TrafficProcess process = TrafficProcess::kPoisson;
  /// Mean inter-arrival gap in stream cycles (the offered load knob:
  /// rate = 1/mean_gap). Poisson draws exponential gaps with this mean.
  Cycle mean_gap = 20'000;
  /// kBursty: mean requests per on-phase. Burst sizes are drawn uniformly
  /// in [1, 2*burst_size - 1] (mean burst_size); gaps inside a burst are
  /// exponential with mean mean_gap / burst_gap_div, and the off-gap before
  /// each new burst is exponential with mean mean_gap * burst_size, so the
  /// long-run offered rate stays comparable to the Poisson stream while
  /// arrivals cluster.
  std::uint32_t burst_size = 4;
  std::uint32_t burst_gap_div = 8;
  /// kDiurnal: period of the rate cycle in cycles (0 = derive one full
  /// cycle across the expected run: num_requests * mean_gap).
  Cycle diurnal_period = 0;
  /// kDiurnal: the rate multiplier sweeps [1 - amplitude, 1 + amplitude]
  /// as a triangle wave across the period (piecewise-linear - kept free of
  /// libm trig on purpose; see the determinism contract above).
  double diurnal_amplitude = 0.5;

  // -- per-request size distributions ---------------------------------------
  TrafficDist seq_dist = TrafficDist::kUniform;
  std::uint64_t seq_min = 64;
  std::uint64_t seq_max = 512;
  /// Sequence lengths are quantized to multiples of this (and seq_min /
  /// seq_max must be multiples). The step-0 operators present the raw
  /// sequence to the mapper, which only tiles whole cache lines of KV
  /// elements - kLineBytes / dtype_bytes tokens, 32 at 2-byte dtypes - so
  /// an unquantized length has no valid mapping.
  std::uint64_t seq_granule = 32;
  /// kLognormal sequence lengths: log-space standard deviation. The
  /// log-space mean is the geometric midpoint of [seq_min, seq_max] and
  /// samples clamp to the range.
  double seq_sigma = 0.5;
  TrafficDist steps_dist = TrafficDist::kUniform;
  std::uint32_t steps_min = 1;
  std::uint32_t steps_max = 4;

  // -- prefix popularity (composes with the PR 8 block pool) ----------------
  /// Distinct prefix groups (system prompts). 0 = fully private batch; the
  /// generated groups only take effect under ServingConfig::kv_share.
  std::uint32_t prefix_groups = 0;
  /// Zipf skew of group popularity: P(g) proportional to 1/(g+1)^zipf_s.
  /// Group 0 is the most popular.
  double zipf_s = 1.0;
  /// Percent of requests that carry a prefix group at all (the rest stay
  /// private even in a sharing run).
  std::uint32_t share_pct = 75;

  /// Throws std::invalid_argument on an inconsistent generator shape.
  void validate() const;

  /// "poisson n=8 gap=20000 seq=U[64,512] steps=U[1,4] seed=1" style.
  [[nodiscard]] std::string summary() const;
};

/// Deterministically expands the config into an arrival-ordered request
/// list (ids 0..n-1, arrival cycles nondecreasing). Pure function of `cfg`;
/// validates it first.
[[nodiscard]] std::vector<RequestSpec> generate_traffic(
    const TrafficConfig& cfg);

// ---------------------------------------------------------------------------
// Versioned trace record/replay.
// ---------------------------------------------------------------------------

/// The trace format version this build writes and the only one it reads.
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// Serializes the request list as the line-oriented text format (see
/// docs/workloads.md):
///   llamcat-trace v1
///   requests <n>
///   <id> <seq_len> <arrival_cycle> <decode_steps> <prefix_group|-> <prefix_tokens>
/// Integers only, one request per line, '-' for a private request's group:
/// byte-stable by construction.
void write_trace(std::ostream& os, const std::vector<RequestSpec>& requests);

/// Parses a trace written by write_trace (strictly: exact magic/version,
/// declared request count, six fields per row, no trailing garbage,
/// positive lengths/steps, valid prefix pairing, unique ids). Throws
/// std::invalid_argument with a "trace:"-prefixed message on any violation.
[[nodiscard]] std::vector<RequestSpec> read_trace(std::istream& is);

/// Convenience round-trip helpers for tests and the CLI.
[[nodiscard]] std::string trace_to_string(
    const std::vector<RequestSpec>& requests);
[[nodiscard]] std::vector<RequestSpec> trace_from_string(
    const std::string& text);

}  // namespace llamcat::scenario
