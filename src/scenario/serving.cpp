#include "scenario/serving.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace llamcat::scenario {

void ServingConfig::validate() const {
  if (policy == AdmitPolicy::kNone) {
    if (kv_budget_bytes != 0) {
      throw std::invalid_argument(
          "ServingConfig: a KV budget requires a queueing admission policy "
          "(fcfs or srf); policy none admits unconditionally");
    }
    if (preempt) {
      throw std::invalid_argument(
          "ServingConfig: preemption requires a queueing admission policy "
          "(fcfs or srf); policy none has no serving queue to re-enter");
    }
  }
  if (preempt && preempt_ratio == 0) {
    throw std::invalid_argument(
        "ServingConfig: preempt_ratio must be >= 1 (a zero ratio would "
        "preempt every co-running pair)");
  }
}

AdmissionPolicy::AdmissionPolicy(const ServingConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

bool AdmissionPolicy::yields_to_any(
    std::uint64_t remaining_work,
    const std::vector<std::uint64_t>& running_work) const {
  if (!cfg_.preempt) return false;
  for (const std::uint64_t w : running_work) {
    if (remaining_work > w * cfg_.preempt_ratio) return true;
  }
  return false;
}

bool AdmissionPolicy::should_preempt(
    std::uint64_t remaining_work,
    const std::vector<std::uint64_t>& co_running_work) const {
  return yields_to_any(remaining_work, co_running_work);
}

std::vector<std::size_t> AdmissionPolicy::select(
    std::vector<Candidate> queued,
    const std::vector<std::uint64_t>& running_work,
    std::uint64_t resident_bytes) const {
  std::vector<std::size_t> admitted;
  if (queued.empty()) return admitted;

  // kNone keeps the caller's request-index order (and, with no budget and
  // no preemption, the sweep below degenerates to "admit everything").
  if (cfg_.policy == AdmitPolicy::kFcfs) {
    std::stable_sort(queued.begin(), queued.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.arrival < b.arrival;
                     });
  } else if (cfg_.policy == AdmitPolicy::kShortestRemaining) {
    std::stable_sort(queued.begin(), queued.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.remaining_work != b.remaining_work) {
                         return a.remaining_work < b.remaining_work;
                       }
                       return a.arrival < b.arrival;
                     });
  }

  const std::uint64_t budget = cfg_.kv_budget_bytes;
  std::uint64_t pinned = resident_bytes;
  // Admitted candidates join the running set for later yield checks, so one
  // sweep cannot admit a long request alongside the short it would yield to.
  std::vector<std::uint64_t> running = running_work;
  for (const Candidate& c : queued) {
    if (yields_to_any(c.remaining_work, running)) continue;
    if (budget != 0 && pinned + c.kv_bytes > budget) break;
    admitted.push_back(c.index);
    pinned += c.kv_bytes;
    running.push_back(c.remaining_work);
  }

  // Progress guarantee: an idle machine with a non-empty queue must start
  // someone. Yield-blocks are waived (there is nobody to yield to next
  // sweep anyway once this one runs alone); the budget still holds, but a
  // resident (preempted) candidate pins 0 new bytes and a fresh one fits by
  // construction (DecodePass validates every request against the budget),
  // so this always finds a candidate.
  if (admitted.empty() && running_work.empty()) {
    for (const Candidate& c : queued) {
      if (budget == 0 || resident_bytes + c.kv_bytes <= budget) {
        admitted.push_back(c.index);
        break;
      }
    }
  }
  return admitted;
}

}  // namespace llamcat::scenario
