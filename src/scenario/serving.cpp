#include "scenario/serving.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace llamcat::scenario {

void ServingConfig::validate() const {
  if (policy == AdmitPolicy::kNone) {
    if (kv_budget_bytes != 0) {
      throw std::invalid_argument(
          "ServingConfig: a KV budget requires a queueing admission policy "
          "(fcfs or srf); policy none admits unconditionally");
    }
    if (preempt) {
      throw std::invalid_argument(
          "ServingConfig: preemption requires a queueing admission policy "
          "(fcfs or srf); policy none has no serving queue to re-enter");
    }
  }
  if (preempt && preempt_ratio == 0) {
    throw std::invalid_argument(
        "ServingConfig: preempt_ratio must be >= 1 (a zero ratio would "
        "preempt every co-running pair)");
  }
  if (kv_evict != KvEvictPolicy::kNone) {
    if (!preempt) {
      throw std::invalid_argument(
          "ServingConfig: kv_evict=cold-blocks requires preemption - "
          "eviction happens when a running request is preempted at a stage "
          "boundary, which never occurs without preempt");
    }
    if (kv_budget_bytes == 0) {
      throw std::invalid_argument(
          "ServingConfig: kv_evict=cold-blocks requires a finite "
          "kv_budget_bytes - with an unlimited budget there is no pressure "
          "to relieve, so eviction would only add refetch cost");
    }
  }
  if (kv_block_bytes != 0 && kv_block_bytes % kLineBytes != 0) {
    throw std::invalid_argument(
        "ServingConfig: kv_block_bytes must be a multiple of the " +
        std::to_string(kLineBytes) +
        "-byte cache line (KV is line-granular everywhere else)");
  }
}

AdmissionPolicy::AdmissionPolicy(const ServingConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
}

bool AdmissionPolicy::yields_to_any(
    std::uint64_t remaining_work,
    const std::vector<std::uint64_t>& running_work) const {
  if (!cfg_.preempt) return false;
  for (const std::uint64_t w : running_work) {
    if (remaining_work > w * cfg_.preempt_ratio) return true;
  }
  return false;
}

bool AdmissionPolicy::should_preempt(
    std::uint64_t remaining_work,
    const std::vector<std::uint64_t>& co_running_work) const {
  return yields_to_any(remaining_work, co_running_work);
}

bool AdmissionPolicy::should_preempt(
    std::uint64_t remaining_work,
    const std::vector<std::uint64_t>& co_running_work,
    const std::vector<std::uint64_t>& blocked_work) const {
  if (yields_to_any(remaining_work, co_running_work)) return true;
  // Budget-blocked candidates only exert preemption pressure when yielding
  // can actually unblock them: cold-block eviction frees the preempted
  // request's budget bytes, resident preemption does not.
  return cfg_.paged() && yields_to_any(remaining_work, blocked_work);
}

std::vector<std::size_t> AdmissionPolicy::select(
    std::vector<Candidate> queued,
    const std::vector<std::uint64_t>& running_work,
    std::uint64_t resident_bytes) const {
  std::vector<std::size_t> admitted;
  if (queued.empty()) return admitted;

  // kNone keeps the caller's request-index order (and, with no budget and
  // no preemption, the sweep below degenerates to "admit everything").
  if (cfg_.policy == AdmitPolicy::kFcfs) {
    std::stable_sort(queued.begin(), queued.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.arrival < b.arrival;
                     });
  } else if (cfg_.policy == AdmitPolicy::kShortestRemaining) {
    std::stable_sort(queued.begin(), queued.end(),
                     [](const Candidate& a, const Candidate& b) {
                       if (a.remaining_work != b.remaining_work) {
                         return a.remaining_work < b.remaining_work;
                       }
                       return a.arrival < b.arrival;
                     });
  }

  // Paged mode: a candidate additionally yields to a much-shorter *queued*
  // peer. Eviction exists to hand budget bytes to shorter work - without
  // this gate, FCFS seniority would re-admit a just-evicted long request
  // ahead of the short whose blocked admission triggered the eviction,
  // paying the refetch for nothing (swap thrash). The minimum-work
  // candidate never yields, so the gate cannot block everyone.
  const auto yields_to_queued_peer = [&](const Candidate& c) {
    if (!cfg_.paged()) return false;
    for (const Candidate& d : queued) {
      if (d.index != c.index &&
          c.remaining_work > d.remaining_work * cfg_.preempt_ratio) {
        return true;
      }
    }
    return false;
  };

  const std::uint64_t budget = cfg_.kv_budget_bytes;
  std::uint64_t pinned = resident_bytes;
  // Admitted candidates join the running set for later yield checks, so one
  // sweep cannot admit a long request alongside the short it would yield to.
  std::vector<std::uint64_t> running = running_work;
  for (const Candidate& c : queued) {
    if (yields_to_any(c.remaining_work, running)) continue;
    if (yields_to_queued_peer(c)) continue;
    if (budget != 0 && pinned + c.kv_bytes > budget) break;
    admitted.push_back(c.index);
    pinned += c.kv_bytes;
    running.push_back(c.remaining_work);
  }

  // Progress guarantee: an idle machine with a non-empty queue must start
  // someone. Yield-blocks are waived (there is nobody to yield to next
  // sweep anyway once this one runs alone); the budget still holds, but a
  // resident (preempted) candidate pins 0 new bytes and a fresh one fits by
  // construction (DecodePass validates every request against the budget),
  // so this always finds a candidate.
  if (admitted.empty() && running_work.empty()) {
    for (const Candidate& c : queued) {
      if (budget == 0 || resident_bytes + c.kv_bytes <= budget) {
        admitted.push_back(c.index);
        break;
      }
    }
  }
  return admitted;
}

}  // namespace llamcat::scenario
