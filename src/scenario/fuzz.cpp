#include "scenario/fuzz.hpp"

#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "scenario/invariants.hpp"

namespace llamcat::scenario {

namespace {

ModelShape draw_model(Xoshiro256& rng) {
  ModelShape m = ModelShape::llama3_70b();
  m.num_kv_heads = 1 + static_cast<std::uint32_t>(rng.below(2));
  m.group_size = 1u << rng.below(3);
  return m;
}

SimConfig draw_machine(Xoshiro256& rng) {
  SimConfig cfg = SimConfig::table5();
  cfg.core.num_cores = 1u << rng.below(3);  // 1..4
  cfg.llc.size_bytes = 1ull << 20;
  cfg.llc.num_slices = 1u << rng.below(2);  // 1..2
  cfg.dram.num_channels = 1u << rng.below(2);
  // A quarter of the draws are starved machines: the serving state machine
  // must stay correct when the underlying simulator crawls.
  switch (rng.below(8)) {
    case 0:
      cfg.llc.mshr_entries = 1 + static_cast<std::uint32_t>(rng.below(2));
      break;
    case 1:
      cfg.llc.req_q_size = 1;
      cfg.llc.resp_q_size = 2;
      break;
    default: break;
  }
  cfg.seed = rng();
  cfg.max_cycles = 500'000'000;
  return cfg;
}

std::vector<RequestSpec> draw_requests(Xoshiro256& rng) {
  const std::size_t n = 1 + rng.below(5);
  std::vector<RequestSpec> reqs(n);
  for (std::size_t i = 0; i < n; ++i) {
    reqs[i].id = static_cast<std::uint32_t>(i);
    reqs[i].seq_len = 32 * (1 + rng.below(10));  // 32..320
    // Half the arrivals are bursts at 0; the rest land mid-stream, some
    // while the machine is provably idle (gap > any segment).
    reqs[i].arrival_cycle = rng.below(2) == 0 ? 0 : rng.below(80'000);
    reqs[i].decode_steps = 1 + static_cast<std::uint32_t>(rng.below(3));
  }
  return reqs;
}

ServingConfig draw_serving(Xoshiro256& rng, const RequestBatch& batch,
                           std::uint32_t num_layers) {
  ServingConfig s;
  const std::uint64_t p = rng.below(8);
  if (p < 2) return s;  // raw engine: 1/4 of the draws
  s.policy = p < 5 ? AdmitPolicy::kFcfs : AdmitPolicy::kShortestRemaining;
  if (rng.below(2) == 0) {
    // A finite budget in [max request peak, batch peak]: always admissible
    // request-by-request, usually too tight to co-run everyone.
    std::uint64_t max_peak = 0;
    for (const RequestSpec& r : batch.requests()) {
      max_peak = std::max(max_peak, batch.peak_kv_bytes(r, num_layers));
    }
    const std::uint64_t total = batch.total_peak_kv_bytes(num_layers);
    s.kv_budget_bytes = max_peak + rng.below(total - max_peak + 1);
  }
  s.preempt = rng.below(2) == 0;
  if (s.preempt) {
    s.preempt_ratio = 1 + static_cast<std::uint32_t>(rng.below(4));
    if (s.kv_budget_bytes != 0 && rng.below(2) == 0) {
      s.kv_evict = KvEvictPolicy::kColdBlocks;
      // Block sizes cover the default line granule, odd multiples (partial
      // tails), page-sized blocks, and one larger than any footprint here
      // (no whole block is ever evictable - eviction must refuse to churn).
      static constexpr std::uint64_t kBlocks[] = {0,   64,   128,    192,
                                                  256, 4096, 1 << 20};
      s.kv_block_bytes = kBlocks[rng.below(std::size(kBlocks))];
      static constexpr Cycle kCosts[] = {0, 0, 1, 2, 7, 64};
      s.refetch_cost = kCosts[rng.below(std::size(kCosts))];
    }
  }
  return s;
}

/// Timing-only projection of a run: landmarks, queue/preempt counts and
/// per-segment cycles, but no byte counters. Prefix sharing with an
/// unlimited budget and no paged eviction must be timing-neutral (it only
/// changes what the ledger charges, never when anything runs), which is a
/// weaker relation than digest equality - the share counters themselves
/// legitimately differ.
std::string timing_digest(const BatchStats& s) {
  std::ostringstream os;
  os << "makespan=" << s.makespan << " cycles=" << s.total.cycles << "\n";
  for (const RequestStats& r : s.per_request) {
    os << "req " << r.id << ": admit=" << r.admit_cycle
       << " finish=" << r.finish_cycle << " queued=" << r.queued_cycles
       << " preempt=" << r.preemptions << " cycles=" << r.stats.cycles
       << " first=" << r.slice.first_dispatch_cycle
       << " last=" << r.slice.last_complete_cycle << "\n";
  }
  os << "segments=" << s.per_op.size() << ":";
  for (const auto& op : s.per_op) {
    os << " " << op.name << "=" << op.stats.cycles;
  }
  os << "\n";
  return os.str();
}

/// First line where two digests diverge, for a one-look failure report.
std::string first_diff(const std::string& a, const std::string& b) {
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return "(digests identical)";
    if (la != lb || ga != gb) {
      return "run1 '" + (ga ? la : std::string("<eof>")) + "' vs run2 '" +
             (gb ? lb : std::string("<eof>")) + "'";
    }
  }
}

}  // namespace

std::string batch_stats_digest(const BatchStats& s) {
  std::ostringstream os;
  os << "mode=" << static_cast<int>(s.mode) << " makespan=" << s.makespan
     << " paged=" << s.paged << " shared=" << s.shared << "\n";
  if (s.shared) {
    os << "pool: lookups=" << s.kv_block_lookups << " hits=" << s.kv_block_hits
       << " shared_b=" << s.kv_shared_bytes
       << " charged_b=" << s.kv_charged_bytes
       << " logical_b=" << s.kv_logical_bytes << "\n";
  }
  os << "total: cycles=" << s.total.cycles << " instr=" << s.total.instructions
     << " tbs=" << s.total.thread_blocks << " dram_r=" << s.total.dram_reads
     << " dram_w=" << s.total.dram_writes << "\n";
  for (const auto& [name, v] : s.total.counters.counters()) {
    os << "  counter " << name << "=" << v << "\n";
  }
  for (const RequestStats& r : s.per_request) {
    os << "req " << r.id << ": arrival=" << r.arrival_cycle
       << " admit=" << r.admit_cycle << " finish=" << r.finish_cycle
       << " queued=" << r.queued_cycles << " preempt=" << r.preemptions
       << " pfx=" << r.prefix_hit_blocks << "/" << r.prefix_hit_bytes
       << " swapped=" << r.swapped_blocks << " refetch_b=" << r.refetch_bytes
       << " refetch_c=" << r.refetch_cycles << " cycles=" << r.stats.cycles
       << " instr=" << r.slice.instructions << " tbs=" << r.slice.thread_blocks
       << " first=" << r.slice.first_dispatch_cycle
       << " last=" << r.slice.last_complete_cycle
       << " llc=" << r.slice.llc_lookups << "/" << r.slice.llc_hits << "/"
       << r.slice.llc_misses << " dram=" << r.slice.dram_reads << "/"
       << r.slice.dram_writes << " ttft=" << r.ttft() << " steps=";
    for (std::size_t k = 0; k < r.step_finish_cycles.size(); ++k) {
      os << (k == 0 ? "" : ",") << r.step_finish_cycles[k];
    }
    os << "\n";
  }
  os << "segments=" << s.per_op.size() << ":";
  for (const auto& op : s.per_op) {
    os << " " << op.name << "=" << op.stats.cycles;
  }
  os << "\n";
  return os.str();
}

std::string FuzzScenario::summary() const {
  std::ostringstream os;
  os << requests.size() << " req (seq";
  for (const RequestSpec& r : requests) os << " " << r.seq_len;
  os << "; arrive";
  for (const RequestSpec& r : requests) os << " " << r.arrival_cycle;
  os << "; steps";
  for (const RequestSpec& r : requests) os << " " << r.decode_steps;
  os << "), layers=" << pass_cfg.num_layers
     << " gemv=" << (pass_cfg.include_gemv ? "on" : "off")
     << " interleave=" << to_string(pass_cfg.interleave)
     << ", cores=" << cfg.core.num_cores << " slices=" << cfg.llc.num_slices
     << " dram_ch=" << cfg.dram.num_channels
     << " mshr=" << cfg.llc.mshr_entries << " req_q=" << cfg.llc.req_q_size
     << " mseed=" << cfg.seed
     << ", admit=" << to_string(pass_cfg.serving.policy)
     << " budget=" << pass_cfg.serving.kv_budget_bytes
     << " preempt=" << (pass_cfg.serving.preempt ? "on" : "off")
     << " evict=" << to_string(pass_cfg.serving.kv_evict)
     << " block=" << pass_cfg.serving.kv_block_bytes
     << " refetch=" << pass_cfg.serving.refetch_cost
     << " share=" << (pass_cfg.serving.kv_share ? "on" : "off");
  if (pass_cfg.serving.kv_share) {
    os << " (pfx";
    for (const RequestSpec& r : requests) {
      if (r.prefix_group == kNoPrefixGroup) {
        os << " -";
      } else {
        os << " g" << r.prefix_group << ":" << r.prefix_tokens;
      }
    }
    os << ")";
  }
  if (open_loop) os << ", open-loop[" << traffic.summary() << "]";
  return os.str();
}

FuzzScenario draw_scenario(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  FuzzScenario sc;
  sc.cfg = draw_machine(rng);
  sc.model = draw_model(rng);
  sc.requests = draw_requests(rng);
  sc.pass_cfg.mode = ExecutionMode::kContinuous;
  sc.pass_cfg.num_layers = 1 + static_cast<std::uint32_t>(rng.below(2));
  sc.pass_cfg.include_gemv = rng.below(3) == 0;
  sc.pass_cfg.interleave =
      rng.below(2) == 0 ? FuseOrder::kRoundRobin : FuseOrder::kConcat;
  const RequestBatch batch(sc.model, sc.requests);
  sc.pass_cfg.serving = draw_serving(rng, batch, sc.pass_cfg.num_layers);
  // Cross-request prefix sharing: drawn strictly after every pre-existing
  // knob so each pre-pool pinned seed replays its original scenario
  // unchanged (the draw order is part of the corpus contract).
  if (rng.below(2) == 0) {
    sc.pass_cfg.serving.kv_share = true;
    const std::uint64_t num_groups = 1 + rng.below(2);
    for (RequestSpec& r : sc.requests) {
      // A quarter of the requests stay private even in a sharing run.
      if (rng.below(4) == 0) continue;
      r.prefix_group = static_cast<std::uint32_t>(rng.below(num_groups));
      r.prefix_tokens = 1 + rng.below(r.seq_len);
    }
    if (sc.pass_cfg.serving.kv_block_bytes == 0 && rng.below(2) == 0) {
      // Sharing without paged eviction still exercises the block granule
      // (the paged path draws its own block size above).
      static constexpr std::uint64_t kShareBlocks[] = {64, 192, 256, 4096};
      sc.pass_cfg.serving.kv_block_bytes =
          kShareBlocks[rng.below(std::size(kShareBlocks))];
    }
  }
  // Open-loop draws: a third of the scenarios swap the hand-rolled batch
  // for a generated arrival process (traffic.hpp). Drawn strictly after
  // every pre-existing knob - the corpus contract again - so every
  // pre-open-loop pinned seed replays its original scenario unchanged.
  if (rng.below(3) == 0) {
    sc.open_loop = true;
    TrafficConfig tc;
    tc.seed = rng();
    tc.num_requests = 2 + static_cast<std::uint32_t>(rng.below(4));
    static constexpr TrafficProcess kProcs[] = {TrafficProcess::kPoisson,
                                                TrafficProcess::kBursty,
                                                TrafficProcess::kDiurnal};
    tc.process = kProcs[rng.below(std::size(kProcs))];
    // Gaps span idle machines (huge gap) down to near-simultaneous bursts.
    static constexpr Cycle kGaps[] = {500, 5'000, 20'000, 80'000};
    tc.mean_gap = kGaps[rng.below(std::size(kGaps))];
    tc.seq_dist = rng.below(2) == 0 ? TrafficDist::kUniform
                                    : TrafficDist::kLognormal;
    tc.seq_min = 32;
    tc.seq_max = 32 * (2 + rng.below(9));  // 64..320
    tc.steps_min = 1;
    tc.steps_max = 1 + static_cast<std::uint32_t>(rng.below(3));
    if (sc.pass_cfg.serving.kv_share) {
      tc.prefix_groups = 1 + static_cast<std::uint32_t>(rng.below(2));
      tc.share_pct = 75;
    }
    sc.traffic = tc;
    sc.requests = generate_traffic(tc);
    // The budget drawn above sized itself against the discarded hand-rolled
    // batch; re-draw it against the generated one so it stays in the
    // always-admissible-but-usually-tight band.
    if (sc.pass_cfg.serving.kv_budget_bytes != 0) {
      const RequestBatch open_batch(sc.model, sc.requests);
      std::uint64_t max_peak = 0;
      for (const RequestSpec& r : open_batch.requests()) {
        max_peak = std::max(
            max_peak, open_batch.peak_kv_bytes(r, sc.pass_cfg.num_layers));
      }
      const std::uint64_t total =
          open_batch.total_peak_kv_bytes(sc.pass_cfg.num_layers);
      sc.pass_cfg.serving.kv_budget_bytes =
          max_peak + rng.below(total - max_peak + 1);
    }
  }
  return sc;
}

FuzzResult run_fuzz_seed(std::uint64_t seed) {
  FuzzResult out;
  out.seed = seed;
  const FuzzScenario sc = draw_scenario(seed);
  try {
    const RequestBatch batch(sc.model, sc.requests);

    // Run 1: in-engine ledger auditor on (KV conservation, budget ceiling,
    // event-clock monotonicity - checked on the cycle each event happens).
    DecodePassConfig audited = sc.pass_cfg;
    audited.audit = true;
    const BatchStats s1 = DecodePass(batch, audited, sc.cfg).run();

    // Post-run contract: landmarks, attribution, policy accounting.
    const AuditReport report = audit_batch(batch, sc.pass_cfg, s1);
    for (const std::string& v : report.violations) {
      out.violations.push_back("contract: " + v);
    }

    // Run 2: audit off. Identical digests prove same-seed determinism and
    // that the auditor is observation-only, in one comparison.
    const BatchStats s2 = DecodePass(batch, sc.pass_cfg, sc.cfg).run();
    const std::string d1 = batch_stats_digest(s1), d2 = batch_stats_digest(s2);
    out.digest = d1;
    if (d1 != d2) {
      out.violations.push_back(
          "determinism: audited and plain runs of the same scenario "
          "diverge: " +
          first_diff(d1, d2));
    }

    // A queueing discipline with an unlimited budget and no preemption
    // never holds anyone back: it must reproduce the raw unconditional
    // engine byte for byte.
    const ServingConfig& serving = sc.pass_cfg.serving;
    if (!serving.unconditional() && serving.kv_budget_bytes == 0 &&
        !serving.preempt && !serving.kv_share) {
      DecodePassConfig raw = sc.pass_cfg;
      raw.serving = ServingConfig{};
      const BatchStats s3 = DecodePass(batch, raw, sc.cfg).run();
      const std::string d3 = batch_stats_digest(s3);
      if (d1 != d3) {
        out.violations.push_back(
            "policy-none equivalence: " + std::string(to_string(
                serving.policy)) +
            " with unlimited budget and no preemption diverges from the "
            "raw engine: " +
            first_diff(d1, d3));
      }
    }

    // Share neutrality: with an unlimited budget and no paged eviction,
    // prefix sharing only changes what the ledger charges - never when
    // anything runs. The same scenario with kv_share off must match on the
    // timing projection (full digests legitimately differ in the share
    // counters themselves).
    if (serving.kv_share && !serving.paged() &&
        serving.kv_budget_bytes == 0) {
      DecodePassConfig unshared = sc.pass_cfg;
      unshared.serving.kv_share = false;
      const BatchStats s4 = DecodePass(batch, unshared, sc.cfg).run();
      const std::string t1 = timing_digest(s1), t4 = timing_digest(s4);
      if (t1 != t4) {
        out.violations.push_back(
            "share neutrality: kv_share with an unlimited budget and no "
            "paged eviction changed the timing: " +
            first_diff(t1, t4));
      }
    }
    // Closed-vs-open equivalence: record the generated workload as a trace,
    // replay it as a fixed batch, and demand the replay reproduce the
    // open-loop run's digest byte for byte - the trace format must carry
    // everything the engine's timing depends on.
    if (sc.open_loop) {
      // Open-loop contract: arrival ordering, TTFT/step-landmark
      // monotonicity, SLO partition sums. The SLO itself is arbitrary for
      // the partition property; half the makespan splits the batch into
      // non-degenerate buckets on most draws.
      const AuditReport open_report =
          audit_open_loop(sc.requests, s1, s1.makespan / 2);
      for (const std::string& v : open_report.violations) {
        out.violations.push_back("open-loop: " + v);
      }

      const std::string trace = trace_to_string(sc.requests);
      const std::vector<RequestSpec> replayed = trace_from_string(trace);
      const RequestBatch replay_batch(sc.model, replayed);
      const BatchStats s5 = DecodePass(replay_batch, sc.pass_cfg, sc.cfg).run();
      const std::string d5 = batch_stats_digest(s5);
      if (d1 != d5) {
        out.violations.push_back(
            "trace replay: the recorded trace replayed as a fixed batch "
            "diverges from the generating open-loop run: " +
            first_diff(d1, d5));
      }
      // And the artifact itself must be byte-stable through a round-trip.
      if (trace_to_string(replayed) != trace) {
        out.violations.push_back(
            "trace stability: write -> read -> write changed bytes");
      }
    }
  } catch (const InvariantViolation& e) {
    out.violations.push_back(std::string("auditor: ") + e.what());
  } catch (const std::exception& e) {
    out.violations.push_back(std::string("engine exception: ") + e.what());
  }
  return out;
}

std::vector<FuzzResult> run_fuzz_sweep(std::uint64_t base_seed,
                                       std::uint64_t n, std::size_t jobs) {
  std::vector<FuzzResult> results(n);
  if (jobs == 1) {
    for (std::uint64_t i = 0; i < n; ++i) {
      results[i] = run_fuzz_seed(base_seed + i);
    }
    return results;
  }
  // Each seed writes its own pre-sized slot, so the result vector is
  // identical to the serial sweep no matter which worker finishes first;
  // the TaskGroup rethrows the lowest seed's exception, matching the
  // serial loop's failure order.
  ThreadPool pool(jobs);
  TaskGroup group(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    group.run(pool, i,
              [&results, base_seed, i] { results[i] = run_fuzz_seed(base_seed + i); });
  }
  group.wait();
  return results;
}

}  // namespace llamcat::scenario
