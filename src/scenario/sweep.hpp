// Saturation sweep driver: drives the open-loop traffic generator
// (scenario/traffic.hpp) through run_continuous at a ladder of offered
// loads and reduces each run to one throughput/latency point, so a bench
// (bench/ablation_saturation.cpp) or test can trace the serving curve of a
// policy stack from an idle machine to past its saturation knee.
//
// Methodology (docs/workloads.md has the prose version): the offered-load
// axis is the mean inter-arrival gap - identical workload shape and seed at
// every point, only the arrival clock compresses - so two points differ by
// load alone, and two policy stacks at the same point differ by policy
// alone. Each point reports end-to-end latency, the split TTFT/TBT
// percentiles, SLO-goodput (tokens of requests whose TTFT met the SLO, per
// second) and the preemption/queue totals. Max-sustainable load is the
// largest offered rate whose P99 TTFT still meets the SLO.
//
// Every point is an independent single-threaded simulation; run_load_sweep
// fans them out across a thread pool into pre-sized slots, so the returned
// curve is bit-identical to a serial sweep regardless of worker timing
// (the same pattern as run_fuzz_sweep).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/invariants.hpp"
#include "scenario/scenario.hpp"
#include "scenario/traffic.hpp"

namespace llamcat::scenario {

/// One load ladder: the workload shape (`traffic`, whose mean_gap is
/// overridden point by point), the gap axis, and the TTFT SLO that defines
/// goodput.
struct SweepConfig {
  /// Workload shape shared by every point (num_requests, distributions,
  /// prefix mix, seed). mean_gap is ignored - `gaps` supplies it.
  TrafficConfig traffic;
  /// Offered-load axis: one sweep point per mean inter-arrival gap, run in
  /// the given order (descending gap = rising load toward saturation).
  std::vector<Cycle> gaps;
  /// TTFT SLO in stream cycles: a request attains it iff
  /// arrival -> first dispatch <= this.
  Cycle slo_ttft_cycles = 0;

  /// Throws std::invalid_argument on an empty axis, a zero gap or SLO, or
  /// an invalid workload shape.
  void validate() const;
};

/// One point of the curve: the run's reductions at a single offered load.
struct SweepPoint {
  Cycle mean_gap = 0;
  /// Offered load in requests/s (core_hz / mean_gap).
  double offered_qps = 0.0;
  /// Delivered tokens/s over the makespan.
  double throughput_tps = 0.0;
  /// Tokens/s of SLO-attained requests only.
  double goodput_tps = 0.0;
  Cycle makespan = 0;
  Cycle p50_latency = 0;
  Cycle p99_latency = 0;
  Cycle p50_ttft = 0;
  Cycle p99_ttft = 0;
  Cycle p50_tbt = 0;
  Cycle p99_tbt = 0;
  SloReport slo;
  std::uint64_t preemptions = 0;
  Cycle queue_wait = 0;
};

/// Runs the ladder: for each gap, generates the workload, executes one
/// continuous pass under `pass_cfg` on `cfg`, audits it against the
/// open-loop contract (throwing InvariantViolation on a breach - a sweep
/// must never chart a run that broke the contract), and reduces it to a
/// SweepPoint. `jobs`: 0 = hardware concurrency, 1 = serial in-caller.
/// Points land in gap-order slots - bit-identical to a serial sweep.
[[nodiscard]] std::vector<SweepPoint> run_load_sweep(
    const ModelShape& model, const SimConfig& cfg,
    const DecodePassConfig& pass_cfg, const SweepConfig& sweep,
    std::size_t jobs = 1);

/// Index of the highest sustainable load: the smallest gap (densest
/// arrivals) whose P99 TTFT still meets `slo_ttft_cycles`. Returns
/// points.size() when no point sustains it.
[[nodiscard]] std::size_t max_sustainable_index(
    const std::vector<SweepPoint>& points, Cycle slo_ttft_cycles);

}  // namespace llamcat::scenario
