// DDR5 command vocabulary and derived timing bundle.
#pragma once

#include <cstdint>

#include "common/config.hpp"

namespace llamcat {

enum class DramCommand : std::uint8_t { kAct, kPre, kRead, kWrite, kRefresh };

/// All DRAM-clock timing constraints used by the controller, derived from a
/// DramConfig. Values are in DRAM cycles (tCK = 1/dram_hz).
struct DramTiming {
  std::uint32_t tCL, tCWL, tRCD, tRP, tRAS, tRC;
  std::uint32_t tCCD_S, tCCD_L, tRRD_S, tRRD_L, tFAW;
  std::uint32_t tWR, tRTP, tWTR_S, tWTR_L, tRTW;
  std::uint32_t tRFC, tREFI;
  std::uint32_t tBurst;  // data-bus cycles per access: burst_length / 2 (DDR)

  explicit DramTiming(const DramConfig& cfg);

  /// Read data is fully on the bus tCL + tBurst after the READ command.
  [[nodiscard]] std::uint32_t read_latency() const { return tCL + tBurst; }
  /// Write data finishes tCWL + tBurst after the WRITE command.
  [[nodiscard]] std::uint32_t write_latency() const { return tCWL + tBurst; }
};

/// Physical location of a cache line inside the DRAM system.
struct DramCoord {
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;
  std::uint32_t bankgroup = 0;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;  // line-granular column within the row
};

/// Line-interleaved address mapping, LSB-first field order:
///   channel | column | bankgroup | bank | rank | row
/// Consecutive lines stripe across channels; a contiguous stream then fills a
/// 2 KB row per channel before moving to the next bank group, giving streams
/// high row-buffer locality while distinct streams land in distinct bank
/// groups.
class AddressMap {
 public:
  explicit AddressMap(const DramConfig& cfg);

  [[nodiscard]] DramCoord decode(Addr line_addr) const;
  /// Inverse of decode (used by tests to prove bijectivity).
  [[nodiscard]] Addr encode(const DramCoord& c) const;

  [[nodiscard]] std::uint32_t channel_bits() const { return ch_bits_; }

 private:
  std::uint32_t ch_bits_, col_bits_, bg_bits_, bank_bits_, rank_bits_,
      row_bits_;
};

}  // namespace llamcat
