#include "dram/bank.hpp"

#include <algorithm>

namespace llamcat {

namespace {
void raise_to(DramTick& slot, DramTick v) { slot = std::max(slot, v); }
}  // namespace

void Bank::do_activate(DramTick now, std::uint32_t row, const DramTiming& t) {
  open_row_ = row;
  raise_to(rd_allowed_, now + t.tRCD);
  raise_to(wr_allowed_, now + t.tRCD);
  raise_to(pre_allowed_, now + t.tRAS);
  raise_to(act_allowed_, now + t.tRC);
}

void Bank::do_precharge(DramTick now, const DramTiming& t) {
  open_row_.reset();
  raise_to(act_allowed_, now + t.tRP);
}

void Bank::do_read(DramTick now, const DramTiming& t) {
  raise_to(pre_allowed_, now + t.tRTP);
  (void)now;
}

void Bank::do_write(DramTick now, const DramTiming& t) {
  // Write recovery: the row must stay open until tCWL + tBurst + tWR.
  raise_to(pre_allowed_, now + t.tCWL + t.tBurst + t.tWR);
}

void Bank::do_refresh(DramTick now, const DramTiming& t) {
  open_row_.reset();
  raise_to(act_allowed_, now + t.tRFC);
}

void BankGroupState::on_activate(DramTick now, const DramTiming& t) {
  raise_to(act_allowed, now + t.tRRD_L);
}
void BankGroupState::on_read(DramTick now, const DramTiming& t) {
  raise_to(rd_allowed, now + t.tCCD_L);
}
void BankGroupState::on_write(DramTick now, const DramTiming& t) {
  raise_to(wr_allowed, now + t.tCCD_L);
}

bool RankState::can_activate(DramTick now, const DramTiming& t) const {
  if (refreshing(now) || now < act_allowed_) return false;
  // tFAW: at most 4 ACTs in any tFAW window.
  std::uint32_t in_window = 0;
  for (DramTick ts : faw_window_) {
    if (ts + t.tFAW > now) ++in_window;
  }
  return in_window < 4;
}

void RankState::on_activate(DramTick now, const DramTiming& t) {
  raise_to(act_allowed_, now + t.tRRD_S);
  faw_window_.push_back(now);
  while (faw_window_.size() > 4) faw_window_.pop_front();
}

void RankState::on_write(DramTick now, const DramTiming& t) {
  // Write-to-read turnaround within the rank.
  raise_to(rd_allowed_, now + t.tCWL + t.tBurst + t.tWTR_S);
}

void ChannelBusState::on_read(DramTick now, const DramTiming& t) {
  raise_to(rd_allowed, now + t.tCCD_S);
  // Read->write: write data may not collide with read data on the bus.
  raise_to(wr_allowed, now + t.tCL + t.tBurst + t.tRTW - t.tCWL);
  raise_to(busy_until, now + t.tCL + t.tBurst);
}

void ChannelBusState::on_write(DramTick now, const DramTiming& t) {
  raise_to(wr_allowed, now + t.tCCD_S);
  raise_to(rd_allowed, now + t.tCCD_S);
  raise_to(busy_until, now + t.tCWL + t.tBurst);
}

}  // namespace llamcat
