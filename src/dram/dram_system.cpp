#include "dram/dram_system.hpp"

#include <cassert>
#include <cmath>

namespace llamcat {

namespace {
// Integer ratio slow:fast for the clock divider. For the Table 5 clocks
// (1.6 GHz DRAM, 1.96 GHz core) this reduces to exactly 40:49.
std::pair<std::uint64_t, std::uint64_t> ratio_of(double slow_hz,
                                                 double fast_hz) {
  // Scale to integers at kHz resolution, then reduce.
  auto a = static_cast<std::uint64_t>(std::llround(slow_hz / 1e3));
  auto b = static_cast<std::uint64_t>(std::llround(fast_hz / 1e3));
  assert(a > 0 && b > 0 && a <= b);
  std::uint64_t x = a, y = b;
  while (y != 0) {
    std::uint64_t t = x % y;
    x = y;
    y = t;
  }
  return {a / x, b / x};
}
}  // namespace

DramSystem::DramSystem(const DramConfig& cfg, double core_hz)
    : cfg_(cfg),
      timing_(cfg),
      map_(cfg),
      divider_(ratio_of(cfg.dram_hz, core_hz).first,
               ratio_of(cfg.dram_hz, core_hz).second) {
  channels_.reserve(cfg_.num_channels);
  for (std::uint32_t c = 0; c < cfg_.num_channels; ++c) {
    channels_.push_back(
        std::make_unique<DramController>(cfg_, timing_, map_, c));
  }
  done_buf_.reserve(64);
}

void DramSystem::enqueue(const DramRequest& r) {
  channels_[channel_of(r.line_addr)]->enqueue(r, now_);
}

void DramSystem::tick_core_cycle() {
  if (divider_.advance() == 0) return;
  ++now_;
  done_buf_.clear();
  for (auto& ch : channels_) ch->tick(now_, done_buf_);
  if (on_read_complete) {
    for (const auto& d : done_buf_) on_read_complete(d);
  }
}

bool DramSystem::idle() const {
  for (const auto& ch : channels_) {
    if (!ch->idle()) return false;
  }
  return true;
}

StatSet DramSystem::stats() const {
  StatSet s;
  for (const auto& ch : channels_) s.merge(ch->stats());
  s.set("dram.bytes", bytes_transferred());
  return s;
}

std::uint64_t DramSystem::bytes_transferred() const {
  std::uint64_t accesses = 0;
  for (const auto& ch : channels_) {
    accesses += ch->counters().reads + ch->counters().writes;
  }
  return accesses * kLineBytes;
}

double DramSystem::peak_gbps() const {
  // data_bytes per I/O clock edge x 2 (DDR) x channels.
  return cfg_.dram_hz * 2.0 * cfg_.channel_data_bytes * cfg_.num_channels /
         1e9;
}

}  // namespace llamcat
