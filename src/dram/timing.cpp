#include "dram/timing.hpp"

#include "common/math_util.hpp"

namespace llamcat {

DramTiming::DramTiming(const DramConfig& c)
    : tCL(c.tCL),
      tCWL(c.tCWL),
      tRCD(c.tRCD),
      tRP(c.tRP),
      tRAS(c.tRAS),
      tRC(c.tRC),
      tCCD_S(c.tCCD_S),
      tCCD_L(c.tCCD_L),
      tRRD_S(c.tRRD_S),
      tRRD_L(c.tRRD_L),
      tFAW(c.tFAW),
      tWR(c.tWR),
      tRTP(c.tRTP),
      tWTR_S(c.tWTR_S),
      tWTR_L(c.tWTR_L),
      tRTW(c.tRTW),
      tRFC(c.tRFC),
      tREFI(c.tREFI),
      tBurst(c.burst_length / 2) {}

AddressMap::AddressMap(const DramConfig& cfg)
    : ch_bits_(log2_floor(cfg.num_channels)),
      col_bits_(log2_floor(cfg.row_bytes / kLineBytes)),
      bg_bits_(log2_floor(cfg.bankgroups_per_rank)),
      bank_bits_(log2_floor(cfg.banks_per_bankgroup)),
      rank_bits_(log2_floor(cfg.ranks_per_channel)),
      row_bits_(log2_floor(cfg.rows_per_bank)) {}

DramCoord AddressMap::decode(Addr line_addr) const {
  Addr x = line_index(line_addr);
  auto take = [&x](std::uint32_t bits) {
    const Addr v = x & ((Addr{1} << bits) - 1);
    x >>= bits;
    return static_cast<std::uint32_t>(v);
  };
  DramCoord c;
  c.channel = take(ch_bits_);
  c.col = take(col_bits_);
  c.bankgroup = take(bg_bits_);
  c.bank = take(bank_bits_);
  c.rank = take(rank_bits_);
  // Row takes the remaining bits, wrapped to the configured row count so any
  // 64-bit address is mappable.
  c.row = static_cast<std::uint32_t>(x & ((Addr{1} << row_bits_) - 1));
  return c;
}

Addr AddressMap::encode(const DramCoord& c) const {
  Addr x = c.row;
  x = (x << rank_bits_) | c.rank;
  x = (x << bank_bits_) | c.bank;
  x = (x << bg_bits_) | c.bankgroup;
  x = (x << col_bits_) | c.col;
  x = (x << ch_bits_) | c.channel;
  return x * kLineBytes;
}

}  // namespace llamcat
