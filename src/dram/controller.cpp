#include "dram/controller.hpp"

#include <algorithm>
#include <cassert>

namespace llamcat {

DramController::DramController(const DramConfig& cfg, const DramTiming& timing,
                               const AddressMap& map, std::uint32_t channel_id)
    : cfg_(cfg), timing_(timing), map_(map), channel_id_(channel_id) {
  const std::uint32_t nbanks = cfg_.ranks_per_channel *
                               cfg_.bankgroups_per_rank *
                               cfg_.banks_per_bankgroup;
  banks_.resize(nbanks);
  bankgroups_.resize(cfg_.ranks_per_channel * cfg_.bankgroups_per_rank);
  ranks_.resize(cfg_.ranks_per_channel);
  next_refresh_ = timing_.tREFI;
  read_q_.reserve(cfg_.read_q_size);
  write_q_.reserve(cfg_.write_q_size);
}

void DramController::enqueue(const DramRequest& r, DramTick now) {
  assert(can_accept(r));
  Entry e;
  e.req = r;
  e.coord = map_.decode(r.line_addr);
  assert(e.coord.channel == channel_id_);
  e.arrival = now;
  if (r.is_write) {
    // Forward any pending read to the same line first? Reads probe the write
    // queue at enqueue time instead (simpler and equivalent here because the
    // LLC never issues a read while a write-back to the same line is queued).
    write_q_.push_back(e);
    ++counters_.writes_enq;
  } else {
    read_q_.push_back(e);
    ++counters_.reads_enq;
  }
}

bool DramController::maybe_refresh(DramTick now) {
  if (!cfg_.enable_refresh) return false;
  if (now < next_refresh_) return false;
  do_refresh_at(now);
  return true;
}

void DramController::do_refresh_at(DramTick now) {
  // All-bank refresh of one rank per tREFI, round-robin across ranks.
  const std::uint32_t rank = refresh_rank_rr_;
  refresh_rank_rr_ = (refresh_rank_rr_ + 1) % cfg_.ranks_per_channel;
  next_refresh_ += timing_.tREFI;
  for (std::uint32_t bg = 0; bg < cfg_.bankgroups_per_rank; ++bg) {
    for (std::uint32_t b = 0; b < cfg_.banks_per_bankgroup; ++b) {
      DramCoord c{channel_id_, rank, bg, b, 0, 0};
      bank_of(c).do_refresh(now, timing_);
    }
  }
  ranks_[rank].begin_refresh(now, now + timing_.tRFC);
  ++counters_.refreshes;
}

void DramController::skip_idle(DramTick from, std::uint64_t ticks) {
  assert(idle());
  read_q_occ_.add_repeated(0.0, ticks);
  if (!cfg_.enable_refresh) return;
  // Per-tick stepping calls maybe_refresh at each tick in (from, from+ticks];
  // next_refresh_ > from holds at entry (the channel was ticked at `from`),
  // so each refresh in the window fires at exactly its scheduled tick.
  const DramTick end = from + ticks;
  while (next_refresh_ <= end) {
    do_refresh_at(std::max(next_refresh_, from + 1));
  }
}

bool DramController::ready_for_data(const Entry& e, bool is_write,
                                    DramTick now) {
  const Bank& bank = const_cast<DramController*>(this)->bank_of(e.coord);
  const BankGroupState& bg = const_cast<DramController*>(this)->bg_of(e.coord);
  const RankState& rank = ranks_[e.coord.rank];
  if (rank.refreshing(now)) return false;
  if (is_write) {
    return bank.can_write(now, e.coord.row) && now >= bg.wr_allowed &&
           now >= bus_.wr_allowed;
  }
  return bank.can_read(now, e.coord.row) && now >= bg.rd_allowed &&
         now >= bus_.rd_allowed && now >= rank.rd_allowed();
}

void DramController::issue_data(Entry& e, bool is_write, DramTick now,
                                std::vector<DramCompletion>& done) {
  Bank& bank = bank_of(e.coord);
  BankGroupState& bg = bg_of(e.coord);
  if (is_write) {
    bank.do_write(now, timing_);
    bg.on_write(now, timing_);
    ranks_[e.coord.rank].on_write(now, timing_);
    bus_.on_write(now, timing_);
    ++counters_.writes;
    if (e.activated_for) {
      ++counters_.row_misses;
    } else {
      ++counters_.row_hits;
    }
  } else {
    bank.do_read(now, timing_);
    bg.on_read(now, timing_);
    bus_.on_read(now, timing_);
    ++counters_.reads;
    if (e.activated_for) {
      ++counters_.row_misses;
    } else {
      ++counters_.row_hits;
    }
    inflight_reads_.push_back(
        DramCompletion{e.req.line_addr, e.req.payload,
                       now + timing_.read_latency() + cfg_.ctrl_latency});
  }
  (void)done;
}

bool DramController::schedule_from(std::vector<Entry>& q, bool is_write,
                                   DramTick now,
                                   std::vector<DramCompletion>& done) {
  if (q.empty()) return false;

  // Pass 1 (FR): oldest request whose row is open and data command ready.
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (ready_for_data(q[i], is_write, now)) {
      issue_data(q[i], is_write, now, done);
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }

  // Pass 2 (FCFS): advance the oldest request's bank state.
  for (std::size_t i = 0; i < q.size(); ++i) {
    Entry& e = q[i];
    Bank& bank = bank_of(e.coord);
    RankState& rank = ranks_[e.coord.rank];
    BankGroupState& bg = bg_of(e.coord);
    if (rank.refreshing(now)) continue;
    if (!bank.row_open()) {
      if (bank.can_activate(now) && now >= bg.act_allowed &&
          rank.can_activate(now, timing_)) {
        bank.do_activate(now, e.coord.row, timing_);
        bg.on_activate(now, timing_);
        rank.on_activate(now, timing_);
        e.activated_for = true;
        ++counters_.activates;
        return true;
      }
    } else if (bank.open_row() != e.coord.row) {
      if (bank.can_precharge(now)) {
        bank.do_precharge(now, timing_);
        ++counters_.precharges;
        ++counters_.row_conflicts;
        return true;
      }
    }
    // Only attempt row management on behalf of the oldest blocked request
    // per bank; scanning further entries to the same bank would reorder the
    // open-row decision. Continue to other banks' requests.
  }
  return false;
}

StatSet DramController::stats() const {
  StatSet s;
  s.set("dram.reads_enq", counters_.reads_enq);
  s.set("dram.writes_enq", counters_.writes_enq);
  s.set("dram.reads", counters_.reads);
  s.set("dram.writes", counters_.writes);
  s.set("dram.activates", counters_.activates);
  s.set("dram.precharges", counters_.precharges);
  s.set("dram.row_hits", counters_.row_hits);
  s.set("dram.row_misses", counters_.row_misses);
  s.set("dram.row_conflicts", counters_.row_conflicts);
  s.set("dram.refreshes", counters_.refreshes);
  return s;
}

void DramController::tick(DramTick now, std::vector<DramCompletion>& done) {
  // Deliver finished reads (finish ticks are monotonic; see inflight_reads_).
  while (!inflight_reads_.empty() &&
         inflight_reads_.front().finish_tick <= now) {
    done.push_back(inflight_reads_.front());
    inflight_reads_.pop_front();
  }

  read_q_occ_.add(static_cast<double>(read_q_.size()));

  if (maybe_refresh(now)) return;

  if (read_q_.empty() && write_q_.empty()) {
    // Nothing to schedule; the hysteresis below would see occ == 0.
    draining_writes_ = false;
    return;
  }

  // Write drain hysteresis.
  const double occ = static_cast<double>(write_q_.size()) /
                     static_cast<double>(cfg_.write_q_size);
  if (!draining_writes_ && occ >= cfg_.write_drain_high)
    draining_writes_ = true;
  if (draining_writes_ &&
      (occ <= cfg_.write_drain_low || write_q_.empty()))
    draining_writes_ = false;

  const bool prefer_writes = draining_writes_ || read_q_.empty();
  if (prefer_writes) {
    if (schedule_from(write_q_, /*is_write=*/true, now, done)) return;
    if (schedule_from(read_q_, /*is_write=*/false, now, done)) return;
  } else {
    if (schedule_from(read_q_, /*is_write=*/false, now, done)) return;
    if (schedule_from(write_q_, /*is_write=*/true, now, done)) return;
  }
}

}  // namespace llamcat
