// Per-bank / bank-group / rank / channel DDR5 state machines. Each level
// tracks earliest-allowed issue times for the commands it constrains.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/types.hpp"
#include "dram/timing.hpp"

namespace llamcat {

/// DRAM-clock timestamp.
using DramTick = std::uint64_t;

/// One DRAM bank: open row + per-command earliest issue times.
class Bank {
 public:
  [[nodiscard]] bool row_open() const { return open_row_.has_value(); }
  [[nodiscard]] std::optional<std::uint32_t> open_row() const {
    return open_row_;
  }

  [[nodiscard]] bool can_activate(DramTick now) const {
    return !row_open() && now >= act_allowed_;
  }
  [[nodiscard]] bool can_precharge(DramTick now) const {
    return row_open() && now >= pre_allowed_;
  }
  [[nodiscard]] bool can_read(DramTick now, std::uint32_t row) const {
    return open_row_ == row && now >= rd_allowed_;
  }
  [[nodiscard]] bool can_write(DramTick now, std::uint32_t row) const {
    return open_row_ == row && now >= wr_allowed_;
  }

  void do_activate(DramTick now, std::uint32_t row, const DramTiming& t);
  void do_precharge(DramTick now, const DramTiming& t);
  void do_read(DramTick now, const DramTiming& t);
  void do_write(DramTick now, const DramTiming& t);
  /// Refresh closes the row and blocks the bank for tRFC.
  void do_refresh(DramTick now, const DramTiming& t);

 private:
  std::optional<std::uint32_t> open_row_;
  DramTick act_allowed_ = 0;
  DramTick pre_allowed_ = 0;
  DramTick rd_allowed_ = 0;
  DramTick wr_allowed_ = 0;
};

/// Bank-group level constraints (the _L timings).
struct BankGroupState {
  DramTick act_allowed = 0;  // tRRD_L
  DramTick rd_allowed = 0;   // tCCD_L
  DramTick wr_allowed = 0;   // tCCD_L

  void on_activate(DramTick now, const DramTiming& t);
  void on_read(DramTick now, const DramTiming& t);
  void on_write(DramTick now, const DramTiming& t);
};

/// Rank level constraints: tRRD_S, tFAW, write->read turnaround, refresh.
class RankState {
 public:
  [[nodiscard]] bool can_activate(DramTick now, const DramTiming& t) const;
  [[nodiscard]] bool refreshing(DramTick now) const {
    return now < refresh_until_;
  }
  [[nodiscard]] DramTick rd_allowed() const { return rd_allowed_; }

  void on_activate(DramTick now, const DramTiming& t);
  void on_write(DramTick now, const DramTiming& t);
  void begin_refresh(DramTick now, DramTick until) { refresh_until_ = until; (void)now; }

 private:
  DramTick act_allowed_ = 0;  // tRRD_S
  DramTick rd_allowed_ = 0;   // after WR: tWTR
  DramTick refresh_until_ = 0;
  std::deque<DramTick> faw_window_;  // timestamps of the last <=4 ACTs
};

/// Channel-level data-bus constraints: tCCD_S between same-type bursts and
/// read<->write turnaround.
struct ChannelBusState {
  DramTick rd_allowed = 0;
  DramTick wr_allowed = 0;
  DramTick busy_until = 0;  // last data beat on the bus

  void on_read(DramTick now, const DramTiming& t);
  void on_write(DramTick now, const DramTiming& t);
};

}  // namespace llamcat
