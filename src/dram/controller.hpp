// Per-channel FR-FCFS memory controller with open-page policy, write
// draining and all-bank refresh.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/config.hpp"
#include "common/math_util.hpp"
#include "common/stats.hpp"
#include "dram/bank.hpp"
#include "dram/timing.hpp"

namespace llamcat {

/// A line-granular request as seen by the DRAM system. `payload` is opaque to
/// the controller and returned with the completion callback (the LLC encodes
/// the owning slice / MSHR entry there).
struct DramRequest {
  Addr line_addr = 0;
  bool is_write = false;
  std::uint64_t payload = 0;
};

struct DramCompletion {
  Addr line_addr = 0;
  std::uint64_t payload = 0;
  DramTick finish_tick = 0;
};

/// One DDR5 channel: request queues + scheduler + bank state.
class DramController {
 public:
  DramController(const DramConfig& cfg, const DramTiming& timing,
                 const AddressMap& map, std::uint32_t channel_id);

  [[nodiscard]] bool can_accept_read() const {
    return read_q_.size() < cfg_.read_q_size;
  }
  [[nodiscard]] bool can_accept_write() const {
    return write_q_.size() < cfg_.write_q_size;
  }
  [[nodiscard]] bool can_accept(const DramRequest& r) const {
    return r.is_write ? can_accept_write() : can_accept_read();
  }

  /// Precondition: can_accept(r).
  void enqueue(const DramRequest& r, DramTick now);

  /// Advances one DRAM cycle; completed reads are appended to `done`.
  void tick(DramTick now, std::vector<DramCompletion>& done);

  [[nodiscard]] bool idle() const {
    return read_q_.empty() && write_q_.empty() && inflight_reads_.empty();
  }

  // ---- skip-ahead event hooks --------------------------------------------
  /// Unfinished read work (queued or awaiting data latency). Writes are
  /// excluded: they produce no completion events.
  [[nodiscard]] bool has_read_work() const {
    return !read_q_.empty() || !inflight_reads_.empty();
  }
  /// Conservative earliest DRAM tick at which this channel could deliver a
  /// read completion: the minimum in-flight finish tick, lower-bounded for
  /// queued reads by an issue at tick now+1 plus the fixed data latency.
  /// Returns DramTick max when there is no read work.
  [[nodiscard]] DramTick next_read_event(DramTick now) const {
    DramTick f = ~DramTick{0};
    if (!inflight_reads_.empty()) f = inflight_reads_.front().finish_tick;
    if (!read_q_.empty()) {
      f = std::min(f, now + 1 + timing_.read_latency() + cfg_.ctrl_latency);
    }
    return f;
  }

  /// Bulk-advances an idle channel by `ticks` DRAM ticks starting after
  /// `from`: samples queue occupancy (zero) and fires any refreshes that
  /// fall in the window, exactly as per-tick stepping would. Precondition:
  /// idle(). (The write-drain hysteresis needs no bulk handling - every
  /// real tick recomputes it from the queue occupancy before using it.)
  void skip_idle(DramTick from, std::uint64_t ticks);

  /// Hot-path counters (plain fields; converted to a StatSet on demand).
  struct Counters {
    std::uint64_t reads_enq = 0;
    std::uint64_t writes_enq = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;
    std::uint64_t row_conflicts = 0;
    std::uint64_t refreshes = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] StatSet stats() const;
  /// Time-weighted average read-queue occupancy.
  [[nodiscard]] double avg_read_q() const { return read_q_occ_.mean(); }

 private:
  struct Entry {
    DramRequest req;
    DramCoord coord;
    DramTick arrival = 0;
    bool activated_for = false;  // an ACT was issued on behalf of this entry
  };

  Bank& bank_of(const DramCoord& c) {
    return banks_[(c.rank * cfg_.bankgroups_per_rank + c.bankgroup) *
                      cfg_.banks_per_bankgroup +
                  c.bank];
  }
  BankGroupState& bg_of(const DramCoord& c) {
    return bankgroups_[c.rank * cfg_.bankgroups_per_rank + c.bankgroup];
  }

  bool maybe_refresh(DramTick now);
  /// All-bank refresh of the round-robin rank, issued at tick `now`.
  void do_refresh_at(DramTick now);
  /// Returns true if a command was issued this cycle.
  bool schedule_from(std::vector<Entry>& q, bool is_write, DramTick now,
                     std::vector<DramCompletion>& done);
  bool ready_for_data(const Entry& e, bool is_write, DramTick now);
  void issue_data(Entry& e, bool is_write, DramTick now,
                  std::vector<DramCompletion>& done);

  const DramConfig cfg_;
  const DramTiming timing_;
  const AddressMap map_;
  const std::uint32_t channel_id_;

  std::vector<Bank> banks_;
  std::vector<BankGroupState> bankgroups_;
  std::vector<RankState> ranks_;
  ChannelBusState bus_;

  std::vector<Entry> read_q_;
  std::vector<Entry> write_q_;
  // Reads awaiting their fixed data latency. One data command issues per
  // tick and the latency is constant, so finish ticks are monotonic:
  // delivery and next_read_event only ever look at the front.
  std::deque<DramCompletion> inflight_reads_;
  bool draining_writes_ = false;
  DramTick next_refresh_ = 0;
  std::uint32_t refresh_rank_rr_ = 0;

  Counters counters_;
  OccupancyAverage read_q_occ_;
};

}  // namespace llamcat
