// Multi-channel DRAM system living in its own clock domain. The LLC pushes
// line requests in core-cycle time; completions come back through a callback,
// also in core-cycle time.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/math_util.hpp"
#include "common/stats.hpp"
#include "dram/controller.hpp"

namespace llamcat {

class DramSystem {
 public:
  explicit DramSystem(const DramConfig& cfg, double core_hz);

  /// Channel that will serve `line_addr`.
  [[nodiscard]] std::uint32_t channel_of(Addr line_addr) const {
    return map_.decode(line_addr).channel;
  }

  [[nodiscard]] bool can_accept(const DramRequest& r) const {
    return channels_[channel_of(r.line_addr)]->can_accept(r);
  }

  /// Precondition: can_accept(r).
  void enqueue(const DramRequest& r);

  /// Advances the DRAM domain by one *core* cycle (49:40 divider for the
  /// Table 5 clocks) and invokes `on_read_complete` for finished reads.
  void tick_core_cycle();

  std::function<void(const DramCompletion&)> on_read_complete;

  [[nodiscard]] bool idle() const;

  /// Aggregated stats across channels, plus derived bandwidth numbers.
  [[nodiscard]] StatSet stats() const;
  [[nodiscard]] DramTick now() const { return now_; }
  /// Total data moved so far (reads + writes), in bytes.
  [[nodiscard]] std::uint64_t bytes_transferred() const;
  /// Achievable peak bandwidth of the configuration in GB/s.
  [[nodiscard]] double peak_gbps() const;

 private:
  DramConfig cfg_;
  DramTiming timing_;
  AddressMap map_;
  ClockDivider divider_;
  DramTick now_ = 0;
  std::vector<std::unique_ptr<DramController>> channels_;
  std::vector<DramCompletion> done_buf_;
};

}  // namespace llamcat
