// Multi-channel DRAM system living in its own clock domain. The LLC pushes
// line requests in core-cycle time; completions come back through a callback,
// also in core-cycle time.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/math_util.hpp"
#include "common/stats.hpp"
#include "dram/controller.hpp"

namespace llamcat {

class DramSystem {
 public:
  explicit DramSystem(const DramConfig& cfg, double core_hz);

  /// Channel that will serve `line_addr`.
  [[nodiscard]] std::uint32_t channel_of(Addr line_addr) const {
    return map_.decode(line_addr).channel;
  }

  [[nodiscard]] bool can_accept(const DramRequest& r) const {
    return channels_[channel_of(r.line_addr)]->can_accept(r);
  }

  /// Precondition: can_accept(r).
  void enqueue(const DramRequest& r);

  /// Advances the DRAM domain by one *core* cycle (49:40 divider for the
  /// Table 5 clocks) and invokes `on_read_complete` for finished reads.
  void tick_core_cycle();

  std::function<void(const DramCompletion&)> on_read_complete;

  [[nodiscard]] bool idle() const;

  // ---- skip-ahead event hooks --------------------------------------------
  /// Any channel holds unfinished read work (reads produce completion
  /// events; writes do not).
  [[nodiscard]] bool has_read_work() const {
    for (const auto& ch : channels_) {
      if (ch->has_read_work()) return true;
    }
    return false;
  }
  /// Conservative earliest DRAM tick at which any channel could deliver a
  /// read completion (DramTick max when no read work exists). The DRAM
  /// domain advances at most one tick per core cycle, so completions
  /// cannot fire before core cycle now + (next_read_event() - now()).
  [[nodiscard]] DramTick next_read_event() const {
    DramTick f = ~DramTick{0};
    for (const auto& ch : channels_) {
      f = std::min(f, ch->next_read_event(now_));
    }
    return f;
  }

  /// Bulk-advances a fully idle DRAM system by `core_cycles` core cycles:
  /// the clock divider moves in closed form and each channel replays only
  /// its refresh landmarks. Exactly equivalent to core_cycles calls of
  /// tick_core_cycle() when idle() (no completions can fire).
  void skip_idle_cycles(std::uint64_t core_cycles) {
    const std::uint64_t ticks = divider_.advance_bulk(core_cycles);
    if (ticks == 0) return;
    for (auto& ch : channels_) ch->skip_idle(now_, ticks);
    now_ += ticks;
  }

  /// Aggregated stats across channels, plus derived bandwidth numbers.
  [[nodiscard]] StatSet stats() const;
  [[nodiscard]] DramTick now() const { return now_; }
  /// Total data moved so far (reads + writes), in bytes.
  [[nodiscard]] std::uint64_t bytes_transferred() const;
  /// Achievable peak bandwidth of the configuration in GB/s.
  [[nodiscard]] double peak_gbps() const;

 private:
  DramConfig cfg_;
  DramTiming timing_;
  AddressMap map_;
  ClockDivider divider_;
  DramTick now_ = 0;
  std::vector<std::unique_ptr<DramController>> channels_;
  std::vector<DramCompletion> done_buf_;
};

}  // namespace llamcat
