// Analytical area model for the CAT hardware additions (paper §6.1).
//
// Substitution note: the paper synthesizes a Chisel implementation with
// Synopsys DC on the 15nm NanGate open cell library at 1.96 GHz and reports
//   arbiter (incl. request queue) : 7312.93 um^2
//   hit buffer                    : 3088.61 um^2
// No synthesis toolchain is available offline, so this model estimates area
// structurally (storage bits, CAM comparators, counters, selection logic)
// with per-bit constants in the range of 15nm standard cells, plus a fitted
// layout/control overhead factor. Absolute accuracy is not needed: no
// speedup result depends on these numbers; the model exists to reproduce
// the order of magnitude and the arbiter:hit-buffer ratio of Table §6.1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"

namespace llamcat {

struct AreaParams {
  double flop_um2 = 1.8;        // DFF incl. local clocking, 15nm
  double cam_bit_um2 = 1.0;     // XNOR+AND per compared bit
  double cmp_bit_um2 = 0.9;     // magnitude comparator per bit
  double adder_bit_um2 = 1.2;   // incrementer per counter bit
  double overhead = 1.15;       // control / mux / layout overhead (fitted)
  std::uint32_t addr_bits = 34; // physical line-address tag width
};

struct AreaBreakdown {
  struct Item {
    std::string name;
    double um2 = 0.0;
  };
  std::vector<Item> items;
  double total_um2 = 0.0;

  void add(std::string name, double um2) {
    items.push_back({std::move(name), um2});
    total_um2 += um2;
  }
};

/// Area of the hit buffer: `depth` CAM entries of addr_bits (+valid).
AreaBreakdown hit_buffer_area(const ArbConfig& arb,
                              const AreaParams& p = AreaParams{});

/// Area of the arbiter, including the request queue (the paper counts the
/// queue as part of the arbiter since they are logically indivisible).
AreaBreakdown arbiter_area(const LlcConfig& llc, const ArbConfig& arb,
                           std::uint32_t num_cores,
                           const AreaParams& p = AreaParams{});

}  // namespace llamcat
