#include "hwcost/area_model.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace llamcat {

AreaBreakdown hit_buffer_area(const ArbConfig& arb, const AreaParams& p) {
  AreaBreakdown a;
  const double bits_per_entry = p.addr_bits + 1;  // tag + valid
  // Storage flops.
  a.add("storage", arb.hit_buffer_depth * bits_per_entry * p.flop_um2);
  // CAM match logic: every entry compares against the probe address.
  a.add("cam_match", arb.hit_buffer_depth * p.addr_bits * p.cam_bit_um2);
  // FIFO head/tail pointers.
  const double ptr_bits = 2.0 * (log2_floor(arb.hit_buffer_depth) + 1);
  a.add("pointers", ptr_bits * p.flop_um2);
  a.total_um2 *= p.overhead;
  return a;
}

AreaBreakdown arbiter_area(const LlcConfig& llc, const ArbConfig& arb,
                           std::uint32_t num_cores, const AreaParams& p) {
  AreaBreakdown a;
  const double core_bits = log2_floor(num_cores) + 1;

  // Request queue storage (addr + core id + type + age tag).
  const double req_bits = p.addr_bits + core_bits + 1 + 8;
  a.add("req_queue", llc.req_q_size * req_bits * p.flop_um2);

  // Progress counters, one per core (§4.1).
  const double counter_bits = 24;
  a.add("progress_counters",
        num_cores * counter_bits * (p.flop_um2 + p.adder_bit_um2));

  // sent_reqs FIFO (addr + spec bit + timestamp) (§4.3.1).
  const double sent_bits = p.addr_bits + 1 + 4;
  a.add("sent_reqs", arb.sent_reqs_depth * sent_bits * p.flop_um2);

  // Speculation lookup: each queued request probes the combined list
  // (MSHR snapshot entries + sent_reqs) - one probe port is time-shared,
  // realized as a CAM over (mshr entries + sent_reqs depth) entries.
  const double spec_entries = llc.mshr_entries + arb.sent_reqs_depth;
  a.add("spec_cam", spec_entries * p.addr_bits * p.cam_bit_um2 *
                        2.0 /* dual query: hit_buffer + MSHR sections */);

  // Selection tree: (req_q_size - 1) comparators over (class, progress).
  const double sel_bits = 2 + counter_bits;
  a.add("select_tree", (llc.req_q_size - 1) * sel_bits * p.cmp_bit_um2 *
                           std::max(1.0, std::log2(llc.req_q_size)));

  a.total_um2 *= p.overhead;
  return a;
}

}  // namespace llamcat
