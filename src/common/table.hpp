// ASCII table / CSV emission for benchmark reports.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace llamcat {

/// Column-aligned text table with an optional title, used by every bench
/// binary to print paper-style rows.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cols) { header_ = std::move(cols); }
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Formats a double with `prec` digits after the point.
  static std::string num(double v, int prec = 3);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace llamcat
