#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace llamcat {

std::string TextTable::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << "\n";
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace llamcat
