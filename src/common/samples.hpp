// Sampling records exchanged between the cores, the LLC and the throttling
// controllers (paper §2.5/§4.2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace llamcat {

/// Per-core counters over one sub-period: C_mem counts cycles where every
/// active thread block waits on memory, C_idle cycles with no work at all.
struct CoreSample {
  Cycle c_mem = 0;
  Cycle c_idle = 0;
};

/// Observed execution of a core's first thread block (consumed by LCS).
struct FirstTbReport {
  Cycle duration = 0;
  double mem_stall_frac = 0.0;  // C_mem during the first TB / duration
};

/// Global state over one sampling period: t_cs is the proportion of cache
/// stall cycles (Table 3), progress the per-core served-request counters.
struct GlobalSample {
  double t_cs = 0.0;
  std::vector<std::uint64_t> progress;
};

}  // namespace llamcat
