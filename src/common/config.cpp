#include "common/config.hpp"

#include <sstream>

#include "common/math_util.hpp"

namespace llamcat {

std::string to_string(ArbPolicy p) {
  switch (p) {
    case ArbPolicy::kFcfs: return "fcfs";
    case ArbPolicy::kBalanced: return "B";
    case ArbPolicy::kMa: return "MA";
    case ArbPolicy::kBma: return "BMA";
    case ArbPolicy::kCobrra: return "cobrra";
    case ArbPolicy::kMrpb: return "mrpb";
    case ArbPolicy::kOracle: return "oracle";
    case ArbPolicy::kRandom: return "random";
  }
  return "?";
}

std::string to_string(BypassPolicy p) {
  switch (p) {
    case BypassPolicy::kNone: return "none";
    case BypassPolicy::kAll: return "all";
    case BypassPolicy::kProbabilistic: return "probabilistic";
    case BypassPolicy::kReuseHistory: return "reuse-history";
  }
  return "?";
}

std::string to_string(ReplPolicy p) {
  switch (p) {
    case ReplPolicy::kLru: return "lru";
    case ReplPolicy::kTreePlru: return "tree-plru";
    case ReplPolicy::kRandom: return "random";
    case ReplPolicy::kSrrip: return "srrip";
    case ReplPolicy::kFifo: return "fifo";
  }
  return "?";
}

std::string to_string(InsertPolicy p) {
  switch (p) {
    case InsertPolicy::kMru: return "mru";
    case InsertPolicy::kStreaming: return "streaming";
  }
  return "?";
}

std::string to_string(RespArbPolicy p) {
  switch (p) {
    case RespArbPolicy::kResponseFirst: return "response-first";
    case RespArbPolicy::kRequestFirst: return "request-first";
  }
  return "?";
}

std::string to_string(ThrottlePolicy p) {
  switch (p) {
    case ThrottlePolicy::kNone: return "unopt";
    case ThrottlePolicy::kDyncta: return "dyncta";
    case ThrottlePolicy::kLcs: return "lcs";
    case ThrottlePolicy::kDynMg: return "dynmg";
  }
  return "?";
}

std::string to_string(RequestDispatch d) {
  switch (d) {
    case RequestDispatch::kShared: return "shared";
    case RequestDispatch::kInterleave: return "interleave";
    case RequestDispatch::kPartitioned: return "partitioned";
  }
  return "?";
}

std::string to_string(ExecutionMode m) {
  switch (m) {
    case ExecutionMode::kIndependent: return "independent";
    case ExecutionMode::kCoScheduled: return "coscheduled";
    case ExecutionMode::kContinuous: return "continuous";
  }
  return "?";
}

std::string to_string(AdmitPolicy p) {
  switch (p) {
    case AdmitPolicy::kNone: return "none";
    case AdmitPolicy::kFcfs: return "fcfs";
    case AdmitPolicy::kShortestRemaining: return "srf";
  }
  return "?";
}

std::string to_string(KvEvictPolicy p) {
  switch (p) {
    case KvEvictPolicy::kNone: return "none";
    case KvEvictPolicy::kColdBlocks: return "cold-blocks";
  }
  return "?";
}

SimConfig SimConfig::table5() {
  SimConfig cfg;  // defaults in the struct definitions *are* Table 5
  cfg.validate();
  return cfg;
}

void SimConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("SimConfig: " + msg);
  };
  if (core.num_cores == 0) fail("num_cores == 0");
  if (core.num_inst_windows == 0) fail("num_inst_windows == 0");
  if (core.inst_window_depth == 0) fail("inst_window_depth == 0");
  if (!is_pow2(l1.size_bytes) || l1.size_bytes % (l1.assoc * kLineBytes) != 0)
    fail("L1 geometry not a power-of-two set count");
  if (!is_pow2(llc.num_slices)) fail("num_slices must be a power of two");
  const std::uint64_t llc_sets = llc.size_bytes / (llc.assoc * kLineBytes);
  if (llc_sets % llc.num_slices != 0) fail("LLC sets not divisible by slices");
  if (llc.mshr_entries == 0 || llc.mshr_targets == 0) fail("MSHR dims == 0");
  if (llc.req_q_size == 0 || llc.resp_q_size == 0) fail("LLC queue size == 0");
  if (llc.bypass.keep_probability < 0.0 || llc.bypass.keep_probability > 1.0)
    fail("bypass keep_probability outside [0, 1]");
  if (llc.bypass.policy == BypassPolicy::kReuseHistory &&
      llc.bypass.table_entries == 0)
    fail("bypass table_entries == 0");
  if (llc.bypass.region_log2 < 6 || llc.bypass.region_log2 > 30)
    fail("bypass region_log2 outside [6, 30]");
  if (llc.bypass.keep_threshold > 3)
    fail("bypass keep_threshold > 3 (2-bit counters)");
  if (dram.num_channels == 0 || !is_pow2(dram.num_channels))
    fail("channels must be a power of two");
  if (!is_pow2(dram.ranks_per_channel) || !is_pow2(dram.bankgroups_per_rank) ||
      !is_pow2(dram.banks_per_bankgroup) || !is_pow2(dram.rows_per_bank))
    fail("DRAM geometry must be powers of two");
  if (dram.row_bytes % kLineBytes != 0) fail("row_bytes not line-aligned");
  if (dram.dram_hz <= 0 || core_hz <= 0) fail("clock <= 0");
  if (dram.dram_hz > core_hz) fail("model assumes dram_hz <= core_hz");
  if (throttle.max_gear > 4) fail("max_gear > 4 (Table 1 defines 5 gears)");
  if (!(throttle.tcs_low < throttle.tcs_normal &&
        throttle.tcs_normal < throttle.tcs_high && throttle.tcs_high <= 1.0))
    fail("t_cs thresholds must be increasing and <= 1");
  if (throttle.sub_period == 0 || throttle.sampling_period == 0)
    fail("throttle periods == 0");
  if (throttle.sampling_period % throttle.sub_period != 0)
    fail("sampling_period must be a multiple of sub_period");
}

std::string SimConfig::summary() const {
  std::ostringstream os;
  os << core.num_cores << "c/" << (llc.size_bytes >> 20) << "MB/"
     << llc.num_slices << "sl/arb=" << to_string(arb.policy)
     << "/thr=" << to_string(throttle.policy);
  return os.str();
}

}  // namespace llamcat
