#include "common/config.hpp"

#include <sstream>

#include "common/math_util.hpp"

namespace llamcat {

std::string to_string(ArbPolicy p) {
  switch (p) {
    case ArbPolicy::kFcfs: return "fcfs";
    case ArbPolicy::kBalanced: return "B";
    case ArbPolicy::kMa: return "MA";
    case ArbPolicy::kBma: return "BMA";
    case ArbPolicy::kCobrra: return "cobrra";
    case ArbPolicy::kMrpb: return "mrpb";
    case ArbPolicy::kOracle: return "oracle";
    case ArbPolicy::kRandom: return "random";
  }
  return "?";
}

std::string to_string(BypassPolicy p) {
  switch (p) {
    case BypassPolicy::kNone: return "none";
    case BypassPolicy::kAll: return "all";
    case BypassPolicy::kProbabilistic: return "probabilistic";
    case BypassPolicy::kReuseHistory: return "reuse-history";
  }
  return "?";
}

std::string to_string(ReplPolicy p) {
  switch (p) {
    case ReplPolicy::kLru: return "lru";
    case ReplPolicy::kTreePlru: return "tree-plru";
    case ReplPolicy::kRandom: return "random";
    case ReplPolicy::kSrrip: return "srrip";
    case ReplPolicy::kFifo: return "fifo";
  }
  return "?";
}

std::string to_string(InsertPolicy p) {
  switch (p) {
    case InsertPolicy::kMru: return "mru";
    case InsertPolicy::kStreaming: return "streaming";
  }
  return "?";
}

std::string to_string(RespArbPolicy p) {
  switch (p) {
    case RespArbPolicy::kResponseFirst: return "response-first";
    case RespArbPolicy::kRequestFirst: return "request-first";
  }
  return "?";
}

std::string to_string(ThrottlePolicy p) {
  switch (p) {
    case ThrottlePolicy::kNone: return "unopt";
    case ThrottlePolicy::kDyncta: return "dyncta";
    case ThrottlePolicy::kLcs: return "lcs";
    case ThrottlePolicy::kDynMg: return "dynmg";
  }
  return "?";
}

std::string to_string(RequestDispatch d) {
  switch (d) {
    case RequestDispatch::kShared: return "shared";
    case RequestDispatch::kInterleave: return "interleave";
    case RequestDispatch::kPartitioned: return "partitioned";
  }
  return "?";
}

std::string to_string(ExecutionMode m) {
  switch (m) {
    case ExecutionMode::kIndependent: return "independent";
    case ExecutionMode::kCoScheduled: return "coscheduled";
    case ExecutionMode::kContinuous: return "continuous";
  }
  return "?";
}

std::string to_string(AdmitPolicy p) {
  switch (p) {
    case AdmitPolicy::kNone: return "none";
    case AdmitPolicy::kFcfs: return "fcfs";
    case AdmitPolicy::kShortestRemaining: return "srf";
  }
  return "?";
}

std::string to_string(KvEvictPolicy p) {
  switch (p) {
    case KvEvictPolicy::kNone: return "none";
    case KvEvictPolicy::kColdBlocks: return "cold-blocks";
  }
  return "?";
}

std::string to_string(TrafficProcess p) {
  switch (p) {
    case TrafficProcess::kPoisson: return "poisson";
    case TrafficProcess::kBursty: return "bursty";
    case TrafficProcess::kDiurnal: return "diurnal";
  }
  return "?";
}

std::string to_string(TrafficDist d) {
  switch (d) {
    case TrafficDist::kUniform: return "uniform";
    case TrafficDist::kLognormal: return "lognormal";
  }
  return "?";
}

SimConfig SimConfig::table5() {
  SimConfig cfg;  // defaults in the struct definitions *are* Table 5
  cfg.validate();
  return cfg;
}

// Per-block validation: each config struct owns its internal consistency
// checks (the llamcat_lint `config-validate` rule pins that every *Config
// declares one); SimConfig::validate() composes them and keeps only the
// cross-block constraints.

void CoreConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("CoreConfig: " + msg);
  };
  if (num_cores == 0) fail("num_cores == 0");
  if (num_inst_windows == 0) fail("num_inst_windows == 0");
  if (inst_window_depth == 0) fail("inst_window_depth == 0");
}

void L1Config::validate() const {
  if (!is_pow2(size_bytes) || size_bytes % (assoc * kLineBytes) != 0) {
    throw std::invalid_argument(
        "L1Config: L1 geometry not a power-of-two set count");
  }
}

void BypassConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("BypassConfig: " + msg);
  };
  if (keep_probability < 0.0 || keep_probability > 1.0)
    fail("keep_probability outside [0, 1]");
  if (policy == BypassPolicy::kReuseHistory && table_entries == 0)
    fail("table_entries == 0");
  if (region_log2 < 6 || region_log2 > 30)
    fail("region_log2 outside [6, 30]");
  if (keep_threshold > 3) fail("keep_threshold > 3 (2-bit counters)");
}

void LlcConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("LlcConfig: " + msg);
  };
  if (!is_pow2(num_slices)) fail("num_slices must be a power of two");
  const std::uint64_t sets = size_bytes / (assoc * kLineBytes);
  if (sets % num_slices != 0) fail("LLC sets not divisible by slices");
  if (mshr_entries == 0 || mshr_targets == 0) fail("MSHR dims == 0");
  if (req_q_size == 0 || resp_q_size == 0) fail("LLC queue size == 0");
  bypass.validate();
}

void ArbConfig::validate() const {
  // Depth 0 disables the corresponding FIFO, which every policy tolerates;
  // the hook exists so a future constraint fails loudly here.
}

void DramConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("DramConfig: " + msg);
  };
  if (num_channels == 0 || !is_pow2(num_channels))
    fail("channels must be a power of two");
  if (!is_pow2(ranks_per_channel) || !is_pow2(bankgroups_per_rank) ||
      !is_pow2(banks_per_bankgroup) || !is_pow2(rows_per_bank))
    fail("DRAM geometry must be powers of two");
  if (row_bytes % kLineBytes != 0) fail("row_bytes not line-aligned");
  if (dram_hz <= 0) fail("clock <= 0");
}

void ThrottleConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("ThrottleConfig: " + msg);
  };
  if (max_gear > 4) fail("max_gear > 4 (Table 1 defines 5 gears)");
  if (!(tcs_low < tcs_normal && tcs_normal < tcs_high && tcs_high <= 1.0))
    fail("t_cs thresholds must be increasing and <= 1");
  if (sub_period == 0 || sampling_period == 0) fail("throttle periods == 0");
  if (sampling_period % sub_period != 0)
    fail("sampling_period must be a multiple of sub_period");
}

void SimConfig::validate() const {
  core.validate();
  l1.validate();
  llc.validate();
  arb.validate();
  noc.validate();
  dram.validate();
  throttle.validate();
  if (core_hz <= 0) throw std::invalid_argument("SimConfig: clock <= 0");
  if (dram.dram_hz > core_hz)
    throw std::invalid_argument("SimConfig: model assumes dram_hz <= core_hz");
}

std::string SimConfig::summary() const {
  std::ostringstream os;
  os << core.num_cores << "c/" << (llc.size_bytes >> 20) << "MB/"
     << llc.num_slices << "sl/arb=" << to_string(arb.policy)
     << "/thr=" << to_string(throttle.policy);
  return os.str();
}

}  // namespace llamcat
