// Annotated locking primitives: llamcat::Mutex / MutexLock / CondVar.
//
// libstdc++'s std::mutex carries no thread-safety attributes, so members
// can't be GUARDED_BY a std::mutex - clang's analysis needs a type marked
// CAPABILITY. These thin wrappers add the annotations and nothing else:
// same storage, same calls, zero-cost under gcc. The llamcat_lint
// `raw-mutex` rule pins that simulation code uses these instead of the
// std:: primitives, so every new piece of shared state lands inside the
// machine-checked contract.
//
// CondVar::wait(Mutex&) REQUIRES the mutex, matching the standard's
// precondition. Predicate re-check loops stay at the call site
// (`while (!pred) cv.wait(mu);`) rather than taking a lambda - clang
// analyzes lambda bodies as separate functions, so a predicate lambda
// reading GUARDED_BY state would warn even though the mutex is held.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace llamcat {

/// std::mutex with the CAPABILITY annotation, so members can be
/// GUARDED_BY(mu) and functions can REQUIRES(mu).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

  /// The wrapped primitive, for CondVar's adopt/release dance only.
  // lint:allow(raw-mutex): exposing the wrapped primitive is this class's job
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;  // lint:allow(raw-mutex): the one wrapped instance every other file locks through
};

/// RAII lock for a Mutex (std::lock_guard with SCOPED_CAPABILITY).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. wait() REQUIRES the mutex held, exactly
/// like the std::condition_variable precondition it forwards to.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Callers loop on their predicate as usual.
  void wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);  // lint:allow(raw-mutex): adopt/release shim inside the wrapper itself
    cv_.wait(lk);
    lk.release();  // the caller still logically holds mu
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // lint:allow(raw-mutex): the one wrapped instance every other file waits through
};

}  // namespace llamcat
