#include "common/stats.hpp"

#include <iomanip>

namespace llamcat {

void StatSet::merge(const StatSet& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
  for (const auto& [k, v] : other.reals_) reals_[k] = v;
}

void StatSet::print(std::ostream& os, const std::string& prefix) const {
  for (const auto& [k, v] : counters_) os << prefix << k << " = " << v << "\n";
  for (const auto& [k, v] : reals_)
    os << prefix << k << " = " << std::fixed << std::setprecision(4) << v
       << "\n";
}

}  // namespace llamcat
