// Simulated-system configuration. `SimConfig::table5()` reproduces the
// paper's Table 5 setup exactly; every knob the paper sweeps is a field here.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace llamcat {

// ---------------------------------------------------------------------------
// Cache policy vocabulary (paper §5: "Add cache policies like allocate-on-
// fill, write-no-allocate, write-through, while originally Ramulator2 only
// supports allocate-on-miss, write-allocate, write-back").
// ---------------------------------------------------------------------------

enum class WriteHitPolicy : std::uint8_t { kWriteBack, kWriteThrough };
enum class WriteMissPolicy : std::uint8_t { kWriteAllocate, kWriteNoAllocate };
/// When a missing line is installed: on miss issue (reserving early) or on
/// fill return (paper's LLC and L1 both use allocate-on-fill).
enum class FillPolicy : std::uint8_t { kAllocOnMiss, kAllocOnFill };
/// Insertion position for newly filled lines. kStreaming inserts at LRU so
/// single-use streaming data (the K tensor) does not evict reused data.
/// Under kSrrip replacement, kMru inserts at RRPV=2 ("long" re-reference)
/// and kStreaming at RRPV=3 ("distant").
enum class InsertPolicy : std::uint8_t { kMru, kStreaming };
/// kSrrip is 2-bit static RRIP; kFifo evicts in insertion order (touch is
/// a no-op, insertion policy is ignored).
enum class ReplPolicy : std::uint8_t {
  kLru,
  kTreePlru,
  kRandom,
  kSrrip,
  kFifo,
};

/// Fill-bypass policy for the LLC slice's bypass manager (paper Fig 4
/// step 5; disabled - kNone - throughout the paper's evaluation, §3.2).
enum class BypassPolicy : std::uint8_t {
  kNone,           // install every fill (the paper's setting)
  kAll,            // never install (LLC degenerates to a merge buffer)
  kProbabilistic,  // install with fixed probability (bimodal insertion)
  kReuseHistory,   // per-region reuse predictor (COBRRA-flavored)
};

struct BypassConfig {
  BypassPolicy policy = BypassPolicy::kNone;
  /// kProbabilistic: probability a fill is KEPT (not bypassed).
  double keep_probability = 0.5;
  /// kReuseHistory: direct-mapped table of 2-bit reuse counters.
  std::uint32_t table_entries = 256;
  /// Region granularity in bytes (log2): lines within one region share a
  /// counter. 12 = 4 KiB regions.
  std::uint32_t region_log2 = 12;
  /// Minimum counter value for fills from the region to be kept.
  std::uint32_t keep_threshold = 1;

  /// Throws std::invalid_argument when fields are inconsistent.
  void validate() const;
};

/// LLC request-selection policy (paper §4.1/§4.3 + baselines §6.2.3,
/// plus related-work/ablation arbiters, §7.3).
enum class ArbPolicy : std::uint8_t {
  kFcfs,      // default: first-come first-served
  kBalanced,  // "B": min progress counter of requester
  kMa,        // "MA": speculated hit > MSHR-hit > miss, FCFS tie-break
  kBma,       // "BMA": MA with balanced tie-break
  kCobrra,    // baseline [3]: FCFS request pick + its req/resp arbitration
  kMrpb,      // related work [9]: per-core queue prioritization (burst
              // drain of one requester's stream to preserve its locality)
  kOracle,    // ablation: BMA with a ground-truth tag probe instead of the
              // hit_buffer speculation (upper bound on MA prediction)
  kRandom,    // control: uniformly random pick (fairness without intent)
};

/// Request-vs-response arbitration for the shared storage port (paper §3.3).
enum class RespArbPolicy : std::uint8_t {
  kResponseFirst,  // serve a pending response whenever one exists (default)
  kRequestFirst,   // requests win until the response queue is full
};

/// Thread-block dispatch scheme (paper §5). The paper generates one trace
/// file per core (Timeloop maps the parallel H/G dimensions spatially
/// across cores, so each core owns a contiguous chunk of the (h,g,l-tile)
/// iteration space) and adds slow->fast redistribution. kStaticBlocked
/// reproduces that; the other two are kept for ablation studies.
enum class TbDispatch : std::uint8_t {
  kStaticBlocked,        // contiguous per-core chunks + stealing (paper)
  kPartitionedStealing,  // wave-preserving round-robin + stealing
  kGlobalQueue,          // dynamic single queue (idealized scheduler)
};

/// Request-aware dispatch for fused multi-request sources (CompositeTbSource
/// tags each TbDesc with its serving request). Controls how co-resident
/// requests share the cores; single-request sources behave identically
/// under every mode.
enum class RequestDispatch : std::uint8_t {
  kShared,        // request-blind: TBs dealt in source order (default)
  kInterleave,    // dispatch order round-robins across requests, so every
                  // core's queue alternates requests (max LLC mixing)
  kPartitioned,   // cores split into contiguous per-request groups; a
                  // request's TBs stay on its own cores (stealing included)
};

/// How the scenario layer executes a multi-request decode batch: every
/// operator in its own private System with stats summed (kIndependent, the
/// optimistic no-contention bound), one fused System per layer-stage wave
/// in which co-resident requests contend for the shared LLC (kCoScheduled),
/// or one long-lived streaming System per decode pass in which each request
/// flows into its next operator the moment its own previous one completes
/// and new requests are admitted mid-pass by arrival cycle (kContinuous,
/// vLLM-style iteration-level batching). Lives in the shared vocabulary
/// header so the CLI option layer does not depend upward on the scenario
/// layer.
enum class ExecutionMode : std::uint8_t {
  kIndependent,
  kCoScheduled,
  kContinuous,
};

/// Admission discipline of the continuous engine's serving-policy layer
/// (scenario/serving.hpp). kNone admits every arrival unconditionally the
/// moment its clock strikes (the raw streaming engine); the queueing
/// disciplines hold arrivals in a serving queue while the resident KV
/// footprint exceeds the configured budget and decide who is admitted first
/// when capacity frees. Lives in the shared vocabulary header for the same
/// layering reason as ExecutionMode (the CLI option layer must not depend
/// upward on the scenario layer).
enum class AdmitPolicy : std::uint8_t {
  kNone,               // unconditional admission (no queue, no budget)
  kFcfs,               // queue drained in arrival order (head-of-line blocks)
  kShortestRemaining,  // queue drained by least remaining work first
};

/// Block-granular KV eviction mode of the serving-policy layer
/// (scenario/serving.hpp + scenario/kv_pager.hpp). kNone keeps a preempted
/// request's KV fully resident (PR 4 semantics: preemption relieves
/// cache/compute contention but never budget pressure). kColdBlocks swaps
/// the preempted request's cold KV blocks out to a modeled DRAM/host tier,
/// freeing their budget bytes immediately; resume charges a refetch cost
/// before the request re-enters its next stage (vLLM/LMCache-style paging).
/// Lives in the shared vocabulary header for the same layering reason as
/// AdmitPolicy (the CLI option layer must not depend upward on the
/// scenario layer).
enum class KvEvictPolicy : std::uint8_t {
  kNone,        // preempted KV stays resident (exact stage-boundary resume)
  kColdBlocks,  // swap cold blocks to the host tier, refetch at resume
};

/// Arrival process of the open-loop traffic generator
/// (scenario/traffic.hpp). kPoisson draws i.i.d. exponential inter-arrival
/// gaps; kBursty alternates dense on-phases with long off-gaps (on-off /
/// MMPP-flavored); kDiurnal modulates the Poisson rate with a
/// piecewise-linear day-cycle multiplier. Lives in the shared vocabulary
/// header for the same layering reason as AdmitPolicy (the CLI option
/// layer must not depend upward on the scenario layer).
enum class TrafficProcess : std::uint8_t {
  kPoisson,
  kBursty,
  kDiurnal,
};

/// Sampling distribution for per-request sizes (sequence length, decode
/// steps) in the traffic generator. kUniform draws uniformly over the
/// configured [min, max]; kLognormal draws a clamped lognormal whose
/// log-space median is the geometric midpoint of the range (the heavy-tail
/// shape real seq-len mixes show).
enum class TrafficDist : std::uint8_t {
  kUniform,
  kLognormal,
};

/// Thread-throttling controller (paper §4.2 + baselines §6.2.3).
enum class ThrottlePolicy : std::uint8_t {
  kNone,    // "unoptimized"
  kDyncta,  // baseline [11]: per-core DYNCTA on all cores
  kLcs,     // baseline [15]: fix max_tb after observing the first TB
  kDynMg,   // ours: two-level dynamic multi-gear throttling
};

std::string to_string(ArbPolicy p);
std::string to_string(RespArbPolicy p);
std::string to_string(ThrottlePolicy p);
std::string to_string(RequestDispatch d);
std::string to_string(ExecutionMode m);
std::string to_string(AdmitPolicy p);
std::string to_string(KvEvictPolicy p);
std::string to_string(TrafficProcess p);
std::string to_string(TrafficDist d);
std::string to_string(BypassPolicy p);
std::string to_string(ReplPolicy p);
std::string to_string(InsertPolicy p);

// ---------------------------------------------------------------------------
// Per-subsystem configuration blocks.
// ---------------------------------------------------------------------------

struct CoreConfig {
  std::uint32_t num_cores = 16;
  std::uint32_t num_inst_windows = 4;    // TB slots per core
  std::uint32_t inst_window_depth = 128; // in-flight instructions per window
  std::uint32_t issue_width = 1;         // instructions issued per cycle
  std::uint32_t retire_width = 4;        // completions retired per cycle
  std::uint32_t vector_lanes = 128;      // elements per vector instruction
  std::uint32_t store_buffer_size = 64;  // posted write-through stores
  TbDispatch tb_dispatch = TbDispatch::kStaticBlocked;
  RequestDispatch request_dispatch = RequestDispatch::kShared;

  /// Throws std::invalid_argument when fields are inconsistent.
  void validate() const;
};

struct L1Config {
  std::uint64_t size_bytes = 64 * 1024;
  std::uint32_t assoc = 8;
  std::uint32_t latency = 1;  // hit latency in cycles
  /// Outstanding line misses per core. The paper's cores are bounded by
  /// instruction-window occupancy (4 windows x depth 128), not by an L1
  /// miss queue, so the default is large enough to never be the limiter -
  /// max_tb throttling then directly controls per-core MLP.
  std::uint32_t miss_queue_entries = 512;
  InsertPolicy insert = InsertPolicy::kStreaming;
  ReplPolicy repl = ReplPolicy::kLru;
  WriteHitPolicy write_hit = WriteHitPolicy::kWriteThrough;
  WriteMissPolicy write_miss = WriteMissPolicy::kWriteNoAllocate;
  FillPolicy fill = FillPolicy::kAllocOnFill;

  /// Throws std::invalid_argument when the cache geometry is inconsistent.
  void validate() const;
};

struct LlcConfig {
  std::uint64_t size_bytes = 16ull * 1024 * 1024;
  std::uint32_t assoc = 8;
  std::uint32_t num_slices = 8;
  std::uint32_t hit_latency = 3;    // tag lookup
  std::uint32_t data_latency = 25;  // hit data return
  std::uint32_t mshr_latency = 5;   // MSHR probe after a tag miss
  std::uint32_t mshr_entries = 6;   // per slice (numEntry)
  std::uint32_t mshr_targets = 8;   // per entry (numTarget)
  std::uint32_t req_q_size = 12;
  std::uint32_t resp_q_size = 64;
  InsertPolicy insert = InsertPolicy::kMru;
  ReplPolicy repl = ReplPolicy::kLru;
  WriteHitPolicy write_hit = WriteHitPolicy::kWriteBack;
  WriteMissPolicy write_miss = WriteMissPolicy::kWriteAllocate;
  FillPolicy fill = FillPolicy::kAllocOnFill;
  RespArbPolicy resp_arb = RespArbPolicy::kResponseFirst;
  /// kRequestFirst / COBRRA: responses preempt once resp-queue occupancy
  /// reaches this fraction.
  double resp_q_high_water = 0.75;
  /// Fill-bypass manager (paper Fig 4 step 5; kNone in the evaluation).
  BypassConfig bypass;

  /// Throws std::invalid_argument when fields are inconsistent
  /// (delegates to bypass.validate() for the bypass block).
  void validate() const;
};

struct ArbConfig {
  ArbPolicy policy = ArbPolicy::kFcfs;
  std::uint32_t hit_buffer_depth = 32;  // recent-hit FIFO (paper Fig 4/5)
  std::uint32_t sent_reqs_depth = 16;   // in-flight-lookup FIFO

  /// Throws std::invalid_argument when fields are inconsistent.
  void validate() const;
};

struct NocConfig {
  std::uint32_t req_latency = 10;   // core -> slice, cycles
  std::uint32_t resp_latency = 10;  // slice -> core, cycles

  /// Every representable latency pair is modelable today (0 = ideal NoC,
  /// used by unit tests); the hook exists so a future constraint fails
  /// loudly here instead of deep in a run.
  void validate() const {}
};

/// DDR5-3200, 4 channels x 4 ranks, 8Gb x16 devices (Table 5). A channel is
/// modeled as the two ganged 32-bit DDR5 subchannels (64-bit logical
/// channel): one 64B line moves in 4 DRAM cycles, peak
/// 4 ch x 8 B x 3200 MT/s = 102.4 GB/s.
struct DramConfig {
  std::uint32_t num_channels = 4;
  std::uint32_t ranks_per_channel = 4;
  std::uint32_t bankgroups_per_rank = 4;  // DDR5 x16: 4 BG x 2 banks
  std::uint32_t banks_per_bankgroup = 2;
  std::uint32_t rows_per_bank = 65536;
  std::uint32_t row_bytes = 2048;  // 32 cache lines per row
  std::uint32_t channel_data_bytes = 8;  // 64-bit logical channel
  std::uint32_t burst_length = 8;        // 64B / 8B per beat
  double dram_hz = 1.6e9;                // DDR5-3200 I/O clock
  /// Controller + PHY + on-die transport latency added to each read return,
  /// in DRAM cycles (50ns at DDR5-3200). Makes the unloaded round trip
  /// ~85 ns, which puts the 48-entry MSHR pool's concurrency-limited
  /// bandwidth at the paper's observed 31-38 GB/s (Fig 8).
  std::uint32_t ctrl_latency = 80;
  std::uint32_t read_q_size = 16;        // per channel
  std::uint32_t write_q_size = 16;       // per channel
  double write_drain_high = 0.75;        // start draining writes
  double write_drain_low = 0.25;         // stop draining writes
  bool enable_refresh = true;

  // Timings in DRAM cycles (tCK = 0.625 ns at DDR5-3200).
  std::uint32_t tCL = 24;
  std::uint32_t tCWL = 22;
  std::uint32_t tRCD = 24;
  std::uint32_t tRP = 24;
  std::uint32_t tRAS = 52;
  std::uint32_t tRC = 76;
  std::uint32_t tCCD_S = 4;   // back-to-back bursts on the 64-bit channel
  std::uint32_t tCCD_L = 8;
  std::uint32_t tRRD_S = 8;
  std::uint32_t tRRD_L = 8;
  std::uint32_t tFAW = 32;
  std::uint32_t tWR = 48;
  std::uint32_t tRTP = 12;
  std::uint32_t tWTR_S = 10;
  std::uint32_t tWTR_L = 16;
  std::uint32_t tRTW = 12;   // read->write turnaround on the bus
  std::uint32_t tRFC = 472;  // 295 ns
  std::uint32_t tREFI = 6240;  // 3.9 us

  /// Throws std::invalid_argument when the DRAM geometry is inconsistent.
  void validate() const;
};

/// Two-level dynamic multi-gear throttling (ours) + baseline parameters.
/// Defaults are the paper's swept optima (Tables 2-4).
struct ThrottleConfig {
  ThrottlePolicy policy = ThrottlePolicy::kNone;

  // dynmg: global level (Table 2) ------------------------------------------
  std::uint32_t sampling_period = 2000;  // cycles
  std::uint32_t sub_period = 400;        // cycles
  std::uint32_t max_gear = 4;
  /// Fraction (x/8) of cores throttled per gear, Table 1: 0,1/8,1/4,1/2,3/4.
  std::uint32_t gear_eighths[5] = {0, 1, 2, 4, 6};
  // Contention classification on t_cs (Table 3 structure). The paper's
  // swept bands are 0.1 / 0.2 / 0.375; our substrate's DRAM:core balance
  // yields a higher baseline t_cs (~0.6 even when purely miss-handling-
  // bound, where throttling cannot help), so the bands are re-swept upward
  // (bench/ablation_throttle_params). The gear then engages exactly in the
  // capacity-pressure regime, as Algorithm 1 intends.
  double tcs_low = 0.62;
  double tcs_normal = 0.68;
  double tcs_high = 0.75;

  // dynmg: in-core level (Table 4; the paper's swept optima) ---------------
  std::uint32_t c_idle_upper = 4;
  std::uint32_t c_mem_upper = 250;
  std::uint32_t c_mem_lower = 180;

  // DYNCTA baseline: one-level period + thresholds scaled to that period.
  std::uint32_t dyncta_period = 2048;
  std::uint32_t dyncta_c_idle_upper = 20;
  std::uint32_t dyncta_c_mem_upper = 1280;
  std::uint32_t dyncta_c_mem_lower = 920;

  // LCS baseline: max_tb = clamp(round(windows * (1 - lcs_scale * stall
  // fraction of the first TB)), 1, windows).
  double lcs_scale = 1.0;

  /// Throws std::invalid_argument when fields are inconsistent.
  void validate() const;
};

/// Top-level simulation configuration.
struct SimConfig {
  double core_hz = 1.96e9;
  CoreConfig core;
  L1Config l1;
  LlcConfig llc;
  ArbConfig arb;
  NocConfig noc;
  DramConfig dram;
  ThrottleConfig throttle;
  std::uint64_t seed = 1;
  /// Hard safety limit; a run exceeding this throws (deadlock guard).
  Cycle max_cycles = 2'000'000'000;

  /// The paper's Table 5 configuration.
  static SimConfig table5();

  /// Throws std::invalid_argument when fields are inconsistent.
  void validate() const;

  /// Short "16c/16MB/8sl/BMA/dynmg" style description for reports.
  std::string summary() const;
};

}  // namespace llamcat
