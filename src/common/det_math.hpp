// Deterministic, platform-portable transcendental helpers for the workload
// generators. std::log/std::exp delegate to the host libm, whose results
// are NOT bit-identical across implementations (glibc vs musl vs MSVCRT) -
// a trace generated on one platform would diverge from the same seed on
// another. These routines use only IEEE-754 basic operations (+, -, *, /)
// in a fixed evaluation order plus exact exponent manipulation, so every
// conforming platform produces the same bits for the same input. They trade
// the last couple of ULPs for that stability, which is far more accuracy
// than any sampling distribution here needs.
#pragma once

#include <bit>
#include <cstdint>

namespace llamcat {

namespace detail {

/// Exact decomposition x = m * 2^e with m in [1, 2) for finite x > 0.
/// Subnormals are first scaled up by 2^52 (an exact multiply), so the
/// full positive range decomposes without special cases.
struct Frexp1To2 {
  double mantissa = 1.0;
  int exponent = 0;
};

inline Frexp1To2 split_mantissa(double x) {
  Frexp1To2 out;
  std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  int bias_adjust = 0;
  if ((bits >> 52) == 0) {  // subnormal: scale into the normal range
    x *= 0x1.0p52;          // exact (power-of-two scale)
    bits = std::bit_cast<std::uint64_t>(x);
    bias_adjust = 52;
  }
  const int raw_exp = static_cast<int>((bits >> 52) & 0x7FF);
  out.exponent = raw_exp - 1023 - bias_adjust;
  // Force the exponent field to 1023: mantissa in [1, 2), exactly.
  bits = (bits & 0x000FFFFFFFFFFFFFULL) | 0x3FF0000000000000ULL;
  out.mantissa = std::bit_cast<double>(bits);
  return out;
}

}  // namespace detail

/// ln(2) to double precision (the correctly-rounded constant).
inline constexpr double kDetLn2 = 0.6931471805599453;

/// Natural logarithm, deterministic across platforms. Requires x > 0 and
/// finite; callers in the sampling layer guarantee that (uniform draws are
/// mapped away from 0 before the log). Accuracy: < 1e-14 relative.
inline double det_log(double x) {
  const detail::Frexp1To2 f = detail::split_mantissa(x);
  // ln(m) for m in [1, 2) via the atanh series: with s = (m-1)/(m+1),
  // ln(m) = 2*(s + s^3/3 + s^5/5 + ...). |s| < 1/3, so the odd series
  // converges fast; 8 terms give ~1e-16 worst case at m near 2.
  const double s = (f.mantissa - 1.0) / (f.mantissa + 1.0);
  const double s2 = s * s;
  // Horner evaluation in a fixed order (no FMA contraction surprises: each
  // op is individually rounded per IEEE, identically everywhere).
  double poly = 1.0 / 15.0;
  poly = poly * s2 + 1.0 / 13.0;
  poly = poly * s2 + 1.0 / 11.0;
  poly = poly * s2 + 1.0 / 9.0;
  poly = poly * s2 + 1.0 / 7.0;
  poly = poly * s2 + 1.0 / 5.0;
  poly = poly * s2 + 1.0 / 3.0;
  poly = poly * s2 + 1.0;
  return 2.0 * s * poly + static_cast<double>(f.exponent) * kDetLn2;
}

/// e^x, deterministic across platforms. Clamps the result range to
/// [~5e-324, inf) implicitly via ldexp-style scaling; callers here only
/// ever pass |x| < ~750. Accuracy: < 1e-14 relative.
inline double det_exp(double x) {
  // Range reduction: x = k*ln2 + r with |r| <= ln2/2, e^x = 2^k * e^r.
  // Truncation + adjust instead of round-to-nearest keeps the reduction
  // free of platform rounding-mode dependence.
  double kf = x / kDetLn2;
  int k = static_cast<int>(kf);  // trunc toward zero, exact for |kf| < 2^31
  double r = x - static_cast<double>(k) * kDetLn2;
  if (r > 0.5 * kDetLn2) {
    k += 1;
    r -= kDetLn2;
  } else if (r < -0.5 * kDetLn2) {
    k -= 1;
    r += kDetLn2;
  }
  // e^r by the Taylor series; |r| <= 0.347, 13 terms reach ~1e-17.
  double poly = 1.0 / 6227020800.0;  // 1/13!
  poly = poly * r + 1.0 / 479001600.0;
  poly = poly * r + 1.0 / 39916800.0;
  poly = poly * r + 1.0 / 3628800.0;
  poly = poly * r + 1.0 / 362880.0;
  poly = poly * r + 1.0 / 40320.0;
  poly = poly * r + 1.0 / 5040.0;
  poly = poly * r + 1.0 / 720.0;
  poly = poly * r + 1.0 / 120.0;
  poly = poly * r + 1.0 / 24.0;
  poly = poly * r + 1.0 / 6.0;
  poly = poly * r + 0.5;
  poly = poly * r + 1.0;
  poly = poly * r + 1.0;
  // Scale by 2^k exactly via exponent arithmetic (two steps so extreme k
  // still lands in range before the final scale).
  const auto pow2 = [](int e) {
    return std::bit_cast<double>(
        static_cast<std::uint64_t>(1023 + e) << 52);
  };
  if (k > 1000) k = 1000;  // overflow clamp: caller range never hits this
  if (k < -1000) return 0.0;
  const int half = k / 2;
  return poly * pow2(half) * pow2(k - half);
}

/// x^y for x > 0, deterministic across platforms (exp(y * ln x)).
inline double det_pow(double x, double y) { return det_exp(y * det_log(x)); }

}  // namespace llamcat
