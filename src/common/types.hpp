// Core value types shared by every subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace llamcat {

/// Byte address in the simulated physical address space.
using Addr = std::uint64_t;
/// Simulation time in core clock cycles (1.96 GHz by default).
using Cycle = std::uint64_t;
/// Core identifier (0 .. num_cores-1).
using CoreId = std::uint16_t;
/// Thread-block identifier, unique within one operator execution.
using TbId = std::uint32_t;

inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();
inline constexpr std::uint32_t kInvalidCore = 0xFFFF;

/// All caches in the modeled system use 64-byte lines (paper Table 5).
inline constexpr std::uint32_t kLineBytes = 64;

/// Rounds a byte address down to its cache-line base.
constexpr Addr line_align(Addr a) { return a & ~static_cast<Addr>(kLineBytes - 1); }
/// Line index of a byte address (address / 64).
constexpr Addr line_index(Addr a) { return a / kLineBytes; }

enum class AccessType : std::uint8_t { kLoad, kStore };

/// Request-index value meaning "address belongs to no tracked request".
inline constexpr std::uint32_t kNoRequest = 0xFFFFFFFF;

/// Maps simulated addresses back to the serving request that owns them.
/// Implemented by the trace layer's CompositeTbSource (requests occupy
/// disjoint 16 GiB address slots, so the mapping is exact); consumed by the
/// LLC slices and the System to attribute shared-run statistics per request
/// without threading tags through every in-flight message.
class IRequestTagger {
 public:
  virtual ~IRequestTagger() = default;
  /// Number of distinct requests in the fused run.
  [[nodiscard]] virtual std::uint32_t num_requests() const = 0;
  /// Dense index (0 .. num_requests-1) of the request owning `line_addr`,
  /// or kNoRequest for untracked addresses.
  [[nodiscard]] virtual std::uint32_t request_index_of(Addr line_addr)
      const = 0;
  /// External request id for a dense index.
  [[nodiscard]] virtual std::uint32_t request_id_at(
      std::uint32_t index) const = 0;
};

/// One line-granular memory request travelling core -> L1 -> NoC -> LLC.
///
/// `req_id` is a core-local tag the issuing core uses to wake the right
/// instruction-window slot when the response comes back; stores carry
/// req_id == kStoreReqId and produce no response.
struct MemRequest {
  Addr line_addr = 0;  // line-aligned byte address
  AccessType type = AccessType::kLoad;
  CoreId core = 0;
  std::uint32_t req_id = 0;
  std::uint64_t seq = 0;     // global arrival order, FCFS tie-break
  Cycle issue_cycle = 0;     // cycle the core issued it
};

inline constexpr std::uint32_t kStoreReqId = 0xFFFFFFFF;

/// Response delivered back to a core for a completed load.
struct MemResponse {
  Addr line_addr = 0;
  CoreId core = 0;
  std::uint32_t req_id = 0;
};

}  // namespace llamcat
