// Clang thread-safety-analysis attribute macros (no-ops everywhere else).
//
// Clang's -Wthread-safety turns locking discipline into a compile-time
// contract: data members carry GUARDED_BY(mu), functions declare
// REQUIRES/ACQUIRE/RELEASE, and the analysis rejects any access path that
// cannot prove the right capability is held. The repo's parallel surface
// (ThreadPool, TaskGroup, the sharded KvBlockPool) is annotated with these
// macros and CI builds it with clang -Wthread-safety -Werror; under gcc the
// macros expand to nothing and the code is unchanged.
//
// The macro set follows the clang documentation's canonical spelling so the
// names grep cleanly against upstream docs. std::mutex itself carries no
// annotations in libstdc++, so annotated code uses the llamcat::Mutex /
// MutexLock / CondVar wrappers from common/sync.hpp - see that header.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define LLAMCAT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LLAMCAT_THREAD_ANNOTATION(x)  // no-op
#endif

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define CAPABILITY(x) LLAMCAT_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability for its lifetime.
#define SCOPED_CAPABILITY LLAMCAT_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define GUARDED_BY(x) LLAMCAT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define PT_GUARDED_BY(x) LLAMCAT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability(ies) when calling.
#define REQUIRES(...) \
  LLAMCAT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability(ies) when calling.
#define EXCLUDES(...) LLAMCAT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  LLAMCAT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability the caller held.
#define RELEASE(...) \
  LLAMCAT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) LLAMCAT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis inside one function. Used only by
/// the sync.hpp wrappers themselves (adopt/release tricks the analysis
/// cannot follow); annotated user code should never need it.
#define NO_THREAD_SAFETY_ANALYSIS \
  LLAMCAT_THREAD_ANNOTATION(no_thread_safety_analysis)
