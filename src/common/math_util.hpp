// Small numeric helpers used across modules.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace llamcat {

/// Geometric mean of a non-empty range of positive values.
inline double geomean(std::span<const double> xs) {
  assert(!xs.empty());
  double acc = 0.0;
  for (double x : xs) {
    assert(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

inline double geomean(const std::vector<double>& xs) {
  return geomean(std::span<const double>(xs.data(), xs.size()));
}

/// ceil(a / b) for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr std::uint32_t log2_floor(std::uint64_t x) {
  std::uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Exact-rational clock divider: derives ticks of a slow clock from ticks of
/// a fast one without floating point drift. Used for the core(1.96 GHz) ->
/// DRAM(1.6 GHz) domain crossing, ratio 40:49.
class ClockDivider {
 public:
  ClockDivider(std::uint64_t slow_hz_numer, std::uint64_t fast_hz_denom)
      : numer_(slow_hz_numer), denom_(fast_hz_denom) {
    assert(numer_ > 0 && denom_ > 0 && numer_ <= denom_);
  }

  /// Advances one fast-clock tick; returns how many slow-clock ticks elapse
  /// (0 or 1 given numer <= denom).
  std::uint32_t advance() {
    acc_ += numer_;
    if (acc_ >= denom_) {
      acc_ -= denom_;
      return 1;
    }
    return 0;
  }

  /// Advances `n` fast-clock ticks at once; returns how many slow-clock
  /// ticks elapse. Exact closed form of calling advance() `n` times.
  std::uint64_t advance_bulk(std::uint64_t n) {
    const std::uint64_t total = acc_ + n * numer_;
    acc_ = total % denom_;
    return total / denom_;
  }

  void reset() { acc_ = 0; }

 private:
  std::uint64_t numer_;
  std::uint64_t denom_;
  std::uint64_t acc_ = 0;
};

/// Time-weighted running average, used for e.g. MSHR occupancy over a run.
class OccupancyAverage {
 public:
  /// Accumulates `value` holding for `cycles` ticks.
  void add(double value, std::uint64_t cycles = 1) {
    sum_ += value * static_cast<double>(cycles);
    ticks_ += cycles;
  }

  /// Same observable result as calling add(value) `cycles` times. Kept as a
  /// literal repeated-add (not value*cycles) so that skip-ahead bulk
  /// accounting reproduces the per-cycle float rounding bit-for-bit.
  void add_repeated(double value, std::uint64_t cycles) {
    if (value == 0.0) {
      ticks_ += cycles;
      return;
    }
    for (std::uint64_t i = 0; i < cycles; ++i) sum_ += value;
    ticks_ += cycles;
  }

  [[nodiscard]] double mean() const {
    return ticks_ == 0 ? 0.0 : sum_ / static_cast<double>(ticks_);
  }

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  void reset() {
    sum_ = 0.0;
    ticks_ = 0;
  }

 private:
  double sum_ = 0.0;
  std::uint64_t ticks_ = 0;
};

}  // namespace llamcat
