#include "common/thread_pool.hpp"

#include <algorithm>

namespace llamcat {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

}  // namespace llamcat
