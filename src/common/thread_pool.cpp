#include "common/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace llamcat {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    jobs_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      while (!stopping_ && jobs_.empty()) cv_.wait(mu_);
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

TaskGroup::TaskGroup(std::size_t slots)
    : pending_(slots), errors_(slots) {}

void TaskGroup::run(ThreadPool& pool, std::size_t slot,
                    std::function<void()> fn) {
  pool.post([this, slot, fn = std::move(fn)] {
    std::exception_ptr error;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    finish(slot, std::move(error));
  });
}

void TaskGroup::finish(std::size_t slot, std::exception_ptr error) {
  MutexLock lock(mu_);
  errors_[slot] = std::move(error);
  // Notify while still holding the lock: the moment it is released, wait()
  // can observe pending_ == 0, return, and the caller may destroy this
  // group - so the condition variable must not be touched after unlock.
  if (--pending_ == 0) cv_.notify_all();
}

void TaskGroup::wait() {
  MutexLock lock(mu_);
  while (pending_ != 0) cv_.wait(mu_);
  // All jobs are done; rethrow the first (lowest-slot) failure. The lock is
  // still held, but no job can contend for it anymore.
  for (std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace llamcat
