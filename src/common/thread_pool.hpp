// Fixed-size thread pool used to run independent simulations in parallel
// (each simulation itself is single-threaded and deterministic), plus the
// TaskGroup latch the sweep drivers use to join a batch of slot-indexed
// jobs with deterministic exception propagation.
//
// Both classes are built on the annotated primitives in common/sync.hpp,
// so clang -Wthread-safety machine-checks every access to the queue and
// the latch counters.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace llamcat {

class ThreadPool {
 public:
  /// `num_threads == 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` with no result channel. Pair with a TaskGroup (or
  /// other external completion signal) to join and observe exceptions.
  void post(std::function<void()> fn) EXCLUDES(mu_);

  /// Schedules `fn` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    post([task] { (*task)(); });
    return fut;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> jobs_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
};

/// Joins a fixed-size batch of pool jobs. Each job writes its own disjoint
/// output slot (no lock needed for the payload); the group only counts
/// completions and collects per-slot exceptions. wait() rethrows the
/// exception from the lowest-indexed failed slot, so a parallel sweep
/// fails with the same exception the sequential loop would have thrown
/// first - error behavior stays independent of thread scheduling.
class TaskGroup {
 public:
  /// `slots` is the number of run() calls that will be issued.
  explicit TaskGroup(std::size_t slots);

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn` on `pool` as the job for `slot` (each slot exactly
  /// once). Exceptions from `fn` are captured into the slot.
  void run(ThreadPool& pool, std::size_t slot, std::function<void()> fn);

  /// Blocks until every slot has completed, then rethrows the
  /// lowest-indexed captured exception, if any.
  void wait() EXCLUDES(mu_);

 private:
  void finish(std::size_t slot, std::exception_ptr error) EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::size_t pending_ GUARDED_BY(mu_);
  /// Slot-indexed; written once by the owning job, read after the latch.
  std::vector<std::exception_ptr> errors_ GUARDED_BY(mu_);
};

}  // namespace llamcat
