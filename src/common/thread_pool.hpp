// Fixed-size thread pool used to run independent simulations in parallel
// (each simulation itself is single-threaded and deterministic).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace llamcat {

class ThreadPool {
 public:
  /// `num_threads == 0` selects the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace llamcat
