// Lightweight named-counter registry for per-component statistics.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace llamcat {

/// A flat bag of named integer counters and named doubles. Components own a
/// StatSet; the simulator merges them into a report at the end of a run.
class StatSet {
 public:
  void inc(const std::string& name, std::uint64_t by = 1) {
    counters_[name] += by;
  }
  void set(const std::string& name, std::uint64_t v) { counters_[name] = v; }
  void set_real(const std::string& name, double v) { reals_[name] = v; }

  [[nodiscard]] std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] double get_real(const std::string& name) const {
    auto it = reals_.find(name);
    return it == reals_.end() ? 0.0 : it->second;
  }

  /// Adds all counters from `other` into this set (reals are overwritten).
  void merge(const StatSet& other);

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& reals() const {
    return reals_;
  }

  void clear() {
    counters_.clear();
    reals_.clear();
  }

  void print(std::ostream& os, const std::string& prefix = "") const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> reals_;
};

}  // namespace llamcat
