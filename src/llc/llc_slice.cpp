#include "llc/llc_slice.hpp"

#include <cassert>

#include "common/math_util.hpp"

namespace llamcat {

// ------------------------------------------------------------- SliceMap --

SliceMap::SliceMap(const LlcConfig& cfg)
    : num_slices_(cfg.num_slices),
      slice_bits_(log2_floor(cfg.num_slices)),
      set_bits_(log2_floor(cfg.size_bytes / (cfg.assoc * kLineBytes))),
      total_sets_(cfg.size_bytes / (cfg.assoc * kLineBytes)),
      shift_(3) {
  assert(is_pow2(total_sets_));
  if (set_bits_ < shift_ + slice_bits_) shift_ = 0;  // tiny test caches
}

// ------------------------------------------------------------- LlcSlice --

LlcSlice::LlcSlice(const LlcConfig& cfg, const ArbConfig& arb_cfg,
                   std::uint32_t slice_id, std::uint32_t num_cores,
                   std::uint64_t seed)
    : cfg_(cfg),
      slice_id_(slice_id),
      map_(cfg),
      array_(static_cast<std::uint32_t>(map_.sets_per_slice()), cfg.assoc,
             cfg.repl, cfg.insert, seed),
      mshr_(cfg.mshr_entries, cfg.mshr_targets),
      arbiter_(arb_cfg, num_cores, cfg.hit_latency + cfg.mshr_latency, seed),
      bypass_(cfg.bypass, seed ^ 0xB1FA55ull),
      oracle_(array_, map_) {
  req_q_.reserve(cfg_.req_q_size);
}

void LlcSlice::push_request(const MemRequest& req, Cycle now) {
  assert(can_accept_request());
  assert(map_.slice_of(req.line_addr) == slice_id_);
  frozen_valid_ = false;  // new ingress: the frozen profile is stale
  req_q_.push_back(QueuedRequest{req, now});
  ++counters_.requests_in;
}

void LlcSlice::on_dram_fill(Addr line_addr) {
  frozen_valid_ = false;  // new ingress: the frozen profile is stale
  pending_fills_.push_back(line_addr);
}

void LlcSlice::set_tagger(const IRequestTagger* tagger) {
  tagger_ = tagger;
  by_req_.assign(tagger_ ? tagger_->num_requests() : 0, ReqCounters{});
}

void LlcSlice::sync_tagger_requests() {
  if (tagger_ != nullptr && by_req_.size() < tagger_->num_requests()) {
    by_req_.resize(tagger_->num_requests());
  }
}

LlcSlice::ReqCounters* LlcSlice::req_counters_of(Addr line_addr) {
  if (tagger_ == nullptr) return nullptr;
  const std::uint32_t idx = tagger_->request_index_of(line_addr);
  return idx < by_req_.size() ? &by_req_[idx] : nullptr;
}

void LlcSlice::process_fills(Cycle now) {
  // Fill return (paper Fig 4 step 4/4'): free the MSHR entry, forward the
  // data directly to every merged requester (bypassing the response queue),
  // and push a copy into the response queue for cache installation.
  while (!pending_fills_.empty()) {
    if (resp_q_.size() >= cfg_.resp_q_size) {
      ++counters_.fill_respq_stall;
      stalled_this_cycle_ = true;
      break;
    }
    const Addr line = pending_fills_.front();
    pending_fills_.pop_front();
    bool dirty = false;
    for (const MshrTarget& t : mshr_.release(line)) {
      if (t.is_store) {
        dirty = true;
      } else {
        // Direct forward: one cycle to put the data on the return path.
        out_resp_.push(OutResp{now + 1, MemResponse{line, t.core, t.req_id}});
      }
    }
    resp_q_.push_back(RespEntry{line, dirty});
    ++counters_.fills;
  }
}

void LlcSlice::drain_writebacks(DramSystem& dram) {
  while (!wb_buffer_.empty()) {
    DramRequest wr{wb_buffer_.front(), /*is_write=*/true, slice_id_};
    if (!dram.can_accept(wr)) break;
    dram.enqueue(wr);
    if (ReqCounters* rc = req_counters_of(wb_buffer_.front())) {
      ++rc->dram_writes;
    }
    wb_buffer_.pop_front();
    ++counters_.writebacks;
  }
}

bool LlcSlice::serve_response(Cycle now, DramSystem& dram) {
  (void)now;
  (void)dram;
  if (resp_q_.empty()) return false;
  const RespEntry e = resp_q_.front();
  resp_q_.pop_front();
  const std::uint32_t set = map_.local_set_of(e.line_addr);
  if (!array_.probe(set, e.line_addr)) {
    if (bypass_.should_bypass(e.line_addr)) {
      // Fig 4 step 5: "If not, the data will not be written into cache
      // storage." A dirty bypassed line must still reach DRAM.
      if (e.dirty) wb_buffer_.push_back(e.line_addr);
      ++counters_.bypassed_fills;
    } else if (auto ev = array_.fill(set, e.line_addr, e.dirty)) {
      // Allocate-on-fill install; dirty victims go to the writeback buffer.
      if (ev->dirty) {
        wb_buffer_.push_back(ev->line_addr);
        ++counters_.dirty_evictions;
      } else {
        ++counters_.clean_evictions;
      }
    }
  } else if (e.dirty) {
    array_.mark_dirty(set, e.line_addr);
  }
  ++counters_.responses_served;
  return true;
}

void LlcSlice::serve_request(Cycle now) {
  if (req_q_.empty()) return;
  if (lookup_pipe_.size() >= cfg_.hit_latency) return;  // pipe backed up
  const auto choice = arbiter_.select(req_q_, mshr_, &oracle_);
  if (!choice) return;
  const QueuedRequest qr = req_q_[choice->index];
  req_q_.erase(req_q_.begin() + static_cast<std::ptrdiff_t>(choice->index));
  arbiter_.on_selected(qr.req, choice->spec, now);
  lookup_pipe_.push_back(PipeEntry{qr.req, now + cfg_.hit_latency});
  ++counters_.requests_served;
}

void LlcSlice::advance_lookup(Cycle now) {
  if (lookup_pipe_.empty()) return;
  PipeEntry& head = lookup_pipe_.front();
  if (head.ready > now) return;
  const Addr line = head.req.line_addr;
  const std::uint32_t set = map_.local_set_of(line);
  if (array_.probe(set, line)) {
    // Cache hit.
    array_.touch(set, line);
    ++counters_.lookups;
    ++counters_.hits;
    if (ReqCounters* rc = req_counters_of(line)) {
      ++rc->lookups;
      ++rc->hits;
    }
    arbiter_.on_hit_determined(line);
    bypass_.on_cache_hit(line);
    if (head.req.type == AccessType::kLoad) {
      out_resp_.push(OutResp{now + cfg_.data_latency,
                             MemResponse{line, head.req.core,
                                         head.req.req_id}});
    } else {
      // Write hit: write-back L2 marks the line dirty.
      array_.mark_dirty(set, line);
      ++counters_.store_hits;
    }
    lookup_pipe_.pop_front();
    return;
  }
  // Miss: hand over to the MSHR probe stage if it has room. Lookups and
  // misses are counted when the request leaves this stage, not per retry.
  if (mshr_pipe_.size() < cfg_.mshr_latency) {
    ++counters_.lookups;
    ++counters_.misses;
    if (ReqCounters* rc = req_counters_of(line)) {
      ++rc->lookups;
      ++rc->misses;
    }
    bypass_.on_cache_miss(line);
    mshr_pipe_.push_back(PipeEntry{head.req, now + cfg_.mshr_latency});
    lookup_pipe_.pop_front();
  } else {
    stalled_this_cycle_ = true;  // backed up into the lookup pipe
    ++counters_.lookup_backpressure;
  }
}

void LlcSlice::advance_mshr_stage(Cycle now, DramSystem& dram) {
  if (mshr_pipe_.empty()) return;
  PipeEntry& head = mshr_pipe_.front();
  if (head.ready > now) return;
  const Addr line = head.req.line_addr;
  const MshrTarget target{head.req.core, head.req.req_id,
                          head.req.type == AccessType::kStore};
  if (Mshr::Entry* e = mshr_.find(line)) {
    if (e->targets.size() >= mshr_.target_capacity()) {
      // numTarget exhausted: the whole pipeline stalls (paper §2.4).
      stalled_this_cycle_ = true;
      mshr_resource_stall_ = true;
      ++counters_.stall_target;
      return;
    }
    e->targets.push_back(target);
    ++counters_.mshr_hits;
    if (ReqCounters* rc = req_counters_of(line)) ++rc->mshr_hits;
    mshr_pipe_.pop_front();
    return;
  }
  if (!mshr_.entry_available()) {
    // numEntry exhausted: whole-pipeline stall (paper: "preventing even
    // cache hits from being processed").
    stalled_this_cycle_ = true;
    mshr_resource_stall_ = true;
    ++counters_.stall_entry;
    return;
  }
  const DramRequest rd{line, /*is_write=*/false, slice_id_};
  if (!dram.can_accept(rd)) {
    stalled_this_cycle_ = true;
    mshr_resource_stall_ = true;
    ++counters_.stall_dram;
    return;
  }
  const auto res = mshr_.add(line, target, now);
  assert(res == Mshr::AddResult::kNewEntry);
  (void)res;
  mshr_.find(line)->issued_to_dram = true;
  dram.enqueue(rd);
  ++counters_.mshr_allocs;
  if (ReqCounters* rc = req_counters_of(line)) ++rc->dram_reads;
  mshr_pipe_.pop_front();
}


void LlcSlice::tick(Cycle now, DramSystem& dram) {
  stalled_this_cycle_ = false;
  mshr_resource_stall_ = false;
  arbiter_.on_cycle(now);
  mshr_.sample_occupancy();

  process_fills(now);
  drain_writebacks(dram);

  // Advance the pipeline back-to-front so a request moves at most one stage
  // per cycle. An MSHR reservation failure freezes the earlier stages too:
  // the whole cache pipeline stalls, blocking even cache hits (paper §2.4).
  advance_mshr_stage(now, dram);
  if (!mshr_resource_stall_) advance_lookup(now);

  // Request-vs-response arbitration for the shared storage port (§3.3).
  bool response_turn = false;
  switch (cfg_.resp_arb) {
    case RespArbPolicy::kResponseFirst:
      response_turn = !resp_q_.empty();
      break;
    case RespArbPolicy::kRequestFirst: {
      const bool resp_urgent =
          static_cast<double>(resp_q_.size()) >=
          cfg_.resp_q_high_water * static_cast<double>(cfg_.resp_q_size);
      const bool req_available = !req_q_.empty() &&
                                 lookup_pipe_.size() < cfg_.hit_latency;
      response_turn = !resp_q_.empty() && (resp_urgent || !req_available);
      break;
    }
  }
  if (response_turn) {
    serve_response(now, dram);
  } else if (!mshr_resource_stall_) {
    serve_request(now);
  }

  if (stalled_this_cycle_) {
    ++stall_cycles_;
  }

  if (fast_path_) {
    frozen_ = wait_profile(now);
    frozen_valid_ = !frozen_.busy;
  }
}

LlcSlice::WaitProfile LlcSlice::wait_profile(Cycle now) const {
  WaitProfile p;
  // Any of these makes progress unconditionally at the next tick: fills
  // are processed (or stall into a non-empty resp_q_, which both arbiter
  // policies then serve), responses install, writebacks retry against a
  // DRAM whose occupancy changes as it ticks.
  if (!pending_fills_.empty() || !resp_q_.empty() || !wb_buffer_.empty()) {
    p.busy = true;
    return p;
  }
  if (!out_resp_.empty()) {
    const Cycle r = out_resp_.top().ready;
    if (r <= now + 1) {
      p.busy = true;  // drains into the NoC next cycle
      return p;
    }
    p.next_event = std::min(p.next_event, r);
  }
  bool mshr_frozen = false;
  if (!mshr_pipe_.empty()) {
    const PipeEntry& head = mshr_pipe_.front();
    if (head.ready > now + 1) {
      p.next_event = std::min(p.next_event, head.ready);
    } else {
      // Head is mature every coming cycle: mirror advance_mshr_stage.
      const Addr line = head.req.line_addr;
      if (const Mshr::Entry* e = mshr_.find(line)) {
        if (e->targets.size() >= mshr_.target_capacity()) {
          mshr_frozen = true;  // releases only via a DRAM fill
          p.stall_target = true;
        } else {
          p.busy = true;  // merge succeeds
          return p;
        }
      } else if (!mshr_.entry_available()) {
        mshr_frozen = true;  // releases only via a DRAM fill
        p.stall_entry = true;
      } else {
        // Alloc path: either issues to DRAM now or stalls on DRAM
        // backpressure that can clear as DRAM drains mid-skip - treat
        // both as busy.
        p.busy = true;
        return p;
      }
    }
  }
  // An MSHR resource stall freezes the earlier stages too: the tick skips
  // both advance_lookup and serve_request, so neither produces events,
  // counters, or queue movement while frozen.
  if (!mshr_frozen) {
    if (!lookup_pipe_.empty()) {
      const PipeEntry& head = lookup_pipe_.front();
      if (head.ready > now + 1) {
        p.next_event = std::min(p.next_event, head.ready);
      } else {
        const std::uint32_t set = map_.local_set_of(head.req.line_addr);
        if (array_.probe(set, head.req.line_addr) ||
            mshr_pipe_.size() < cfg_.mshr_latency) {
          p.busy = true;  // hit completes, or miss hands over
          return p;
        }
        // Miss into a full probe stage; the probe head's maturity is
        // already in next_event (it cannot be mature, else it were busy
        // or an MSHR-frozen state above).
        p.lookup_backpressure = true;
      }
    }
    if (!req_q_.empty() && lookup_pipe_.size() < cfg_.hit_latency) {
      p.busy = true;  // the arbiter serves a queued request
      return p;
    }
  }
  return p;
}

void LlcSlice::apply_skip(std::uint64_t cycles, const WaitProfile& p) {
  assert(!p.busy);
  // Per-tick occupancy sampling, collapsed (occupancy is frozen).
  mshr_.sample_occupancy(cycles);
  // arbiter_.on_cycle is a pure monotone expiry with no reader while the
  // slice is frozen; the single call at the wake tick is equivalent.
  if (p.stall_target) counters_.stall_target += cycles;
  if (p.stall_entry) counters_.stall_entry += cycles;
  if (p.lookup_backpressure) counters_.lookup_backpressure += cycles;
  if (p.stall_target || p.stall_entry || p.lookup_backpressure) {
    stall_cycles_ += cycles;
  }
}

void LlcSlice::drain_responses(Cycle now, std::vector<MemResponse>& out) {
  while (!out_resp_.empty() && out_resp_.top().ready <= now) {
    out.push_back(out_resp_.top().resp);
    out_resp_.pop();
  }
}

StatSet LlcSlice::stats() const {
  StatSet s;
  s.set("llc.requests_in", counters_.requests_in);
  s.set("llc.requests_served", counters_.requests_served);
  s.set("llc.lookups", counters_.lookups);
  s.set("llc.hits", counters_.hits);
  s.set("llc.misses", counters_.misses);
  s.set("llc.store_hits", counters_.store_hits);
  s.set("llc.mshr_hits", counters_.mshr_hits);
  s.set("llc.mshr_allocs", counters_.mshr_allocs);
  s.set("llc.fills", counters_.fills);
  s.set("llc.bypassed_fills", counters_.bypassed_fills);
  s.set("llc.responses_served", counters_.responses_served);
  s.set("llc.writebacks", counters_.writebacks);
  s.set("llc.dirty_evictions", counters_.dirty_evictions);
  s.set("llc.clean_evictions", counters_.clean_evictions);
  s.set("llc.stall_cycles", stall_cycles_);
  s.set("llc.stall_entry", counters_.stall_entry);
  s.set("llc.stall_target", counters_.stall_target);
  s.set("llc.stall_dram", counters_.stall_dram);
  s.set("llc.fill_respq_stall", counters_.fill_respq_stall);
  s.set("llc.lookup_backpressure", counters_.lookup_backpressure);
  return s;
}

bool LlcSlice::drained() const {
  return req_q_.empty() && lookup_pipe_.empty() && mshr_pipe_.empty() &&
         pending_fills_.empty() && resp_q_.empty() && wb_buffer_.empty() &&
         out_resp_.empty() && mshr_.occupancy() == 0;
}

}  // namespace llamcat
