// One LLC slice and its arbiter (paper Fig 4). The slice owns:
//   request queue -> arbiter -> lookup pipeline (hit_latency)
//                                 -> MSHR probe stage (mshr_latency) -> DRAM
//   DRAM fill -> direct forward to requesters + response queue -> storage
// MSHR exhaustion (numEntry or numTarget) blocks the pipeline head, which
// backs up and stalls even cache hits behind it - the stall CAT minimizes.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "cache/bypass.hpp"
#include "cache/cache_array.hpp"
#include "cache/mshr.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/arbitration.hpp"
#include "dram/dram_system.hpp"

namespace llamcat {

/// Address -> (slice, local set). Slice bits are taken above the three
/// lowest set-index bits so the slice choice is decoupled from the DRAM
/// channel bits (which use the lowest line bits).
class SliceMap {
 public:
  explicit SliceMap(const LlcConfig& cfg);

  // Inlined: slice_of runs once per injected request and once per core in
  // every next_wake probe (hot per the self-benchmark profile).
  [[nodiscard]] std::uint32_t slice_of(Addr line_addr) const {
    const std::uint64_t gs = line_index(line_addr) & (total_sets_ - 1);
    return static_cast<std::uint32_t>((gs >> shift_) & (num_slices_ - 1));
  }
  [[nodiscard]] std::uint32_t local_set_of(Addr line_addr) const {
    const std::uint64_t gs = line_index(line_addr) & (total_sets_ - 1);
    const std::uint64_t low = gs & ((std::uint64_t{1} << shift_) - 1);
    const std::uint64_t high = gs >> (shift_ + slice_bits_);
    return static_cast<std::uint32_t>(low | (high << shift_));
  }
  [[nodiscard]] std::uint64_t total_sets() const { return total_sets_; }
  [[nodiscard]] std::uint64_t sets_per_slice() const {
    return total_sets_ / num_slices_;
  }

 private:
  std::uint32_t num_slices_;
  std::uint32_t slice_bits_;
  std::uint32_t set_bits_;
  std::uint64_t total_sets_;
  std::uint32_t shift_;  // low set bits kept inside the slice
};

class LlcSlice {
 public:
  LlcSlice(const LlcConfig& cfg, const ArbConfig& arb_cfg,
           std::uint32_t slice_id, std::uint32_t num_cores,
           std::uint64_t seed);

  // ---- ingress --------------------------------------------------------------
  [[nodiscard]] bool can_accept_request() const {
    return req_q_.size() < cfg_.req_q_size;
  }
  void push_request(const MemRequest& req, Cycle now);

  /// DRAM read completion for a line this slice requested.
  void on_dram_fill(Addr line_addr);

  /// Enables per-request attribution: lookups/hits/misses/MSHR merges and
  /// the DRAM traffic this slice originates are additionally counted per
  /// request, keyed by the owner of the accessed address (requests occupy
  /// disjoint address slots, so this equals the issuing TB's request tag).
  /// Pass nullptr to disable. The tagger must outlive the slice.
  void set_tagger(const IRequestTagger* tagger);

  /// Grows the per-request counter array to the tagger's current request
  /// count (mid-run admission through a dynamic source). Never shrinks.
  void sync_tagger_requests();

  // ---- per-cycle ------------------------------------------------------------
  void tick(Cycle now, DramSystem& dram);

  /// Appends load responses whose data_latency has elapsed by `now` to
  /// `out` (drained by the simulator into the NoC).
  void drain_responses(Cycle now, std::vector<MemResponse>& out);

  /// Hot-path counters (plain fields; converted to a StatSet on demand).
  struct Counters {
    std::uint64_t requests_in = 0;
    std::uint64_t requests_served = 0;
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t store_hits = 0;
    std::uint64_t mshr_hits = 0;     // merges into an existing entry
    std::uint64_t mshr_allocs = 0;   // new entries (DRAM reads issued)
    std::uint64_t fills = 0;
    std::uint64_t bypassed_fills = 0;  // fills the bypass manager rejected
    std::uint64_t responses_served = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t dirty_evictions = 0;
    std::uint64_t clean_evictions = 0;
    std::uint64_t stall_entry = 0;   // numEntry exhaustion cycles
    std::uint64_t stall_target = 0;  // numTarget exhaustion cycles
    std::uint64_t stall_dram = 0;    // DRAM queue backpressure cycles
    std::uint64_t fill_respq_stall = 0;
    std::uint64_t lookup_backpressure = 0;
  };

  /// Per-request share of this slice's activity (see set_tagger).
  struct ReqCounters {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t mshr_hits = 0;
    std::uint64_t dram_reads = 0;   // MSHR allocations (reads issued)
    std::uint64_t dram_writes = 0;  // writebacks issued
  };

  // ---- skip-ahead -----------------------------------------------------------
  /// What the slice would do over the coming cycles if its inputs stay
  /// frozen (no new requests, no DRAM fills). `busy` = observable progress
  /// at cycle now+1 (no skip). Otherwise the slice is frozen until
  /// `next_event` (pipeline-head maturity / response release), and each
  /// frozen cycle accrues exactly the recorded stall deltas.
  struct WaitProfile {
    bool busy = false;
    Cycle next_event = kNeverCycle;
    bool stall_target = false;         // numTarget exhaustion per cycle
    bool stall_entry = false;          // numEntry exhaustion per cycle
    bool lookup_backpressure = false;  // miss into a full probe stage
  };
  [[nodiscard]] WaitProfile wait_profile(Cycle now) const;
  /// Bulk-accounts `cycles` frozen cycles previously profiled by
  /// wait_profile (byte-identical to ticking the frozen slice that often).
  void apply_skip(std::uint64_t cycles, const WaitProfile& p);

  /// Enables/disables self-freezing (the per-tick O(1) replay of a cached
  /// wait profile). Mirrors System's fast-path switch.
  void set_fast_path(bool on) {
    fast_path_ = on;
    if (!on) frozen_valid_ = false;
  }
  /// O(1) replay of the cached wait profile; returns true when it
  /// substituted for tick() this cycle. While frozen no out-response is
  /// ready, so the caller may skip drain_responses too. Invalidated by any
  /// ingress (push_request, on_dram_fill) or by reaching next_event.
  bool frozen_tick(Cycle now) {
    if (!frozen_valid_) return false;
    if (now >= frozen_.next_event) {
      frozen_valid_ = false;
      return false;
    }
    // Exactly what tick() does in this state; arbiter_.on_cycle is elided
    // by the same argument as apply_skip (pure monotone expiry, no reader
    // until the wake tick calls it).
    mshr_.sample_occupancy();
    if (frozen_.stall_target) ++counters_.stall_target;
    if (frozen_.stall_entry) ++counters_.stall_entry;
    if (frozen_.lookup_backpressure) ++counters_.lookup_backpressure;
    if (frozen_.stall_target || frozen_.stall_entry ||
        frozen_.lookup_backpressure) {
      ++stall_cycles_;
    }
    return true;
  }

  // ---- introspection ----------------------------------------------------------
  [[nodiscard]] bool drained() const;
  /// DRAM fills delivered but not yet processed (skip-ahead debug checks).
  [[nodiscard]] std::size_t fills_pending() const {
    return pending_fills_.size();
  }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// Indexed by dense request index; empty when no tagger is set.
  [[nodiscard]] const std::vector<ReqCounters>& request_counters() const {
    return by_req_;
  }
  [[nodiscard]] StatSet stats() const;
  [[nodiscard]] const Mshr& mshr() const { return mshr_; }
  [[nodiscard]] RequestArbiter& arbiter() { return arbiter_; }
  [[nodiscard]] const RequestArbiter& arbiter() const { return arbiter_; }
  [[nodiscard]] Cycle stall_cycles() const { return stall_cycles_; }
  [[nodiscard]] std::uint32_t slice_id() const { return slice_id_; }
  [[nodiscard]] const CacheArray& array() const { return array_; }
  [[nodiscard]] std::size_t req_q_size() const { return req_q_.size(); }
  [[nodiscard]] std::size_t resp_q_size() const { return resp_q_.size(); }
  [[nodiscard]] const BypassManager& bypass() const { return bypass_; }

 private:
  /// Ground-truth tag probe handed to the arbiter for ArbPolicy::kOracle.
  class TagOracle final : public ILookupOracle {
   public:
    TagOracle(const CacheArray& array, const SliceMap& map)
        : array_(array), map_(map) {}
    [[nodiscard]] bool is_cache_hit(Addr line_addr) const override {
      return array_.probe(map_.local_set_of(line_addr), line_addr);
    }

   private:
    const CacheArray& array_;
    const SliceMap& map_;
  };

  struct PipeEntry {
    MemRequest req;
    Cycle ready = 0;
  };
  struct RespEntry {
    Addr line_addr = 0;
    bool dirty = false;
  };
  struct OutResp {
    Cycle ready = 0;
    MemResponse resp;
    bool operator>(const OutResp& o) const { return ready > o.ready; }
  };

  /// Per-request counters for the owner of `line_addr`, or nullptr when
  /// untagged (no tagger, or address outside every registered slot).
  [[nodiscard]] ReqCounters* req_counters_of(Addr line_addr);

  void process_fills(Cycle now);
  void drain_writebacks(DramSystem& dram);
  bool serve_response(Cycle now, DramSystem& dram);
  void serve_request(Cycle now);
  void advance_lookup(Cycle now);
  void advance_mshr_stage(Cycle now, DramSystem& dram);

  LlcConfig cfg_;
  std::uint32_t slice_id_;
  SliceMap map_;
  CacheArray array_;
  Mshr mshr_;
  RequestArbiter arbiter_;
  BypassManager bypass_;
  TagOracle oracle_;

  std::vector<QueuedRequest> req_q_;  // arrival order
  std::deque<PipeEntry> lookup_pipe_;
  std::deque<PipeEntry> mshr_pipe_;
  std::deque<Addr> pending_fills_;
  std::deque<RespEntry> resp_q_;
  std::deque<Addr> wb_buffer_;  // dirty victims awaiting DRAM write slots
  std::priority_queue<OutResp, std::vector<OutResp>, std::greater<>>
      out_resp_;

  // Self-freeze cache (see frozen_tick); any ingress invalidates it.
  bool fast_path_ = true;
  bool frozen_valid_ = false;
  WaitProfile frozen_;

  bool stalled_this_cycle_ = false;
  bool mshr_resource_stall_ = false;  // freezes lookup+arbiter this cycle
  Cycle stall_cycles_ = 0;
  Counters counters_;
  const IRequestTagger* tagger_ = nullptr;
  std::vector<ReqCounters> by_req_;
};

}  // namespace llamcat
