// Hardware structures the arbiter uses to *predict* request outcomes before
// the actual cache/MSHR lookup (paper §4.3.1, Fig 4/5 red items):
//   hit_buffer   - FIFO of recent cache-hit line addresses
//   sent_reqs    - FIFO of requests inside the lookup pipeline; entries
//                  expire after hit_latency + mshr_latency, exactly when the
//                  real MSHR has been updated. The spec_hit bit masks out
//                  requests speculated to be cache hits (MSHR uninvolved).
// MSHR_snapshot is a direct wire to the live MSHR and needs no structure.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/types.hpp"

namespace llamcat {

/// Bounded FIFO of recent cache-hit lines with O(1) membership tests.
class HitBuffer {
 public:
  explicit HitBuffer(std::uint32_t depth) : depth_(depth) {}

  void record_hit(Addr line_addr);
  [[nodiscard]] bool contains(Addr line_addr) const {
    return counts_.find(line_addr) != counts_.end();
  }
  [[nodiscard]] std::size_t size() const { return fifo_.size(); }
  [[nodiscard]] std::uint32_t depth() const { return depth_; }

 private:
  std::uint32_t depth_;
  std::deque<Addr> fifo_;
  std::unordered_map<Addr, std::uint32_t> counts_;
};

/// Requests chosen by the arbiter but not yet visible in the MSHR.
class SentReqs {
 public:
  /// `lifetime` = hit_latency + mshr_latency (paper §4.3.1).
  SentReqs(std::uint32_t depth, std::uint32_t lifetime)
      : depth_(depth), lifetime_(lifetime) {}

  /// Records a selected request. `spec_hit` is its speculated-cache-hit bit.
  void push(Addr line_addr, bool spec_hit, Cycle now);

  /// Drops entries older than the lifetime (call once per cycle).
  void expire(Cycle now);

  /// True when the address is tracked by an entry whose spec_hit bit is 0,
  /// i.e. it is expected to appear in the MSHR shortly.
  [[nodiscard]] bool contains_mshr_bound(Addr line_addr) const {
    auto it = mshr_bound_.find(line_addr);
    return it != mshr_bound_.end() && it->second > 0;
  }

  [[nodiscard]] std::size_t size() const { return fifo_.size(); }
  [[nodiscard]] bool full() const { return fifo_.size() >= depth_; }
  [[nodiscard]] std::uint32_t depth() const { return depth_; }
  [[nodiscard]] std::uint32_t lifetime() const { return lifetime_; }

 private:
  struct Entry {
    Addr line_addr;
    bool spec_hit;
    Cycle pushed_at;
  };
  std::uint32_t depth_;
  std::uint32_t lifetime_;
  std::deque<Entry> fifo_;
  std::unordered_map<Addr, std::uint32_t> mshr_bound_;  // count of spec_hit==0
};

}  // namespace llamcat
