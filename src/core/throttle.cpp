#include "core/throttle.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace llamcat {

Contention classify_contention(double t_cs, const ThrottleConfig& cfg) {
  if (t_cs < cfg.tcs_low) return Contention::kLow;
  if (t_cs < cfg.tcs_normal) return Contention::kNormal;
  if (t_cs < cfg.tcs_high) return Contention::kHigh;
  return Contention::kExtreme;
}

std::unique_ptr<IThrottleController> make_throttle_controller(
    const ThrottleConfig& cfg, const CoreConfig& cores) {
  switch (cfg.policy) {
    case ThrottlePolicy::kNone:
      return std::make_unique<NoThrottle>(cores);
    case ThrottlePolicy::kDyncta:
      return std::make_unique<Dyncta>(cfg, cores);
    case ThrottlePolicy::kLcs:
      return std::make_unique<Lcs>(cfg, cores);
    case ThrottlePolicy::kDynMg:
      return std::make_unique<DynMg>(cfg, cores);
  }
  return std::make_unique<NoThrottle>(cores);
}

// ---------------------------------------------------------------- Dyncta --

Dyncta::Dyncta(const ThrottleConfig& cfg, const CoreConfig& cores)
    : cfg_(cfg),
      windows_(cores.num_inst_windows),
      max_tb_(cores.num_cores, cores.num_inst_windows),
      acc_(cores.num_cores) {}

void Dyncta::on_sub_period(
    std::span<const CoreSample> samples,
    std::span<const std::optional<FirstTbReport>> /*first_tb*/) {
  assert(samples.size() == acc_.size());
  for (std::size_t c = 0; c < samples.size(); ++c) {
    acc_[c].c_mem += samples[c].c_mem;
    acc_[c].c_idle += samples[c].c_idle;
  }
  acc_cycles_ += cfg_.sub_period;
  if (acc_cycles_ < cfg_.dyncta_period) return;
  for (std::size_t c = 0; c < acc_.size(); ++c) {
    std::uint32_t& tb = max_tb_[c];
    // DYNCTA [11]: excessive idleness relaxes throttling; heavy memory
    // contention tightens it; low contention relaxes it.
    if (acc_[c].c_idle > cfg_.dyncta_c_idle_upper) {
      tb = std::min(tb + 1, windows_);
    } else if (acc_[c].c_mem > cfg_.dyncta_c_mem_upper) {
      tb = std::max<std::uint32_t>(tb, 2) - 1;
    } else if (acc_[c].c_mem < cfg_.dyncta_c_mem_lower) {
      tb = std::min(tb + 1, windows_);
    }
    acc_[c] = CoreSample{};
  }
  acc_cycles_ = 0;
}

// ------------------------------------------------------------------- Lcs --

Lcs::Lcs(const ThrottleConfig& cfg, const CoreConfig& cores)
    : cfg_(cfg),
      windows_(cores.num_inst_windows),
      max_tb_(cores.num_cores, cores.num_inst_windows),
      decided_(cores.num_cores, false) {}

void Lcs::on_sub_period(
    std::span<const CoreSample> /*samples*/,
    std::span<const std::optional<FirstTbReport>> first_tb) {
  for (std::size_t c = 0; c < decided_.size(); ++c) {
    if (decided_[c] || !first_tb[c].has_value()) continue;
    const double frac =
        std::clamp(first_tb[c]->mem_stall_frac * cfg_.lcs_scale, 0.0, 1.0);
    const auto tb = static_cast<std::uint32_t>(
        std::lround(static_cast<double>(windows_) * (1.0 - frac)));
    max_tb_[c] = std::clamp<std::uint32_t>(tb, 1, windows_);
    decided_[c] = true;
  }
}

// ----------------------------------------------------------------- DynMg --

DynMg::DynMg(const ThrottleConfig& cfg, const CoreConfig& cores)
    : cfg_(cfg),
      windows_(cores.num_inst_windows),
      num_cores_(cores.num_cores),
      throttled_(cores.num_cores, false),
      max_tb_(cores.num_cores, cores.num_inst_windows) {}

std::uint32_t DynMg::cores_for_gear(std::uint32_t gear) const {
  assert(gear <= cfg_.max_gear);
  return num_cores_ * cfg_.gear_eighths[gear] / 8;
}

std::uint32_t DynMg::throttled_count() const {
  return static_cast<std::uint32_t>(
      std::count(throttled_.begin(), throttled_.end(), true));
}

void DynMg::on_global_period(const GlobalSample& sample) {
  // Algorithm 1: gear adjustment from the contention class.
  switch (classify_contention(sample.t_cs, cfg_)) {
    case Contention::kHigh:
      if (gear_ < cfg_.max_gear) ++gear_;
      break;
    case Contention::kLow:
      if (gear_ > 0) --gear_;
      break;
    case Contention::kExtreme:
      if (gear_ + 2 <= cfg_.max_gear) {
        gear_ += 2;
      } else {
        gear_ = cfg_.max_gear;
      }
      break;
    case Contention::kNormal:
      break;  // hold
  }

  // Throttle the fastest cores: largest progress counters (Table 1).
  const std::uint32_t k = cores_for_gear(gear_);
  std::vector<std::uint32_t> order(num_cores_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return sample.progress[a] > sample.progress[b];
                   });
  std::fill(throttled_.begin(), throttled_.end(), false);
  for (std::uint32_t i = 0; i < k; ++i) throttled_[order[i]] = true;
  // Un-throttled cores run at full parallelism again.
  for (std::uint32_t c = 0; c < num_cores_; ++c) {
    if (!throttled_[c]) max_tb_[c] = windows_;
  }
}

void DynMg::on_sub_period(
    std::span<const CoreSample> samples,
    std::span<const std::optional<FirstTbReport>> /*first_tb*/) {
  // In-core controller, only on throttled cores (paper §4.2: DYNCTA as a
  // local logic; two-level periods with Table 4 thresholds).
  for (std::size_t c = 0; c < samples.size(); ++c) {
    if (!throttled_[c]) continue;
    std::uint32_t& tb = max_tb_[c];
    if (samples[c].c_mem > cfg_.c_mem_upper) {
      tb = std::max<std::uint32_t>(tb, 2) - 1;
    } else if (samples[c].c_mem < cfg_.c_mem_lower) {
      tb = std::min(tb + 1, windows_);
    }
    if (samples[c].c_idle > cfg_.c_idle_upper) {
      tb = std::min(tb + 1, windows_);
    }
  }
}

std::uint32_t DynMg::max_tb(CoreId core) const {
  return throttled_[core] ? max_tb_[core] : windows_;
}

}  // namespace llamcat
