#include "core/speculation.hpp"

#include <cassert>

namespace llamcat {

void HitBuffer::record_hit(Addr line_addr) {
  if (depth_ == 0) return;
  fifo_.push_back(line_addr);
  ++counts_[line_addr];
  if (fifo_.size() > depth_) {
    const Addr old = fifo_.front();
    fifo_.pop_front();
    auto it = counts_.find(old);
    assert(it != counts_.end());
    if (--it->second == 0) counts_.erase(it);
  }
}

void SentReqs::push(Addr line_addr, bool spec_hit, Cycle now) {
  // The FIFO depth is a hardware bound; the lookup pipeline can only hold
  // lifetime_ requests, so overflow indicates a misconfiguration.
  assert(fifo_.size() < depth_ || depth_ == 0);
  if (depth_ == 0) return;
  fifo_.push_back(Entry{line_addr, spec_hit, now});
  if (!spec_hit) ++mshr_bound_[line_addr];
}

void SentReqs::expire(Cycle now) {
  while (!fifo_.empty() && fifo_.front().pushed_at + lifetime_ <= now) {
    const Entry& e = fifo_.front();
    if (!e.spec_hit) {
      auto it = mshr_bound_.find(e.line_addr);
      assert(it != mshr_bound_.end());
      if (--it->second == 0) mshr_bound_.erase(it);
    }
    fifo_.pop_front();
  }
}

}  // namespace llamcat
