// Thread-throttling controllers (paper §4.2). All controllers expose the
// same cadence interface; the simulator invokes on_sub_period() every
// cfg.sub_period cycles and on_global_period() every cfg.sampling_period
// cycles, then reads max_tb(core) back into the cores.
//
//   NoThrottle - "unoptimized": max_tb = num_inst_windows always
//   Dyncta     - baseline [11]: per-core DYNCTA applied to ALL cores on a
//                single-level period
//   Lcs        - baseline [15]: fixes max_tb per core after observing the
//                core's first thread block
//   DynMg      - ours: two-level dynamic multi-gear throttling; a global
//                gear (Algorithm 1, Tables 1&3) picks how many of the
//                fastest cores are throttled; throttled cores run a DYNCTA-
//                like in-core controller per sub-period (Table 4).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/samples.hpp"

namespace llamcat {

/// Contention classes on t_cs (Table 3).
enum class Contention : std::uint8_t { kLow, kNormal, kHigh, kExtreme };

Contention classify_contention(double t_cs, const ThrottleConfig& cfg);

class IThrottleController {
 public:
  virtual ~IThrottleController() = default;

  /// Per-core samples accumulated over the last sub-period, indexed by core.
  /// `first_tb` carries each core's first-thread-block report once known.
  virtual void on_sub_period(
      std::span<const CoreSample> samples,
      std::span<const std::optional<FirstTbReport>> first_tb) = 0;

  /// Global sample over the last sampling period.
  virtual void on_global_period(const GlobalSample& sample) = 0;

  [[nodiscard]] virtual std::uint32_t max_tb(CoreId core) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Factory for the configured policy.
std::unique_ptr<IThrottleController> make_throttle_controller(
    const ThrottleConfig& cfg, const CoreConfig& cores);

// ---------------------------------------------------------------------------

class NoThrottle final : public IThrottleController {
 public:
  explicit NoThrottle(const CoreConfig& cores)
      : windows_(cores.num_inst_windows) {}
  void on_sub_period(std::span<const CoreSample>,
                     std::span<const std::optional<FirstTbReport>>) override {}
  void on_global_period(const GlobalSample&) override {}
  [[nodiscard]] std::uint32_t max_tb(CoreId) const override {
    return windows_;
  }
  [[nodiscard]] std::string name() const override { return "unopt"; }

 private:
  std::uint32_t windows_;
};

/// DYNCTA baseline: every dyncta_period cycles, each core independently
/// adjusts its own max_tb from its C_idle / C_mem counters.
class Dyncta final : public IThrottleController {
 public:
  Dyncta(const ThrottleConfig& cfg, const CoreConfig& cores);
  void on_sub_period(
      std::span<const CoreSample> samples,
      std::span<const std::optional<FirstTbReport>> first_tb) override;
  void on_global_period(const GlobalSample&) override {}
  [[nodiscard]] std::uint32_t max_tb(CoreId core) const override {
    return max_tb_[core];
  }
  [[nodiscard]] std::string name() const override { return "dyncta"; }

 private:
  ThrottleConfig cfg_;
  std::uint32_t windows_;
  std::vector<std::uint32_t> max_tb_;
  std::vector<CoreSample> acc_;     // accumulated toward dyncta_period
  Cycle acc_cycles_ = 0;
};

/// LCS baseline: max_tb fixed per core from the first thread block's
/// memory-stall fraction.
class Lcs final : public IThrottleController {
 public:
  Lcs(const ThrottleConfig& cfg, const CoreConfig& cores);
  void on_sub_period(
      std::span<const CoreSample> samples,
      std::span<const std::optional<FirstTbReport>> first_tb) override;
  void on_global_period(const GlobalSample&) override {}
  [[nodiscard]] std::uint32_t max_tb(CoreId core) const override {
    return max_tb_[core];
  }
  [[nodiscard]] std::string name() const override { return "lcs"; }
  [[nodiscard]] bool decided(CoreId core) const { return decided_[core]; }

 private:
  ThrottleConfig cfg_;
  std::uint32_t windows_;
  std::vector<std::uint32_t> max_tb_;
  std::vector<bool> decided_;
};

/// Two-level dynamic multi-gear throttling (ours).
class DynMg final : public IThrottleController {
 public:
  DynMg(const ThrottleConfig& cfg, const CoreConfig& cores);
  void on_sub_period(
      std::span<const CoreSample> samples,
      std::span<const std::optional<FirstTbReport>> first_tb) override;
  void on_global_period(const GlobalSample& sample) override;
  [[nodiscard]] std::uint32_t max_tb(CoreId core) const override;
  [[nodiscard]] std::string name() const override { return "dynmg"; }

  // Introspection (tests / Fig 8 style analysis).
  [[nodiscard]] std::uint32_t gear() const { return gear_; }
  [[nodiscard]] bool throttled(CoreId core) const { return throttled_[core]; }
  [[nodiscard]] std::uint32_t throttled_count() const;
  /// Cores to throttle at `gear` out of `num_cores` (Table 1 fractions).
  [[nodiscard]] std::uint32_t cores_for_gear(std::uint32_t gear) const;

 private:
  ThrottleConfig cfg_;
  std::uint32_t windows_;
  std::uint32_t num_cores_;
  std::uint32_t gear_ = 0;
  std::vector<bool> throttled_;
  std::vector<std::uint32_t> max_tb_;  // in-core controller state
};

}  // namespace llamcat
