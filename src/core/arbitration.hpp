// The LLC request arbiter (paper §4.1 + §4.3): selects which queued request
// enters the slice's lookup pipeline. Implements the paper's policies
//   FCFS  - baseline first-come first-served
//   B     - balanced: min per-core progress counter
//   MA    - MSHR-aware: speculated cache hit > MSHR hit > miss, FCFS ties
//   BMA   - MA with balanced tie-breaking
//   cobrra- FCFS request pick (COBRRA differs in req-resp arbitration)
// plus related-work / ablation policies (paper §7.3):
//   mrpb  - MRPB-style queue prioritization: drain one requester's stream
//           in a burst to preserve its locality
//   oracle- BMA with a ground-truth tag probe instead of the hit_buffer
//           (upper bound on what MA's speculation can achieve)
//   random- uniformly random pick (fairness-without-intent control)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/mshr.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/speculation.hpp"

namespace llamcat {

/// A request waiting in the slice's request queue.
struct QueuedRequest {
  MemRequest req;
  Cycle enqueued_at = 0;
};

/// Ground-truth lookup the oracle policy uses in place of the speculative
/// hit_buffer. Implemented by the owning LLC slice (a tag probe).
class ILookupOracle {
 public:
  virtual ~ILookupOracle() = default;
  [[nodiscard]] virtual bool is_cache_hit(Addr line_addr) const = 0;

 protected:
  ILookupOracle() = default;
};

class RequestArbiter {
 public:
  RequestArbiter(const ArbConfig& cfg, std::uint32_t num_cores,
                 std::uint32_t sent_reqs_lifetime, std::uint64_t seed = 1);

  /// Speculated outcome classes, ordered by priority (paper §4.3.3).
  enum class SpecClass : std::uint8_t { kCacheHit = 0, kMshrHit = 1, kMiss = 2 };

  struct Choice {
    std::size_t index = 0;       // position in the request queue
    SpecClass spec = SpecClass::kMiss;
  };

  /// Picks a request from `queue` (nullopt when empty). Pure decision; call
  /// on_selected() once the slice actually dequeues it. `oracle` supplies
  /// ground-truth tag state and is only consulted by ArbPolicy::kOracle
  /// (pass nullptr otherwise; kOracle then degrades to MSHR-only
  /// classification).
  [[nodiscard]] std::optional<Choice> select(
      const std::vector<QueuedRequest>& queue, const Mshr& mshr,
      const ILookupOracle* oracle = nullptr) const;

  /// Bookkeeping when the chosen request enters the lookup pipeline:
  /// increments the requester's progress counter and records the request in
  /// sent_reqs with its speculated-hit bit.
  void on_selected(const MemRequest& req, SpecClass spec, Cycle now);

  /// Bookkeeping when a lookup resolves as a cache hit (updates hit_buffer).
  void on_hit_determined(Addr line_addr) { hit_buffer_.record_hit(line_addr); }

  /// Once per cycle: expire sent_reqs entries.
  void on_cycle(Cycle now) { sent_reqs_.expire(now); }

  /// Combined hit_buffer + MSHR_snapshot + sent_reqs speculation (Fig 5).
  [[nodiscard]] SpecClass classify(Addr line_addr, const Mshr& mshr) const;

  /// Progress counters: requests served per core since the last reset
  /// (reset at the beginning of each operator execution, §4.1).
  [[nodiscard]] const std::vector<std::uint64_t>& progress() const {
    return progress_;
  }
  void reset_progress();

  [[nodiscard]] ArbPolicy policy() const { return cfg_.policy; }
  [[nodiscard]] const HitBuffer& hit_buffer() const { return hit_buffer_; }
  [[nodiscard]] const SentReqs& sent_reqs() const { return sent_reqs_; }

 private:
  [[nodiscard]] std::size_t pick_fcfs(
      const std::vector<QueuedRequest>& queue) const;
  [[nodiscard]] std::size_t pick_balanced(
      const std::vector<QueuedRequest>& queue) const;
  [[nodiscard]] Choice pick_mshr_aware(const std::vector<QueuedRequest>& queue,
                                       const Mshr& mshr,
                                       bool balanced_ties) const;
  [[nodiscard]] std::size_t pick_mrpb(
      const std::vector<QueuedRequest>& queue) const;
  [[nodiscard]] Choice pick_oracle(const std::vector<QueuedRequest>& queue,
                                   const Mshr& mshr,
                                   const ILookupOracle* oracle) const;
  [[nodiscard]] SpecClass classify_oracle(Addr line_addr, const Mshr& mshr,
                                          const ILookupOracle* oracle) const;

  ArbConfig cfg_;
  HitBuffer hit_buffer_;
  SentReqs sent_reqs_;
  std::vector<std::uint64_t> progress_;
  /// kMrpb: requester whose stream is currently being burst-drained.
  CoreId mrpb_core_ = static_cast<CoreId>(kInvalidCore);
  /// kRandom: RNG state is not logical arbiter state; select() stays const.
  mutable Xoshiro256 rng_;
};

}  // namespace llamcat
