#include "core/arbitration.hpp"

#include <cassert>

namespace llamcat {

RequestArbiter::RequestArbiter(const ArbConfig& cfg, std::uint32_t num_cores,
                               std::uint32_t sent_reqs_lifetime,
                               std::uint64_t seed)
    : cfg_(cfg),
      hit_buffer_(cfg.hit_buffer_depth),
      sent_reqs_(cfg.sent_reqs_depth, sent_reqs_lifetime),
      progress_(num_cores, 0),
      rng_(seed) {}

void RequestArbiter::reset_progress() {
  progress_.assign(progress_.size(), 0);
}

RequestArbiter::SpecClass RequestArbiter::classify(Addr line_addr,
                                                   const Mshr& mshr) const {
  // Step 1+2 of Fig 5: the hit_buffer section of the combined list.
  if (hit_buffer_.contains(line_addr)) return SpecClass::kCacheHit;
  // Step 3: MSHR_snapshot (live wire) + sent_reqs with spec_hit == 0.
  if (mshr.find(line_addr) != nullptr) return SpecClass::kMshrHit;
  if (sent_reqs_.contains_mshr_bound(line_addr)) return SpecClass::kMshrHit;
  return SpecClass::kMiss;
}

std::size_t RequestArbiter::pick_fcfs(
    const std::vector<QueuedRequest>& queue) const {
  // The queue is kept in arrival order; FCFS takes the head.
  (void)queue;
  return 0;
}

std::size_t RequestArbiter::pick_balanced(
    const std::vector<QueuedRequest>& queue) const {
  std::size_t best = 0;
  std::uint64_t best_prog = progress_[queue[0].req.core];
  for (std::size_t i = 1; i < queue.size(); ++i) {
    const std::uint64_t p = progress_[queue[i].req.core];
    if (p < best_prog) {  // strict: ties resolve to the earliest arrival
      best_prog = p;
      best = i;
    }
  }
  return best;
}

RequestArbiter::Choice RequestArbiter::pick_mshr_aware(
    const std::vector<QueuedRequest>& queue, const Mshr& mshr,
    bool balanced_ties) const {
  std::size_t best = 0;
  SpecClass best_class = classify(queue[0].req.line_addr, mshr);
  for (std::size_t i = 1; i < queue.size(); ++i) {
    const SpecClass c = classify(queue[i].req.line_addr, mshr);
    bool better = false;
    if (c < best_class) {
      better = true;
    } else if (c == best_class && balanced_ties) {
      // BMA: within a class, pick the least-served requester; remaining
      // ties resolve to the earliest arrival (i.e. keep current).
      better =
          progress_[queue[i].req.core] < progress_[queue[best].req.core];
    }
    if (better) {
      best = i;
      best_class = c;
    }
  }
  return Choice{best, best_class};
}

std::size_t RequestArbiter::pick_mrpb(
    const std::vector<QueuedRequest>& queue) const {
  // MRPB-adapted queue prioritization [9]: keep draining the stream of the
  // most recently served requester (its consecutive requests are the most
  // likely to share rows/MSHR entries); fall back to the queue head (the
  // oldest request overall) when that requester has nothing pending.
  if (mrpb_core_ != static_cast<CoreId>(kInvalidCore)) {
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (queue[i].req.core == mrpb_core_) return i;
    }
  }
  return 0;
}

RequestArbiter::SpecClass RequestArbiter::classify_oracle(
    Addr line_addr, const Mshr& mshr, const ILookupOracle* oracle) const {
  // Ground truth replaces only the hit_buffer half of the prediction; the
  // MSHR half (snapshot + sent_reqs) is already exact by construction.
  if (oracle != nullptr && oracle->is_cache_hit(line_addr))
    return SpecClass::kCacheHit;
  if (mshr.find(line_addr) != nullptr) return SpecClass::kMshrHit;
  if (sent_reqs_.contains_mshr_bound(line_addr)) return SpecClass::kMshrHit;
  return SpecClass::kMiss;
}

RequestArbiter::Choice RequestArbiter::pick_oracle(
    const std::vector<QueuedRequest>& queue, const Mshr& mshr,
    const ILookupOracle* oracle) const {
  std::size_t best = 0;
  SpecClass best_class = classify_oracle(queue[0].req.line_addr, mshr, oracle);
  for (std::size_t i = 1; i < queue.size(); ++i) {
    const SpecClass c = classify_oracle(queue[i].req.line_addr, mshr, oracle);
    bool better = false;
    if (c < best_class) {
      better = true;
    } else if (c == best_class &&
               progress_[queue[i].req.core] <
                   progress_[queue[best].req.core]) {
      better = true;  // balanced tie-break, as in BMA
    }
    if (better) {
      best = i;
      best_class = c;
    }
  }
  return Choice{best, best_class};
}

std::optional<RequestArbiter::Choice> RequestArbiter::select(
    const std::vector<QueuedRequest>& queue, const Mshr& mshr,
    const ILookupOracle* oracle) const {
  if (queue.empty()) return std::nullopt;
  switch (cfg_.policy) {
    case ArbPolicy::kFcfs:
    case ArbPolicy::kCobrra: {
      const std::size_t i = pick_fcfs(queue);
      return Choice{i, classify(queue[i].req.line_addr, mshr)};
    }
    case ArbPolicy::kBalanced: {
      const std::size_t i = pick_balanced(queue);
      return Choice{i, classify(queue[i].req.line_addr, mshr)};
    }
    case ArbPolicy::kMa:
      return pick_mshr_aware(queue, mshr, /*balanced_ties=*/false);
    case ArbPolicy::kBma:
      return pick_mshr_aware(queue, mshr, /*balanced_ties=*/true);
    case ArbPolicy::kMrpb: {
      const std::size_t i = pick_mrpb(queue);
      return Choice{i, classify(queue[i].req.line_addr, mshr)};
    }
    case ArbPolicy::kOracle:
      return pick_oracle(queue, mshr, oracle);
    case ArbPolicy::kRandom: {
      const std::size_t i = static_cast<std::size_t>(rng_.below(queue.size()));
      return Choice{i, classify(queue[i].req.line_addr, mshr)};
    }
  }
  return std::nullopt;
}

void RequestArbiter::on_selected(const MemRequest& req, SpecClass spec,
                                 Cycle now) {
  assert(req.core < progress_.size());
  ++progress_[req.core];
  mrpb_core_ = req.core;
  sent_reqs_.push(req.line_addr, spec == SpecClass::kCacheHit, now);
}

}  // namespace llamcat
