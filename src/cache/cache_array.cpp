#include "cache/cache_array.hpp"

#include <cassert>
#include <limits>

namespace llamcat {

CacheArray::CacheArray(std::uint32_t num_sets, std::uint32_t assoc,
                       ReplPolicy repl, InsertPolicy insert,
                       std::uint64_t seed)
    : num_sets_(num_sets),
      assoc_(assoc),
      repl_(repl),
      insert_(insert),
      ways_(static_cast<std::size_t>(num_sets) * assoc),
      plru_(num_sets, 0),
      rng_(seed) {
  assert(num_sets_ > 0 && assoc_ > 0);
}

CacheArray::Way* CacheArray::find(std::uint32_t set, Addr line_addr) {
  Way* base = &ways_[static_cast<std::size_t>(set) * assoc_];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (base[w].valid && base[w].line == line_addr) return &base[w];
  }
  return nullptr;
}

const CacheArray::Way* CacheArray::find(std::uint32_t set,
                                        Addr line_addr) const {
  return const_cast<CacheArray*>(this)->find(set, line_addr);
}

bool CacheArray::probe(std::uint32_t set, Addr line_addr) const {
  return find(set, line_addr) != nullptr;
}

void CacheArray::promote(std::uint32_t set, std::uint32_t way) {
  if (repl_ == ReplPolicy::kFifo) return;  // eviction order fixed at insert
  Way& w = ways_[static_cast<std::size_t>(set) * assoc_ + way];
  w.stamp = ++tick_;
  w.rrpv = 0;  // SRRIP: re-referenced lines become near-immediate
  if (repl_ == ReplPolicy::kTreePlru) set_plru_bits(set, way);
}

bool CacheArray::touch(std::uint32_t set, Addr line_addr) {
  Way* w = find(set, line_addr);
  if (w == nullptr) return false;
  const auto way_idx = static_cast<std::uint32_t>(
      w - &ways_[static_cast<std::size_t>(set) * assoc_]);
  promote(set, way_idx);
  return true;
}

void CacheArray::set_plru_bits(std::uint32_t set, std::uint32_t way) {
  // Classic tree-PLRU: walk from root, flip bits to point away from `way`.
  std::uint32_t node = 0;  // index within the implicit tree, 0-based
  std::uint32_t lo = 0, hi = assoc_;
  std::uint32_t& bits = plru_[set];
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const bool right = way >= mid;
    if (right) {
      bits &= ~(1u << node);  // 0 => next victim on the left
      lo = mid;
      node = 2 * node + 2;
    } else {
      bits |= (1u << node);  // 1 => next victim on the right
      hi = mid;
      node = 2 * node + 1;
    }
  }
}

std::uint32_t CacheArray::plru_victim(std::uint32_t set) const {
  std::uint32_t node = 0;
  std::uint32_t lo = 0, hi = assoc_;
  const std::uint32_t bits = plru_[set];
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const bool right = (bits >> node) & 1u;
    if (right) {
      lo = mid;
      node = 2 * node + 2;
    } else {
      hi = mid;
      node = 2 * node + 1;
    }
  }
  return lo;
}

std::uint32_t CacheArray::victim_way(std::uint32_t set) {
  Way* base = &ways_[static_cast<std::size_t>(set) * assoc_];
  // Invalid way first.
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (!base[w].valid) return w;
  }
  switch (repl_) {
    case ReplPolicy::kLru: {
      std::uint32_t victim = 0;
      std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
      for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].stamp < oldest) {
          oldest = base[w].stamp;
          victim = w;
        }
      }
      return victim;
    }
    case ReplPolicy::kTreePlru:
      return plru_victim(set);
    case ReplPolicy::kRandom:
      return static_cast<std::uint32_t>(rng_.below(assoc_));
    case ReplPolicy::kSrrip: {
      // SRRIP: evict the first way predicted "distant" (RRPV == 3); if
      // none, age every way and retry. Terminates in <= 3 rounds.
      for (;;) {
        for (std::uint32_t w = 0; w < assoc_; ++w) {
          if (base[w].rrpv == 3) return w;
        }
        for (std::uint32_t w = 0; w < assoc_; ++w) {
          if (base[w].rrpv < 3) ++base[w].rrpv;
        }
      }
    }
    case ReplPolicy::kFifo: {
      std::uint32_t victim = 0;
      std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
      for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].stamp < oldest) {
          oldest = base[w].stamp;
          victim = w;
        }
      }
      return victim;
    }
  }
  return 0;
}

std::optional<CacheArray::Evicted> CacheArray::fill(std::uint32_t set,
                                                    Addr line_addr,
                                                    bool dirty) {
  assert(!probe(set, line_addr));
  const std::uint32_t w = victim_way(set);
  Way& way = ways_[static_cast<std::size_t>(set) * assoc_ + w];
  std::optional<Evicted> evicted;
  if (way.valid) evicted = Evicted{way.line, way.dirty};
  way.line = line_addr;
  way.valid = true;
  way.dirty = dirty;
  if (repl_ == ReplPolicy::kFifo) {
    // FIFO ignores the insertion policy: age is fixed at insertion time.
    way.stamp = ++tick_;
    return evicted;
  }
  if (repl_ == ReplPolicy::kSrrip) {
    // SRRIP insertion: "long" for MRU-style insert, "distant" for
    // streaming (SRRIP-D); stamp kept for deterministic test inspection.
    way.rrpv = insert_ == InsertPolicy::kMru ? 2 : 3;
    way.stamp = insert_ == InsertPolicy::kMru ? ++tick_ : 0;
    return evicted;
  }
  if (insert_ == InsertPolicy::kMru) {
    promote(set, w);
  } else {
    // Streaming insert: stamp 0 makes this line the LRU victim candidate.
    way.stamp = 0;
  }
  return evicted;
}

bool CacheArray::mark_dirty(std::uint32_t set, Addr line_addr) {
  Way* w = find(set, line_addr);
  if (w == nullptr) return false;
  w->dirty = true;
  return true;
}

bool CacheArray::invalidate(std::uint32_t set, Addr line_addr) {
  Way* w = find(set, line_addr);
  if (w == nullptr) return false;
  w->valid = false;
  w->dirty = false;
  return true;
}

std::uint8_t CacheArray::rrpv_of(std::uint32_t set, Addr line_addr) const {
  const Way* w = find(set, line_addr);
  return w != nullptr ? w->rrpv : 0;
}

std::uint64_t CacheArray::valid_count() const {
  std::uint64_t n = 0;
  for (const auto& w : ways_) n += w.valid ? 1 : 0;
  return n;
}

std::vector<Addr> CacheArray::set_contents(std::uint32_t set) const {
  std::vector<Addr> out;
  const Way* base = &ways_[static_cast<std::size_t>(set) * assoc_];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (base[w].valid) out.push_back(base[w].line);
  }
  return out;
}

}  // namespace llamcat
