// Private per-core L1: streaming-insert, write-through, write-no-allocate,
// allocate-on-fill (Table 5). Misses are merged line-granular in a small
// miss queue whose capacity bounds each core's outstanding misses.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cache/cache_array.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace llamcat {

class L1Cache {
 public:
  L1Cache(const L1Config& cfg, CoreId core, std::uint64_t seed);

  enum class LoadResult : std::uint8_t {
    kHit,         // completes after cfg.latency cycles
    kMissMerged,  // joined an outstanding miss to the same line
    kMissNew,     // new miss; a request was placed in the outbox
    kBlocked,     // miss queue full: the load cannot issue this cycle
  };

  /// Issues a line-granular load tagged `req_id` (core-local).
  LoadResult access_load(Addr line_addr, std::uint32_t req_id);

  /// Write-through / write-no-allocate store probe: updates the line when
  /// present; the caller always forwards the store toward the LLC.
  /// Returns true when the store hit in L1 (stats only).
  bool access_store(Addr line_addr);

  /// Fill from the LLC: installs the line (allocate-on-fill, streaming
  /// insert) and returns the req_ids of every load waiting on it.
  std::vector<std::uint32_t> on_fill(Addr line_addr);

  /// Line requests that must be forwarded to the LLC, FIFO.
  [[nodiscard]] std::optional<Addr> peek_outbox() const;
  void pop_outbox();

  [[nodiscard]] std::size_t outstanding_misses() const {
    return misses_.size();
  }
  [[nodiscard]] bool miss_queue_full() const {
    return misses_.size() >= cfg_.miss_queue_entries;
  }

  /// Hot-path counters (plain fields; converted to a StatSet on demand).
  struct Counters {
    std::uint64_t load_hits = 0;
    std::uint64_t load_merges = 0;
    std::uint64_t load_misses = 0;
    std::uint64_t load_blocked = 0;
    std::uint64_t store_hits = 0;
    std::uint64_t store_misses = 0;
    std::uint64_t fills = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] StatSet stats() const;
  [[nodiscard]] std::uint32_t latency() const { return cfg_.latency; }

 private:
  struct PendingMiss {
    Addr line_addr = 0;
    std::vector<std::uint32_t> waiters;
  };

  std::uint32_t set_of(Addr line_addr) const {
    return static_cast<std::uint32_t>(line_index(line_addr) &
                                      (num_sets_ - 1));
  }
  PendingMiss* find_miss(Addr line_addr);

  L1Config cfg_;
  CoreId core_;
  std::uint32_t num_sets_;
  CacheArray array_;
  std::vector<PendingMiss> misses_;
  std::deque<Addr> outbox_;
  Counters counters_;
};

}  // namespace llamcat
