// Private per-core L1: streaming-insert, write-through, write-no-allocate,
// allocate-on-fill (Table 5). Misses are merged line-granular in a small
// miss queue whose capacity bounds each core's outstanding misses.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace llamcat {

class L1Cache {
 public:
  L1Cache(const L1Config& cfg, CoreId core, std::uint64_t seed);

  enum class LoadResult : std::uint8_t {
    kHit,         // completes after cfg.latency cycles
    kMissMerged,  // joined an outstanding miss to the same line
    kMissNew,     // new miss; a request was placed in the outbox
    kBlocked,     // miss queue full: the load cannot issue this cycle
  };

  /// Opaque per-load tag carried with a miss and handed back by on_fill.
  /// The L1 never interprets it (the core passes a slot pointer so a fill
  /// wakes its waiters without any lookup).
  using LoadTag = std::uint64_t;

  /// Issues a line-granular load tagged `tag` (core-local).
  LoadResult access_load(Addr line_addr, LoadTag tag);

  /// Write-through / write-no-allocate store probe: updates the line when
  /// present; the caller always forwards the store toward the LLC.
  /// Returns true when the store hit in L1 (stats only).
  bool access_store(Addr line_addr);

  /// Fill from the LLC: installs the line (allocate-on-fill, streaming
  /// insert) and appends the tags of every load waiting on it to
  /// `waiters` (cleared first). Waiter storage is pooled, so the steady
  /// state allocates nothing (hot per the self-benchmark profile).
  void on_fill(Addr line_addr, std::vector<LoadTag>& waiters);
  /// Convenience wrapper (tests).
  std::vector<LoadTag> on_fill(Addr line_addr) {
    std::vector<LoadTag> waiters;
    on_fill(line_addr, waiters);
    return waiters;
  }

  /// Line requests that must be forwarded to the LLC, FIFO. Inlined: this
  /// is polled for every core every cycle (hot per the self-benchmark
  /// profile).
  [[nodiscard]] std::optional<Addr> peek_outbox() const {
    if (outbox_.empty()) return std::nullopt;
    return outbox_.front();
  }
  void pop_outbox() {
    assert(!outbox_.empty());
    outbox_.pop_front();
  }

  [[nodiscard]] std::size_t outstanding_misses() const {
    return misses_.size();
  }
  [[nodiscard]] bool miss_queue_full() const {
    return misses_.size() >= cfg_.miss_queue_entries;
  }

  // ---- skip-ahead probes (const; no LRU/stat side effects) ----------------
  /// Whether a load to `line_addr` would hit right now (same presence
  /// predicate as access_load's touch, which mutates nothing on a miss).
  [[nodiscard]] bool would_hit(Addr line_addr) const {
    return array_.probe(set_of(line_addr), line_addr);
  }
  /// Whether an outstanding miss to `line_addr` is already in flight (a new
  /// load would merge rather than allocate).
  [[nodiscard]] bool has_pending_miss(Addr line_addr) const {
    return miss_index_.find(line_addr) != miss_index_.end();
  }
  /// Bulk-accounts `n` blocked-load attempts elided by a skip window.
  void add_blocked_loads(std::uint64_t n) { counters_.load_blocked += n; }

  /// Hot-path counters (plain fields; converted to a StatSet on demand).
  struct Counters {
    std::uint64_t load_hits = 0;
    std::uint64_t load_merges = 0;
    std::uint64_t load_misses = 0;
    std::uint64_t load_blocked = 0;
    std::uint64_t store_hits = 0;
    std::uint64_t store_misses = 0;
    std::uint64_t fills = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] StatSet stats() const;
  [[nodiscard]] std::uint32_t latency() const { return cfg_.latency; }

 private:
  struct PendingMiss {
    Addr line_addr = 0;
    std::vector<LoadTag> waiters;
  };

  std::uint32_t set_of(Addr line_addr) const {
    return static_cast<std::uint32_t>(line_index(line_addr) &
                                      (num_sets_ - 1));
  }
  PendingMiss* find_miss(Addr line_addr);

  L1Config cfg_;
  CoreId core_;
  std::uint32_t num_sets_;
  CacheArray array_;
  std::vector<PendingMiss> misses_;
  // line addr -> index into misses_: the miss queue holds up to
  // miss_queue_entries lines, far too many for the old linear scans.
  std::unordered_map<Addr, std::uint32_t> miss_index_;
  std::vector<std::vector<LoadTag>> waiter_pool_;  // recycled waiters
  std::deque<Addr> outbox_;
  Counters counters_;
};

}  // namespace llamcat
