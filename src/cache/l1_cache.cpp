#include "cache/l1_cache.hpp"

#include <algorithm>
#include <cassert>

namespace llamcat {

L1Cache::L1Cache(const L1Config& cfg, CoreId core, std::uint64_t seed)
    : cfg_(cfg),
      core_(core),
      num_sets_(static_cast<std::uint32_t>(cfg.size_bytes /
                                           (cfg.assoc * kLineBytes))),
      array_(num_sets_, cfg.assoc, cfg.repl, cfg.insert, seed) {
  misses_.reserve(cfg_.miss_queue_entries);
}

L1Cache::PendingMiss* L1Cache::find_miss(Addr line_addr) {
  for (auto& m : misses_) {
    if (m.line_addr == line_addr) return &m;
  }
  return nullptr;
}

L1Cache::LoadResult L1Cache::access_load(Addr line_addr,
                                         std::uint32_t req_id) {
  assert(line_addr == line_align(line_addr));
  if (array_.touch(set_of(line_addr), line_addr)) {
    ++counters_.load_hits;
    return LoadResult::kHit;
  }
  if (PendingMiss* m = find_miss(line_addr)) {
    m->waiters.push_back(req_id);
    ++counters_.load_merges;
    return LoadResult::kMissMerged;
  }
  if (miss_queue_full()) {
    ++counters_.load_blocked;
    return LoadResult::kBlocked;
  }
  misses_.push_back(PendingMiss{line_addr, {req_id}});
  outbox_.push_back(line_addr);
  ++counters_.load_misses;
  return LoadResult::kMissNew;
}

bool L1Cache::access_store(Addr line_addr) {
  assert(line_addr == line_align(line_addr));
  // Write-through: the line stays clean in L1; write-no-allocate: a store
  // miss does not allocate. Either way the store is forwarded by the core.
  const bool hit = array_.touch(set_of(line_addr), line_addr);
  if (hit) {
    ++counters_.store_hits;
  } else {
    ++counters_.store_misses;
  }
  return hit;
}

std::vector<std::uint32_t> L1Cache::on_fill(Addr line_addr) {
  const std::uint32_t set = set_of(line_addr);
  if (!array_.probe(set, line_addr)) {
    // Allocate-on-fill; L1 lines are never dirty (write-through), so the
    // victim needs no writeback.
    array_.fill(set, line_addr, /*dirty=*/false);
    ++counters_.fills;
  }
  auto it = std::find_if(
      misses_.begin(), misses_.end(),
      [&](const PendingMiss& m) { return m.line_addr == line_addr; });
  if (it == misses_.end()) return {};
  std::vector<std::uint32_t> waiters = std::move(it->waiters);
  misses_.erase(it);
  return waiters;
}

StatSet L1Cache::stats() const {
  StatSet s;
  s.set("l1.load_hits", counters_.load_hits);
  s.set("l1.load_merges", counters_.load_merges);
  s.set("l1.load_misses", counters_.load_misses);
  s.set("l1.load_blocked", counters_.load_blocked);
  s.set("l1.store_hits", counters_.store_hits);
  s.set("l1.store_misses", counters_.store_misses);
  s.set("l1.fills", counters_.fills);
  return s;
}

std::optional<Addr> L1Cache::peek_outbox() const {
  if (outbox_.empty()) return std::nullopt;
  return outbox_.front();
}

void L1Cache::pop_outbox() {
  assert(!outbox_.empty());
  outbox_.pop_front();
}

}  // namespace llamcat
