#include "cache/l1_cache.hpp"

#include <algorithm>
#include <cassert>

namespace llamcat {

L1Cache::L1Cache(const L1Config& cfg, CoreId core, std::uint64_t seed)
    : cfg_(cfg),
      core_(core),
      num_sets_(static_cast<std::uint32_t>(cfg.size_bytes /
                                           (cfg.assoc * kLineBytes))),
      array_(num_sets_, cfg.assoc, cfg.repl, cfg.insert, seed) {
  misses_.reserve(cfg_.miss_queue_entries);
  miss_index_.reserve(cfg_.miss_queue_entries * 2);
}

L1Cache::PendingMiss* L1Cache::find_miss(Addr line_addr) {
  const auto it = miss_index_.find(line_addr);
  return it == miss_index_.end() ? nullptr : &misses_[it->second];
}

L1Cache::LoadResult L1Cache::access_load(Addr line_addr, LoadTag tag) {
  assert(line_addr == line_align(line_addr));
  if (array_.touch(set_of(line_addr), line_addr)) {
    ++counters_.load_hits;
    return LoadResult::kHit;
  }
  if (PendingMiss* m = find_miss(line_addr)) {
    m->waiters.push_back(tag);
    ++counters_.load_merges;
    return LoadResult::kMissMerged;
  }
  if (miss_queue_full()) {
    ++counters_.load_blocked;
    return LoadResult::kBlocked;
  }
  PendingMiss m;
  m.line_addr = line_addr;
  if (!waiter_pool_.empty()) {
    m.waiters = std::move(waiter_pool_.back());
    waiter_pool_.pop_back();
    m.waiters.clear();
  }
  m.waiters.push_back(tag);
  miss_index_.emplace(line_addr, static_cast<std::uint32_t>(misses_.size()));
  misses_.push_back(std::move(m));
  outbox_.push_back(line_addr);
  ++counters_.load_misses;
  return LoadResult::kMissNew;
}

bool L1Cache::access_store(Addr line_addr) {
  assert(line_addr == line_align(line_addr));
  // Write-through: the line stays clean in L1; write-no-allocate: a store
  // miss does not allocate. Either way the store is forwarded by the core.
  const bool hit = array_.touch(set_of(line_addr), line_addr);
  if (hit) {
    ++counters_.store_hits;
  } else {
    ++counters_.store_misses;
  }
  return hit;
}

void L1Cache::on_fill(Addr line_addr, std::vector<LoadTag>& waiters) {
  waiters.clear();
  const std::uint32_t set = set_of(line_addr);
  if (!array_.probe(set, line_addr)) {
    // Allocate-on-fill; L1 lines are never dirty (write-through), so the
    // victim needs no writeback.
    array_.fill(set, line_addr, /*dirty=*/false);
    ++counters_.fills;
  }
  const auto it = miss_index_.find(line_addr);
  if (it == miss_index_.end()) return;
  const std::uint32_t i = it->second;
  // Swap-erase: line addresses in the miss queue are unique, and no
  // observable behavior depends on the queue's internal order.
  std::vector<LoadTag>& w = misses_[i].waiters;
  waiters.insert(waiters.end(), w.begin(), w.end());
  w.clear();
  waiter_pool_.push_back(std::move(w));
  miss_index_.erase(it);
  if (i + 1 != misses_.size()) {
    misses_[i] = std::move(misses_.back());
    miss_index_[misses_[i].line_addr] = i;
  }
  misses_.pop_back();
}

StatSet L1Cache::stats() const {
  StatSet s;
  s.set("l1.load_hits", counters_.load_hits);
  s.set("l1.load_merges", counters_.load_merges);
  s.set("l1.load_misses", counters_.load_misses);
  s.set("l1.load_blocked", counters_.load_blocked);
  s.set("l1.store_hits", counters_.store_hits);
  s.set("l1.store_misses", counters_.store_misses);
  s.set("l1.fills", counters_.fills);
  return s;
}

}  // namespace llamcat
