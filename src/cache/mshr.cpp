#include "cache/mshr.hpp"

#include <algorithm>
#include <cassert>

namespace llamcat {

Mshr::Mshr(std::uint32_t num_entries, std::uint32_t num_targets)
    : num_entries_(num_entries), num_targets_(num_targets) {
  assert(num_entries_ > 0 && num_targets_ > 0);
  entries_.reserve(num_entries_);
}

Mshr::Entry* Mshr::find(Addr line_addr) {
  for (auto& e : entries_) {
    if (e.line_addr == line_addr) return &e;
  }
  return nullptr;
}

const Mshr::Entry* Mshr::find(Addr line_addr) const {
  return const_cast<Mshr*>(this)->find(line_addr);
}

Mshr::AddResult Mshr::add(Addr line_addr, const MshrTarget& target,
                          Cycle now) {
  if (Entry* e = find(line_addr)) {
    if (e->targets.size() >= num_targets_) return AddResult::kNoTargetFree;
    e->targets.push_back(target);
    return AddResult::kMerged;
  }
  if (!entry_available()) return AddResult::kNoEntryFree;
  Entry e;
  e.line_addr = line_addr;
  e.targets.push_back(target);
  e.alloc_cycle = now;
  entries_.push_back(std::move(e));
  return AddResult::kNewEntry;
}

std::vector<MshrTarget> Mshr::release(Addr line_addr) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.line_addr == line_addr; });
  assert(it != entries_.end() && "release of unknown MSHR entry");
  std::vector<MshrTarget> targets = std::move(it->targets);
  entries_.erase(it);
  return targets;
}

}  // namespace llamcat
