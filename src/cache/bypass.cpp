#include "cache/bypass.hpp"

namespace llamcat {

BypassManager::BypassManager(const BypassConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  if (cfg_.policy == BypassPolicy::kReuseHistory) {
    // Counters start at the keep threshold: unknown regions are cached
    // until proven streaming, so a cold predictor behaves like kNone.
    table_.assign(cfg_.table_entries,
                  static_cast<std::uint8_t>(cfg_.keep_threshold));
  }
}

std::size_t BypassManager::region_index(Addr line_addr) const {
  return static_cast<std::size_t>((line_addr >> cfg_.region_log2) %
                                  cfg_.table_entries);
}

std::uint32_t BypassManager::region_counter(Addr line_addr) const {
  if (table_.empty()) return 0;
  return table_[region_index(line_addr)];
}

bool BypassManager::should_bypass(Addr line_addr) {
  bool bypass = false;
  switch (cfg_.policy) {
    case BypassPolicy::kNone:
      break;
    case BypassPolicy::kAll:
      bypass = true;
      break;
    case BypassPolicy::kProbabilistic:
      bypass = rng_.uniform() >= cfg_.keep_probability;
      break;
    case BypassPolicy::kReuseHistory:
      bypass = table_[region_index(line_addr)] < cfg_.keep_threshold;
      break;
  }
  if (bypass) {
    ++bypassed_;
  } else {
    ++kept_;
  }
  return bypass;
}

void BypassManager::on_cache_hit(Addr line_addr) {
  if (cfg_.policy != BypassPolicy::kReuseHistory) return;
  std::uint8_t& c = table_[region_index(line_addr)];
  if (c < 3) ++c;
}

void BypassManager::on_cache_miss(Addr line_addr) {
  if (cfg_.policy != BypassPolicy::kReuseHistory) return;
  std::uint8_t& c = table_[region_index(line_addr)];
  if (c > 0) --c;
}

}  // namespace llamcat
