// Miss Status Holding Registers. Two dimensions (paper §2.4): numEntry
// (distinct outstanding line misses) and numTarget (requests merged into one
// entry). Exhaustion of either dimension stalls the owning cache pipeline.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/math_util.hpp"
#include "common/types.hpp"

namespace llamcat {

struct MshrTarget {
  CoreId core = 0;
  std::uint32_t req_id = 0;
  bool is_store = false;
};

class Mshr {
 public:
  Mshr(std::uint32_t num_entries, std::uint32_t num_targets);

  struct Entry {
    Addr line_addr = 0;
    std::vector<MshrTarget> targets;
    bool issued_to_dram = false;
    Cycle alloc_cycle = 0;
  };

  enum class AddResult : std::uint8_t {
    kNewEntry,     // allocated a fresh entry (caller must fetch from DRAM)
    kMerged,       // MSHR hit: appended to an existing entry
    kNoEntryFree,  // numEntry exhausted -> pipeline stall
    kNoTargetFree, // numTarget exhausted on the matching entry -> stall
  };

  /// Core operation: find-or-allocate for `line_addr` and attach `target`.
  AddResult add(Addr line_addr, const MshrTarget& target, Cycle now);

  [[nodiscard]] const Entry* find(Addr line_addr) const;
  Entry* find(Addr line_addr);

  /// Fill return: removes the entry and hands back its merged targets.
  /// Precondition: the entry exists.
  std::vector<MshrTarget> release(Addr line_addr);

  [[nodiscard]] bool entry_available() const {
    return entries_.size() < num_entries_;
  }
  [[nodiscard]] std::size_t occupancy() const { return entries_.size(); }
  [[nodiscard]] std::uint32_t capacity() const { return num_entries_; }
  [[nodiscard]] std::uint32_t target_capacity() const { return num_targets_; }

  /// Live view for the arbiter's MSHR_snapshot (paper Fig 5: a direct wire).
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Per-cycle stats hook: accumulates numEntry occupancy.
  void sample_occupancy() {
    occ_.add(static_cast<double>(entries_.size()) /
             static_cast<double>(num_entries_));
  }

  /// Bulk form for skip-ahead: occupancy is constant across a frozen window,
  /// so `cycles` repeated samples collapse into one call (bit-identical to
  /// the per-cycle loop via add_repeated).
  void sample_occupancy(std::uint64_t cycles) {
    occ_.add_repeated(static_cast<double>(entries_.size()) /
                          static_cast<double>(num_entries_),
                      cycles);
  }
  [[nodiscard]] double avg_entry_utilization() const { return occ_.mean(); }

 private:
  std::uint32_t num_entries_;
  std::uint32_t num_targets_;
  std::vector<Entry> entries_;  // <= num_entries_, linear scan (6 per slice)
  OccupancyAverage occ_;
};

}  // namespace llamcat
