// Tag-only set-associative cache storage with pluggable replacement and
// insertion policies. Data values are not simulated, only presence/dirtiness.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace llamcat {

/// Storage for `num_sets x assoc` lines. The caller supplies the set index
/// (so an LLC slice can use the global-set -> slice interleaving while the
/// L1 uses plain modulo indexing).
class CacheArray {
 public:
  CacheArray(std::uint32_t num_sets, std::uint32_t assoc, ReplPolicy repl,
             InsertPolicy insert, std::uint64_t seed = 1);

  struct Evicted {
    Addr line_addr = 0;
    bool dirty = false;
  };

  /// True if the line is present (no LRU update).
  [[nodiscard]] bool probe(std::uint32_t set, Addr line_addr) const;

  /// Hit path: promotes the line per the replacement policy. Returns false
  /// on miss (no state change).
  bool touch(std::uint32_t set, Addr line_addr);

  /// Installs a line (used on fill). Returns the victim if a valid line was
  /// evicted. Precondition: the line is not already present.
  std::optional<Evicted> fill(std::uint32_t set, Addr line_addr, bool dirty);

  /// Marks an existing line dirty; returns false if absent.
  bool mark_dirty(std::uint32_t set, Addr line_addr);

  /// Removes a line if present (used by invalidation tests).
  bool invalidate(std::uint32_t set, Addr line_addr);

  [[nodiscard]] std::uint32_t num_sets() const { return num_sets_; }
  [[nodiscard]] std::uint32_t assoc() const { return assoc_; }
  /// Number of valid lines currently stored (O(capacity), for tests).
  [[nodiscard]] std::uint64_t valid_count() const;

  /// Lines of one set in no particular order (for tests).
  [[nodiscard]] std::vector<Addr> set_contents(std::uint32_t set) const;

  /// Re-reference prediction value of a resident line (kSrrip only; tests).
  [[nodiscard]] std::uint8_t rrpv_of(std::uint32_t set, Addr line_addr) const;

 private:
  struct Way {
    Addr line = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t stamp = 0;   // LRU / FIFO timestamp
    std::uint8_t rrpv = 0;     // kSrrip: 2-bit re-reference prediction
  };

  Way* find(std::uint32_t set, Addr line_addr);
  const Way* find(std::uint32_t set, Addr line_addr) const;
  std::uint32_t victim_way(std::uint32_t set);
  void promote(std::uint32_t set, std::uint32_t way);
  void set_plru_bits(std::uint32_t set, std::uint32_t way);
  std::uint32_t plru_victim(std::uint32_t set) const;

  std::uint32_t num_sets_;
  std::uint32_t assoc_;
  ReplPolicy repl_;
  InsertPolicy insert_;
  std::vector<Way> ways_;             // num_sets * assoc
  std::vector<std::uint32_t> plru_;   // tree-PLRU bits per set
  std::uint64_t tick_ = 0;            // LRU clock
  Xoshiro256 rng_;
};

}  // namespace llamcat
