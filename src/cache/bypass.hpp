// Cache-fill bypass manager (paper Fig 4 step 5: "a bypass manager decides
// whether to keep the cache line. If not, the data will not be written into
// cache storage"). The paper disables bypassing in its evaluation for
// fairness against COBRRA's arbitration component (§3.2), but the unit is
// part of the modeled LLC slice; this module implements it so the claim can
// be tested rather than assumed (see bench/ablation_bypass).
//
// Policies:
//   kNone         - keep every fill (the paper's evaluation setting)
//   kAll          - never install fills (degenerate control: the LLC acts as
//                   a miss-merging buffer only)
//   kProbabilistic- keep a fill with fixed probability (bimodal insertion)
//   kReuseHistory - COBRRA-flavored reuse predictor: per-region saturating
//                   counters learn whether lines from a region see L2 hits;
//                   fills from regions with no observed reuse are bypassed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace llamcat {

/// Decides, per DRAM fill, whether the line is installed in cache storage.
/// One instance per LLC slice; learning is local to the slice, mirroring a
/// per-slice hardware table.
class BypassManager {
 public:
  BypassManager(const BypassConfig& cfg, std::uint64_t seed);

  /// Called on the fill path. True = do NOT install the line.
  [[nodiscard]] bool should_bypass(Addr line_addr);

  /// Feedback: a lookup hit this line in cache storage (reuse observed).
  void on_cache_hit(Addr line_addr);

  /// Feedback: a lookup missed (either compulsory or a consequence of an
  /// earlier eviction/bypass). Used to decay stale reuse confidence.
  void on_cache_miss(Addr line_addr);

  [[nodiscard]] BypassPolicy policy() const { return cfg_.policy; }
  [[nodiscard]] std::uint64_t bypassed() const { return bypassed_; }
  [[nodiscard]] std::uint64_t kept() const { return kept_; }

  /// Current reuse-counter value for the region of `line_addr` (tests).
  [[nodiscard]] std::uint32_t region_counter(Addr line_addr) const;

 private:
  [[nodiscard]] std::size_t region_index(Addr line_addr) const;

  BypassConfig cfg_;
  Xoshiro256 rng_;
  /// kReuseHistory: 2-bit saturating reuse counters, direct-mapped by
  /// region (line_addr >> region_bits) % table_entries.
  std::vector<std::uint8_t> table_;
  std::uint64_t bypassed_ = 0;
  std::uint64_t kept_ = 0;
};

}  // namespace llamcat
