// In-order vector core with multiple instruction windows (paper §3.1/§5):
// each window holds one thread block; the core issues from the active window
// and switches on any blockage to hide memory latency. Throttling caps the
// number of concurrently active windows (max_tb).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/l1_cache.hpp"
#include "common/config.hpp"
#include "common/samples.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "trace/tracegen.hpp"
#include "vcore/tb_scheduler.hpp"

namespace llamcat {

class VectorCore {
 public:
  VectorCore(const CoreConfig& cfg, const L1Config& l1cfg, CoreId id,
             std::uint64_t seed);

  void bind(TbScheduler* scheduler) {
    scheduler_ = scheduler;
    issued_by_req_.assign(scheduler->num_requests(), 0);
  }

  /// Grows the per-request issue counters to `n` requests (mid-run
  /// admission of new requests through a dynamic source). Never shrinks.
  void sync_requests(std::uint32_t n) {
    if (issued_by_req_.size() < n) issued_by_req_.resize(n, 0);
  }

  /// LLC load data arriving through the NoC: fills L1 and wakes waiters.
  void on_load_fill(Addr line_addr);

  /// One core cycle: retire -> fetch TB -> issue (<= issue_width).
  void tick(Cycle now);

  // -- outgoing traffic (drained by the simulator under NoC credits) --------
  struct Outgoing {
    Addr line_addr = 0;
    AccessType type = AccessType::kLoad;
  };
  /// Head outgoing request: L1 load misses first, then posted stores.
  [[nodiscard]] std::optional<Outgoing> peek_outgoing() const;
  void pop_outgoing();

  // -- throttling ------------------------------------------------------------
  void set_max_tb(std::uint32_t n);
  [[nodiscard]] std::uint32_t max_tb() const { return max_tb_; }

  /// C_mem / C_idle accumulated since the previous call (and resets them).
  CoreSample take_sample();
  /// Available once the core's first thread block has completed.
  [[nodiscard]] const std::optional<FirstTbReport>& first_tb_report() const {
    return first_tb_report_;
  }

  // -- state/introspection ----------------------------------------------------
  /// True when the core holds no work at all (safe to end simulation).
  [[nodiscard]] bool fully_idle() const;
  [[nodiscard]] std::uint32_t active_windows() const;
  [[nodiscard]] std::uint64_t instructions_issued() const { return issued_; }
  /// Issued instructions split by the dense request index of the issuing
  /// thread block (single-request sources put everything in element 0).
  [[nodiscard]] const std::vector<std::uint64_t>& issued_by_request() const {
    return issued_by_req_;
  }
  [[nodiscard]] std::uint64_t tbs_completed() const { return tbs_completed_; }
  [[nodiscard]] StatSet l1_stats() const { return l1_.stats(); }
  [[nodiscard]] const L1Cache& l1() const { return l1_; }
  [[nodiscard]] CoreId id() const { return id_; }

 private:
  struct Slot {
    Instr::Kind kind = Instr::Kind::kCompute;
    Cycle ready = kNeverCycle;  // completion cycle; kNever = pending load
    std::uint32_t load_id = 0;  // key into inflight_loads_ for loads
  };

  struct Window {
    bool has_tb = false;
    std::uint64_t tb_idx = 0;
    std::uint32_t req_idx = 0;  // dense request index, cached at fetch
    std::uint32_t next_instr = 0;
    std::uint32_t instr_count = 0;
    std::deque<Slot> slots;
  };

  enum class BlockReason : std::uint8_t { kNone, kMemory, kCompute, kNoWork };

  void retire(Cycle now);
  void fetch_tb(Cycle now);
  /// Attempts to issue one instruction from window `w`.
  BlockReason try_issue(Window& w, Cycle now);
  /// C_mem accumulated since the core's first TB started (LCS observation).
  [[nodiscard]] Cycle c_mem_total_marker(Cycle now) const;

  CoreConfig cfg_;
  CoreId id_;
  L1Cache l1_;
  std::vector<Window> windows_;
  std::uint32_t active_ptr_ = 0;  // current issue window
  std::uint32_t max_tb_;
  TbScheduler* scheduler_ = nullptr;

  std::deque<Addr> store_buffer_;
  std::unordered_map<std::uint32_t, Slot*> inflight_loads_;
  std::uint32_t next_load_id_ = 1;

  // sampling
  Cycle c_mem_ = 0;      // reset by take_sample()
  Cycle c_idle_ = 0;     // reset by take_sample()
  Cycle c_mem_abs_ = 0;  // never reset (first-TB observation)
  std::uint64_t issued_ = 0;
  std::vector<std::uint64_t> issued_by_req_;
  std::uint64_t tbs_completed_ = 0;

  // first-TB observation for LCS
  bool first_tb_seen_ = false;
  std::uint64_t first_tb_idx_ = 0;
  Cycle first_tb_start_ = 0;
  Cycle first_tb_cmem_at_start_ = 0;
  std::optional<FirstTbReport> first_tb_report_;
};

}  // namespace llamcat
