// In-order vector core with multiple instruction windows (paper §3.1/§5):
// each window holds one thread block; the core issues from the active window
// and switches on any blockage to hide memory latency. Throttling caps the
// number of concurrently active windows (max_tb).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "cache/l1_cache.hpp"
#include "common/config.hpp"
#include "common/samples.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "trace/tracegen.hpp"
#include "vcore/tb_scheduler.hpp"

namespace llamcat {

class VectorCore {
 public:
  VectorCore(const CoreConfig& cfg, const L1Config& l1cfg, CoreId id,
             std::uint64_t seed);

  void bind(TbScheduler* scheduler) {
    scheduler_ = scheduler;
    issued_by_req_.assign(scheduler->num_requests(), 0);
  }

  /// Grows the per-request issue counters to `n` requests (mid-run
  /// admission of new requests through a dynamic source). Never shrinks.
  void sync_requests(std::uint32_t n) {
    if (issued_by_req_.size() < n) issued_by_req_.resize(n, 0);
  }

  /// LLC load data arriving through the NoC: fills L1 and wakes waiters.
  void on_load_fill(Addr line_addr);

  /// One core cycle: retire -> fetch TB -> issue (<= issue_width).
  /// Inlined frozen replay: while the cached wait profile is valid this is
  /// a branch plus a couple of adds (hot per the self-benchmark profile);
  /// otherwise the full tick runs.
  void tick(Cycle now) {
    if (frozen_valid_ && now < frozen_.next_event &&
        scheduler_->epoch() == frozen_epoch_) {
      // Exactly what the full tick would do in this state. A non-issuing
      // tick rotates active_ptr_ num_inst_windows times - back to where it
      // started - so no state beyond the deltas moves.
      if (frozen_.idle) {
        ++c_idle_;
      } else if (frozen_.mem_block) {
        ++c_mem_;
        ++c_mem_abs_;
      }
      if (frozen_.blocked_loads != 0) {
        l1_.add_blocked_loads(frozen_.blocked_loads);
      }
      return;
    }
    tick_full(now);
  }

  // -- outgoing traffic (drained by the simulator under NoC credits) --------
  struct Outgoing {
    Addr line_addr = 0;
    AccessType type = AccessType::kLoad;
  };
  /// Head outgoing request: L1 load misses first, then posted stores.
  /// Inlined: polled for every core on every stepped cycle (hot per the
  /// self-benchmark profile).
  [[nodiscard]] std::optional<Outgoing> peek_outgoing() const {
    if (auto line = l1_.peek_outbox()) {
      return Outgoing{*line, AccessType::kLoad};
    }
    if (!store_buffer_.empty()) {
      return Outgoing{store_buffer_.front(), AccessType::kStore};
    }
    return std::nullopt;
  }
  void pop_outgoing();

  // -- throttling ------------------------------------------------------------
  void set_max_tb(std::uint32_t n);
  [[nodiscard]] std::uint32_t max_tb() const { return max_tb_; }

  /// C_mem / C_idle accumulated since the previous call (and resets them).
  CoreSample take_sample();
  /// Available once the core's first thread block has completed.
  [[nodiscard]] const std::optional<FirstTbReport>& first_tb_report() const {
    return first_tb_report_;
  }

  // -- skip-ahead -------------------------------------------------------------
  /// What the core would do over the coming cycles if its inputs stay
  /// frozen (no fills, no scheduler changes). `busy` means it makes
  /// observable progress at cycle now+1, so no skip is possible. Otherwise
  /// the core is frozen until `next_event` (earliest finite head-slot
  /// completion; kNeverCycle when it can only be woken externally), and
  /// each frozen cycle accrues exactly the recorded per-cycle deltas.
  struct WaitProfile {
    bool busy = false;
    Cycle next_event = kNeverCycle;
    bool idle = false;                 // ++c_idle_ per frozen cycle
    bool mem_block = false;            // ++c_mem_/++c_mem_abs_ per frozen cycle
    std::uint32_t blocked_loads = 0;   // l1 load_blocked per frozen cycle
  };
  [[nodiscard]] WaitProfile wait_profile(Cycle now) const;
  /// Bulk-accounts `cycles` frozen cycles previously profiled by
  /// wait_profile (byte-identical to ticking the frozen core that often).
  void apply_skip(std::uint64_t cycles, const WaitProfile& p);

  /// Enables/disables self-freezing (the per-tick O(1) replay of a cached
  /// wait profile). Mirrors System's fast-path switch so LLAMCAT_NO_FASTPATH
  /// disables every fast-path mechanism at once.
  void set_fast_path(bool on) {
    fast_path_ = on;
    if (!on) frozen_valid_ = false;
  }

  // -- state/introspection ----------------------------------------------------
  /// True when the core holds no work at all (safe to end simulation).
  [[nodiscard]] bool fully_idle() const;
  [[nodiscard]] std::uint32_t active_windows() const { return active_count_; }
  [[nodiscard]] std::uint64_t instructions_issued() const { return issued_; }
  /// Issued instructions split by the dense request index of the issuing
  /// thread block (single-request sources put everything in element 0).
  [[nodiscard]] const std::vector<std::uint64_t>& issued_by_request() const {
    return issued_by_req_;
  }
  [[nodiscard]] std::uint64_t tbs_completed() const { return tbs_completed_; }
  [[nodiscard]] StatSet l1_stats() const { return l1_.stats(); }
  [[nodiscard]] const L1Cache& l1() const { return l1_; }
  [[nodiscard]] CoreId id() const { return id_; }

 private:
  struct Slot {
    Instr::Kind kind = Instr::Kind::kCompute;
    Cycle ready = kNeverCycle;  // completion cycle; kNever = pending load
  };

  /// Fixed-capacity FIFO of in-flight slots. A ring over a pre-sized array
  /// beats std::deque here (hot per the self-benchmark profile), and slot
  /// addresses stay stable while live - required by the L1 load-tag scheme
  /// (a live slot is never moved; its cell is reused only after pop).
  class SlotRing {
   public:
    void init(std::uint32_t capacity) { buf_.assign(capacity, Slot{}); }
    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] std::uint32_t size() const { return count_; }
    [[nodiscard]] Slot& front() { return buf_[head_]; }
    [[nodiscard]] const Slot& front() const { return buf_[head_]; }
    /// Precondition: size() < capacity (the issue path checks depth first).
    Slot& push_back(const Slot& s) {
      std::uint32_t i = head_ + count_;
      if (i >= buf_.size()) i -= static_cast<std::uint32_t>(buf_.size());
      buf_[i] = s;
      ++count_;
      return buf_[i];
    }
    void pop_front() {
      if (++head_ >= buf_.size()) head_ = 0;
      --count_;
    }
    void pop_back() { --count_; }
    void clear() {
      head_ = 0;
      count_ = 0;
    }

   private:
    std::vector<Slot> buf_;
    std::uint32_t head_ = 0;
    std::uint32_t count_ = 0;
  };

  struct Window {
    bool has_tb = false;
    std::uint64_t tb_idx = 0;
    std::uint32_t req_idx = 0;  // dense request index, cached at fetch
    std::uint32_t next_instr = 0;
    std::uint32_t instr_count = 0;
    SlotRing slots;
  };

  enum class BlockReason : std::uint8_t { kNone, kMemory, kCompute, kNoWork };

  void tick_full(Cycle now);
  void retire(Cycle now);
  void fetch_tb(Cycle now);
  /// Caches the wait profile after a non-issuing tick so subsequent ticks
  /// replay it in O(1) until an input changes (self-freeze).
  void try_freeze(Cycle now);
  /// Attempts to issue one instruction from window `w`.
  BlockReason try_issue(Window& w, Cycle now);
  /// C_mem accumulated since the core's first TB started (LCS observation).
  [[nodiscard]] Cycle c_mem_total_marker(Cycle now) const;

  CoreConfig cfg_;
  CoreId id_;
  L1Cache l1_;
  std::vector<Window> windows_;
  std::uint32_t active_ptr_ = 0;   // current issue window
  std::uint32_t active_count_ = 0;  // windows with has_tb (O(1) active_windows)
  std::uint32_t max_tb_;
  TbScheduler* scheduler_ = nullptr;

  // Self-freeze: after a tick that issues nothing, the core caches its
  // wait profile and replays the per-cycle deltas in O(1) until an input
  // changes. Inputs are invalidated conservatively: a fill, a store-buffer
  // drain, a throttle change, or any scheduler mutation (epoch) forces a
  // full tick; a spurious wake costs speed, never correctness.
  bool fast_path_ = true;
  bool frozen_valid_ = false;
  WaitProfile frozen_;
  std::uint64_t frozen_epoch_ = 0;

  std::deque<Addr> store_buffer_;
  // Pending (miss-waiting) loads. The L1 carries each waiting slot's
  // address as its opaque load tag, so a fill wakes its waiters without
  // any id lookup; this counter exists only for fully_idle().
  std::uint64_t pending_loads_ = 0;
  std::vector<L1Cache::LoadTag> fill_waiters_;  // scratch for l1_.on_fill

  // sampling
  Cycle c_mem_ = 0;      // reset by take_sample()
  Cycle c_idle_ = 0;     // reset by take_sample()
  Cycle c_mem_abs_ = 0;  // never reset (first-TB observation)
  std::uint64_t issued_ = 0;
  std::vector<std::uint64_t> issued_by_req_;
  std::uint64_t tbs_completed_ = 0;

  // first-TB observation for LCS
  bool first_tb_seen_ = false;
  std::uint64_t first_tb_idx_ = 0;
  Cycle first_tb_start_ = 0;
  Cycle first_tb_cmem_at_start_ = 0;
  std::optional<FirstTbReport> first_tb_report_;
};

}  // namespace llamcat
