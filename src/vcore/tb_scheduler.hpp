// Thread-block scheduler. The paper's system partitions the trace statically
// across cores (one trace file per core, round-robin over the dispatch
// order) and adds a redistribution mechanism that sends thread blocks of a
// slow core to a fast core once the fast core runs out of its own work
// ("Without this feature, our baselines would be underestimated", §5).
//
// kPartitionedStealing reproduces that scheme (default). kGlobalQueue is a
// dynamic single-queue dispatcher kept for ablation studies.
//
// For fused multi-request sources (CompositeTbSource) the scheduler is
// additionally request-aware: it reads each TbDesc's request tag, tracks
// per-request dispatch/completion, and supports RequestDispatch modes that
// either interleave co-resident requests across every core or pin each
// request to its own contiguous core group (stealing stays inside the
// group, so requests contend only in the shared LLC and DRAM).
//
// For growing sources (DynamicTbSource, the continuous-batching engine) the
// scheduler additionally supports mid-run injection: sync_with_source()
// pulls thread blocks appended to the source since the last sync, growing
// the per-request bookkeeping and dealing the new blocks into the queues by
// the same TbDispatch rules applied to the injected batch. Under
// RequestDispatch::kPartitioned, a request carved into a core group at
// construction keeps that group for injected blocks too; requests first
// seen via injection have no pre-carved group - their blocks are dealt
// over the cores no group owns (or a single home core when every core is
// carved) and stealing is unrestricted for them, because the static group
// carve-up needs the full request population up front, which a streaming
// admission source cannot provide.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "trace/tracegen.hpp"

namespace llamcat {

/// Request-flight event sink: fired by the scheduler the moment a request's
/// first thread block is dispatched and the moment its last thread block
/// completes. Lets System record flight cycles without a per-cycle
/// O(num_requests) scan.
class IFlightObserver {
 public:
  virtual ~IFlightObserver() = default;
  virtual void on_first_dispatch(std::uint32_t req_index) = 0;
  virtual void on_request_complete(std::uint32_t req_index) = 0;
};

class TbScheduler {
 public:
  TbScheduler(const ITbSource& source, std::uint32_t num_cores,
              TbDispatch mode = TbDispatch::kPartitionedStealing,
              RequestDispatch req_mode = RequestDispatch::kShared);

  /// Next thread block for `core`: its own partition first, then (stealing
  /// modes) the front of the most-loaded other partition - restricted to
  /// the core's own request group under RequestDispatch::kPartitioned.
  std::optional<std::uint64_t> next_tb(CoreId core);

  /// Const mirror of next_tb's reachability: would next_tb(core) return a
  /// thread block right now? Mutates nothing; used by the skip-ahead probe
  /// to decide whether a core could fetch this cycle.
  [[nodiscard]] bool has_tb_for(CoreId core) const {
    if (queues_.size() == 1) return !queues_[0].empty();
    if (!queues_[core].empty()) return true;
    const std::uint32_t group =
        core_group_.empty() ? kNoRequest : core_group_[core];
    for (std::size_t c = 0; c < queues_.size(); ++c) {
      if (group != kNoRequest && core_group_[c] != group) continue;
      if (!queues_[c].empty()) return true;
    }
    return false;
  }

  /// Registers the (single) flight observer; pass nullptr to detach.
  void set_flight_observer(IFlightObserver* obs) { observer_ = obs; }

  /// Records completion of `tb_idx` (per-request attribution) and asserts,
  /// in debug builds, that no thread block completes twice.
  void mark_complete(std::uint64_t tb_idx);

  /// Pulls thread blocks the source appended since construction / the last
  /// sync into the dispatch queues (see the header comment) and returns how
  /// many were injected. total() grows accordingly, so all_complete() means
  /// "everything injected so far is done".
  std::uint64_t sync_with_source();

  [[nodiscard]] bool all_complete() const { return completed_ >= total_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  /// Pending queue depth feeding `core` (the shared queue depth under
  /// kGlobalQueue, which has a single queue regardless of core count).
  [[nodiscard]] std::uint64_t remaining_for(CoreId core) const {
    return queues_.size() == 1 ? queues_[0].size() : queues_[core].size();
  }
  [[nodiscard]] std::uint64_t stolen() const { return stolen_; }
  [[nodiscard]] const ITbSource& source() const { return source_; }

  /// Monotonic mutation counter, bumped by every queue/bookkeeping change
  /// (dispatch, completion, injection). A self-frozen core re-validates
  /// against it, so any scheduler change wakes the core for a full tick
  /// (see VectorCore; over-invalidation is harmless, staleness is not).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  // -- per-request attribution ------------------------------------------------
  /// Distinct request tags seen in the source so far (plain single-operator
  /// sources tag every TB with request 0; an empty source - a dynamic one
  /// before its first sync - has 0 requests).
  [[nodiscard]] std::uint32_t num_requests() const {
    return static_cast<std::uint32_t>(request_ids_.size());
  }
  /// External request id for a dense request index.
  [[nodiscard]] std::uint32_t request_id_at(std::uint32_t index) const {
    return request_ids_[index];
  }
  /// Dense request index of a thread block (O(1) array lookup; safe on the
  /// core's issue path).
  [[nodiscard]] std::uint32_t request_index_of_tb(std::uint64_t tb_idx) const {
    return tb_req_idx_[tb_idx];
  }
  [[nodiscard]] std::uint64_t total_of(std::uint32_t req_index) const {
    return req_total_[req_index];
  }
  [[nodiscard]] std::uint64_t dispatched_of(std::uint32_t req_index) const {
    return req_dispatched_[req_index];
  }
  [[nodiscard]] std::uint64_t completed_of(std::uint32_t req_index) const {
    return req_completed_[req_index];
  }
  /// Dense index of an external request id, or kNoRequest if the scheduler
  /// has not seen a thread block of that request yet. O(requests), intended
  /// for the (cold) admission path, not per-TB use.
  [[nodiscard]] std::uint32_t dense_index_of(std::uint32_t request_id) const {
    for (std::uint32_t r = 0; r < request_ids_.size(); ++r) {
      if (request_ids_[r] == request_id) return r;
    }
    return kNoRequest;
  }

 private:
  void build_queues(std::uint32_t num_cores,
                    const std::vector<std::uint64_t>& order);
  void build_partitioned_queues(std::uint32_t num_cores);
  /// Registers TB `t`'s request tag (growing the dense bookkeeping for a
  /// first appearance) and returns its dense request index.
  std::uint32_t scan_request(std::uint64_t t);
  /// TB indices [first, last), reordered round-robin across requests when
  /// RequestDispatch::kInterleave asks for it (source order otherwise).
  [[nodiscard]] std::vector<std::uint64_t> dispatch_order(
      std::uint64_t first, std::uint64_t last) const;

  const ITbSource& source_;
  TbDispatch mode_;
  RequestDispatch req_mode_;
  std::uint64_t total_;
  std::uint64_t completed_ = 0;
  std::uint64_t stolen_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<std::deque<std::uint64_t>> queues_;  // per core; [0] if global

  // Request bookkeeping (dense indices, order of first appearance).
  std::vector<std::uint32_t> request_ids_;
  std::vector<std::uint32_t> tb_req_idx_;
  std::vector<std::uint64_t> req_total_;
  std::vector<std::uint64_t> req_dispatched_;
  std::vector<std::uint64_t> req_completed_;
  /// kPartitioned: request group owning each core (kNoRequest = any).
  std::vector<std::uint32_t> core_group_;
  std::vector<bool> done_;  // double-complete guard
  IFlightObserver* observer_ = nullptr;
};

}  // namespace llamcat
