// Thread-block scheduler. The paper's system partitions the trace statically
// across cores (one trace file per core, round-robin over the dispatch
// order) and adds a redistribution mechanism that sends thread blocks of a
// slow core to a fast core once the fast core runs out of its own work
// ("Without this feature, our baselines would be underestimated", §5).
//
// kPartitionedStealing reproduces that scheme (default). kGlobalQueue is a
// dynamic single-queue dispatcher kept for ablation studies.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "trace/tracegen.hpp"

namespace llamcat {

class TbScheduler {
 public:
  TbScheduler(const ITbSource& source, std::uint32_t num_cores,
              TbDispatch mode = TbDispatch::kPartitionedStealing);

  /// Next thread block for `core`: its own partition first, then (mode
  /// kPartitionedStealing) the front of the most-loaded other partition.
  std::optional<std::uint64_t> next_tb(CoreId core);

  void mark_complete(std::uint64_t tb_idx) {
    (void)tb_idx;
    ++completed_;
  }

  [[nodiscard]] bool all_complete() const { return completed_ >= total_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t remaining_for(CoreId core) const {
    return queues_[core].size();
  }
  [[nodiscard]] std::uint64_t stolen() const { return stolen_; }
  [[nodiscard]] const ITbSource& source() const { return source_; }

 private:
  const ITbSource& source_;
  TbDispatch mode_;
  std::uint64_t total_;
  std::uint64_t completed_ = 0;
  std::uint64_t stolen_ = 0;
  std::vector<std::deque<std::uint64_t>> queues_;  // per core; [0] if global
};

}  // namespace llamcat
